// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with -benchtime=1x for
// one measurement per target), plus ablation benches for the design
// choices DESIGN.md calls out. Custom metrics carry the reproduced
// quantities: IPC, LC/FC ratios, stall fractions.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchRunner shares one test-scale workload pair across all benchmarks.
var (
	benchOnce   sync.Once
	benchShared *core.Runner
)

func runner() *core.Runner {
	benchOnce.Do(func() { benchShared = core.NewRunner(core.TestScale()) })
	return benchShared
}

func benchCell(camp sim.Camp, wk core.WorkloadKind, sat bool) core.Cell {
	c := core.DefaultCell(camp, wk, sat)
	c.WarmRefs = 100000
	c.WindowCycles = 150000
	c.UnsatTxns = 64
	return c
}

func mustRun(b *testing.B, c core.Cell) core.CellResult {
	b.Helper()
	res, err := runner().RunCell(c)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Camps measures chip construction for both camps (the
// taxonomy's two configurations).
func BenchmarkTable1Camps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range core.Camps {
			cell := core.DefaultCell(spec.Camp, core.OLTP, true)
			chip := sim.NewChip(cell.SimConfig())
			if chip.Config().Contexts() == 0 {
				b.Fatal("no contexts")
			}
		}
	}
}

// BenchmarkFigure1CactiSweep regenerates the size→latency curve.
func BenchmarkFigure1CactiSweep(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		pts, err := core.CactiCurve()
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Cycles
	}
	b.ReportMetric(float64(last), "cycles@26MB")
	b.ReportMetric(float64(cacti.Latency(1<<20)), "cycles@1MB")
}

// BenchmarkFigure2Saturation regenerates the throughput-vs-clients curve.
func BenchmarkFigure2Saturation(b *testing.B) {
	var sat, unsat float64
	for i := 0; i < b.N; i++ {
		pts, err := runner().Figure2([]int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		unsat, sat = pts[0].Throughput, pts[1].Throughput
	}
	b.ReportMetric(sat/unsat, "sat/unsat")
}

// BenchmarkFigure3Validation regenerates the simulator-validation check.
func BenchmarkFigure3Validation(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		v, err := runner().Figure3()
		if err != nil {
			b.Fatal(err)
		}
		errPct = v.ErrPct
	}
	b.ReportMetric(errPct, "CPI-err-%")
}

// BenchmarkFigure4Camps regenerates the saturated camp comparison.
func BenchmarkFigure4Camps(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fc := mustRun(b, benchCell(sim.FatCamp, core.OLTP, true))
		lc := mustRun(b, benchCell(sim.LeanCamp, core.OLTP, true))
		ratio = lc.Throughput / fc.Throughput
	}
	b.ReportMetric(ratio, "LC/FC-throughput")
}

// BenchmarkFigure5Breakdown regenerates the saturated execution-time
// breakdowns for all four camp × workload combinations.
func BenchmarkFigure5Breakdown(b *testing.B) {
	var fcD float64
	for i := 0; i < b.N; i++ {
		for _, wk := range []core.WorkloadKind{core.OLTP, core.DSS} {
			for _, camp := range []sim.Camp{sim.FatCamp, sim.LeanCamp} {
				res := mustRun(b, benchCell(camp, wk, true))
				if camp == sim.FatCamp && wk == core.OLTP {
					_, _, d, _ := res.FracBreakdown()
					fcD = d
				}
			}
		}
	}
	b.ReportMetric(fcD*100, "FC-OLTP-Dstall-%")
}

// BenchmarkFigure6CacheSweep regenerates the cache-size sweep (three
// sizes, const vs Cacti latency).
func BenchmarkFigure6CacheSweep(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts, err := runner().Figure6(core.OLTP, []int{1, 8, 26})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		gap = (last.ThroughputConst - last.ThroughputReal) / last.ThroughputConst
	}
	b.ReportMetric(gap*100, "latency-penalty-%@26MB")
}

// BenchmarkFigure7SMPvsCMP regenerates the coherence comparison.
func BenchmarkFigure7SMPvsCMP(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := runner().Figure7(core.OLTP)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.CPISMP / res.CPICMP
	}
	b.ReportMetric(ratio, "SMP/CMP-CPI")
}

// BenchmarkFigure8CoreCount regenerates the core-count sweep.
func BenchmarkFigure8CoreCount(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		pts, err := runner().Figure8(core.OLTP, []int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
		eff = pts[1].Speedup / 16
	}
	b.ReportMetric(eff*100, "16core-linear-%")
}

// BenchmarkStagedVsMonolithic regenerates the Section 6 staged-execution
// comparison.
func BenchmarkStagedVsMonolithic(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := runner().StagedExperiment(8000)
		if err != nil {
			b.Fatal(err)
		}
		var volcano, parallel uint64
		for _, m := range res {
			switch m.Mode {
			case "volcano":
				volcano = m.Cycles
			case "staged-parallel":
				parallel = m.Cycles
			}
		}
		speedup = float64(volcano) / float64(parallel)
	}
	b.ReportMetric(speedup, "staged-speedup")
}

// BenchmarkAblationPAX compares NSM and PAX layouts on a selective
// column scan: trace line-footprint per qualifying tuple.
func BenchmarkAblationPAX(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		lines := map[storage.Layout]int{}
		for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
			h, err := workload.BuildTPCH(workload.TPCHConfig{
				Lineitems: 20000, Layout: layout, ArenaBytes: 64 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			rec, s := trace.Pipe()
			seen := map[mem.Addr]bool{}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					r, ok := s.Next()
					if !ok {
						return
					}
					if r.Kind() == trace.Load && r.Addr() >= mem.HeapBase {
						seen[r.Addr().Line()] = true
					}
				}
			}()
			ctx := h.DB.NewCtx(rec, 0, 64<<20)
			if _, err := h.Q6(ctx, workload.QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}); err != nil {
				b.Fatal(err)
			}
			rec.Close()
			<-done
			lines[layout] = len(seen)
		}
		ratio = float64(lines[storage.NSM]) / float64(lines[storage.PAXLayout])
	}
	b.ReportMetric(ratio, "NSM/PAX-lines")
}

// BenchmarkAblationStreamBuffer toggles instruction stream buffers.
func BenchmarkAblationStreamBuffer(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		on := benchCell(sim.FatCamp, core.OLTP, true)
		on.StreamBuf = true
		off := on
		off.StreamBuf = false
		rOn := mustRun(b, on)
		rOff := mustRun(b, off)
		iOn := rOn.Result.Breakdown.IStalls() + 1
		iOff := rOff.Result.Breakdown.IStalls() + 1
		ratio = float64(iOff) / float64(iOn)
	}
	b.ReportMetric(ratio, "Istall-reduction")
}

// BenchmarkAblationContexts sweeps LC hardware contexts per core.
func BenchmarkAblationContexts(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		var one, four float64
		for _, ctxs := range []int{1, 4} {
			c := benchCell(sim.LeanCamp, core.OLTP, true)
			c.CtxPerCore = ctxs
			res := mustRun(b, c)
			if ctxs == 1 {
				one = res.Throughput
			} else {
				four = res.Throughput
			}
		}
		gain = four / one
	}
	b.ReportMetric(gain, "4ctx/1ctx")
}

// BenchmarkAblationAffinity compares co-located vs spread stage placement.
func BenchmarkAblationAffinity(b *testing.B) {
	var hitGain float64
	for i := 0; i < b.N; i++ {
		res, err := runner().StagedExperiment(8000)
		if err != nil {
			b.Fatal(err)
		}
		var colocated, parallel float64
		for _, m := range res {
			switch m.Mode {
			case "staged-colocated":
				colocated = m.L1DHitRate
			case "staged-parallel":
				parallel = m.L1DHitRate
			}
		}
		hitGain = colocated - parallel
	}
	b.ReportMetric(hitGain*100, "L1Dhit-gain-pp")
}

// BenchmarkAblationPorts sweeps shared-L2 ports under a 16-core burst
// (the Figure 8 queueing mechanism).
func BenchmarkAblationPorts(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		var q1, q4 uint64
		for _, ports := range []int{1, 4} {
			c := benchCell(sim.FatCamp, core.OLTP, true)
			c.Cores = 16
			c.Clients = 64
			c.L2Ports = ports
			res := mustRun(b, c)
			if ports == 1 {
				q1 = res.Result.Cache.PortQueueCycles
			} else {
				q4 = res.Result.Cache.PortQueueCycles
			}
		}
		ratio = float64(q1+1) / float64(q4+1)
	}
	b.ReportMetric(ratio, "queue-1port/4port")
}

// parallelSpeedup measures one query on the morsel-driven executor at 1
// and 4 workers, returning simulated-cycle speedup (the host has however
// many cores it has; the chip always has four).
func parallelSpeedup(b *testing.B, q int) float64 {
	b.Helper()
	cell := core.DefaultCell(sim.FatCamp, core.DSS, true)
	// Leave the test-scale query observable past warming: vectorized
	// traces are short, and a 50k warm would consume a 4-worker run.
	cell.WarmRefs = 5000
	res, speedup, err := runner().ParallelSpeedup(cell, q, []int{1, 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	if res[0].Rows == 0 {
		b.Fatal("parallel query produced no rows")
	}
	return speedup
}

// BenchmarkParallelScan measures the morsel-driven executor on the
// selective-scan analog (Q6): 4 workers vs 1 on a 4-core FC chip.
func BenchmarkParallelScan(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = parallelSpeedup(b, 6)
	}
	b.ReportMetric(speedup, "scan-4w/1w-speedup")
}

// BenchmarkParallelAgg measures parallel aggregation with partial-table
// merge on the scan+aggregate analog (Q1).
func BenchmarkParallelAgg(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = parallelSpeedup(b, 1)
	}
	b.ReportMetric(speedup, "agg-4w/1w-speedup")
}

// BenchmarkParallelJoin measures the partitioned parallel hash join on
// the Q13 join core (customer left-outer-join non-special orders).
func BenchmarkParallelJoin(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = parallelSpeedup(b, core.ParallelJoinQuery)
	}
	b.ReportMetric(speedup, "join-4w/1w-speedup")
}

// BenchmarkSharedScan measures cross-query work sharing: concurrent
// clients run the selective-scan analog (Q6, private parameters each) on
// one simulated 4-core FC chip, unshared (private scans) versus shared
// (one circular shared scan + per-client filters). Since PR 3 both modes
// run on the vectorized executor, so the unshared baseline is ~5x faster
// than the old row-at-a-time scans and sharing's remaining edge — one
// decode pass plus store-free consumers — is modest when the table is
// cache-resident, as it is at this test scale (sharing's big win needs
// the table to exceed the L2: at full scale, 38 MB vs 26 MB, the same
// measurement gives ~1.3x at 4 clients). The smoke bar is therefore
// that sharing never loses (>= 1.05x at 4 clients); the vectorization
// gain itself is gated separately by BenchmarkVectorized.
func BenchmarkSharedScan(b *testing.B) {
	var un, sh core.SharedDSSResult
	var ratio float64
	for i := 0; i < b.N; i++ {
		cell := core.DefaultCell(sim.FatCamp, core.DSS, true)
		cell.WarmRefs = 20000
		var err error
		un, sh, ratio, err = runner().SharedSpeedup(cell, 6, 4, 7)
		if err != nil {
			b.Fatal(err)
		}
		if un.Rows == 0 || sh.Rows == 0 {
			b.Fatal("shared-scan benchmark produced no rows")
		}
		if ratio < 1.05 {
			b.Fatalf("shared mode only %.2fx unshared aggregate throughput, acceptance bar is 1.05x (cycles %d vs %d)",
				ratio, un.Cycles, sh.Cycles)
		}
	}
	b.ReportMetric(ratio, "shared/unshared-throughput-x")
	b.ReportMetric(sh.Throughput(), "shared-q/Mcycle")
	b.ReportMetric(un.Throughput(), "unshared-q/Mcycle")
}

// vectorizedSpeedup measures one serial query on the row-at-a-time
// reference operators and on the vectorized executor, on the same
// simulated 4-core FC chip, returning cycles(row)/cycles(vectorized).
func vectorizedSpeedup(b *testing.B, q int) float64 {
	b.Helper()
	cell := core.DefaultCell(sim.FatCamp, core.DSS, true)
	cell.WarmRefs = 5000
	row, vec, speedup, err := runner().VectorizedSpeedup(cell, q, 7)
	if err != nil {
		b.Fatal(err)
	}
	if row.Rows == 0 || vec.Rows == 0 {
		b.Fatal("vectorized benchmark produced no rows")
	}
	return speedup
}

// BenchmarkVectorized gates the vectorized executor's payoff on the
// scan-dominated selective-scan analog (Q6): block-at-a-time execution
// must deliver >= 1.5x the row-at-a-time path's throughput on the
// simulated 4-core FC chip (the PR 3 acceptance bar; observed ~1.9x in
// cycles, ~12x in instructions — the cycle gain is smaller because both
// paths move the same page bytes through the cache hierarchy).
func BenchmarkVectorized(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = vectorizedSpeedup(b, 6)
		if speedup < 1.5 {
			b.Fatalf("vectorized Q6 only %.2fx the row-at-a-time path, acceptance bar is 1.5x", speedup)
		}
	}
	b.ReportMetric(speedup, "scan-vec/row-speedup")
}

// BenchmarkVectorizedAgg measures the vectorized speedup on the
// scan+aggregate analog (Q1).
func BenchmarkVectorizedAgg(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = vectorizedSpeedup(b, 1)
	}
	b.ReportMetric(speedup, "agg-vec/row-speedup")
}

// BenchmarkVectorizedJoin measures the vectorized speedup on the
// outer-join analog (Q13).
func BenchmarkVectorizedJoin(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = vectorizedSpeedup(b, 13)
	}
	b.ReportMetric(speedup, "join-vec/row-speedup")
}

// BenchmarkStagedOLTP gates the STEPS-style staged transaction executor:
// the same deterministic transaction stream runs monolithically (each
// transaction cycles through its type's 8-16 KB code body) and
// cohort-scheduled (stage cohorts through ~18 KB of shared stage
// segments) on identical chip geometry. The cohort path must cut
// simulated L1I misses by at least 5x (observed ~40-80x) and produce
// byte-identical database state — StagedOLTPSpeedup fails the run on any
// digest mismatch.
func BenchmarkStagedOLTP(b *testing.B) {
	var missRed, speedup float64
	var mono, coh core.StagedOLTPResult
	for i := 0; i < b.N; i++ {
		cell := core.DefaultCell(sim.FatCamp, core.OLTP, false)
		cell.WarmRefs = 10000
		var err error
		mono, coh, missRed, speedup, err = runner().StagedOLTPSpeedup(cell, core.StagedOLTPOpts{
			Clients: 8, PerClient: 6, Cohort: 16, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if mono.Txns == 0 || coh.Txns != mono.Txns {
			b.Fatalf("work mismatch: %d monolithic vs %d cohort txns", mono.Txns, coh.Txns)
		}
		if missRed < 5 {
			b.Fatalf("cohort scheduling cut L1I misses only %.2fx (%d -> %d), acceptance bar is 5x",
				missRed, mono.Result.Cache.L1IMisses, coh.Result.Cache.L1IMisses)
		}
	}
	b.ReportMetric(missRed, "L1Imiss-mono/cohort-x")
	b.ReportMetric(speedup, "cohort-speedup-x")
	b.ReportMetric(mono.IStallFrac()*100, "mono-istall-%")
	b.ReportMetric(coh.IStallFrac()*100, "cohort-istall-%")
}

// BenchmarkStagedOLTPParallel gates the partitioned staged-OLTP executor:
// the same deterministic 4-warehouse transaction stream runs on the
// cohort scheduler at 1, 2, and 4 partitions (one scheduler worker per
// simulated core, commits drained in global admission order through the
// cross-partition clock). Every digest must be byte-identical to the
// monolithic reference (StagedOLTPScaling fails the run otherwise),
// parts=2 must beat parts=1 on simulated cycles, and parts=4 must reach
// >= 2x (observed ~3x; the residual gap to 4x is partition imbalance in
// the multinomial warehouse draw).
func BenchmarkStagedOLTPParallel(b *testing.B) {
	sweep := core.DefaultPartitionSweep()
	r := core.NewRunner(sweep.Scale)
	var scaling []float64
	var runs []core.StagedOLTPResult
	for i := 0; i < b.N; i++ {
		var err error
		_, runs, scaling, err = r.StagedOLTPScaling(sweep.Cell, sweep.Opts, sweep.Parts)
		if err != nil {
			b.Fatal(err)
		}
		if scaling[1] <= 1.0 {
			b.Fatalf("parts=2 is %.2fx parts=1 (cycles %d vs %d); partitioning must not lose",
				scaling[1], runs[1].Cycles, runs[0].Cycles)
		}
		if scaling[2] < 2.0 {
			b.Fatalf("parts=4 only %.2fx parts=1 (cycles %d vs %d), acceptance bar is 2x",
				scaling[2], runs[2].Cycles, runs[0].Cycles)
		}
	}
	b.ReportMetric(scaling[1], "2part/1part-speedup")
	b.ReportMetric(scaling[2], "4part/1part-speedup")
	b.ReportMetric(runs[2].TxnsPerMcycle(), "4part-txn/Mcycle")
}

// BenchmarkSimCycleRate measures raw simulator speed (host ns per
// simulated cycle) on a saturated LC chip.
func BenchmarkSimCycleRate(b *testing.B) {
	c := benchCell(sim.LeanCamp, core.OLTP, true)
	c.WindowCycles = 100000
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, c)
		cycles += res.Result.Cycles
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "host-ns/cycle")
}
