#!/usr/bin/env bash
# End-to-end smoke of cmd/dbserver: build it, start it at test scale,
# serve one DSS query and one OLTP transaction batch over HTTP, check
# the executor counters on /metrics are live (non-zero parks from the
# cohort scheduler, non-zero rotations from the shared scan), then
# SIGTERM it mid-load and require a clean graceful-drain exit (code 0).
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:${DBSERVER_PORT:-18844}"
BASE="http://$ADDR"

go build -o /tmp/dbserver ./cmd/dbserver

/tmp/dbserver -addr "$ADDR" -scale test -max-inflight 8 -per-tenant 8 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "dbserver died on startup" >&2; exit 1; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q ok

# One DSS query (shared-dss raises the rotation counters) and one OLTP
# batch (raises the park counters), concurrently — the acceptance mix.
curl -fsS -X POST "$BASE/v1/query" -H 'X-Tenant: smoke-dss' \
  -d '{"mode":"shared-dss","query":6,"clients":3}' >/tmp/dbserver_query.json &
QPID=$!
curl -fsS -X POST "$BASE/v1/txn" -H 'X-Tenant: smoke-oltp' \
  -d '{"clients":6,"txns":4}' >/tmp/dbserver_txn.json
wait "$QPID"

grep -q '"digest"' /tmp/dbserver_query.json
grep -q '"digest"' /tmp/dbserver_txn.json
# The staged pair's digests must be byte-identical (server enforces it;
# a response that exists at all already passed, but check the fields).
python3 - <<'EOF'
import json
txn = json.load(open('/tmp/dbserver_txn.json'))
assert txn['baseline']['digest'] == txn['main']['digest'], txn
assert txn['main']['txns'] == 24, txn
q = json.load(open('/tmp/dbserver_query.json'))
assert q['mode'] == 'shared-dss' and q['main']['cycles'] > 0, q
EOF

# A traced async batch must serve a Chrome trace once done.
curl -fsS -X POST "$BASE/v1/txn" -H 'X-Tenant: smoke-trace' \
  -d '{"clients":4,"txns":2,"async":true,"trace":true}' >/tmp/dbserver_job.json
JOB=$(python3 -c "import json; print(json.load(open('/tmp/dbserver_job.json'))['id'])")
for i in $(seq 1 600); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB" | python3 -c "import json,sys; print(json.load(sys.stdin)['status'])")
  [ "$STATUS" = done ] && break
  if [ "$STATUS" = error ]; then echo "traced job failed" >&2; exit 1; fi
  sleep 0.1
done
curl -fsS "$BASE/v1/jobs/$JOB/trace" >/tmp/dbserver_trace.json
python3 - <<'EOF'
import json
t = json.load(open('/tmp/dbserver_trace.json'))
evs = t['traceEvents']
assert any(e['ph'] == 'X' and e['cat'] == 'run' for e in evs), 'no run span'
assert any('wall_us' in e.get('args', {}) for e in evs), 'no wall clock in args'
assert len(evs) > 10, f'only {len(evs)} events'
EOF

# Scrape /metrics: the executor counters and the latency histograms must
# be live.
curl -fsS "$BASE/metrics" >/tmp/dbserver_metrics.txt
for metric in dbserver_sched_parks_total dbserver_scan_rotations_total dbserver_requests_total; do
  val=$(awk -v m="$metric" '$1 == m {print $2}' /tmp/dbserver_metrics.txt)
  if [ -z "$val" ] || [ "$val" -eq 0 ]; then
    echo "metric $metric is missing or zero" >&2
    cat /tmp/dbserver_metrics.txt >&2
    exit 1
  fi
done
for hist in dbserver_request_seconds dbserver_queue_wait_seconds dbserver_run_cycles; do
  if ! grep -q "^# TYPE $hist histogram" /tmp/dbserver_metrics.txt ||
     ! grep -q "^${hist}_bucket" /tmp/dbserver_metrics.txt; then
    echo "histogram $hist missing from /metrics" >&2
    cat /tmp/dbserver_metrics.txt >&2
    exit 1
  fi
done

# Graceful drain: SIGTERM mid-load; the in-flight request must finish
# with 200 and the process must exit 0.
curl -fsS -X POST "$BASE/v1/txn" -H 'X-Tenant: smoke-drain' \
  -d '{"clients":6,"txns":4}' >/tmp/dbserver_drain.json &
DPID=$!
sleep 0.2
kill -TERM "$PID"
wait "$DPID"
grep -q '"digest"' /tmp/dbserver_drain.json
wait "$PID"
CODE=$?
if [ "$CODE" -ne 0 ]; then
  echo "dbserver exited $CODE after SIGTERM" >&2
  exit 1
fi
trap - EXIT
echo "server smoke OK: query + txn served, counters live, clean drain"
