package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
)

func testManager() *Manager {
	arena := mem.NewArena(mem.HeapBase, 16<<20)
	return NewManager(arena, mem.NewCodeMap())
}

func TestSharedLocksCompatible(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if err := a.Lock(nil, 1, Shared); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(nil, 1, Shared); err != nil {
		t.Fatal(err)
	}
	a.Commit(nil)
	b.Commit(nil)
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	if err := a.Lock(nil, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		b := m.Begin(nil)
		if err := b.Lock(nil, 7, Exclusive); err != nil {
			t.Error(err)
			return
		}
		acquired.Store(true)
		b.Commit(nil)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("waiter acquired while held")
	}
	a.Commit(nil)
	<-done
	if !acquired.Load() {
		t.Fatal("waiter never acquired")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	if err := a.Lock(nil, 3, Shared); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(nil, 3, Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade with no other holders must succeed.
	if err := a.Lock(nil, 3, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(nil, 3, Shared); err != nil {
		t.Fatal(err) // X covers S
	}
	a.Commit(nil)
}

func TestDeadlockDetected(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if err := a.Lock(nil, 100, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(nil, 200, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Each goroutine closes the cycle and resolves its own transaction:
	// the deadlock victim aborts (releasing locks so the peer proceeds).
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	attempt := func(tx *Txn, key uint64) {
		defer wg.Done()
		err := tx.Lock(nil, key, Exclusive)
		errs <- err
		if err != nil {
			tx.Abort(nil)
		} else {
			tx.Commit(nil)
		}
	}
	go attempt(a, 200)
	go func() {
		// Give A a moment to start waiting so the cycle exists.
		time.Sleep(20 * time.Millisecond)
		attempt(b, 100)
	}()
	wg.Wait()
	close(errs)
	var deadlocks, ok int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || ok != 1 {
		t.Fatalf("want exactly one deadlock and one grant, got deadlocks=%d ok=%d", deadlocks, ok)
	}
}

func TestAbortRunsUndoInReverse(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	var order []int
	a.OnAbort(nil, 32, func() { order = append(order, 1) })
	a.OnAbort(nil, 32, func() { order = append(order, 2) })
	a.Abort(nil)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v, want [2 1]", order)
	}
}

func TestCommitDiscardsUndo(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	ran := false
	a.OnAbort(nil, 16, func() { ran = true })
	a.Commit(nil)
	if ran {
		t.Fatal("undo ran on commit")
	}
}

func TestDoubleFinishPanics(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	a.Commit(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double finish did not panic")
		}
	}()
	a.Commit(nil)
}

func TestLogLSNMonotonic(t *testing.T) {
	arena := mem.NewArena(mem.HeapBase, 8<<20)
	l := NewLog(arena, 1<<20, mem.NewCodeMap())
	var prev uint64
	for i := 0; i < 1000; i++ {
		lsn := l.Append(nil, 100)
		if lsn <= prev {
			t.Fatalf("LSN not monotonic: %d after %d", lsn, prev)
		}
		prev = lsn
	}
	if l.LSN() != 1000 {
		t.Fatalf("LSN = %d", l.LSN())
	}
}

func TestLogWraps(t *testing.T) {
	arena := mem.NewArena(mem.HeapBase, 8<<20)
	l := NewLog(arena, 1<<16, mem.NewCodeMap())
	for i := 0; i < 100; i++ {
		l.Append(nil, 4096) // 100*4KB >> 64KB ring
	}
	if l.LSN() != 100 {
		t.Fatalf("LSN after wrap = %d", l.LSN())
	}
}

func TestConcurrentTransfersConsistent(t *testing.T) {
	// Bank-transfer style workload: total balance must be conserved under
	// concurrent locking, and deadlocks must resolve by abort+retry.
	m := testManager()
	const accounts = 20
	const workers = 8
	const transfers = 300
	balances := make([]int64, accounts)
	for i := range balances {
		balances[i] = 1000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed)*2654435761 + 1
			for i := 0; i < transfers; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % accounts
				to := (from + 1 + int(rng>>21)%(accounts-1)) % accounts
				for {
					tx := m.Begin(nil)
					k1, k2 := uint64(from), uint64(to)
					err := tx.Lock(nil, k1, Exclusive)
					if err == nil {
						err = tx.Lock(nil, k2, Exclusive)
					}
					if err != nil {
						tx.Abort(nil)
						continue // retry
					}
					old1, old2 := balances[from], balances[to]
					tx.OnAbort(nil, 32, func() { balances[from], balances[to] = old1, old2 })
					balances[from] -= 5
					balances[to] += 5
					tx.Commit(nil)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, b := range balances {
		total += b
	}
	if total != accounts*1000 {
		t.Fatalf("balance not conserved: %d", total)
	}
}
