package txn

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestTryAcquireGrantsAndParks covers the basic non-blocking contract:
// grant when free, park (with blocker ids) when held, grant on retry
// after the holder releases.
func TestTryAcquireGrantsAndParks(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if _, err := a.TryLock(nil, 9, Exclusive); err != nil {
		t.Fatal(err)
	}
	blockers, err := b.TryLock(nil, 9, Exclusive)
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	if len(blockers) != 1 || blockers[0] != a.ID {
		t.Fatalf("blockers = %v, want [%d]", blockers, a.ID)
	}
	a.Commit(nil)
	if _, err := b.TryLock(nil, 9, Exclusive); err != nil {
		t.Fatalf("retry after release: %v", err)
	}
	b.Commit(nil)
}

// TestTryAcquireSharedModes checks S/S compatibility and the S->X
// upgrade conflict through the non-blocking path.
func TestTryAcquireSharedModes(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if _, err := a.TryLock(nil, 4, Shared); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TryLock(nil, 4, Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade with another S holder parks and names it.
	blockers, err := a.TryLock(nil, 4, Exclusive)
	if !errors.Is(err, ErrWouldBlock) || len(blockers) != 1 || blockers[0] != b.ID {
		t.Fatalf("upgrade conflict: blockers=%v err=%v", blockers, err)
	}
	b.Commit(nil)
	if _, err := a.TryLock(nil, 4, Exclusive); err != nil {
		t.Fatalf("upgrade alone: %v", err)
	}
	a.Commit(nil)
}

// TestDeadlockAcrossParkedContinuations is the yield-path regression the
// staged executor relies on: transaction A parks (its continuation
// yields, no thread blocks), and when B's request would close the cycle
// the wait-for graph detects it immediately — across parked
// continuations, not sleeping threads.
func TestDeadlockAcrossParkedContinuations(t *testing.T) {
	m := testManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if _, err := a.TryLock(nil, 100, Exclusive); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TryLock(nil, 200, Exclusive); err != nil {
		t.Fatal(err)
	}
	// A parks on 200 (held by B): edge A -> B recorded, nobody sleeps.
	if _, err := a.TryLock(nil, 200, Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want park, got %v", err)
	}
	// B requesting 100 would close the cycle.
	blockers, err := b.TryLock(nil, 100, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if len(blockers) != 1 || blockers[0] != a.ID {
		t.Fatalf("deadlock blockers = %v, want [%d]", blockers, a.ID)
	}
	// Victim aborts; the parked continuation's retry now succeeds.
	b.Abort(nil)
	if _, err := a.TryLock(nil, 200, Exclusive); err != nil {
		t.Fatalf("retry after victim abort: %v", err)
	}
	a.Commit(nil)
}

// TestAbortMidStageUndoesPartialWrites models a wound: a transaction that
// has applied part of its updates parks on a lock and is then aborted —
// its undo images must restore every partial write and its locks must be
// released for the wounding transaction to take.
func TestAbortMidStageUndoesPartialWrites(t *testing.T) {
	m := testManager()
	older := m.Begin(nil)
	younger := m.Begin(nil)

	balance, stockQty := 100.0, int64(50)
	if _, err := younger.TryLock(nil, 1, Exclusive); err != nil {
		t.Fatal(err)
	}
	old1 := balance
	younger.OnAbort(nil, 32, func() { balance = old1 })
	balance -= 30 // stage 1 applied

	if _, err := younger.TryLock(nil, 2, Exclusive); err != nil {
		t.Fatal(err)
	}
	old2 := stockQty
	younger.OnAbort(nil, 32, func() { stockQty = old2 })
	stockQty -= 5 // stage 2 applied

	// Stage 3 parks on a lock the older transaction holds.
	if _, err := older.TryLock(nil, 3, Exclusive); err != nil {
		t.Fatal(err)
	}
	if _, err := younger.TryLock(nil, 3, Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("younger should park")
	}

	// Older wounds younger mid-stage.
	younger.Abort(nil)
	if balance != 100.0 || stockQty != 50 {
		t.Fatalf("partial writes not undone: balance=%v qty=%v", balance, stockQty)
	}
	// Younger's locks are free again.
	if _, err := older.TryLock(nil, 1, Exclusive); err != nil {
		t.Fatalf("wounded locks not released: %v", err)
	}
	older.Commit(nil)
}

// TestGenerationAdvancesOnRelease pins the dormant-park optimization's
// contract: the generation only moves when locks are released.
func TestGenerationAdvancesOnRelease(t *testing.T) {
	m := testManager()
	g0 := m.LM.Generation()
	a := m.Begin(nil)
	if _, err := a.TryLock(nil, 5, Exclusive); err != nil {
		t.Fatal(err)
	}
	if g := m.LM.Generation(); g != g0 {
		t.Fatalf("generation moved on acquire: %d -> %d", g0, g)
	}
	a.Commit(nil)
	if g := m.LM.Generation(); g <= g0 {
		t.Fatalf("generation did not advance on release: %d -> %d", g0, g)
	}
}

// TestTryAcquireRaceHammer hammers the park/retry path from many
// goroutines (run with -race): bank transfers where every lock is taken
// through TryAcquire and a blocked transaction spins by yielding, exactly
// like a parked continuation being re-scheduled. Totals must be
// conserved and every deadlock resolved by abort+retry.
func TestTryAcquireRaceHammer(t *testing.T) {
	m := testManager()
	const accounts = 16
	const workers = 8
	const transfers = 200
	var mu sync.Mutex
	balances := make([]int64, accounts)
	for i := range balances {
		balances[i] = 1000
	}

	tryLockSpin := func(tx *Txn, key uint64) bool {
		for {
			_, err := tx.TryLock(nil, key, Exclusive)
			switch {
			case err == nil:
				return true
			case errors.Is(err, ErrWouldBlock):
				runtime.Gosched() // park: yield the worker, retry later
			default:
				return false // deadlock: abort and retry the transfer
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			for i := 0; i < transfers; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % accounts
				to := (from + 1 + int(rng>>21)%(accounts-1)) % accounts
				for {
					tx := m.Begin(nil)
					if !tryLockSpin(tx, uint64(from)) || !tryLockSpin(tx, uint64(to)) {
						tx.Abort(nil)
						runtime.Gosched()
						continue
					}
					mu.Lock()
					old1, old2 := balances[from], balances[to]
					balances[from] -= 7
					balances[to] += 7
					mu.Unlock()
					tx.OnAbort(nil, 32, func() {
						mu.Lock()
						balances[from], balances[to] = old1, old2
						mu.Unlock()
					})
					tx.Commit(nil)
					break
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	var total int64
	for _, b := range balances {
		total += b
	}
	if total != accounts*1000 {
		t.Fatalf("balance not conserved: %d", total)
	}
}
