// Package txn provides transactions for the OLTP workloads: a strict
// two-phase-locking lock manager with wait-for-graph deadlock detection,
// a write-ahead log living in the simulated address space, and undo-based
// aborts.
//
// Lock-table probes and log appends are traced like every other engine
// access: lock metadata is a hashed region of the heap arena (shared,
// write-hot — the classic OLTP coherence traffic of Figure 7), and log
// appends are sequential stores.
package txn

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/trace"
)

// ErrDeadlock is returned when granting a lock would create a wait cycle;
// the caller must abort the transaction.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrWouldBlock is returned by the non-blocking TryAcquire path when the
// lock is held in an incompatible mode: the transaction should park at a
// stage boundary and retry at its next scheduling quantum instead of
// stalling its worker thread.
var ErrWouldBlock = errors.New("txn: lock busy, park and retry")

// errTimeout guards tests against undetected lost wakeups.
var errTimeout = errors.New("txn: lock wait timed out")

// LockMode is shared or exclusive.
type LockMode uint8

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

func (m LockMode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

type lockEntry struct {
	holders map[uint64]LockMode
	waiters int
}

// LockManager implements strict 2PL over abstract uint64 resource keys.
type LockManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[uint64]*lockEntry
	waitFor map[uint64]map[uint64]bool // txn -> txns it waits on
	gen     uint64                     // bumped on every release

	tableAddr mem.Addr
	tableLen  int
	code      mem.CodeSeg
}

// NewLockManager creates a manager whose lock-table metadata occupies
// slots hashed entries in arena.
func NewLockManager(arena *mem.Arena, slots int, codes *mem.CodeMap) *LockManager {
	if slots <= 0 {
		slots = 1 << 14
	}
	lm := &LockManager{
		locks:     make(map[uint64]*lockEntry),
		waitFor:   make(map[uint64]map[uint64]bool),
		tableAddr: arena.Alloc(slots*32, mem.LineSize),
		tableLen:  slots,
		code:      codes.Register("txn:lockmgr", 3584),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

func (lm *LockManager) slotAddr(key uint64) mem.Addr {
	h := key * 0x9E3779B97F4A7C15
	return lm.tableAddr + mem.Addr(h%uint64(lm.tableLen))*32
}

// compatible reports whether txn may hold key in mode given holders.
func compatible(e *lockEntry, txn uint64, mode LockMode) bool {
	for h, m := range e.holders {
		if h == txn {
			continue
		}
		if mode == Exclusive || m == Exclusive {
			return false
		}
	}
	return true
}

// wouldDeadlock checks whether txn waiting on key's holders closes a cycle
// in the wait-for graph. Called with mu held.
func (lm *LockManager) wouldDeadlock(txn uint64, e *lockEntry) bool {
	// Tentatively add edges txn -> holders and DFS for a path back to txn.
	var stack []uint64
	for h := range e.holders {
		if h != txn {
			stack = append(stack, h)
		}
	}
	seen := map[uint64]bool{}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range lm.waitFor[cur] {
			stack = append(stack, next)
		}
	}
	return false
}

// Acquire takes key in mode for txn, blocking until granted. It returns
// ErrDeadlock when waiting would create a cycle. Re-acquiring a held key
// (or upgrading S->X when alone) succeeds.
func (lm *LockManager) Acquire(rec *trace.Recorder, txn, key uint64, mode LockMode) error {
	rec.Exec(lm.code, 80)
	rec.Load(lm.slotAddr(key), true)

	lm.mu.Lock()
	defer lm.mu.Unlock()
	e := lm.locks[key]
	if e == nil {
		e = &lockEntry{holders: make(map[uint64]LockMode)}
		lm.locks[key] = e
	}
	// The deadline is a host-time safety net only: simulated clients are
	// paced by the simulator's trace consumption, so a lock can be held
	// for minutes of host time on heavily multiplexed chips.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if m, held := e.holders[txn]; held && (m == Exclusive || mode == Shared) {
			return nil // already sufficient
		}
		if compatible(e, txn, mode) {
			e.holders[txn] = mode
			delete(lm.waitFor, txn)
			// The grant dirties the lock slot: shared write-hot metadata.
			rec.Store(lm.slotAddr(key))
			return nil
		}
		if lm.wouldDeadlock(txn, e) {
			delete(lm.waitFor, txn)
			return ErrDeadlock
		}
		// Record wait edges and sleep.
		edges := lm.waitFor[txn]
		if edges == nil {
			edges = make(map[uint64]bool)
			lm.waitFor[txn] = edges
		}
		for h := range e.holders {
			if h != txn {
				edges[h] = true
			}
		}
		e.waiters++
		waitCond(lm.cond, deadline)
		e.waiters--
		if time.Now().After(deadline) {
			delete(lm.waitFor, txn)
			return errTimeout
		}
	}
}

// TryAcquire attempts to take key in mode for txn without ever blocking
// the calling thread. On success the lock is granted exactly as Acquire
// would grant it. On conflict it records txn's wait-for edges (replacing
// any edges from a previous park, so a parked transaction that is retried
// always reflects its current blockers) and returns the conflicting
// holder ids with ErrWouldBlock; the caller parks the transaction's
// continuation and retries later. When recording the wait would close a
// cycle in the wait-for graph it returns ErrDeadlock instead — deadlock
// detection works across parked continuations because parked waiters
// leave their edges in place until they are granted, aborted, or retried.
func (lm *LockManager) TryAcquire(rec *trace.Recorder, txn, key uint64, mode LockMode) ([]uint64, error) {
	rec.Exec(lm.code, 40)
	rec.Load(lm.slotAddr(key), true)

	lm.mu.Lock()
	defer lm.mu.Unlock()
	e := lm.locks[key]
	if e == nil {
		e = &lockEntry{holders: make(map[uint64]LockMode)}
		lm.locks[key] = e
	}
	if m, held := e.holders[txn]; held && (m == Exclusive || mode == Shared) {
		delete(lm.waitFor, txn)
		return nil, nil // already sufficient
	}
	if compatible(e, txn, mode) {
		e.holders[txn] = mode
		delete(lm.waitFor, txn)
		rec.Store(lm.slotAddr(key))
		return nil, nil
	}
	// Conflict: compute the blocker set (reported with either outcome so
	// the caller's scheduling policy — e.g. wound-wait by admission
	// order — can pick a victim on deadlock too).
	edges := make(map[uint64]bool)
	blockers := make([]uint64, 0, len(e.holders))
	for h := range e.holders {
		if h != txn {
			edges[h] = true
			blockers = append(blockers, h)
		}
	}
	slices.Sort(blockers)
	if lm.wouldDeadlock(txn, e) {
		delete(lm.waitFor, txn)
		return blockers, ErrDeadlock
	}
	// Park: replace txn's wait edges with the current conflict set.
	lm.waitFor[txn] = edges
	return blockers, ErrWouldBlock
}

// CancelWait clears txn's wait-for edges without granting anything: a
// parked transaction that gives up (abort without ever holding locks)
// must not leave stale edges behind.
func (lm *LockManager) CancelWait(txn uint64) {
	lm.mu.Lock()
	delete(lm.waitFor, txn)
	lm.mu.Unlock()
}

// waitCond waits on c with a crude deadline safety net.
func waitCond(c *sync.Cond, deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(time.Until(deadline)):
			c.Broadcast()
		}
	}()
	c.Wait()
	close(done)
}

// Generation returns a counter that advances whenever locks are
// released. Cooperative schedulers use it to keep parked continuations
// dormant while nothing can possibly have unblocked them.
func (lm *LockManager) Generation() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.gen
}

// ReleaseAll drops every lock txn holds (commit/abort).
func (lm *LockManager) ReleaseAll(rec *trace.Recorder, txn uint64, keys []uint64) {
	rec.Exec(lm.code, 20+5*len(keys))
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.gen++
	for _, key := range keys {
		if e := lm.locks[key]; e != nil {
			delete(e.holders, txn)
			rec.Store(lm.slotAddr(key))
			if len(e.holders) == 0 && e.waiters == 0 {
				delete(lm.locks, key)
			}
		}
	}
	delete(lm.waitFor, txn)
	lm.cond.Broadcast()
}

// Log is a write-ahead log whose buffer is a ring in the simulated heap.
type Log struct {
	mu   sync.Mutex
	addr mem.Addr
	size int
	head int
	lsn  uint64
	code mem.CodeSeg
}

// NewLog allocates a ring of size bytes in arena.
func NewLog(arena *mem.Arena, size int, codes *mem.CodeMap) *Log {
	if size < 1<<16 {
		size = 1 << 16
	}
	return &Log{
		addr: arena.Alloc(size, mem.LineSize),
		size: size,
		code: codes.Register("txn:log", 2048),
	}
}

// Append writes a record of n bytes and returns its LSN. Contents are not
// materialized (recovery is out of scope); the sequential stores are what
// the memory system sees.
func (l *Log) Append(rec *trace.Recorder, n int) uint64 {
	rec.Exec(l.code, 55)
	l.mu.Lock()
	if l.head+n > l.size {
		l.head = 0
	}
	at := l.addr + mem.Addr(l.head)
	l.head += n
	l.lsn++
	lsn := l.lsn
	l.mu.Unlock()
	rec.StoreRange(at, n)
	return lsn
}

// LSN returns the last assigned LSN.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Manager creates transactions bound to a lock manager and log.
type Manager struct {
	LM  *LockManager
	Log *Log

	mu   sync.Mutex
	next uint64
}

// NewManager builds a transaction manager.
func NewManager(arena *mem.Arena, codes *mem.CodeMap) *Manager {
	return &Manager{
		LM:  NewLockManager(arena, 1<<14, codes),
		Log: NewLog(arena, 4<<20, codes),
	}
}

// Begin starts a transaction.
func (m *Manager) Begin(rec *trace.Recorder) *Txn {
	m.mu.Lock()
	m.next++
	id := m.next
	m.mu.Unlock()
	rec.Exec(m.LM.code, 15)
	return &Txn{ID: id, mgr: m}
}

// Txn is one transaction: held locks plus an undo list.
type Txn struct {
	ID   uint64
	mgr  *Manager
	keys []uint64
	undo []func()
	done bool
}

// Lock acquires key in the given mode under this transaction.
func (t *Txn) Lock(rec *trace.Recorder, key uint64, mode LockMode) error {
	if err := t.mgr.LM.Acquire(rec, t.ID, key, mode); err != nil {
		return err
	}
	t.keys = append(t.keys, key)
	return nil
}

// TryLock acquires key without blocking. On conflict it returns the
// holding transaction ids with ErrWouldBlock (the continuation should
// park and retry) or ErrDeadlock when waiting would close a cycle.
func (t *Txn) TryLock(rec *trace.Recorder, key uint64, mode LockMode) ([]uint64, error) {
	blockers, err := t.mgr.LM.TryAcquire(rec, t.ID, key, mode)
	if err != nil {
		return blockers, err
	}
	t.keys = append(t.keys, key)
	return nil, nil
}

// Finished reports whether the transaction has committed or aborted.
func (t *Txn) Finished() bool { return t.done }

// OnAbort registers an undo action (a closure restoring a before-image)
// and logs the corresponding record of n simulated bytes.
func (t *Txn) OnAbort(rec *trace.Recorder, n int, undo func()) {
	t.mgr.Log.Append(rec, n)
	t.undo = append(t.undo, undo)
}

// Commit logs the commit record and releases locks.
func (t *Txn) Commit(rec *trace.Recorder) {
	if t.done {
		panic(fmt.Sprintf("txn %d finished twice", t.ID))
	}
	t.done = true
	t.mgr.Log.Append(rec, 16)
	t.mgr.LM.ReleaseAll(rec, t.ID, t.keys)
	t.undo = nil
}

// Abort runs undo actions in reverse and releases locks.
func (t *Txn) Abort(rec *trace.Recorder) {
	if t.done {
		panic(fmt.Sprintf("txn %d finished twice", t.ID))
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.mgr.Log.Append(rec, 16)
	t.mgr.LM.ReleaseAll(rec, t.ID, t.keys)
	t.undo = nil
}
