// SeqClock: the deterministic cross-partition handoff of a partitioned
// cohort-scheduled run. Transactions are partitioned by home warehouse
// across scheduler workers, but the byte-identical-digest contract is
// stated against the monolithic reference executing the global admission
// order — so commits (the only point where deferred inserts reach the
// shared heaps and indexes) must drain in global admission order, and
// cross-partition transactions (which read and write other partitions'
// rows) must run in global isolation. The clock provides both: it tracks
// the lowest uncommitted global sequence number, gates each commit on its
// turn, and holds every transaction younger than a pending fence until
// the fenced transaction has committed.

package txn

import (
	"slices"
	"sync"
)

// SeqClock orders the commits of a partitioned run by global admission
// sequence and fences cross-partition transactions into global isolation.
// All methods are safe for concurrent use by the partition workers.
type SeqClock struct {
	mu   sync.Mutex
	cond *sync.Cond

	next   int   // lowest uncommitted global sequence number
	fences []int // sorted global seqs that require isolation
	fi     int   // index of the first fence >= next
	gen    uint64
	err    error
}

// NewSeqClock builds a clock over the given fence sequence numbers (the
// global seqs of cross-partition transactions; order does not matter).
func NewSeqClock(fences []int) *SeqClock {
	c := &SeqClock{fences: slices.Clone(fences)}
	slices.Sort(c.fences)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// pendingFence returns the earliest uncommitted fence seq, or -1.
// Called with mu held.
func (c *SeqClock) pendingFence() int {
	for c.fi < len(c.fences) && c.fences[c.fi] < c.next {
		c.fi++
	}
	if c.fi < len(c.fences) {
		return c.fences[c.fi]
	}
	return -1
}

// StepReady reports whether the transaction at global sequence seq may
// execute a non-commit step now. A transaction younger than a pending
// fence may not begin (or continue) until the fenced transaction commits;
// the fenced transaction itself runs only once it is the globally oldest
// in flight — at which point it executes in total isolation, every older
// transaction committed and every younger one held at this gate.
func (c *SeqClock) StepReady(seq int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.pendingFence()
	switch {
	case f < 0 || seq < f:
		return true
	case seq == f:
		return c.next == seq
	default:
		return false
	}
}

// CommitReady reports whether the transaction at global sequence seq may
// execute its commit step: every globally older transaction committed.
func (c *SeqClock) CommitReady(seq int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next == seq
}

// Commit marks seq committed and advances the clock, waking waiters. The
// caller must have gated the commit step on CommitReady, so out-of-order
// commits are a scheduler bug, not a runtime condition.
func (c *SeqClock) Commit(seq int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq != c.next {
		panic("txn: SeqClock commit out of global admission order")
	}
	c.next++
	c.gen++
	c.cond.Broadcast()
}

// Next returns the lowest uncommitted global sequence number.
func (c *SeqClock) Next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Gen returns the clock's change counter (bumped on Commit and Fail).
func (c *SeqClock) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// WaitChange blocks until the clock's generation differs from seen or the
// run failed, returning the new generation and whether the run is still
// healthy. Partition workers call it when a whole quantum is blocked on
// the clock.
func (c *SeqClock) WaitChange(seen uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.gen == seen && c.err == nil {
		c.cond.Wait()
	}
	return c.gen, c.err == nil
}

// Fail aborts the run: waiters wake and report failure, so one
// partition's error cannot leave the others blocked forever.
func (c *SeqClock) Fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	c.gen++
	c.cond.Broadcast()
}

// Err returns the failure recorded by Fail, if any.
func (c *SeqClock) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
