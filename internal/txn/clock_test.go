package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestSeqClockCommitOrder(t *testing.T) {
	c := NewSeqClock(nil)
	if !c.CommitReady(0) || c.CommitReady(1) {
		t.Fatal("only seq 0 may commit first")
	}
	c.Commit(0)
	if c.Next() != 1 || !c.CommitReady(1) {
		t.Fatal("clock did not advance to 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order commit did not panic")
		}
	}()
	c.Commit(5)
}

func TestSeqClockFenceGates(t *testing.T) {
	// Fence at seq 2: 0 and 1 run freely, 2 runs only in isolation
	// (next == 2), everyone younger waits for 2 to commit.
	c := NewSeqClock([]int{2})
	if !c.StepReady(0) || !c.StepReady(1) {
		t.Fatal("transactions older than the fence must run")
	}
	if c.StepReady(2) {
		t.Fatal("fenced transaction ran before becoming globally oldest")
	}
	if c.StepReady(3) || c.StepReady(7) {
		t.Fatal("transactions younger than a pending fence must wait")
	}
	c.Commit(0)
	c.Commit(1)
	if !c.StepReady(2) {
		t.Fatal("fenced transaction must run once globally oldest")
	}
	if c.StepReady(3) {
		t.Fatal("younger transaction ran while the fence was in flight")
	}
	c.Commit(2)
	if !c.StepReady(3) || !c.StepReady(7) {
		t.Fatal("fence did not lift after the fenced commit")
	}
}

func TestSeqClockFailWakesWaiters(t *testing.T) {
	c := NewSeqClock(nil)
	done := make(chan bool)
	go func() {
		_, ok := c.WaitChange(c.Gen())
		done <- ok
	}()
	c.Fail(errors.New("partition 1 exploded"))
	if ok := <-done; ok {
		t.Fatal("waiter reported healthy after Fail")
	}
	if c.Err() == nil {
		t.Fatal("Err lost the failure")
	}
}

// TestSeqClockHammer is the -race hammer for the cross-partition
// handoff: four goroutines share a clock, each owning a quarter of the
// sequence space (round-robin), committing its turn as soon as
// CommitReady allows and waiting on WaitChange otherwise — the same
// pattern the partitioned scheduler drives.
func TestSeqClockHammer(t *testing.T) {
	const total = 400
	fences := []int{50, 151, 252, 353} // one fence per owner
	c := NewSeqClock(fences)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := c.Gen()
			for seq := p; seq < total; seq += 4 {
				for {
					if c.StepReady(seq) && c.CommitReady(seq) {
						c.Commit(seq)
						break
					}
					var ok bool
					gen, ok = c.WaitChange(gen)
					if !ok {
						t.Errorf("owner %d: clock failed", p)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if c.Next() != total {
		t.Fatalf("clock stopped at %d of %d", c.Next(), total)
	}
}
