// Cross-query work sharing for the DSS analogs: shared-scan variants of
// Q1/Q6/Q13 that attach to the registry's circular scans instead of
// running private SeqScans, result reuse for their aggregate outputs, and
// a multi-client driver firing mixes of the three from K concurrent
// clients — the saturated many-users regime the paper's Section 6 says
// staged, work-shared engines should serve with one pass over the data.

package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/share"
)

// SharedQueries lists the analogs with shared-scan plans (the Q1/Q6/Q13
// mix the concurrent driver fires).
var SharedQueries = []int{1, 6, 13}

// ShareEnv bundles the work-sharing services of one server instance.
type ShareEnv struct {
	Reg   *share.Registry
	Cache *share.ResultCache
}

// NewShareEnv builds a default registry and result cache over the DSS
// database.
func (h *TPCH) NewShareEnv() *ShareEnv {
	return &ShareEnv{
		Reg:   share.NewRegistry(h.DB, share.Config{}),
		Cache: share.NewResultCache(128),
	}
}

// NewShareEnvWith builds an environment with an explicit registry
// configuration (simulated drivers bind producer contexts to chip
// threads) and optional result cache.
func (h *TPCH) NewShareEnvWith(cfg share.Config, cache *share.ResultCache) *ShareEnv {
	return &ShareEnv{Reg: share.NewRegistry(h.DB, cfg), Cache: cache}
}

// Q1Shared computes Q1 through the circular shared scan of lineitem on
// the vectorized executor: the rotation's blocks flow straight into the
// per-query filter, map, and aggregate with no re-materialization. The
// returned start page is the rotation's origin: the row order — and so
// the result, bit for bit — equals serial Q1 with StartPage pinned there.
func (h *TPCH) Q1Shared(ctx *engine.Ctx, p QueryParams, reg *share.Registry) ([][]engine.Value, int, error) {
	preds, mapped, fn, aggs := h.q1Pieces(p)
	rd := reg.Attach(h.lineitem)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.SharedScan{Table: h.lineitem, Preds: preds, Source: rd},
			Out:   mapped,
			Fn:    fn,
			Cost:  18,
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
	}
	rows, err := engine.Collect(ctx, &engine.Sort{Child: &engine.RowAdapter{Vec: plan}, Col: 0})
	return rows, rd.StartPage(), err
}

// Q6Shared computes Q6 through the circular shared scan of lineitem.
func (h *TPCH) Q6Shared(ctx *engine.Ctx, p QueryParams, reg *share.Registry) ([][]engine.Value, int, error) {
	preds, mapped, fn, aggs := h.q6Pieces(p)
	rd := reg.Attach(h.lineitem)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.SharedScan{Table: h.lineitem, Preds: preds, Source: rd},
			Out:   mapped,
			Fn:    fn,
			Cost:  12,
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
	}
	rows, err := engine.CollectVec(ctx, plan)
	return rows, rd.StartPage(), err
}

// Q13Shared computes Q13 with the orders scan — the build side that every
// concurrent Q13 repeats — routed through the shared registry; the small
// customer probe side stays private.
func (h *TPCH) Q13Shared(ctx *engine.Ctx, p QueryParams, reg *share.Registry) ([][]engine.Value, int, error) {
	os := h.orders.Schema
	rd := reg.Attach(h.orders)
	join := &engine.HashJoinVec{
		Probe: &engine.ScanVec{Table: h.customer, Cols: []int{0}},
		Build: &engine.SharedScan{
			Table:  h.orders,
			Preds:  []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
			Source: rd,
		},
		ProbeCol: 0, BuildCol: os.Col("o_custkey"),
		Type:     engine.LeftOuter,
		Expected: h.nOrders,
	}
	rows, err := engine.Collect(ctx, h.q13TailVec(join))
	return rows, rd.StartPage(), err
}

// q13MapPieces returns the match-tagging transform every Q13 tail
// shares: a matched join row carries a real order (o_totalprice > 0);
// unmatched outer rows are zero-filled. tpOff is the totalprice byte
// offset in the join-output row — 8+16 for the full-width orders build,
// 8+8 for the native plan's projected [o_custkey, o_totalprice] build.
func (h *TPCH) q13MapPieces(tpOff int) (out engine.Schema, fn func(in, out []byte)) {
	out = engine.Schema{engine.Int("custkey"), engine.Int("matched")}
	fn = func(in, o []byte) {
		engine.PutRowInt(o, 0, engine.RowInt(in, 0))
		matched := int64(0)
		if engine.RowFloat(in, tpOff) > 0 {
			matched = 1
		}
		engine.PutRowInt(o, 8, matched)
	}
	return out, fn
}

// q13Tail builds Q13's post-join pipeline on the row operators: tag
// matches, count orders per customer, then count customers per
// order-count. Kept as the reference tail for Q13Row.
func (h *TPCH) q13Tail(join engine.Op) engine.Op {
	out, fn := h.q13MapPieces(8 + 16)
	mapped := &engine.Map{Child: join, Out: out, Fn: fn, Cost: 10}
	perCustomer := &engine.HashAgg{
		Child:     mapped,
		GroupCols: []int{0},
		Aggs:      []engine.AggSpec{{Func: engine.Sum, Col: 1, Name: "c_count"}},
		Expected:  h.nCustomers,
	}
	distribution := &engine.HashAgg{
		Child:     perCustomer,
		GroupCols: []int{1},
		Aggs:      []engine.AggSpec{{Func: engine.Count, Name: "custdist"}},
		Expected:  64,
	}
	return &engine.Sort{Child: distribution, Col: 1, Desc: true}
}

// q13TailVec is q13Tail on the vectorized operators (shared by the
// serial-vectorized and shared-scan variants). Both aggregates absorb in
// the same row order as the row tail, so results are byte-identical.
func (h *TPCH) q13TailVec(join engine.VecOp) engine.Op {
	return h.q13TailVecOpts(join, false, 8+16)
}

// q13TailVecOpts is q13TailVec with the aggregates' interpreted escape
// hatch exposed (the native golden reference runs the tail without the
// compiled group kernels too) and the join row's totalprice offset
// parameterized (the native plan narrows the build side).
func (h *TPCH) q13TailVecOpts(join engine.VecOp, interpret bool, tpOff int) engine.Op {
	out, fn := h.q13MapPieces(tpOff)
	mapped := &engine.MapVec{Child: join, Out: out, Fn: fn, Cost: 10}
	perCustomer := &engine.HashAggVec{
		Child:     mapped,
		GroupCols: []int{0},
		Aggs:      []engine.AggSpec{{Func: engine.Sum, Col: 1, Name: "c_count"}},
		Expected:  h.nCustomers,
		Interpret: interpret,
	}
	distribution := &engine.HashAggVec{
		Child:     perCustomer,
		GroupCols: []int{1},
		Aggs:      []engine.AggSpec{{Func: engine.Count, Name: "custdist"}},
		Expected:  64,
		Interpret: interpret,
	}
	return &engine.Sort{Child: &engine.RowAdapter{Vec: distribution}, Col: 1, Desc: true}
}

// resultKey builds the reuse-cache key for query q with parameters p: the
// fingerprint of the canonical (origin-free) plan plus the current write
// versions of every table the plan reads. The versions are read before
// execution, so a write racing the query can only cause a miss later,
// never a stale hit.
func (h *TPCH) resultKey(q int, p QueryParams) (share.ResultKey, error) {
	switch q {
	case 1:
		preds, mapped, _, aggs := h.q1Pieces(p)
		plan := &engine.HashAgg{
			Child:     &engine.Map{Child: &engine.SeqScan{Table: h.lineitem, Preds: preds}, Out: mapped, Cost: 18},
			GroupCols: []int{0, 1}, Aggs: aggs, Expected: 8,
		}
		return share.ResultKey{
			Tables:   "lineitem",
			Versions: share.Versions(h.lineitem.Version()),
			Plan:     engine.PlanFingerprint(&engine.Sort{Child: plan, Col: 0}),
		}, nil
	case 6:
		preds, mapped, _, aggs := h.q6Pieces(p)
		plan := &engine.HashAgg{
			Child:     &engine.Map{Child: &engine.SeqScan{Table: h.lineitem, Preds: preds}, Out: mapped, Cost: 12},
			GroupCols: []int{0}, Aggs: aggs, Expected: 2,
		}
		return share.ResultKey{
			Tables:   "lineitem",
			Versions: share.Versions(h.lineitem.Version()),
			Plan:     engine.PlanFingerprint(plan),
		}, nil
	case 13:
		os := h.orders.Schema
		join := &engine.HashJoin{
			Left: &engine.SeqScan{Table: h.customer, Cols: []int{0}},
			Right: &engine.SeqScan{
				Table: h.orders,
				Preds: []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
			},
			LeftCol: 0, RightCol: os.Col("o_custkey"),
			Type: engine.LeftOuter,
		}
		return share.ResultKey{
			Tables:   "customer,orders",
			Versions: share.Versions(h.customer.Version(), h.orders.Version()),
			Plan:     engine.PlanFingerprint(h.q13Tail(join)),
		}, nil
	}
	return share.ResultKey{}, fmt.Errorf("workload: no shared variant of query %d (have %v)", q, SharedQueries)
}

// RunQueryShared executes query q (1, 6, or 13) through the work-sharing
// subsystem: a result-cache hit returns the memoized rows; otherwise the
// scan rides the table's circular shared scan and the aggregate result is
// memoized under the pre-execution table versions. A nil env (or nil
// env.Reg) falls back to the private serial plan.
func (h *TPCH) RunQueryShared(ctx *engine.Ctx, q int, p QueryParams, env *ShareEnv) ([][]engine.Value, error) {
	if env == nil || env.Reg == nil {
		return h.RunQuery(ctx, q, p)
	}
	var key share.ResultKey
	if env.Cache != nil {
		var err error
		key, err = h.resultKey(q, p)
		if err != nil {
			return nil, err
		}
		if rows, ok := env.Cache.Get(key); ok {
			// A hit costs a key probe and a copy-out of the small result.
			code := ctx.DB.Codes.Register("share:cachehit", 1024)
			ctx.Rec.Exec(code, 150+4*len(rows))
			return rows, nil
		}
	}
	var rows [][]engine.Value
	var err error
	switch q {
	case 1:
		rows, _, err = h.Q1Shared(ctx, p, env.Reg)
	case 6:
		rows, _, err = h.Q6Shared(ctx, p, env.Reg)
	case 13:
		rows, _, err = h.Q13Shared(ctx, p, env.Reg)
	default:
		return nil, fmt.Errorf("workload: no shared variant of query %d (have %v)", q, SharedQueries)
	}
	if err == nil && env.Cache != nil {
		env.Cache.Put(key, rows)
	}
	return rows, err
}

// ConcurrentDSSResult summarizes one multi-client run.
type ConcurrentDSSResult struct {
	Clients int
	Queries int // completed queries across all clients
	Elapsed time.Duration
	Cache   share.CacheStats
	Scans   share.Stats
}

// Throughput returns queries per second of host time.
func (r ConcurrentDSSResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// RunConcurrentDSS fires rounds queries from each of clients concurrent
// clients, drawing from the Q1/Q6/Q13 mix with private predicate
// parameters. With env non-nil, scans ride the shared registry and
// aggregates the result cache; with env nil every client runs the
// private serial plans — the unshared baseline. It runs natively (no
// simulation); simulated comparisons live in core.RunSharedDSS.
func (h *TPCH) RunConcurrentDSS(clients, rounds int, env *ShareEnv, seed int64) (ConcurrentDSSResult, error) {
	if clients <= 0 || rounds <= 0 {
		return ConcurrentDSSResult{}, fmt.Errorf("workload: concurrent DSS with %d clients x %d rounds", clients, rounds)
	}
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := h.DB.NewCtx(nil, i, 16<<20)
			prng := rand.New(rand.NewSource(seed + int64(i)))
			for r := 0; r < rounds; r++ {
				q := SharedQueries[(i+r)%len(SharedQueries)]
				p := RandomParams(prng)
				ctx.Work.Reset()
				var err error
				if env != nil {
					_, err = h.RunQueryShared(ctx, q, p, env)
				} else {
					p.Phase = float64(i%16) / 80 // the unshared clients' staggered convention
					_, err = h.RunQuery(ctx, q, p)
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := ConcurrentDSSResult{Clients: clients, Queries: clients * rounds, Elapsed: time.Since(start)}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	if env != nil {
		env.Reg.WaitIdle()
		res.Scans = env.Reg.Stats()
		if env.Cache != nil {
			res.Cache = env.Cache.Stats()
		}
	}
	return res, nil
}
