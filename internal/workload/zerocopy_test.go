// Golden equivalence tests for zero-copy execution: borrowed
// (page-aliasing) native plans must return byte-identical results to the
// standard plans on both layouts, serial and morsel-parallel, and every
// run must end with zero outstanding page leases — a leaked lease means
// some borrowed block never released its pin.

package workload

import (
	"testing"

	"repro/internal/storage"
)

// leaseCheck fails the test when outstanding page leases survive a run.
func leaseCheck(t *testing.T, h *TPCH, what string) {
	t.Helper()
	if n := h.DB.Pool.Leases(); n != 0 {
		t.Fatalf("%s: %d page leases outstanding, want 0", what, n)
	}
}

// TestZeroCopyGoldenSerial: on both layouts, the zero-copy native flavor
// of Q1/Q6/Q13 is byte-identical to the standard vectorized plan, with
// no lease leaked. NSM full-row scans and single-column PAX scans take
// the alias fast path; shapes it rejects fall back to copying per page —
// either way the rows must match exactly.
func TestZeroCopyGoldenSerial(t *testing.T) {
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		h := vecTPCH(t, layout)
		ctx := h.DB.NewCtx(nil, 61, 48<<20)
		for _, q := range []int{1, 6, 13} {
			ctx.Work.Reset()
			want, err := h.RunQuery(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("q%d/%v: empty reference result", q, layout)
			}
			ctx.Work.Reset()
			got, err := h.RunQueryNative(ctx, q, p, NativeOpts{ZeroCopy: true})
			if err != nil {
				t.Fatal(err)
			}
			name := layout.String() + "/q" + string(rune('0'+q)) + "/zero-copy"
			exactRows(t, name, got, want)
			leaseCheck(t, h, name)
		}
	}
}

// TestZeroCopyGoldenParallel: morsel-parallel zero-copy runs agree with
// the serial zero-copy plan at every worker count (Q13 as a multiset —
// parallel join arrival order is not deterministic), leaking no leases.
func TestZeroCopyGoldenParallel(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	serial := h.DB.NewCtx(nil, 62, 48<<20)
	for _, q := range []int{1, 6, 13} {
		serial.Work.Reset()
		want, err := h.RunQueryNative(serial, q, p, NativeOpts{ZeroCopy: true})
		if err != nil {
			t.Fatal(err)
		}
		if q == 13 {
			want = canonRows(want)
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := h.RunQueryParallelNative(nativeWorkerCtxs(h, workers), q, p, NativeOpts{ZeroCopy: true})
			if err != nil {
				t.Fatal(err)
			}
			if q == 13 {
				got = canonRows(got)
			}
			sameRows(t, "zero-copy-parallel", got, want)
			leaseCheck(t, h, "zero-copy-parallel")
		}
	}
}

// TestZeroCopyParallelRaceHammer repeatedly drives 8-worker zero-copy
// parallel plans so `go test -race` can watch borrowed blocks cross the
// morsel pool, the partitioned join, and the recycle rings; every
// iteration must end lease-clean.
func TestZeroCopyParallelRaceHammer(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	iters := 6
	if testing.Short() {
		iters = 2
	}
	ctxs := nativeWorkerCtxs(h, 8)
	for i := 0; i < iters; i++ {
		for _, q := range []int{1, 6, 13} {
			for _, c := range ctxs {
				c.Work.Reset()
			}
			rows, err := h.RunQueryParallelNative(ctxs, q, p, NativeOpts{ZeroCopy: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				t.Fatalf("iter %d q%d: empty result", i, q)
			}
			leaseCheck(t, h, "race-hammer")
		}
	}
}
