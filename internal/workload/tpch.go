package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/trace"
)

// TPCHConfig scales the DSS database. Row counts follow TPC-H's ratios
// (lineitem : orders : customer = 4 : 1 : 0.1) at a reduced scale factor;
// the paper argues (citing DBmbench) that microarchitectural behaviour is
// insensitive to dataset scale.
type TPCHConfig struct {
	Lineitems  int // default 400000 (~38 MB table)
	Layout     storage.Layout
	ArenaBytes int // default 256 MB
	Seed       int64
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.Lineitems == 0 {
		c.Lineitems = 400000
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = 256 << 20
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	return c
}

// Dates are encoded as days since 1992-01-01; shipdate spans ~7 years.
const dateRange = 2556

// TPCH is a loaded DSS database plus the four query analogs.
type TPCH struct {
	Cfg TPCHConfig
	DB  *engine.DB

	lineitem, orders, customer          *engine.Table
	part, partsupp, supplier            *engine.Table
	nOrders, nCustomers, nParts, nSupps int
}

// BuildTPCH creates and loads the database.
func BuildTPCH(cfg TPCHConfig) (*TPCH, error) {
	cfg = cfg.withDefaults()
	db := engine.NewDB(engine.Config{ArenaBytes: cfg.ArenaBytes})
	h := &TPCH{Cfg: cfg, DB: db}
	h.nOrders = cfg.Lineitems / 4
	h.nCustomers = cfg.Lineitems / 40
	h.nParts = cfg.Lineitems / 20
	h.nSupps = cfg.Lineitems/400 + 10

	var err error
	mk := func(name string, s engine.Schema) *engine.Table {
		if err != nil {
			return nil
		}
		var t *engine.Table
		t, err = db.CreateTable(name, s, cfg.Layout)
		return t
	}
	h.lineitem = mk("lineitem", engine.Schema{
		engine.Int("l_orderkey"), engine.Int("l_partkey"), engine.Int("l_suppkey"),
		engine.Float("l_quantity"), engine.Float("l_extendedprice"),
		engine.Float("l_discount"), engine.Float("l_tax"),
		engine.Char("l_returnflag", 4), engine.Char("l_linestatus", 4),
		engine.Int("l_shipdate"),
	})
	h.orders = mk("orders", engine.Schema{
		engine.Int("o_orderkey"), engine.Int("o_custkey"), engine.Float("o_totalprice"),
		engine.Int("o_orderdate"), engine.Int("o_special"),
	})
	h.customer = mk("customer", engine.Schema{
		engine.Int("c_custkey"), engine.Char("c_mktsegment", 12), engine.Char("c_name", 20),
	})
	h.part = mk("part", engine.Schema{
		engine.Int("p_partkey"), engine.Char("p_brand", 12),
		engine.Char("p_type", 16), engine.Int("p_size"),
	})
	h.partsupp = mk("partsupp", engine.Schema{
		engine.Int("ps_partkey"), engine.Int("ps_suppkey"),
		engine.Float("ps_supplycost"), engine.Int("ps_availqty"),
	})
	h.supplier = mk("supplier", engine.Schema{
		engine.Int("s_suppkey"), engine.Char("s_name", 20),
	})
	if err != nil {
		return nil, err
	}
	if err := h.load(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *TPCH) load() error {
	rng := rand.New(rand.NewSource(h.Cfg.Seed))
	flags := []string{"A", "N", "R"}
	status := []string{"O", "F"}
	for c := 0; c < h.nCustomers; c++ {
		if _, err := h.customer.Insert(nil, []engine.Value{
			engine.IV(int64(c)), engine.SV([]string{"BUILDING", "AUTOMOBILE", "MACHINERY"}[c%3]),
			engine.SV(fmt.Sprintf("cust-%d", c)),
		}); err != nil {
			return err
		}
	}
	for s := 0; s < h.nSupps; s++ {
		if _, err := h.supplier.Insert(nil, []engine.Value{
			engine.IV(int64(s)), engine.SV(fmt.Sprintf("supp-%d", s)),
		}); err != nil {
			return err
		}
	}
	for p := 0; p < h.nParts; p++ {
		if _, err := h.part.Insert(nil, []engine.Value{
			engine.IV(int64(p)),
			engine.SV(fmt.Sprintf("Brand#%d%d", 1+p%5, 1+p/5%5)),
			engine.SV(fmt.Sprintf("TYPE %d", p%25)),
			engine.IV(int64(1 + p%50)),
		}); err != nil {
			return err
		}
		// Four suppliers per part, as in TPC-H.
		for k := 0; k < 4; k++ {
			if _, err := h.partsupp.Insert(nil, []engine.Value{
				engine.IV(int64(p)), engine.IV(int64((p*4 + k) % h.nSupps)),
				engine.FV(10 + 90*rng.Float64()), engine.IV(int64(rng.Intn(10000))),
			}); err != nil {
				return err
			}
		}
	}
	for o := 0; o < h.nOrders; o++ {
		special := int64(0)
		if rng.Intn(50) == 0 {
			special = 1 // ~2% "special requests" comments (Q13's NOT LIKE)
		}
		if _, err := h.orders.Insert(nil, []engine.Value{
			engine.IV(int64(o)), engine.IV(int64(rng.Intn(h.nCustomers))),
			engine.FV(1000 * rng.Float64()), engine.IV(int64(rng.Intn(dateRange))),
			engine.IV(special),
		}); err != nil {
			return err
		}
	}
	for l := 0; l < h.Cfg.Lineitems; l++ {
		vals := []engine.Value{
			engine.IV(int64(l / 4)), // orderkey: ~4 lines per order
			engine.IV(int64(rng.Intn(h.nParts))),
			engine.IV(int64(rng.Intn(h.nSupps))),
			engine.FV(float64(1 + rng.Intn(50))),
			engine.FV(100 + 900*rng.Float64()),
			engine.FV(float64(rng.Intn(11)) / 100),
			engine.FV(float64(rng.Intn(9)) / 100),
			engine.SV(flags[rng.Intn(3)]),
			engine.SV(status[rng.Intn(2)]),
			engine.IV(int64(rng.Intn(dateRange))),
		}
		if _, err := h.lineitem.Insert(nil, vals); err != nil {
			return err
		}
	}
	return nil
}

// Lineitem exposes the fact table for experiments that build custom plans
// (the staged-execution study).
func (h *TPCH) Lineitem() *engine.Table { return h.lineitem }

// QueryParams randomizes query predicates, as the paper's DSS clients do.
type QueryParams struct {
	Date     int64   // Q1 cutoff / Q6 start
	Discount float64 // Q6 center
	Quantity float64 // Q6 bound
	Brand    int     // Q16 excluded brand
	// Phase rotates scan origins (circular shared scans), in [0, 1);
	// concurrent clients use staggered phases.
	Phase float64
	// StartPage, when positive, pins the scan origin to heap page
	// StartPage-1 (1-based so the zero value means "unset" and page 0
	// remains representable), overriding Phase. Shared-scan equivalence
	// tests use it to replay a rotation's row order serially.
	StartPage int
}

// RandomParams draws predicate parameters.
func RandomParams(rng *rand.Rand) QueryParams {
	return QueryParams{
		Date:     int64(dateRange*3/4 + rng.Intn(dateRange/8)),
		Discount: 0.02 + float64(rng.Intn(8))/100,
		Quantity: float64(24 + rng.Intn(2)),
		Brand:    1 + rng.Intn(5),
	}
}

// q1Pieces returns the plan fragments Q1 and Q1Parallel share: the scan
// predicates, the Map output schema and row transform, and the aggregate
// specs. The transform is stateless (it writes only its out argument), so
// one value is safe across workers, each inside its own Map instance.
func (h *TPCH) q1Pieces(p QueryParams) (preds []engine.Pred, mapped engine.Schema, fn func(in, out []byte), aggs []engine.AggSpec) {
	ls := h.lineitem.Schema
	mapped = engine.Schema{
		engine.Char("l_returnflag", 4), engine.Char("l_linestatus", 4),
		engine.Float("qty"), engine.Float("price"), engine.Float("disc_price"),
		engine.Float("discount"),
	}
	qtyOff := ls.Offsets()[ls.Col("l_quantity")]
	priceOff := ls.Offsets()[ls.Col("l_extendedprice")]
	discOff := ls.Offsets()[ls.Col("l_discount")]
	rfOff := ls.Offsets()[ls.Col("l_returnflag")]
	lsOff := ls.Offsets()[ls.Col("l_linestatus")]
	preds = []engine.Pred{engine.PredInt(ls.Col("l_shipdate"), engine.LE, p.Date)}
	fn = func(in, out []byte) {
		copy(out[0:4], in[rfOff:rfOff+4])
		copy(out[4:8], in[lsOff:lsOff+4])
		qty := engine.RowFloat(in, qtyOff)
		price := engine.RowFloat(in, priceOff)
		disc := engine.RowFloat(in, discOff)
		engine.PutRowFloat(out, 8, qty)
		engine.PutRowFloat(out, 16, price)
		engine.PutRowFloat(out, 24, price*(1-disc))
		engine.PutRowFloat(out, 32, disc)
	}
	aggs = []engine.AggSpec{
		{Func: engine.Sum, Col: 2, Name: "sum_qty"},
		{Func: engine.Sum, Col: 3, Name: "sum_base_price"},
		{Func: engine.Sum, Col: 4, Name: "sum_disc_price"},
		{Func: engine.Avg, Col: 2, Name: "avg_qty"},
		{Func: engine.Avg, Col: 3, Name: "avg_price"},
		{Func: engine.Avg, Col: 5, Name: "avg_disc"},
		{Func: engine.Count, Name: "count_order"},
	}
	return preds, mapped, fn, aggs
}

// Q1 is the scan-dominated pricing-summary analog: scan lineitem below a
// ship date, group by (returnflag, linestatus), and compute the standard
// sums and averages. It runs on the vectorized executor; Q1Row is the
// row-at-a-time reference plan with identical semantics (results are
// byte-identical — same scan order, same accumulator machinery).
func (h *TPCH) Q1(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q1Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.ScanVec{
				Table:     h.lineitem,
				Preds:     preds,
				StartPage: h.scanOrigin(h.lineitem, p),
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 18,
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
	}
	return engine.Collect(ctx, &engine.Sort{Child: &engine.RowAdapter{Vec: plan}, Col: 0})
}

// Q1Row is Q1 on the row-at-a-time seed operators (the reference path
// golden tests and the vectorized-speedup comparison run against).
func (h *TPCH) Q1Row(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q1Pieces(p)
	plan := &engine.HashAgg{
		Child: &engine.Map{
			Child: &engine.SeqScan{
				Table:     h.lineitem,
				Preds:     preds,
				StartPage: h.scanOrigin(h.lineitem, p),
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 18,
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
	}
	return engine.Collect(ctx, &engine.Sort{Child: plan, Col: 0})
}

// q6Pieces returns the plan fragments Q6 and Q6Parallel share.
func (h *TPCH) q6Pieces(p QueryParams) (preds []engine.Pred, mapped engine.Schema, fn func(in, out []byte), aggs []engine.AggSpec) {
	ls := h.lineitem.Schema
	priceOff := ls.Offsets()[ls.Col("l_extendedprice")]
	discOff := ls.Offsets()[ls.Col("l_discount")]
	preds = []engine.Pred{
		engine.PredIntBetween(ls.Col("l_shipdate"), p.Date-365, p.Date),
		engine.PredFloatBetween(ls.Col("l_discount"), p.Discount-0.01, p.Discount+0.01),
		engine.PredFloat(ls.Col("l_quantity"), engine.LT, p.Quantity),
	}
	mapped = engine.Schema{engine.Int("one"), engine.Float("revenue")}
	fn = func(in, out []byte) {
		engine.PutRowInt(out, 0, 1)
		engine.PutRowFloat(out, 8, engine.RowFloat(in, priceOff)*engine.RowFloat(in, discOff))
	}
	aggs = []engine.AggSpec{{Func: engine.Sum, Col: 1, Name: "revenue"}}
	return preds, mapped, fn, aggs
}

// Q6 is the selective-scan forecasting-revenue analog: a tight filter on
// date, discount, and quantity, summing extendedprice*discount. It runs
// on the vectorized executor; Q6Row is the row-at-a-time reference.
func (h *TPCH) Q6(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q6Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.ScanVec{
				Table:     h.lineitem,
				Preds:     preds,
				StartPage: h.scanOrigin(h.lineitem, p),
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 12,
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
	}
	return engine.CollectVec(ctx, plan)
}

// Q6Row is Q6 on the row-at-a-time seed operators.
func (h *TPCH) Q6Row(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q6Pieces(p)
	plan := &engine.HashAgg{
		Child: &engine.Map{
			Child: &engine.SeqScan{
				Table:     h.lineitem,
				Preds:     preds,
				StartPage: h.scanOrigin(h.lineitem, p),
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 12,
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
	}
	return engine.Collect(ctx, plan)
}

// Q13 is the outer-join customer-distribution analog: customers left
// outer join their non-special orders, count orders per customer, then
// count customers per order-count. It runs on the vectorized executor;
// Q13Row is the row-at-a-time reference.
func (h *TPCH) Q13(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	os := h.orders.Schema
	join := &engine.HashJoinVec{
		Probe: &engine.ScanVec{Table: h.customer, Cols: []int{0}},
		Build: &engine.ScanVec{
			Table:     h.orders,
			Preds:     []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
			StartPage: h.scanOrigin(h.orders, p),
		},
		ProbeCol: 0, BuildCol: os.Col("o_custkey"),
		Type:     engine.LeftOuter,
		Expected: h.nOrders,
	}
	// The post-join pipeline (match tagging and the two aggregations) is
	// shared with Q13Shared — see q13TailVec in share.go. A matched join
	// row carries a real order; unmatched (outer) rows are zero-filled,
	// and o_totalprice > 0 distinguishes them.
	return engine.Collect(ctx, h.q13TailVec(join))
}

// Q13Row is Q13 on the row-at-a-time seed operators.
func (h *TPCH) Q13Row(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	os := h.orders.Schema
	join := &engine.HashJoin{
		Left: &engine.SeqScan{Table: h.customer, Cols: []int{0}},
		Right: &engine.SeqScan{
			Table:     h.orders,
			Preds:     []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
			StartPage: h.scanOrigin(h.orders, p),
		},
		LeftCol: 0, RightCol: os.Col("o_custkey"),
		Type: engine.LeftOuter,
	}
	return engine.Collect(ctx, h.q13Tail(join))
}

// Q16 is the join-dominated supplier-relationship analog: partsupp joined
// with filtered parts, counting distinct suppliers per (brand, type,
// size). Distinctness comes from a first-level grouping.
func (h *TPCH) Q16(ctx *engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	ps := h.part.Schema
	brand := fmt.Sprintf("Brand#%d%d", p.Brand, p.Brand)
	join := &engine.HashJoin{
		Left: &engine.SeqScan{
			Table: h.partsupp, Cols: []int{0, 1},
			StartPage: h.scanOrigin(h.partsupp, p),
		},
		Right: &engine.SeqScan{
			Table: h.part,
			Preds: []engine.Pred{
				engine.PredStr(ps.Col("p_brand"), engine.NE, brand),
				engine.PredInt(ps.Col("p_size"), engine.LE, 25),
			},
		},
		LeftCol: 0, RightCol: 0,
	}
	// Distinct (brand, type, size, suppkey) first.
	distinct := &engine.HashAgg{
		Child:     join,
		GroupCols: []int{3, 4, 5, 1}, // p_brand, p_type, p_size, ps_suppkey
		Aggs:      []engine.AggSpec{{Func: engine.Count, Name: "dummy"}},
		Expected:  h.nParts,
	}
	counts := &engine.HashAgg{
		Child:     distinct,
		GroupCols: []int{0, 1, 2},
		Aggs:      []engine.AggSpec{{Func: engine.Count, Name: "supplier_cnt"}},
		Expected:  1024,
	}
	return engine.Collect(ctx, &engine.Sort{Child: counts, Col: 3, Desc: true})
}

// phasePage converts a phase fraction into a starting page for t.
func (h *TPCH) phasePage(t *engine.Table, phase float64) int {
	n := t.Heap.NumPages()
	if n == 0 || phase <= 0 {
		return 0
	}
	return int(phase * float64(n))
}

// scanOrigin resolves a query's scan origin on t: an explicit StartPage
// (1-based) wins, otherwise the phase fraction.
func (h *TPCH) scanOrigin(t *engine.Table, p QueryParams) int {
	if p.StartPage > 0 {
		return p.StartPage - 1
	}
	return h.phasePage(t, p.Phase)
}

// RunQuery executes query q (1, 6, 13, 16) on the vectorized executor
// and returns its result rows (Q16 has no vectorized plan and runs on
// the row operators).
func (h *TPCH) RunQuery(ctx *engine.Ctx, q int, p QueryParams) ([][]engine.Value, error) {
	switch q {
	case 1:
		return h.Q1(ctx, p)
	case 6:
		return h.Q6(ctx, p)
	case 13:
		return h.Q13(ctx, p)
	case 16:
		return h.Q16(ctx, p)
	}
	return nil, fmt.Errorf("workload: no query %d (have 1, 6, 13, 16)", q)
}

// RunQueryRow executes query q on the row-at-a-time reference operators —
// the seed's Volcano plans, kept for golden equivalence tests and the
// vectorized-vs-row speedup measurements.
func (h *TPCH) RunQueryRow(ctx *engine.Ctx, q int, p QueryParams) ([][]engine.Value, error) {
	switch q {
	case 1:
		return h.Q1Row(ctx, p)
	case 6:
		return h.Q6Row(ctx, p)
	case 13:
		return h.Q13Row(ctx, p)
	case 16:
		return h.Q16(ctx, p)
	}
	return nil, fmt.Errorf("workload: no query %d (have 1, 6, 13, 16)", q)
}

// Queries lists the implemented TPC-H analogs in the paper's order.
var Queries = []int{1, 6, 13, 16}

// Client runs queries from the paper's mix until the recorder stops (or
// limit queries complete; 0 = unlimited), closing the recorder on exit.
// The workspace is reset between queries.
//
// All clients draw the query ORDER from a shared sequence while predicate
// parameters stay private per client. Concurrent scans of the same tables
// therefore run phase-aligned, modelling the convoyed steady state of
// long-running multi-client DSS systems (trailing scans travel in the
// leader's L2 wake); from a random initial phase the convoy forms over
// tens of millions of cycles, far beyond a sampled measurement window.
func (h *TPCH) Client(rec *trace.Recorder, worker int, seed int64, limit int) (int, error) {
	return h.client(rec, worker, seed, limit, h.RunQuery)
}

// ClientRow is Client on the row-at-a-time reference operators (used by
// validation cells whose analytic models assume per-tuple blocking
// access patterns, and by vectorized-vs-row comparisons).
func (h *TPCH) ClientRow(rec *trace.Recorder, worker int, seed int64, limit int) (int, error) {
	return h.client(rec, worker, seed, limit, h.RunQueryRow)
}

func (h *TPCH) client(rec *trace.Recorder, worker int, seed int64, limit int, run func(*engine.Ctx, int, QueryParams) ([][]engine.Value, error)) (int, error) {
	defer rec.Close()
	ctx := h.DB.NewCtx(rec, worker, 96<<20)
	qrng := rand.New(rand.NewSource(4242)) // shared query order
	prng := rand.New(rand.NewSource(seed)) // private predicate parameters
	ran := 0
	for !rec.Stopped() {
		q := Queries[qrng.Intn(len(Queries))]
		ctx.Work.Reset()
		p := RandomParams(prng)
		// Staggered circular-scan phases ~0.5 MB apart on lineitem: small
		// caches cannot hold a leader's wake long enough for trailers to
		// reuse it; large caches can, which is the paper's DSS sharing
		// effect (Figures 6 and 8).
		p.Phase = float64(worker%16) / 80
		if _, err := run(ctx, q, p); err != nil {
			return ran, err
		}
		ran++
		if limit > 0 && ran >= limit {
			break
		}
	}
	return ran, nil
}

// RunOnce executes a single query for unsaturated (response-time)
// experiments, closing the recorder when the query completes. rowPlans
// selects the row-at-a-time reference operators instead of the
// vectorized default.
func (h *TPCH) RunOnce(rec *trace.Recorder, worker int, q int, seed int64, rowPlans bool) error {
	defer rec.Close()
	ctx := h.DB.NewCtx(rec, worker, 96<<20)
	rng := rand.New(rand.NewSource(seed))
	if rowPlans {
		_, err := h.RunQueryRow(ctx, q, RandomParams(rng))
		return err
	}
	_, err := h.RunQuery(ctx, q, RandomParams(rng))
	return err
}
