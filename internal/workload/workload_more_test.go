package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

func TestTraceDeterminismPerSeed(t *testing.T) {
	// Identical seeds must produce identical trace prefixes — the basis
	// of the paired-measurement methodology.
	collect := func() []trace.Ref {
		w := smallTPCC(t)
		rec, s := trace.Pipe()
		go w.Client(rec, 0, 777, 5)
		var refs []trace.Ref
		for len(refs) < 20000 {
			r, ok := s.Next()
			if !ok {
				break
			}
			refs = append(refs, r)
		}
		s.Stop()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		return refs
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at ref %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewOrderStockConsistency(t *testing.T) {
	// Sum of stock order counts must equal the number of order lines
	// written (every line bumps exactly one stock row's counter).
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	var orderCnt int64
	rows, err := engine.Collect(ctx, &engine.SeqScan{Table: w.stock})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		orderCnt += r[3].I // s_order_cnt
	}
	if int(orderCnt) != w.orderline.Heap.Rows() {
		t.Fatalf("stock order counts %d != order lines %d", orderCnt, w.orderline.Heap.Rows())
	}
}

func TestOrderLineAmountsPositive(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 20; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := engine.Collect(ctx, &engine.SeqScan{Table: w.orderline})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no order lines")
	}
	for _, r := range rows {
		if r[3].F <= 0 { // ol_amount
			t.Fatalf("non-positive amount %v", r[3].F)
		}
		if q := r[2].I; q < 1 || q > 10 {
			t.Fatalf("quantity %d out of range", q)
		}
	}
}

func TestDeliveryCreditsCustomers(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	balBefore := totalBalance(t, ctx, w)
	for i := 0; i < 3; i++ {
		if err := w.Delivery(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	balAfter := totalBalance(t, ctx, w)
	if balAfter <= balBefore {
		t.Fatalf("deliveries did not credit customers: %v -> %v", balBefore, balAfter)
	}
}

func totalBalance(t *testing.T, ctx *engine.Ctx, w *TPCC) float64 {
	t.Helper()
	var total float64
	rows, err := engine.Collect(ctx, &engine.SeqScan{Table: w.customer})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		total += r[1].F
	}
	return total
}

func TestNonUniformSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8000
	hot := 0
	for i := 0; i < 10000; i++ {
		if nonUniform(rng, n) <= n/8 {
			hot++
		}
	}
	// ~75% + uniform spillover should land in the hot eighth.
	if hot < 7000 || hot > 9200 {
		t.Fatalf("hot-eighth hits = %d of 10000", hot)
	}
}

func TestLastNameSyllables(t *testing.T) {
	if got := lastName(0); got != "BARBARBAR" {
		t.Fatalf("lastName(0) = %q", got)
	}
	if got := lastName(371); got != "PRICALLYOUGHT" { // syl[3]+syl[7]+syl[1]
		t.Fatalf("lastName(371) = %q", got)
	}
}

func TestKeyPackingDisjoint(t *testing.T) {
	w := smallTPCC(t)
	seen := map[int64]bool{}
	for wh := 0; wh < 2; wh++ {
		for d := 0; d < 10; d++ {
			for o := 1; o < 50; o += 7 {
				for l := 0; l < 16; l++ {
					k := w.olKey(wh, d, o, l)
					if seen[k] {
						t.Fatalf("orderline key collision at %d/%d/%d/%d", wh, d, o, l)
					}
					seen[k] = true
				}
			}
		}
	}
}

func TestQ16BrandFilterExcludes(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	rows, err := h.Q16(ctx, QueryParams{Brand: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].String() == "Brand#22" {
			t.Fatalf("excluded brand present in %v", r)
		}
		if r[2].I > 25 {
			t.Fatalf("size filter leaked: %v", r)
		}
	}
}

func TestQ6SelectivityBand(t *testing.T) {
	// Q6's predicates are narrow: revenue must be far below total.
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	p := QueryParams{Date: dateRange * 3 / 4, Discount: 0.05, Quantity: 24}
	rows, err := h.Q6(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	ls := h.lineitem.Schema
	off := ls.Offsets()[ls.Col("l_extendedprice")]
	ctx2 := h.DB.NewCtx(nil, 1, 8<<20)
	engine.Run(ctx2, &engine.SeqScan{Table: h.lineitem}, func(row []byte) error {
		total += engine.RowFloat(row, off)
		return nil
	})
	var rev float64
	if len(rows) == 1 {
		rev = rows[0][1].F
	}
	if rev <= 0 || rev > total*0.05 {
		t.Fatalf("Q6 revenue %v vs total price %v: selectivity out of band", rev, total)
	}
}

func TestPhasePageBounds(t *testing.T) {
	h := smallTPCH(t)
	n := h.lineitem.Heap.NumPages()
	if got := h.phasePage(h.lineitem, 0); got != 0 {
		t.Fatalf("phase 0 -> %d", got)
	}
	if got := h.phasePage(h.lineitem, 0.999); got >= n {
		t.Fatalf("phase 0.999 -> %d of %d pages", got, n)
	}
	if got := h.phasePage(h.lineitem, -1); got != 0 {
		t.Fatalf("negative phase -> %d", got)
	}
}

func TestQueriesListStable(t *testing.T) {
	want := []int{1, 6, 13, 16}
	if len(Queries) != len(want) {
		t.Fatal("query list changed")
	}
	for i, q := range want {
		if Queries[i] != q {
			t.Fatalf("Queries[%d] = %d", i, Queries[i])
		}
	}
}

func TestTPCHRatios(t *testing.T) {
	h := smallTPCH(t)
	if h.nOrders != h.Cfg.Lineitems/4 {
		t.Fatalf("orders ratio: %d", h.nOrders)
	}
	if h.orders.Heap.Rows() != h.nOrders {
		t.Fatalf("orders rows = %d, want %d", h.orders.Heap.Rows(), h.nOrders)
	}
	if h.partsupp.Heap.Rows() != 4*h.nParts {
		t.Fatalf("partsupp rows = %d, want %d", h.partsupp.Heap.Rows(), 4*h.nParts)
	}
}

func TestPaymentMoneyFloatSane(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		if err := w.Payment(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := engine.Collect(ctx, &engine.SeqScan{Table: w.history})
	for _, r := range rows {
		if math.IsNaN(r[1].F) || r[1].F < 1 || r[1].F > 5000 {
			t.Fatalf("payment amount out of range: %v", r[1].F)
		}
	}
}
