// Golden equivalence for the join-mode knob: chained, partitioned, and
// prefetch are execution strategies, never semantics — on every layout,
// copy or borrowed, serial results are byte-identical across modes, and
// the morsel-parallel runs agree as multisets at every worker count.

package workload

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

var joinModes = []engine.JoinMode{engine.JoinChained, engine.JoinPartitioned, engine.JoinPrefetch}

// TestJoinModeGoldenSerial: serial native Q13 under NSM+PAX × copy/
// borrowed × all three join modes. Chained is the reference; partitioned
// and prefetch must reproduce it byte for byte (the drain emits in probe
// row order and chains link in arrival order, so even duplicate-key
// match order is pinned).
func TestJoinModeGoldenSerial(t *testing.T) {
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		h := vecTPCH(t, layout)
		ctx := h.DB.NewCtx(nil, 57, 48<<20)
		for _, borrow := range []bool{false, true} {
			ctx.Work.Reset()
			want, err := h.RunQueryNative(ctx, 13, p, NativeOpts{ZeroCopy: borrow, JoinMode: engine.JoinChained})
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("%v borrow=%v: empty chained reference", layout, borrow)
			}
			for _, m := range joinModes[1:] {
				ctx.Work.Reset()
				got, err := h.RunQueryNative(ctx, 13, p, NativeOpts{ZeroCopy: borrow, JoinMode: m})
				if err != nil {
					t.Fatal(err)
				}
				exactRows(t, layout.String()+"/"+m.String(), got, want)
			}
		}
	}
}

// TestJoinModeGoldenParallel: the parallel partitioned join under every
// join mode × copy/borrowed agrees with the serial chained result at
// worker counts {1, 2, 4, 8} (multiset compare — parallel join arrival
// order is not deterministic).
func TestJoinModeGoldenParallel(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	serial := h.DB.NewCtx(nil, 56, 48<<20)
	want, err := h.RunQueryNative(serial, 13, p, NativeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want = canonRows(want)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, borrow := range []bool{false, true} {
			for _, m := range joinModes {
				got, err := h.RunQueryParallelNative(nativeWorkerCtxs(h, workers), 13, p,
					NativeOpts{ZeroCopy: borrow, JoinMode: m})
				if err != nil {
					t.Fatal(err)
				}
				sameRows(t, m.String(), canonRows(got), want)
			}
		}
	}
}

// TestPartitionedBuildRaceHammer repeatedly drives the 8-worker parallel
// join with the partitioned and prefetch modes pinned so `go test -race`
// can watch the scatter, per-partition builds, and batched probe walks
// for unsynchronized access.
func TestPartitionedBuildRaceHammer(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	iters := 4
	if testing.Short() {
		iters = 1
	}
	ctxs := nativeWorkerCtxs(h, 8)
	for i := 0; i < iters; i++ {
		for _, m := range []engine.JoinMode{engine.JoinPartitioned, engine.JoinPrefetch} {
			for _, c := range ctxs {
				c.Work.Reset()
			}
			rows, err := h.Q13ParallelOpts(ctxs, p, NativeOpts{JoinMode: m})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				t.Fatalf("iter %d %v: empty result", i, m)
			}
		}
	}
}
