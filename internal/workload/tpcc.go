// Package workload builds the paper's two benchmark workloads against the
// engine: an OLTP workload modelled on TPC-C (100-warehouse-style schema
// and transaction mix, scaled to stay memory-resident) and a DSS workload
// modelled on TPC-H queries 1, 6, 13 and 16 (scan-dominated, selective
// scan, outer-join, and join-dominated respectively, mirroring the paper's
// query selection rationale).
//
// Client drivers run real transactions/queries in a loop, emitting one
// trace stream per client for the CMP simulator.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
)

// TPCCConfig scales the OLTP database.
type TPCCConfig struct {
	Warehouses int // default 8
	Items      int // default 20000 (TPC-C: 100k, scaled)
	CustPerDis int // default 600 (TPC-C: 3000, scaled)
	ArenaBytes int // default 256 MB
	Seed       int64
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Warehouses == 0 {
		c.Warehouses = 8
	}
	if c.Items == 0 {
		c.Items = 20000
	}
	if c.CustPerDis == 0 {
		c.CustPerDis = 600
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = 256 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TPCC is a loaded OLTP database plus transaction implementations.
type TPCC struct {
	Cfg TPCCConfig
	DB  *engine.DB
	Mgr *txn.Manager

	warehouse, district, customer, history     *engine.Table
	item, stock, orders, neworder, orderline   *engine.Table
	idxWarehouse, idxDistrict, idxCustomer     *engine.Index
	idxItem, idxStock, idxOrders               *engine.Index
	idxNewOrder, idxOrderLine                  *engine.Index
	codeFrontend                               mem.CodeSeg
	codeNewOrder, codePayment, codeOrderStatus mem.CodeSeg
	codeDelivery, codeStockLevel               mem.CodeSeg
}

// Lock-space partitioning: resource keys are (space << 56) | key.
const (
	lkWarehouse uint64 = iota + 1
	lkDistrict
	lkCustomer
	lkStock
	lkOrder
)

func lockKey(space, key uint64) uint64 { return space<<56 | key }

// Key helpers (composite integer keys).
func (w *TPCC) dKey(wh, d int) int64 { return int64(wh*10 + d) }
func (w *TPCC) cKey(wh, d, c int) int64 {
	return w.dKey(wh, d)*int64(w.Cfg.CustPerDis) + int64(c)
}
func (w *TPCC) sKey(wh, i int) int64 { return int64(wh*w.Cfg.Items + i) }
func (w *TPCC) oKey(wh, d, o int) int64 {
	return w.dKey(wh, d)<<32 | int64(o)
}
func (w *TPCC) olKey(wh, d, o, line int) int64 {
	return w.oKey(wh, d, o)*16 + int64(line)
}

// BuildTPCC creates and loads the database.
func BuildTPCC(cfg TPCCConfig) (*TPCC, error) {
	cfg = cfg.withDefaults()
	db := engine.NewDB(engine.Config{ArenaBytes: cfg.ArenaBytes})
	w := &TPCC{Cfg: cfg, DB: db, Mgr: txn.NewManager(db.Arena, db.Codes)}

	// Transaction-logic code footprints: TPC-C transaction paths are long
	// (the paper's "large instruction footprints").
	w.codeFrontend = db.Codes.Register("sql:frontend", 24<<10)
	w.codeNewOrder = db.Codes.Register("tpcc:neworder", 16<<10)
	w.codePayment = db.Codes.Register("tpcc:payment", 12<<10)
	w.codeOrderStatus = db.Codes.Register("tpcc:orderstatus", 8<<10)
	w.codeDelivery = db.Codes.Register("tpcc:delivery", 10<<10)
	w.codeStockLevel = db.Codes.Register("tpcc:stocklevel", 8<<10)

	var err error
	mk := func(name string, s engine.Schema) *engine.Table {
		if err != nil {
			return nil
		}
		var t *engine.Table
		t, err = db.CreateTable(name, s, storage.NSM)
		return t
	}
	w.warehouse = mk("warehouse", engine.Schema{
		engine.Int("w_id"), engine.Char("w_name", 10), engine.Float("w_ytd"),
	})
	w.district = mk("district", engine.Schema{
		engine.Int("d_key"), engine.Int("d_next_o_id"), engine.Float("d_ytd"),
		engine.Char("d_name", 10),
	})
	w.customer = mk("customer", engine.Schema{
		engine.Int("c_key"), engine.Float("c_balance"), engine.Float("c_ytd_payment"),
		engine.Int("c_payment_cnt"), engine.Char("c_last", 16), engine.Char("c_data", 64),
	})
	w.history = mk("history", engine.Schema{
		engine.Int("h_c_key"), engine.Float("h_amount"), engine.Int("h_date"),
	})
	w.item = mk("item", engine.Schema{
		engine.Int("i_id"), engine.Float("i_price"), engine.Char("i_name", 24),
	})
	w.stock = mk("stock", engine.Schema{
		engine.Int("s_key"), engine.Int("s_quantity"), engine.Float("s_ytd"),
		engine.Int("s_order_cnt"), engine.Char("s_data", 32),
	})
	w.orders = mk("orders", engine.Schema{
		engine.Int("o_key"), engine.Int("o_c_id"), engine.Int("o_entry_d"),
		engine.Int("o_carrier_id"), engine.Int("o_ol_cnt"),
	})
	w.neworder = mk("neworder", engine.Schema{engine.Int("no_o_key")})
	w.orderline = mk("orderline", engine.Schema{
		engine.Int("ol_key"), engine.Int("ol_i_id"), engine.Int("ol_quantity"),
		engine.Float("ol_amount"), engine.Char("ol_dist_info", 24),
	})
	if err != nil {
		return nil, err
	}

	keyCol := func(t *engine.Table) func([]byte) int64 {
		return func(row []byte) int64 { return engine.RowInt(row, 0) }
	}
	if w.idxWarehouse, err = db.CreateIndex(w.warehouse, "warehouse_pk", keyCol(w.warehouse)); err != nil {
		return nil, err
	}
	if w.idxDistrict, err = db.CreateIndex(w.district, "district_pk", keyCol(w.district)); err != nil {
		return nil, err
	}
	if w.idxCustomer, err = db.CreateIndex(w.customer, "customer_pk", keyCol(w.customer)); err != nil {
		return nil, err
	}
	if w.idxItem, err = db.CreateIndex(w.item, "item_pk", keyCol(w.item)); err != nil {
		return nil, err
	}
	if w.idxStock, err = db.CreateIndex(w.stock, "stock_pk", keyCol(w.stock)); err != nil {
		return nil, err
	}
	if w.idxOrders, err = db.CreateIndex(w.orders, "orders_pk", keyCol(w.orders)); err != nil {
		return nil, err
	}
	if w.idxNewOrder, err = db.CreateIndex(w.neworder, "neworder_pk", keyCol(w.neworder)); err != nil {
		return nil, err
	}
	if w.idxOrderLine, err = db.CreateIndex(w.orderline, "orderline_pk", keyCol(w.orderline)); err != nil {
		return nil, err
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	return w, nil
}

// load populates the initial database (untraced: corresponds to restoring
// the paper's pre-built checkpoint).
func (w *TPCC) load() error {
	rng := rand.New(rand.NewSource(w.Cfg.Seed))
	for i := 0; i < w.Cfg.Items; i++ {
		if _, err := w.item.Insert(nil, []engine.Value{
			engine.IV(int64(i)), engine.FV(1 + 99*rng.Float64()), engine.SV(fmt.Sprintf("item-%d", i)),
		}); err != nil {
			return err
		}
	}
	for wh := 0; wh < w.Cfg.Warehouses; wh++ {
		if _, err := w.warehouse.Insert(nil, []engine.Value{
			engine.IV(int64(wh)), engine.SV(fmt.Sprintf("wh-%d", wh)), engine.FV(0),
		}); err != nil {
			return err
		}
		for i := 0; i < w.Cfg.Items; i++ {
			if _, err := w.stock.Insert(nil, []engine.Value{
				engine.IV(w.sKey(wh, i)), engine.IV(int64(10 + rng.Intn(90))),
				engine.FV(0), engine.IV(0), engine.SV("stockdata"),
			}); err != nil {
				return err
			}
		}
		for d := 0; d < 10; d++ {
			if _, err := w.district.Insert(nil, []engine.Value{
				engine.IV(w.dKey(wh, d)), engine.IV(1), engine.FV(0),
				engine.SV(fmt.Sprintf("dist-%d", d)),
			}); err != nil {
				return err
			}
			for c := 0; c < w.Cfg.CustPerDis; c++ {
				if _, err := w.customer.Insert(nil, []engine.Value{
					engine.IV(w.cKey(wh, d, c)), engine.FV(-10), engine.FV(10),
					engine.IV(1), engine.SV(lastName(rng.Intn(1000))), engine.SV("customer data payload"),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// lastName builds the TPC-C syllable last name.
func lastName(n int) string {
	syl := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	return syl[n/100] + syl[n/10%10] + syl[n%10]
}

// fetchByKey looks rid up in idx and fetches the row.
func fetchByKey(ctx *engine.Ctx, t *engine.Table, idx *engine.Index, key int64) ([]byte, storage.RID, error) {
	v, ok, err := idx.Tree.Get(ctx.Rec, key)
	if err != nil {
		return nil, storage.RID{}, err
	}
	if !ok {
		return nil, storage.RID{}, fmt.Errorf("workload: missing key %d in %s", key, t.Name)
	}
	rid := storage.UnpackRID(v)
	row, err := t.Fetch(ctx.Rec, rid)
	return row, rid, err
}

// updateTraced overwrites a row and registers its undo image.
func updateTraced(ctx *engine.Ctx, tx *txn.Txn, t *engine.Table, rid storage.RID, oldRow, newRow []byte) error {
	undo := make([]byte, len(oldRow))
	copy(undo, oldRow)
	tx.OnAbort(ctx.Rec, len(oldRow)+32, func() { _ = t.Update(nil, rid, undo) })
	return t.Update(ctx.Rec, rid, newRow)
}

// NewOrder runs one TPC-C New-Order transaction.
func (w *TPCC) NewOrder(ctx *engine.Ctx, rng *rand.Rand) error {
	ctx.Rec.Exec(w.codeFrontend, 2600)
	ctx.Rec.Exec(w.codeNewOrder, 3200)
	wh := rng.Intn(w.Cfg.Warehouses)
	d := rng.Intn(10)
	c := nonUniform(rng, w.Cfg.CustPerDis)
	tx := w.Mgr.Begin(ctx.Rec)

	// District: read and bump next_o_id under X lock.
	dk := w.dKey(wh, d)
	if err := tx.Lock(ctx.Rec, lockKey(lkDistrict, uint64(dk)), txn.Exclusive); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	dRow, dRID, err := fetchByKey(ctx, w.district, w.idxDistrict, dk)
	if err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	oID := engine.RowInt(dRow, 8)
	newD := append([]byte(nil), dRow...)
	engine.PutRowInt(newD, 8, oID+1)
	if err := updateTraced(ctx, tx, w.district, dRID, dRow, newD); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}

	olCnt := 5 + rng.Intn(11)
	var total float64
	for l := 0; l < olCnt; l++ {
		ctx.Rec.ExecAt(w.codeNewOrder, 4096, 350)
		iid := nonUniform(rng, w.Cfg.Items)
		iRow, _, err := fetchByKey(ctx, w.item, w.idxItem, int64(iid))
		if err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		price := engine.RowFloat(iRow, 8)

		sk := w.sKey(wh, iid)
		if err := tx.Lock(ctx.Rec, lockKey(lkStock, uint64(sk)), txn.Exclusive); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		sRow, sRID, err := fetchByKey(ctx, w.stock, w.idxStock, sk)
		if err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		qty := int64(1 + rng.Intn(10))
		sQty := engine.RowInt(sRow, 8)
		if sQty >= qty+10 {
			sQty -= qty
		} else {
			sQty += 91 - qty
		}
		newS := append([]byte(nil), sRow...)
		engine.PutRowInt(newS, 8, sQty)
		engine.PutRowFloat(newS, 16, engine.RowFloat(sRow, 16)+float64(qty))
		engine.PutRowInt(newS, 24, engine.RowInt(sRow, 24)+1)
		if err := updateTraced(ctx, tx, w.stock, sRID, sRow, newS); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}

		amount := float64(qty) * price
		total += amount
		if _, err := w.orderline.Insert(ctx.Rec, []engine.Value{
			engine.IV(w.olKey(wh, d, int(oID), l)), engine.IV(int64(iid)),
			engine.IV(qty), engine.FV(amount), engine.SV("dist-info-pad"),
		}); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
	}

	if _, err := w.orders.Insert(ctx.Rec, []engine.Value{
		engine.IV(w.oKey(wh, d, int(oID))), engine.IV(w.cKey(wh, d, c)),
		engine.IV(0), engine.IV(0), engine.IV(int64(olCnt)),
	}); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	if _, err := w.neworder.Insert(ctx.Rec, []engine.Value{
		engine.IV(w.oKey(wh, d, int(oID))),
	}); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	_ = total
	tx.Commit(ctx.Rec)
	return nil
}

// Payment runs one TPC-C Payment transaction.
func (w *TPCC) Payment(ctx *engine.Ctx, rng *rand.Rand) error {
	ctx.Rec.Exec(w.codeFrontend, 2200)
	ctx.Rec.Exec(w.codePayment, 2600)
	wh := rng.Intn(w.Cfg.Warehouses)
	d := rng.Intn(10)
	c := nonUniform(rng, w.Cfg.CustPerDis)
	amount := 1 + 4999*rng.Float64()
	tx := w.Mgr.Begin(ctx.Rec)

	// Warehouse YTD: the hottest write-shared line in TPC-C.
	if err := tx.Lock(ctx.Rec, lockKey(lkWarehouse, uint64(wh)), txn.Exclusive); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	wRow, wRID, err := fetchByKey(ctx, w.warehouse, w.idxWarehouse, int64(wh))
	if err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	newW := append([]byte(nil), wRow...)
	engine.PutRowFloat(newW, 18, engine.RowFloat(wRow, 18)+amount)
	if err := updateTraced(ctx, tx, w.warehouse, wRID, wRow, newW); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}

	dk := w.dKey(wh, d)
	if err := tx.Lock(ctx.Rec, lockKey(lkDistrict, uint64(dk)), txn.Exclusive); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	dRow, dRID, err := fetchByKey(ctx, w.district, w.idxDistrict, dk)
	if err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	newD := append([]byte(nil), dRow...)
	engine.PutRowFloat(newD, 16, engine.RowFloat(dRow, 16)+amount)
	if err := updateTraced(ctx, tx, w.district, dRID, dRow, newD); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}

	ck := w.cKey(wh, d, c)
	if err := tx.Lock(ctx.Rec, lockKey(lkCustomer, uint64(ck)), txn.Exclusive); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	cRow, cRID, err := fetchByKey(ctx, w.customer, w.idxCustomer, ck)
	if err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	newC := append([]byte(nil), cRow...)
	engine.PutRowFloat(newC, 8, engine.RowFloat(cRow, 8)-amount)
	engine.PutRowFloat(newC, 16, engine.RowFloat(cRow, 16)+amount)
	engine.PutRowInt(newC, 24, engine.RowInt(cRow, 24)+1)
	if err := updateTraced(ctx, tx, w.customer, cRID, cRow, newC); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}

	if _, err := w.history.Insert(ctx.Rec, []engine.Value{
		engine.IV(ck), engine.FV(amount), engine.IV(0),
	}); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	tx.Commit(ctx.Rec)
	return nil
}

// OrderStatus runs one TPC-C Order-Status transaction (read-only).
func (w *TPCC) OrderStatus(ctx *engine.Ctx, rng *rand.Rand) error {
	ctx.Rec.Exec(w.codeFrontend, 1800)
	ctx.Rec.Exec(w.codeOrderStatus, 1600)
	wh := rng.Intn(w.Cfg.Warehouses)
	d := rng.Intn(10)
	c := nonUniform(rng, w.Cfg.CustPerDis)
	tx := w.Mgr.Begin(ctx.Rec)
	ck := w.cKey(wh, d, c)
	if err := tx.Lock(ctx.Rec, lockKey(lkCustomer, uint64(ck)), txn.Shared); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	if _, _, err := fetchByKey(ctx, w.customer, w.idxCustomer, ck); err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	// Find the customer's most recent order by scanning back from the
	// district's latest order id.
	found := 0
	cur, err := w.idxOrders.Tree.Seek(ctx.Rec, w.oKey(wh, d, 0))
	if err == nil {
		for found < 1 {
			k, v, ok, err := cur.Next(ctx.Rec)
			if err != nil || !ok || k >= w.oKey(wh, d+1, 0) {
				break
			}
			row, err := w.orders.Fetch(ctx.Rec, storage.UnpackRID(v))
			if err != nil {
				break
			}
			if engine.RowInt(row, 8) == ck {
				found++
				// Read its order lines.
				oID := k & 0xFFFFFFFF
				lo, hi := w.olKey(wh, d, int(oID), 0), w.olKey(wh, d, int(oID), 15)
				olCur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, lo)
				if err != nil {
					break
				}
				for {
					olk, olv, ok, err := olCur.Next(ctx.Rec)
					if err != nil || !ok || olk > hi {
						break
					}
					if _, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(olv)); err != nil {
						break
					}
				}
			}
		}
	}
	tx.Commit(ctx.Rec)
	return nil
}

// Delivery runs one TPC-C Delivery transaction (batch over districts).
func (w *TPCC) Delivery(ctx *engine.Ctx, rng *rand.Rand) error {
	ctx.Rec.Exec(w.codeFrontend, 1800)
	ctx.Rec.Exec(w.codeDelivery, 2000)
	wh := rng.Intn(w.Cfg.Warehouses)
	tx := w.Mgr.Begin(ctx.Rec)
	for d := 0; d < 10; d++ {
		ctx.Rec.ExecAt(w.codeDelivery, 2048, 300)
		// Oldest undelivered order of the district.
		lo, hi := w.oKey(wh, d, 0), w.oKey(wh, d+1, 0)-1
		cur, err := w.idxNewOrder.Tree.Seek(ctx.Rec, lo)
		if err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		k, _, ok, err := cur.Next(ctx.Rec)
		if err != nil || !ok || k > hi {
			continue // no pending orders in this district
		}
		if err := tx.Lock(ctx.Rec, lockKey(lkOrder, uint64(k)), txn.Exclusive); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		// Remove from new-order; mark carrier on the order; sum lines;
		// credit the customer.
		noV, ok2, err := w.idxNewOrder.Tree.Get(ctx.Rec, k)
		if err != nil || !ok2 {
			continue
		}
		if _, err := w.idxNewOrder.Tree.Delete(ctx.Rec, k, noV); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		oV, ok3, err := w.idxOrders.Tree.Get(ctx.Rec, k)
		if err != nil || !ok3 {
			continue
		}
		oRID := storage.UnpackRID(oV)
		oRow, err := w.orders.Fetch(ctx.Rec, oRID)
		if err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		newO := append([]byte(nil), oRow...)
		engine.PutRowInt(newO, 24, int64(1+rng.Intn(10)))
		if err := updateTraced(ctx, tx, w.orders, oRID, oRow, newO); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		oID := int(k & 0xFFFFFFFF)
		var total float64
		olCur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, w.olKey(wh, d, oID, 0))
		if err == nil {
			for {
				olk, olv, ok, err := olCur.Next(ctx.Rec)
				if err != nil || !ok || olk > w.olKey(wh, d, oID, 15) {
					break
				}
				row, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(olv))
				if err != nil {
					break
				}
				total += engine.RowFloat(row, 24)
			}
		}
		ck := engine.RowInt(oRow, 8)
		if err := tx.Lock(ctx.Rec, lockKey(lkCustomer, uint64(ck)), txn.Exclusive); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		cRow, cRID, err := fetchByKey(ctx, w.customer, w.idxCustomer, ck)
		if err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
		newC := append([]byte(nil), cRow...)
		engine.PutRowFloat(newC, 8, engine.RowFloat(cRow, 8)+total)
		if err := updateTraced(ctx, tx, w.customer, cRID, cRow, newC); err != nil {
			tx.Abort(ctx.Rec)
			return err
		}
	}
	tx.Commit(ctx.Rec)
	return nil
}

// StockLevel runs one TPC-C Stock-Level transaction (read-only join).
func (w *TPCC) StockLevel(ctx *engine.Ctx, rng *rand.Rand) error {
	ctx.Rec.Exec(w.codeFrontend, 1800)
	ctx.Rec.Exec(w.codeStockLevel, 1600)
	wh := rng.Intn(w.Cfg.Warehouses)
	d := rng.Intn(10)
	threshold := int64(10 + rng.Intn(11))
	tx := w.Mgr.Begin(ctx.Rec)
	dRow, _, err := fetchByKey(ctx, w.district, w.idxDistrict, w.dKey(wh, d))
	if err != nil {
		tx.Abort(ctx.Rec)
		return err
	}
	nextO := engine.RowInt(dRow, 8)
	lowO := nextO - 20
	if lowO < 1 {
		lowO = 1
	}
	seen := map[int64]bool{}
	low := 0
	cur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, w.olKey(wh, d, int(lowO), 0))
	if err == nil {
		for {
			k, v, ok, err := cur.Next(ctx.Rec)
			if err != nil || !ok || k >= w.olKey(wh, d, int(nextO), 0) {
				break
			}
			row, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(v))
			if err != nil {
				break
			}
			iid := engine.RowInt(row, 8)
			if seen[iid] {
				continue
			}
			seen[iid] = true
			sRow, _, err := fetchByKey(ctx, w.stock, w.idxStock, w.sKey(wh, int(iid)))
			if err != nil {
				continue
			}
			if engine.RowInt(sRow, 8) < threshold {
				low++
			}
		}
	}
	tx.Commit(ctx.Rec)
	return nil
}

// mustIdx returns a primary index, creating it on first use for tables
// whose index is built during load.
func (w *TPCC) mustIdx(t *engine.Table, name string) *engine.Index {
	if idx, err := t.Index(name); err == nil {
		return idx
	}
	idx, err := w.DB.CreateIndex(t, name, func(row []byte) int64 { return engine.RowInt(row, 0) })
	if err != nil {
		panic(err)
	}
	// Backfill existing rows.
	for p := 0; p < t.Heap.NumPages(); p++ {
		ref, err := w.DB.Pool.Get(nil, t.Heap.PageAt(p))
		if err != nil {
			panic(err)
		}
		sp := storage.AsSlotted(ref.Data, ref.Addr)
		for s := 0; s < sp.NumSlots(); s++ {
			if row := sp.Tuple(nil, s); row != nil {
				rid := storage.RID{Page: ref.ID, Slot: uint32(s)}
				if err := idx.Tree.Insert(nil, idx.KeyOf(row), rid.Pack()); err != nil {
					panic(err)
				}
			}
		}
		ref.Release()
	}
	return idx
}

// nonUniform is a TPC-C NURand-style skewed pick in [0, n): three
// quarters of accesses concentrate on a hot eighth of the keyspace (the
// paper's workloads have a small primary working set captured by 8-16 MB
// caches and a large cold secondary set).
func nonUniform(rng *rand.Rand, n int) int {
	if rng.Intn(4) != 0 {
		return rng.Intn(n/8 + 1)
	}
	return rng.Intn(n)
}

// MixCounts tallies executed transactions by type.
type MixCounts struct {
	NewOrder, Payment, OrderStatus, Delivery, StockLevel int
	Deadlocks                                            int
}

// Total returns all committed transactions.
func (m MixCounts) Total() int {
	return m.NewOrder + m.Payment + m.OrderStatus + m.Delivery + m.StockLevel
}

// RunOne executes one transaction drawn from the standard TPC-C mix
// (45/43/4/4/4), retrying on deadlock. It updates counts.
func (w *TPCC) RunOne(ctx *engine.Ctx, rng *rand.Rand, counts *MixCounts) error {
	roll := rng.Intn(100)
	for {
		var err error
		switch {
		case roll < 45:
			err = w.NewOrder(ctx, rng)
		case roll < 88:
			err = w.Payment(ctx, rng)
		case roll < 92:
			err = w.OrderStatus(ctx, rng)
		case roll < 96:
			err = w.Delivery(ctx, rng)
		default:
			err = w.StockLevel(ctx, rng)
		}
		if err == txn.ErrDeadlock {
			counts.Deadlocks++
			continue
		}
		if err != nil {
			return err
		}
		switch {
		case roll < 45:
			counts.NewOrder++
		case roll < 88:
			counts.Payment++
		case roll < 92:
			counts.OrderStatus++
		case roll < 96:
			counts.Delivery++
		default:
			counts.StockLevel++
		}
		return nil
	}
}

// Client runs transactions until the recorder is stopped (saturated
// drivers) or limit transactions complete (limit 0 = unlimited). It
// closes the recorder on exit.
func (w *TPCC) Client(rec *trace.Recorder, worker int, seed int64, limit int) (MixCounts, error) {
	defer rec.Close()
	ctx := w.DB.NewCtx(rec, worker, 2<<20)
	rng := rand.New(rand.NewSource(seed))
	var counts MixCounts
	for !rec.Stopped() {
		if err := w.RunOne(ctx, rng, &counts); err != nil {
			return counts, err
		}
		if limit > 0 && counts.Total() >= limit {
			break
		}
	}
	return counts, nil
}
