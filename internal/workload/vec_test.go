// Golden equivalence tests for the vectorized executor: the vectorized
// Q1/Q6/Q13 plans must agree with the row-at-a-time seed operators —
// byte-identically wherever execution order is deterministic (serial
// plans, both layouts, pinned shared rotations), and up to float
// addition order where it is not (morsel-parallel partials merge in
// whatever order workers claimed pages).

package workload

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/share"
	"repro/internal/storage"
)

var (
	vecOnce sync.Once
	vecDBs  map[storage.Layout]*TPCH
	vecErr  error
)

// vecTPCH builds (once) a small DSS database per layout.
func vecTPCH(t *testing.T, layout storage.Layout) *TPCH {
	t.Helper()
	vecOnce.Do(func() {
		vecDBs = make(map[storage.Layout]*TPCH)
		for _, l := range []storage.Layout{storage.NSM, storage.PAXLayout} {
			h, err := BuildTPCH(TPCHConfig{Lineitems: 20000, Layout: l, ArenaBytes: 64 << 20})
			if err != nil {
				vecErr = err
				return
			}
			vecDBs[l] = h
		}
	})
	if vecErr != nil {
		t.Fatal(vecErr)
	}
	return vecDBs[layout]
}

// exactRows asserts got and want are byte-identical result sets: every
// value equal, floats compared by exact bits (decoded from identical
// bytes), no tolerance.
func exactRows(t *testing.T, label string, got, want [][]engine.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d cols, want %d", label, i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			g, w := got[i][c], want[i][c]
			if g.Kind != w.Kind || g.I != w.I || g.F != w.F || g.S != w.S {
				t.Fatalf("%s row %d col %d: %+v, want %+v (not byte-identical)", label, i, c, g, w)
			}
		}
	}
}

// TestVectorizedGoldenSerial: serial vectorized Q1/Q6/Q13 are
// byte-identical to the row-at-a-time reference on both page layouts
// (same scan order, same accumulator machinery, same float addition
// order).
func TestVectorizedGoldenSerial(t *testing.T) {
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		h := vecTPCH(t, layout)
		ctx := h.DB.NewCtx(nil, 40, 48<<20)
		for _, q := range []int{1, 6, 13} {
			ctx.Work.Reset()
			want, err := h.RunQueryRow(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("q%d/%v: empty reference result", q, layout)
			}
			ctx.Work.Reset()
			got, err := h.RunQuery(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			exactRows(t, layout.String()+"/q"+string(rune('0'+q)), got, want)
		}
	}
}

// TestVectorizedGoldenStartPage: rotated scan origins (the circular
// shared-scan replay contract) stay byte-identical between executors.
func TestVectorizedGoldenStartPage(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	ctx := h.DB.NewCtx(nil, 41, 48<<20)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30, StartPage: 4}
	for _, q := range []int{1, 6, 13} {
		ctx.Work.Reset()
		want, err := h.RunQueryRow(ctx, q, p)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Work.Reset()
		got, err := h.RunQuery(ctx, q, p)
		if err != nil {
			t.Fatal(err)
		}
		exactRows(t, "startpage/q"+string(rune('0'+q)), got, want)
	}
}

// TestVectorizedGoldenParallel: the morsel-parallel vectorized plans
// agree with the row-at-a-time serial reference across worker counts
// {1, 2, 4, 8}. Group keys and integer aggregates are byte-identical for
// every count; float sums vary only by addition order (workers absorb
// whichever morsels they claim), so they are compared with a relative
// tolerance — sameRows documents that contract.
func TestVectorizedGoldenParallel(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	serial := h.DB.NewCtx(nil, 42, 48<<20)
	for _, q := range []int{1, 6} {
		serial.Work.Reset()
		want, err := h.RunQueryRow(serial, q, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			ctxs := make([]*engine.Ctx, workers)
			for w := range ctxs {
				ctxs[w] = h.DB.NewCtx(nil, 44+w, 24<<20)
			}
			got, err := h.RunQueryParallel(ctxs, q, p)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, "parallel", got, want)
		}
	}
	// Q13's parallel form is the join core: row counts must match the
	// serial row-at-a-time join exactly at every worker count.
	want, err := h.OrdersPerCustomer(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		ctxs := make([]*engine.Ctx, workers)
		for w := range ctxs {
			ctxs[w] = h.DB.NewCtx(nil, 44+w, 24<<20)
		}
		got, err := h.OrdersPerCustomerParallel(ctxs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("parallel join workers=%d: %d rows, serial %d", workers, got, want)
		}
	}
}

// TestVectorizedGoldenShared: a shared-scan rotation replayed serially
// from its start page — on the ROW-at-a-time reference operators — is
// byte-identical to the vectorized shared execution: private and shared,
// row and vectorized, all agree bit for bit at the same origin.
func TestVectorizedGoldenShared(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	// Default registry, no result cache: every query must execute.
	env := h.NewShareEnvWith(share.Config{}, nil)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	ctx := h.DB.NewCtx(nil, 52, 48<<20)
	for _, q := range []int{1, 6, 13} {
		ctx.Work.Reset()
		var got [][]engine.Value
		var start int
		var err error
		switch q {
		case 1:
			got, start, err = h.Q1Shared(ctx, p, env.Reg)
		case 6:
			got, start, err = h.Q6Shared(ctx, p, env.Reg)
		case 13:
			got, start, err = h.Q13Shared(ctx, p, env.Reg)
		}
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.WaitIdle()
		replay := p
		replay.StartPage = start + 1 // pin the rotation's origin (1-based)
		ctx.Work.Reset()
		want, err := h.RunQueryRow(ctx, q, replay)
		if err != nil {
			t.Fatal(err)
		}
		exactRows(t, "shared/q"+string(rune('0'+q)), got, want)
	}
}
