// Native fast-path plan shapes of the DSS query analogs: the same
// semantics as Q1/Q6/Q13, rebuilt so the filter runs as a FilterVec
// stage — the operator that marks survivors in a selection vector on the
// trace-free native path — with compiled predicates throughout. Run with
// a nil-Recorder Ctx these plans are the repo's host-throughput subject;
// run with NativeOpts{Interpret: true, Compact: true} they become the
// interpreted, copy-compacting reference the golden equivalence suite
// and the CI speedup gate compare against. Either way the row order and
// aggregate machinery match the simulated plans, so results are
// byte-identical to RunQuery at the same parameters.

package workload

import (
	"fmt"

	"repro/internal/engine"
)

// NativeOpts selects the execution flavor of a native-shape plan.
type NativeOpts struct {
	// Interpret forces interpreted Pred.Eval instead of the compiled
	// predicate closures and hash kernels.
	Interpret bool
	// Compact forces survivor compaction instead of selection-vector
	// annotation. Interpret+Compact together is the slow-path reference.
	Compact bool
	// ZeroCopy enables borrowed (page-aliasing) scan blocks: clean pages
	// are pinned and exposed in place instead of memmoved into the
	// block's arena. Ignored on traced and Interpret runs.
	ZeroCopy bool
	// JoinMode pins the hash-join strategy of joining plans (Q13); the
	// zero value defers to the context and then the auto policy.
	JoinMode engine.JoinMode
}

// Q1Native is Q1 in its native fast-path shape: a predicate-free scan
// feeding a FilterVec (Q1's date filter keeps ~95% of lineitem, the case
// where marking survivors beats copying them), then the shared Q1 map
// and aggregate fragments.
func (h *TPCH) Q1Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q1Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.FilterVec{
				Child: &engine.ScanVec{
					Table:     h.lineitem,
					StartPage: h.scanOrigin(h.lineitem, p),
					Interpret: o.Interpret,
					Borrow:    o.ZeroCopy,
				},
				Preds:     preds,
				Compact:   o.Compact,
				Interpret: o.Interpret,
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 18,
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
		Interpret: o.Interpret,
	}
	return engine.Collect(ctx, &engine.Sort{Child: &engine.RowAdapter{Vec: plan}, Col: 0})
}

// Q6Native is Q6 in its native fast-path shape: scan, a three-predicate
// FilterVec (compiled into fused type-specialized closures), and the
// shared revenue map/sum fragments.
func (h *TPCH) Q6Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q6Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.FilterVec{
				Child: &engine.ScanVec{
					Table:     h.lineitem,
					StartPage: h.scanOrigin(h.lineitem, p),
					Interpret: o.Interpret,
					Borrow:    o.ZeroCopy,
				},
				Preds:     preds,
				Compact:   o.Compact,
				Interpret: o.Interpret,
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 12,
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
		Interpret: o.Interpret,
	}
	return engine.CollectVec(ctx, plan)
}

// Q13Native is Q13 in its native fast-path shape: the orders filter
// (~98% survivors) runs as a FilterVec whose selection-vector output
// feeds the join build loop directly, and the join table is pre-sized
// from the customer cardinality — the build keys are custkeys, so
// distinct keys (not order entries) are what bucket count must cover;
// sizing from orders would zero and probe an 8-16x larger bucket array
// for the same chains.
func (h *TPCH) Q13Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	os := h.orders.Schema
	join := &engine.HashJoinVec{
		Probe: &engine.ScanVec{Table: h.customer, Cols: []int{0}, Interpret: o.Interpret, Borrow: o.ZeroCopy},
		// The build side keeps only the two columns the rest of the plan
		// reads (join key + the match tag's totalprice): entries, probe
		// walks, and join-output rows move 16 bytes instead of a whole
		// orders row — Q13 is memory-bound here at full scale.
		Build: &engine.ProjectVec{
			Child: &engine.FilterVec{
				Child: &engine.ScanVec{
					Table:     h.orders,
					StartPage: h.scanOrigin(h.orders, p),
					Interpret: o.Interpret,
					Borrow:    o.ZeroCopy,
				},
				Preds:     []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
				Compact:   o.Compact,
				Interpret: o.Interpret,
			},
			Cols: []int{os.Col("o_custkey"), os.Col("o_totalprice")},
		},
		ProbeCol: 0, BuildCol: 0,
		Type: engine.LeftOuter,
		// Distinct keys (custkeys) size the bucket count; the order rows
		// actually inserted size the radix fan-out — with ~10 orders per
		// customer the two differ by 10x, and conflating them either
		// wastes an oversized bucket array (chained) or under-partitions
		// the build far past the cache budget (partitioned).
		Expected:  h.nCustomers,
		BuildRows: h.nOrders,
		Interpret: o.Interpret,
		Mode:      o.JoinMode,
	}
	// Join rows are custkey(8) ++ [o_custkey, o_totalprice]: the match
	// tag's totalprice sits at byte 16, not the full-width plans' 24.
	return engine.Collect(ctx, h.q13TailVecOpts(join, o.Interpret, 16))
}

// RunQueryNative executes query q (1, 6, or 13) in its native fast-path
// plan shape.
func (h *TPCH) RunQueryNative(ctx *engine.Ctx, q int, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	switch q {
	case 1:
		return h.Q1Native(ctx, p, o)
	case 6:
		return h.Q6Native(ctx, p, o)
	case 13:
		return h.Q13Native(ctx, p, o)
	}
	return nil, fmt.Errorf("workload: no native fast-path plan for query %d (have 1, 6, 13)", q)
}

// NativeRowsScanned returns the base-table rows one native run of query
// q reads — the numerator of the rows/sec throughput the native bench
// reports.
func (h *TPCH) NativeRowsScanned(q int) int {
	switch q {
	case 1, 6:
		return h.Cfg.Lineitems
	case 13:
		return h.nCustomers + h.nOrders
	}
	return 0
}

// NativeBytesScanned returns the base-table bytes one native run of
// query q reads — rows × row width summed over the scanned tables, the
// numerator of the effective-GB/s figure the native bench reports.
func (h *TPCH) NativeBytesScanned(q int) int {
	switch q {
	case 1, 6:
		return h.Cfg.Lineitems * h.lineitem.Schema.RowWidth()
	case 13:
		return h.nCustomers*h.customer.Schema.RowWidth() + h.nOrders*h.orders.Schema.RowWidth()
	}
	return 0
}
