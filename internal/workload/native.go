// Native fast-path plan shapes of the DSS query analogs: the same
// semantics as Q1/Q6/Q13, rebuilt so the filter runs as a FilterVec
// stage — the operator that marks survivors in a selection vector on the
// trace-free native path — with compiled predicates throughout. Run with
// a nil-Recorder Ctx these plans are the repo's host-throughput subject;
// run with NativeOpts{Interpret: true, Compact: true} they become the
// interpreted, copy-compacting reference the golden equivalence suite
// and the CI speedup gate compare against. Either way the row order and
// aggregate machinery match the simulated plans, so results are
// byte-identical to RunQuery at the same parameters.

package workload

import (
	"fmt"

	"repro/internal/engine"
)

// NativeOpts selects the execution flavor of a native-shape plan.
type NativeOpts struct {
	// Interpret forces interpreted Pred.Eval instead of the compiled
	// predicate closures.
	Interpret bool
	// Compact forces survivor compaction instead of selection-vector
	// annotation. Interpret+Compact together is the slow-path reference.
	Compact bool
}

// Q1Native is Q1 in its native fast-path shape: a predicate-free scan
// feeding a FilterVec (Q1's date filter keeps ~95% of lineitem, the case
// where marking survivors beats copying them), then the shared Q1 map
// and aggregate fragments.
func (h *TPCH) Q1Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q1Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.FilterVec{
				Child: &engine.ScanVec{
					Table:     h.lineitem,
					StartPage: h.scanOrigin(h.lineitem, p),
					Interpret: o.Interpret,
				},
				Preds:     preds,
				Compact:   o.Compact,
				Interpret: o.Interpret,
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 18,
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
	}
	return engine.Collect(ctx, &engine.Sort{Child: &engine.RowAdapter{Vec: plan}, Col: 0})
}

// Q6Native is Q6 in its native fast-path shape: scan, a three-predicate
// FilterVec (compiled into fused type-specialized closures), and the
// shared revenue map/sum fragments.
func (h *TPCH) Q6Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	preds, mapped, fn, aggs := h.q6Pieces(p)
	plan := &engine.HashAggVec{
		Child: &engine.MapVec{
			Child: &engine.FilterVec{
				Child: &engine.ScanVec{
					Table:     h.lineitem,
					StartPage: h.scanOrigin(h.lineitem, p),
					Interpret: o.Interpret,
				},
				Preds:     preds,
				Compact:   o.Compact,
				Interpret: o.Interpret,
			},
			Out:  mapped,
			Fn:   fn,
			Cost: 12,
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
	}
	return engine.CollectVec(ctx, plan)
}

// Q13Native is Q13 in its native fast-path shape: the orders filter
// (~98% survivors) runs as a FilterVec whose selection-vector output
// feeds the join build loop directly, and the join table is pre-sized
// from the orders cardinality.
func (h *TPCH) Q13Native(ctx *engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	os := h.orders.Schema
	join := &engine.HashJoinVec{
		Probe: &engine.ScanVec{Table: h.customer, Cols: []int{0}, Interpret: o.Interpret},
		Build: &engine.FilterVec{
			Child: &engine.ScanVec{
				Table:     h.orders,
				StartPage: h.scanOrigin(h.orders, p),
				Interpret: o.Interpret,
			},
			Preds:     []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
			Compact:   o.Compact,
			Interpret: o.Interpret,
		},
		ProbeCol: 0, BuildCol: os.Col("o_custkey"),
		Type:     engine.LeftOuter,
		Expected: h.nOrders,
	}
	return engine.Collect(ctx, h.q13TailVec(join))
}

// RunQueryNative executes query q (1, 6, or 13) in its native fast-path
// plan shape.
func (h *TPCH) RunQueryNative(ctx *engine.Ctx, q int, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	switch q {
	case 1:
		return h.Q1Native(ctx, p, o)
	case 6:
		return h.Q6Native(ctx, p, o)
	case 13:
		return h.Q13Native(ctx, p, o)
	}
	return nil, fmt.Errorf("workload: no native fast-path plan for query %d (have 1, 6, 13)", q)
}

// NativeRowsScanned returns the base-table rows one native run of query
// q reads — the numerator of the rows/sec throughput the native bench
// reports.
func (h *TPCH) NativeRowsScanned(q int) int {
	switch q {
	case 1, 6:
		return h.Cfg.Lineitems
	case 13:
		return h.nCustomers + h.nOrders
	}
	return 0
}
