// Morsel-driven parallel variants of the DSS query analogs: the same
// plans as Q1/Q6 — identical predicates, transforms, and aggregates —
// executed by the engine's work-stealing worker pool with one execution
// context per simulated hardware context. These are the workloads that
// let the camp comparisons exercise true intra-query parallelism instead
// of inter-query concurrency alone.

package workload

import (
	"fmt"

	"repro/internal/engine"
)

// Q1Parallel computes Q1's result with the morsel-driven executor: each
// worker scans stolen page ranges of lineitem into a private partial
// aggregate; the partials merge at the gather barrier. ctxs[0] doubles as
// the gather context. Group keys and counts match Q1 exactly; float sums
// agree up to addition order.
func (h *TPCH) Q1Parallel(ctxs []*engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	return h.Q1ParallelOpts(ctxs, p, NativeOpts{})
}

// Q1ParallelOpts is Q1Parallel with the native execution flavor exposed:
// ZeroCopy makes each worker's morsel scan borrow clean pages in place.
func (h *TPCH) Q1ParallelOpts(ctxs []*engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("workload: Q1Parallel with no worker contexts")
	}
	preds, mapped, fn, aggs := h.q1Pieces(p)
	pool := engine.NewMorselPool(len(ctxs), h.lineitem.Heap.NumPages(), 0)
	plan := &engine.ParallelAgg{
		Ctxs: ctxs,
		BuildVec: func(w int) engine.VecOp {
			return &engine.MapVec{
				Child: &engine.MorselScanVec{
					Table: h.lineitem, Preds: preds, Pool: pool, Worker: w,
					Interpret: o.Interpret, Borrow: o.ZeroCopy,
				},
				Out:  mapped,
				Fn:   fn,
				Cost: 18,
			}
		},
		GroupCols: []int{0, 1},
		Aggs:      aggs,
		Expected:  8,
	}
	return engine.Collect(ctxs[0], &engine.Sort{Child: plan, Col: 0})
}

// Q6Parallel computes Q6's result with the morsel-driven executor.
func (h *TPCH) Q6Parallel(ctxs []*engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	return h.Q6ParallelOpts(ctxs, p, NativeOpts{})
}

// Q6ParallelOpts is Q6Parallel with the native execution flavor exposed.
func (h *TPCH) Q6ParallelOpts(ctxs []*engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("workload: Q6Parallel with no worker contexts")
	}
	preds, mapped, fn, aggs := h.q6Pieces(p)
	pool := engine.NewMorselPool(len(ctxs), h.lineitem.Heap.NumPages(), 0)
	plan := &engine.ParallelAgg{
		Ctxs: ctxs,
		BuildVec: func(w int) engine.VecOp {
			return &engine.MapVec{
				Child: &engine.MorselScanVec{
					Table: h.lineitem, Preds: preds, Pool: pool, Worker: w,
					Interpret: o.Interpret, Borrow: o.ZeroCopy,
				},
				Out:  mapped,
				Fn:   fn,
				Cost: 12,
			}
		},
		GroupCols: []int{0},
		Aggs:      aggs,
		Expected:  2,
	}
	return engine.Collect(ctxs[0], plan)
}

// OrdersPerCustomer runs the Q13 join core — customer left-outer-join its
// non-special orders — with the serial hash join, returning the output
// row count. It is the reference for the parallel form below.
func (h *TPCH) OrdersPerCustomer(ctx *engine.Ctx) (int, error) {
	os := h.orders.Schema
	join := &engine.HashJoin{
		Left: &engine.SeqScan{Table: h.customer, Cols: []int{0}},
		Right: &engine.SeqScan{
			Table: h.orders,
			Preds: []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
		},
		LeftCol: 0, RightCol: os.Col("o_custkey"),
		Type: engine.LeftOuter,
	}
	n := 0
	err := engine.Run(ctx, join, func([]byte) error { n++; return nil })
	return n, err
}

// OrdersPerCustomerParallel is OrdersPerCustomer on the partitioned
// parallel hash join: workers scatter the filtered orders into key
// partitions, build one hash table per partition, then probe with stolen
// customer morsels. The output row count is identical to the serial join.
func (h *TPCH) OrdersPerCustomerParallel(ctxs []*engine.Ctx) (int, error) {
	if len(ctxs) == 0 {
		return 0, fmt.Errorf("workload: parallel join with no worker contexts")
	}
	os := h.orders.Schema
	probePool := engine.NewMorselPool(len(ctxs), h.customer.Heap.NumPages(), 0)
	buildPool := engine.NewMorselPool(len(ctxs), h.orders.Heap.NumPages(), 0)
	join := &engine.ParallelHashJoin{
		Ctxs: ctxs,
		ProbeSrcVec: func(w int) engine.VecOp {
			return &engine.MorselScanVec{Table: h.customer, Cols: []int{0}, Pool: probePool, Worker: w}
		},
		BuildSrcVec: func(w int) engine.VecOp {
			return &engine.MorselScanVec{
				Table:  h.orders,
				Preds:  []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
				Pool:   buildPool,
				Worker: w,
			}
		},
		ProbeCol: 0, BuildCol: os.Col("o_custkey"),
		Type: engine.LeftOuter,
	}
	n := 0
	err := engine.Run(ctxs[0], join, func([]byte) error { n++; return nil })
	return n, err
}

// Q13Parallel computes Q13's full distribution with the partitioned
// parallel hash join feeding the shared vectorized tail. Group keys and
// counts match Q13 exactly; row order within equal-custdist ties can
// differ from the serial plan (join output arrives in worker order), so
// cross-worker-count comparisons treat the result as a multiset.
func (h *TPCH) Q13Parallel(ctxs []*engine.Ctx, p QueryParams) ([][]engine.Value, error) {
	return h.Q13ParallelOpts(ctxs, p, NativeOpts{})
}

// Q13ParallelOpts is Q13Parallel with the native execution flavor
// exposed: ZeroCopy makes both morsel scans borrow clean pages in place
// (the join's build scatter and probe adapter are Sel-aware, so the
// borrowed blocks' selection vectors flow through unchanged).
func (h *TPCH) Q13ParallelOpts(ctxs []*engine.Ctx, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("workload: Q13Parallel with no worker contexts")
	}
	os := h.orders.Schema
	probePool := engine.NewMorselPool(len(ctxs), h.customer.Heap.NumPages(), 0)
	buildPool := engine.NewMorselPool(len(ctxs), h.orders.Heap.NumPages(), 0)
	join := &engine.ParallelHashJoin{
		Ctxs: ctxs,
		ProbeSrcVec: func(w int) engine.VecOp {
			return &engine.MorselScanVec{
				Table: h.customer, Cols: []int{0}, Pool: probePool, Worker: w,
				Interpret: o.Interpret, Borrow: o.ZeroCopy,
			}
		},
		BuildSrcVec: func(w int) engine.VecOp {
			return &engine.MorselScanVec{
				Table:     h.orders,
				Preds:     []engine.Pred{engine.PredInt(os.Col("o_special"), engine.EQ, 0)},
				Pool:      buildPool,
				Worker:    w,
				Interpret: o.Interpret,
				Borrow:    o.ZeroCopy,
			}
		},
		ProbeCol: 0, BuildCol: os.Col("o_custkey"),
		Type: engine.LeftOuter,
		Mode: o.JoinMode,
	}
	return engine.Collect(ctxs[0], h.q13TailVecOpts(&engine.VecAdapter{Child: join}, o.Interpret, 8+16))
}

// RunQueryParallel executes the parallel variant of query q (1, 6, and
// 13 have parallel plans) across the worker contexts.
func (h *TPCH) RunQueryParallel(ctxs []*engine.Ctx, q int, p QueryParams) ([][]engine.Value, error) {
	return h.RunQueryParallelNative(ctxs, q, p, NativeOpts{})
}

// RunQueryParallelNative is RunQueryParallel with the native execution
// flavor exposed (the native sweep's parallel points run it with
// ZeroCopy toggled both ways).
func (h *TPCH) RunQueryParallelNative(ctxs []*engine.Ctx, q int, p QueryParams, o NativeOpts) ([][]engine.Value, error) {
	switch q {
	case 1:
		return h.Q1ParallelOpts(ctxs, p, o)
	case 6:
		return h.Q6ParallelOpts(ctxs, p, o)
	case 13:
		return h.Q13ParallelOpts(ctxs, p, o)
	}
	return nil, fmt.Errorf("workload: no parallel variant of query %d (have 1, 6, 13)", q)
}
