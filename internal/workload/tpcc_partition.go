// Partitioning the staged TPC-C stream across cohort schedulers: each
// transaction is homed at its warehouse's partition (WH mod parts), and
// transactions whose accesses leave the home partition — a NewOrder line
// supplied by a remote warehouse, a Payment against a remote customer —
// are flagged for the global fence so the partitioned executor can run
// them in isolation (the deterministic cross-partition handoff of
// internal/oltp's RunPartitioned).

package workload

import "repro/internal/oltp"

// HomePartition returns the partition owning the transaction's home
// warehouse.
func (in TxnInput) HomePartition(parts int) int {
	return in.WH % parts
}

// CrossPartition reports whether the transaction reads or writes rows
// homed outside its home partition. Only NewOrder (remote supply
// warehouses) and Payment (remote customer) can be cross-partition;
// Delivery, OrderStatus, and StockLevel range strictly over their home
// warehouse.
func (in TxnInput) CrossPartition(parts int) bool {
	home := in.HomePartition(parts)
	switch in.Kind {
	case TxNewOrder:
		for l := range in.Lines {
			if in.supplyWH(l)%parts != home {
				return true
			}
		}
	case TxPayment:
		if in.custWH()%parts != home {
			return true
		}
	}
	return false
}

// PartitionPlan maps the global transaction stream (in admission order)
// onto parts home-warehouse partitions for oltp.RunPartitioned.
func (w *TPCC) PartitionPlan(ins []TxnInput, parts int) oltp.PartitionPlan {
	plan := oltp.PartitionPlan{
		Parts: parts,
		Home:  make([]int, len(ins)),
		Fence: make([]bool, len(ins)),
	}
	for i, in := range ins {
		plan.Home[i] = in.HomePartition(parts)
		plan.Fence[i] = parts > 1 && in.CrossPartition(parts)
	}
	return plan
}
