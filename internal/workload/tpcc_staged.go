// Staged TPC-C: the five transaction types decomposed into
// continuation-style stage sequences for the STEPS-style cohort executor
// in internal/oltp. Each step charges its instructions through an
// oltp.Charger — the staged executor maps steps onto small shared stage
// code segments, the monolithic reference walks the transaction type's
// own 8-16 KB body — while the data accesses are identical either way.
//
// Inputs are pre-drawn (TxnInput), so a restarted attempt (wound or
// deadlock victim) re-executes identical work, and inserts and index
// deletes are deferred to the commit step, so an abort never leaves
// orphan rows and the admission-order commit barrier makes heap append
// order — and therefore the whole database state — byte-identical
// between the cohort-scheduled and monolithic executions.
package workload

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/oltp"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
)

// TxnKind enumerates the five TPC-C transaction types.
type TxnKind uint8

// The TPC-C transaction mix.
const (
	TxNewOrder TxnKind = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

func (k TxnKind) String() string {
	switch k {
	case TxNewOrder:
		return "neworder"
	case TxPayment:
		return "payment"
	case TxOrderStatus:
		return "orderstatus"
	case TxDelivery:
		return "delivery"
	}
	return "stocklevel"
}

// OrderLine is one pre-drawn New-Order line.
type OrderLine struct {
	Item int
	Qty  int
}

// TxnInput carries every random draw of one transaction, so the same
// input replays identically on the monolithic path, the cohort path, and
// across wound-restarts. WH is the home warehouse (the partition key of
// the partitioned executor); SupplyWH and CWH carry the TPC-C-style
// remote-warehouse draws that make a transaction cross-partition.
type TxnInput struct {
	Kind      TxnKind
	WH, D, C  int
	Amount    float64     // Payment
	CWH       int         // Payment: customer's warehouse (set by the generator; home unless remote)
	Lines     []OrderLine // NewOrder
	SupplyWH  []int       // NewOrder: per-line supply warehouse (nil = all home)
	Carriers  [10]int     // Delivery, one per district
	Threshold int64       // StockLevel
}

// supplyWH returns the warehouse supplying NewOrder line l.
func (in TxnInput) supplyWH(l int) int {
	if l < len(in.SupplyWH) {
		return in.SupplyWH[l]
	}
	return in.WH
}

// custWH returns the warehouse owning the Payment customer.
func (in TxnInput) custWH() int {
	if in.Kind == TxPayment {
		return in.CWH
	}
	return in.WH
}

// otherWH draws a warehouse different from home.
func otherWH(rng *rand.Rand, warehouses, home int) int {
	o := rng.Intn(warehouses - 1)
	if o >= home {
		o++
	}
	return o
}

// GenInput draws one transaction from the standard TPC-C mix
// (45/43/4/4/4) with the same rng consumption order as the monolithic
// client loop.
func (w *TPCC) GenInput(rng *rand.Rand) TxnInput {
	return w.GenInputMix(rng, 0)
}

// GenInputMix is GenInput with a remote-warehouse knob: each NewOrder
// line's supply warehouse and each Payment's customer warehouse is drawn
// from the non-home warehouses with probability remotePct/100. With
// remotePct 0 (or a single warehouse) the rng consumption order is
// byte-for-byte the historical one.
func (w *TPCC) GenInputMix(rng *rand.Rand, remotePct int) TxnInput {
	remote := func() bool {
		return remotePct > 0 && w.Cfg.Warehouses > 1 && rng.Intn(100) < remotePct
	}
	roll := rng.Intn(100)
	switch {
	case roll < 45:
		in := TxnInput{
			Kind: TxNewOrder,
			WH:   rng.Intn(w.Cfg.Warehouses), D: rng.Intn(10), C: nonUniform(rng, w.Cfg.CustPerDis),
		}
		n := 5 + rng.Intn(11)
		for l := 0; l < n; l++ {
			in.Lines = append(in.Lines, OrderLine{Item: nonUniform(rng, w.Cfg.Items), Qty: 1 + rng.Intn(10)})
			if remote() {
				if in.SupplyWH == nil {
					in.SupplyWH = make([]int, 0, n)
					for k := 0; k < l; k++ {
						in.SupplyWH = append(in.SupplyWH, in.WH)
					}
				}
				in.SupplyWH = append(in.SupplyWH, otherWH(rng, w.Cfg.Warehouses, in.WH))
			} else if in.SupplyWH != nil {
				in.SupplyWH = append(in.SupplyWH, in.WH)
			}
		}
		return in
	case roll < 88:
		in := TxnInput{
			Kind: TxPayment,
			WH:   rng.Intn(w.Cfg.Warehouses), D: rng.Intn(10), C: nonUniform(rng, w.Cfg.CustPerDis),
			Amount: 1 + 4999*rng.Float64(),
		}
		in.CWH = in.WH
		if remote() {
			in.CWH = otherWH(rng, w.Cfg.Warehouses, in.WH)
		}
		return in
	case roll < 92:
		return TxnInput{
			Kind: TxOrderStatus,
			WH:   rng.Intn(w.Cfg.Warehouses), D: rng.Intn(10), C: nonUniform(rng, w.Cfg.CustPerDis),
		}
	case roll < 96:
		in := TxnInput{Kind: TxDelivery, WH: rng.Intn(w.Cfg.Warehouses)}
		for d := 0; d < 10; d++ {
			in.Carriers[d] = 1 + rng.Intn(10)
		}
		return in
	default:
		return TxnInput{
			Kind: TxStockLevel,
			WH:   rng.Intn(w.Cfg.Warehouses), D: rng.Intn(10),
			Threshold: int64(10 + rng.Intn(11)),
		}
	}
}

// StagedInputs generates the deterministic global transaction order of a
// K-client run: round-robin over client streams, each client drawing from
// its own seeded rng. This order is the serialization order the cohort
// scheduler reproduces.
func (w *TPCC) StagedInputs(clients, perClient int, seed int64) []TxnInput {
	return w.StagedInputsMix(clients, perClient, seed, 0)
}

// StagedInputsMix is StagedInputs with GenInputMix's remote-warehouse
// knob.
func (w *TPCC) StagedInputsMix(clients, perClient int, seed int64, remotePct int) []TxnInput {
	rngs := make([]*rand.Rand, clients)
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(seed + int64(k)*31))
	}
	out := make([]TxnInput, 0, clients*perClient)
	for t := 0; t < perClient; t++ {
		for k := 0; k < clients; k++ {
			out = append(out, w.GenInputMix(rngs[k], remotePct))
		}
	}
	return out
}

// MonoChargerFor builds the monolithic code profile of one transaction
// type: the SQL frontend plus the type's own large code body.
func (w *TPCC) MonoChargerFor(k TxnKind) *oltp.MonoCharger {
	seg := w.codeNewOrder
	switch k {
	case TxPayment:
		seg = w.codePayment
	case TxOrderStatus:
		seg = w.codeOrderStatus
	case TxDelivery:
		seg = w.codeDelivery
	case TxStockLevel:
		seg = w.codeStockLevel
	}
	return &oltp.MonoCharger{Front: w.codeFrontend, Body: seg}
}

// NewStagedTxn wraps one pre-drawn input as a continuation program for
// the staged executor (or, with a MonoCharger, the monolithic reference).
func (w *TPCC) NewStagedTxn(in TxnInput, ch oltp.Charger) oltp.Program {
	return &stagedTxn{w: w, in: in, ch: ch}
}

// StagedPrograms builds one program per input, all sharing charger build
// logic: staged profiles share the stage segments, monolithic profiles
// get a private body walk each.
func (w *TPCC) StagedPrograms(ins []TxnInput, staged bool) []oltp.Program {
	var shared *oltp.StagedCharger
	if staged {
		shared = oltp.NewStagedCharger(w.DB.Codes)
	}
	progs := make([]oltp.Program, len(ins))
	for i, in := range ins {
		if staged {
			progs[i] = w.NewStagedTxn(in, shared)
		} else {
			progs[i] = w.NewStagedTxn(in, w.MonoChargerFor(in.Kind))
		}
	}
	return progs
}

// stagedTxn is one transaction's continuation: a pc-driven state machine
// whose steps the cohort scheduler interleaves with other transactions.
type stagedTxn struct {
	w  *TPCC
	in TxnInput
	ch oltp.Charger

	tx     *txn.Txn
	pc     int
	parked bool // last step parked: the retry is a cheap lock re-probe

	// Carried state between steps.
	line    int     // NewOrder line index
	dist    int     // Delivery district index
	oID     int64   // NewOrder order id / Delivery order id low bits
	price   float64 // NewOrder current line's item price
	total   float64 // Delivery order-line sum
	dRow    []byte
	dRID    storage.RID
	row     []byte // generic fetched row (warehouse/customer/stock/order)
	rid     storage.RID
	oKeyCur int64 // Delivery current order key
	scanKey int64 // batched-scan resume position
	scanHi  int64 // batched-scan end key
	nextO   int64 // StockLevel district next order id
	seen    map[int64]bool
	low     int

	pending []func(rec *trace.Recorder) error // deferred inserts/deletes
}

// Per-kind pc → stage tables.
var (
	noStages = []oltp.StageKind{
		oltp.StageBegin, oltp.StageLock, oltp.StageProbe, oltp.StageUpdate,
		oltp.StageProbe, oltp.StageLock, oltp.StageFetch, oltp.StageUpdate,
		oltp.StageInsert, oltp.StageCommit,
	}
	payStages = []oltp.StageKind{
		oltp.StageBegin,
		oltp.StageLock, oltp.StageProbe, oltp.StageUpdate,
		oltp.StageLock, oltp.StageProbe, oltp.StageUpdate,
		oltp.StageLock, oltp.StageProbe, oltp.StageUpdate,
		oltp.StageInsert, oltp.StageCommit,
	}
	osStages = []oltp.StageKind{
		oltp.StageBegin, oltp.StageLock, oltp.StageProbe, oltp.StageProbe,
		oltp.StageFetch, oltp.StageCommit,
	}
	dlStages = []oltp.StageKind{
		oltp.StageBegin, oltp.StageProbe, oltp.StageLock, oltp.StageUpdate,
		oltp.StageFetch, oltp.StageLock, oltp.StageUpdate, oltp.StageCommit,
	}
	slStages = []oltp.StageKind{
		oltp.StageBegin, oltp.StageProbe, oltp.StageProbe, oltp.StageCommit,
	}
)

// Stage implements oltp.Program.
func (s *stagedTxn) Stage() oltp.StageKind {
	switch s.in.Kind {
	case TxNewOrder:
		return noStages[s.pc]
	case TxPayment:
		return payStages[s.pc]
	case TxOrderStatus:
		return osStages[s.pc]
	case TxDelivery:
		return dlStages[s.pc]
	}
	return slStages[s.pc]
}

// Fence implements oltp.Program: Delivery's new-order index probe and the
// reads hanging off it are data-dependent on every earlier transaction's
// effects, so it runs only as the oldest in-flight transaction.
func (s *stagedTxn) Fence() bool {
	return s.in.Kind == TxDelivery && s.pc >= 1
}

// TxnID implements oltp.Program.
func (s *stagedTxn) TxnID() uint64 {
	if s.tx == nil || s.tx.Finished() {
		return 0
	}
	return s.tx.ID
}

// Restart implements oltp.Program: abort the current attempt (undoing
// partial updates, dropping deferred inserts, releasing locks) and
// rewind to the first step.
func (s *stagedTxn) Restart(rec *trace.Recorder) {
	if s.tx != nil && !s.tx.Finished() {
		s.tx.Abort(rec)
	} else if s.tx != nil {
		s.w.Mgr.LM.CancelWait(s.tx.ID)
	}
	s.tx = nil
	s.pc = 0
	s.parked = false
	s.line, s.dist = 0, 0
	s.oID, s.price, s.total = 0, 0, 0
	s.dRow, s.row = nil, nil
	s.oKeyCur, s.scanKey, s.scanHi, s.nextO = 0, 0, 0, 0
	s.seen = nil
	s.low = 0
	s.pending = nil
	s.ch.Reset()
}

// tryLock attempts a lock for the current step, translating the
// non-blocking lock manager outcomes into step outcomes. Blockers ride
// along on both park and deadlock so the scheduler's wound policy can
// pick its victim.
func (s *stagedTxn) tryLock(ctx *engine.Ctx, key uint64, mode txn.LockMode) (oltp.StepOutcome, error, bool) {
	blockers, err := s.tx.TryLock(ctx.Rec, key, mode)
	switch err {
	case nil:
		s.parked = false
		return oltp.StepOutcome{}, nil, true
	case txn.ErrWouldBlock:
		s.parked = true
		return oltp.StepOutcome{Parked: true, Blockers: blockers}, nil, false
	default:
		s.parked = true
		return oltp.StepOutcome{Parked: true, Blockers: blockers}, err, false
	}
}

// chargeLock charges a lock step's instructions: the full acquire path on
// first attempt, a short re-probe when retrying a parked continuation
// (the scheduler polls the lock each quantum; the acquire logic itself
// does not re-execute).
func (s *stagedTxn) chargeLock(ctx *engine.Ctx, n int) {
	if s.parked {
		n = 15
	}
	s.ch.Charge(ctx.Rec, oltp.StageLock, n)
}

// deferInsert queues an insert for the commit step.
func (s *stagedTxn) deferInsert(t *engine.Table, vals []engine.Value) {
	s.pending = append(s.pending, func(rec *trace.Recorder) error {
		_, err := t.Insert(rec, vals)
		return err
	})
}

// deferIdxDelete queues a B+tree entry removal for the commit step.
func (s *stagedTxn) deferIdxDelete(idx *engine.Index, key int64, val uint64) {
	s.pending = append(s.pending, func(rec *trace.Recorder) error {
		_, err := idx.Tree.Delete(rec, key, val)
		return err
	})
}

// commit applies deferred work and commits.
func (s *stagedTxn) commit(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	for _, apply := range s.pending {
		if err := apply(ctx.Rec); err != nil {
			return oltp.StepOutcome{}, err
		}
	}
	s.pending = nil
	s.tx.Commit(ctx.Rec)
	return oltp.StepOutcome{Done: true}, nil
}

// Step implements oltp.Program.
func (s *stagedTxn) Step(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	switch s.in.Kind {
	case TxNewOrder:
		return s.stepNewOrder(ctx)
	case TxPayment:
		return s.stepPayment(ctx)
	case TxOrderStatus:
		return s.stepOrderStatus(ctx)
	case TxDelivery:
		return s.stepDelivery(ctx)
	}
	return s.stepStockLevel(ctx)
}

func (s *stagedTxn) stepNewOrder(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	w, in := s.w, s.in
	switch s.pc {
	case 0: // begin
		s.ch.Charge(ctx.Rec, oltp.StageBegin, 2600)
		s.tx = w.Mgr.Begin(ctx.Rec)
		s.pc = 1
	case 1: // lock district
		s.chargeLock(ctx, 250)
		out, err, ok := s.tryLock(ctx, lockKey(lkDistrict, uint64(w.dKey(in.WH, in.D))), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 2
	case 2: // probe + fetch district
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 450)
		dRow, dRID, err := fetchByKey(ctx, w.district, w.idxDistrict, w.dKey(in.WH, in.D))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.dRow, s.dRID = dRow, dRID
		s.oID = engine.RowInt(dRow, 8)
		s.pc = 3
	case 3: // bump next_o_id
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 500)
		newD := append([]byte(nil), s.dRow...)
		engine.PutRowInt(newD, 8, s.oID+1)
		if err := updateTraced(ctx, s.tx, w.district, s.dRID, s.dRow, newD); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.line = 0
		s.pc = 4
	case 4: // probe item for current line
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 120)
		iRow, _, err := fetchByKey(ctx, w.item, w.idxItem, int64(in.Lines[s.line].Item))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.price = engine.RowFloat(iRow, 8)
		s.pc = 5
	case 5: // lock stock (at the line's supply warehouse, possibly remote)
		s.chargeLock(ctx, 80)
		sk := w.sKey(in.supplyWH(s.line), in.Lines[s.line].Item)
		out, err, ok := s.tryLock(ctx, lockKey(lkStock, uint64(sk)), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 6
	case 6: // fetch stock
		s.ch.Charge(ctx.Rec, oltp.StageFetch, 60)
		row, rid, err := fetchByKey(ctx, w.stock, w.idxStock, w.sKey(in.supplyWH(s.line), in.Lines[s.line].Item))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.row, s.rid = row, rid
		s.pc = 7
	case 7: // update stock, build order line
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 90)
		qty := int64(in.Lines[s.line].Qty)
		sQty := engine.RowInt(s.row, 8)
		if sQty >= qty+10 {
			sQty -= qty
		} else {
			sQty += 91 - qty
		}
		newS := append([]byte(nil), s.row...)
		engine.PutRowInt(newS, 8, sQty)
		engine.PutRowFloat(newS, 16, engine.RowFloat(s.row, 16)+float64(qty))
		engine.PutRowInt(newS, 24, engine.RowInt(s.row, 24)+1)
		if err := updateTraced(ctx, s.tx, w.stock, s.rid, s.row, newS); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.deferInsert(w.orderline, []engine.Value{
			engine.IV(w.olKey(in.WH, in.D, int(s.oID), s.line)), engine.IV(int64(in.Lines[s.line].Item)),
			engine.IV(qty), engine.FV(float64(qty) * s.price), engine.SV("dist-info-pad"),
		})
		s.line++
		if s.line < len(in.Lines) {
			s.pc = 4
		} else {
			s.pc = 8
		}
	case 8: // build order + new-order rows
		s.ch.Charge(ctx.Rec, oltp.StageInsert, 800)
		s.deferInsert(w.orders, []engine.Value{
			engine.IV(w.oKey(in.WH, in.D, int(s.oID))), engine.IV(w.cKey(in.WH, in.D, in.C)),
			engine.IV(0), engine.IV(0), engine.IV(int64(len(in.Lines))),
		})
		s.deferInsert(w.neworder, []engine.Value{engine.IV(w.oKey(in.WH, in.D, int(s.oID)))})
		s.pc = 9
	case 9: // commit
		s.ch.Charge(ctx.Rec, oltp.StageCommit, 1200)
		return s.commit(ctx)
	}
	return oltp.StepOutcome{}, nil
}

func (s *stagedTxn) stepPayment(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	w, in := s.w, s.in
	switch s.pc {
	case 0:
		s.ch.Charge(ctx.Rec, oltp.StageBegin, 2200)
		s.tx = w.Mgr.Begin(ctx.Rec)
		s.pc = 1
	case 1: // lock warehouse: the hottest write-shared line in TPC-C
		s.chargeLock(ctx, 200)
		out, err, ok := s.tryLock(ctx, lockKey(lkWarehouse, uint64(in.WH)), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 2
	case 2:
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 250)
		row, rid, err := fetchByKey(ctx, w.warehouse, w.idxWarehouse, int64(in.WH))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.row, s.rid = row, rid
		s.pc = 3
	case 3:
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 300)
		newW := append([]byte(nil), s.row...)
		engine.PutRowFloat(newW, 18, engine.RowFloat(s.row, 18)+in.Amount)
		if err := updateTraced(ctx, s.tx, w.warehouse, s.rid, s.row, newW); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.pc = 4
	case 4:
		s.chargeLock(ctx, 150)
		out, err, ok := s.tryLock(ctx, lockKey(lkDistrict, uint64(w.dKey(in.WH, in.D))), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 5
	case 5:
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 200)
		row, rid, err := fetchByKey(ctx, w.district, w.idxDistrict, w.dKey(in.WH, in.D))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.row, s.rid = row, rid
		s.pc = 6
	case 6:
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 250)
		newD := append([]byte(nil), s.row...)
		engine.PutRowFloat(newD, 16, engine.RowFloat(s.row, 16)+in.Amount)
		if err := updateTraced(ctx, s.tx, w.district, s.rid, s.row, newD); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.pc = 7
	case 7: // lock the customer (possibly at a remote warehouse)
		s.chargeLock(ctx, 150)
		out, err, ok := s.tryLock(ctx, lockKey(lkCustomer, uint64(w.cKey(in.custWH(), in.D, in.C))), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 8
	case 8:
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 200)
		row, rid, err := fetchByKey(ctx, w.customer, w.idxCustomer, w.cKey(in.custWH(), in.D, in.C))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.row, s.rid = row, rid
		s.pc = 9
	case 9:
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 300)
		newC := append([]byte(nil), s.row...)
		engine.PutRowFloat(newC, 8, engine.RowFloat(s.row, 8)-in.Amount)
		engine.PutRowFloat(newC, 16, engine.RowFloat(s.row, 16)+in.Amount)
		engine.PutRowInt(newC, 24, engine.RowInt(s.row, 24)+1)
		if err := updateTraced(ctx, s.tx, w.customer, s.rid, s.row, newC); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.pc = 10
	case 10:
		s.ch.Charge(ctx.Rec, oltp.StageInsert, 250)
		s.deferInsert(w.history, []engine.Value{
			engine.IV(w.cKey(in.custWH(), in.D, in.C)), engine.FV(in.Amount), engine.IV(0),
		})
		s.pc = 11
	case 11:
		s.ch.Charge(ctx.Rec, oltp.StageCommit, 350)
		return s.commit(ctx)
	}
	return oltp.StepOutcome{}, nil
}

// osScanBatch bounds how many orders one Order-Status probe step walks
// before yielding back to the scheduler.
const osScanBatch = 24

func (s *stagedTxn) stepOrderStatus(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	w, in := s.w, s.in
	switch s.pc {
	case 0:
		s.ch.Charge(ctx.Rec, oltp.StageBegin, 1800)
		s.tx = w.Mgr.Begin(ctx.Rec)
		s.pc = 1
	case 1:
		s.chargeLock(ctx, 150)
		out, err, ok := s.tryLock(ctx, lockKey(lkCustomer, uint64(w.cKey(in.WH, in.D, in.C))), txn.Shared)
		if !ok {
			return out, err
		}
		s.pc = 2
	case 2:
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 200)
		if _, _, err := fetchByKey(ctx, w.customer, w.idxCustomer, w.cKey(in.WH, in.D, in.C)); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.scanKey = w.oKey(in.WH, in.D, 0)
		s.scanHi = w.oKey(in.WH, in.D+1, 0)
		s.pc = 3
	case 3: // scan a batch of this district's orders for the customer
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 150)
		ck := w.cKey(in.WH, in.D, in.C)
		cur, err := w.idxOrders.Tree.Seek(ctx.Rec, s.scanKey)
		if err != nil {
			s.pc = 5
			return oltp.StepOutcome{}, nil
		}
		for n := 0; n < osScanBatch; n++ {
			k, v, ok, err := cur.Next(ctx.Rec)
			if err != nil || !ok || k >= s.scanHi {
				s.pc = 5 // no order found; straight to commit
				return oltp.StepOutcome{}, nil
			}
			row, err := w.orders.Fetch(ctx.Rec, storage.UnpackRID(v))
			if err != nil {
				s.pc = 5
				return oltp.StepOutcome{}, nil
			}
			s.scanKey = k + 1
			if engine.RowInt(row, 8) == ck {
				s.oID = k & 0xFFFFFFFF
				s.pc = 4
				return oltp.StepOutcome{}, nil
			}
		}
		// Batch exhausted without a match: yield, resume at scanKey.
	case 4: // read the found order's lines
		s.ch.Charge(ctx.Rec, oltp.StageFetch, 200)
		lo, hi := w.olKey(in.WH, in.D, int(s.oID), 0), w.olKey(in.WH, in.D, int(s.oID), 15)
		if olCur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, lo); err == nil {
			for {
				olk, olv, ok, err := olCur.Next(ctx.Rec)
				if err != nil || !ok || olk > hi {
					break
				}
				if _, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(olv)); err != nil {
					break
				}
			}
		}
		s.pc = 5
	case 5:
		s.ch.Charge(ctx.Rec, oltp.StageCommit, 200)
		return s.commit(ctx)
	}
	return oltp.StepOutcome{}, nil
}

func (s *stagedTxn) stepDelivery(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	w, in := s.w, s.in
	switch s.pc {
	case 0:
		s.ch.Charge(ctx.Rec, oltp.StageBegin, 1800)
		s.tx = w.Mgr.Begin(ctx.Rec)
		s.dist = 0
		s.pc = 1
	case 1: // oldest undelivered order of the current district
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 150)
		lo, hi := w.oKey(in.WH, s.dist, 0), w.oKey(in.WH, s.dist+1, 0)-1
		cur, err := w.idxNewOrder.Tree.Seek(ctx.Rec, lo)
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		k, _, ok, err := cur.Next(ctx.Rec)
		if err != nil || !ok || k > hi {
			s.nextDistrict() // no pending orders here
			return oltp.StepOutcome{}, nil
		}
		s.oKeyCur = k
		s.pc = 2
	case 2:
		s.chargeLock(ctx, 80)
		out, err, ok := s.tryLock(ctx, lockKey(lkOrder, uint64(s.oKeyCur)), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 3
	case 3: // unlink from new-order (deferred) and stamp the carrier
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 300)
		noV, ok, err := w.idxNewOrder.Tree.Get(ctx.Rec, s.oKeyCur)
		if err != nil || !ok {
			s.nextDistrict()
			return oltp.StepOutcome{}, nil
		}
		s.deferIdxDelete(w.idxNewOrder, s.oKeyCur, noV)
		oV, ok, err := w.idxOrders.Tree.Get(ctx.Rec, s.oKeyCur)
		if err != nil || !ok {
			s.nextDistrict()
			return oltp.StepOutcome{}, nil
		}
		oRID := storage.UnpackRID(oV)
		oRow, err := w.orders.Fetch(ctx.Rec, oRID)
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		newO := append([]byte(nil), oRow...)
		engine.PutRowInt(newO, 24, int64(in.Carriers[s.dist]))
		if err := updateTraced(ctx, s.tx, w.orders, oRID, oRow, newO); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.row = oRow
		s.pc = 4
	case 4: // sum the order's lines
		s.ch.Charge(ctx.Rec, oltp.StageFetch, 200)
		oID := int(s.oKeyCur & 0xFFFFFFFF)
		s.total = 0
		if olCur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, w.olKey(in.WH, s.dist, oID, 0)); err == nil {
			for {
				olk, olv, ok, err := olCur.Next(ctx.Rec)
				if err != nil || !ok || olk > w.olKey(in.WH, s.dist, oID, 15) {
					break
				}
				row, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(olv))
				if err != nil {
					break
				}
				s.total += engine.RowFloat(row, 24)
			}
		}
		s.pc = 5
	case 5: // lock the order's customer
		s.chargeLock(ctx, 80)
		ck := engine.RowInt(s.row, 8)
		out, err, ok := s.tryLock(ctx, lockKey(lkCustomer, uint64(ck)), txn.Exclusive)
		if !ok {
			return out, err
		}
		s.pc = 6
	case 6: // credit the customer
		s.ch.Charge(ctx.Rec, oltp.StageUpdate, 250)
		ck := engine.RowInt(s.row, 8)
		cRow, cRID, err := fetchByKey(ctx, w.customer, w.idxCustomer, ck)
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		newC := append([]byte(nil), cRow...)
		engine.PutRowFloat(newC, 8, engine.RowFloat(cRow, 8)+s.total)
		if err := updateTraced(ctx, s.tx, w.customer, cRID, cRow, newC); err != nil {
			return oltp.StepOutcome{}, err
		}
		s.nextDistrict()
	case 7:
		s.ch.Charge(ctx.Rec, oltp.StageCommit, 400)
		return s.commit(ctx)
	}
	return oltp.StepOutcome{}, nil
}

// nextDistrict advances Delivery to the next district or the commit step.
func (s *stagedTxn) nextDistrict() {
	s.dist++
	if s.dist < 10 {
		s.pc = 1
	} else {
		s.pc = 7
	}
}

// slScanBatch bounds how many order-line entries one Stock-Level probe
// step walks before yielding.
const slScanBatch = 16

func (s *stagedTxn) stepStockLevel(ctx *engine.Ctx) (oltp.StepOutcome, error) {
	w, in := s.w, s.in
	switch s.pc {
	case 0:
		s.ch.Charge(ctx.Rec, oltp.StageBegin, 1800)
		s.tx = w.Mgr.Begin(ctx.Rec)
		s.pc = 1
	case 1: // read the district's order horizon (read-only, unlocked)
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 250)
		dRow, _, err := fetchByKey(ctx, w.district, w.idxDistrict, w.dKey(in.WH, in.D))
		if err != nil {
			return oltp.StepOutcome{}, err
		}
		s.nextO = engine.RowInt(dRow, 8)
		lowO := s.nextO - 20
		if lowO < 1 {
			lowO = 1
		}
		s.scanKey = w.olKey(in.WH, in.D, int(lowO), 0)
		s.scanHi = w.olKey(in.WH, in.D, int(s.nextO), 0)
		s.seen = map[int64]bool{}
		s.low = 0
		s.pc = 2
	case 2: // join a batch of recent order lines against stock
		s.ch.Charge(ctx.Rec, oltp.StageProbe, 300)
		cur, err := w.idxOrderLine.Tree.Seek(ctx.Rec, s.scanKey)
		if err != nil {
			s.pc = 3
			return oltp.StepOutcome{}, nil
		}
		for n := 0; n < slScanBatch; n++ {
			k, v, ok, err := cur.Next(ctx.Rec)
			if err != nil || !ok || k >= s.scanHi {
				s.pc = 3
				return oltp.StepOutcome{}, nil
			}
			s.scanKey = k + 1
			row, err := w.orderline.Fetch(ctx.Rec, storage.UnpackRID(v))
			if err != nil {
				s.pc = 3
				return oltp.StepOutcome{}, nil
			}
			iid := engine.RowInt(row, 8)
			if s.seen[iid] {
				continue
			}
			s.seen[iid] = true
			sRow, _, err := fetchByKey(ctx, w.stock, w.idxStock, w.sKey(in.WH, int(iid)))
			if err != nil {
				continue
			}
			if engine.RowInt(sRow, 8) < in.Threshold {
				s.low++
			}
		}
	case 3:
		s.ch.Charge(ctx.Rec, oltp.StageCommit, 150)
		return s.commit(ctx)
	}
	return oltp.StepOutcome{}, nil
}

// StateDigest hashes the database's logical state: every table's live
// rows in heap order plus the new-order index contents. The cohort
// executor must reproduce the monolithic executor's digest exactly —
// conflicting accesses serialize in admission order on both paths.
func (w *TPCC) StateDigest() (uint64, error) {
	h := fnv.New64a()
	tables := []*engine.Table{
		w.warehouse, w.district, w.customer, w.history,
		w.item, w.stock, w.orders, w.neworder, w.orderline,
	}
	for _, t := range tables {
		h.Write([]byte(t.Name))
		for p := 0; p < t.Heap.NumPages(); p++ {
			ref, err := w.DB.Pool.Get(nil, t.Heap.PageAt(p))
			if err != nil {
				return 0, err
			}
			sp := storage.AsSlotted(ref.Data, ref.Addr)
			for sl := 0; sl < sp.NumSlots(); sl++ {
				if row := sp.Tuple(nil, sl); row != nil {
					h.Write(row)
				}
			}
			ref.Release()
		}
	}
	// The new-order index is the one piece of logical state mutated in
	// place without a backing heap change (Delivery unlinks entries).
	cur, err := w.idxNewOrder.Tree.Seek(nil, -1<<62)
	if err == nil {
		var kb [8]byte
		for {
			k, _, ok, err := cur.Next(nil)
			if err != nil || !ok {
				break
			}
			storage.PutUint64(kb[:], uint64(k))
			h.Write(kb[:])
		}
	}
	return h.Sum64(), nil
}
