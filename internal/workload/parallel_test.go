package workload

import (
	"math"
	"sync"
	"testing"

	"repro/internal/engine"
)

// parShared builds one small DSS database for the parallel-variant tests.
var (
	parOnce sync.Once
	parDB   *TPCH
	parErr  error
)

func parTPCH(t *testing.T) *TPCH {
	t.Helper()
	parOnce.Do(func() {
		parDB, parErr = BuildTPCH(TPCHConfig{Lineitems: 20000, ArenaBytes: 64 << 20})
	})
	if parErr != nil {
		t.Fatal(parErr)
	}
	return parDB
}

func parCtxs(h *TPCH, n int) []*engine.Ctx {
	ctxs := make([]*engine.Ctx, n)
	for w := 0; w < n; w++ {
		ctxs[w] = h.DB.NewCtx(nil, 50+w, 32<<20)
	}
	return ctxs
}

// sameRows compares decoded result rows: exact for ints and chars, to a
// relative tolerance for floats (parallel sums reassociate additions).
func sameRows(t *testing.T, label string, got, want [][]engine.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d cols, want %d", label, i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			w, g := want[i][c], got[i][c]
			if g.Kind != w.Kind {
				t.Fatalf("%s row %d col %d: kind %v, want %v", label, i, c, g.Kind, w.Kind)
			}
			switch w.Kind {
			case engine.TInt:
				if g.I != w.I {
					t.Fatalf("%s row %d col %d: %d, want %d", label, i, c, g.I, w.I)
				}
			case engine.TFloat:
				if math.Abs(g.F-w.F) > 1e-6*(1+math.Abs(w.F)) {
					t.Fatalf("%s row %d col %d: %v, want %v", label, i, c, g.F, w.F)
				}
			default:
				if g.S != w.S {
					t.Fatalf("%s row %d col %d: %q, want %q", label, i, c, g.S, w.S)
				}
			}
		}
	}
}

func TestQ1ParallelMatchesSerialAcrossWorkerCounts(t *testing.T) {
	h := parTPCH(t)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	want, err := h.Q1(h.DB.NewCtx(nil, 49, 32<<20), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("Q1 returned no groups")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := h.Q1Parallel(parCtxs(h, workers), p)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "Q1 workers="+string(rune('0'+workers)), got, want)
	}
}

func TestQ6ParallelMatchesSerialAcrossWorkerCounts(t *testing.T) {
	h := parTPCH(t)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	want, err := h.Q6(h.DB.NewCtx(nil, 49, 32<<20), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := h.Q6Parallel(parCtxs(h, workers), p)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "Q6", got, want)
	}
}

func TestParallelJoinRowCountMatchesSerial(t *testing.T) {
	h := parTPCH(t)
	want, err := h.OrdersPerCustomer(h.DB.NewCtx(nil, 49, 32<<20))
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("serial join produced no rows")
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := h.OrdersPerCustomerParallel(parCtxs(h, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: %d join rows, serial %d", workers, got, want)
		}
	}
}

func TestRunQueryParallelRejectsUnknown(t *testing.T) {
	h := parTPCH(t)
	if _, err := h.RunQueryParallel(parCtxs(h, 2), 16, QueryParams{}); err == nil {
		t.Fatal("query 16 has no parallel variant but was accepted")
	}
}
