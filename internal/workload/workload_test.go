package workload

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

func smallTPCC(t *testing.T) *TPCC {
	t.Helper()
	w, err := BuildTPCC(TPCCConfig{
		Warehouses: 2, Items: 500, CustPerDis: 40, ArenaBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallTPCH(t *testing.T) *TPCH {
	t.Helper()
	h, err := BuildTPCH(TPCHConfig{Lineitems: 8000, ArenaBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTPCCLoadCounts(t *testing.T) {
	w := smallTPCC(t)
	if got := w.warehouse.Heap.Rows(); got != 2 {
		t.Errorf("warehouses = %d", got)
	}
	if got := w.district.Heap.Rows(); got != 20 {
		t.Errorf("districts = %d", got)
	}
	if got := w.customer.Heap.Rows(); got != 2*10*40 {
		t.Errorf("customers = %d", got)
	}
	if got := w.stock.Heap.Rows(); got != 2*500 {
		t.Errorf("stock = %d", got)
	}
	if n, err := w.idxStock.Tree.Validate(); err != nil || n != 1000 {
		t.Errorf("stock index: %d, %v", n, err)
	}
}

func TestNewOrderAdvancesDistrictAndWritesLines(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(5))
	before := w.orderline.Heap.Rows()
	for i := 0; i < 20; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	if w.orders.Heap.Rows() != 20 {
		t.Fatalf("orders = %d", w.orders.Heap.Rows())
	}
	if w.neworder.Heap.Rows() != 20 {
		t.Fatalf("neworders = %d", w.neworder.Heap.Rows())
	}
	if got := w.orderline.Heap.Rows() - before; got < 20*5 || got > 20*15 {
		t.Fatalf("orderlines = %d, want 100-300", got)
	}
	// Every district's next_o_id must be >= 1 and total advance = 20.
	total := int64(0)
	for wh := 0; wh < 2; wh++ {
		for d := 0; d < 10; d++ {
			row, _, err := fetchByKey(ctx, w.district, w.idxDistrict, w.dKey(wh, d))
			if err != nil {
				t.Fatal(err)
			}
			total += engine.RowInt(row, 8) - 1
		}
	}
	if total != 20 {
		t.Fatalf("district next_o_id advanced %d, want 20", total)
	}
}

func TestPaymentConservesMoney(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		if err := w.Payment(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Sum of warehouse ytd must equal sum of history amounts.
	var whYTD, histSum float64
	rows, err := engine.Collect(ctx, &engine.SeqScan{Table: w.warehouse})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		whYTD += r[2].F
	}
	hrows, err := engine.Collect(ctx, &engine.SeqScan{Table: w.history})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hrows {
		histSum += r[1].F
	}
	if len(hrows) != 30 {
		t.Fatalf("history rows = %d", len(hrows))
	}
	if math.Abs(whYTD-histSum) > 1e-6 {
		t.Fatalf("warehouse ytd %v != history sum %v", whYTD, histSum)
	}
}

func TestDeliveryClearsNewOrders(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := w.Delivery(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Delivery removes new-order entries (up to 10 per run, one per
	// district with pending orders).
	remaining := 0
	cur, err := w.idxNewOrder.Tree.Seek(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, ok, err := cur.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		remaining++
	}
	if remaining >= 25 {
		t.Fatalf("no new-order entries delivered: %d remain", remaining)
	}
}

func TestReadOnlyTransactionsRun(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		if err := w.NewOrder(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := w.OrderStatus(ctx, rng); err != nil {
			t.Fatal(err)
		}
		if err := w.StockLevel(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMixRatios(t *testing.T) {
	w := smallTPCC(t)
	ctx := w.DB.NewCtx(nil, 0, 2<<20)
	rng := rand.New(rand.NewSource(9))
	var counts MixCounts
	for i := 0; i < 400; i++ {
		if err := w.RunOne(ctx, rng, &counts); err != nil {
			t.Fatal(err)
		}
	}
	if counts.Total() != 400 {
		t.Fatalf("total = %d", counts.Total())
	}
	// 45/43/4/4/4 within loose bounds.
	if counts.NewOrder < 140 || counts.NewOrder > 230 {
		t.Errorf("NewOrder count %d outside mix expectation", counts.NewOrder)
	}
	if counts.Payment < 130 || counts.Payment > 220 {
		t.Errorf("Payment count %d outside mix expectation", counts.Payment)
	}
}

func TestConcurrentClientsConserveMoney(t *testing.T) {
	w := smallTPCC(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := w.DB.NewCtx(nil, c, 2<<20)
			rng := rand.New(rand.NewSource(int64(100 + c)))
			var counts MixCounts
			for i := 0; i < 60; i++ {
				if err := w.RunOne(ctx, rng, &counts); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx := w.DB.NewCtx(nil, 20, 2<<20)
	var whYTD, distYTD, histSum float64
	rows, _ := engine.Collect(ctx, &engine.SeqScan{Table: w.warehouse})
	for _, r := range rows {
		whYTD += r[2].F
	}
	drows, _ := engine.Collect(ctx, &engine.SeqScan{Table: w.district})
	for _, r := range drows {
		distYTD += r[2].F
	}
	hrows, _ := engine.Collect(ctx, &engine.SeqScan{Table: w.history})
	for _, r := range hrows {
		histSum += r[1].F
	}
	if math.Abs(whYTD-histSum) > 1e-6 || math.Abs(distYTD-histSum) > 1e-6 {
		t.Fatalf("money leaked: wh=%v dist=%v hist=%v", whYTD, distYTD, histSum)
	}
}

func TestTPCCClientTraced(t *testing.T) {
	w := smallTPCC(t)
	rec, s := trace.Pipe()
	done := make(chan MixCounts, 1)
	go func() {
		counts, err := w.Client(rec, 0, 42, 10)
		if err != nil {
			t.Error(err)
		}
		done <- counts
	}()
	var refs uint64
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		refs++
	}
	counts := <-done
	if counts.Total() != 10 {
		t.Fatalf("client ran %d txns", counts.Total())
	}
	if refs < 10000 {
		t.Fatalf("10 transactions emitted only %d refs", refs)
	}
}

func TestQ1GroupsAndSums(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	p := QueryParams{Date: dateRange} // include everything
	rows, err := h.Q1(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	// 3 returnflags x 2 linestatuses = 6 groups.
	if len(rows) != 6 {
		t.Fatalf("Q1 groups = %d, want 6", len(rows))
	}
	var count int64
	var sumQty float64
	for _, r := range rows {
		count += r[8].I  // count_order
		sumQty += r[2].F // sum_qty
		if r[5].F <= 0 { // avg_qty
			t.Errorf("non-positive avg qty in %v", r)
		}
	}
	if count != int64(h.Cfg.Lineitems) {
		t.Fatalf("Q1 total count = %d, want %d", count, h.Cfg.Lineitems)
	}
	if sumQty <= 0 {
		t.Fatal("Q1 sum_qty <= 0")
	}
}

func TestQ1DateFilter(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	all, _ := h.Q1(ctx, QueryParams{Date: dateRange})
	ctx.Work.Reset()
	half, err := h.Q1(ctx, QueryParams{Date: dateRange / 2})
	if err != nil {
		t.Fatal(err)
	}
	var cAll, cHalf int64
	for _, r := range all {
		cAll += r[8].I
	}
	for _, r := range half {
		cHalf += r[8].I
	}
	if cHalf >= cAll || cHalf == 0 {
		t.Fatalf("date filter ineffective: %d of %d", cHalf, cAll)
	}
	ratio := float64(cHalf) / float64(cAll)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("half-range filter kept %.2f of rows", ratio)
	}
}

func TestQ6MatchesScalarReference(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	p := QueryParams{Date: dateRange * 3 / 4, Discount: 0.05, Quantity: 24}
	rows, err := h.Q6(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 1 {
		t.Fatalf("Q6 returned %d rows", len(rows))
	}
	// Reference computation straight off a table scan.
	var want float64
	ls := h.lineitem.Schema
	ctx2 := h.DB.NewCtx(nil, 1, 64<<20)
	err = engine.Run(ctx2, &engine.SeqScan{Table: h.lineitem}, func(row []byte) error {
		sd := engine.RowInt(row, ls.Offsets()[ls.Col("l_shipdate")])
		disc := engine.RowFloat(row, ls.Offsets()[ls.Col("l_discount")])
		qty := engine.RowFloat(row, ls.Offsets()[ls.Col("l_quantity")])
		price := engine.RowFloat(row, ls.Offsets()[ls.Col("l_extendedprice")])
		if sd >= p.Date-365 && sd <= p.Date && disc >= p.Discount-0.01 && disc <= p.Discount+0.01 && qty < p.Quantity {
			want += price * disc
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	if len(rows) == 1 {
		got = rows[0][1].F
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Q6 = %v, want %v", got, want)
	}
}

func TestQ13Distribution(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	rows, err := h.Q13(ctx, QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q13 empty")
	}
	// Total customers across the distribution must equal customer count.
	var total int64
	for _, r := range rows {
		total += r[1].I
	}
	if total != int64(h.nCustomers) {
		t.Fatalf("Q13 distribution covers %d customers, want %d", total, h.nCustomers)
	}
}

func TestQ16DistinctSuppliers(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 64<<20)
	rows, err := h.Q16(ctx, QueryParams{Brand: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q16 empty")
	}
	for _, r := range rows {
		if r[3].I < 1 {
			t.Fatalf("group with %d suppliers", r[3].I)
		}
		// Each part has 4 suppliers; distinct-count per group cannot
		// exceed total suppliers.
		if r[3].I > int64(h.nSupps) {
			t.Fatalf("supplier count %d exceeds suppliers %d", r[3].I, h.nSupps)
		}
	}
}

func TestRunQueryUnknown(t *testing.T) {
	h := smallTPCH(t)
	ctx := h.DB.NewCtx(nil, 0, 8<<20)
	if _, err := h.RunQuery(ctx, 2, QueryParams{}); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestDSSClientTraced(t *testing.T) {
	h := smallTPCH(t)
	rec, s := trace.Pipe()
	done := make(chan int, 1)
	go func() {
		n, err := h.Client(rec, 0, 11, 3)
		if err != nil {
			t.Error(err)
		}
		done <- n
	}()
	var refs uint64
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		refs++
	}
	if n := <-done; n != 3 {
		t.Fatalf("client ran %d queries", n)
	}
	if refs < 50000 {
		t.Fatalf("3 queries emitted only %d refs", refs)
	}
}

func TestRandomParamsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := RandomParams(rng)
		if p.Date < dateRange/2 || p.Date > dateRange {
			t.Fatalf("date %d out of range", p.Date)
		}
		if p.Discount < 0.02 || p.Discount > 0.10 {
			t.Fatalf("discount %v out of range", p.Discount)
		}
		if p.Brand < 1 || p.Brand > 5 {
			t.Fatalf("brand %d out of range", p.Brand)
		}
	}
}
