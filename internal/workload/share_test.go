package workload

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/share"
)

func shareTPCH(t testing.TB) *TPCH {
	t.Helper()
	h, err := BuildTPCH(TPCHConfig{Lineitems: 20000, ArenaBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// runShared executes one shared query and returns its rows plus the
// rotation's start page.
func runShared(t *testing.T, h *TPCH, ctx *engine.Ctx, q int, p QueryParams, reg *share.Registry) ([][]engine.Value, int) {
	t.Helper()
	var rows [][]engine.Value
	var start int
	var err error
	switch q {
	case 1:
		rows, start, err = h.Q1Shared(ctx, p, reg)
	case 6:
		rows, start, err = h.Q6Shared(ctx, p, reg)
	case 13:
		rows, start, err = h.Q13Shared(ctx, p, reg)
	default:
		t.Fatalf("no shared variant of q%d", q)
	}
	if err != nil {
		t.Fatalf("q%d shared: %v", q, err)
	}
	return rows, start
}

// valuesEqual compares result sets bit for bit (float columns by their
// exact float64 bits, which reflect.DeepEqual preserves).
func valuesEqual(a, b [][]engine.Value) bool { return reflect.DeepEqual(a, b) }

// TestSharedQueriesMatchUnshared is the acceptance correctness check:
// for Q1/Q6/Q13 and client counts {1, 2, 8, 32}, every concurrent
// shared-scan execution returns rows byte-identical to a private serial
// run replayed from the same rotation origin (QueryParams.StartPage).
func TestSharedQueriesMatchUnshared(t *testing.T) {
	h := shareTPCH(t)
	for _, clients := range []int{1, 2, 8, 32} {
		for _, q := range SharedQueries {
			if testing.Short() && clients > 8 {
				continue
			}
			reg := share.NewRegistry(h.DB, share.Config{MorselPages: 4})
			type run struct {
				p     QueryParams
				rows  [][]engine.Value
				start int
			}
			runs := make([]run, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					prng := rand.New(rand.NewSource(int64(100*q + c)))
					p := RandomParams(prng)
					ctx := h.DB.NewCtx(nil, c, 12<<20)
					rows, start := runShared(t, h, ctx, q, p, reg)
					runs[c] = run{p: p, rows: rows, start: start}
				}(c)
			}
			wg.Wait()
			reg.WaitIdle()

			sctx := h.DB.NewCtx(nil, 40, 12<<20)
			for c, r := range runs {
				p := r.p
				p.StartPage = r.start + 1 // 1-based pin, exact even for page 0
				p.Phase = 0.37            // must be overridden by the pinned origin
				sctx.Work.Reset()
				want, err := h.RunQuery(sctx, q, p)
				if err != nil {
					t.Fatal(err)
				}
				if !valuesEqual(r.rows, want) {
					t.Fatalf("q%d clients=%d: client %d (start page %d) shared result differs from serial replay",
						q, clients, c, r.start)
				}
			}
		}
	}
}

// TestResultReuseServesRepeatsAndInvalidatesOnWrite is the satellite
// regression: repeated aggregates hit the cache; an insert between
// repeats (as a committing transaction's write would) must force a
// recomputation that reflects the new data — never a stale hit.
func TestResultReuseServesRepeatsAndInvalidatesOnWrite(t *testing.T) {
	h := shareTPCH(t)
	env := h.NewShareEnv()
	ctx := h.DB.NewCtx(nil, 0, 12<<20)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}

	first, err := h.RunQueryShared(ctx, 6, p, env)
	if err != nil {
		t.Fatal(err)
	}
	if st := env.Cache.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first run: %+v", st)
	}
	ctx.Work.Reset()
	again, err := h.RunQueryShared(ctx, 6, p, env)
	if err != nil {
		t.Fatal(err)
	}
	if st := env.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("repeat did not hit the cache: %+v", st)
	}
	if !valuesEqual(first, again) {
		t.Fatal("cache returned different rows")
	}

	// A write that changes Q6's answer: one lineitem inside every Q6
	// predicate range (shipdate in [Date-365, Date], discount == center,
	// quantity < bound), with a large extendedprice.
	if _, err := h.Lineitem().Insert(nil, []engine.Value{
		engine.IV(1), engine.IV(1), engine.IV(1),
		engine.FV(1), engine.FV(1e9), engine.FV(p.Discount), engine.FV(0),
		engine.SV("A"), engine.SV("O"), engine.IV(p.Date - 10),
	}); err != nil {
		t.Fatal(err)
	}
	ctx.Work.Reset()
	after, err := h.RunQueryShared(ctx, 6, p, env)
	if err != nil {
		t.Fatal(err)
	}
	if st := env.Cache.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("post-write query should miss (stale hit?): %+v", st)
	}
	if valuesEqual(first, after) {
		t.Fatal("post-write result identical to pre-write result: stale aggregate served")
	}
	if len(after) == 0 || after[0][1].F < first[0][1].F+1e7 {
		t.Fatalf("inserted revenue not visible: before %v, after %v", first[0][1], after[0][1])
	}
}

// TestResultReuseSharedAcrossClients: once one client has computed an
// aggregate, every later client with the same parameters is served the
// memoized rows instead of scanning again.
func TestResultReuseSharedAcrossClients(t *testing.T) {
	h := shareTPCH(t)
	env := h.NewShareEnv()
	p := QueryParams{Date: 2100, Discount: 0.04, Quantity: 25}
	wctx := h.DB.NewCtx(nil, 39, 12<<20)
	warm, err := h.RunQueryShared(wctx, 1, p, env)
	if err != nil {
		t.Fatal(err)
	}
	scansBefore := env.Reg.Stats().PagesScanned

	const clients = 8
	results := make([][][]engine.Value, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := h.DB.NewCtx(nil, c, 12<<20)
			rows, err := h.RunQueryShared(ctx, 1, p, env)
			if err != nil {
				t.Error(err)
				return
			}
			results[c] = rows
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if !valuesEqual(warm, results[c]) {
			t.Fatalf("client %d saw a different Q1 result than the memoized one", c)
		}
	}
	st := env.Cache.Stats()
	if st.Hits != clients {
		t.Fatalf("cache hits = %d, want %d (every repeat served from the cache): %+v", st.Hits, clients, st)
	}
	if after := env.Reg.Stats().PagesScanned; after != scansBefore {
		t.Fatalf("cache hits still scanned pages: %d -> %d", scansBefore, after)
	}
}

// TestRunConcurrentDSS smoke-tests the multi-client driver in both modes.
func TestRunConcurrentDSS(t *testing.T) {
	h := shareTPCH(t)
	un, err := h.RunConcurrentDSS(4, 2, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	if un.Queries != 8 {
		t.Fatalf("unshared driver ran %d queries, want 8", un.Queries)
	}
	sh, err := h.RunConcurrentDSS(4, 2, h.NewShareEnv(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Queries != 8 || sh.Scans.Rotations == 0 {
		t.Fatalf("shared driver: %+v", sh)
	}
}

// TestPlanFingerprintDiscriminates pins the fingerprint's contract: same
// query and parameters agree (origin-independently); different parameters
// or shapes differ.
func TestPlanFingerprintDiscriminates(t *testing.T) {
	h := shareTPCH(t)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	k1, err := h.resultKey(6, p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.StartPage = 18
	p2.Phase = 0.5
	k2, err := h.resultKey(6, p2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("scan origin leaked into the plan fingerprint")
	}
	p3 := p
	p3.Date++
	k3, err := h.resultKey(6, p3)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Plan == k3.Plan {
		t.Fatal("different predicate constants produced equal fingerprints")
	}
	k6, err := h.resultKey(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if k6.Plan == k1.Plan {
		t.Fatal("Q1 and Q6 plans produced equal fingerprints")
	}
}
