// Golden equivalence tests for the native fast path: compiled
// predicates, selection vectors, and batch hash tables must never change
// a result — only how fast it arrives. Serial native plans (compiled and
// interpreted, annotating and compacting) are byte-identical to the
// standard vectorized plans on both page layouts; morsel-parallel native
// runs agree across worker counts {1, 2, 4, 8} up to float addition
// order, with Q13's within-tie row order canonicalized (parallel join
// arrival order is not deterministic).

package workload

import (
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

// nativeWorkerCtxs builds n fresh nil-recorder contexts.
func nativeWorkerCtxs(h *TPCH, n int) []*engine.Ctx {
	ctxs := make([]*engine.Ctx, n)
	for w := range ctxs {
		ctxs[w] = h.DB.NewCtx(nil, 60+w, 24<<20)
	}
	return ctxs
}

// TestNativeGoldenSerial: on both layouts, every native flavor of
// Q1/Q6/Q13 — compiled+selection (the fast path), interpreted+compacting
// (the slow reference), and the mixed corners — is byte-identical to the
// standard vectorized plan at the same parameters.
func TestNativeGoldenSerial(t *testing.T) {
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	flavors := []struct {
		name string
		o    NativeOpts
	}{
		{"compiled+sel", NativeOpts{}},
		{"interpreted+compact", NativeOpts{Interpret: true, Compact: true}},
		{"compiled+compact", NativeOpts{Compact: true}},
		{"interpreted+sel", NativeOpts{Interpret: true}},
	}
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		h := vecTPCH(t, layout)
		ctx := h.DB.NewCtx(nil, 58, 48<<20)
		for _, q := range []int{1, 6, 13} {
			ctx.Work.Reset()
			want, err := h.RunQuery(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("q%d/%v: empty reference result", q, layout)
			}
			for _, fl := range flavors {
				ctx.Work.Reset()
				got, err := h.RunQueryNative(ctx, q, p, fl.o)
				if err != nil {
					t.Fatal(err)
				}
				exactRows(t, layout.String()+"/q"+string(rune('0'+q))+"/"+fl.name, got, want)
			}
		}
	}
}

// canonRows sorts a result set by its integer columns (Q13's output is
// all-int) so multiset comparisons survive within-tie reordering.
func canonRows(rows [][]engine.Value) [][]engine.Value {
	out := append([][]engine.Value(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		for c := range out[i] {
			if out[i][c].I != out[j][c].I {
				return out[i][c].I < out[j][c].I
			}
		}
		return false
	})
	return out
}

// TestNativeGoldenParallel: the morsel-parallel native runs agree with
// the serial native plan at every worker count — keys and integer
// aggregates exactly, float sums up to addition order (sameRows), Q13 as
// a canonicalized multiset.
func TestNativeGoldenParallel(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	serial := h.DB.NewCtx(nil, 59, 48<<20)
	for _, q := range []int{1, 6, 13} {
		serial.Work.Reset()
		want, err := h.RunQueryNative(serial, q, p, NativeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if q == 13 {
			want = canonRows(want)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := h.RunQueryParallel(nativeWorkerCtxs(h, workers), q, p)
			if err != nil {
				t.Fatal(err)
			}
			if q == 13 {
				got = canonRows(got)
			}
			sameRows(t, "native-parallel", got, want)
		}
	}
}

// TestNativeParallelMergeRaceHammer repeatedly drives the 8-worker
// parallel aggregate and join so `go test -race` can watch the partial
// merge and morsel claiming for unsynchronized access.
func TestNativeParallelMergeRaceHammer(t *testing.T) {
	h := vecTPCH(t, storage.NSM)
	p := QueryParams{Date: 2000, Discount: 0.05, Quantity: 30}
	iters := 6
	if testing.Short() {
		iters = 2
	}
	ctxs := nativeWorkerCtxs(h, 8)
	for i := 0; i < iters; i++ {
		for _, q := range []int{1, 6, 13} {
			for _, c := range ctxs {
				c.Work.Reset()
			}
			rows, err := h.RunQueryParallel(ctxs, q, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				t.Fatalf("iter %d q%d: empty result", i, q)
			}
		}
	}
}
