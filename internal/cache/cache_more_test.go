package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestOddCapacityAbsorbedIntoAssociativity(t *testing.T) {
	// 26MB with nominal 8-way: sets must stay a power of two with the
	// odd factor in associativity, capacity preserved.
	c := New(26<<20, 8)
	if c.Sets()&(c.Sets()-1) != 0 {
		t.Fatalf("sets = %d, not a power of two", c.Sets())
	}
	if c.SizeBytes() < 26<<20 {
		t.Fatalf("capacity %d below requested", c.SizeBytes())
	}
	if c.Assoc() < 8 {
		t.Fatalf("assoc = %d, below nominal", c.Assoc())
	}
}

func TestCacheGeometryProperty(t *testing.T) {
	f := func(mb uint8, assocPow uint8) bool {
		size := (int(mb)%32 + 1) << 20
		assoc := 1 << (assocPow % 5)
		c := New(size, assoc)
		return c.Sets()&(c.Sets()-1) == 0 && c.SizeBytes() >= size && c.Assoc() >= assoc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInclusionInvariantUnderRandomTraffic(t *testing.T) {
	// After arbitrary CMP traffic, every valid L1 line must be present in
	// the shared L2 (the hierarchy maintains inclusion).
	h := NewHierarchy(Config{
		Cores: 4, L1DSize: 8 << 10, L1ISize: 8 << 10,
		L2Size: 64 << 10, L2Assoc: 2, L2Lat: 10, SharedL2: true,
	})
	rng := rand.New(rand.NewSource(11))
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		core := rng.Intn(4)
		a := mem.Addr(rng.Intn(256<<10)) &^ 63
		switch rng.Intn(3) {
		case 0:
			h.Read(core, a, now)
		case 1:
			h.Write(core, a, now)
		default:
			h.Fetch(core, a, now)
		}
		now += uint64(rng.Intn(20))
	}
	for core := 0; core < 4; core++ {
		for i := 0; i < 256<<10; i += mem.LineSize {
			line := mem.Addr(i)
			if h.l1d[core].Probe(line) != Invalid && h.l2[0].Probe(line) == Invalid {
				t.Fatalf("core %d L1D holds %#x but shared L2 does not", core, uint64(line))
			}
			if h.l1i[core].Probe(line) != Invalid && h.l2[0].Probe(line) == Invalid {
				t.Fatalf("core %d L1I holds %#x but shared L2 does not", core, uint64(line))
			}
		}
	}
}

func TestSingleWriterInvariant(t *testing.T) {
	// At most one L1 may hold a line Modified at any time under random
	// CMP read/write traffic.
	h := NewHierarchy(Config{Cores: 4, L2Size: 1 << 20, L2Lat: 10, SharedL2: true})
	rng := rand.New(rand.NewSource(12))
	now := uint64(0)
	for i := 0; i < 30000; i++ {
		core := rng.Intn(4)
		a := mem.Addr(rng.Intn(64) * 64) // 64 hot lines: heavy sharing
		if rng.Intn(2) == 0 {
			h.Write(core, a, now)
		} else {
			h.Read(core, a, now)
		}
		now += 3
		owners := 0
		for c := 0; c < 4; c++ {
			if h.l1d[c].Probe(a) == Modified {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("line %#x has %d modified owners", uint64(a), owners)
		}
	}
}

func TestWriteThenReadSameCoreIsL1(t *testing.T) {
	h := newTestHier(true, 2)
	h.Write(0, 0xABC0, 10)
	if r := h.Read(0, 0xABC0, 20); r.Level != LvlL1 {
		t.Fatalf("own dirty read = %v, want L1", r.Level)
	}
}

func TestSMPUpgradeInvalidatesRemoteL2(t *testing.T) {
	h := newTestHier(false, 2)
	// Both nodes read (shared everywhere).
	h.Read(0, 0x9000, 10)
	h.Read(1, 0x9000, 20)
	// Node 0 writes: remote node's copies must vanish.
	h.Write(0, 0x9000, 30)
	if h.l2[1].Probe(mem.Addr(0x9000).Line()) != Invalid {
		t.Fatal("remote L2 copy survived upgrade")
	}
	if h.l1d[1].Probe(mem.Addr(0x9000).Line()) != Invalid {
		t.Fatal("remote L1 copy survived upgrade")
	}
	// And the subsequent remote read is a coherence transfer.
	if r := h.Read(1, 0x9000, 40); r.Level != LvlCoh {
		t.Fatalf("remote read after upgrade = %v, want coherence", r.Level)
	}
}

func TestWarmWriteGrantsOwnership(t *testing.T) {
	h := newTestHier(true, 2)
	h.WarmWrite(0, 0x7000)
	// A peer read must see the dirty line (L1-to-L1 transfer), proving
	// warming left real Modified state behind.
	r := h.Read(1, 0x7000, 100)
	if r.Level != LvlL2 || h.Stats.L1Transfers != 1 {
		t.Fatalf("peer read after warm write: %v, transfers=%d", r.Level, h.Stats.L1Transfers)
	}
}

func TestWarmFetchPopulatesL1I(t *testing.T) {
	h := newTestHier(true, 1)
	h.WarmFetch(0, mem.Addr(uint64(mem.CodeBase)))
	r := h.Fetch(0, mem.Addr(uint64(mem.CodeBase)), 50)
	if r.Level != LvlL1 {
		t.Fatalf("fetch after warm = %v, want L1", r.Level)
	}
}

func TestStreamBufferBoundedDepth(t *testing.T) {
	b := newStreamBuffer(2)
	for i := 0; i < 100; i++ {
		b.push(mem.Addr(i * 64))
	}
	if len(b.lines) > 4 {
		t.Fatalf("stream buffer grew to %d entries", len(b.lines))
	}
	// Most recent pushes must be retained.
	if !b.hit(99 * 64) {
		t.Fatal("most recent prefetch lost")
	}
}

func TestPortQueueTimesMoveForward(t *testing.T) {
	h := NewHierarchy(Config{
		Cores: 1, L2Size: 1 << 20, L2Lat: 10, SharedL2: true,
		L2Ports: 1, L2PortOcc: 3,
	})
	// Back-to-back L2 accesses at the same timestamp serialize.
	h.WarmRead(0, 0x100000) // in L2 via... warm puts it in L1 too; use distinct lines
	var prev uint64
	for i := 1; i <= 4; i++ {
		r := h.Read(0, mem.Addr(0x200000+i*4096), 1000)
		if r.DoneAt < prev {
			t.Fatalf("completion times regressed: %d after %d", r.DoneAt, prev)
		}
		prev = r.DoneAt
	}
}

func TestFetchNeverDirties(t *testing.T) {
	h := newTestHier(true, 2)
	h.Fetch(0, 0x5000, 10)
	if st := h.l1i[0].Probe(mem.Addr(0x5000).Line()); st == Modified || st == Invalid {
		t.Fatalf("instruction line state = %v", st)
	}
}

func TestStatsDeltasNonNegative(t *testing.T) {
	// The simulator subtracts snapshots; all counters must be monotonic.
	h := newTestHier(true, 2)
	before := h.Stats
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		h.Read(rng.Intn(2), mem.Addr(rng.Intn(1<<20))&^63, uint64(i))
	}
	after := h.Stats
	if after.L1DHits < before.L1DHits || after.L2Hits < before.L2Hits ||
		after.MemAccesses < before.MemAccesses {
		t.Fatal("counters regressed")
	}
}
