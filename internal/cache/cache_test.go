package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestCacheGeometry(t *testing.T) {
	c := New(64<<10, 2)
	if c.Sets() != 512 || c.Assoc() != 2 || c.SizeBytes() != 64<<10 {
		t.Fatalf("geometry: sets=%d assoc=%d size=%d", c.Sets(), c.Assoc(), c.SizeBytes())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 2) // sets not a power of two
}

func TestHitAfterInsert(t *testing.T) {
	c := New(4096, 4)
	line := mem.Addr(0x1000)
	if c.Touch(line) != Invalid {
		t.Fatal("hit before insert")
	}
	c.Insert(line, Exclusive)
	if c.Touch(line) != Exclusive {
		t.Fatal("miss after insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2*mem.LineSize, 2) // one set, two ways
	a := mem.Addr(0)
	b := mem.Addr(1 << 12)
	d := mem.Addr(2 << 12)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Touch(a) // a is now MRU
	v, evicted := c.Insert(d, Shared)
	if !evicted || v.Line != b {
		t.Fatalf("evicted %+v (%v), want line %#x", v, evicted, uint64(b))
	}
	if c.Probe(a) == Invalid || c.Probe(d) == Invalid || c.Probe(b) != Invalid {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := New(4096, 4)
	c.Insert(0x40, Shared)
	if v, evicted := c.Insert(0x40, Modified); evicted {
		t.Fatalf("re-insert evicted %+v", v)
	}
	if c.Probe(0x40) != Modified {
		t.Fatal("state not updated")
	}
	if c.ResidentLines() != 1 {
		t.Fatalf("resident = %d, want 1", c.ResidentLines())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4096, 4)
	c.Insert(0x80, Modified)
	if st := c.Invalidate(0x80); st != Modified {
		t.Fatalf("Invalidate returned %v, want M", st)
	}
	if c.Probe(0x80) != Invalid {
		t.Fatal("line still present")
	}
	if st := c.Invalidate(0x80); st != Invalid {
		t.Fatal("double invalidate returned non-Invalid")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	c := New(8<<10, 4)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Insert(mem.Addr(a)&^63, Shared)
		}
		return c.ResidentLines() <= c.Sets()*c.Assoc()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetConflictsOnly(t *testing.T) {
	// Lines mapping to different sets never evict each other.
	c := New(4*mem.LineSize, 1) // 4 sets, direct-mapped
	c.Insert(0*64, Shared)
	c.Insert(1*64, Shared)
	c.Insert(2*64, Shared)
	c.Insert(3*64, Shared)
	if c.ResidentLines() != 4 {
		t.Fatalf("resident = %d, want 4", c.ResidentLines())
	}
	// Same set as line 0 (set index repeats every 4 lines).
	if _, evicted := c.Insert(4*64, Shared); !evicted {
		t.Fatal("conflicting insert did not evict")
	}
	if c.Probe(1*64) == Invalid || c.Probe(2*64) == Invalid {
		t.Fatal("insert disturbed other sets")
	}
}

func newTestHier(shared bool, cores int) *Hierarchy {
	return NewHierarchy(Config{
		Cores:    cores,
		L2Size:   1 << 20,
		L2Lat:    10,
		SharedL2: shared,
	})
}

func TestReadMissGoesToMemoryThenHits(t *testing.T) {
	h := newTestHier(true, 2)
	r := h.Read(0, 0x10000, 100)
	if r.Level != LvlMem {
		t.Fatalf("cold read level = %v, want mem", r.Level)
	}
	if r.DoneAt < 100+uint64(h.Config().MemLat) {
		t.Fatalf("mem read done at %d, want >= %d", r.DoneAt, 100+h.Config().MemLat)
	}
	if r2 := h.Read(0, 0x10000, 200); r2.Level != LvlL1 {
		t.Fatalf("second read level = %v, want L1", r2.Level)
	}
	// Another core reading the same line should hit in shared L2.
	if r3 := h.Read(1, 0x10000, 300); r3.Level != LvlL2 {
		t.Fatalf("peer read level = %v, want L2", r3.Level)
	}
}

func TestCMPDirtyTransferIsOnChip(t *testing.T) {
	h := newTestHier(true, 2)
	h.Write(0, 0x4000, 10)
	r := h.Read(1, 0x4000, 500)
	if r.Level != LvlL2 {
		t.Fatalf("dirty peer read = %v, want L2 (on-chip transfer)", r.Level)
	}
	if h.Stats.L1Transfers != 1 {
		t.Fatalf("L1Transfers = %d, want 1", h.Stats.L1Transfers)
	}
	lat := r.DoneAt - 500
	if lat >= uint64(h.Config().MemLat) {
		t.Fatalf("on-chip transfer took %d cycles, should be far below memory", lat)
	}
}

func TestSMPDirtyTransferIsCoherenceMiss(t *testing.T) {
	h := newTestHier(false, 2)
	h.Write(0, 0x4000, 10)
	r := h.Read(1, 0x4000, 1000)
	if r.Level != LvlCoh {
		t.Fatalf("remote dirty read = %v, want coherence", r.Level)
	}
	if got := r.DoneAt - 1000; got != uint64(h.Config().CohLat) {
		t.Fatalf("coherence latency = %d, want %d", got, h.Config().CohLat)
	}
	if h.Stats.CohTransfers != 1 {
		t.Fatalf("CohTransfers = %d, want 1", h.Stats.CohTransfers)
	}
}

func TestSMPvsCMPSameSharingPattern(t *testing.T) {
	// The central mechanism of Figure 7: a ping-ponging line costs
	// coherence transfers on the SMP but stays on-chip in the CMP.
	run := func(shared bool) (coh, onchip uint64) {
		h := newTestHier(shared, 2)
		now := uint64(0)
		for i := 0; i < 100; i++ {
			h.Write(i%2, 0x8000, now)
			now += 600
			r := h.Read((i+1)%2, 0x8000, now)
			now = r.DoneAt
		}
		return h.Stats.CohTransfers, h.Stats.L1Transfers
	}
	coh, _ := run(false)
	_, xfer := run(true)
	if coh == 0 {
		t.Error("SMP saw no coherence transfers")
	}
	if xfer == 0 {
		t.Error("CMP saw no L1-to-L1 transfers")
	}
}

func TestWriteUpgradeInvalidatesPeers(t *testing.T) {
	h := newTestHier(true, 4)
	for c := 0; c < 4; c++ {
		h.Read(c, 0x2000, uint64(c*10))
	}
	h.Write(0, 0x2000, 100)
	if h.Stats.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", h.Stats.Upgrades)
	}
	// Peers must miss in L1 now (data comes from L2/owner).
	r := h.Read(1, 0x2000, 200)
	if r.Level == LvlL1 {
		t.Fatal("peer L1 copy survived an upgrade")
	}
}

func TestPortQueueingUnderBursts(t *testing.T) {
	h := NewHierarchy(Config{
		Cores: 8, L2Size: 1 << 20, L2Lat: 10, SharedL2: true,
		L2Ports: 1, L2PortOcc: 4,
	})
	// Warm one line per core into L2 but not L1 (distinct lines per core,
	// inserted by a peer so they are L2 hits).
	for c := 0; c < 8; c++ {
		h.WarmRead(7-c, mem.Addr(0x100000+c*4096))
	}
	// All cores access the L2 in the same cycle: with one 4-cycle port,
	// the last access queues ~7*4 cycles.
	var worst uint64
	for c := 0; c < 8; c++ {
		r := h.Read(c, mem.Addr(0x100000+c*4096), 1000)
		if d := r.DoneAt - 1000; d > worst {
			worst = d
		}
	}
	if h.Stats.PortQueueCycles == 0 {
		t.Fatal("no port queueing recorded")
	}
	if worst <= uint64(h.Config().L2Lat) {
		t.Fatalf("worst latency %d shows no queueing", worst)
	}
}

func TestMorePortsLessQueueing(t *testing.T) {
	run := func(ports int) uint64 {
		h := NewHierarchy(Config{
			Cores: 8, L2Size: 1 << 20, L2Lat: 10, SharedL2: true,
			L2Ports: ports, L2PortOcc: 4,
		})
		for c := 0; c < 8; c++ {
			h.WarmRead(7-c, mem.Addr(0x100000+c*4096))
		}
		for c := 0; c < 8; c++ {
			h.Read(c, mem.Addr(0x100000+c*4096), 1000)
		}
		return h.Stats.PortQueueCycles
	}
	if q1, q4 := run(1), run(4); q4 >= q1 {
		t.Fatalf("queueing with 4 ports (%d) not below 1 port (%d)", q4, q1)
	}
}

func TestStreamBufferServicesSequentialFetch(t *testing.T) {
	h := NewHierarchy(Config{
		Cores: 1, L2Size: 1 << 20, L2Lat: 10, SharedL2: true, StreamBuf: true,
	})
	base := mem.Addr(uint64(mem.CodeBase))
	r0 := h.Fetch(0, base, 0)
	if r0.Level != LvlMem {
		t.Fatalf("first fetch = %v, want mem", r0.Level)
	}
	// Sequential successor lines should be stream-buffer hits, not L2/mem.
	for i := 1; i <= 3; i++ {
		r := h.Fetch(0, base+mem.Addr(i*mem.LineSize), uint64(i*100))
		if r.Level != LvlL1 {
			t.Fatalf("fetch line %d = %v, want stream-buffer (L1-class)", i, r.Level)
		}
	}
	if h.Stats.StreamBufHits != 3 {
		t.Fatalf("StreamBufHits = %d, want 3", h.Stats.StreamBufHits)
	}
}

func TestStreamBufferOffExposesFetchMisses(t *testing.T) {
	h := NewHierarchy(Config{
		Cores: 1, L2Size: 1 << 20, L2Lat: 10, SharedL2: true, StreamBuf: false,
	})
	base := mem.Addr(uint64(mem.CodeBase))
	for i := 0; i < 4; i++ {
		h.Fetch(0, base+mem.Addr(i*mem.LineSize), uint64(i*100))
	}
	if h.Stats.StreamBufHits != 0 {
		t.Fatal("stream buffer hits recorded while disabled")
	}
	if h.Stats.L1IMisses != 4 {
		t.Fatalf("L1IMisses = %d, want 4", h.Stats.L1IMisses)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	// A tiny L2 forces evictions that must back-invalidate L1 copies.
	h := NewHierarchy(Config{
		Cores: 1, L1DSize: 32 << 10, L2Size: 8 << 10, L2Assoc: 1, L2Lat: 5,
		SharedL2: true,
	})
	// Fill more distinct lines than the L2 holds, all same set region.
	n := 8<<10/mem.LineSize + 16
	for i := 0; i < n; i++ {
		h.Read(0, mem.Addr(i*mem.LineSize), uint64(i*10))
	}
	if h.Stats.BackInvalidations == 0 {
		t.Fatal("no back-invalidations despite L2 churn")
	}
	// Invariant: every valid L1D line must still be in L2 (inclusion).
	for i := 0; i < n; i++ {
		line := mem.Addr(i * mem.LineSize)
		if h.l1d[0].Probe(line) != Invalid && h.l2[0].Probe(line) == Invalid {
			t.Fatalf("line %#x in L1D but not L2 (inclusion violated)", uint64(line))
		}
	}
}

func TestWarmMatchesTimedContents(t *testing.T) {
	// Functional warming and timed access must leave identical L1/L2
	// contents for a read-only stream.
	addrs := []mem.Addr{0x0, 0x40, 0x1000, 0x0, 0x2040, 0x40, 0x9000}
	ht := newTestHier(true, 1)
	hw := newTestHier(true, 1)
	now := uint64(0)
	for _, a := range addrs {
		r := ht.Read(0, a, now)
		now = r.DoneAt
		hw.WarmRead(0, a)
	}
	for _, a := range addrs {
		if (ht.l1d[0].Probe(a.Line()) == Invalid) != (hw.l1d[0].Probe(a.Line()) == Invalid) {
			t.Errorf("L1D contents diverge at %#x", uint64(a))
		}
		if (ht.l2[0].Probe(a.Line()) == Invalid) != (hw.l2[0].Probe(a.Line()) == Invalid) {
			t.Errorf("L2 contents diverge at %#x", uint64(a))
		}
	}
}

func TestL2MissRate(t *testing.T) {
	var s Stats
	if s.L2MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s.L2Hits, s.L2Misses = 75, 25
	if r := s.L2MissRate(); r != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", r)
	}
}

func TestLevelStrings(t *testing.T) {
	for l, want := range map[Level]string{LvlL1: "L1", LvlL2: "L2", LvlMem: "mem", LvlCoh: "coherence"} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("State %d = %q, want %q", s, s.String(), want)
		}
	}
}
