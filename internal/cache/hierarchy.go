package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Level identifies which level of the hierarchy serviced an access; the
// simulator attributes stall cycles to it.
type Level uint8

// Service levels.
const (
	// LvlL1 is an L1 hit (or stream-buffer hit): no meaningful stall.
	LvlL1 Level = iota
	// LvlL2 is an on-chip hit beyond L1: a shared-L2 hit or a fast
	// L1-to-L1 transfer. Stalls here are the paper's "L2 hit stalls".
	LvlL2
	// LvlMem is an off-chip memory access.
	LvlMem
	// LvlCoh is a long-latency coherence transfer from a remote node's
	// private cache (SMP configurations only).
	LvlCoh
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlMem:
		return "mem"
	case LvlCoh:
		return "coherence"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Config describes a memory hierarchy. The same hierarchy serves both
// camps, per the paper's methodology.
type Config struct {
	Cores int

	L1ISize, L1DSize int // per-core L1 capacities
	L1Assoc          int
	L1Lat            int // L1 hit latency, cycles

	L2Size  int // total L2 capacity (shared) or per-node (private)
	L2Assoc int
	L2Lat   int // L2 hit latency, cycles

	SharedL2 bool // true: one shared L2 (CMP); false: private L2 per core (SMP)

	MemLat    int // off-chip access latency
	CohLat    int // remote-dirty coherence transfer latency (SMP)
	L1XferLat int // on-chip L1-to-L1 dirty transfer latency (CMP)

	L2Ports   int // concurrent L2 accesses; misses queue beyond this
	L2PortOcc int // cycles a port stays busy per access

	StreamBuf      bool // instruction stream buffers at L1I
	StreamBufDepth int  // prefetch depth in lines
}

// WithDefaults returns the configuration with zero fields replaced by the
// defaults NewHierarchy would apply.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills in the L1 and latency parameters shared by all
// experiments in the paper's setup.
func (c Config) withDefaults() Config {
	if c.L1ISize == 0 {
		c.L1ISize = 64 << 10
	}
	if c.L1DSize == 0 {
		c.L1DSize = 64 << 10
	}
	if c.L1Assoc == 0 {
		c.L1Assoc = 2
	}
	if c.L1Lat == 0 {
		c.L1Lat = 2
	}
	if c.L2Assoc == 0 {
		c.L2Assoc = 8
	}
	if c.MemLat == 0 {
		c.MemLat = 400
	}
	if c.CohLat == 0 {
		c.CohLat = 550
	}
	if c.L1XferLat == 0 {
		c.L1XferLat = c.L2Lat + 2
	}
	if c.L2Ports == 0 {
		c.L2Ports = 2
	}
	if c.L2PortOcc == 0 {
		c.L2PortOcc = 2
	}
	if c.StreamBufDepth == 0 {
		c.StreamBufDepth = 4
	}
	return c
}

// Stats aggregates hierarchy event counts for one simulation.
type Stats struct {
	L1DHits, L1DMisses uint64
	L1IHits, L1IMisses uint64
	StreamBufHits      uint64
	L2Hits, L2Misses   uint64
	L1Transfers        uint64 // CMP dirty L1-to-L1
	CohTransfers       uint64 // SMP remote-dirty
	MemAccesses        uint64
	Upgrades           uint64 // S->M invalidation rounds
	PortQueueCycles    uint64 // total cycles spent queued on L2 ports
	BackInvalidations  uint64 // inclusive-L2 evictions invalidating L1 lines
	Prefetches         uint64 // software prefetches that started a fill
	PrefetchHits       uint64 // demand loads fully covered by a prefetch
	PrefetchLate       uint64 // demand loads that caught their prefetch in flight
}

// L2MissRate returns misses / (hits+misses), or 0 when idle.
func (s *Stats) L2MissRate() float64 {
	t := s.L2Hits + s.L2Misses
	if t == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(t)
}

// Result describes how one access was serviced.
type Result struct {
	Level  Level
	DoneAt uint64 // cycle at which the data is available
}

// pfFill is one software-prefetched line still in flight: the demand load
// that catches it pays only the remaining latency, attributed to the level
// the fill is coming from.
type pfFill struct {
	doneAt uint64
	level  Level
}

// Hierarchy is the full simulated memory system.
type Hierarchy struct {
	cfg   Config
	l1i   []*Cache
	l1d   []*Cache
	l2    []*Cache // one entry when shared; per-core when private
	sb    []*streamBuffer
	ports []uint64 // next-free cycle per L2 port (shared-L2 contention)
	pf    []map[mem.Addr]pfFill
	Stats Stats
}

// NewHierarchy builds a hierarchy from cfg (zero fields take defaults).
func NewHierarchy(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	if cfg.Cores <= 0 {
		panic("cache: hierarchy needs at least one core")
	}
	if cfg.L2Size <= 0 || cfg.L2Lat <= 0 {
		panic("cache: hierarchy needs L2Size and L2Lat")
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1i = append(h.l1i, New(cfg.L1ISize, cfg.L1Assoc))
		h.l1d = append(h.l1d, New(cfg.L1DSize, cfg.L1Assoc))
		h.sb = append(h.sb, newStreamBuffer(cfg.StreamBufDepth))
		h.pf = append(h.pf, make(map[mem.Addr]pfFill))
	}
	if cfg.SharedL2 {
		h.l2 = []*Cache{New(cfg.L2Size, cfg.L2Assoc)}
	} else {
		for i := 0; i < cfg.Cores; i++ {
			h.l2 = append(h.l2, New(cfg.L2Size, cfg.L2Assoc))
		}
	}
	h.ports = make([]uint64, cfg.L2Ports)
	return h
}

// Config returns the (defaulted) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

func (h *Hierarchy) l2of(core int) *Cache {
	if h.cfg.SharedL2 {
		return h.l2[0]
	}
	return h.l2[core]
}

// acquirePort models finite L2 bandwidth: the access starts when a port
// frees up; the returned value is the queueing delay in cycles.
func (h *Hierarchy) acquirePort(now uint64) uint64 {
	best := 0
	for i := 1; i < len(h.ports); i++ {
		if h.ports[i] < h.ports[best] {
			best = i
		}
	}
	start := now
	if h.ports[best] > start {
		start = h.ports[best]
	}
	h.ports[best] = start + uint64(h.cfg.L2PortOcc)
	delay := start - now
	h.Stats.PortQueueCycles += delay
	return delay
}

// insertL2 places a line in core's L2, maintaining inclusion: a victim
// evicted from an L2 back-invalidates any L1 copies above it.
func (h *Hierarchy) insertL2(core int, line mem.Addr, st State) {
	v, evicted := h.l2of(core).Insert(line, st)
	if !evicted {
		return
	}
	if h.cfg.SharedL2 {
		for i := range h.l1d {
			if h.l1d[i].Invalidate(v.Line) != Invalid {
				h.Stats.BackInvalidations++
			}
			if h.l1i[i].Invalidate(v.Line) != Invalid {
				h.Stats.BackInvalidations++
			}
		}
	} else {
		if h.l1d[core].Invalidate(v.Line) != Invalid {
			h.Stats.BackInvalidations++
		}
		if h.l1i[core].Invalidate(v.Line) != Invalid {
			h.Stats.BackInvalidations++
		}
	}
}

// insertL1D fills a line into core's L1D; a Modified victim is written
// back to the L2 (state only; timing of write-backs is hidden by write
// buffers, as in most timing models of this class).
func (h *Hierarchy) insertL1D(core int, line mem.Addr, st State) {
	v, evicted := h.l1d[core].Insert(line, st)
	if evicted && v.State == Modified {
		h.l2of(core).SetState(v.Line, Modified)
	}
}

// Read performs a data load by core at address a, returning the servicing
// level and completion time.
func (h *Hierarchy) Read(core int, a mem.Addr, now uint64) Result {
	line := a.Line()
	if m := h.pf[core]; len(m) != 0 {
		if f, ok := m[line]; ok {
			delete(m, line)
			if f.doneAt > now {
				// The demand load caught its prefetch in flight: it pays
				// only the remaining latency, still attributed to the
				// level the fill is coming from.
				h.Stats.L1DHits++
				h.Stats.PrefetchLate++
				return Result{f.level, f.doneAt}
			}
			h.Stats.PrefetchHits++
			// Completed fills fall through to the (now resident) L1 probe.
		}
	}
	if h.l1d[core].Touch(line) != Invalid {
		h.Stats.L1DHits++
		return Result{LvlL1, now + uint64(h.cfg.L1Lat)}
	}
	h.Stats.L1DMisses++
	if h.cfg.SharedL2 {
		return h.readCMP(core, line, now)
	}
	return h.readSMP(core, line, now)
}

func (h *Hierarchy) readCMP(core int, line mem.Addr, now uint64) Result {
	// Dirty in a peer L1? Fast on-chip transfer; both end Shared and the
	// shared L2 receives the up-to-date state. Clean Exclusive peers
	// downgrade to Shared.
	for i := range h.l1d {
		if i == core {
			continue
		}
		switch h.l1d[i].Probe(line) {
		case Modified:
			h.l1d[i].SetState(line, Shared)
			h.l2[0].SetState(line, Modified)
			h.insertL1D(core, line, Shared)
			h.Stats.L1Transfers++
			h.Stats.L2Hits++ // accounted with L2 hits, as in the paper
			return Result{LvlL2, now + uint64(h.cfg.L1XferLat)}
		case Exclusive:
			h.l1d[i].SetState(line, Shared)
		}
	}
	delay := h.acquirePort(now)
	if h.l2[0].Touch(line) != Invalid {
		h.Stats.L2Hits++
		h.insertL1D(core, line, Shared)
		return Result{LvlL2, now + delay + uint64(h.cfg.L2Lat)}
	}
	h.Stats.L2Misses++
	h.Stats.MemAccesses++
	h.insertL2(core, line, Exclusive)
	h.insertL1D(core, line, Exclusive)
	return Result{LvlMem, now + delay + uint64(h.cfg.MemLat)}
}

func (h *Hierarchy) readSMP(core int, line mem.Addr, now uint64) Result {
	if h.l2[core].Touch(line) != Invalid {
		h.insertL1D(core, line, Shared)
		h.Stats.L2Hits++
		return Result{LvlL2, now + uint64(h.cfg.L2Lat)}
	}
	h.Stats.L2Misses++
	// Snoop remote nodes: a dirty copy forces a long coherence transfer;
	// clean Exclusive copies downgrade to Shared.
	for i := range h.l2 {
		if i == core {
			continue
		}
		switch h.l2[i].Probe(line) {
		case Modified:
			h.l2[i].SetState(line, Shared)
			h.l1d[i].SetState(line, Shared)
			h.insertL2(core, line, Shared)
			h.insertL1D(core, line, Shared)
			h.Stats.CohTransfers++
			return Result{LvlCoh, now + uint64(h.cfg.CohLat)}
		case Exclusive:
			h.l2[i].SetState(line, Shared)
			h.l1d[i].SetState(line, Shared)
		}
	}
	h.Stats.MemAccesses++
	h.insertL2(core, line, Exclusive)
	h.insertL1D(core, line, Exclusive)
	return Result{LvlMem, now + uint64(h.cfg.MemLat)}
}

// Prefetch starts a non-binding software prefetch of the line holding a.
// An L1-resident line is a no-op (which makes prefetching already-hot data
// cycle-free); otherwise the fill installs immediately and its completion
// time is tracked so a demand Read that arrives early pays the remaining
// latency. Prefetches consume L2 port bandwidth like any other access but
// never count as demand misses.
func (h *Hierarchy) Prefetch(core int, a mem.Addr, now uint64) {
	line := a.Line()
	if h.l1d[core].Touch(line) != Invalid {
		return
	}
	if _, ok := h.pf[core][line]; ok {
		return // already in flight
	}
	h.Stats.Prefetches++
	var f pfFill
	if h.cfg.SharedL2 {
		f = h.prefetchCMP(core, line, now)
	} else {
		f = h.prefetchSMP(core, line, now)
	}
	h.pf[core][line] = f
}

func (h *Hierarchy) prefetchCMP(core int, line mem.Addr, now uint64) pfFill {
	for i := range h.l1d {
		if i == core {
			continue
		}
		switch h.l1d[i].Probe(line) {
		case Modified:
			h.l1d[i].SetState(line, Shared)
			h.l2[0].SetState(line, Modified)
			h.insertL1D(core, line, Shared)
			return pfFill{now + uint64(h.cfg.L1XferLat), LvlL2}
		case Exclusive:
			h.l1d[i].SetState(line, Shared)
		}
	}
	delay := h.acquirePort(now)
	if h.l2[0].Touch(line) != Invalid {
		h.insertL1D(core, line, Shared)
		return pfFill{now + delay + uint64(h.cfg.L2Lat), LvlL2}
	}
	h.insertL2(core, line, Exclusive)
	h.insertL1D(core, line, Exclusive)
	return pfFill{now + delay + uint64(h.cfg.MemLat), LvlMem}
}

func (h *Hierarchy) prefetchSMP(core int, line mem.Addr, now uint64) pfFill {
	if h.l2[core].Touch(line) != Invalid {
		h.insertL1D(core, line, Shared)
		return pfFill{now + uint64(h.cfg.L2Lat), LvlL2}
	}
	for i := range h.l2 {
		if i == core {
			continue
		}
		switch h.l2[i].Probe(line) {
		case Modified:
			h.l2[i].SetState(line, Shared)
			h.l1d[i].SetState(line, Shared)
			h.insertL2(core, line, Shared)
			h.insertL1D(core, line, Shared)
			return pfFill{now + uint64(h.cfg.CohLat), LvlCoh}
		case Exclusive:
			h.l2[i].SetState(line, Shared)
			h.l1d[i].SetState(line, Shared)
		}
	}
	h.insertL2(core, line, Exclusive)
	h.insertL1D(core, line, Exclusive)
	return pfFill{now + uint64(h.cfg.MemLat), LvlMem}
}

// Write performs a data store by core at address a. Stores retire through
// write buffers, so the caller typically does not stall on the returned
// latency, but state transitions and port pressure are modelled.
func (h *Hierarchy) Write(core int, a mem.Addr, now uint64) Result {
	line := a.Line()
	switch h.l1d[core].Touch(line) {
	case Modified:
		h.Stats.L1DHits++
		return Result{LvlL1, now + uint64(h.cfg.L1Lat)}
	case Exclusive:
		h.Stats.L1DHits++
		h.l1d[core].SetState(line, Modified)
		h.l2of(core).SetState(line, Modified)
		return Result{LvlL1, now + uint64(h.cfg.L1Lat)}
	case Shared:
		// Upgrade: invalidate peers.
		h.Stats.L1DHits++
		h.Stats.Upgrades++
		lat := h.invalidatePeers(core, line)
		h.l1d[core].SetState(line, Modified)
		h.l2of(core).SetState(line, Modified)
		return Result{LvlL1, now + lat}
	}
	h.Stats.L1DMisses++
	// Read-for-ownership, then mark Modified.
	var r Result
	if h.cfg.SharedL2 {
		r = h.readCMP(core, line, now)
	} else {
		r = h.readSMP(core, line, now)
	}
	h.invalidatePeers(core, line)
	h.l1d[core].SetState(line, Modified)
	h.l2of(core).SetState(line, Modified)
	return r
}

// invalidatePeers removes all peer copies of line and returns the latency
// of the invalidation round.
func (h *Hierarchy) invalidatePeers(core int, line mem.Addr) uint64 {
	if h.cfg.SharedL2 {
		for i := range h.l1d {
			if i != core {
				h.l1d[i].Invalidate(line)
			}
		}
		return uint64(h.cfg.L1Lat)
	}
	lat := uint64(h.cfg.L1Lat)
	for i := range h.l2 {
		if i == core {
			continue
		}
		if h.l2[i].Invalidate(line) != Invalid {
			h.l1d[i].Invalidate(line)
			// Off-chip invalidation round trip.
			lat = uint64(h.cfg.CohLat) / 2
		}
	}
	return lat
}

// Fetch performs an instruction fetch by core at address a.
func (h *Hierarchy) Fetch(core int, a mem.Addr, now uint64) Result {
	line := a.Line()
	if h.l1i[core].Touch(line) != Invalid {
		h.Stats.L1IHits++
		return Result{LvlL1, now + 1}
	}
	h.Stats.L1IMisses++
	if h.cfg.StreamBuf && h.sb[core].hit(line) {
		// The buffer already holds (or has in flight) the line; promote it
		// and keep prefetching down the stream.
		h.Stats.StreamBufHits++
		h.l1i[core].Insert(line, Shared)
		h.prefetchStream(core, line)
		return Result{LvlL1, now + uint64(h.cfg.L1Lat)}
	}
	// Fill from L2 (or memory); instruction lines are never dirty.
	var r Result
	delay := uint64(0)
	if h.cfg.SharedL2 {
		delay = h.acquirePort(now)
	}
	if h.l2of(core).Touch(line) != Invalid {
		h.Stats.L2Hits++
		r = Result{LvlL2, now + delay + uint64(h.cfg.L2Lat)}
	} else {
		h.Stats.L2Misses++
		h.Stats.MemAccesses++
		h.insertL2(core, line, Shared)
		r = Result{LvlMem, now + delay + uint64(h.cfg.MemLat)}
	}
	h.l1i[core].Insert(line, Shared)
	if h.cfg.StreamBuf {
		h.prefetchStream(core, line)
	}
	return r
}

// prefetchStream queues the successor lines of line into the stream buffer
// and warms them into the L2 (prefetches are not charged to the core).
func (h *Hierarchy) prefetchStream(core int, line mem.Addr) {
	for i := 1; i <= h.cfg.StreamBufDepth; i++ {
		next := line + mem.Addr(i*mem.LineSize)
		h.sb[core].push(next)
		if h.l2of(core).Probe(next) == Invalid {
			h.insertL2(core, next, Shared)
		}
	}
}

// Warm variants update cache contents without timing or port pressure;
// they implement SimFlex-style functional warming before measurement.

// WarmRead warms a load.
func (h *Hierarchy) WarmRead(core int, a mem.Addr) {
	line := a.Line()
	if h.l1d[core].Touch(line) != Invalid {
		return
	}
	if h.cfg.SharedL2 {
		for i := range h.l1d {
			if i != core && h.l1d[i].Probe(line) == Modified {
				h.l1d[i].SetState(line, Shared)
				h.l2[0].SetState(line, Modified)
				h.insertL1D(core, line, Shared)
				return
			}
		}
	}
	if h.l2of(core).Touch(line) == Invalid {
		h.insertL2(core, line, Exclusive)
	}
	h.insertL1D(core, line, Shared)
}

// WarmWrite warms a store.
func (h *Hierarchy) WarmWrite(core int, a mem.Addr) {
	line := a.Line()
	if h.l1d[core].Touch(line) == Invalid {
		if h.l2of(core).Touch(line) == Invalid {
			h.insertL2(core, line, Modified)
		}
		h.insertL1D(core, line, Modified)
	}
	h.invalidatePeersQuiet(core, line)
	h.l1d[core].SetState(line, Modified)
	h.l2of(core).SetState(line, Modified)
}

func (h *Hierarchy) invalidatePeersQuiet(core int, line mem.Addr) {
	if h.cfg.SharedL2 {
		for i := range h.l1d {
			if i != core {
				h.l1d[i].Invalidate(line)
			}
		}
		return
	}
	for i := range h.l2 {
		if i != core && h.l2[i].Invalidate(line) != Invalid {
			h.l1d[i].Invalidate(line)
		}
	}
}

// WarmFetch warms an instruction fetch.
func (h *Hierarchy) WarmFetch(core int, a mem.Addr) {
	line := a.Line()
	if h.l1i[core].Touch(line) != Invalid {
		return
	}
	if h.l2of(core).Touch(line) == Invalid {
		h.insertL2(core, line, Shared)
	}
	h.l1i[core].Insert(line, Shared)
}

// streamBuffer is a small FIFO of prefetched instruction-line addresses
// (Jouppi-style), consulted on L1I misses.
type streamBuffer struct {
	lines []mem.Addr
	next  int
}

func newStreamBuffer(depth int) *streamBuffer {
	if depth < 1 {
		depth = 1
	}
	return &streamBuffer{lines: make([]mem.Addr, 0, depth*2)}
}

func (b *streamBuffer) hit(line mem.Addr) bool {
	for _, l := range b.lines {
		if l == line {
			return true
		}
	}
	return false
}

func (b *streamBuffer) push(line mem.Addr) {
	if b.hit(line) {
		return
	}
	if len(b.lines) == cap(b.lines) {
		copy(b.lines, b.lines[1:])
		b.lines = b.lines[:len(b.lines)-1]
	}
	b.lines = append(b.lines, line)
}
