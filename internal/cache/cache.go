// Package cache implements the simulated memory hierarchy: set-associative
// L1 instruction/data caches per core, an L2 that is either shared (CMP) or
// private per node (SMP), MESI-style coherence between private caches,
// instruction stream buffers, and finite L2 ports that queue during miss
// bursts. The timing simulator in internal/sim drives it one reference at a
// time and attributes stall cycles to the level that serviced each miss.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// State is a MESI coherence state.
type State uint8

// Coherence states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

type way struct {
	tag   mem.Addr // line address; valid only when state != Invalid
	state State
	used  uint64 // LRU timestamp
}

// Cache is one set-associative cache array with LRU replacement over
// 64-byte lines. It tracks tags and coherence state only; data contents
// live in the engine's simulated address space.
type Cache struct {
	assoc    int
	setShift uint
	setMask  mem.Addr
	ways     []way // len = sets*assoc, set-major
	tick     uint64
}

// New builds a cache of sizeBytes capacity and (at least) the given
// associativity. The set count must be a power of two for indexing; when
// capacity/assoc is not, the odd factor is absorbed into a higher
// associativity, as real odd-sized caches do (e.g. a 26 MB cache indexed
// with 32768 sets is 13-way).
func New(sizeBytes, assoc int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d assoc=%d", sizeBytes, assoc))
	}
	lines := sizeBytes / mem.LineSize
	if lines < assoc {
		panic(fmt.Sprintf("cache: size %d smaller than one %d-way set", sizeBytes, assoc))
	}
	sets := 1
	for sets*2 <= lines/assoc {
		sets *= 2
	}
	assoc = (lines + sets - 1) / sets
	return &Cache{
		assoc:    assoc,
		setShift: 6,
		setMask:  mem.Addr(sets - 1),
		ways:     make([]way, sets*assoc),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() int { return c.Sets() * c.assoc * mem.LineSize }

func (c *Cache) set(line mem.Addr) []way {
	idx := int(line>>c.setShift&c.setMask) * c.assoc
	return c.ways[idx : idx+c.assoc]
}

// Probe returns the state of line without updating LRU.
func (c *Cache) Probe(line mem.Addr) State {
	for i := range c.set(line) {
		w := &c.set(line)[i]
		if w.state != Invalid && w.tag == line {
			return w.state
		}
	}
	return Invalid
}

// Touch looks up line, updating LRU on hit, and returns its state
// (Invalid on miss).
func (c *Cache) Touch(line mem.Addr) State {
	c.tick++
	s := c.set(line)
	for i := range s {
		if s[i].state != Invalid && s[i].tag == line {
			s[i].used = c.tick
			return s[i].state
		}
	}
	return Invalid
}

// SetState changes the state of a resident line; it reports whether the
// line was present.
func (c *Cache) SetState(line mem.Addr, st State) bool {
	s := c.set(line)
	for i := range s {
		if s[i].state != Invalid && s[i].tag == line {
			s[i].state = st
			return true
		}
	}
	return false
}

// Invalidate removes line, returning its prior state.
func (c *Cache) Invalidate(line mem.Addr) State {
	s := c.set(line)
	for i := range s {
		if s[i].state != Invalid && s[i].tag == line {
			st := s[i].state
			s[i].state = Invalid
			return st
		}
	}
	return Invalid
}

// Victim is a line evicted by Insert.
type Victim struct {
	Line  mem.Addr
	State State
}

// Insert places line with state st, evicting the LRU way if the set is
// full. It returns the victim, if any. Inserting a line that is already
// resident just updates its state and LRU position.
func (c *Cache) Insert(line mem.Addr, st State) (Victim, bool) {
	c.tick++
	s := c.set(line)
	freeIdx, lruIdx := -1, 0
	for i := range s {
		if s[i].state == Invalid {
			if freeIdx < 0 {
				freeIdx = i
			}
			continue
		}
		if s[i].tag == line {
			s[i].state = st
			s[i].used = c.tick
			return Victim{}, false
		}
		if s[i].used < s[lruIdx].used || s[lruIdx].state == Invalid {
			lruIdx = i
		}
	}
	if freeIdx >= 0 {
		s[freeIdx] = way{tag: line, state: st, used: c.tick}
		return Victim{}, false
	}
	v := Victim{Line: s[lruIdx].tag, State: s[lruIdx].state}
	s[lruIdx] = way{tag: line, state: st, used: c.tick}
	return v, true
}

// ResidentLines returns the number of valid lines (used by tests and the
// miss-rate reporting of the core-count experiment).
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].state != Invalid {
			n++
		}
	}
	return n
}
