package mem

import (
	"testing"
	"testing/quick"
)

func TestArenaAllocAlignment(t *testing.T) {
	a := NewArena(HeapBase, 1<<16)
	for _, align := range []int{1, 2, 4, 8, 16, 64, 4096} {
		addr := a.Alloc(10, align)
		if uint64(addr)%uint64(align) != 0 {
			t.Errorf("Alloc align %d returned %#x, not aligned", align, uint64(addr))
		}
	}
}

func TestArenaAllocDisjoint(t *testing.T) {
	a := NewArena(HeapBase, 1<<16)
	p := a.Alloc(100, 8)
	q := a.Alloc(100, 8)
	if q < p+100 {
		t.Fatalf("allocations overlap: p=%#x q=%#x", uint64(p), uint64(q))
	}
	copy(a.Bytes(p, 100), make([]byte, 100))
	b := a.Bytes(p, 100)
	b[0] = 0xAA
	if a.Bytes(q, 100)[0] == 0xAA {
		t.Fatal("write to p visible at q")
	}
}

func TestArenaBytesRoundTrip(t *testing.T) {
	a := NewArena(HeapBase, 4096)
	addr := a.Alloc(16, 8)
	copy(a.Bytes(addr, 16), []byte("hello simulated!"))
	got := string(a.Bytes(addr, 16))
	if got != "hello simulated!" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	a := NewArena(HeapBase, 64)
	a.Alloc(65, 1)
}

func TestArenaOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-arena access")
		}
	}()
	a := NewArena(HeapBase, 64)
	a.Bytes(HeapBase+60, 8)
}

func TestArenaReset(t *testing.T) {
	a := NewArena(WorkBase, 1024)
	first := a.Alloc(512, 8)
	a.Reset()
	second := a.Alloc(512, 8)
	if first != second {
		t.Fatalf("after Reset, Alloc = %#x, want %#x", uint64(second), uint64(first))
	}
}

func TestArenaContains(t *testing.T) {
	a := NewArena(HeapBase, 128)
	if !a.Contains(HeapBase) || !a.Contains(HeapBase+127) {
		t.Error("Contains misses interior addresses")
	}
	if a.Contains(HeapBase+128) || a.Contains(HeapBase-1) {
		t.Error("Contains accepts exterior addresses")
	}
}

func TestLine(t *testing.T) {
	for _, tc := range []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {1000, 960},
	} {
		if got := tc.in.Line(); got != tc.want {
			t.Errorf("Line(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLineProperty(t *testing.T) {
	f := func(a uint64) bool {
		l := Addr(a).Line()
		return uint64(l)%LineSize == 0 && l <= Addr(a) && Addr(a)-l < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeMapRegister(t *testing.T) {
	m := NewCodeMap()
	s1 := m.Register("scan", 2000)
	s2 := m.Register("join", 8192)
	if s1.Size%LineSize != 0 {
		t.Errorf("segment size %d not line-rounded", s1.Size)
	}
	if s2.Base < s1.Base+Addr(s1.Size) {
		t.Errorf("segments overlap: scan=%+v join=%+v", s1, s2)
	}
	if again := m.Register("scan", 999); again != s1 {
		t.Errorf("re-register returned %+v, want %+v", again, s1)
	}
	if got, ok := m.Lookup("join"); !ok || got != s2 {
		t.Errorf("Lookup(join) = %+v, %v", got, ok)
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}
}

func TestCodeSegInstructions(t *testing.T) {
	s := CodeSeg{Base: CodeBase, Size: 256}
	if s.Instructions() != 64 {
		t.Fatalf("Instructions = %d, want 64", s.Instructions())
	}
}
