// Package mem provides the simulated flat physical address space that the
// database engine allocates from and the CMP simulator observes.
//
// Every data structure the engine touches (pages, B+tree nodes, hash tables,
// sort runs) lives at a stable simulated address inside an arena. Memory
// reference traces therefore carry genuine spatial and temporal locality,
// independent of the Go runtime's allocator and garbage collector, which
// would otherwise move objects and destroy cache-affinity effects.
package mem

import (
	"fmt"
	"sync"
)

// Addr is a simulated physical byte address.
type Addr uint64

// Line returns the cache-line address (64-byte lines) containing a.
func (a Addr) Line() Addr { return a &^ 63 }

// LineSize is the cache line size used throughout the simulator, in bytes.
const LineSize = 64

// Well-known region bases of the simulated address space. Regions are
// spaced far apart so that arenas cannot collide even at maximum size.
const (
	// CodeBase is where synthetic code segments are laid out.
	CodeBase Addr = 0x0000_0100_0000
	// HeapBase is where the buffer pool and shared engine data live.
	HeapBase Addr = 0x0010_0000_0000
	// WorkBase is where per-thread workspaces (hash tables, sort buffers)
	// are laid out; each thread gets a disjoint slice of this region.
	WorkBase Addr = 0x0080_0000_0000
	// StackBase is where per-thread stack segments are laid out.
	StackBase Addr = 0x00F0_0000_0000
)

// Arena is a bump allocator over a contiguous range of the simulated
// address space, backed by real host memory so the engine can store and
// retrieve actual bytes at simulated addresses.
type Arena struct {
	base Addr
	buf  []byte
	off  uint64
}

// NewArena creates an arena of size bytes based at base.
func NewArena(base Addr, size int) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("mem: invalid arena size %d", size))
	}
	return &Arena{base: base, buf: make([]byte, size)}
}

// Base returns the arena's first simulated address.
func (a *Arena) Base() Addr { return a.base }

// Size returns the arena capacity in bytes.
func (a *Arena) Size() int { return len(a.buf) }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() int { return int(a.off) }

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// simulated address of the reservation. It panics if the arena is
// exhausted; callers size arenas for their workload up front.
func (a *Arena) Alloc(n, align int) Addr {
	if n < 0 || align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad Alloc(%d, %d)", n, align))
	}
	off := (a.off + uint64(align) - 1) &^ (uint64(align) - 1)
	if off+uint64(n) > uint64(len(a.buf)) {
		panic(fmt.Sprintf("mem: arena exhausted: need %d at offset %d, cap %d", n, off, len(a.buf)))
	}
	a.off = off + uint64(n)
	return a.base + Addr(off)
}

// Reset discards all allocations, retaining the backing store. Workspaces
// are reset between queries.
func (a *Arena) Reset() { a.off = 0 }

// Contains reports whether addr falls inside the arena.
func (a *Arena) Contains(addr Addr) bool {
	return addr >= a.base && addr < a.base+Addr(len(a.buf))
}

// Raw returns the arena's whole backing store and its base address. The
// backing is allocated once and never moves, so native hot loops (hash
// chain walks) can resolve simulated addresses with one subtraction
// instead of a bounds-checked Bytes call per access.
func (a *Arena) Raw() ([]byte, Addr) { return a.buf, a.base }

// Bytes returns the host-memory view of the n simulated bytes at addr.
// The returned slice aliases the arena; writes through it are stores to
// simulated memory.
func (a *Arena) Bytes(addr Addr, n int) []byte {
	off := uint64(addr - a.base)
	if addr < a.base || off+uint64(n) > uint64(len(a.buf)) {
		panic(fmt.Sprintf("mem: out-of-arena access addr=%#x n=%d base=%#x size=%d", addr, n, a.base, len(a.buf)))
	}
	return a.buf[off : off+uint64(n) : off+uint64(n)]
}

// CodeSeg is a synthetic code segment: a contiguous range of instruction
// addresses standing in for the compiled body of one engine component.
// Trace emitters walk the segment cyclically as the component "executes".
type CodeSeg struct {
	Base Addr
	Size int // bytes; 4 bytes per instruction
}

// Instructions returns the number of instructions the segment holds.
func (s CodeSeg) Instructions() int { return s.Size / 4 }

// CodeMap lays out code segments in the code region of the address space.
// Segment sizes model each component's instruction footprint: OLTP
// transaction paths register large footprints, tight scan loops small
// ones. It is safe for concurrent use: engine worker threads register
// operator segments while running.
type CodeMap struct {
	mu   sync.RWMutex
	next Addr
	segs map[string]CodeSeg
}

// NewCodeMap creates an empty code layout starting at CodeBase.
func NewCodeMap() *CodeMap {
	return &CodeMap{next: CodeBase, segs: make(map[string]CodeSeg)}
}

// Register lays out a code segment of size bytes under name, or returns
// the existing segment if name was registered before.
func (m *CodeMap) Register(name string, size int) CodeSeg {
	m.mu.RLock()
	s, ok := m.segs[name]
	m.mu.RUnlock()
	if ok {
		return s
	}
	if size <= 0 {
		panic(fmt.Sprintf("mem: bad code segment size %d for %q", size, name))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.segs[name]; ok {
		return s
	}
	// Round to a whole number of cache lines so segments do not share lines.
	size = (size + LineSize - 1) &^ (LineSize - 1)
	s = CodeSeg{Base: m.next, Size: size}
	m.next += Addr(size)
	m.segs[name] = s
	return s
}

// Lookup returns the segment registered under name.
func (m *CodeMap) Lookup(name string) (CodeSeg, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.segs[name]
	return s, ok
}

// TotalFootprint returns the total bytes of registered code.
func (m *CodeMap) TotalFootprint() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int(m.next - CodeBase)
}
