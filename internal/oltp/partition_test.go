package oltp_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/oltp"
	"repro/internal/workload"
)

// partCfg builds a small 4-warehouse OLTP database so parts {1, 2, 4}
// all get populated partitions.
func partCfg() workload.TPCCConfig {
	return workload.TPCCConfig{Warehouses: 4, Items: 500, CustPerDis: 60, ArenaBytes: 96 << 20, Seed: 3}
}

// runPartitioned executes ins on a fresh database across parts cohort
// schedulers (untraced) and returns the final state digest plus summed
// scheduler stats and the number of fenced transactions.
func runPartitioned(t *testing.T, cfg workload.TPCCConfig, ins []workload.TxnInput, parts, cohort int) (uint64, oltp.Stats, int) {
	t.Helper()
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := w.PartitionPlan(ins, parts)
	ctxs := make([]*engine.Ctx, parts)
	for p := range ctxs {
		ctxs[p] = w.DB.NewCtx(nil, p, 4<<20)
	}
	progs := w.StagedPrograms(ins, true)
	per, err := oltp.RunPartitioned(ctxs, w.DB.Codes, progs, plan, oltp.Config{
		Cohort: cohort, Generation: w.Mgr.LM.Generation,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st oltp.Stats
	for _, s := range per {
		st.Add(s)
	}
	if st.Committed != len(ins) {
		t.Fatalf("parts=%d committed %d of %d transactions", parts, st.Committed, len(ins))
	}
	d, err := w.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	return d, st, len(plan.Fences())
}

// monolithicDigest runs the reference executor on a fresh database.
func monolithicDigest(t *testing.T, cfg workload.TPCCConfig, ins []workload.TxnInput) uint64 {
	t.Helper()
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oltp.RunMonolithic(w.DB.NewCtx(nil, 0, 4<<20), w.StagedPrograms(ins, false)); err != nil {
		t.Fatal(err)
	}
	d, err := w.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPartitionedMatchesMonolithic is the cross-partition determinism
// gate: the partitioned cohort executor must produce byte-identical
// database state to the monolithic reference at every tested partition
// count and client count.
func TestPartitionedMatchesMonolithic(t *testing.T) {
	cfg := partCfg()
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, clients := range []int{8, 32} {
		per := 5
		if clients == 32 {
			per = 2
		}
		ins := w.StagedInputs(clients, per, 7)
		want := monolithicDigest(t, cfg, ins)
		for _, parts := range []int{1, 2, 4} {
			got, st, _ := runPartitioned(t, cfg, ins, parts, 16)
			if got != want {
				t.Errorf("clients=%d parts=%d: digest %#x != monolithic %#x (stats %+v)",
					clients, parts, got, want, st)
			}
		}
	}
}

// TestPartitionedConflictHeavySinglePartition forces a conflict-heavy
// 1-warehouse mix onto one partition of a 2-partition run: every
// transaction homes at partition 0, partition 1 stays empty, and the
// yield/wound path must still reproduce the monolithic state exactly.
func TestPartitionedConflictHeavySinglePartition(t *testing.T) {
	cfg := partCfg()
	cfg.Warehouses = 1
	cfg.CustPerDis = 20
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputs(16, 4, 11)
	want := monolithicDigest(t, cfg, ins)
	got, st, fenced := runPartitioned(t, cfg, ins, 2, 16)
	if got != want {
		t.Fatalf("conflict-heavy digest mismatch: %#x != %#x (stats %+v)", got, want, st)
	}
	if fenced != 0 {
		t.Errorf("1-warehouse mix fenced %d transactions; nothing is cross-partition", fenced)
	}
	if st.Parks == 0 {
		t.Error("conflict-heavy run recorded no parks; yield path untested")
	}
}

// TestPartitionedRemoteHeavyFences drives a remote-warehouse-heavy mix
// (60% of NewOrder lines and Payment customers drawn from non-home
// warehouses) through 2 and 4 partitions: the cross-partition fence must
// actually engage, and the digest must still match the monolithic
// reference.
func TestPartitionedRemoteHeavyFences(t *testing.T) {
	cfg := partCfg()
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputsMix(8, 4, 7, 60)
	want := monolithicDigest(t, cfg, ins)
	for _, parts := range []int{2, 4} {
		got, st, fenced := runPartitioned(t, cfg, ins, parts, 16)
		if got != want {
			t.Errorf("remote-heavy parts=%d: digest %#x != monolithic %#x (stats %+v)", parts, got, want, st)
		}
		if fenced == 0 {
			t.Errorf("remote-heavy parts=%d: no transactions fenced; the handoff is untested", parts)
		}
	}
}

// TestPartitionedDigestStableAcrossRuns re-runs the same partitioned
// schedule and demands identical digests: host goroutine interleaving may
// shift scheduler counters, but every state-visible decision must be a
// function of the inputs alone.
func TestPartitionedDigestStableAcrossRuns(t *testing.T) {
	cfg := partCfg()
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputsMix(8, 4, 13, 25)
	d1, _, _ := runPartitioned(t, cfg, ins, 4, 8)
	d2, _, _ := runPartitioned(t, cfg, ins, 4, 8)
	if d1 != d2 {
		t.Fatalf("digests differ across identical partitioned runs: %#x vs %#x", d1, d2)
	}
}

// TestPartitionedHandoffRace is the -race hammer for the partitioned
// scheduler's handoff: many repetitions of a remote-heavy 4-partition run
// drive the commit clock, the fence, and the shared lock table from four
// goroutines at once.
func TestPartitionedHandoffRace(t *testing.T) {
	cfg := partCfg()
	cfg.Items = 200
	cfg.CustPerDis = 20
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputsMix(8, 2, 29, 50)
	want := monolithicDigest(t, cfg, ins)
	reps := 6
	if testing.Short() {
		reps = 3
	}
	for i := 0; i < reps; i++ {
		got, _, _ := runPartitioned(t, cfg, ins, 4, 8)
		if got != want {
			t.Fatalf("rep %d: digest %#x != %#x", i, got, want)
		}
	}
}
