package oltp_test

import (
	"testing"

	"repro/internal/oltp"
	"repro/internal/workload"
)

// tinyCfg builds a small OLTP database quickly; both sides of every
// comparison load it identically (same seed).
func tinyCfg() workload.TPCCConfig {
	return workload.TPCCConfig{Warehouses: 2, Items: 500, CustPerDis: 60, ArenaBytes: 64 << 20, Seed: 3}
}

// runMode executes the given inputs natively (untraced) on a fresh
// database, either monolithically or cohort-scheduled, and returns the
// final state digest plus the scheduler stats.
func runMode(t *testing.T, ins []workload.TxnInput, cohort int) (uint64, oltp.Stats) {
	t.Helper()
	w, err := workload.BuildTPCC(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx := w.DB.NewCtx(nil, 0, 4<<20)
	var st oltp.Stats
	if cohort <= 1 {
		st, err = oltp.RunMonolithic(ctx, w.StagedPrograms(ins, false))
	} else {
		sched := oltp.NewScheduler(w.DB.Codes, oltp.Config{Cohort: cohort, Generation: w.Mgr.LM.Generation})
		st, err = sched.Run(ctx, w.StagedPrograms(ins, true))
	}
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != len(ins) {
		t.Fatalf("committed %d of %d transactions", st.Committed, len(ins))
	}
	d, err := w.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	return d, st
}

// TestCohortMatchesMonolithic is the transaction-result equivalence gate:
// cohort-scheduled NewOrder/Payment/OrderStatus/Delivery/StockLevel must
// produce byte-identical database state to the monolithic path for a
// fixed seed, across client counts.
func TestCohortMatchesMonolithic(t *testing.T) {
	w, err := workload.BuildTPCC(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, clients := range []int{1, 8, 32} {
		per := 6
		if clients == 32 {
			per = 3
		}
		ins := w.StagedInputs(clients, per, 7)
		wantDigest, _ := runMode(t, ins, 1)
		for _, cohort := range []int{4, 16} {
			got, st := runMode(t, ins, cohort)
			if got != wantDigest {
				t.Errorf("clients=%d cohort=%d: digest %#x != monolithic %#x (stats %+v)",
					clients, cohort, got, wantDigest, st)
			}
		}
	}
}

// TestCohortSchedulerExercisesConflicts pins the scheduler against a
// conflict-heavy input mix (one warehouse, hot districts) and checks that
// parks and wound-restarts actually occur while state stays identical —
// the yield path is being exercised, not sidestepped.
func TestCohortSchedulerExercisesConflicts(t *testing.T) {
	cfg := tinyCfg()
	cfg.Warehouses = 1
	cfg.CustPerDis = 20
	w, err := workload.BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputs(16, 4, 11)

	build := func() (*workload.TPCC, error) { cfg2 := cfg; return workload.BuildTPCC(cfg2) }

	mono, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oltp.RunMonolithic(mono.DB.NewCtx(nil, 0, 4<<20), mono.StagedPrograms(ins, false)); err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := mono.StateDigest()

	coh, err := build()
	if err != nil {
		t.Fatal(err)
	}
	sched := oltp.NewScheduler(coh.DB.Codes, oltp.Config{Cohort: 16, Generation: coh.Mgr.LM.Generation})
	st, err := sched.Run(coh.DB.NewCtx(nil, 0, 4<<20), coh.StagedPrograms(ins, true))
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, _ := coh.StateDigest()
	if gotDigest != wantDigest {
		t.Fatalf("conflict-heavy digest mismatch: %#x != %#x (stats %+v)", gotDigest, wantDigest, st)
	}
	if st.Parks == 0 {
		t.Error("conflict-heavy run recorded no parks; yield path untested")
	}
	t.Logf("stats: %+v", st)
}

// TestCohortDeterministic re-runs the same cohort schedule twice and
// demands identical digests and identical scheduler decisions.
func TestCohortDeterministic(t *testing.T) {
	w, err := workload.BuildTPCC(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	ins := w.StagedInputs(8, 5, 13)
	d1, s1 := runMode(t, ins, 8)
	d2, s2 := runMode(t, ins, 8)
	if d1 != d2 {
		t.Fatalf("digests differ across identical runs: %#x vs %#x", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("scheduler stats differ across identical runs: %+v vs %+v", s1, s2)
	}
}
