// Multi-worker staged OLTP: the transaction stream is partitioned by home
// warehouse across N cohort schedulers, one per worker thread (one per
// simulated core, each with its own Ctx and trace stream). Partitions
// execute concurrently — probes, fetches, locks, and in-place updates of
// one partition's warehouses never conflict with another's — while two
// global invariants keep the result byte-identical to the monolithic
// reference executing the global admission order:
//
//  1. Commits drain in GLOBAL admission order through a txn.SeqClock.
//     Commit steps are the only point where deferred inserts and index
//     deletes reach the shared heaps and B+trees, so clock-ordered
//     commits reproduce the monolithic heap append order exactly.
//  2. Cross-partition transactions (a NewOrder supplying a line from a
//     remote warehouse, a Payment against a remote customer) are fenced:
//     the clock holds every globally younger transaction at its gate
//     until the fenced transaction has committed, so it executes in
//     global isolation — the deterministic cross-partition handoff.
//
// Clock waits are host-side only: a partition blocked on another's commit
// emits no trace records, so its simulated thread does not accrue cycles
// while waiting (the same modeling as lock waits in the saturated client
// cells). Scheduler counters may therefore vary run to run — whether a
// parked retry lands one quantum earlier depends on host interleaving —
// but every state-visible decision (lock grants, wounds, commit order,
// heap append order) is a deterministic function of the inputs.

package oltp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/txn"
)

// SplitWindow divides a total in-flight window across parts schedulers,
// never below a cohort of 2 per partition (a window of 1 is monolithic
// scheduling in disguise). Every partitioned driver — traced or native —
// must split through here so the policy has one home.
func SplitWindow(cohort, parts int) int {
	w := cohort / parts
	if w < 2 {
		w = 2
	}
	return w
}

// PartitionPlan assigns each program of a global admission sequence to a
// partition and flags the cross-partition transactions that need the
// global fence. Index i throughout refers to global admission order.
type PartitionPlan struct {
	Parts int
	Home  []int  // home partition per program
	Fence []bool // true: runs in global isolation (cross-partition)
}

// Fences returns the global sequence numbers flagged for isolation.
func (p PartitionPlan) Fences() []int {
	var out []int
	for seq, f := range p.Fence {
		if f {
			out = append(out, seq)
		}
	}
	return out
}

// partItem wraps a program with its global admission sequence so the
// partition scheduler's gate can consult the clock, and advances the
// clock when the program's commit step completes.
type partItem struct {
	progItem
	gseq  int
	clock *txn.SeqClock
}

func (it *partItem) Step(ctx *engine.Ctx) (sched.Outcome, error) {
	out, err := it.progItem.Step(ctx)
	if err == nil && out.Done {
		it.clock.Commit(it.gseq)
	}
	return out, err
}

// RunPartitioned executes progs across plan.Parts cohort schedulers, one
// per ctx (one worker thread each), partitioned by plan.Home. Per-part
// scheduler stats are returned in partition order. Empty partitions
// return zero stats immediately.
func RunPartitioned(ctxs []*engine.Ctx, codes *mem.CodeMap, progs []Program, plan PartitionPlan, cfg Config) ([]Stats, error) {
	if plan.Parts <= 0 || len(ctxs) != plan.Parts {
		return nil, fmt.Errorf("oltp: %d contexts for %d partitions", len(ctxs), plan.Parts)
	}
	if len(plan.Home) != len(progs) || len(plan.Fence) != len(progs) {
		return nil, fmt.Errorf("oltp: plan covers %d/%d of %d programs", len(plan.Home), len(plan.Fence), len(progs))
	}
	clock := txn.NewSeqClock(plan.Fences())
	byPart := make([][]sched.Item, plan.Parts)
	for g, p := range progs {
		home := plan.Home[g]
		if home < 0 || home >= plan.Parts {
			return nil, fmt.Errorf("oltp: program %d homed at partition %d of %d", g, home, plan.Parts)
		}
		byPart[home] = append(byPart[home], &partItem{progItem{p}, g, clock})
	}

	s := NewScheduler(codes, cfg)
	stats := make([]Stats, plan.Parts)
	errs := make([]error, plan.Parts)
	var wg sync.WaitGroup
	for p := 0; p < plan.Parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			core := s.coreConfig()
			// Each partition is one worker thread: relocate the span scope
			// so its txn/quantum spans land on simulated thread p.
			core.Obs = cfg.Obs.OnThread(p)
			core.Ready = func(it sched.Item) bool {
				pi := it.(*partItem)
				if pi.Kind() == int(StageCommit) {
					return pi.clock.CommitReady(pi.gseq)
				}
				return pi.clock.StepReady(pi.gseq)
			}
			var seen uint64
			rec := ctxs[p].Rec
			core.Wait = func() bool {
				// Commit-clock waits are host-side only (no simulated
				// cycles accrue), but the span still shows where the
				// partition sat blocked on another's commit.
				wsp := core.Obs.Begin(rec, "clock-wait", "wait")
				g, ok := clock.WaitChange(seen)
				wsp.End(rec)
				seen = g
				return ok
			}
			st, err := sched.New(core).Run(ctxs[p], byPart[p])
			stats[p] = fromSched(st)
			if err != nil {
				errs[p] = fmt.Errorf("oltp: partition %d: %w", p, err)
				// Wake the other partitions so one failure cannot leave
				// them blocked on a commit that will never happen.
				clock.Fail(errs[p])
			}
		}(p)
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}
