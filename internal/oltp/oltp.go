// Package oltp implements a STEPS-style staged transaction executor
// (Harizopoulos & Ailamaki, CIDR 2003): OLTP transactions are decomposed
// into continuation-style stage sequences — index probe, heap fetch, lock
// acquire, update, insert build, log/commit — and a cohort scheduler
// keeps N transactions in flight, executing one stage's cohort per
// quantum before switching code segments. Each stage's instruction
// footprint is small and shared across transaction types, so it is loaded
// into the L1I once per cohort instead of once per transaction; the
// monolithic path, by contrast, cycles through five 8-16 KB transaction
// code bodies per client stream and thrashes the L1I — the instruction
// stalls of the paper's Figure 5 OLTP breakdowns.
//
// Scheduling is cooperative and deterministic: a transaction that cannot
// take a lock parks its continuation at the stage boundary (the
// txn.TryAcquire path) instead of stalling its worker thread. Conflicts
// serialize in admission order — a parked older transaction wounds
// younger lock holders, and commits drain through an admission-order
// barrier — so a cohort-scheduled run produces byte-identical database
// state to the monolithic reference executing the same inputs
// sequentially.
package oltp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// StageKind identifies one shared stage of the staged OLTP executor.
// Every transaction type maps its steps onto this small set, so cohorts
// batch work from different transaction types through the same code.
type StageKind uint8

// The stage vocabulary, in scheduler visit order.
const (
	// StageBegin unmarshals the request and begins the transaction
	// (the staged slice of the SQL frontend).
	StageBegin StageKind = iota
	// StageProbe walks a B+tree index to locate a row or range.
	StageProbe
	// StageFetch reads tuple bodies from heap pages.
	StageFetch
	// StageLock acquires (or retries) a lock; the parking stage.
	StageLock
	// StageUpdate applies an in-place update and registers its undo.
	StageUpdate
	// StageInsert builds a deferred insert (applied at commit so an
	// abort or wound never leaves orphan rows behind).
	StageInsert
	// StageCommit appends the commit record, applies deferred inserts,
	// and releases locks. Subject to the admission-order barrier.
	StageCommit
	// NumStages counts the stage kinds.
	NumStages
)

func (k StageKind) String() string {
	switch k {
	case StageBegin:
		return "begin"
	case StageProbe:
		return "probe"
	case StageFetch:
		return "fetch"
	case StageLock:
		return "lock"
	case StageUpdate:
		return "update"
	case StageInsert:
		return "insert"
	case StageCommit:
		return "commit"
	}
	return fmt.Sprintf("StageKind(%d)", uint8(k))
}

// stageSizes are the instruction footprints of the shared stage code
// segments, in bytes. Their sum (~18 KB) fits comfortably in a 64 KB L1I
// alongside the B+tree/heap/lock-manager segments, which is the point:
// the staged executor's code working set is cache-resident where the
// monolithic transaction bodies (24 KB frontend + 54 KB across five
// types) are not.
var stageSizes = [NumStages]int{
	StageBegin:  3 << 10,
	StageProbe:  3 << 10,
	StageFetch:  2 << 10,
	StageLock:   2 << 10,
	StageUpdate: 3 << 10,
	StageInsert: 3 << 10,
	StageCommit: 2 << 10,
}

// StageCodes registers (or looks up) the shared stage code segments.
func StageCodes(codes *mem.CodeMap) [NumStages]mem.CodeSeg {
	var segs [NumStages]mem.CodeSeg
	for k := StageKind(0); k < NumStages; k++ {
		segs[k] = codes.Register("oltp:stage:"+k.String(), stageSizes[k])
	}
	return segs
}

// Charger decides where a program step's instructions are fetched from:
// the staged executor charges them to the small shared stage segments,
// the monolithic reference walks the transaction type's own large body.
// The data accesses of a step are identical either way — the two
// executors differ only in scheduling and instruction locality.
type Charger interface {
	// Charge records n instructions of a step of the given kind.
	Charge(rec *trace.Recorder, kind StageKind, n int)
	// Reset rewinds any per-attempt state (a restart re-executes the
	// transaction body from its start).
	Reset()
}

// StagedCharger charges every step to its shared stage segment.
type StagedCharger struct {
	Stages [NumStages]mem.CodeSeg
}

// NewStagedCharger builds the staged profile over codes.
func NewStagedCharger(codes *mem.CodeMap) *StagedCharger {
	return &StagedCharger{Stages: StageCodes(codes)}
}

// Charge implements Charger.
func (c *StagedCharger) Charge(rec *trace.Recorder, kind StageKind, n int) {
	rec.Exec(c.Stages[kind], n)
}

// Reset implements Charger.
func (c *StagedCharger) Reset() {}

// MonoCharger models the monolithic code path: StageBegin executes the
// SQL frontend, and every other step advances through the transaction
// type's own code body, so one transaction touches its whole 8-16 KB
// segment and a client stream cycling the five types thrashes the L1I.
type MonoCharger struct {
	Front mem.CodeSeg // SQL frontend segment
	Body  mem.CodeSeg // this transaction type's code body
	off   int         // walk position in Body, bytes
}

// Charge implements Charger.
func (c *MonoCharger) Charge(rec *trace.Recorder, kind StageKind, n int) {
	if kind == StageBegin {
		rec.Exec(c.Front, n)
		return
	}
	rec.ExecAt(c.Body, c.off, n)
	c.off += n * 4
}

// Reset implements Charger.
func (c *MonoCharger) Reset() { c.off = 0 }

// StepOutcome reports what one continuation step did.
type StepOutcome struct {
	// Done is set when the transaction committed.
	Done bool
	// Parked is set when the step blocked on a lock; the continuation
	// stays at the same stage and is retried next quantum.
	Parked bool
	// Blockers holds the conflicting lock holders of a parked step, for
	// the scheduler's wound policy.
	Blockers []uint64
}

// Program is one staged transaction: a deterministic continuation that
// the scheduler advances one step at a time. Programs carry all their
// inputs (pre-drawn randomness), so a restart after a wound or deadlock
// re-executes identical work.
type Program interface {
	// Stage returns the stage kind of the next step.
	Stage() StageKind
	// Fence reports whether the next step may only run once the program
	// is the oldest in-flight transaction (required when a step's reads
	// are data-dependent on all earlier transactions' effects, e.g.
	// TPC-C Delivery probing the new-order index).
	Fence() bool
	// Step executes the next step against ctx's recorder.
	Step(ctx *engine.Ctx) (StepOutcome, error)
	// Restart aborts the current attempt — undoing partial writes and
	// releasing locks — and rewinds the continuation to its first step.
	Restart(rec *trace.Recorder)
	// TxnID returns the transaction id of the current attempt (0 before
	// the begin step ran).
	TxnID() uint64
}
