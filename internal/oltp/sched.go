package oltp

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Config tunes the cohort scheduler.
type Config struct {
	// Cohort is the number of transactions kept in flight (default 16).
	// Larger cohorts amortize each stage's instruction-footprint load
	// over more transactions, at the cost of more lock conflicts.
	Cohort int
	// Generation, when set (txn.LockManager.Generation), lets the
	// scheduler keep a parked continuation dormant until some lock has
	// actually been released — skipping pointless retry probes.
	Generation func() uint64
}

func (c Config) withDefaults() Config {
	if c.Cohort <= 0 {
		c.Cohort = 16
	}
	return c
}

// Stats counts scheduler events over one run.
type Stats struct {
	Committed     int // transactions committed
	Steps         int // continuation steps executed
	Quanta        int // scheduling rounds over the stage kinds
	StageSwitches int // code-segment switches (non-empty stage cohorts)
	Parks         int // steps that parked on a busy lock
	Wounds        int // younger lock holders aborted by an older waiter
	Deadlocks     int // wait-for cycles resolved by restarting the waiter
}

// slot is one in-flight transaction.
type slot struct {
	seq  int // admission order; the serialization order of conflicts
	prog Program

	parked    bool   // waiting on older lock holders
	parkedGen uint64 // release generation at park time
}

// Scheduler drives a set of staged transactions to completion with
// cohort scheduling. It runs on one worker thread (one trace stream):
// blocked transactions park their continuations, so the worker never
// stalls on a lock.
type Scheduler struct {
	cfg  Config
	code mem.CodeSeg
}

// NewScheduler builds a scheduler whose dispatch loop executes from its
// own small code segment in codes.
func NewScheduler(codes *mem.CodeMap, cfg Config) *Scheduler {
	return &Scheduler{
		cfg:  cfg.withDefaults(),
		code: codes.Register("oltp:sched", 2048),
	}
}

// Run executes progs to completion, admitting them in order and keeping
// up to cfg.Cohort in flight. Each quantum visits the stage kinds in a
// fixed order and executes the current cohort of every non-empty stage,
// walking members in admission order — so lock grants, wounds, and
// commits are all deterministic functions of the inputs.
//
// Determinism contract: conflicting accesses serialize in admission
// order. Three mechanisms enforce it — (1) a parked transaction whose
// blocker was admitted later wounds it (the younger holder aborts,
// restarts from its first step, and re-executes after the older one's
// writes); (2) commits drain through an admission-order barrier, so a
// younger transaction's effects can never become visible to an older
// one's reads; (3) programs whose reads range over other transactions'
// key spaces (Fence) run only as the oldest in-flight transaction.
func (s *Scheduler) Run(ctx *engine.Ctx, progs []Program) (Stats, error) {
	var st Stats
	rec := ctx.Rec
	next := 0
	active := make([]*slot, 0, s.cfg.Cohort)

	// Runaway guard: a correct schedule advances every in-flight
	// transaction within a handful of quanta, so a quantum budget far
	// above any legitimate schedule turns a livelock bug into a
	// diagnosable error instead of a spinning worker.
	maxQuanta := 200*len(progs) + 10000

	for len(active) > 0 || next < len(progs) {
		if st.Quanta > maxQuanta {
			desc := ""
			for _, m := range active {
				desc += fmt.Sprintf(" seq%d@%v(txn %d)", m.seq, m.prog.Stage(), m.prog.TxnID())
			}
			return st, fmt.Errorf("oltp: runaway schedule after %d quanta (%d committed):%s", st.Quanta, st.Committed, desc)
		}
		for len(active) < s.cfg.Cohort && next < len(progs) {
			active = append(active, &slot{seq: next, prog: progs[next]})
			next++
		}
		st.Quanta++
		progress := false

		for kind := StageKind(0); kind < NumStages; kind++ {
			// Snapshot this stage's cohort in admission order. A member
			// can leave the stage mid-cohort (wounded by an older peer
			// earlier in the same list), so its stage is re-checked.
			members := members(active, kind)
			if len(members) == 0 {
				continue
			}
			st.StageSwitches++
			rec.Exec(s.code, 30+6*len(members))

			for _, m := range members {
				if m.prog.Stage() != kind {
					continue
				}
				if m.prog.Fence() && m.seq != active[0].seq {
					continue // waits to be the oldest in flight
				}
				if kind == StageCommit && m.seq != active[0].seq {
					continue // admission-order commit barrier
				}
				if m.parked && s.cfg.Generation != nil && s.cfg.Generation() == m.parkedGen {
					continue // nothing released since the park; still blocked
				}
			steps:
				for {
					out, err := m.prog.Step(ctx)
					st.Steps++
					switch {
					case errors.Is(err, txn.ErrDeadlock):
						// A wait-for cycle. To keep conflicts serialized
						// in admission order, break it by wounding the
						// younger participants and retrying; only when
						// every blocker is older (a cycle the wound
						// policy cannot break from here) does the
						// requester itself restart.
						st.Deadlocks++
						if wound(active, m, out.Blockers, rec, &st) == 0 {
							m.prog.Restart(rec)
							m.parked = false
							progress = true
							break steps
						}
						progress = true // wounded: retry immediately
					case err != nil:
						return st, fmt.Errorf("oltp: txn %d (seq %d): %w", m.prog.TxnID(), m.seq, err)
					case out.Done:
						active = remove(active, m)
						st.Committed++
						progress = true
						break steps
					case out.Parked:
						st.Parks++
						// Wound-wait in admission order: abort blockers
						// admitted after the parked transaction, then
						// RETRY AT ONCE — the freed lock must go to this
						// older waiter, not to a younger cohort member
						// whose lock step runs later in the quantum.
						// With only older blockers left, stay parked.
						if wound(active, m, out.Blockers, rec, &st) == 0 {
							m.parked = true
							if s.cfg.Generation != nil {
								m.parkedGen = s.cfg.Generation()
							}
							break steps
						}
						progress = true
					default:
						m.parked = false
						progress = true
						break steps
					}
				}
			}
		}
		if !progress {
			return st, fmt.Errorf("oltp: scheduler wedged with %d in flight (cohort %d)", len(active), s.cfg.Cohort)
		}
	}
	return st, nil
}

// RunMonolithic is the paired reference executor: each program runs
// start-to-finish before the next is admitted (a cohort of one), so the
// instruction stream cycles through whole transaction code bodies. Parks
// cannot happen — there is never another lock holder.
func RunMonolithic(ctx *engine.Ctx, progs []Program) (Stats, error) {
	var st Stats
	for i, p := range progs {
		for {
			out, err := p.Step(ctx)
			st.Steps++
			if err != nil {
				return st, fmt.Errorf("oltp: monolithic txn %d: %w", i, err)
			}
			if out.Parked {
				return st, fmt.Errorf("oltp: monolithic txn %d parked on %v", i, out.Blockers)
			}
			if out.Done {
				st.Committed++
				break
			}
		}
	}
	return st, nil
}

// wound aborts every blocker admitted after m — the wound half of
// wound-wait, keyed on admission order — and returns how many fell.
func wound(active []*slot, m *slot, blockers []uint64, rec *trace.Recorder, st *Stats) int {
	n := 0
	for _, id := range blockers {
		if w := bySeqTxn(active, id); w != nil && w.seq > m.seq {
			st.Wounds++
			w.prog.Restart(rec)
			w.parked = false
			n++
		}
	}
	return n
}

// members collects the active slots currently at kind, in admission order.
func members(active []*slot, kind StageKind) []*slot {
	var out []*slot
	for _, s := range active {
		if s.prog.Stage() == kind {
			out = append(out, s)
		}
	}
	return out
}

// remove drops m from active, preserving admission order.
func remove(active []*slot, m *slot) []*slot {
	for i, s := range active {
		if s == m {
			return append(active[:i], active[i+1:]...)
		}
	}
	return active
}

// bySeqTxn finds the in-flight slot whose current attempt is txn id.
func bySeqTxn(active []*slot, id uint64) *slot {
	for _, s := range active {
		if s.prog.TxnID() == id {
			return s
		}
	}
	return nil
}
