package oltp

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Config tunes the cohort scheduler.
type Config struct {
	// Cohort is the number of transactions kept in flight (default 16).
	// Larger cohorts amortize each stage's instruction-footprint load
	// over more transactions, at the cost of more lock conflicts.
	Cohort int
	// Generation, when set (txn.LockManager.Generation), lets the
	// scheduler keep a parked continuation dormant until some lock has
	// actually been released — skipping pointless retry probes.
	Generation func() uint64
	// Obs, when enabled, opens dual-clock spans for every in-flight
	// transaction, scheduling quantum, and stage step. Partitioned runs
	// relocate the scope to software thread p for partition p and wrap
	// commit-clock waits in "clock-wait" spans.
	Obs obs.Scope
	// Metrics feeds the scheduler-internals histograms (nil fields are
	// simply not fed).
	Metrics obs.SchedMetrics
}

func (c Config) withDefaults() Config {
	if c.Cohort <= 0 {
		c.Cohort = 16
	}
	return c
}

// Stats counts scheduler events over one run.
type Stats struct {
	Committed     int // transactions committed
	Steps         int // continuation steps executed
	Quanta        int // scheduling rounds over the stage kinds
	StageSwitches int // code-segment switches (non-empty stage cohorts)
	Parks         int // steps that parked on a busy lock
	Wounds        int // younger lock holders aborted by an older waiter
	Deadlocks     int // wait-for cycles resolved by restarting the waiter
}

// Add accumulates per-partition stats into a run total.
func (s *Stats) Add(o Stats) {
	s.Committed += o.Committed
	s.Steps += o.Steps
	s.Quanta += o.Quanta
	s.StageSwitches += o.StageSwitches
	s.Parks += o.Parks
	s.Wounds += o.Wounds
	s.Deadlocks += o.Deadlocks
}

// fromSched translates the generic core's counters.
func fromSched(st sched.Stats) Stats {
	return Stats{
		Committed: st.Done, Steps: st.Steps, Quanta: st.Quanta,
		StageSwitches: st.Switches, Parks: st.Parks,
		Wounds: st.Wounds, Deadlocks: st.Deadlocks,
	}
}

// Scheduler drives a set of staged transactions to completion with
// cohort scheduling. It is a thin TPC-C-shaped policy layer — stage
// vocabulary, wound-wait on txn lock conflicts, admission-order commit
// barrier — over the generic cohort/quantum core in internal/sched; it
// runs on one worker thread (one trace stream), and blocked transactions
// park their continuations, so the worker never stalls on a lock.
type Scheduler struct {
	cfg  Config
	code mem.CodeSeg
}

// NewScheduler builds a scheduler whose dispatch loop executes from its
// own small code segment in codes.
func NewScheduler(codes *mem.CodeMap, cfg Config) *Scheduler {
	return &Scheduler{
		cfg:  cfg.withDefaults(),
		code: codes.Register("oltp:sched", 2048),
	}
}

// coreConfig maps the OLTP policy onto the generic scheduler core:
// transactions step through the stage vocabulary, commits drain through
// the admission-order barrier, and the dispatch loop charges the
// scheduler's own code segment per non-empty stage cohort.
func (s *Scheduler) coreConfig() sched.Config {
	return sched.Config{
		Window:     s.cfg.Cohort,
		Kinds:      int(NumStages),
		Barrier:    int(StageCommit),
		Generation: s.cfg.Generation,
		Overhead: func(rec *trace.Recorder, n int) {
			rec.Exec(s.code, 30+6*n)
		},
		Obs:          s.cfg.Obs,
		ItemName:     func(it sched.Item, seq int) string { return fmt.Sprintf("txn-%d", seq) },
		KindName:     func(k int) string { return StageKind(k).String() },
		QuantumSteps: s.cfg.Metrics.QuantumSteps,
		ParkQuanta:   s.cfg.Metrics.ParkQuanta,
	}
}

// Run executes progs to completion, admitting them in order and keeping
// up to cfg.Cohort in flight.
//
// Determinism contract: conflicting accesses serialize in admission
// order. Three mechanisms enforce it — (1) a parked transaction whose
// blocker was admitted later wounds it (the younger holder aborts,
// restarts from its first step, and re-executes after the older one's
// writes); (2) commits drain through an admission-order barrier, so a
// younger transaction's effects can never become visible to an older
// one's reads; (3) programs whose reads range over other transactions'
// key spaces (Fence) run only as the oldest in-flight transaction.
func (s *Scheduler) Run(ctx *engine.Ctx, progs []Program) (Stats, error) {
	items := make([]sched.Item, len(progs))
	for i, p := range progs {
		items[i] = progItem{p}
	}
	st, err := sched.New(s.coreConfig()).Run(ctx, items)
	if err != nil {
		return fromSched(st), fmt.Errorf("oltp: %w", err)
	}
	return fromSched(st), nil
}

// progItem adapts a staged transaction Program to the generic core's
// Item, translating the lock manager's deadlock error into an outcome the
// wound policy understands.
type progItem struct{ p Program }

func (it progItem) Kind() int                   { return int(it.p.Stage()) }
func (it progItem) Fence() bool                 { return it.p.Fence() }
func (it progItem) ID() uint64                  { return it.p.TxnID() }
func (it progItem) Restart(rec *trace.Recorder) { it.p.Restart(rec) }

func (it progItem) Step(ctx *engine.Ctx) (sched.Outcome, error) {
	out, err := it.p.Step(ctx)
	if errors.Is(err, txn.ErrDeadlock) {
		return sched.Outcome{Deadlock: true, Blockers: out.Blockers}, nil
	}
	if err != nil {
		return sched.Outcome{}, fmt.Errorf("txn %d: %w", it.p.TxnID(), err)
	}
	return sched.Outcome{Done: out.Done, Parked: out.Parked, Blockers: out.Blockers}, nil
}

// RunMonolithic is the paired reference executor: each program runs
// start-to-finish before the next is admitted (a cohort of one), so the
// instruction stream cycles through whole transaction code bodies. Parks
// cannot happen — there is never another lock holder.
func RunMonolithic(ctx *engine.Ctx, progs []Program) (Stats, error) {
	return RunMonolithicTraced(ctx, progs, obs.Scope{})
}

// RunMonolithicTraced is RunMonolithic with dual-clock span tracing:
// one span per transaction, one per stage step under it. Transactions
// are strictly sequential here, so the spans nest as plain complete
// events on the single worker thread.
func RunMonolithicTraced(ctx *engine.Ctx, progs []Program, sc obs.Scope) (Stats, error) {
	var st Stats
	for i, p := range progs {
		tsp := sc.Begin(ctx.Rec, fmt.Sprintf("txn-%d", i), "txn")
		steps := sc.Under(tsp)
		for {
			ssp := steps.Begin(ctx.Rec, p.Stage().String(), "step")
			out, err := p.Step(ctx)
			ssp.End(ctx.Rec)
			st.Steps++
			if err != nil {
				return st, fmt.Errorf("oltp: monolithic txn %d: %w", i, err)
			}
			if out.Parked {
				return st, fmt.Errorf("oltp: monolithic txn %d parked on %v", i, out.Blockers)
			}
			if out.Done {
				st.Committed++
				break
			}
		}
		tsp.End(ctx.Rec)
	}
	return st, nil
}
