package sim

import (
	"repro/internal/cache"
	"repro/internal/trace"
)

// lcCore models one lean-camp core: narrow in-order issue, several
// hardware contexts interleaved round-robin. Any L1 miss (instruction or
// data) parks the issuing context until the fill completes; the core then
// issues from the remaining runnable contexts, which is how the lean camp
// hides stalls under saturated workloads.
type lcCore struct {
	id   int
	cfg  *Config
	chip *Chip
	ctxs []*hwctx
	rr   int // round-robin pointer over contexts
}

func (c *lcCore) contexts() []*hwctx { return c.ctxs }

func (c *lcCore) hasWork() bool {
	for _, ctx := range c.ctxs {
		if len(ctx.threads) > 0 {
			return true
		}
	}
	return false
}

// step simulates one cycle and returns issued instruction count and, when
// nothing issued, the classification of the lost cycle.
func (c *lcCore) step(now uint64) (int, StallKind) {
	for _, ctx := range c.ctxs {
		ctx.removeFinished(now, c.chip)
		ctx.maybeSwitch(now, c.cfg.Quantum, c.cfg.SwitchCost)
	}
	// Pick the next runnable context in round-robin order.
	var ctx *hwctx
	n := len(c.ctxs)
	for i := 0; i < n; i++ {
		cand := c.ctxs[(c.rr+i)%n]
		if cand.runnable(now) {
			ctx = cand
			c.rr = (c.rr + i + 1) % n
			break
		}
	}
	if ctx == nil {
		// Every context is blocked or empty: the cycle is lost. Attribute
		// it to the blocked context that will wake first; with no threads
		// at all the core is idle.
		cause := KindIdle
		best := ^uint64(0)
		for _, cand := range c.ctxs {
			if len(cand.threads) > 0 && cand.blockedUntil > now && cand.blockedUntil < best {
				best = cand.blockedUntil
				cause = cand.blockCause
			}
		}
		return 0, cause
	}

	t := ctx.runningThread()
	issued := 0
issue:
	for issued < c.cfg.LCIssue {
		if t.execLeft > 0 {
			k := c.cfg.LCIssue - issued
			if t.execLeft < k {
				k = t.execLeft
			}
			t.execLeft -= k
			issued += k
			if c.chargeBranch(ctx, t, k, now) {
				break issue
			}
			continue
		}
		r, ok := t.next()
		if !ok {
			break issue
		}
		switch r.Kind() {
		case trace.Exec:
			res := c.chip.hier.Fetch(c.id, r.Addr(), now)
			t.execLine = r.Addr()
			t.execLeft = r.Count()
			if res.Level != cache.LvlL1 {
				ctx.block(res.DoneAt, stallFor(res.Level, true))
				break issue
			}
		case trace.Load:
			res := c.chip.hier.Read(c.id, r.Addr(), now)
			issued++
			if res.Level != cache.LvlL1 {
				// In-order blocking miss: the context becomes
				// non-runnable until the fill, per the paper's LC model.
				ctx.block(res.DoneAt, stallFor(res.Level, false))
				break issue
			}
		case trace.Store:
			// Stores retire through the write buffer without blocking.
			c.chip.hier.Write(c.id, r.Addr(), now)
			issued++
		case trace.Mark:
			// Span markers are free: no issue slot, no instruction.
			c.chip.mark(t, r)
		case trace.Prefetch:
			// Software prefetch: never blocks, even on an in-order core —
			// the fill proceeds while the context keeps issuing.
			c.chip.hier.Prefetch(c.id, r.Addr(), now)
		}
	}
	if issued == 0 {
		if now < ctx.blockedUntil {
			return 0, ctx.blockCause
		}
		return 0, KindIdle // thread ended this cycle
	}
	return issued, KindComp
}

// chargeBranch debits issued instructions against the branch-mispredict
// interval and blocks the context for the penalty when one is due. It
// reports whether a penalty was charged.
func (c *lcCore) chargeBranch(ctx *hwctx, t *Thread, issued int, now uint64) bool {
	t.untilBranch -= issued
	if t.untilBranch > 0 {
		return false
	}
	t.untilBranch += c.cfg.BranchEvery
	ctx.block(now+uint64(c.cfg.BranchPenalty), KindOther)
	return true
}
