package sim

import (
	"repro/internal/cache"
	"repro/internal/trace"
)

// fcCore models one fat-camp core: a wide out-of-order design running a
// single hardware context. Independent misses overlap up to the MLP limit
// inside the reorder window, so streaming (DSS-style) access patterns hide
// much of their miss latency; dependent loads (index and hash-bucket
// chains, the OLTP pattern) serialize behind the loads that feed them and
// expose it.
//
// Database code's tight dependencies keep a 4-wide machine far from its
// peak issue rate, so FCIssue models the *sustainable* issue rate on
// database code (default 2) rather than the nominal pipeline width — the
// paper's "database workloads exhibit limited ILP".
type fcCore struct {
	id   int
	cfg  *Config
	chip *Chip
	ctx  *hwctx

	outstanding   []fcMiss  // in-flight data misses, append order
	prevLoadDone  uint64    // completion time of the latest missing load
	prevLoadCause StallKind // stall class of that load's service level
	instrIdx      uint64    // instructions issued, for the window bound
}

// fcMiss is an in-flight data miss.
type fcMiss struct {
	doneAt   uint64
	instrIdx uint64
	cause    StallKind
}

func (c *fcCore) contexts() []*hwctx { return []*hwctx{c.ctx} }

func (c *fcCore) hasWork() bool { return len(c.ctx.threads) > 0 }

// retire drops completed misses.
func (c *fcCore) retire(now uint64) {
	live := c.outstanding[:0]
	for _, m := range c.outstanding {
		if m.doneAt > now {
			live = append(live, m)
		}
	}
	c.outstanding = live
}

// oldest returns the in-flight miss with the smallest instruction index.
func (c *fcCore) oldest() fcMiss {
	old := c.outstanding[0]
	for _, m := range c.outstanding[1:] {
		if m.instrIdx < old.instrIdx {
			old = m
		}
	}
	return old
}

// earliest returns the in-flight miss that completes first.
func (c *fcCore) earliest() fcMiss {
	e := c.outstanding[0]
	for _, m := range c.outstanding[1:] {
		if m.doneAt < e.doneAt {
			e = m
		}
	}
	return e
}

func (c *fcCore) step(now uint64) (int, StallKind) {
	ctx := c.ctx
	ctx.removeFinished(now, c.chip)
	if ctx.maybeSwitch(now, c.cfg.Quantum, c.cfg.SwitchCost) {
		// A new thread's dependence state does not carry over.
		c.outstanding = c.outstanding[:0]
		c.prevLoadDone = 0
	}
	if len(ctx.threads) == 0 {
		return 0, KindIdle
	}
	if now < ctx.blockedUntil {
		return 0, ctx.blockCause
	}
	c.retire(now)

	t := ctx.runningThread()
	issued := 0
issue:
	for issued < c.cfg.FCIssue {
		// Structural limits: a full miss queue or reorder window stalls
		// issue until the bounding miss retires.
		if len(c.outstanding) >= c.cfg.MLP {
			e := c.earliest()
			ctx.block(e.doneAt, e.cause)
			break issue
		}
		if len(c.outstanding) > 0 {
			if old := c.oldest(); c.instrIdx-old.instrIdx >= uint64(c.cfg.Window) {
				ctx.block(old.doneAt, old.cause)
				break issue
			}
		}
		if t.execLeft > 0 {
			k := c.cfg.FCIssue - issued
			if t.execLeft < k {
				k = t.execLeft
			}
			t.execLeft -= k
			issued += k
			c.instrIdx += uint64(k)
			if c.chargeBranch(ctx, t, k, now) {
				break issue
			}
			continue
		}
		r, ok := t.next()
		if !ok {
			break issue
		}
		switch r.Kind() {
		case trace.Exec:
			res := c.chip.hier.Fetch(c.id, r.Addr(), now)
			t.execLine = r.Addr()
			t.execLeft = r.Count()
			if res.Level != cache.LvlL1 {
				// Frontend starvation: OoO machinery does not hide
				// instruction misses.
				ctx.block(res.DoneAt, stallFor(res.Level, true))
				break issue
			}
		case trace.Load:
			if r.Dep() && c.prevLoadDone > now {
				// Pointer chase: the address depends on an in-flight
				// load. The load cannot even issue yet.
				t.pushback(r)
				ctx.block(c.prevLoadDone, c.prevLoadCause)
				break issue
			}
			res := c.chip.hier.Read(c.id, r.Addr(), now)
			issued++
			c.instrIdx++
			if res.Level != cache.LvlL1 {
				cause := stallFor(res.Level, false)
				c.outstanding = append(c.outstanding, fcMiss{res.DoneAt, c.instrIdx, cause})
				c.prevLoadDone = res.DoneAt
				c.prevLoadCause = cause
			} else {
				// L1 hits forward within the window: no dependence stall.
				c.prevLoadDone = 0
			}
		case trace.Store:
			c.chip.hier.Write(c.id, r.Addr(), now)
			issued++
			c.instrIdx++
		case trace.Mark:
			// Span markers are free: no issue slot, no instruction.
			c.chip.mark(t, r)
		case trace.Prefetch:
			// Software prefetch: starts the fill but takes no issue slot,
			// no reorder-window entry, and no miss-queue slot (prefetch
			// engines have their own request buffers); issue never stalls
			// on it.
			c.chip.hier.Prefetch(c.id, r.Addr(), now)
		}
	}
	if issued == 0 {
		if now < ctx.blockedUntil {
			return 0, ctx.blockCause
		}
		return 0, KindIdle
	}
	return issued, KindComp
}

func (c *fcCore) chargeBranch(ctx *hwctx, t *Thread, issued int, now uint64) bool {
	t.untilBranch -= issued
	if t.untilBranch > 0 {
		return false
	}
	t.untilBranch += c.cfg.BranchEvery
	ctx.block(now+uint64(c.cfg.BranchPenalty), KindOther)
	return true
}
