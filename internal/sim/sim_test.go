package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

// feed starts a goroutine that emits the refs produced by gen into a new
// stream, repeating gen `reps` times, then closes it.
func feed(reps int, gen func(r *trace.Recorder)) *trace.Stream {
	rec, s := trace.Pipe()
	go func() {
		for i := 0; i < reps && !rec.Stopped(); i++ {
			gen(rec)
		}
		rec.Close()
	}()
	return s
}

func testConfig(camp Camp, cores int) Config {
	return Config{
		Camp:  camp,
		Cores: cores,
		Hier: cache.Config{
			L2Size:   1 << 20,
			L2Lat:    10,
			SharedL2: true,
		},
	}
}

var testSeg = mem.CodeSeg{Base: mem.CodeBase, Size: 512} // 8 lines

// computeOnly emits pure instruction execution within one code line.
func computeOnly(r *trace.Recorder) {
	r.Exec(mem.CodeSeg{Base: mem.CodeBase, Size: 64}, 64)
}

func TestComputeBoundIPC(t *testing.T) {
	for _, camp := range []Camp{FatCamp, LeanCamp} {
		ch := NewChip(testConfig(camp, 1))
		ch.AddThread(feed(2000, computeOnly))
		res := ch.Run(100000)
		ipc := res.IPC()
		// Effective issue width 2, minus branch-penalty losses.
		if ipc < 1.4 || ipc > 2.0 {
			t.Errorf("%v compute-bound IPC = %.2f, want ~2", camp, ipc)
		}
		if f := res.Breakdown.Frac(KindComp); f < 0.75 {
			t.Errorf("%v compute fraction = %.2f, want >0.75", camp, f)
		}
	}
}

func TestThreadCompletionRecorded(t *testing.T) {
	ch := NewChip(testConfig(FatCamp, 1))
	ch.AddThread(feed(10, computeOnly))
	res := ch.Run(1 << 20)
	if res.ThreadDone[0] == 0 {
		t.Fatal("thread completion not recorded")
	}
	if res.ResponseTime() != res.ThreadDone[0] {
		t.Fatal("ResponseTime disagrees with ThreadDone[0]")
	}
}

// pointerChase emits dependent loads over a large region: every load
// misses somewhere and depends on its predecessor (OLTP-like index walk).
func pointerChase(stride, n int) func(r *trace.Recorder) {
	next := uint64(0)
	return func(r *trace.Recorder) {
		for i := 0; i < n; i++ {
			r.Exec(testSeg, 8)
			r.Load(mem.HeapBase+mem.Addr(next), true)
			next = (next + uint64(stride)) % (64 << 20)
		}
	}
}

// streamScan emits independent sequential loads (DSS-like scan).
func streamScan(n int) func(r *trace.Recorder) {
	next := uint64(0)
	return func(r *trace.Recorder) {
		for i := 0; i < n; i++ {
			r.Exec(testSeg, 8)
			r.Load(mem.HeapBase+mem.Addr(next), false)
			next += mem.LineSize
		}
	}
}

func TestFCOverlapsIndependentMissesButNotDependent(t *testing.T) {
	run := func(gen func(r *trace.Recorder)) Result {
		ch := NewChip(testConfig(FatCamp, 1))
		ch.AddThread(feed(1, gen))
		return ch.Run(10 << 20)
	}
	dep := run(pointerChase(4096, 5000))
	ind := run(streamScan(5000))
	if dep.ThreadDone[0] == 0 || ind.ThreadDone[0] == 0 {
		t.Fatal("workloads did not finish")
	}
	// Same instruction/miss counts; the dependent version must be much
	// slower because misses cannot overlap.
	if ratio := float64(dep.ThreadDone[0]) / float64(ind.ThreadDone[0]); ratio < 2 {
		t.Errorf("dependent/independent runtime ratio = %.2f, want >= 2 (MLP)", ratio)
	}
}

func TestLCBlocksOnEveryMiss(t *testing.T) {
	// LC with one thread: dependent vs independent misses cost the same,
	// because in-order blocking cores cannot overlap either.
	run := func(gen func(r *trace.Recorder)) Result {
		ch := NewChip(testConfig(LeanCamp, 1))
		ch.AddThread(feed(1, gen))
		return ch.Run(10 << 20)
	}
	dep := run(pointerChase(4096, 3000))
	ind := run(streamScan(3000))
	ratio := float64(dep.ThreadDone[0]) / float64(ind.ThreadDone[0])
	if ratio < 0.9 || ratio > 1.2 {
		t.Errorf("LC dep/ind ratio = %.2f, want ~1 (blocking misses)", ratio)
	}
}

func TestLCMultithreadingHidesStalls(t *testing.T) {
	// One LC core: 1 thread exposes miss latency; 4 threads overlap it.
	mk := func(threads int) Result {
		ch := NewChip(testConfig(LeanCamp, 1))
		for i := 0; i < threads; i++ {
			ch.AddThread(feed(1000000, streamScan(16)))
		}
		ch.Warm(2000)
		return ch.Run(200000)
	}
	one := mk(1)
	four := mk(4)
	if four.IPC() < 1.5*one.IPC() {
		t.Errorf("4-thread LC IPC %.3f not >1.5x 1-thread %.3f", four.IPC(), one.IPC())
	}
	if one.Breakdown.Frac(KindComp) > 0.6 {
		t.Errorf("single-thread LC compute frac %.2f, want exposed stalls", one.Breakdown.Frac(KindComp))
	}
}

func TestUnsaturatedFCBeatsLCOnScan(t *testing.T) {
	// Figure 4a mechanism: single-thread DSS-like scan, FC overlaps
	// misses, LC cannot.
	run := func(camp Camp) uint64 {
		ch := NewChip(testConfig(camp, 4))
		ch.AddThread(feed(1, streamScan(20000)))
		res := ch.Run(50 << 20)
		return res.ThreadDone[0]
	}
	fc := run(FatCamp)
	lc := run(LeanCamp)
	if fc == 0 || lc == 0 {
		t.Fatal("runs did not finish")
	}
	if ratio := float64(lc) / float64(fc); ratio < 1.2 {
		t.Errorf("LC/FC single-thread scan response ratio = %.2f, want > 1.2", ratio)
	}
}

// chaseInRegion emits a dependent pointer chase confined to a private
// region — the DB-like pattern (index/bucket walks over an L2-resident
// working set) on which multithreading beats ILP.
func chaseInRegion(base mem.Addr, region int) func(r *trace.Recorder) {
	next := uint64(0)
	return func(r *trace.Recorder) {
		for i := 0; i < 64; i++ {
			r.Exec(testSeg, 8)
			r.Load(base+mem.Addr(next), true)
			next = (next*1664525 + 1013904223) % uint64(region)
		}
	}
}

func TestSaturatedLCBeatsFC(t *testing.T) {
	// Figure 4b mechanism: many threads over L2-resident private working
	// sets; LC's 16 contexts hide the L2 hit latency, FC's dependent
	// loads expose it.
	run := func(camp Camp) float64 {
		cfg := testConfig(camp, 4)
		cfg.Hier.L2Size = 8 << 20
		ch := NewChip(cfg)
		for i := 0; i < 16; i++ {
			ch.AddThread(feed(1000000, chaseInRegion(mem.HeapBase+mem.Addr(i)<<22, 256<<10)))
		}
		ch.Warm(20000)
		return ch.Run(300000).IPC()
	}
	fc := run(FatCamp)
	lc := run(LeanCamp)
	if lc < 1.3*fc {
		t.Errorf("saturated LC IPC %.2f not >1.3x FC %.2f", lc, fc)
	}
}

func TestStallAttributionLevels(t *testing.T) {
	// A scan over a region that fits in L2 but not L1 produces L2-hit
	// stalls after warming; a huge region produces memory stalls.
	run := func(region int) Result {
		ch := NewChip(testConfig(FatCamp, 1))
		next := 0
		gen := func(r *trace.Recorder) {
			for i := 0; i < 64; i++ {
				r.Exec(testSeg, 4)
				r.Load(mem.HeapBase+mem.Addr(next), true) // dependent: expose latency
				next = (next + 4096) % region
			}
		}
		ch.AddThread(feed(1000000, gen))
		ch.Warm(50000)
		return ch.Run(300000)
	}
	inL2 := run(512 << 10) // fits 1MB L2, misses 64KB L1
	inMem := run(64 << 20) // far exceeds L2
	if l2, mem := inL2.Breakdown.Cycles[KindDStallL2], inL2.Breakdown.Cycles[KindDStallMem]; l2 < 10*mem {
		t.Errorf("L2-resident: L2-hit stalls %d vs mem stalls %d, want dominance", l2, mem)
	}
	if l2, mem := inMem.Breakdown.Cycles[KindDStallL2], inMem.Breakdown.Cycles[KindDStallMem]; mem < 10*l2 {
		t.Errorf("mem-resident: mem stalls %d vs L2 stalls %d, want dominance", mem, l2)
	}
}

func TestL2LatencySlowsL2Resident(t *testing.T) {
	// Figure 6 mechanism: same workload, higher L2 latency, lower IPC.
	run := func(lat int) float64 {
		cfg := testConfig(FatCamp, 1)
		cfg.Hier.L2Lat = lat
		ch := NewChip(cfg)
		next := 0
		gen := func(r *trace.Recorder) {
			for i := 0; i < 64; i++ {
				r.Exec(testSeg, 4)
				r.Load(mem.HeapBase+mem.Addr(next), true)
				next = (next + 4096) % (512 << 10)
			}
		}
		ch.AddThread(feed(1000000, gen))
		ch.Warm(50000)
		return ch.Run(200000).IPC()
	}
	fast, slow := run(4), run(20)
	if slow >= fast {
		t.Errorf("IPC at L2Lat=20 (%.3f) not below L2Lat=4 (%.3f)", slow, fast)
	}
}

// bigCodeWalk executes every line of a 512KB code segment (8x the L1I),
// so each pass evicts the next pass's lines.
func bigCodeWalk(r *trace.Recorder) {
	big := mem.CodeSeg{Base: mem.CodeBase, Size: 512 << 10}
	r.Exec(big, big.Instructions())
}

func TestIStallsFromLargeCodeFootprint(t *testing.T) {
	cfg := testConfig(FatCamp, 1)
	cfg.Hier.StreamBuf = false
	ch := NewChip(cfg)
	ch.AddThread(feed(1000000, bigCodeWalk))
	ch.Warm(10000)
	res := ch.Run(100000)
	if is := res.Breakdown.IStalls(); is == 0 {
		t.Error("no instruction stalls despite 512KB code footprint")
	}
}

func TestStreamBufferReducesIStalls(t *testing.T) {
	run := func(sb bool) uint64 {
		cfg := testConfig(FatCamp, 1)
		cfg.Hier.StreamBuf = sb
		ch := NewChip(cfg)
		ch.AddThread(feed(1000000, bigCodeWalk))
		ch.Warm(10000)
		return ch.Run(100000).Breakdown.IStalls()
	}
	with, without := run(true), run(false)
	if without == 0 {
		t.Fatal("baseline produced no I-stalls")
	}
	if with >= without/2 {
		t.Errorf("stream buffer I-stalls %d, want well below %d", with, without)
	}
}

func TestQuantumSchedulingRunsAllThreads(t *testing.T) {
	// 8 threads on one FC core must all make progress via timeslicing.
	cfg := testConfig(FatCamp, 1)
	cfg.Quantum = 2000
	ch := NewChip(cfg)
	for i := 0; i < 8; i++ {
		ch.AddThread(feed(1000000, computeOnly))
	}
	ch.Run(100000)
	for i := 0; i < 8; i++ {
		if ch.ThreadProgress(i) == 0 {
			t.Errorf("thread %d starved", i)
		}
	}
}

func TestSMPCoherenceStallsAppear(t *testing.T) {
	// Two FC nodes with private L2s write-sharing a region: coherence
	// stalls must be attributed (Figure 7 mechanism).
	cfg := testConfig(FatCamp, 2)
	cfg.Hier.SharedL2 = false
	cfg.Hier.L2Size = 1 << 20
	ch := NewChip(cfg)
	gen := func(r *trace.Recorder) {
		for i := 0; i < 64; i++ {
			r.Exec(testSeg, 8)
			a := mem.HeapBase + mem.Addr((i%32)*mem.LineSize)
			r.Load(a, true)
			r.Store(a)
		}
	}
	ch.AddThread(feed(1000000, gen))
	ch.AddThread(feed(1000000, gen))
	ch.Warm(1000)
	res := ch.Run(200000)
	if res.Breakdown.Cycles[KindDStallCoh] == 0 {
		t.Error("no coherence stalls in write-sharing SMP workload")
	}
	// Same workload on a shared-L2 CMP must convert them to L2-class.
	cfg.Hier.SharedL2 = true
	ch2 := NewChip(cfg)
	ch2.AddThread(feed(1000000, gen))
	ch2.AddThread(feed(1000000, gen))
	ch2.Warm(1000)
	res2 := ch2.Run(200000)
	if res2.Breakdown.Cycles[KindDStallCoh] != 0 {
		t.Error("coherence stalls on shared-L2 CMP")
	}
	if res2.IPC() <= res.IPC() {
		t.Errorf("CMP IPC %.3f not above SMP IPC %.3f", res2.IPC(), res.IPC())
	}
}

func TestBreakdownAccounting(t *testing.T) {
	ch := NewChip(testConfig(LeanCamp, 2))
	ch.AddThread(feed(100000, streamScan(16)))
	res := ch.Run(50000)
	var total uint64
	for _, v := range res.Breakdown.Cycles {
		total += v
	}
	// Every core contributes exactly one classification per cycle.
	if want := res.Cycles * 2; total != want {
		t.Fatalf("breakdown cycles %d != cores×cycles %d", total, want)
	}
	if res.Breakdown.Busy()+res.Breakdown.Idle() != total {
		t.Fatal("busy+idle != total")
	}
}

func TestIdleCoresExcludedFromBusy(t *testing.T) {
	ch := NewChip(testConfig(FatCamp, 4))
	ch.AddThread(feed(50, computeOnly)) // single thread on core 0
	res := ch.Run(1 << 20)
	if res.Breakdown.Idle() == 0 {
		t.Error("three idle cores produced no idle cycles")
	}
	if res.Breakdown.Frac(KindComp) < 0.5 {
		t.Errorf("compute fraction of busy cycles %.2f too low; idle leaking into busy?",
			res.Breakdown.Frac(KindComp))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Camp: LeanCamp, Hier: cache.Config{L2Size: 1 << 20, L2Lat: 10}}.withDefaults()
	if cfg.Cores != 4 || cfg.CtxPerCore != 4 || cfg.LCIssue != 2 {
		t.Errorf("LC defaults wrong: %+v", cfg)
	}
	if cfg.Contexts() != 16 {
		t.Errorf("LC contexts = %d, want 16", cfg.Contexts())
	}
	fcfg := Config{Camp: FatCamp, Hier: cache.Config{L2Size: 1 << 20, L2Lat: 10}}.withDefaults()
	if fcfg.Contexts() != 4 || fcfg.BranchPenalty != 15 {
		t.Errorf("FC defaults wrong: %+v", fcfg)
	}
}

func TestStallKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := StallKind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty/duplicate string %q", k, s)
		}
		seen[s] = true
	}
}
