package sim

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/trace"
)

// coreModel is one simulated core advancing cycle by cycle.
type coreModel interface {
	// step simulates one cycle, returning the number of instructions
	// issued and, when zero, the classification of the lost cycle.
	step(now uint64) (int, StallKind)
	// hasWork reports whether any software thread is bound to the core.
	hasWork() bool
	// contexts exposes the core's hardware contexts for thread placement.
	contexts() []*hwctx
}

// Chip is one simulated chip multiprocessor (or, with a private-L2
// hierarchy, one node-per-core SMP): cores plus memory hierarchy plus the
// software threads scheduled onto them.
type Chip struct {
	cfg     Config
	hier    *cache.Hierarchy
	cores   []coreModel
	ctxs    []*hwctx // all hardware contexts, placement order
	ctxCore []int    // owning core of each placement slot

	threads    []*Thread
	threadCore []int    // owning core per thread, for warming
	doneAt     []uint64 // completion cycle per thread
	live       int

	// onMark, when set, receives every retired trace.Mark record with
	// the simulated cycle at which the surrounding work executed.
	onMark func(thread int, id uint64, begin bool, cycle uint64)

	now uint64
}

// NewChip builds a chip from cfg; zero config fields take defaults.
func NewChip(cfg Config) *Chip {
	cfg = cfg.withDefaults()
	ch := &Chip{cfg: cfg, hier: cache.NewHierarchy(cfg.Hier)}
	for i := 0; i < cfg.Cores; i++ {
		switch cfg.Camp {
		case FatCamp:
			c := &fcCore{id: i, cfg: &ch.cfg, chip: ch, ctx: &hwctx{}}
			ch.cores = append(ch.cores, c)
		case LeanCamp:
			c := &lcCore{id: i, cfg: &ch.cfg, chip: ch}
			for k := 0; k < cfg.CtxPerCore; k++ {
				c.ctxs = append(c.ctxs, &hwctx{})
			}
			ch.cores = append(ch.cores, c)
		default:
			panic(fmt.Sprintf("sim: unknown camp %d", cfg.Camp))
		}
	}
	// Placement order interleaves contexts across cores so the first N
	// threads land on N distinct cores.
	for k := 0; ; k++ {
		added := false
		for coreID, c := range ch.cores {
			if k < len(c.contexts()) {
				ch.ctxs = append(ch.ctxs, c.contexts()[k])
				ch.ctxCore = append(ch.ctxCore, coreID)
				added = true
			}
		}
		if !added {
			break
		}
	}
	return ch
}

// Config returns the chip's (defaulted) configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// Hierarchy exposes the memory hierarchy (for stats inspection).
func (ch *Chip) Hierarchy() *cache.Hierarchy { return ch.hier }

// AddThread binds a software thread reading from s to the chip, placing it
// on hardware contexts round-robin. It returns the thread id.
func (ch *Chip) AddThread(s *trace.Stream) int {
	return ch.AddThreadAt(s, len(ch.threads)%len(ch.ctxs))
}

// AddThreadAt binds a software thread to a specific hardware context
// (placement order interleaves contexts across cores: context i lives on
// core i%Cores). Scheduling experiments use it to co-locate producer and
// consumer threads on one core.
func (ch *Chip) AddThreadAt(s *trace.Stream, ctxIdx int) int {
	id := len(ch.threads)
	t := newThread(id, s, ch, ch.cfg.BranchEvery)
	ctxIdx %= len(ch.ctxs)
	ch.ctxs[ctxIdx].threads = append(ch.ctxs[ctxIdx].threads, t)
	ch.threads = append(ch.threads, t)
	ch.threadCore = append(ch.threadCore, ch.ctxCore[ctxIdx])
	ch.doneAt = append(ch.doneAt, 0)
	ch.live++
	return id
}

// pump obtains at least one more chunk for t, returning false when t's
// trace has ended. While t's producer has nothing ready, the pump drains
// whatever other producers have queued (into their threads' local chunk
// buffers) so that a producer blocked on a full channel always makes
// progress — without this, engine lock coupling between client threads
// could deadlock the single-threaded simulator.
func (ch *Chip) pump(t *Thread) bool {
	for {
		c, ok, ended := t.stream.RecvChunk(0)
		if ok {
			t.chunks = append(t.chunks, c)
			return true
		}
		if ended {
			return false
		}
		progress := false
		for _, o := range ch.threads {
			if o == t || o.done {
				continue
			}
			if oc, okc, _ := o.stream.RecvChunk(0); okc {
				o.chunks = append(o.chunks, oc)
				progress = true
			}
		}
		if progress {
			continue
		}
		// Nothing anywhere: wait briefly for t's producer, then rescan.
		c, ok, ended = t.stream.RecvChunk(200 * time.Microsecond)
		if ok {
			t.chunks = append(t.chunks, c)
			return true
		}
		if ended {
			return false
		}
	}
}

// SetMarkHandler installs the span-marker callback (obs.Tracer.OnMark).
// Marks cost zero simulated cycles, so installing a handler never
// changes timing; a chip without one discards markers.
func (ch *Chip) SetMarkHandler(f func(thread int, id uint64, begin bool, cycle uint64)) {
	ch.onMark = f
}

// mark delivers one retired span marker at the current cycle.
func (ch *Chip) mark(t *Thread, r trace.Ref) {
	if ch.onMark != nil {
		ch.onMark(t.ID, r.MarkID(), r.MarkBegin(), ch.now)
	}
}

// threadFinished records a thread's completion.
func (ch *Chip) threadFinished(t *Thread, now uint64) {
	if ch.doneAt[t.ID] == 0 {
		ch.doneAt[t.ID] = now
		ch.live--
	}
}

// Warm consumes up to refs trace records from every thread, updating cache
// contents without timing — SimFlex-style functional warming before a
// measured window.
func (ch *Chip) Warm(refs int) {
	for i, t := range ch.threads {
		core := ch.threadCore[i]
		for n := 0; n < refs; n++ {
			r, ok := t.next()
			if !ok {
				break
			}
			switch r.Kind() {
			case trace.Exec:
				ch.hier.WarmFetch(core, r.Addr())
			case trace.Load:
				ch.hier.WarmRead(core, r.Addr())
			case trace.Store:
				ch.hier.WarmWrite(core, r.Addr())
			case trace.Prefetch:
				// Warming has no clock, so a prefetch degenerates to a read.
				ch.hier.WarmRead(core, r.Addr())
			case trace.Mark:
				// Free: stamp it (warming does not advance the clock)
				// without consuming warm budget, so traced and untraced
				// runs warm the identical reference prefix.
				ch.mark(t, r)
				n--
			}
		}
	}
}

// Run simulates up to maxCycles cycles (beyond those already elapsed) and
// returns the measured result. It stops early when every thread's trace
// has been fully executed. Statistics cover only this measurement window,
// so Warm → Run yields a warmed measurement.
func (ch *Chip) Run(maxCycles uint64) Result {
	start := ch.now
	statsStart := ch.hier.Stats
	var bd Breakdown
	var instructions uint64

	for ch.now-start < maxCycles && ch.live > 0 {
		for _, c := range ch.cores {
			if !c.hasWork() {
				bd.Add(KindIdle)
				continue
			}
			issued, kind := c.step(ch.now)
			if issued > 0 {
				instructions += uint64(issued)
				bd.Add(KindComp)
			} else {
				bd.Add(kind)
			}
		}
		ch.now++
	}

	stats := ch.hier.Stats
	stats.L1DHits -= statsStart.L1DHits
	stats.L1DMisses -= statsStart.L1DMisses
	stats.L1IHits -= statsStart.L1IHits
	stats.L1IMisses -= statsStart.L1IMisses
	stats.StreamBufHits -= statsStart.StreamBufHits
	stats.L2Hits -= statsStart.L2Hits
	stats.L2Misses -= statsStart.L2Misses
	stats.L1Transfers -= statsStart.L1Transfers
	stats.CohTransfers -= statsStart.CohTransfers
	stats.MemAccesses -= statsStart.MemAccesses
	stats.Upgrades -= statsStart.Upgrades
	stats.PortQueueCycles -= statsStart.PortQueueCycles
	stats.BackInvalidations -= statsStart.BackInvalidations
	stats.Prefetches -= statsStart.Prefetches
	stats.PrefetchHits -= statsStart.PrefetchHits
	stats.PrefetchLate -= statsStart.PrefetchLate

	done := make([]uint64, len(ch.doneAt))
	copy(done, ch.doneAt)
	return Result{
		Cycles:       ch.now - start,
		Instructions: instructions,
		Breakdown:    bd,
		Cache:        stats,
		ThreadDone:   done,
	}
}

// Now returns the current simulated cycle.
func (ch *Chip) Now() uint64 { return ch.now }

// ThreadProgress returns how many trace records thread id has executed
// (or warmed) so far.
func (ch *Chip) ThreadProgress(id int) uint64 { return ch.threads[id].consumed }
