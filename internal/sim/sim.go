// Package sim implements the trace-driven CMP timing simulator standing in
// for the paper's FLEXUS full-system simulations.
//
// Two core models realize the paper's taxonomy (Table 1):
//
//   - Fat camp (FC): wide out-of-order cores. The model issues up to
//     IssueWidth instructions per cycle from a single hardware context,
//     overlaps independent misses up to an MLP limit within a reorder
//     window, and serializes dependent loads (pointer chasing) behind the
//     loads that feed them.
//
//   - Lean camp (LC): narrow in-order cores with several hardware contexts
//     interleaved round-robin. A context that misses in L1 becomes
//     non-runnable until the miss is serviced; the core issues from the
//     remaining runnable contexts, hiding stalls when the workload is
//     saturated and exposing them when it is not.
//
// Both camps share the identical memory hierarchy of internal/cache, per
// the paper's methodology. Every cycle of every active core is attributed
// to computation, an instruction-stall level, a data-stall level, or other
// (branch/scheduling) stalls, yielding the execution-time breakdowns of
// Figures 5–7.
package sim

import (
	"fmt"

	"repro/internal/cache"
)

// Camp selects the core technology per the paper's taxonomy.
type Camp uint8

// The two camps.
const (
	FatCamp Camp = iota
	LeanCamp
)

func (c Camp) String() string {
	if c == FatCamp {
		return "FC"
	}
	return "LC"
}

// Config describes one simulated chip.
type Config struct {
	Camp  Camp
	Cores int

	// Lean-camp parameters.
	CtxPerCore int // hardware contexts per LC core (default 4)
	LCIssue    int // LC issue width (default 2)

	// Fat-camp parameters. FCIssue is the *sustainable* issue rate on
	// database code rather than the nominal 4-wide pipeline: tight data
	// dependencies keep wide OoO machines near two instructions per cycle
	// on DBMS workloads (the paper's "limited ILP").
	FCIssue int // effective FC issue width (default 2)
	Window  int // reorder window in instructions (default 256, Power5-class)
	MLP     int // maximum overlapped outstanding data misses (default 8)

	// Branch behaviour ("other" stalls). A mispredict is charged every
	// BranchEvery instructions; the penalty reflects pipeline depth.
	BranchEvery   int // default 140
	BranchPenalty int // default: FC 15 (deep pipe), LC 4 (shallow)

	// OS-like scheduling when software threads exceed hardware contexts.
	Quantum    uint64 // timeslice in cycles (default 10000)
	SwitchCost int    // cycles charged on a context switch (default 120)

	Hier cache.Config // memory hierarchy (Cores is filled in)
}

// WithDefaults returns the configuration with all zero fields replaced by
// their defaults — the exact parameters a NewChip(c) would run with.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.CtxPerCore == 0 {
		c.CtxPerCore = 4
	}
	if c.LCIssue == 0 {
		c.LCIssue = 2
	}
	if c.FCIssue == 0 {
		c.FCIssue = 2
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.MLP == 0 {
		c.MLP = 4
	}
	if c.BranchEvery == 0 {
		c.BranchEvery = 140
	}
	if c.BranchPenalty == 0 {
		if c.Camp == FatCamp {
			c.BranchPenalty = 15
		} else {
			c.BranchPenalty = 4
		}
	}
	if c.Quantum == 0 {
		c.Quantum = 10000
	}
	if c.SwitchCost == 0 {
		c.SwitchCost = 120
	}
	c.Hier.Cores = c.Cores
	return c
}

// Contexts returns the number of hardware contexts on the chip.
func (c Config) Contexts() int {
	if c.Camp == LeanCamp {
		return c.Cores * c.CtxPerCore
	}
	return c.Cores
}

// StallKind classifies where a core cycle went.
type StallKind uint8

// Cycle classifications.
const (
	KindComp StallKind = iota // issued at least one instruction
	KindIStallL2
	KindIStallMem
	KindDStallL2 // waiting on an on-chip L2 hit or L1-to-L1 transfer
	KindDStallMem
	KindDStallCoh
	KindOther // branch mispredicts, context-switch overhead
	KindIdle  // no software thread available
	numKinds
)

func (k StallKind) String() string {
	switch k {
	case KindComp:
		return "computation"
	case KindIStallL2:
		return "I-stall-L2"
	case KindIStallMem:
		return "I-stall-mem"
	case KindDStallL2:
		return "D-stall-L2hit"
	case KindDStallMem:
		return "D-stall-mem"
	case KindDStallCoh:
		return "D-stall-coherence"
	case KindOther:
		return "other"
	case KindIdle:
		return "idle"
	}
	return fmt.Sprintf("StallKind(%d)", uint8(k))
}

// stallFor maps a hierarchy service level to the stall charged while
// waiting on it.
func stallFor(lvl cache.Level, instr bool) StallKind {
	switch lvl {
	case cache.LvlL2:
		if instr {
			return KindIStallL2
		}
		return KindDStallL2
	case cache.LvlMem:
		if instr {
			return KindIStallMem
		}
		return KindDStallMem
	case cache.LvlCoh:
		return KindDStallCoh
	}
	return KindComp // L1 hits never stall attribution
}

// Breakdown counts core cycles by classification, summed over active cores.
type Breakdown struct {
	Cycles [numKinds]uint64
}

// Add accumulates one cycle of kind k.
func (b *Breakdown) Add(k StallKind) { b.Cycles[k]++ }

// Computation returns cycles that issued instructions.
func (b Breakdown) Computation() uint64 { return b.Cycles[KindComp] }

// IStalls returns instruction-stall cycles (all levels).
func (b Breakdown) IStalls() uint64 {
	return b.Cycles[KindIStallL2] + b.Cycles[KindIStallMem]
}

// DStalls returns data-stall cycles (all levels).
func (b Breakdown) DStalls() uint64 {
	return b.Cycles[KindDStallL2] + b.Cycles[KindDStallMem] + b.Cycles[KindDStallCoh]
}

// DStallL2 returns the paper's headline component: stalls on on-chip L2 hits.
func (b Breakdown) DStallL2() uint64 { return b.Cycles[KindDStallL2] }

// Other returns branch/scheduling stall cycles.
func (b Breakdown) Other() uint64 { return b.Cycles[KindOther] }

// Idle returns cycles of cores with no software thread.
func (b Breakdown) Idle() uint64 { return b.Cycles[KindIdle] }

// Busy returns all non-idle core cycles (the denominator of the paper's
// execution-time breakdowns).
func (b Breakdown) Busy() uint64 {
	var t uint64
	for k, v := range b.Cycles {
		if StallKind(k) != KindIdle {
			t += v
		}
	}
	return t
}

// Frac returns kind k as a fraction of busy cycles.
func (b Breakdown) Frac(k StallKind) float64 {
	busy := b.Busy()
	if busy == 0 {
		return 0
	}
	return float64(b.Cycles[k]) / float64(busy)
}

// Result reports one simulation run.
type Result struct {
	Cycles       uint64 // elapsed chip cycles in the measured window
	Instructions uint64 // user instructions committed chip-wide
	Breakdown    Breakdown
	Cache        cache.Stats
	ThreadDone   []uint64 // per-thread completion cycle (0 = unfinished)
}

// IPC returns aggregate committed user instructions per chip cycle, the
// paper's throughput metric.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPI returns aggregate cycles per instruction over busy core cycles,
// the metric of Figures 3, 6 and 7.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Breakdown.Busy()) / float64(r.Instructions)
}

// CPIComponent returns the CPI contribution of the given stall kind.
func (r Result) CPIComponent(k StallKind) float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Breakdown.Cycles[k]) / float64(r.Instructions)
}

// ResponseTime returns the completion cycle of thread 0, the unsaturated
// response-time metric (0 when it did not finish).
func (r Result) ResponseTime() uint64 {
	if len(r.ThreadDone) == 0 {
		return 0
	}
	return r.ThreadDone[0]
}
