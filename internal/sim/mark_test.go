package sim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// markedScan is streamScan work bracketed by span markers around every
// iteration when marked is set; the workload itself is identical.
func markedScan(n int, marked bool) func(r *trace.Recorder) {
	next := uint64(0)
	id := uint64(0)
	return func(r *trace.Recorder) {
		for i := 0; i < n; i++ {
			if marked {
				id++
				r.Mark(id, true)
			}
			r.Exec(testSeg, 8)
			r.Load(mem.HeapBase+mem.Addr(next), false)
			next += mem.LineSize
			if marked {
				r.Mark(id, false)
			}
		}
	}
}

// TestMarksAreCycleFree runs the same reference stream with and without
// span markers: marks must consume no issue slots, no instructions, and
// no cycles, so both runs retire in the identical cycle count.
func TestMarksAreCycleFree(t *testing.T) {
	for _, camp := range []Camp{FatCamp, LeanCamp} {
		run := func(marked bool) Result {
			ch := NewChip(testConfig(camp, 1))
			ch.AddThread(feed(1, markedScan(2000, marked)))
			return ch.Run(10 << 20)
		}
		plain, traced := run(false), run(true)
		if plain.Cycles != traced.Cycles {
			t.Errorf("%v: marks cost cycles: %d plain vs %d marked", camp, plain.Cycles, traced.Cycles)
		}
		if plain.Instructions != traced.Instructions {
			t.Errorf("%v: marks counted as instructions: %d vs %d", camp, plain.Instructions, traced.Instructions)
		}
	}
}

// TestMarkHandlerStampsCycles checks the retire-path callback: begin/end
// pairs arrive in stream order with non-decreasing cycle stamps bounded
// by the run's final cycle, and carry the emitting thread's id.
func TestMarkHandlerStampsCycles(t *testing.T) {
	ch := NewChip(testConfig(FatCamp, 1))
	type ev struct {
		thread int
		id     uint64
		begin  bool
		cycle  uint64
	}
	var got []ev
	ch.SetMarkHandler(func(thread int, id uint64, begin bool, cycle uint64) {
		got = append(got, ev{thread, id, begin, cycle})
	})
	ch.AddThread(feed(1, markedScan(50, true)))
	res := ch.Run(10 << 20)
	if len(got) != 100 {
		t.Fatalf("handler saw %d marks, want 100", len(got))
	}
	var last uint64
	for i, e := range got {
		if e.thread != 0 {
			t.Fatalf("mark %d on thread %d, want 0", i, e.thread)
		}
		wantID, wantBegin := uint64(i/2+1), i%2 == 0
		if e.id != wantID || e.begin != wantBegin {
			t.Fatalf("mark %d = id %d begin %v, want id %d begin %v", i, e.id, e.begin, wantID, wantBegin)
		}
		if e.cycle < last || e.cycle > res.Cycles {
			t.Fatalf("mark %d stamped at cycle %d (prev %d, run end %d)", i, e.cycle, last, res.Cycles)
		}
		last = e.cycle
	}
}

// TestWarmDeliversMarks checks that functional warming retires markers
// (at cycle 0) without spending its reference budget on them.
func TestWarmDeliversMarks(t *testing.T) {
	ch := NewChip(testConfig(FatCamp, 1))
	var marks int
	ch.SetMarkHandler(func(thread int, id uint64, begin bool, cycle uint64) {
		if cycle != 0 {
			t.Errorf("warm-phase mark stamped at cycle %d, want 0", cycle)
		}
		marks++
	})
	ch.AddThread(feed(1, markedScan(50, true)))
	ch.Warm(1 << 20)
	if marks != 100 {
		t.Errorf("warming delivered %d marks, want 100", marks)
	}
}
