package sim

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// Thread is one software thread: a trace stream plus consumption state.
// The OS-like scheduler multiplexes threads onto hardware contexts.
type Thread struct {
	ID     int
	stream *trace.Stream
	chip   *Chip

	// Buffered chunks pulled from the stream. The chip's pump fills these
	// opportunistically across all threads, so one producer blocked on an
	// engine lock held by another (whose channel is full) can never wedge
	// the simulation.
	chunks [][]trace.Ref
	cur    []trace.Ref
	pos    int

	// Pushback buffer: a ref peeked but not yet issued.
	pending    trace.Ref
	hasPending bool

	// Current Exec record being drained.
	execLine mem.Addr
	execLeft int

	// Branch model: instructions until the next charged mispredict.
	untilBranch int

	done     bool
	consumed uint64
}

func newThread(id int, s *trace.Stream, ch *Chip, branchEvery int) *Thread {
	return &Thread{ID: id, stream: s, chip: ch, untilBranch: branchEvery}
}

// next returns the next trace record, honoring the pushback buffer.
func (t *Thread) next() (trace.Ref, bool) {
	if t.hasPending {
		t.hasPending = false
		return t.pending, true
	}
	for t.pos == len(t.cur) {
		if len(t.chunks) > 0 {
			t.cur = t.chunks[0]
			t.chunks = t.chunks[1:]
			t.pos = 0
			continue
		}
		if t.done {
			return 0, false
		}
		if !t.chip.pump(t) {
			t.done = true
			return 0, false
		}
	}
	r := t.cur[t.pos]
	t.pos++
	t.consumed++
	return r, true
}

// pushback returns an unissued record to the front of the stream.
func (t *Thread) pushback(r trace.Ref) {
	t.pending = r
	t.hasPending = true
}

// finished reports whether the thread's trace ended and all buffered work
// was issued.
func (t *Thread) finished() bool {
	return t.done && !t.hasPending && t.execLeft == 0
}

// hwctx is one hardware context: a run queue of software threads plus
// blocking state. FC cores have one context; LC cores have several.
type hwctx struct {
	threads []*Thread // local run queue; threads[cur] is running
	cur     int

	blockedUntil uint64
	blockCause   StallKind

	nextSwitch uint64 // cycle of the next quantum expiry
}

// runningThread returns the thread currently bound to the context.
func (c *hwctx) runningThread() *Thread {
	if len(c.threads) == 0 {
		return nil
	}
	return c.threads[c.cur]
}

// removeFinished drops completed threads from the run queue, recording
// their completion time with the chip.
func (c *hwctx) removeFinished(now uint64, ch *Chip) {
	for i := 0; i < len(c.threads); {
		t := c.threads[i]
		if t.finished() {
			ch.threadFinished(t, now)
			c.threads = append(c.threads[:i], c.threads[i+1:]...)
			if c.cur >= len(c.threads) {
				c.cur = 0
			}
			continue
		}
		i++
	}
}

// maybeSwitch rotates the run queue on quantum expiry and returns the
// context-switch penalty to charge, if any.
func (c *hwctx) maybeSwitch(now, quantum uint64, cost int) bool {
	if len(c.threads) < 2 {
		return false
	}
	if now < c.nextSwitch {
		return false
	}
	c.cur = (c.cur + 1) % len(c.threads)
	c.nextSwitch = now + quantum
	c.blockedUntil = now + uint64(cost)
	c.blockCause = KindOther
	return true
}

// block parks the context until cycle until, charging cause.
func (c *hwctx) block(until uint64, cause StallKind) {
	if until > c.blockedUntil {
		c.blockedUntil = until
		c.blockCause = cause
	}
}

// runnable reports whether the context can issue at cycle now.
func (c *hwctx) runnable(now uint64) bool {
	return len(c.threads) > 0 && now >= c.blockedUntil
}
