package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestFCWindowLimitsRunahead(t *testing.T) {
	// With a tiny window, FC cannot overlap distant misses; a large
	// window recovers the overlap. Independent loads, big stride.
	run := func(window int) uint64 {
		cfg := testConfig(FatCamp, 1)
		cfg.Window = window
		ch := NewChip(cfg)
		ch.AddThread(feed(1, streamScan(4000)))
		res := ch.Run(20 << 20)
		return res.ThreadDone[0]
	}
	small, big := run(16), run(1024)
	if big >= small {
		t.Fatalf("window 1024 (%d cycles) not faster than window 16 (%d)", big, small)
	}
}

func TestFCMLPCapsOverlap(t *testing.T) {
	run := func(mlp int) uint64 {
		cfg := testConfig(FatCamp, 1)
		cfg.MLP = mlp
		cfg.Window = 4096
		ch := NewChip(cfg)
		ch.AddThread(feed(1, streamScan(4000)))
		return ch.Run(20 << 20).ThreadDone[0]
	}
	one, eight := run(1), run(8)
	if ratio := float64(one) / float64(eight); ratio < 2 {
		t.Fatalf("MLP 8 speedup over MLP 1 = %.2f, want >= 2", ratio)
	}
}

func TestFCContextSwitchClearsDependence(t *testing.T) {
	// Two threads timesliced on one FC core: switching must not leak one
	// thread's outstanding-miss state into the other (no deadlock, both
	// finish).
	cfg := testConfig(FatCamp, 1)
	cfg.Quantum = 500
	ch := NewChip(cfg)
	ch.AddThread(feed(3, pointerChase(8192, 500)))
	ch.AddThread(feed(3, pointerChase(16384, 500)))
	res := ch.Run(50 << 20)
	for i, d := range res.ThreadDone {
		if d == 0 {
			t.Fatalf("thread %d never finished", i)
		}
	}
}

func TestLCRoundRobinFairness(t *testing.T) {
	// Four compute-only threads on one LC core must progress near-equally.
	ch := NewChip(testConfig(LeanCamp, 1))
	for i := 0; i < 4; i++ {
		ch.AddThread(feed(1000000, computeOnly))
	}
	ch.Run(100000)
	var lo, hi uint64 = ^uint64(0), 0
	for i := 0; i < 4; i++ {
		p := ch.ThreadProgress(i)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.2 {
		t.Fatalf("unfair interleave: min=%d max=%d", lo, hi)
	}
}

func TestSingleLCContextExposesFullLatency(t *testing.T) {
	// CtxPerCore=1 turns LC into a blocking scalar core: runtime should
	// be roughly misses*latency + issue time.
	cfg := testConfig(LeanCamp, 1)
	cfg.CtxPerCore = 1
	ch := NewChip(cfg)
	const n = 500
	ch.AddThread(feed(1, streamScan(n)))
	res := ch.Run(10 << 20)
	got := res.ThreadDone[0]
	memLat := uint64(ch.Config().Hier.WithDefaults().MemLat)
	min := n * memLat // every line misses to memory
	if got < min {
		t.Fatalf("finished in %d cycles, below the %d cycle memory bound", got, min)
	}
	if got > min*3/2 {
		t.Fatalf("finished in %d cycles; expected near %d for a blocking core", got, min)
	}
}

func TestBranchPenaltyScalesOtherStalls(t *testing.T) {
	run := func(penalty int) uint64 {
		cfg := testConfig(FatCamp, 1)
		cfg.BranchPenalty = penalty
		ch := NewChip(cfg)
		ch.AddThread(feed(3000, computeOnly))
		return ch.Run(1 << 22).Breakdown.Other()
	}
	if lo, hi := run(2), run(30); hi <= lo {
		t.Fatalf("other stalls with penalty 30 (%d) not above penalty 2 (%d)", hi, lo)
	}
}

func TestWarmThenRunContinuesStream(t *testing.T) {
	// Warming must consume the stream prefix: total consumption equals
	// warm + timed without loss or duplication.
	ch := NewChip(testConfig(FatCamp, 1))
	ch.AddThread(feed(100, computeOnly)) // 100*4 exec records
	ch.Warm(100)
	if p := ch.ThreadProgress(0); p != 100 {
		t.Fatalf("warm consumed %d refs, want 100", p)
	}
	res := ch.Run(1 << 22)
	if res.ThreadDone[0] == 0 {
		t.Fatal("did not finish after warming")
	}
	if p := ch.ThreadProgress(0); p != 400 {
		t.Fatalf("total consumed %d, want 400", p)
	}
}

func TestRunStopsAtCycleLimit(t *testing.T) {
	ch := NewChip(testConfig(LeanCamp, 2))
	ch.AddThread(feed(1<<30, computeOnly))
	res := ch.Run(5000)
	if res.Cycles != 5000 {
		t.Fatalf("ran %d cycles, want exactly 5000", res.Cycles)
	}
}

func TestResultMetrics(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.CPI() != 0 {
		t.Fatal("zero result should have zero metrics")
	}
	r.Cycles = 100
	r.Instructions = 250
	r.Breakdown.Cycles[KindComp] = 100
	if r.IPC() != 2.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.CPI() != 0.4 {
		t.Fatalf("CPI = %v", r.CPI())
	}
	if r.CPIComponent(KindComp) != 0.4 {
		t.Fatalf("CPIComponent = %v", r.CPIComponent(KindComp))
	}
}

func TestBreakdownFracProperty(t *testing.T) {
	f := func(vals [8]uint16) bool {
		var b Breakdown
		for i, v := range vals {
			if i < int(numKinds) {
				b.Cycles[i] = uint64(v)
			}
		}
		var sum float64
		for k := StallKind(0); k < numKinds; k++ {
			if k != KindIdle {
				sum += b.Frac(k)
			}
		}
		return b.Busy() == 0 || (sum > 0.999 && sum < 1.001)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddThreadAtPlacement(t *testing.T) {
	// Threads placed on contexts 0 and Cores land on the same core for
	// LC chips (interleaved placement order).
	cfg := testConfig(LeanCamp, 4)
	ch := NewChip(cfg)
	a := ch.AddThreadAt(feed(10, computeOnly), 0)
	b := ch.AddThreadAt(feed(10, computeOnly), 4)
	c := ch.AddThreadAt(feed(10, computeOnly), 1)
	if ch.threadCore[a] != ch.threadCore[b] {
		t.Fatalf("contexts 0 and 4 on cores %d and %d, want same",
			ch.threadCore[a], ch.threadCore[b])
	}
	if ch.threadCore[a] == ch.threadCore[c] {
		t.Fatal("contexts 0 and 1 on the same core, want different")
	}
}

func TestSharedL2VisibleAcrossCores(t *testing.T) {
	// A line brought in by core 0's thread must be an L2 hit for core 1's
	// thread (CMP data sharing).
	ch := NewChip(testConfig(FatCamp, 2))
	// A 256KB region: too big for a 64KB L1D, fits the 1MB shared L2, so
	// each core's L1 capacity misses become shared-L2 hits.
	gen := func(r *trace.Recorder) {
		for i := 0; i < 4096; i++ {
			r.Exec(testSeg, 8)
			r.Load(mem.HeapBase+mem.Addr(i*64), false)
		}
	}
	ch.AddThread(feed(1000, gen)) // core 0
	ch.AddThread(feed(1000, gen)) // core 1, same lines
	ch.Warm(20000)
	res := ch.Run(100000)
	st := res.Cache
	if st.L2Hits == 0 {
		t.Fatal("no shared-L2 hits between cores")
	}
}

func TestHierarchyConfigPropagated(t *testing.T) {
	cfg := Config{
		Camp:  FatCamp,
		Cores: 3,
		Hier:  cache.Config{L2Size: 2 << 20, L2Lat: 9, SharedL2: true},
	}
	ch := NewChip(cfg)
	if got := ch.Hierarchy().Config().Cores; got != 3 {
		t.Fatalf("hierarchy cores = %d", got)
	}
	if got := ch.Hierarchy().Config().L2Lat; got != 9 {
		t.Fatalf("hierarchy L2Lat = %d", got)
	}
}

func TestCampString(t *testing.T) {
	if FatCamp.String() != "FC" || LeanCamp.String() != "LC" {
		t.Fatal("camp strings wrong")
	}
}
