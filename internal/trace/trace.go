// Package trace defines the memory-reference trace format that connects the
// database engine to the CMP timing simulator.
//
// Engine worker threads run real query and transaction code against data in
// the simulated address space and emit a compact stream of references:
// instruction execution at synthetic code addresses, and data loads/stores
// at the addresses actually touched. The simulator consumes one stream per
// software thread. Streams are produced through bounded channels so an
// arbitrarily long workload never materializes an unbounded trace.
package trace

import (
	"fmt"
	"time"

	"repro/internal/mem"
)

// Kind distinguishes the three reference types.
type Kind uint8

// Reference kinds.
const (
	// Exec represents Count() instructions fetched from the code line at
	// Addr(). The simulator charges issue bandwidth and instruction-cache
	// behaviour for them.
	Exec Kind = iota
	// Load is a data read of the line containing Addr. Dep() reports
	// whether it depends on the immediately preceding load (pointer
	// chasing), which serializes it behind that load in the core model.
	Load
	// Store is a data write of the line containing Addr.
	Store
	// Mark is a zero-cost observability marker: the begin or end of a
	// span (internal/obs) flowing through the stream so the simulator
	// can stamp it with the simulated cycle at which the surrounding
	// work actually executed. Marks consume no issue slots, no
	// instructions, and no warming budget.
	Mark
	// Prefetch is a non-binding software prefetch of the line containing
	// Addr: it warms the cache model ahead of a dependent use but retires
	// without an issue slot, never blocks the core, and never counts as a
	// demand miss. Prefetch shares the Load kind bits and is flagged by a
	// bit Load records leave clear, so the two-bit packing is untouched.
	Prefetch
)

func (k Kind) String() string {
	switch k {
	case Exec:
		return "exec"
	case Load:
		return "load"
	case Store:
		return "store"
	case Mark:
		return "mark"
	case Prefetch:
		return "prefetch"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Ref is one trace record packed into 64 bits:
//
//	bits 0..1   kind
//	bit  2      dependence flag (loads)
//	bits 3..15  instruction count (Exec records)
//	bits 16..63 address bits 0..47
type Ref uint64

// MaxExecCount is the largest instruction count one Exec record can carry.
const MaxExecCount = 1<<13 - 1

const addrMask = 1<<48 - 1

// prefetchBit distinguishes Prefetch from Load records: Load leaves bits
// 3..15 clear, so bit 3 on a Load-kind record is free to carry the flag.
const prefetchBit = 1 << 3

// MakeExec builds an Exec record for n instructions at code address a.
func MakeExec(a mem.Addr, n int) Ref {
	if n <= 0 || n > MaxExecCount {
		panic(fmt.Sprintf("trace: bad exec count %d", n))
	}
	return Ref(uint64(Exec) | uint64(n)<<3 | uint64(a&addrMask)<<16)
}

// MakeLoad builds a Load record; dep marks it dependent on the previous load.
func MakeLoad(a mem.Addr, dep bool) Ref {
	r := Ref(uint64(Load) | uint64(a&addrMask)<<16)
	if dep {
		r |= 1 << 2
	}
	return r
}

// MakePrefetch builds a Prefetch record for the line containing a.
func MakePrefetch(a mem.Addr) Ref {
	return Ref(uint64(Load) | prefetchBit | uint64(a&addrMask)<<16)
}

// MakeStore builds a Store record.
func MakeStore(a mem.Addr) Ref {
	return Ref(uint64(Store) | uint64(a&addrMask)<<16)
}

// maxMarkID bounds span ids to the 61 bits a Mark record can carry.
const maxMarkID = 1<<61 - 1

// MakeMark builds a span marker: begin or end of span id. Marks reuse
// the kind bits and pack the id above the begin flag:
//
//	bits 0..1  kind (Mark)
//	bit  2     begin flag
//	bits 3..63 span id
func MakeMark(id uint64, begin bool) Ref {
	if id == 0 || id > maxMarkID {
		panic(fmt.Sprintf("trace: bad mark id %d", id))
	}
	r := Ref(uint64(Mark) | id<<3)
	if begin {
		r |= 1 << 2
	}
	return r
}

// MarkID returns the span id of a Mark record.
func (r Ref) MarkID() uint64 { return uint64(r >> 3) }

// MarkBegin reports whether a Mark record opens its span.
func (r Ref) MarkBegin() bool { return r&(1<<2) != 0 }

// Kind returns the record kind.
func (r Ref) Kind() Kind {
	k := Kind(r & 3)
	if k == Load && r&prefetchBit != 0 {
		return Prefetch
	}
	return k
}

// Dep reports the dependence flag.
func (r Ref) Dep() bool { return r&(1<<2) != 0 }

// Count returns the instruction count of an Exec record.
func (r Ref) Count() int { return int(r >> 3 & MaxExecCount) }

// Addr returns the reference address.
func (r Ref) Addr() mem.Addr { return mem.Addr(r >> 16) }

func (r Ref) String() string {
	switch r.Kind() {
	case Exec:
		return fmt.Sprintf("exec %d @%#x", r.Count(), uint64(r.Addr()))
	case Load:
		if r.Dep() {
			return fmt.Sprintf("load* %#x", uint64(r.Addr()))
		}
		return fmt.Sprintf("load %#x", uint64(r.Addr()))
	case Mark:
		if r.MarkBegin() {
			return fmt.Sprintf("mark begin %d", r.MarkID())
		}
		return fmt.Sprintf("mark end %d", r.MarkID())
	case Prefetch:
		return fmt.Sprintf("prefetch %#x", uint64(r.Addr()))
	default:
		return fmt.Sprintf("store %#x", uint64(r.Addr()))
	}
}

// chunkSize is the number of records moved between producer and consumer
// at a time; it amortizes channel synchronization.
const chunkSize = 4096

// instrPerLine is how many 4-byte instructions fit in one 64-byte code line.
const instrPerLine = mem.LineSize / 4

// Pipe creates a connected Recorder/Stream pair. The engine thread writes
// through the Recorder; the simulator reads the Stream. Closing the stream
// (from the consumer side) makes further recording a no-op and unblocks the
// producer; closing the recorder (producer side) ends the stream.
func Pipe() (*Recorder, *Stream) {
	return PipeSized(chunkSize, 4)
}

// PipeSized creates a pipe whose producer can run at most about
// chunk*(depth+1) references ahead of the consumer. Experiments whose
// WORK DIVISION depends on simulated pacing — e.g. morsel claiming
// between parallel workers — use a tight pipe so a host-fast thread
// cannot grab the whole table before its simulated peers take a step;
// the default slack (Pipe) only amortizes channel synchronization and is
// fine when the trace dwarfs it.
func PipeSized(chunk, depth int) (*Recorder, *Stream) {
	if chunk <= 0 || depth <= 0 {
		panic(fmt.Sprintf("trace: bad pipe geometry %d x %d", chunk, depth))
	}
	ch := make(chan []Ref, depth)
	stop := make(chan struct{})
	r := &Recorder{ch: ch, stop: stop, chunk: chunk, buf: make([]Ref, 0, chunk)}
	s := &Stream{ch: ch, stop: stop}
	return r, s
}

// Recorder is the producer half of a trace pipe. It is used by exactly one
// engine thread; it is not safe for concurrent use. A nil Recorder is valid
// and discards everything, so engine code can run untraced at full speed.
type Recorder struct {
	ch      chan []Ref
	stop    chan struct{}
	chunk   int
	buf     []Ref
	stopped bool

	// Counters for the analytical validation model (Figure 3).
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// Prefetches counts Prefetch records; they are hints, not workload,
	// so they stay out of the Instructions/Loads model counters.
	Prefetches uint64
}

// Stopped reports whether the consumer has closed the stream; workload
// drivers poll it between transactions or batches to terminate promptly.
func (r *Recorder) Stopped() bool {
	if r == nil {
		return true
	}
	if r.stopped {
		return true
	}
	select {
	case <-r.stop:
		r.stopped = true
		return true
	default:
		return false
	}
}

func (r *Recorder) emit(ref Ref) {
	r.buf = append(r.buf, ref)
	if len(r.buf) == r.chunk {
		r.flush()
	}
}

func (r *Recorder) flush() {
	if len(r.buf) == 0 {
		return
	}
	chunk := r.buf
	r.buf = make([]Ref, 0, r.chunk)
	select {
	case r.ch <- chunk:
	case <-r.stop:
		r.stopped = true
	}
}

// Exec records the execution of n instructions of the code segment seg,
// walking the segment's cache lines from its start (one pass through a
// loop body or call path), wrapping if n exceeds the segment.
func (r *Recorder) Exec(seg mem.CodeSeg, n int) {
	if r == nil || r.stopped || n <= 0 {
		return
	}
	r.Instructions += uint64(n)
	lines := seg.Size / mem.LineSize
	if lines == 0 {
		lines = 1
	}
	line := 0
	for n > 0 {
		k := instrPerLine
		if n < k {
			k = n
		}
		r.emit(MakeExec(seg.Base+mem.Addr(line*mem.LineSize), k))
		n -= k
		line++
		if line == lines {
			line = 0
		}
	}
}

// ExecAt records n instructions at byte offset off into seg, for callers
// that model distinct paths within one component's footprint.
func (r *Recorder) ExecAt(seg mem.CodeSeg, off, n int) {
	if r == nil || r.stopped || n <= 0 {
		return
	}
	r.Instructions += uint64(n)
	lines := seg.Size / mem.LineSize
	if lines == 0 {
		lines = 1
	}
	line := (off / mem.LineSize) % lines
	for n > 0 {
		k := instrPerLine
		if n < k {
			k = n
		}
		r.emit(MakeExec(seg.Base+mem.Addr(line*mem.LineSize), k))
		n -= k
		line++
		if line == lines {
			line = 0
		}
	}
}

// Load records a data read at a; dep marks it dependent on the previous load.
func (r *Recorder) Load(a mem.Addr, dep bool) {
	if r == nil || r.stopped {
		return
	}
	r.Loads++
	r.emit(MakeLoad(a, dep))
}

// LoadRange records reads covering n bytes starting at a (one per line).
func (r *Recorder) LoadRange(a mem.Addr, n int) {
	if r == nil || r.stopped || n <= 0 {
		return
	}
	first, last := a.Line(), (a + mem.Addr(n) - 1).Line()
	for l := first; l <= last; l += mem.LineSize {
		r.Loads++
		r.emit(MakeLoad(l, false))
	}
}

// LoadRangeDep records reads covering n bytes starting at a, with the
// first line dependent on the preceding load — the pattern of an access
// whose base address was just loaded (slot directory → tuple body).
func (r *Recorder) LoadRangeDep(a mem.Addr, n int) {
	if r == nil || r.stopped || n <= 0 {
		return
	}
	first, last := a.Line(), (a + mem.Addr(n) - 1).Line()
	dep := true
	for l := first; l <= last; l += mem.LineSize {
		r.Loads++
		r.emit(MakeLoad(l, dep))
		dep = false
	}
}

// Prefetch records a non-binding software prefetch of the line holding a.
// The simulator warms the cache model with it but charges no issue slot:
// a prefetched line that arrives before its dependent load turns that
// load's L2-hit (or memory) stall into an L1 hit.
func (r *Recorder) Prefetch(a mem.Addr) {
	if r == nil || r.stopped {
		return
	}
	r.Prefetches++
	r.emit(MakePrefetch(a))
}

// Mark records a span begin/end marker. Marks do not count toward the
// analytical instruction/load/store counters — they are observability
// metadata, not workload.
func (r *Recorder) Mark(id uint64, begin bool) {
	if r == nil || r.stopped {
		return
	}
	r.emit(MakeMark(id, begin))
}

// Store records a data write at a.
func (r *Recorder) Store(a mem.Addr) {
	if r == nil || r.stopped {
		return
	}
	r.Stores++
	r.emit(MakeStore(a))
}

// StoreRange records writes covering n bytes starting at a (one per line).
func (r *Recorder) StoreRange(a mem.Addr, n int) {
	if r == nil || r.stopped || n <= 0 {
		return
	}
	first, last := a.Line(), (a + mem.Addr(n) - 1).Line()
	for l := first; l <= last; l += mem.LineSize {
		r.Stores++
		r.emit(MakeStore(l))
	}
}

// Close flushes buffered records and ends the stream. The producer must not
// record after Close.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	if !r.stopped {
		r.flush()
	}
	close(r.ch)
}

// Stream is the consumer half of a trace pipe, read by the simulator.
type Stream struct {
	ch     chan []Ref
	stop   chan struct{}
	cur    []Ref
	pos    int
	closed bool
	ended  bool

	// Consumed counts records delivered by Next.
	Consumed uint64
}

// Next returns the next record, or ok=false when the producer has closed
// the pipe and all records were consumed.
func (s *Stream) Next() (Ref, bool) {
	if s.pos == len(s.cur) {
		chunk, ok, _ := s.RecvChunk(-1)
		if !ok {
			return 0, false
		}
		s.cur, s.pos = chunk, 0
	}
	ref := s.cur[s.pos]
	s.pos++
	s.Consumed++
	return ref, true
}

// RecvChunk receives one whole chunk. wait < 0 blocks until a chunk or
// close; wait == 0 polls; wait > 0 waits at most that duration. ended
// reports producer close. Consumers that multiplex many streams (the
// simulator) use the polling mode so a producer stalled on an engine lock
// held by another producer can never wedge them.
func (s *Stream) RecvChunk(wait time.Duration) (chunk []Ref, ok, ended bool) {
	if s.ended {
		return nil, false, true
	}
	switch {
	case wait < 0:
		c, okc := <-s.ch
		if !okc {
			s.ended = true
			return nil, false, true
		}
		return c, true, false
	case wait == 0:
		select {
		case c, okc := <-s.ch:
			if !okc {
				s.ended = true
				return nil, false, true
			}
			return c, true, false
		default:
			return nil, false, false
		}
	default:
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case c, okc := <-s.ch:
			if !okc {
				s.ended = true
				return nil, false, true
			}
			return c, true, false
		case <-t.C:
			return nil, false, false
		}
	}
}

// Stop tells the producer to cease recording. The consumer should then
// drain remaining chunks (Next until false) or simply abandon the stream;
// a blocked producer is released either way.
func (s *Stream) Stop() {
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
}
