package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMarkEncoding(t *testing.T) {
	b := MakeMark(42, true)
	if b.Kind() != Mark || b.MarkID() != 42 || !b.MarkBegin() {
		t.Errorf("begin decode: kind=%v id=%d begin=%v", b.Kind(), b.MarkID(), b.MarkBegin())
	}
	e := MakeMark(maxMarkID, false)
	if e.Kind() != Mark || e.MarkID() != maxMarkID || e.MarkBegin() {
		t.Errorf("end decode: kind=%v id=%d begin=%v", e.Kind(), e.MarkID(), e.MarkBegin())
	}
	if !strings.Contains(b.String(), "begin 42") || !strings.Contains(e.String(), "end") {
		t.Errorf("mark String: %q / %q", b, e)
	}
}

func TestMarkEncodingProperty(t *testing.T) {
	f := func(id uint64, begin bool) bool {
		id = id%maxMarkID + 1
		r := MakeMark(id, begin)
		return r.Kind() == Mark && r.MarkID() == id && r.MarkBegin() == begin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkZeroIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mark id 0")
		}
	}()
	MakeMark(0, true)
}

// TestMarkSkipsCounters checks that marks are observability metadata, not
// workload: they travel through the pipe but never count as instructions,
// loads, or stores.
func TestMarkSkipsCounters(t *testing.T) {
	r, s := Pipe()
	go func() {
		r.Mark(7, true)
		r.Load(0x1000, false)
		r.Mark(7, false)
		r.Close()
	}()
	var marks, others int
	for {
		ref, ok := s.Next()
		if !ok {
			break
		}
		if ref.Kind() == Mark {
			marks++
		} else {
			others++
		}
	}
	if marks != 2 || others != 1 {
		t.Fatalf("consumed %d marks / %d other refs, want 2 / 1", marks, others)
	}
	if r.Instructions != 0 || r.Loads != 1 || r.Stores != 0 {
		t.Errorf("counters %d/%d/%d, want 0/1/0 — marks must not count", r.Instructions, r.Loads, r.Stores)
	}
}
