package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestRefEncoding(t *testing.T) {
	e := MakeExec(0x1234_5678_9ABC&^63, 100)
	if e.Kind() != Exec || e.Count() != 100 {
		t.Errorf("exec decode: kind=%v count=%d", e.Kind(), e.Count())
	}
	l := MakeLoad(0xDEAD_BEEF, true)
	if l.Kind() != Load || !l.Dep() || l.Addr() != 0xDEAD_BEEF {
		t.Errorf("load decode: %v dep=%v addr=%#x", l.Kind(), l.Dep(), uint64(l.Addr()))
	}
	s := MakeStore(0xCAFE)
	if s.Kind() != Store || s.Addr() != 0xCAFE {
		t.Errorf("store decode: %v addr=%#x", s.Kind(), uint64(s.Addr()))
	}
}

func TestRefEncodingProperty(t *testing.T) {
	f := func(a uint64, dep bool) bool {
		a &= 1<<48 - 1
		r := MakeLoad(mem.Addr(a), dep)
		return r.Kind() == Load && r.Addr() == mem.Addr(a) && r.Dep() == dep
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(n uint16) bool {
		c := int(n)%MaxExecCount + 1
		r := MakeExec(0x4000, c)
		return r.Kind() == Exec && r.Count() == c && !r.Dep()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestExecCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for count over MaxExecCount")
		}
	}()
	MakeExec(0, MaxExecCount+1)
}

func TestPipeRoundTrip(t *testing.T) {
	r, s := Pipe()
	seg := mem.CodeSeg{Base: mem.CodeBase, Size: 128} // 2 lines, 32 instructions
	go func() {
		r.Exec(seg, 20) // 16 on line 0, 4 on line 1
		r.Load(0x1000, false)
		r.Load(0x1040, true)
		r.Store(0x2000)
		r.Close()
	}()
	var got []Ref
	for {
		ref, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ref)
	}
	want := []Ref{
		MakeExec(seg.Base, 16),
		MakeExec(seg.Base+64, 4),
		MakeLoad(0x1000, false),
		MakeLoad(0x1040, true),
		MakeStore(0x2000),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d refs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExecWrapsSegment(t *testing.T) {
	r, s := Pipe()
	seg := mem.CodeSeg{Base: 0x8000, Size: 64} // one line, 16 instructions
	go func() {
		r.Exec(seg, 40) // must wrap: 16+16+8 all on the same line
		r.Close()
	}()
	var total int
	for {
		ref, ok := s.Next()
		if !ok {
			break
		}
		if ref.Addr() != 0x8000 {
			t.Errorf("wrapped exec at %#x, want %#x", uint64(ref.Addr()), 0x8000)
		}
		total += ref.Count()
	}
	if total != 40 {
		t.Fatalf("total instructions %d, want 40", total)
	}
}

func TestRangeHelpers(t *testing.T) {
	r, s := Pipe()
	go func() {
		r.LoadRange(0x100F, 64+2) // spans lines 0x1000, 0x1040
		r.StoreRange(0x2000, 64)  // exactly one line
		r.Close()
	}()
	var loads, stores int
	for {
		ref, ok := s.Next()
		if !ok {
			break
		}
		switch ref.Kind() {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	if loads != 2 || stores != 1 {
		t.Fatalf("loads=%d stores=%d, want 2,1", loads, stores)
	}
}

func TestStopUnblocksProducer(t *testing.T) {
	r, s := Pipe()
	produced := make(chan struct{})
	go func() {
		// Emit far more than the channel can buffer.
		for i := 0; i < 100*chunkSize; i++ {
			r.Load(mem.Addr(i*64), false)
			if r.Stopped() {
				break
			}
		}
		r.Close()
		close(produced)
	}()
	// Consume a little, then stop.
	for i := 0; i < 10; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	s.Stop()
	<-produced // must not deadlock
	if !r.Stopped() {
		t.Error("recorder not stopped after Stop")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Exec(mem.CodeSeg{Base: 0, Size: 64}, 5)
	r.Load(0, false)
	r.Store(0)
	r.Close()
	if !r.Stopped() {
		t.Error("nil recorder should report stopped")
	}
}

func TestRecorderCounters(t *testing.T) {
	r, s := Pipe()
	go func() {
		r.Exec(mem.CodeSeg{Base: 0x4000, Size: 64}, 30)
		r.Load(0x1, false)
		r.Load(0x2, false)
		r.Store(0x3)
		r.Close()
	}()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if r.Instructions != 30 || r.Loads != 2 || r.Stores != 1 {
		t.Fatalf("counters = %d/%d/%d, want 30/2/1", r.Instructions, r.Loads, r.Stores)
	}
}

func TestStreamConsumedCount(t *testing.T) {
	r, s := Pipe()
	go func() {
		for i := 0; i < 100; i++ {
			r.Load(mem.Addr(i), false)
		}
		r.Close()
	}()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if s.Consumed != 100 {
		t.Fatalf("Consumed = %d, want 100", s.Consumed)
	}
}
