package server

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server/api"
)

// jobStore tracks submitted executions. IDs are a plain counter —
// "job-1", "job-2" — so runs are reproducible and tests can predict
// them; finished jobs are evicted oldest-first past cap so a long-lived
// server does not grow without bound. Span traces of traced runs are
// kept next to the job (served on GET /v1/jobs/{id}/trace, not embedded
// in the job body) and evicted with it.
type jobStore struct {
	mu      sync.Mutex
	next    int
	cap     int
	jobs    map[string]*api.Job
	created map[string]time.Time
	traces  map[string][]obs.Run
	order   []string // creation order, for eviction
}

func newJobStore(cap int) *jobStore {
	if cap <= 0 {
		cap = 256
	}
	return &jobStore{
		cap:     cap,
		jobs:    make(map[string]*api.Job),
		created: make(map[string]time.Time),
		traces:  make(map[string][]obs.Run),
	}
}

// create registers a new job in the queued state and returns a copy.
func (s *jobStore) create(tenant, mode string) api.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	j := &api.Job{
		ID:     fmt.Sprintf("job-%d", s.next),
		Tenant: tenant, Mode: mode, Status: "queued",
	}
	s.jobs[j.ID] = j
	s.created[j.ID] = time.Now()
	s.order = append(s.order, j.ID)
	s.evictLocked()
	return *j
}

// evictLocked drops the oldest finished jobs while over capacity.
// Queued and running jobs are never evicted: their completion still has
// to land somewhere.
func (s *jobStore) evictLocked() {
	for len(s.jobs) > s.cap {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j != nil && (j.Status == "done" || j.Status == "error") {
				delete(s.jobs, id)
				delete(s.created, id)
				delete(s.traces, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; allow temporary overshoot
		}
	}
}

// setRunning marks the job as executing and returns how long it sat
// queued since creation.
func (s *jobStore) setRunning(id string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		j.Status = "running"
	}
	if t, ok := s.created[id]; ok {
		return time.Since(t)
	}
	return 0
}

// finish records the job's outcome and keeps any collected span traces.
func (s *jobStore) finish(id string, res *api.Result, traces []obs.Run, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return
	}
	if err != nil {
		j.Status, j.Error = "error", err.Error()
		return
	}
	j.Status, j.Result = "done", res
	if len(traces) > 0 {
		s.traces[id] = traces
	}
}

// get returns a copy of the job, if it exists.
func (s *jobStore) get(id string) (api.Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return api.Job{}, false
	}
	return *j, true
}

// getTraces returns the span runs collected for a finished traced job.
func (s *jobStore) getTraces(id string) []obs.Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces[id]
}
