// Package server puts an HTTP/JSON surface on the unified execution
// API: POST /v1/query and POST /v1/txn run one core.Request each
// (synchronously, or as a pollable job with "async": true), with
// per-tenant admission control in front, Prometheus-style counters on
// GET /metrics, and a graceful drain that refuses new work while
// letting admitted executions finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server/api"
)

// Config shapes one server instance.
type Config struct {
	// Scale sizes the workload databases (core.FullScale or
	// core.TestScale). The zero value means full scale.
	Scale *core.Scale
	// MaxInFlight caps admitted sessions across all tenants (default 8):
	// every admitted request runs a traced simulation, so admission is
	// the server's capacity control, not a formality.
	MaxInFlight int
	// PerTenant caps admitted sessions per tenant (default 4). Tenants
	// are named by the X-Tenant request header; absent means "default".
	PerTenant int
	// JobCap bounds retained finished jobs (default 256).
	JobCap int
	// Logger receives structured request logs (id, tenant, mode,
	// outcome, duration). Nil discards them — tests and embedders that
	// don't care stay quiet.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Scale == nil {
		s := core.FullScale()
		c.Scale = &s
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 8
	}
	if c.PerTenant == 0 {
		c.PerTenant = 4
	}
	if c.JobCap == 0 {
		c.JobCap = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server serves the execution API over HTTP.
type Server struct {
	cfg     Config
	runner  *core.Runner
	jobs    *jobStore
	mux     *http.ServeMux
	log     *slog.Logger
	Metrics *Metrics

	mu       sync.Mutex
	tenants  map[string]int
	inflight int
	draining bool
	wg       sync.WaitGroup // admitted executions still running
}

// New builds a server; the workload databases load lazily on first use.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  core.NewRunner(*cfg.Scale),
		jobs:    newJobStore(cfg.JobCap),
		log:     cfg.Logger,
		Metrics: NewMetrics(),
		tenants: make(map[string]int),
	}
	// Staged-OLTP runs feed the scheduler-internals histograms directly;
	// traced DSS runs feed the hash-join build metrics the same way.
	s.runner.Sched = s.Metrics.Sched
	s.runner.Join = s.Metrics.Join
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/txn", s.handleTxn)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler is the server's route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Runner exposes the underlying runner so tests can compare server
// results against direct batch-mode Run calls on the same databases.
func (s *Server) Runner() *core.Runner { return s.runner }

// admit reserves one session slot for tenant. It returns a release
// closure on success, or the HTTP status and error to refuse with.
func (s *Server) admit(tenant string) (release func(), status int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.Metrics.DrainRejects.Inc()
		return nil, http.StatusServiceUnavailable, errors.New("server is draining; not admitting new work")
	}
	if s.inflight >= s.cfg.MaxInFlight {
		s.Metrics.AdmissionRejects.Inc()
		return nil, http.StatusTooManyRequests, fmt.Errorf("server at capacity (%d sessions in flight)", s.inflight)
	}
	if s.tenants[tenant] >= s.cfg.PerTenant {
		s.Metrics.AdmissionRejects.Inc()
		return nil, http.StatusTooManyRequests, fmt.Errorf("tenant %q at capacity (%d sessions in flight)", tenant, s.tenants[tenant])
	}
	s.inflight++
	s.tenants[tenant]++
	s.Metrics.InFlight.Add(1)
	s.wg.Add(1)
	return func() {
		s.mu.Lock()
		s.inflight--
		s.tenants[tenant]--
		if s.tenants[tenant] == 0 {
			delete(s.tenants, tenant)
		}
		s.mu.Unlock()
		s.Metrics.InFlight.Add(-1)
		s.wg.Done()
	}, 0, nil
}

// BeginDrain stops admitting new work; already-admitted executions
// continue. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain begins draining and waits for every admitted execution to
// finish, or for ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	idle := s.inflight == 0
	s.mu.Unlock()
	if idle {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}

// tenantOf names the request's tenant from the X-Tenant header.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps an error onto the wire: validation errors carry their
// field name and 400, everything else the given status.
func writeErr(w http.ResponseWriter, status int, err error) {
	body := api.ErrorBody{Error: err.Error()}
	var ve *core.ValidationError
	if errors.As(err, &ve) {
		status = http.StatusBadRequest
		body.Field = ve.Field
	}
	writeJSON(w, status, body)
}

// handleQuery serves POST /v1/query: one DSS measurement.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	creq, err := req.ToCore()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.serve(w, r, creq, req.Async)
}

// handleTxn serves POST /v1/txn: one staged-OLTP transaction batch.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	var req api.TxnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	creq, err := req.ToCore()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.serve(w, r, creq, req.Async)
}

// serve validates, admits, and executes one core request — inline for
// synchronous calls (the response is the Result), or on a background
// goroutine for async ones (the response is the queued Job; the
// admission slot stays held until the job finishes, so async work
// counts against capacity and drain like everything else).
func (s *Server) serve(w http.ResponseWriter, r *http.Request, creq core.Request, async bool) {
	start := time.Now()
	tenant := tenantOf(r)
	// Validate before admission: a malformed request should get its 400
	// without consuming a session slot.
	if err := creq.WithDefaults().Validate(); err != nil {
		s.Metrics.Errors.Inc()
		s.log.Warn("request rejected", "tenant", tenant, "mode", string(creq.Mode), "outcome", "invalid", "err", err)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	release, status, err := s.admit(tenant)
	if err != nil {
		s.log.Warn("request refused", "tenant", tenant, "mode", string(creq.Mode), "outcome", "refused", "status", status, "err", err)
		writeErr(w, status, err)
		return
	}
	s.Metrics.Requests.Inc()
	s.Metrics.JobsCreated.Inc()
	job := s.jobs.create(tenant, string(creq.Mode))
	logger := s.log.With("id", job.ID, "tenant", tenant, "mode", string(creq.Mode))

	if async {
		logger.Info("job queued", "trace", creq.Trace)
		// Detach from the request context: the submitter's connection
		// closing must not cancel a queued job.
		go func() {
			defer release()
			_, err := s.execute(context.Background(), job.ID, creq)
			s.finishRequest(logger, string(creq.Mode), start, err)
		}()
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	defer release()
	res, err := s.execute(r.Context(), job.ID, creq)
	s.finishRequest(logger, string(creq.Mode), start, err)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	writeJSON(w, http.StatusOK, res)
}

// finishRequest observes the end-to-end latency histogram and emits the
// structured outcome log line for one admitted request.
func (s *Server) finishRequest(logger *slog.Logger, mode string, start time.Time, err error) {
	d := time.Since(start)
	s.Metrics.RequestSeconds.With(mode).Observe(d.Seconds())
	if err != nil {
		logger.Error("request failed", "outcome", "error", "duration", d, "err", err)
		return
	}
	logger.Info("request done", "outcome", "ok", "duration", d)
}

// execute runs one admitted request and records its job outcome.
func (s *Server) execute(ctx context.Context, jobID string, creq core.Request) (*api.Result, error) {
	wait := s.jobs.setRunning(jobID)
	s.Metrics.QueueWait.Observe(wait.Seconds())
	res, err := s.runner.Run(ctx, creq)
	if err != nil {
		s.Metrics.Errors.Inc()
		s.jobs.finish(jobID, nil, nil, err)
		return nil, err
	}
	s.Metrics.Observe(res)
	wres := api.FromCore(res)
	s.jobs.finish(jobID, &wres, res.Traces, nil)
	return &wres, nil
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleTrace serves GET /v1/jobs/{id}/trace: the job's dual-clock
// spans as Chrome trace-event JSON (load into Perfetto or
// chrome://tracing). Only jobs submitted with "trace": true have one.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	if job.Status == "queued" || job.Status == "running" {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %q is %s; trace is available once it finishes", id, job.Status))
		return
	}
	runs := s.jobs.getTraces(id)
	if len(runs) == 0 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("job %q has no trace (submit with \"trace\": true)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChrome(w, runs); err != nil {
		s.log.Error("trace export failed", "id", id, "err", err)
	}
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics.WritePrometheus(w)
}
