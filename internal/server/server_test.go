package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server/api"
)

// newTestServer builds a test-scale server with room for the test's
// concurrent load.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sc := core.TestScale()
	s := New(Config{Scale: &sc, MaxInFlight: 8, PerTenant: 8})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func post(t *testing.T, url string, body any, tenant string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestQueryRoundTrip submits a vec-dss query over HTTP and checks the
// wire result against a direct batch-mode Run on the same runner: the
// server must be a transport, not a different engine — digests
// byte-identical.
func TestQueryRoundTrip(t *testing.T) {
	s, hs := newTestServer(t)
	resp, body := post(t, hs.URL+"/v1/query", api.QueryRequest{Mode: "vec-dss", Query: 6}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wire api.Result
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, body)
	}
	direct, err := s.Runner().Run(context.Background(), core.Request{Mode: core.ModeVecDSS, Query: 6})
	if err != nil {
		t.Fatal(err)
	}
	if wire.Digest != api.Digest(direct.Digest) {
		t.Errorf("served digest %s != batch digest %s", wire.Digest, api.Digest(direct.Digest))
	}
	if wire.Baseline.Digest != api.Digest(direct.Baseline.Digest) {
		t.Errorf("served baseline digest %s != batch %s", wire.Baseline.Digest, api.Digest(direct.Baseline.Digest))
	}
	if wire.Main.Rows != direct.Main.Rows {
		t.Errorf("served %d rows, batch %d", wire.Main.Rows, direct.Main.Rows)
	}
	if d, err := api.ParseDigest(wire.Digest); err != nil || d != direct.Digest {
		t.Errorf("digest %q does not parse back to %#x (%v)", wire.Digest, direct.Digest, err)
	}
}

// TestQueryNativeOnTheWire asks for the native fast-path sweep alongside
// a vec-dss measurement and checks the sweep rides back on the result:
// the interpreted reference first, a compiled point per worker count,
// byte-identical serial digests, and the headline rows/sec populated.
func TestQueryNativeOnTheWire(t *testing.T) {
	_, hs := newTestServer(t)
	resp, body := post(t, hs.URL+"/v1/query",
		api.QueryRequest{Mode: "vec-dss", Query: 6, NativeWorkers: []int{1}}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wire api.Result
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, body)
	}
	if len(wire.Native) != 2 {
		t.Fatalf("%d native points, want 2 (interpreted + 1 worker count)", len(wire.Native))
	}
	if !wire.Native[0].Interpreted || wire.Native[1].Interpreted {
		t.Fatalf("native points out of order: %+v", wire.Native)
	}
	if wire.Native[0].Digest != wire.Native[1].Digest {
		t.Errorf("serial native digests differ: %s vs %s (fast path changed the result)",
			wire.Native[0].Digest, wire.Native[1].Digest)
	}
	for i, n := range wire.Native {
		if n.Query != 6 || n.Workers != 1 || n.RowsPerSec <= 0 || n.ResultRows <= 0 {
			t.Errorf("native point %d incomplete: %+v", i, n)
		}
	}
	if wire.NativeRowsPerSec <= 0 || wire.NativeRows <= 0 {
		t.Errorf("headline native throughput missing: rows=%d rows/sec=%v",
			wire.NativeRows, wire.NativeRowsPerSec)
	}

	resp, body = post(t, hs.URL+"/v1/query",
		api.QueryRequest{Mode: "vec-dss", Query: 6, NativeWorkers: []int{0}}, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("native_workers 0 accepted: status %d: %s", resp.StatusCode, body)
	}
	var eb api.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Field != "native_workers" {
		t.Errorf("error %s does not name native_workers (%v)", body, err)
	}
}

// TestTxnRoundTrip submits an OLTP batch and checks the digest against
// a direct batch-mode Run of the same request.
func TestTxnRoundTrip(t *testing.T) {
	s, hs := newTestServer(t)
	treq := api.TxnRequest{Clients: 6, Txns: 4}
	resp, body := post(t, hs.URL+"/v1/txn", treq, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wire api.Result
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, body)
	}
	creq, err := treq.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Runner().Run(context.Background(), creq)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Digest != api.Digest(direct.Digest) {
		t.Errorf("served digest %s != batch digest %s", wire.Digest, api.Digest(direct.Digest))
	}
	if wire.Baseline.Digest != wire.Main.Digest {
		t.Errorf("monolithic %s vs cohort %s: identity not enforced", wire.Baseline.Digest, wire.Main.Digest)
	}
	if wire.Main.Txns != 24 {
		t.Errorf("committed %d, want 24", wire.Main.Txns)
	}
}

// TestConcurrentMixedLoad serves DSS queries and OLTP batches at the
// same time — the acceptance scenario — then checks the executor
// counters that only a served-and-observed run can raise.
func TestConcurrentMixedLoad(t *testing.T) {
	s, hs := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	run := func(path string, body any) {
		defer wg.Done()
		resp, out := post(t, hs.URL+path, body, "")
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Sprintf("%s: status %d: %s", path, resp.StatusCode, out)
		}
	}
	wg.Add(3)
	go run("/v1/query", api.QueryRequest{Mode: "vec-dss", Query: 6})
	go run("/v1/query", api.QueryRequest{Mode: "shared-dss", Query: 6, Clients: 3})
	go run("/v1/txn", api.TxnRequest{Clients: 6, Txns: 4})
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := s.Metrics.Parks.Value(); got == 0 {
		t.Error("no parks counted after an OLTP batch")
	}
	if got := s.Metrics.Rotations.Value(); got == 0 {
		t.Error("no scan rotations counted after a shared-dss query")
	}
	if got := s.Metrics.Requests.Value(); got != 3 {
		t.Errorf("requests counter %d, want 3", got)
	}
	if got := s.Metrics.InFlight.Value(); got != 0 {
		t.Errorf("in-flight gauge %d after all work done", got)
	}
}

// TestAsyncJob submits an async batch, gets a queued job, and polls it
// to completion.
func TestAsyncJob(t *testing.T) {
	_, hs := newTestServer(t)
	resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 4, Txns: 2, Async: true}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || (job.Status != "queued" && job.Status != "running") {
		t.Fatalf("bad job: %+v", job)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := getBody(t, hs.URL+"/v1/jobs/"+job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == "done" {
			break
		}
		if job.Status == "error" {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", job.ID, job.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if job.Result == nil || job.Result.Main.Txns != 8 {
		t.Fatalf("done job has result %+v", job.Result)
	}
	if resp, _ := getBody(t, hs.URL+"/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestValidationOverWire checks that bad requests come back as 400s
// naming the offending field, without consuming a session slot.
func TestValidationOverWire(t *testing.T) {
	s, hs := newTestServer(t)
	cases := []struct {
		path  string
		body  any
		field string
	}{
		{"/v1/query", api.QueryRequest{Mode: "warp-dss"}, "mode"},
		{"/v1/query", api.QueryRequest{Mode: "vec-dss", Query: 5}, "query"},
		{"/v1/query", api.QueryRequest{Mode: "staged-oltp"}, "mode"},
		{"/v1/txn", api.TxnRequest{Parts: -1}, "parts"},
		{"/v1/txn", api.TxnRequest{RemotePct: 140}, "remote"},
	}
	for _, tc := range cases {
		resp, body := post(t, hs.URL+tc.path, tc.body, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %+v: status %d, want 400", tc.path, tc.body, resp.StatusCode)
			continue
		}
		var eb api.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Field != tc.field {
			t.Errorf("%s %+v: error body %s (want field %q)", tc.path, tc.body, body, tc.field)
		}
	}
	if got := s.Metrics.Requests.Value(); got != 0 {
		t.Errorf("rejected requests consumed %d admissions", got)
	}
}

// TestAdmissionCaps checks the per-tenant cap: a tenant at capacity
// gets 429 while another tenant is still admitted.
func TestAdmissionCaps(t *testing.T) {
	sc := core.TestScale()
	s := New(Config{Scale: &sc, MaxInFlight: 4, PerTenant: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Occupy tenant-a's single slot manually, then probe over the wire.
	release, _, err := s.admit("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 2, Txns: 1}, "tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over cap: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 2, Txns: 1}, "tenant-b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b blocked by tenant-a's cap: status %d: %s", resp.StatusCode, body)
	}
	release()
	if got := s.Metrics.AdmissionRejects.Value(); got != 1 {
		t.Errorf("admission rejects %d, want 1", got)
	}
}

// TestGracefulDrain starts work, begins a drain mid-flight, and checks
// the contract: new work is refused with 503, healthz flips to 503, the
// admitted execution completes with a 200, and Drain returns once the
// server is idle.
func TestGracefulDrain(t *testing.T) {
	s, hs := newTestServer(t)
	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		close(started)
		resp, _ := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 6, Txns: 4}, "")
		result <- resp.StatusCode
	}()
	<-started
	// Wait for the request to be admitted before draining.
	for i := 0; s.Metrics.InFlight.Value() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Metrics.InFlight.Value() == 0 {
		t.Fatal("request never admitted")
	}
	s.BeginDrain()

	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 2, Txns: 1}, ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server admitted work: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := getBody(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-result; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
	if got := s.Metrics.DrainRejects.Value(); got == 0 {
		t.Error("no drain rejects counted")
	}

	// An expired context must not hang Drain.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if err := s.Drain(expired); err != nil {
		t.Fatalf("drain on idle server with expired ctx: %v", err)
	}
}

// TestMetricsEndpoint scrapes /metrics after a served OLTP batch and
// checks the exposition format and the acceptance counters.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 6, Txns: 4}, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("txn: status %d: %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, hs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := string(body)
	for _, metric := range []string{
		"dbserver_requests_total", "dbserver_sched_parks_total",
		"dbserver_sched_wounds_total", "dbserver_scan_rotations_total",
		"dbserver_result_cache_hits_total", "dbserver_inflight_sessions",
	} {
		if !strings.Contains(text, "# TYPE "+metric+" ") || !strings.Contains(text, "\n"+metric+" ") {
			t.Errorf("metric %s missing from exposition:\n%s", metric, text)
		}
	}
	var parks int
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "dbserver_sched_parks_total ") {
			fmt.Sscanf(line, "dbserver_sched_parks_total %d", &parks)
		}
	}
	if parks == 0 {
		t.Error("dbserver_sched_parks_total is zero after an OLTP batch")
	}
	if resp, _ := getBody(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

// TestJobEviction checks the store drops the oldest finished jobs past
// its cap but never live ones.
func TestJobEviction(t *testing.T) {
	st := newJobStore(2)
	a := st.create("default", "vec-dss")
	st.finish(a.ID, nil, nil, nil)
	b := st.create("default", "vec-dss") // stays queued (live)
	c := st.create("default", "vec-dss")
	st.finish(c.ID, nil, nil, nil)
	d := st.create("default", "vec-dss")
	st.finish(d.ID, nil, nil, nil)
	if _, ok := st.get(a.ID); ok {
		t.Error("oldest finished job not evicted")
	}
	if _, ok := st.get(b.ID); !ok {
		t.Error("live job evicted")
	}
	if _, ok := st.get(d.ID); !ok {
		t.Error("newest job evicted")
	}
}
