package server

import (
	"io"

	"repro/internal/core"
	"repro/internal/obs"
)

// Histogram bucket ladders. Request latencies are host seconds (an
// admitted request runs a whole simulation, so the ladder reaches
// minutes); run cycles are simulated; the scheduler ladders are small
// integer counts.
var (
	secondsBuckets = obs.LogBuckets(0.001, 2, 20) // 1ms .. ~8.7m
	cyclesBuckets  = obs.LogBuckets(1e4, 4, 14)   // 10k .. ~671M cycles
	stepsBuckets   = obs.LogBuckets(1, 2, 12)     // 1 .. 2048
)

// Metrics is the server's metric set, backed by one obs.Registry and
// exposed on GET /metrics in the Prometheus text exposition format. The
// executor counters (parks, wounds, rotations, cache hits) aggregate
// the scheduler and sharing statistics of every request the server has
// completed — the live view of the internals the batch drivers print.
type Metrics struct {
	Registry *obs.Registry

	Requests         *obs.Counter
	Errors           *obs.Counter
	AdmissionRejects *obs.Counter
	DrainRejects     *obs.Counter
	InFlight         *obs.Gauge
	JobsCreated      *obs.Counter

	// Cohort-scheduler counters summed over completed staged-oltp runs.
	Parks         *obs.Counter
	Wounds        *obs.Counter
	Deadlocks     *obs.Counter
	StageSwitches *obs.Counter
	FencedTxns    *obs.Counter
	TxnsCommitted *obs.Counter

	// Work-sharing counters summed over completed shared-dss runs.
	Rotations       *obs.Counter
	Attaches        *obs.Counter
	ResultCacheHits *obs.Counter
	ResultCacheMiss *obs.Counter

	// RequestSeconds is end-to-end host latency of admitted requests by
	// mode; QueueWait is the host delay between job creation and
	// execution start (async jobs queue here); RunCycles is the subject
	// side's simulated length per completed execution, by mode.
	RequestSeconds *obs.HistogramVec
	QueueWait      *obs.Histogram
	RunCycles      *obs.HistogramVec

	// Sched receives scheduler-internals observations from inside every
	// staged-OLTP run (plumbed down through core.Runner.Sched).
	Sched obs.SchedMetrics

	// Join receives hash-join build observations — chain-length
	// distribution, partition fan-out by join mode — from inside every
	// traced DSS run (plumbed down through core.Runner.Join).
	Join obs.JoinMetrics
}

// NewMetrics builds the server metric set on a fresh registry.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		Registry:         r,
		Requests:         r.Counter("dbserver_requests_total", "Admitted execution requests."),
		Errors:           r.Counter("dbserver_errors_total", "Requests that failed validation or execution."),
		AdmissionRejects: r.Counter("dbserver_admission_rejects_total", "Requests refused by per-tenant or global caps."),
		DrainRejects:     r.Counter("dbserver_drain_rejects_total", "Requests refused because the server is draining."),
		InFlight:         r.Gauge("dbserver_inflight_sessions", "Admitted sessions currently executing."),
		JobsCreated:      r.Counter("dbserver_jobs_created_total", "Jobs created (sync and async)."),

		Parks:         r.Counter("dbserver_sched_parks_total", "Cohort-scheduler lock parks across completed runs."),
		Wounds:        r.Counter("dbserver_sched_wounds_total", "Cohort-scheduler deadlock wounds across completed runs."),
		Deadlocks:     r.Counter("dbserver_sched_deadlocks_total", "Deadlock retries across completed runs."),
		StageSwitches: r.Counter("dbserver_sched_stage_switches_total", "Cohort stage switches across completed runs."),
		FencedTxns:    r.Counter("dbserver_fenced_txns_total", "Cross-partition transactions run fenced."),
		TxnsCommitted: r.Counter("dbserver_txns_committed_total", "Transactions committed by staged-oltp runs."),

		Rotations:       r.Counter("dbserver_scan_rotations_total", "Circular shared-scan rotations across completed runs."),
		Attaches:        r.Counter("dbserver_scan_attaches_total", "Consumers attached to shared scans across completed runs."),
		ResultCacheHits: r.Counter("dbserver_result_cache_hits_total", "Result-reuse cache hits across completed runs."),
		ResultCacheMiss: r.Counter("dbserver_result_cache_misses_total", "Result-reuse cache misses across completed runs."),

		RequestSeconds: r.HistogramVec("dbserver_request_seconds", "End-to-end host latency of admitted requests.", secondsBuckets, "mode"),
		QueueWait:      r.Histogram("dbserver_queue_wait_seconds", "Host delay between job creation and execution start.", secondsBuckets),
		RunCycles:      r.HistogramVec("dbserver_run_cycles", "Simulated cycles of each completed subject execution.", cyclesBuckets, "mode"),
		Sched: obs.SchedMetrics{
			QuantumSteps: r.Histogram("dbserver_sched_quantum_steps", "Continuation steps executed per scheduling quantum.", stepsBuckets),
			ParkQuanta:   r.Histogram("dbserver_sched_park_quanta", "Quanta a transaction stayed parked before resuming.", stepsBuckets),
		},
		Join: obs.NewJoinMetrics(r),
	}
}

// Observe folds one completed measurement into the counters. Every
// subject side is folded the same way regardless of mode — sides that
// never touched a subsystem contribute zeros — so a new mode can't be
// silently dropped by a forgotten switch arm. Subjects are the sweep
// points when the mode sweeps, otherwise Main (which aliases the last
// sweep entry, so folding both would double-count). Baselines are the
// reference twin and contribute nothing.
func (m *Metrics) Observe(res core.Result) {
	subjects := res.Sweep
	if len(subjects) == 0 {
		subjects = []core.Side{res.Main}
	}
	mode := string(res.Mode)
	for _, s := range subjects {
		m.Parks.Add(uint64(s.Sched.Parks))
		m.Wounds.Add(uint64(s.Sched.Wounds))
		m.Deadlocks.Add(uint64(s.Sched.Deadlocks))
		m.StageSwitches.Add(uint64(s.Sched.StageSwitches))
		m.FencedTxns.Add(uint64(s.Fenced))
		m.TxnsCommitted.Add(uint64(s.Txns))

		m.Rotations.Add(s.Scans.Rotations)
		m.Attaches.Add(s.Scans.Attaches)
		m.ResultCacheHits.Add(s.Reuse.Hits)
		m.ResultCacheMiss.Add(s.Reuse.Misses)

		m.RunCycles.With(mode).Observe(float64(s.Cycles))
	}
}

// WritePrometheus renders every family in the text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.Registry.WritePrometheus(w)
}
