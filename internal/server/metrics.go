package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
)

// Metrics is the server's counter set, exposed on GET /metrics in the
// Prometheus text exposition format. Everything is a monotonic counter
// except InFlight, a gauge of admitted sessions currently executing.
// The executor counters (parks, wounds, rotations, cache hits) aggregate
// the scheduler and sharing statistics of every request the server has
// completed — the live view of the internals the batch drivers print.
type Metrics struct {
	Requests         atomic.Uint64 // admitted requests, by outcome below
	Errors           atomic.Uint64 // requests that failed (validation or run)
	AdmissionRejects atomic.Uint64 // 429s: per-tenant or global cap hit
	DrainRejects     atomic.Uint64 // 503s: refused because draining
	InFlight         atomic.Int64  // gauge: admitted sessions executing now
	JobsCreated      atomic.Uint64

	// Cohort-scheduler counters summed over completed staged-oltp runs.
	Parks         atomic.Uint64
	Wounds        atomic.Uint64
	Deadlocks     atomic.Uint64
	StageSwitches atomic.Uint64
	FencedTxns    atomic.Uint64
	TxnsCommitted atomic.Uint64

	// Work-sharing counters summed over completed shared-dss runs.
	Rotations       atomic.Uint64
	Attaches        atomic.Uint64
	ResultCacheHits atomic.Uint64
	ResultCacheMiss atomic.Uint64
}

// Observe folds one completed measurement into the counters. Scheduler
// stats come from every cohort-scheduled side (the sweep); sharing stats
// from the shared side only (Main) — the baselines run without either
// subsystem and contribute nothing.
func (m *Metrics) Observe(res core.Result) {
	switch res.Mode {
	case core.ModeStagedOLTP:
		for _, s := range res.Sweep {
			m.Parks.Add(uint64(s.Sched.Parks))
			m.Wounds.Add(uint64(s.Sched.Wounds))
			m.Deadlocks.Add(uint64(s.Sched.Deadlocks))
			m.StageSwitches.Add(uint64(s.Sched.StageSwitches))
			m.FencedTxns.Add(uint64(s.Fenced))
			m.TxnsCommitted.Add(uint64(s.Txns))
		}
	case core.ModeSharedDSS:
		m.Rotations.Add(res.Main.Scans.Rotations)
		m.Attaches.Add(res.Main.Scans.Attaches)
		m.ResultCacheHits.Add(res.Main.Reuse.Hits)
		m.ResultCacheMiss.Add(res.Main.Reuse.Misses)
	}
}

// WritePrometheus renders the counters in the text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("dbserver_requests_total", "Admitted execution requests.", m.Requests.Load())
	counter("dbserver_errors_total", "Requests that failed validation or execution.", m.Errors.Load())
	counter("dbserver_admission_rejects_total", "Requests refused by per-tenant or global caps.", m.AdmissionRejects.Load())
	counter("dbserver_drain_rejects_total", "Requests refused because the server is draining.", m.DrainRejects.Load())
	gauge("dbserver_inflight_sessions", "Admitted sessions currently executing.", m.InFlight.Load())
	counter("dbserver_jobs_created_total", "Jobs created (sync and async).", m.JobsCreated.Load())
	counter("dbserver_sched_parks_total", "Cohort-scheduler lock parks across completed runs.", m.Parks.Load())
	counter("dbserver_sched_wounds_total", "Cohort-scheduler deadlock wounds across completed runs.", m.Wounds.Load())
	counter("dbserver_sched_deadlocks_total", "Deadlock retries across completed runs.", m.Deadlocks.Load())
	counter("dbserver_sched_stage_switches_total", "Cohort stage switches across completed runs.", m.StageSwitches.Load())
	counter("dbserver_fenced_txns_total", "Cross-partition transactions run fenced.", m.FencedTxns.Load())
	counter("dbserver_txns_committed_total", "Transactions committed by staged-oltp runs.", m.TxnsCommitted.Load())
	counter("dbserver_scan_rotations_total", "Circular shared-scan rotations across completed runs.", m.Rotations.Load())
	counter("dbserver_scan_attaches_total", "Consumers attached to shared scans across completed runs.", m.Attaches.Load())
	counter("dbserver_result_cache_hits_total", "Result-reuse cache hits across completed runs.", m.ResultCacheHits.Load())
	counter("dbserver_result_cache_misses_total", "Result-reuse cache misses across completed runs.", m.ResultCacheMiss.Load())
}
