// Package api holds the wire types of the execution server: the JSON
// bodies of POST /v1/query, POST /v1/txn, and GET /v1/jobs/{id}, plus
// the conversions to and from the core request API. Digests travel as
// hex strings — they are uint64 fingerprints, and JSON numbers lose
// bits past 2^53.
package api

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// QueryRequest is the body of POST /v1/query: one DSS measurement on
// the simulated chip. Zero-valued fields take the mode defaults that
// core.Request.WithDefaults resolves.
type QueryRequest struct {
	// Mode is vec-dss, shared-dss, or parallel-dss (default vec-dss).
	Mode string `json:"mode,omitempty"`
	// Query is the DSS analog: 1, 6, or 13 (shared-dss also accepts 0
	// for the Q1/Q6/Q13 mix).
	Query int `json:"query,omitempty"`
	// Clients is the shared-dss consumer count.
	Clients int `json:"clients,omitempty"`
	// Workers is the parallel-dss target worker count.
	Workers int `json:"workers,omitempty"`
	// WorkerCounts sweeps parallel-dss worker counts on pinned geometry.
	WorkerCounts []int `json:"worker_counts,omitempty"`
	// NativeWorkers additionally sweeps the trace-free native fast path
	// (compiled predicates + selection vectors, morsel-parallel) at these
	// worker counts; host wall-clock numbers ride back on the result's
	// native section.
	NativeWorkers []int `json:"native_workers,omitempty"`
	// ZeroCopy additionally measures each native worker count with
	// borrowed page-aliasing scan blocks (copy vs borrow side by side).
	ZeroCopy bool `json:"zero_copy,omitempty"`
	// JoinMode pins the hash-join strategy of joining plans (Q13):
	// "chained", "partitioned", "prefetch", or ""/"auto" for the
	// build-size policy.
	JoinMode string `json:"join_mode,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Async makes the server return 202 with a queued Job instead of
	// blocking until the measurement completes.
	Async bool `json:"async,omitempty"`
	// Trace collects dual-clock spans, served afterwards as Chrome
	// trace-event JSON on GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// ToCore maps the wire request onto a core.Request.
func (q QueryRequest) ToCore() (core.Request, error) {
	ms := q.Mode
	if ms == "" {
		ms = string(core.ModeVecDSS)
	}
	mode, err := core.ParseMode(ms)
	if err != nil {
		return core.Request{}, err
	}
	if mode == core.ModeStagedOLTP {
		return core.Request{}, &core.ValidationError{
			Field: "mode", Reason: "staged-oltp is a transaction batch; POST it to /v1/txn"}
	}
	return core.Request{
		Mode: mode, Query: q.Query, Clients: q.Clients,
		Workers: q.Workers, WorkerCounts: q.WorkerCounts,
		NativeWorkers: q.NativeWorkers, NativeZeroCopy: q.ZeroCopy,
		JoinMode: q.JoinMode,
		Seed:     q.Seed,
		Trace:    q.Trace,
	}, nil
}

// TxnRequest is the body of POST /v1/txn: one deterministic staged-OLTP
// transaction batch, cohort-scheduled against its monolithic reference
// twin (digests checked byte-identical server-side).
type TxnRequest struct {
	// Clients is logical client streams; Txns is transactions per client.
	Clients int `json:"clients,omitempty"`
	Txns    int `json:"txns,omitempty"`
	// Cohort is the in-flight window of the cohort scheduler.
	Cohort int `json:"cohort,omitempty"`
	// Parts partitions the cohort side by home warehouse; PartCounts
	// sweeps several partition counts against one monolithic reference.
	Parts      int   `json:"parts,omitempty"`
	PartCounts []int `json:"part_counts,omitempty"`
	// RemotePct is the percent chance of a cross-warehouse draw.
	RemotePct int   `json:"remote_pct,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Async     bool  `json:"async,omitempty"`
	// Trace collects dual-clock spans, served afterwards as Chrome
	// trace-event JSON on GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// ToCore maps the wire request onto a core.Request.
func (t TxnRequest) ToCore() (core.Request, error) {
	return core.Request{
		Mode: core.ModeStagedOLTP, Clients: t.Clients, Txns: t.Txns,
		Cohort: t.Cohort, Parts: t.Parts, PartCounts: t.PartCounts,
		RemotePct: t.RemotePct, Seed: t.Seed, Trace: t.Trace,
	}, nil
}

// Side is one traced execution inside a Result.
type Side struct {
	Label        string  `json:"label"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	L1IMisses    uint64  `json:"l1i_misses"`
	IStallFrac   float64 `json:"istall_frac"`
	Rows         int     `json:"rows,omitempty"`
	Txns         int     `json:"txns,omitempty"`
	// Digest is the execution's logical-output fingerprint in hex.
	Digest  string `json:"digest"`
	Workers int    `json:"workers,omitempty"`
	Parts   int    `json:"parts,omitempty"`
	Fenced  int    `json:"fenced,omitempty"`
	// Cohort-scheduler counters (staged-oltp sides).
	Parks     int `json:"parks,omitempty"`
	Wounds    int `json:"wounds,omitempty"`
	Deadlocks int `json:"deadlocks,omitempty"`
	// Work-sharing counters (shared-dss sides).
	Attaches        uint64 `json:"attaches,omitempty"`
	Rotations       uint64 `json:"rotations,omitempty"`
	ResultCacheHits uint64 `json:"result_cache_hits,omitempty"`
	ResultCacheMiss uint64 `json:"result_cache_misses,omitempty"`
	// Stalls is the cycle-accounting breakdown of this execution.
	Stalls core.Stalls `json:"stalls"`
}

// NativeRun is one native fast-path measurement on the wire: query
// Query at Workers host workers, wall-clock timed (best of 50; median
// and interquartile range record the spread). Serial digests are
// byte-comparable across interpreted, compiled, and borrowed points;
// multi-worker digests fingerprint the row count only (parallel float
// sums agree up to addition order).
type NativeRun struct {
	Query       int     `json:"query"`
	Workers     int     `json:"workers"`
	Interpreted bool    `json:"interpreted,omitempty"`
	Borrowed    bool    `json:"borrowed,omitempty"`
	JoinMode    string  `json:"join_mode,omitempty"`
	Rows        int     `json:"rows_scanned"`
	Nanos       int64   `json:"nanos"`
	MedianNanos int64   `json:"median_nanos"`
	IQRNanos    int64   `json:"iqr_nanos"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	Bytes       int     `json:"bytes_scanned"`
	GBPerSec    float64 `json:"gb_per_sec"`
	ResultRows  int     `json:"result_rows"`
	Digest      string  `json:"digest"`
}

// Result is the wire form of core.Result.
type Result struct {
	Mode              string    `json:"mode"`
	Baseline          Side      `json:"baseline"`
	Main              Side      `json:"main"`
	Sweep             []Side    `json:"sweep,omitempty"`
	SpeedupX          float64   `json:"speedup_x"`
	ScalingX          []float64 `json:"scaling_x,omitempty"`
	L1IMissReductionX float64   `json:"l1i_miss_reduction_x,omitempty"`
	// Digest echoes Main's fingerprint: the value clients compare against
	// batch-mode core.Runner.Run results for byte-identity.
	Digest string `json:"digest"`
	// Native is the fast-path sweep when the request asked for one, led
	// by the interpreted reference; NativeRowsPerSec is the best compiled
	// point's throughput (the headline host number).
	Native           []NativeRun `json:"native,omitempty"`
	NativeRows       int         `json:"native_rows,omitempty"`
	NativeRowsPerSec float64     `json:"native_rows_per_sec,omitempty"`
	// TraceSpans counts collected spans for traced runs; the spans
	// themselves are served on GET /v1/jobs/{id}/trace.
	TraceSpans int `json:"trace_spans,omitempty"`
}

// Job is one submitted execution and its lifecycle.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Mode   string `json:"mode"`
	// Status is queued, running, done, or error.
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// ErrorBody is every non-2xx JSON payload.
type ErrorBody struct {
	Error string `json:"error"`
	// Field names the offending request field for validation errors.
	Field string `json:"field,omitempty"`
}

// Digest renders a uint64 fingerprint in the wire form.
func Digest(d uint64) string { return fmt.Sprintf("%#x", d) }

// ParseDigest reverses Digest.
func ParseDigest(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
}

// FromCore flattens a core.Result into its wire form.
func FromCore(res core.Result) Result {
	out := Result{
		Mode:              string(res.Mode),
		Baseline:          sideFromCore(res.Baseline),
		Main:              sideFromCore(res.Main),
		SpeedupX:          res.SpeedupX,
		ScalingX:          res.ScalingX,
		L1IMissReductionX: res.L1IMissReductionX,
		Digest:            Digest(res.Digest),
	}
	for _, s := range res.Sweep {
		out.Sweep = append(out.Sweep, sideFromCore(s))
	}
	for _, n := range res.Native {
		out.Native = append(out.Native, NativeRun{
			Query: n.Query, Workers: n.Workers,
			Interpreted: n.Interpreted, Borrowed: n.Borrowed,
			JoinMode: n.JoinMode,
			Rows:     n.Rows, Nanos: n.Nanos,
			MedianNanos: n.MedianNanos, IQRNanos: n.IQRNanos,
			RowsPerSec: n.RowsPerSec,
			Bytes:      n.BytesScanned, GBPerSec: n.GBPerSec,
			ResultRows: n.ResultRows, Digest: Digest(n.Digest),
		})
	}
	out.NativeRows = res.NativeRows
	out.NativeRowsPerSec = res.NativeRowsPerSec
	for _, t := range res.Traces {
		out.TraceSpans += len(t.Spans)
	}
	return out
}

func sideFromCore(s core.Side) Side {
	return Side{
		Label: s.Label, Cycles: s.Cycles,
		Instructions: s.Result.Instructions,
		L1IMisses:    s.Result.Cache.L1IMisses,
		IStallFrac:   s.IStallFrac(),
		Rows:         s.Rows, Txns: s.Txns,
		Digest:  Digest(s.Digest),
		Workers: s.Workers, Parts: s.Parts, Fenced: s.Fenced,
		Parks: s.Sched.Parks, Wounds: s.Sched.Wounds, Deadlocks: s.Sched.Deadlocks,
		Attaches: s.Scans.Attaches, Rotations: s.Scans.Rotations,
		ResultCacheHits: s.Reuse.Hits, ResultCacheMiss: s.Reuse.Misses,
		Stalls: s.Stalls(),
	}
}
