package server

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server/api"
)

// Prometheus text exposition 0.0.4 line shapes.
var (
	helpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// scrape fetches /metrics and returns its lines (trailing blank dropped).
func scrape(t *testing.T, url string) []string {
	t.Helper()
	resp, body := getBody(t, url+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	return strings.Split(strings.TrimRight(string(body), "\n"), "\n")
}

// sample is one parsed exposition sample.
type sample struct {
	name   string // metric name including _bucket/_sum/_count suffix
	labels string // rendered label list without braces ("" if none)
	value  float64
}

func parseSamples(t *testing.T, lines []string) (samples []sample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels = strings.TrimSuffix(name[i+1:], "}")
			name = name[:i]
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(rest, "+"), 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		samples = append(samples, sample{name, labels, v})
	}
	return samples, types
}

// TestMetricsExpositionFormat scrapes /metrics after served load and
// checks the exposition line by line against the text-format grammar,
// counter monotonicity across two scrapes, and the histogram invariants
// (cumulative buckets, +Inf bucket equal to _count) for at least three
// histogram families.
func TestMetricsExpositionFormat(t *testing.T) {
	_, hs := newTestServer(t)
	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 6, Txns: 4}, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("txn: status %d: %s", resp.StatusCode, body)
	}
	first := scrape(t, hs.URL)
	for _, line := range first {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpLine.MatchString(line) {
				t.Errorf("malformed HELP line %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeLine.MatchString(line) {
				t.Errorf("malformed TYPE line %q", line)
			}
		default:
			if !sampleLine.MatchString(line) {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}

	samples, types := parseSamples(t, first)
	histograms := 0
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		// Group this family's buckets by child (labels minus le).
		type child struct {
			bounds []float64
			counts []float64
			count  float64
			inf    float64
			hasInf bool
		}
		children := map[string]*child{}
		childOf := func(labels string) *child {
			var kept []string
			for _, l := range strings.Split(labels, ",") {
				if l != "" && !strings.HasPrefix(l, `le="`) {
					kept = append(kept, l)
				}
			}
			key := strings.Join(kept, ",")
			if children[key] == nil {
				children[key] = &child{}
			}
			return children[key]
		}
		for _, s := range samples {
			switch s.name {
			case name + "_bucket":
				c := childOf(s.labels)
				le := ""
				for _, l := range strings.Split(s.labels, ",") {
					if strings.HasPrefix(l, `le="`) {
						le = strings.TrimSuffix(strings.TrimPrefix(l, `le="`), `"`)
					}
				}
				if le == "+Inf" {
					c.inf, c.hasInf = s.value, true
					continue
				}
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: bad le %q", name, le)
				}
				c.bounds = append(c.bounds, b)
				c.counts = append(c.counts, s.value)
			case name + "_count":
				childOf(s.labels).count = s.value
			}
		}
		if len(children) == 0 {
			t.Errorf("histogram %s rendered no children", name)
			continue
		}
		histograms++
		for key, c := range children {
			if !c.hasInf {
				t.Errorf("%s{%s}: no explicit +Inf bucket", name, key)
				continue
			}
			if c.inf != c.count {
				t.Errorf("%s{%s}: +Inf bucket %v != _count %v", name, key, c.inf, c.count)
			}
			for i := 1; i < len(c.counts); i++ {
				if c.bounds[i] <= c.bounds[i-1] {
					t.Errorf("%s{%s}: bucket bounds not ascending: %v", name, key, c.bounds)
				}
				if c.counts[i] < c.counts[i-1] {
					t.Errorf("%s{%s}: buckets not cumulative: %v", name, key, c.counts)
				}
			}
			if n := len(c.counts); n > 0 && c.inf < c.counts[n-1] {
				t.Errorf("%s{%s}: +Inf bucket %v below last finite bucket %v", name, key, c.inf, c.counts[n-1])
			}
		}
	}
	if histograms < 3 {
		t.Errorf("only %d histogram families exposed, want >= 3", histograms)
	}

	// Counters must be monotonic: serve more load, scrape again, and check
	// every counter child moved forward or held.
	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 4, Txns: 2}, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("second txn: status %d: %s", resp.StatusCode, body)
	}
	second, _ := parseSamples(t, scrape(t, hs.URL))
	after := map[string]float64{}
	for _, s := range second {
		after[s.name+"{"+s.labels+"}"] = s.value
	}
	checked := 0
	for _, s := range samples {
		base, _, _ := strings.Cut(s.name, "_bucket")
		if types[base] != "counter" && !strings.HasSuffix(s.name, "_count") {
			continue
		}
		now, ok := after[s.name+"{"+s.labels+"}"]
		if !ok {
			t.Errorf("counter %s{%s} vanished between scrapes", s.name, s.labels)
			continue
		}
		if now < s.value {
			t.Errorf("counter %s{%s} went backwards: %v -> %v", s.name, s.labels, s.value, now)
		}
		checked++
	}
	if checked == 0 {
		t.Error("monotonicity check matched no counters")
	}
	if v := after["dbserver_requests_total{}"]; v != 2 {
		t.Errorf("dbserver_requests_total = %v after two requests, want 2", v)
	}
}

// TestRequestLatencyHistogramObserved checks the request-latency and
// queue-wait histograms actually record served work, labeled by mode.
func TestRequestLatencyHistogramObserved(t *testing.T) {
	s, hs := newTestServer(t)
	if resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 4, Txns: 2}, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("txn: status %d: %s", resp.StatusCode, body)
	}
	h := s.Metrics.RequestSeconds.With("staged-oltp")
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("request latency histogram: count %d sum %g", h.Count(), h.Sum())
	}
	if s.Metrics.QueueWait.Count() != 1 {
		t.Errorf("queue wait histogram count %d, want 1", s.Metrics.QueueWait.Count())
	}
	if s.Metrics.RunCycles.With("staged-oltp").Count() == 0 {
		t.Error("run cycles histogram empty after a staged batch")
	}
}

// TestTraceEndpoint drives the traced-job lifecycle over the wire: an
// async traced batch serves Chrome trace-event JSON once done, an
// untraced job 404s with the opt-in hint, and unknown jobs 404.
func TestTraceEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	if resp, _ := getBody(t, hs.URL+"/v1/jobs/job-999/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}

	resp, body := post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 4, Txns: 2, Async: true, Trace: true}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async txn: status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for job.Status != "done" {
		if job.Status == "error" {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", job.ID, job.Status)
		}
		// While unfinished, the trace endpoint must refuse with 409.
		if resp, _ := getBody(t, hs.URL+"/v1/jobs/"+job.ID+"/trace"); resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight trace: status %d, want 409", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
		r2, b2 := getBody(t, hs.URL+"/v1/jobs/"+job.ID)
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r2.StatusCode, b2)
		}
		if err := json.Unmarshal(b2, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.Result == nil || job.Result.TraceSpans == 0 {
		t.Fatalf("done traced job reports no spans: %+v", job.Result)
	}

	resp, body = getBody(t, hs.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("trace content type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < job.Result.TraceSpans {
		t.Errorf("%d trace events for %d spans", len(doc.TraceEvents), job.Result.TraceSpans)
	}

	// An untraced async job has no trace to serve.
	resp, body = post(t, hs.URL+"/v1/txn", api.TxnRequest{Clients: 4, Txns: 2, Async: true}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("untraced async txn: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(120 * time.Second); job.Status != "done"; {
		if job.Status == "error" || time.Now().After(deadline) {
			t.Fatalf("untraced job %s stuck %s: %s", job.ID, job.Status, job.Error)
		}
		time.Sleep(50 * time.Millisecond)
		_, b2 := getBody(t, hs.URL+"/v1/jobs/"+job.ID)
		if err := json.Unmarshal(b2, &job); err != nil {
			t.Fatal(err)
		}
	}
	resp, body = getBody(t, hs.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "trace") {
		t.Errorf("untraced job trace: status %d body %s, want 404 with opt-in hint", resp.StatusCode, body)
	}
}
