package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// HashTable is a chained hash table laid out in a worker's workspace
// arena. Hash joins and hash aggregates build and probe it; bucket-chain
// walks emit dependent loads at the entries' simulated addresses, which is
// the access pattern behind the paper's DSS L2-hit stalls (multi-megabyte
// hash tables fit the L2 but not the L1D).
//
// Entry layout: [next u64][key u64][payload payloadW bytes].
type HashTable struct {
	arena    *mem.Arena
	buckets  mem.Addr
	nbuckets uint64
	payloadW int
	entryW   int
	n        int
	code     mem.CodeSeg
}

const htEntryHeader = 16

// NewHashTable builds a table sized for roughly expected entries with
// fixed-width payloads. The bucket array targets two buckets per expected
// entry but is clamped to a quarter of the workspace still free, so a
// huge (or wrong) cardinality hint degrades to longer chains instead of
// overflowing the doubling loop or panicking inside Arena.Alloc.
func NewHashTable(ctx *Ctx, expected, payloadW int) *HashTable {
	free := ctx.Work.Size() - ctx.Work.Used()
	maxNB := uint64(16)
	for maxNB*8*2 <= uint64(free)/4 && maxNB < 1<<30 {
		maxNB *= 2
	}
	nb := uint64(16)
	for expected > 0 && nb < uint64(expected)*2 && nb < maxNB {
		nb *= 2
	}
	h := &HashTable{
		arena:    ctx.Work,
		nbuckets: nb,
		payloadW: payloadW,
		entryW:   htEntryHeader + payloadW,
		code:     ctx.DB.Codes.Register("engine:hash", 2560),
	}
	h.buckets = ctx.Work.Alloc(int(nb)*8, mem.LineSize)
	// Workspace arenas are recycled between queries (Reset does not zero),
	// so stale bytes from a previous query may alias the bucket array.
	b := ctx.Work.Bytes(h.buckets, int(nb)*8)
	for i := range b {
		b[i] = 0
	}
	return h
}

// Len returns the number of entries.
func (h *HashTable) Len() int { return h.n }

func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (h *HashTable) bucketAddr(k uint64) mem.Addr {
	return h.buckets + mem.Addr(mix(k)&(h.nbuckets-1))*8
}

// Insert adds an entry for key, copying payload in (payload may be nil for
// a zeroed entry). It returns the payload's backing slice and simulated
// address so callers can update it in place, tracing their own stores.
func (h *HashTable) Insert(rec *trace.Recorder, key uint64, payload []byte) ([]byte, mem.Addr) {
	if payload != nil && len(payload) != h.payloadW {
		panic(fmt.Sprintf("engine: payload %d bytes, table holds %d", len(payload), h.payloadW))
	}
	rec.Exec(h.code, 45)
	ba := h.bucketAddr(key)
	bm := h.arena.Bytes(ba, 8)
	head := binary.LittleEndian.Uint64(bm)
	// The bucket address is computed from a key loaded moments ago
	// (scanned tuple or probe row): a dependent access.
	rec.Load(ba, true)

	ea := h.arena.Alloc(h.entryW, 8)
	eb := h.arena.Bytes(ea, h.entryW)
	binary.LittleEndian.PutUint64(eb[0:8], head)
	binary.LittleEndian.PutUint64(eb[8:16], key)
	if payload != nil {
		copy(eb[htEntryHeader:], payload)
		rec.StoreRange(ea, h.entryW)
	} else {
		// A nil payload promises a zeroed entry; the arena may hand back
		// recycled bytes after a workspace Reset, so zero explicitly.
		for i := htEntryHeader; i < h.entryW; i++ {
			eb[i] = 0
		}
		rec.StoreRange(ea, htEntryHeader)
	}
	binary.LittleEndian.PutUint64(bm, uint64(ea))
	rec.Store(ba)
	h.n++
	return eb[htEntryHeader:], ea + htEntryHeader
}

// BucketOf returns the simulated address of key's bucket head without
// touching the table: batch probe loops hash a whole block of keys up
// front (pure host arithmetic, no memory traffic) and walk the chains in
// a second pass through IterAt.
func (h *HashTable) BucketOf(key uint64) mem.Addr { return h.bucketAddr(key) }

// BucketsOf appends every key's bucket-head address to out — BucketOf
// over a whole block of precomputed keys in one monomorphic loop. The
// output is reserved up front so steady-state probe loops reusing one
// scratch slice never regrow it mid-block.
func (h *HashTable) BucketsOf(keys []uint64, out []mem.Addr) []mem.Addr {
	if need := len(out) + len(keys); cap(out) < need {
		grown := make([]mem.Addr, len(out), need)
		copy(grown, out)
		out = grown
	}
	for _, k := range keys {
		out = append(out, h.bucketAddr(k))
	}
	return out
}

// InsertBatch adds one entry per listed row of a row-major buffer — the
// native whole-block build primitive behind the compiled join kernels.
// keys[k] is the k-th listed row's key; rows lists physical row indexes
// (nil means the dense prefix [0, n)). Entries come from one arena slab
// and are pushed onto their chains in row order, so chain order — and
// therefore probe match order and emission order — is identical to
// calling Insert per row; only the per-entry allocation and trace
// bookkeeping are batched away. Untraced: callers are native-only (nil
// Recorder) paths.
func (h *HashTable) InsertBatch(keys []uint64, buf []byte, stride int, rows []int32, n int) {
	if n == 0 {
		return
	}
	estride := (h.entryW + 7) &^ 7
	slab := h.arena.Alloc(n*estride, 8)
	sb := h.arena.Bytes(slab, n*estride)
	for k := 0; k < n; k++ {
		i := k
		if rows != nil {
			i = int(rows[k])
		}
		row := buf[i*stride : i*stride+h.payloadW]
		key := keys[k]
		ea := slab + mem.Addr(k*estride)
		eb := sb[k*estride : k*estride+h.entryW]
		ba := h.bucketAddr(key)
		bm := h.arena.Bytes(ba, 8)
		binary.LittleEndian.PutUint64(eb[0:8], binary.LittleEndian.Uint64(bm))
		binary.LittleEndian.PutUint64(eb[8:16], key)
		copy(eb[htEntryHeader:], row)
		binary.LittleEndian.PutUint64(bm, uint64(ea))
	}
	h.n += n
}

// LinkEntry adopts one entry-shaped record — the [next u64][key u64]
// [payload] layout RadixPart stages, at simulated address ea backed by
// eb — as this table's entry: it is pushed onto its bucket's chain by
// writing only its next word and the bucket head, so the radix build
// links rows where they were staged instead of copying them again.
// Head-insertion in arrival order makes chain order identical to
// Insert/InsertBatch over the same input order. Traced, it charges the
// dependent bucket-head load and the two header stores; the record
// itself was stored (and charged) at staging time.
func (h *HashTable) LinkEntry(rec *trace.Recorder, key uint64, ea mem.Addr, eb []byte) {
	ba := h.bucketAddr(key)
	bm := h.arena.Bytes(ba, 8)
	if rec != nil {
		rec.Exec(h.code, 12)
		// The bucket address is computed from the just-staged key: a
		// dependent access, same as Insert's.
		rec.Load(ba, true)
	}
	binary.LittleEndian.PutUint64(eb[0:8], binary.LittleEndian.Uint64(bm))
	binary.LittleEndian.PutUint64(bm, uint64(ea))
	if rec != nil {
		rec.Store(ea)
		rec.Store(ba)
	}
	h.n++
}

// Iter walks all entries matching key, calling fn with each payload and
// its simulated address; fn returns false to stop. The chain walk loads
// are dependent: each entry's address comes from the previous entry.
func (h *HashTable) Iter(rec *trace.Recorder, key uint64, fn func(payload []byte, at mem.Addr) bool) {
	h.IterAt(rec, h.bucketAddr(key), key, fn)
}

// IterAt is Iter with the bucket address precomputed via BucketOf; the
// traced work — instruction charge and dependent chain loads — is
// exactly Iter's.
func (h *HashTable) IterAt(rec *trace.Recorder, ba mem.Addr, key uint64, fn func(payload []byte, at mem.Addr) bool) {
	rec.Exec(h.code, 35)
	rec.Load(ba, true)
	cur := binary.LittleEndian.Uint64(h.arena.Bytes(ba, 8))
	for cur != 0 {
		ea := mem.Addr(cur)
		eb := h.arena.Bytes(ea, h.entryW)
		rec.Load(ea, true)
		if binary.LittleEndian.Uint64(eb[8:16]) == key {
			if h.payloadW > 0 {
				rec.LoadRange(ea+htEntryHeader, h.payloadW)
			}
			if !fn(eb[htEntryHeader:], ea+htEntryHeader) {
				return
			}
		}
		cur = binary.LittleEndian.Uint64(eb[0:8])
	}
}

// matchesNative appends every chain entry whose key equals key to out —
// IterAt minus the tracing and the per-entry callback, for native
// (nil-Recorder) probe loops. Match order is chain order, so emission
// order is identical to IterAt's.
func (h *HashTable) matchesNative(ba mem.Addr, key uint64, out [][]byte) [][]byte {
	buf, base := h.arena.Raw()
	cur := binary.LittleEndian.Uint64(buf[ba-base:])
	for cur != 0 {
		eo := mem.Addr(cur) - base
		eb := buf[eo : eo+mem.Addr(h.entryW)]
		if binary.LittleEndian.Uint64(eb[8:16]) == key {
			out = append(out, eb[htEntryHeader:])
		}
		cur = binary.LittleEndian.Uint64(eb[0:8])
	}
	return out
}

// probeLanes is how many chain walks the batched native probe keeps in
// flight: enough independent loads per round that an out-of-order host
// core overlaps their cache misses (AMAC-style memory-level parallelism),
// small enough that the lane state stays register/L1-resident.
const probeLanes = 16

// laneMatches is the reusable per-lane match staging of one batch-probe
// group; emission drains lanes in key order so output order is identical
// to walking the chains one key at a time.
type laneMatches struct {
	rows [probeLanes][][]byte
}

// ProbeBatchNative walks the chains of up to probeLanes keys lock-step —
// each round issues one independent entry load per live lane, so the
// host's out-of-order window overlaps what a one-key-at-a-time walk
// serializes — and calls emit with every match in (key index, chain
// order), byte-identical to per-key matchesNative. bas[k] must be keys[k]'s
// bucket-head address; lm is reusable scratch.
func (h *HashTable) ProbeBatchNative(bas []mem.Addr, keys []uint64, lm *laneMatches, emit func(k int, row []byte)) {
	buf, base := h.arena.Raw()
	var cur [probeLanes]mem.Addr
	for g := 0; g < len(keys); g += probeLanes {
		n := len(keys) - g
		if n > probeLanes {
			n = probeLanes
		}
		live := 0
		for l := 0; l < n; l++ {
			lm.rows[l] = lm.rows[l][:0]
			cur[l] = mem.Addr(binary.LittleEndian.Uint64(buf[bas[g+l]-base:]))
			if cur[l] != 0 {
				live++
			}
		}
		for live > 0 {
			for l := 0; l < n; l++ {
				if cur[l] == 0 {
					continue
				}
				eo := cur[l] - base
				eb := buf[eo : eo+mem.Addr(h.entryW)]
				if binary.LittleEndian.Uint64(eb[8:16]) == keys[g+l] {
					lm.rows[l] = append(lm.rows[l], eb[htEntryHeader:])
				}
				cur[l] = mem.Addr(binary.LittleEndian.Uint64(eb[0:8]))
				if cur[l] == 0 {
					live--
				}
			}
		}
		for l := 0; l < n; l++ {
			for _, row := range lm.rows[l] {
				emit(g+l, row)
			}
		}
	}
}

// ProbeBatchTraced is ProbeBatchNative's traced twin: the same lock-step
// multi-lane chain walk, with every lane's next line software-prefetched
// one round ahead (AMAC-style), so the dependent loads that serialize a
// one-key-at-a-time walk arrive warmed — the other lanes' work is the
// prefetch distance. Instruction charges match IterAt (one probe charge
// per key, one load per chain entry, payload loads on match), and match
// order is byte-identical to per-key IterAt walks.
func (h *HashTable) ProbeBatchTraced(rec *trace.Recorder, bas []mem.Addr, keys []uint64, lm *laneMatches, emit func(k int, row []byte)) {
	var cur [probeLanes]mem.Addr
	for g := 0; g < len(keys); g += probeLanes {
		n := len(keys) - g
		if n > probeLanes {
			n = probeLanes
		}
		// Bucket heads: prefetched as a group, then loaded. The head
		// addresses come from the block's up-front key pass, not from any
		// in-flight load, so the loads are independent and overlap.
		for l := 0; l < n; l++ {
			lm.rows[l] = lm.rows[l][:0]
			rec.Prefetch(bas[g+l])
		}
		live := 0
		for l := 0; l < n; l++ {
			rec.Exec(h.code, 35)
			rec.Load(bas[g+l], false)
			cur[l] = mem.Addr(binary.LittleEndian.Uint64(h.arena.Bytes(bas[g+l], 8)))
			if cur[l] != 0 {
				rec.Prefetch(cur[l])
				live++
			}
		}
		for live > 0 {
			for l := 0; l < n; l++ {
				if cur[l] == 0 {
					continue
				}
				ea := cur[l]
				eb := h.arena.Bytes(ea, h.entryW)
				rec.Load(ea, true)
				if binary.LittleEndian.Uint64(eb[8:16]) == keys[g+l] {
					if h.payloadW > 0 {
						rec.LoadRange(ea+htEntryHeader, h.payloadW)
					}
					lm.rows[l] = append(lm.rows[l], eb[htEntryHeader:])
				}
				cur[l] = mem.Addr(binary.LittleEndian.Uint64(eb[0:8]))
				if cur[l] != 0 {
					rec.Prefetch(cur[l])
				} else {
					live--
				}
			}
		}
		for l := 0; l < n; l++ {
			for _, row := range lm.rows[l] {
				emit(g+l, row)
			}
		}
	}
}

// ChainLengths calls observe with the length of every non-empty bucket
// chain — a native walk for observability (engine_hash_chain_len), so it
// charges no simulated work.
func (h *HashTable) ChainLengths(observe func(n int)) {
	buf, base := h.arena.Raw()
	for b := uint64(0); b < h.nbuckets; b++ {
		cur := binary.LittleEndian.Uint64(buf[h.buckets+mem.Addr(b*8)-base:])
		n := 0
		for cur != 0 {
			n++
			cur = binary.LittleEndian.Uint64(buf[mem.Addr(cur)-base:])
		}
		if n > 0 {
			observe(n)
		}
	}
}

// Lookup returns the first payload for key (nil when absent) and its
// simulated address.
func (h *HashTable) Lookup(rec *trace.Recorder, key uint64) ([]byte, mem.Addr) {
	var out []byte
	var at mem.Addr
	h.Iter(rec, key, func(p []byte, a mem.Addr) bool {
		out, at = p, a
		return false
	})
	return out, at
}

// LookupOrInsert returns the payload for key, creating a zeroed entry when
// absent (the hash-aggregate upsert path). created reports insertion.
func (h *HashTable) LookupOrInsert(rec *trace.Recorder, key uint64) (payload []byte, at mem.Addr, created bool) {
	if p, a := h.Lookup(rec, key); p != nil {
		return p, a, false
	}
	p, a := h.Insert(rec, key, nil)
	return p, a, true
}

// Scan visits every entry in bucket order (hash-aggregate output).
func (h *HashTable) Scan(rec *trace.Recorder, fn func(key uint64, payload []byte) bool) {
	for b := uint64(0); b < h.nbuckets; b++ {
		ba := h.buckets + mem.Addr(b*8)
		cur := binary.LittleEndian.Uint64(h.arena.Bytes(ba, 8))
		if cur != 0 {
			rec.Load(ba, false)
		}
		for cur != 0 {
			ea := mem.Addr(cur)
			eb := h.arena.Bytes(ea, h.entryW)
			rec.Load(ea, true)
			if h.payloadW > 0 {
				rec.LoadRange(ea+htEntryHeader, h.payloadW)
			}
			if !fn(binary.LittleEndian.Uint64(eb[8:16]), eb[htEntryHeader:]) {
				return
			}
			cur = binary.LittleEndian.Uint64(eb[0:8])
		}
	}
}
