package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// buildParTable loads a small fact table for parallel-executor tests.
func buildParTable(t *testing.T, rows int) (*DB, *Table) {
	t.Helper()
	db := NewDB(Config{ArenaBytes: 64 << 20})
	tb, err := db.CreateTable("fact", Schema{
		Int("id"), Int("grp"), Float("amount"),
	}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		_, err := tb.Insert(nil, []Value{
			IV(int64(i)), IV(int64(i % 7)), FV(float64(i%100) / 4),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

func workerCtxs(db *DB, n int) []*Ctx {
	ctxs := make([]*Ctx, n)
	for w := 0; w < n; w++ {
		ctxs[w] = db.NewCtx(nil, 40+w, 16<<20)
	}
	return ctxs
}

func TestWorkPoolDrainsEverything(t *testing.T) {
	p := NewWorkPool[int](4)
	const items = 1000
	for i := 0; i < items; i++ {
		p.Push(i%4, i)
	}
	p.Close()
	seen := make([]bool, items)
	for w := 0; w < 4; w++ {
		for {
			v, ok := p.Take(w)
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("item %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d lost", i)
		}
	}
}

func TestWorkPoolStealsFromLoadedVictim(t *testing.T) {
	p := NewWorkPool[int](2)
	p.Push(0, 1)
	p.Push(0, 2)
	// Worker 1 has nothing of its own: it must steal worker 0's OLDEST item.
	v, ok := p.TryTake(1)
	if !ok || v != 1 {
		t.Fatalf("steal got (%d, %v), want oldest item 1", v, ok)
	}
	// Worker 0 pops its own NEWEST item.
	v, ok = p.TryTake(0)
	if !ok || v != 2 {
		t.Fatalf("own pop got (%d, %v), want newest item 2", v, ok)
	}
}

// TestWorkPoolHammer drives pushes, takes, and steals from many
// goroutines at once; under -race it is the data-race check the
// work-stealing queue must pass.
func TestWorkPoolHammer(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	p := NewWorkPool[int](workers)
	var produced sync.WaitGroup
	for w := 0; w < workers; w++ {
		produced.Add(1)
		go func(w int) {
			defer produced.Done()
			for i := 0; i < perWorker; i++ {
				p.Push(w, w*perWorker+i)
			}
		}(w)
	}
	go func() {
		produced.Wait()
		p.Close()
	}()

	var got atomic.Int64
	var sum atomic.Int64
	var consumed sync.WaitGroup
	for w := 0; w < workers; w++ {
		consumed.Add(1)
		go func(w int) {
			defer consumed.Done()
			for {
				v, ok := p.Take(w)
				if !ok {
					return
				}
				got.Add(1)
				sum.Add(int64(v))
			}
		}(w)
	}
	consumed.Wait()
	total := int64(workers * perWorker)
	if got.Load() != total {
		t.Fatalf("consumed %d items, want %d", got.Load(), total)
	}
	wantSum := total * (total - 1) / 2
	if sum.Load() != wantSum {
		t.Fatalf("item sum %d, want %d (lost or duplicated work)", sum.Load(), wantSum)
	}
}

func TestMorselPoolCoversAllPages(t *testing.T) {
	for _, pages := range []int{0, 1, 15, 16, 17, 100} {
		pool := NewMorselPool(3, pages, 16)
		covered := make([]int, pages)
		for w := 0; w < 3; w++ {
			for {
				m, ok := pool.Next(w)
				if !ok {
					break
				}
				for i := m.Lo; i < m.Hi; i++ {
					covered[i]++
				}
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("pages=%d: page %d covered %d times", pages, i, c)
			}
		}
	}
}

// scanIDs drains a (possibly parallel) scan of tb and returns the sorted
// ids that passed.
func parallelScanIDs(t *testing.T, db *DB, tb *Table, workers int, preds []Pred) []int64 {
	t.Helper()
	ctxs := workerCtxs(db, workers)
	var mu sync.Mutex
	var ids []int64
	err := ParallelScan(ctxs, tb, preds, nil, 4, func(w int, row []byte) error {
		mu.Lock()
		ids = append(ids, RowInt(row, 0))
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestParallelScanMatchesSerial(t *testing.T) {
	db, tb := buildParTable(t, 20000)
	preds := []Pred{PredInt(0, LT, 15000)}

	var want []int64
	sctx := db.NewCtx(nil, 0, 16<<20)
	err := Run(sctx, &SeqScan{Table: tb, Preds: preds}, func(row []byte) error {
		want = append(want, RowInt(row, 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	for _, workers := range []int{1, 2, 4, 8} {
		got := parallelScanIDs(t, db, tb, workers, preds)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d = %d, serial %d", workers, i, got[i], want[i])
			}
		}
	}
}

// aggRows runs a grouped aggregate (serial when workers == 0) and returns
// rows decoded and sorted by group key.
func aggRows(t *testing.T, db *DB, tb *Table, workers int) [][]Value {
	t.Helper()
	specs := []AggSpec{
		{Func: Sum, Col: 2, Name: "sum_amount"},
		{Func: Count, Name: "n"},
		{Func: Avg, Col: 2, Name: "avg_amount"},
		{Func: Min, Col: 2, Name: "min_amount"},
		{Func: Max, Col: 2, Name: "max_amount"},
	}
	var op Op
	if workers == 0 {
		op = &HashAgg{
			Child:     &SeqScan{Table: tb},
			GroupCols: []int{1},
			Aggs:      specs,
			Expected:  16,
		}
	} else {
		ctxs := workerCtxs(db, workers)
		pool := NewMorselPool(workers, tb.Heap.NumPages(), 4)
		op = &ParallelAgg{
			Ctxs: ctxs,
			Build: func(w int) Op {
				return &MorselScan{Table: tb, Pool: pool, Worker: w}
			},
			GroupCols: []int{1},
			Aggs:      specs,
			Expected:  16,
		}
	}
	ctx := db.NewCtx(nil, 30, 16<<20)
	rows, err := Collect(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
	return rows
}

func TestParallelAggMatchesSerialAcrossWorkerCounts(t *testing.T) {
	db, tb := buildParTable(t, 20000)
	want := aggRows(t, db, tb, 0)
	if len(want) != 7 {
		t.Fatalf("serial groups = %d, want 7", len(want))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := aggRows(t, db, tb, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d groups, serial %d", workers, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				w, g := want[i][c], got[i][c]
				if w.Kind != g.Kind {
					t.Fatalf("workers=%d group %d col %d: kind %v vs %v", workers, i, c, g.Kind, w.Kind)
				}
				switch w.Kind {
				case TInt:
					if g.I != w.I {
						t.Fatalf("workers=%d group %d col %d: %d, serial %d", workers, i, c, g.I, w.I)
					}
				case TFloat:
					if math.Abs(g.F-w.F) > 1e-6*(1+math.Abs(w.F)) {
						t.Fatalf("workers=%d group %d col %d: %v, serial %v", workers, i, c, g.F, w.F)
					}
				}
			}
		}
	}
}

func TestExchangeMergesAllWorkerRows(t *testing.T) {
	db, tb := buildParTable(t, 10000)
	for _, workers := range []int{1, 3} {
		ctxs := workerCtxs(db, workers)
		pool := NewMorselPool(workers, tb.Heap.NumPages(), 8)
		ex := &Exchange{
			Ctxs: ctxs,
			Build: func(w int) Op {
				return &MorselScan{Table: tb, Pool: pool, Worker: w}
			},
		}
		ctx := db.NewCtx(nil, 30, 16<<20)
		n := 0
		if err := Run(ctx, ex, func([]byte) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 10000 {
			t.Fatalf("workers=%d: exchange delivered %d rows, want 10000", workers, n)
		}
	}
}

func TestExchangeEarlyCloseReleasesWorkers(t *testing.T) {
	db, tb := buildParTable(t, 10000)
	ctxs := workerCtxs(db, 4)
	pool := NewMorselPool(4, tb.Heap.NumPages(), 4)
	ex := &Exchange{
		Ctxs: ctxs,
		Build: func(w int) Op {
			return &MorselScan{Table: tb, Pool: pool, Worker: w}
		},
	}
	ctx := db.NewCtx(nil, 30, 16<<20)
	lim := &Limit{Child: ex, N: 5}
	rows, err := Collect(ctx, lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit over exchange returned %d rows", len(rows))
	}
}

// joinCounts builds two tables with a known match structure and joins
// them, returning per-key output counts.
func joinCounts(t *testing.T, jt JoinType, workers int) map[int64]int {
	t.Helper()
	db := NewDB(Config{ArenaBytes: 64 << 20})
	left, err := db.CreateTable("probe", Schema{Int("k"), Int("tag")}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	right, err := db.CreateTable("build", Schema{Int("k"), Float("v")}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	// Probe keys 0..2999; build holds keys 0..1999, duplicated for k%5==0.
	for i := 0; i < 3000; i++ {
		if _, err := left.Insert(nil, []Value{IV(int64(i)), IV(int64(i % 3))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := right.Insert(nil, []Value{IV(int64(i)), FV(float64(i))}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := right.Insert(nil, []Value{IV(int64(i)), FV(float64(-i))}); err != nil {
				t.Fatal(err)
			}
		}
	}

	counts := map[int64]int{}
	if workers == 0 {
		j := &HashJoin{
			Left:    &SeqScan{Table: left},
			Right:   &SeqScan{Table: right},
			LeftCol: 0, RightCol: 0,
			Type: jt,
		}
		ctx := db.NewCtx(nil, 30, 16<<20)
		if err := Run(ctx, j, func(row []byte) error {
			counts[RowInt(row, 0)]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return counts
	}

	ctxs := workerCtxs(db, workers)
	probePool := NewMorselPool(workers, left.Heap.NumPages(), 4)
	buildPool := NewMorselPool(workers, right.Heap.NumPages(), 4)
	j := &ParallelHashJoin{
		Ctxs: ctxs,
		ProbeSrc: func(w int) Op {
			return &MorselScan{Table: left, Pool: probePool, Worker: w}
		},
		BuildSrc: func(w int) Op {
			return &MorselScan{Table: right, Pool: buildPool, Worker: w}
		},
		ProbeCol: 0, BuildCol: 0,
		Type: jt,
	}
	ctx := db.NewCtx(nil, 30, 16<<20)
	var mu sync.Mutex
	if err := Run(ctx, j, func(row []byte) error {
		mu.Lock()
		counts[RowInt(row, 0)]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	for _, jt := range []JoinType{Inner, LeftOuter} {
		want := joinCounts(t, jt, 0)
		for _, workers := range []int{1, 2, 4} {
			got := joinCounts(t, jt, workers)
			if len(got) != len(want) {
				t.Fatalf("type=%v workers=%d: %d keys, serial %d", jt, workers, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("type=%v workers=%d: key %d count %d, serial %d", jt, workers, k, got[k], n)
				}
			}
		}
	}
}

func TestParallelScanPropagatesWorkerError(t *testing.T) {
	db, tb := buildParTable(t, 5000)
	ctxs := workerCtxs(db, 4)
	boom := fmt.Errorf("boom")
	err := ParallelScan(ctxs, tb, nil, nil, 2, func(w int, row []byte) error {
		if RowInt(row, 0) == 3000 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("worker error swallowed")
	}
}
