package engine

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// JoinType selects inner or left-outer semantics.
type JoinType uint8

// Join types.
const (
	Inner JoinType = iota
	// LeftOuter preserves probe-side (left) rows without matches, zero-
	// filling the build-side columns (the engine has no NULLs; workloads
	// use sentinel zero, as Q13's count treats missing orders).
	LeftOuter
)

// probeCore is the streaming-probe state machine shared by HashJoin and
// ParallelHashJoin's probe workers: emit the pending matches of the
// current probe row, else advance the probe side, collect its matches
// through lookup, zero-filling the build columns on LeftOuter misses.
type probeCore struct {
	buf     []byte   // assembled output row (probe ++ build)
	lbuf    []byte   // snapshot of the current probe row
	pending [][]byte // matches of the current probe row awaiting emission
}

func (p *probeCore) init(outW, probeW int) {
	p.buf = make([]byte, outW)
	p.lbuf = make([]byte, probeW)
	p.pending = nil
}

// next pulls the next joined row. keyOff locates the probe key in the
// probe schema; lookup hands every matching build row to collect.
func (p *probeCore) next(ctx *Ctx, probe Op, keyOff int, jt JoinType, code mem.CodeSeg, lookup func(rec *trace.Recorder, key uint64, collect func(payload []byte))) ([]byte, bool, error) {
	lw := len(p.lbuf)
	for {
		if len(p.pending) > 0 {
			r := p.pending[0]
			p.pending = p.pending[1:]
			copy(p.buf, p.lbuf)
			copy(p.buf[lw:], r)
			return p.buf, true, nil
		}
		row, ok, err := probe.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Rec.Exec(code, 75)
		key := uint64(RowInt(row, keyOff))
		copy(p.lbuf, row)
		p.pending = p.pending[:0]
		lookup(ctx.Rec, key, func(payload []byte) {
			m := make([]byte, len(payload))
			copy(m, payload)
			p.pending = append(p.pending, m)
		})
		if len(p.pending) == 0 && jt == LeftOuter {
			copy(p.buf, p.lbuf)
			for i := lw; i < len(p.buf); i++ {
				p.buf[i] = 0
			}
			return p.buf, true, nil
		}
	}
}

// HashJoin joins Left (probe side, streamed) against Right (build side,
// materialized into a workspace hash table) on integer key equality.
// Output rows are Left ++ Right columns.
type HashJoin struct {
	Left, Right       Op
	LeftCol, RightCol int
	Type              JoinType

	out    Schema
	ht     *HashTable
	lOffs  []int
	rWidth int
	code   mem.CodeSeg
	pc     probeCore
}

// Schema implements Op.
func (j *HashJoin) Schema() Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Op: it drains the build side into the hash table.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:hashjoin", 5120)
	j.lOffs = j.Left.Schema().Offsets()
	j.rWidth = j.Right.Schema().RowWidth()
	j.pc.init(j.out.RowWidth(), j.Left.Schema().RowWidth())

	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	defer j.Right.Close(ctx)
	rOffs := j.Right.Schema().Offsets()
	rCol := rOffs[j.RightCol]
	// Build-size estimate: grow from a small default; the hash table
	// handles chains, so underestimation costs only chain length.
	j.ht = NewHashTable(ctx, 4096, j.rWidth)
	for {
		row, ok, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.Rec.Exec(j.code, 60)
		key := uint64(RowInt(row, rCol))
		j.ht.Insert(ctx.Rec, key, row)
	}
	return j.Left.Open(ctx)
}

// Close implements Op.
func (j *HashJoin) Close(ctx *Ctx) {
	j.Left.Close(ctx)
	j.ht = nil
}

// Next implements Op.
func (j *HashJoin) Next(ctx *Ctx) ([]byte, bool, error) {
	return j.pc.next(ctx, j.Left, j.lOffs[j.LeftCol], j.Type, j.code,
		func(rec *trace.Recorder, key uint64, collect func([]byte)) {
			j.ht.Iter(rec, key, func(payload []byte, _ mem.Addr) bool {
				collect(payload)
				return true
			})
		})
}

// NLJoin is a nested-loop join for small inputs or non-equality
// conditions; On receives (leftRow, rightRow).
type NLJoin struct {
	Left, Right Op
	On          func(l, r []byte) bool

	out     Schema
	buf     []byte
	right   [][]byte
	lrow    []byte
	haveRow bool
	ri      int
	code    mem.CodeSeg
}

// Schema implements Op.
func (j *NLJoin) Schema() Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Op: the right side is materialized once.
func (j *NLJoin) Open(ctx *Ctx) error {
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:nljoin", 2048)
	j.buf = make([]byte, j.out.RowWidth())
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	defer j.Right.Close(ctx)
	j.right = j.right[:0]
	for {
		row, ok, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// Materialize into the workspace so re-scans have addresses.
		a := ctx.Work.Alloc(len(row), 8)
		b := ctx.Work.Bytes(a, len(row))
		copy(b, row)
		ctx.Rec.StoreRange(a, len(row))
		j.right = append(j.right, b)
	}
	j.lrow = make([]byte, j.Left.Schema().RowWidth())
	j.haveRow = false
	j.ri = 0
	return j.Left.Open(ctx)
}

// Close implements Op.
func (j *NLJoin) Close(ctx *Ctx) { j.Left.Close(ctx) }

// Next implements Op.
func (j *NLJoin) Next(ctx *Ctx) ([]byte, bool, error) {
	lw := j.Left.Schema().RowWidth()
	for {
		if !j.haveRow {
			row, ok, err := j.Left.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			copy(j.lrow, row)
			j.haveRow = true
			j.ri = 0
		}
		for j.ri < len(j.right) {
			r := j.right[j.ri]
			j.ri++
			ctx.Rec.Exec(j.code, 40)
			if j.On == nil || j.On(j.lrow, r) {
				copy(j.buf, j.lrow)
				copy(j.buf[lw:], r)
				return j.buf, true, nil
			}
		}
		j.haveRow = false
	}
}
