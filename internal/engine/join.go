package engine

import (
	"repro/internal/mem"
)

// JoinType selects inner or left-outer semantics.
type JoinType uint8

// Join types.
const (
	Inner JoinType = iota
	// LeftOuter preserves probe-side (left) rows without matches, zero-
	// filling the build-side columns (the engine has no NULLs; workloads
	// use sentinel zero, as Q13's count treats missing orders).
	LeftOuter
)

// HashJoin joins Left (probe side, streamed) against Right (build side,
// materialized into a workspace hash table) on integer key equality.
// Output rows are Left ++ Right columns.
type HashJoin struct {
	Left, Right       Op
	LeftCol, RightCol int
	Type              JoinType

	out     Schema
	ht      *HashTable
	buf     []byte
	lOffs   []int
	rWidth  int
	code    mem.CodeSeg
	pending [][]byte // matches of the current probe row awaiting emission
	lrow    []byte
	lbuf    []byte
}

// Schema implements Op.
func (j *HashJoin) Schema() Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Op: it drains the build side into the hash table.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:hashjoin", 5120)
	j.lOffs = j.Left.Schema().Offsets()
	j.rWidth = j.Right.Schema().RowWidth()
	j.buf = make([]byte, j.out.RowWidth())
	j.lbuf = make([]byte, j.Left.Schema().RowWidth())
	j.pending = nil
	j.lrow = nil

	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	defer j.Right.Close(ctx)
	rOffs := j.Right.Schema().Offsets()
	rCol := rOffs[j.RightCol]
	// Build-size estimate: grow from a small default; the hash table
	// handles chains, so underestimation costs only chain length.
	j.ht = NewHashTable(ctx, 4096, j.rWidth)
	for {
		row, ok, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.Rec.Exec(j.code, 60)
		key := uint64(RowInt(row, rCol))
		j.ht.Insert(ctx.Rec, key, row)
	}
	return j.Left.Open(ctx)
}

// Close implements Op.
func (j *HashJoin) Close(ctx *Ctx) {
	j.Left.Close(ctx)
	j.ht = nil
}

// Next implements Op.
func (j *HashJoin) Next(ctx *Ctx) ([]byte, bool, error) {
	lw := j.Left.Schema().RowWidth()
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			copy(j.buf, j.lrow)
			copy(j.buf[lw:], r)
			return j.buf, true, nil
		}
		row, ok, err := j.Left.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Rec.Exec(j.code, 75)
		key := uint64(RowInt(row, j.lOffs[j.LeftCol]))
		copy(j.lbuf, row)
		j.lrow = j.lbuf
		j.pending = j.pending[:0]
		j.ht.Iter(ctx.Rec, key, func(payload []byte, _ mem.Addr) bool {
			m := make([]byte, len(payload))
			copy(m, payload)
			j.pending = append(j.pending, m)
			return true
		})
		if len(j.pending) == 0 && j.Type == LeftOuter {
			copy(j.buf, j.lrow)
			for i := lw; i < len(j.buf); i++ {
				j.buf[i] = 0
			}
			return j.buf, true, nil
		}
	}
}

// NLJoin is a nested-loop join for small inputs or non-equality
// conditions; On receives (leftRow, rightRow).
type NLJoin struct {
	Left, Right Op
	On          func(l, r []byte) bool

	out     Schema
	buf     []byte
	right   [][]byte
	lrow    []byte
	haveRow bool
	ri      int
	code    mem.CodeSeg
}

// Schema implements Op.
func (j *NLJoin) Schema() Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Op: the right side is materialized once.
func (j *NLJoin) Open(ctx *Ctx) error {
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:nljoin", 2048)
	j.buf = make([]byte, j.out.RowWidth())
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	defer j.Right.Close(ctx)
	j.right = j.right[:0]
	for {
		row, ok, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// Materialize into the workspace so re-scans have addresses.
		a := ctx.Work.Alloc(len(row), 8)
		b := ctx.Work.Bytes(a, len(row))
		copy(b, row)
		ctx.Rec.StoreRange(a, len(row))
		j.right = append(j.right, b)
	}
	j.lrow = make([]byte, j.Left.Schema().RowWidth())
	j.haveRow = false
	j.ri = 0
	return j.Left.Open(ctx)
}

// Close implements Op.
func (j *NLJoin) Close(ctx *Ctx) { j.Left.Close(ctx) }

// Next implements Op.
func (j *NLJoin) Next(ctx *Ctx) ([]byte, bool, error) {
	lw := j.Left.Schema().RowWidth()
	for {
		if !j.haveRow {
			row, ok, err := j.Left.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			copy(j.lrow, row)
			j.haveRow = true
			j.ri = 0
		}
		for j.ri < len(j.right) {
			r := j.right[j.ri]
			j.ri++
			ctx.Rec.Exec(j.code, 40)
			if j.On == nil || j.On(j.lrow, r) {
				copy(j.buf, j.lrow)
				copy(j.buf[lw:], r)
				return j.buf, true, nil
			}
		}
		j.haveRow = false
	}
}
