package engine

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

func TestParseJoinModeRoundTrip(t *testing.T) {
	for _, m := range []JoinMode{JoinAuto, JoinChained, JoinPartitioned, JoinPrefetch} {
		got, err := ParseJoinMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseJoinMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseJoinMode(""); err != nil || m != JoinAuto {
		t.Fatalf("empty join mode = %v, %v", m, err)
	}
	if _, err := ParseJoinMode("sideways"); err == nil {
		t.Fatal("bogus join mode accepted")
	}
}

func TestJoinPartsSizing(t *testing.T) {
	if p := joinParts(100, 24); p != 1 {
		t.Fatalf("tiny build partitioned into %d", p)
	}
	p := joinParts(100_000, 24)
	if p <= 1 || p&(p-1) != 0 || p > joinMaxParts {
		t.Fatalf("full-scale fan-out = %d, want a power of two in (1, %d]", p, joinMaxParts)
	}
	// Per-partition footprint lands under the budget (or the fan-out cap
	// was hit).
	if p < joinMaxParts && 100_000*(24+16)/p > JoinPartBudget {
		t.Fatalf("fan-out %d leaves partitions over budget", p)
	}
	if joinParts(0, 24) != 1 || joinParts(-5, 24) != 1 {
		t.Fatal("non-positive estimate should mean one partition")
	}
	if joinParts(1<<40, 24) != joinMaxParts {
		t.Fatal("huge estimate should clamp at joinMaxParts")
	}
}

// TestNewHashTableClampsBucketArray: an absurd cardinality hint must not
// let the bucket array swallow the workspace arena — the doubling stops
// at a quarter of the free bytes, and the table still works.
func TestNewHashTableClampsBucketArray(t *testing.T) {
	db := testDB(t)
	ctx := db.NewCtx(nil, 0, 4<<20)
	free := ctx.Work.Size() - ctx.Work.Used()
	h := NewHashTable(ctx, 1<<40, 8)
	if got := int(h.nbuckets) * 8; got > free/4 {
		t.Fatalf("bucket array = %d bytes, over a quarter of the %d free", got, free)
	}
	var row [8]byte
	binary.LittleEndian.PutUint64(row[:], 77)
	h.Insert(nil, 42, row[:])
	hits := 0
	h.Iter(nil, 42, func(payload []byte, _ mem.Addr) bool {
		if binary.LittleEndian.Uint64(payload) == 77 {
			hits++
		}
		return true
	})
	if hits != 1 {
		t.Fatalf("clamped table found %d matches, want 1", hits)
	}
}

// TestRadixPartMatchesChained: the fused single-pass radix build (both
// the traced Add and the native AddBlockNative) must produce, for every
// key, exactly the chained table's matches in the chained table's chain
// order — head-insertion in arrival order on both sides.
func TestRadixPartMatchesChained(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	const rows, distinct = 4096, 512
	keyOf := func(i int) uint64 { return uint64(i%distinct) * 2654435761 }

	chained := NewHashTable(ctx, distinct, 8)
	rp := NewRadixPart(ctx, 8, 8, distinct, rows)
	nat := NewRadixPart(ctx, 8, 8, distinct, rows)
	{
		keys := make([]uint64, rows)
		buf := make([]byte, rows*8)
		for i := 0; i < rows; i++ {
			keys[i] = keyOf(i)
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(i))
		}
		nat.AddBlockNative(keys, buf, 8, nil, rows)
	}
	var row [8]byte
	for i := 0; i < rows; i++ {
		binary.LittleEndian.PutUint64(row[:], uint64(i))
		chained.Insert(nil, keyOf(i), row[:])
		rp.Add(keyOf(i), row[:])
	}
	pt, ptNat := rp.Build(), nat.Build()
	if pt.Len() != rows || ptNat.Len() != rows || chained.Len() != rows {
		t.Fatalf("entry counts: chained=%d traced=%d native=%d", chained.Len(), pt.Len(), ptNat.Len())
	}
	collect := func(iter func(key uint64, fn func(payload []byte, at mem.Addr) bool), key uint64) []uint64 {
		var out []uint64
		iter(key, func(p []byte, _ mem.Addr) bool {
			out = append(out, binary.LittleEndian.Uint64(p))
			return true
		})
		return out
	}
	for k := 0; k < distinct; k++ {
		key := keyOf(k)
		want := collect(func(key uint64, fn func([]byte, mem.Addr) bool) { chained.Iter(nil, key, fn) }, key)
		got := collect(func(key uint64, fn func([]byte, mem.Addr) bool) { pt.Iter(nil, key, fn) }, key)
		gotNat := collect(func(key uint64, fn func([]byte, mem.Addr) bool) { ptNat.Iter(nil, key, fn) }, key)
		if len(want) != rows/distinct {
			t.Fatalf("key %d: chained found %d of %d", k, len(want), rows/distinct)
		}
		for i := range want {
			if got[i] != want[i] || gotNat[i] != want[i] {
				t.Fatalf("key %d match %d: chained=%d traced=%d native=%d", k, i, want[i], got[i], gotNat[i])
			}
		}
	}
	// Partition routing is consistent between the pass and the table.
	for k := 0; k < distinct; k++ {
		if got, want := pt.Table(keyOf(k)), pt.tables[rp.partOf(keyOf(k))]; got != want {
			t.Fatalf("key %d routed to a different partition at probe time", k)
		}
	}
}
