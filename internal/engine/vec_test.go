package engine

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// collectBytes drains op and returns every row's encoded bytes.
func collectBytes(t *testing.T, ctx *Ctx, op Op) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Run(ctx, op, func(row []byte) error {
		c := make([]byte, len(row))
		copy(c, row)
		out = append(out, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameBytes asserts two row streams are byte-identical.
func sameBytes(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: row %d differs:\n got %x\nwant %x", label, i, got[i], want[i])
		}
	}
}

func layouts() []storage.Layout {
	return []storage.Layout{storage.NSM, storage.PAXLayout}
}

func TestScanVecMatchesSeqScanBothLayouts(t *testing.T) {
	for _, layout := range layouts() {
		db := testDB(t)
		tb := mkTable(t, db, layout, 5000)
		ctx := testCtx(t, db)
		preds := []Pred{PredInt(1, EQ, 3), PredFloat(2, LT, 2000)}
		cases := []struct {
			name  string
			preds []Pred
			cols  []int
			start int
		}{
			{"full", nil, nil, 0},
			{"preds", preds, nil, 0},
			{"preds+cols", preds, []int{0, 2}, 0},
			{"cols", nil, []int{3, 1}, 0},
			{"startpage", preds, nil, 3},
		}
		for _, c := range cases {
			want := collectBytes(t, ctx, &SeqScan{Table: tb, Preds: c.preds, Cols: c.cols, StartPage: c.start})
			got := collectBytes(t, ctx, &RowAdapter{Vec: &ScanVec{Table: tb, Preds: c.preds, Cols: c.cols, StartPage: c.start}})
			sameBytes(t, layout.String()+"/"+c.name, got, want)
		}
	}
}

func TestScanVecRangeMatchesSeqScanRange(t *testing.T) {
	for _, layout := range layouts() {
		db := testDB(t)
		tb := mkTable(t, db, layout, 5000)
		ctx := testCtx(t, db)
		r := &PageRange{Lo: 2, Hi: 5}
		want := collectBytes(t, ctx, &SeqScan{Table: tb, Range: r})
		got := collectBytes(t, ctx, &RowAdapter{Vec: &ScanVec{Table: tb, Range: r}})
		if len(want) == 0 {
			t.Fatalf("%v: empty page range", layout)
		}
		sameBytes(t, layout.String()+"/range", got, want)
	}
}

func TestFilterProjectMapVecMatchRowOps(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 4000)
	ctx := testCtx(t, db)
	preds := []Pred{PredIntBetween(0, 100, 3000)}
	mapOut := Schema{Int("id2"), Float("v2")}
	mapFn := func(in, out []byte) {
		PutRowInt(out, 0, RowInt(in, 0)*2)
		PutRowFloat(out, 8, RowFloat(in, 16)+1)
	}

	want := collectBytes(t, ctx, &Map{
		Child: &Project{Child: &Filter{Child: &SeqScan{Table: tb}, Preds: preds}, Cols: []int{0, 1, 2}},
		Out:   mapOut, Fn: mapFn,
	})
	got := collectBytes(t, ctx, &RowAdapter{Vec: &MapVec{
		Child: &ProjectVec{Child: &FilterVec{Child: &ScanVec{Table: tb}, Preds: preds}, Cols: []int{0, 1, 2}},
		Out:   mapOut, Fn: mapFn,
	}})
	sameBytes(t, "filter/project/map", got, want)
}

func TestHashAggVecMatchesHashAgg(t *testing.T) {
	for _, layout := range layouts() {
		db := testDB(t)
		tb := mkTable(t, db, layout, 6000)
		ctx := testCtx(t, db)
		aggs := []AggSpec{
			{Func: Count, Name: "n"},
			{Func: Sum, Col: 2, Name: "s"},
			{Func: Avg, Col: 2, Name: "a"},
			{Func: Min, Col: 0, Name: "lo"},
			{Func: Max, Col: 0, Name: "hi"},
		}
		want := collectBytes(t, ctx, &HashAgg{
			Child: &SeqScan{Table: tb}, GroupCols: []int{1}, Aggs: aggs, Expected: 8,
		})
		got := collectBytes(t, ctx, &RowAdapter{Vec: &HashAggVec{
			Child: &ScanVec{Table: tb}, GroupCols: []int{1}, Aggs: aggs, Expected: 8,
		}})
		sameBytes(t, layout.String()+"/hashagg", got, want)
	}
}

func TestHashJoinVecMatchesHashJoin(t *testing.T) {
	for _, jt := range []JoinType{Inner, LeftOuter} {
		db := testDB(t)
		left := mkTable(t, db, storage.NSM, 3000)
		right, err := db.CreateTable("r", Schema{Int("k"), Float("w")}, storage.NSM)
		if err != nil {
			t.Fatal(err)
		}
		// Keys 0..6 with two duplicates of key 3; key 5 absent.
		for _, k := range []int64{0, 1, 2, 3, 3, 4, 6} {
			if _, err := right.Insert(nil, []Value{IV(k), FV(float64(k) * 10)}); err != nil {
				t.Fatal(err)
			}
		}
		ctx := testCtx(t, db)
		want := collectBytes(t, ctx, &HashJoin{
			Left: &SeqScan{Table: left}, Right: &SeqScan{Table: right},
			LeftCol: 1, RightCol: 0, Type: jt,
		})
		got := collectBytes(t, ctx, &RowAdapter{Vec: &HashJoinVec{
			Probe: &ScanVec{Table: left}, Build: &ScanVec{Table: right},
			ProbeCol: 1, BuildCol: 0, Type: jt,
		}})
		if len(want) == 0 {
			t.Fatal("join produced no rows")
		}
		sameBytes(t, "join", got, want)
	}
}

func TestMorselScanVecCoversTableOnce(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 5000)
	want := collectBytes(t, testCtx(t, db), &SeqScan{Table: tb})
	for _, workers := range []int{1, 3} {
		pool := NewMorselPool(workers, tb.Heap.NumPages(), 2)
		seen := make(map[int64]int)
		total := 0
		for w := 0; w < workers; w++ {
			ms := &MorselScanVec{Table: tb, Pool: pool, Worker: w}
			ctx := db.NewCtx(nil, 10+w, 8<<20)
			err := RunVec(ctx, ms, func(blk *Block) error {
				for i := 0; i < blk.N(); i++ {
					seen[RowInt(blk.RowAt(i), 0)]++
					total++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if total != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, total, len(want))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: row %d scanned %d times", workers, id, n)
			}
		}
	}
}

func TestVecAdapterRoundTrip(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 3000)
	ctx := testCtx(t, db)
	want := collectBytes(t, ctx, &SeqScan{Table: tb})
	got := collectBytes(t, ctx, &RowAdapter{Vec: &VecAdapter{Child: &SeqScan{Table: tb}, BlockRows: 64}})
	sameBytes(t, "vecadapter", got, want)
}

func TestBlockRefcountRecycles(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	home := make(chan *Block, 1)
	b := NewBlock(ctx.Work, 8, 16)
	b.SetHome(home)
	b.ResetRefs(1)
	b.Retain()
	b.Release()
	select {
	case <-home:
		t.Fatal("recycled with a reference outstanding")
	default:
	}
	b.Release()
	select {
	case got := <-home:
		if got != b {
			t.Fatal("wrong block recycled")
		}
	default:
		t.Fatal("last release did not recycle")
	}
}

func TestBlockCopyFromSplits(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	src := NewBlock(ctx.Work, 10, 8)
	for i := 0; i < 10; i++ {
		row := make([]byte, 8)
		PutRowInt(row, 0, int64(i))
		src.Push(row)
	}
	dst := NewBlock(ctx.Work, 4, 8)
	from := 0
	var got []int64
	for from < src.N() {
		dst.Reset()
		from += dst.CopyFrom(nil, src, from)
		for i := 0; i < dst.N(); i++ {
			got = append(got, RowInt(dst.RowAt(i), 0))
		}
	}
	if len(got) != 10 {
		t.Fatalf("copied %d rows", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}
