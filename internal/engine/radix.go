// Cache-conscious join strategies. The paper's DSS measurements put the
// blame for data stalls on dependent loads that hit the L2 but miss the
// L1D — exactly the bucket-chain walks of a multi-megabyte join hash
// table. RadixPart attacks the table size: a radix-partitioning pass in
// the MonetDB/X100 tradition (Boncz et al., CIDR 2005) fans the build
// side into 2^k cache-sized partitions by key hash bits, builds one small
// HashTable per partition, and routes each probe key to its partition —
// short chains, tables that fit the L1D/L2 budget, no cross-partition
// dependent misses. The prefetch mode instead keeps one table but
// pipelines the probe (trace.Prefetch on the traced path, the AMAC-style
// batched walk on the native path) so chain loads overlap.
package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// JoinMode selects the hash-join build/probe strategy.
type JoinMode uint8

// Join modes.
const (
	// JoinAuto picks by build-size estimate: partitioned when the
	// estimated table overflows JoinPartBudget, chained otherwise.
	JoinAuto JoinMode = iota
	// JoinChained is the classic single chained hash table.
	JoinChained
	// JoinPartitioned radix-partitions the build side into cache-sized
	// tables and routes probe keys to their partition.
	JoinPartitioned
	// JoinPrefetch keeps one chained table but pipelines the probe:
	// group-prefetched bucket heads on the traced path, batched
	// multi-lane chain walks on the native path.
	JoinPrefetch
)

func (m JoinMode) String() string {
	switch m {
	case JoinAuto:
		return "auto"
	case JoinChained:
		return "chained"
	case JoinPartitioned:
		return "partitioned"
	case JoinPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("JoinMode(%d)", uint8(m))
}

// ParseJoinMode parses a join_mode knob value; the empty string is auto.
func ParseJoinMode(s string) (JoinMode, error) {
	switch s {
	case "", "auto":
		return JoinAuto, nil
	case "chained":
		return JoinChained, nil
	case "partitioned":
		return JoinPartitioned, nil
	case "prefetch":
		return JoinPrefetch, nil
	}
	return JoinAuto, fmt.Errorf("engine: unknown join mode %q (want auto, chained, partitioned, or prefetch)", s)
}

// JoinPartBudget is the target footprint of one partition's hash table —
// entries plus bucket array — sized to the modeled per-core L1D (64 KB,
// cache.Config defaults) so a partition's chain walks hit the L1 instead
// of the L2.
const JoinPartBudget = 64 << 10

// joinMaxParts bounds the radix fan-out; beyond this the partitioning
// pass itself starts missing (one active fill line per partition).
const joinMaxParts = 256

// radixShift places the partition bits well above the bucket-index bits
// (bucketAddr uses the low bits of the same hash), so partition routing
// never correlates with within-partition bucket choice.
const radixShift = 48

// joinParts returns the partition count (a power of two) for an expected
// build cardinality with entryW-byte entries: the smallest fan-out that
// brings each partition's table under JoinPartBudget, 1 when the whole
// table already fits.
func joinParts(expected, entryW int) int {
	if expected <= 0 {
		return 1
	}
	// Entry slab plus two bucket words per entry (NewHashTable's sizing).
	bytes := expected * (entryW + 16)
	parts := 1
	for parts < joinMaxParts && bytes/parts > JoinPartBudget {
		parts *= 2
	}
	return parts
}

// resolveJoinMode applies the auto policy: an explicit plan mode wins,
// then the context's mode, then the build-size estimate.
func resolveJoinMode(plan JoinMode, ctx *Ctx, expected, entryW int) JoinMode {
	m := plan
	if m == JoinAuto && ctx != nil {
		m = ctx.JoinMode
	}
	if m == JoinAuto {
		if joinParts(expected, entryW) > 1 {
			return JoinPartitioned
		}
		return JoinChained
	}
	return m
}

// radixChunkRows is how many entry records one staging slab holds.
const radixChunkRows = 1024

// RadixPart is the radix-partitioning pass: build-side rows fan out into
// 2^k cache-sized partitions by the top bits of the key hash. Each row is
// written once, directly as a hash-table entry ([next][key][payload]) at
// the tail of its partition's arena slab, and linked onto its partition
// table's bucket chain in the same touch — the partition tables exist
// from the start (their bucket arrays are sized from the distinct-key
// hint, known up front), so there is no second build pass and no second
// copy. Build just wraps the tables into a PartedTable.
type RadixPart struct {
	ctx     *Ctx
	rowW    int
	entryW  int
	estride int
	parts   int
	mask    uint64
	code    mem.CodeSeg

	tables []*HashTable
	// Per-partition staging tails: the current slab's base address,
	// bytes, and fill.
	tailAddr []mem.Addr
	tailBuf  [][]byte
	tailN    []int
	// slabAddrs lists each partition's slabs in allocation order — the
	// traced path's deferred link pass walks them in Build. The native
	// path links inline and leaves this empty.
	slabAddrs [][]mem.Addr
	traced    bool
	n         int
}

// NewRadixPart creates a pass with an explicit partition count (a power
// of two; use joinParts to size it from a cardinality estimate). distinct
// is the expected distinct-key count across the whole build — each
// partition's bucket array is sized from its per-partition share, since
// chains group by key no matter how many duplicate entries pile onto
// them; rows is the expected entry count, the fallback when distinct is 0.
func NewRadixPart(ctx *Ctx, parts, rowW, distinct, rows int) *RadixPart {
	if parts <= 0 || parts&(parts-1) != 0 {
		panic(fmt.Sprintf("engine: radix partition count %d is not a positive power of two", parts))
	}
	if distinct <= 0 {
		distinct = rows
	}
	entryW := htEntryHeader + rowW
	r := &RadixPart{
		ctx:       ctx,
		rowW:      rowW,
		entryW:    entryW,
		estride:   (entryW + 7) &^ 7,
		parts:     parts,
		mask:      uint64(parts - 1),
		code:      ctx.DB.Codes.Register("engine:radix", 1536),
		tables:    make([]*HashTable, parts),
		tailAddr:  make([]mem.Addr, parts),
		tailBuf:   make([][]byte, parts),
		tailN:     make([]int, parts),
		slabAddrs: make([][]mem.Addr, parts),
	}
	for p := 0; p < parts; p++ {
		r.tables[p] = NewHashTable(ctx, distinct/parts+1, rowW)
	}
	return r
}

// Parts returns the fan-out.
func (r *RadixPart) Parts() int { return r.parts }

// Len returns the number of staged rows.
func (r *RadixPart) Len() int { return r.n }

func (r *RadixPart) partOf(key uint64) int {
	return int(mix(key) >> radixShift & r.mask)
}

// slot returns the staging destination for one more entry record of
// partition p, starting a fresh slab when the current one fills.
func (r *RadixPart) slot(p int) (mem.Addr, []byte) {
	n := r.tailN[p]
	if n == radixChunkRows || r.tailBuf[p] == nil {
		r.tailAddr[p] = r.ctx.Work.Alloc(radixChunkRows*r.estride, 8)
		r.tailBuf[p] = r.ctx.Work.Bytes(r.tailAddr[p], radixChunkRows*r.estride)
		r.slabAddrs[p] = append(r.slabAddrs[p], r.tailAddr[p])
		n = 0
	}
	r.tailN[p] = n + 1
	off := n * r.estride
	return r.tailAddr[p] + mem.Addr(off), r.tailBuf[p][off : off+r.estride]
}

// Add routes one build row (traced path): hash, then write the entry
// record at its partition's slab tail — a sequential store with no
// dependent load, the cache-friendly half of the radix-cluster bargain.
// Linking is deferred to Build's per-partition pass, where each
// partition's bucket array is small enough to stay L1-resident.
func (r *RadixPart) Add(key uint64, row []byte) {
	p := r.partOf(key)
	dst, buf := r.slot(p)
	binary.LittleEndian.PutUint64(buf[8:16], key)
	copy(buf[htEntryHeader:], row)
	r.n++
	r.traced = true
	r.ctx.Rec.Exec(r.code, 12)
	r.ctx.Rec.StoreRange(dst+8, 8+r.rowW)
}

// AddBlockNative routes every listed row of a row-major block (nil rows
// means the dense prefix [0, n)) without tracing — the native build
// path. One fused loop per row: a single hash yields both the partition
// (top bits) and the bucket (low bits), the entry record is written at
// the partition's slab tail, and the chain is linked through the arena's
// raw buffer — no per-row calls, no second pass, no second copy.
func (r *RadixPart) AddBlockNative(keys []uint64, buf []byte, stride int, rows []int32, n int) {
	wbuf, base := r.ctx.Work.Raw()
	for k := 0; k < n; k++ {
		i := k
		if rows != nil {
			i = int(rows[k])
		}
		key := keys[k]
		h := mix(key)
		p := int(h >> radixShift & r.mask)
		tn := r.tailN[p]
		if tn == radixChunkRows || r.tailBuf[p] == nil {
			r.tailAddr[p] = r.ctx.Work.Alloc(radixChunkRows*r.estride, 8)
			r.tailBuf[p] = r.ctx.Work.Bytes(r.tailAddr[p], radixChunkRows*r.estride)
			tn = 0
		}
		r.tailN[p] = tn + 1
		off := tn * r.estride
		ea := r.tailAddr[p] + mem.Addr(off)
		eb := r.tailBuf[p][off : off+r.estride]
		t := r.tables[p]
		bo := t.buckets + mem.Addr(h&(t.nbuckets-1))*8 - base
		binary.LittleEndian.PutUint64(eb[0:8], binary.LittleEndian.Uint64(wbuf[bo:bo+8]))
		binary.LittleEndian.PutUint64(eb[8:16], key)
		copy(eb[htEntryHeader:], buf[i*stride:i*stride+r.rowW])
		binary.LittleEndian.PutUint64(wbuf[bo:bo+8], uint64(ea))
		t.n++
	}
	r.n += n
}

// Build finishes the pass and wraps the partition tables into a
// PartedTable. On the native path the fused AddBlockNative already
// linked every entry and this is a plain wrap. On the traced path this
// runs the deferred link pass: partition by partition, walk the staged
// slabs in arrival order and head-insert each entry — the slab read is
// sequential, and the partition's bucket array (a few KB) stays
// L1-resident for the whole burst, so the read-modify-write of the
// bucket head that dominates a chained build's D-stalls hits the L1
// here. Head-insertion in arrival order makes every chain identical to
// a chained Insert build over the same input order, so probe match
// order — and result digests — cannot differ.
func (r *RadixPart) Build() *PartedTable {
	if r.traced {
		rec := r.ctx.Rec
		for p := 0; p < r.parts; p++ {
			t := r.tables[p]
			for si, addr := range r.slabAddrs[p] {
				n := radixChunkRows
				if si == len(r.slabAddrs[p])-1 {
					n = r.tailN[p]
				}
				buf := r.ctx.Work.Bytes(addr, n*r.estride)
				for i := 0; i < n; i++ {
					off := i * r.estride
					ea := addr + mem.Addr(off)
					eb := buf[off : off+r.estride]
					// Re-read the staged key: a sequential, independent
					// load (consecutive entries share lines).
					rec.Exec(r.code, 33)
					rec.Load(ea+8, false)
					t.LinkEntry(rec, binary.LittleEndian.Uint64(eb[8:16]), ea, eb)
				}
			}
		}
	}
	return &PartedTable{tables: r.tables, mask: r.mask}
}

// PartedTable routes each key to its radix partition's HashTable; with
// one partition it degenerates to that table.
type PartedTable struct {
	tables []*HashTable
	mask   uint64
}

// Table returns the partition table owning key.
func (pt *PartedTable) Table(key uint64) *HashTable {
	return pt.tables[int(mix(key)>>radixShift&pt.mask)]
}

// Parts returns the partition count.
func (pt *PartedTable) Parts() int { return len(pt.tables) }

// Len returns the total entry count across partitions.
func (pt *PartedTable) Len() int {
	n := 0
	for _, t := range pt.tables {
		n += t.Len()
	}
	return n
}

// ChainLengths visits every partition's chains (see HashTable.ChainLengths).
func (pt *PartedTable) ChainLengths(observe func(n int)) {
	for _, t := range pt.tables {
		t.ChainLengths(observe)
	}
}

// Iter walks all entries matching key in key's partition.
func (pt *PartedTable) Iter(rec *trace.Recorder, key uint64, fn func(payload []byte, at mem.Addr) bool) {
	pt.Table(key).Iter(rec, key, fn)
}
