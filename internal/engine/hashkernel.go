// Compiled whole-block hash kernels: the CompilePreds idea applied to
// the join and aggregate side. A KeyKernel extracts a block's worth of
// 64-bit join keys in one monomorphic loop; a GroupKernel fuses
// HashAgg's group-key copy and FNV-1a hash into one pass. Both are
// Sel-aware (rows lists the live physical indexes; nil means dense
// [0, n)) and layout-agnostic: a borrowed NSM block is a row-major
// buffer with the table's stride, a borrowed PAX minipage is the same
// thing with stride == column width, so one kernel covers both.
//
// The kernels are exact drop-ins for the per-row loops they replace:
// identical key bits (a float column's 8 bytes read as int64 and
// converted to uint64 are its Float64bits) and identical FNV-1a hashes,
// so hash-table chain order — and therefore output order and digests —
// cannot diverge from the interpreted path.

package engine

import (
	"encoding/binary"
	"math"
)

// KeyKernel extracts the 64-bit join key of rows of a row-major buffer
// into keys[:n]. rows lists physical row indexes (a selection vector);
// nil means the dense prefix [0, n).
type KeyKernel func(buf []byte, stride int, rows []int32, n int, keys []uint64)

// CompileKeyKernel lowers key extraction for one 8-byte column at byte
// offset off. Integer and float columns produce the same key bits the
// per-row uint64(RowInt(...)) path does; other types report nil and the
// caller keeps its per-row loop.
func CompileKeyKernel(t Type, off int) KeyKernel {
	switch t {
	case TInt:
		return func(buf []byte, stride int, rows []int32, n int, keys []uint64) {
			if rows == nil {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					keys[i] = uint64(RowInt(buf, p))
				}
				return
			}
			for k, i := range rows {
				keys[k] = uint64(RowInt(buf, int(i)*stride+off))
			}
		}
	case TFloat:
		return func(buf []byte, stride int, rows []int32, n int, keys []uint64) {
			if rows == nil {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					keys[i] = math.Float64bits(RowFloat(buf, p))
				}
				return
			}
			for k, i := range rows {
				keys[k] = math.Float64bits(RowFloat(buf, int(i)*stride+off))
			}
		}
	default:
		return nil
	}
}

// AggKernel folds one input row into one aggregate's slice of a group's
// accumulator bytes. Compiled kernels bake the accumulator offset, input
// column offset, and type dispatch into the closure, replacing
// HashAgg.update's per-row switch on the native path. The accumulator
// bit patterns they produce are identical to update's (same adds, same
// float operations in the same order), so results and digests cannot
// diverge.
type AggKernel func(row, acc []byte)

// CompileAggKernels lowers each AggSpec to its update closure. The acc
// slice the kernels index is the group's full accumulator region (the
// per-agg offset is baked in).
func CompileAggKernels(cs Schema, offs []int, aggs []AggSpec) []AggKernel {
	ks := make([]AggKernel, len(aggs))
	accOff := 0
	for idx, g := range aggs {
		o := accOff
		asF := func(row []byte) float64 { return 0 }
		if g.Func != Count {
			co := offs[g.Col]
			if cs[g.Col].Type == TInt {
				asF = func(row []byte) float64 { return float64(RowInt(row, co)) }
			} else {
				asF = func(row []byte) float64 { return RowFloat(row, co) }
			}
		}
		switch g.Func {
		case Count:
			ks[idx] = func(_, acc []byte) {
				binary.LittleEndian.PutUint64(acc[o:], binary.LittleEndian.Uint64(acc[o:])+1)
			}
		case Sum:
			co := offs[g.Col]
			if cs[g.Col].Type == TInt {
				ks[idx] = func(row, acc []byte) {
					v := binary.LittleEndian.Uint64(acc[o:])
					binary.LittleEndian.PutUint64(acc[o:], v+uint64(RowInt(row, co)))
				}
			} else {
				ks[idx] = func(row, acc []byte) {
					v := math.Float64frombits(binary.LittleEndian.Uint64(acc[o:]))
					v += RowFloat(row, co)
					binary.LittleEndian.PutUint64(acc[o:], math.Float64bits(v))
				}
			}
		case Avg:
			ks[idx] = func(row, acc []byte) {
				v := math.Float64frombits(binary.LittleEndian.Uint64(acc[o:]))
				v += asF(row)
				binary.LittleEndian.PutUint64(acc[o:], math.Float64bits(v))
				n := binary.LittleEndian.Uint64(acc[o+8:])
				binary.LittleEndian.PutUint64(acc[o+8:], n+1)
			}
		case Min:
			ks[idx] = func(row, acc []byte) {
				v := math.Float64frombits(binary.LittleEndian.Uint64(acc[o:]))
				if x := asF(row); x < v {
					binary.LittleEndian.PutUint64(acc[o:], math.Float64bits(x))
				}
			}
		case Max:
			ks[idx] = func(row, acc []byte) {
				v := math.Float64frombits(binary.LittleEndian.Uint64(acc[o:]))
				if x := asF(row); x > v {
					binary.LittleEndian.PutUint64(acc[o:], math.Float64bits(x))
				}
			}
		}
		accOff += accWidth(g.Func)
	}
	return ks
}

// GroupKernel extracts every listed row's group-key bytes into keys
// (groupW bytes per row) and the key's FNV-1a hash into hashes[:n] —
// HashAgg.groupBytes and hashBytes fused into one pass over the block.
type GroupKernel func(buf []byte, stride int, rows []int32, n int, keys []byte, hashes []uint64)

// CompileGroupKernel lowers group-key extraction for groupCols of the
// input schema, with the single-8-byte-column case (int or float group
// key — the common DSS shape) specialized to a fixed-length hash loop.
func CompileGroupKernel(cs Schema, offs, groupCols []int) GroupKernel {
	type span struct{ off, w int }
	spans := make([]span, len(groupCols))
	groupW := 0
	for i, c := range groupCols {
		spans[i] = span{offs[c], cs[c].Width}
		groupW += cs[c].Width
	}
	if len(spans) == 1 && spans[0].w == 8 {
		off := spans[0].off
		return func(buf []byte, stride int, rows []int32, n int, keys []byte, hashes []uint64) {
			for k := 0; k < n; k++ {
				i := k
				if rows != nil {
					i = int(rows[k])
				}
				gk := keys[k*8 : k*8+8]
				copy(gk, buf[i*stride+off:i*stride+off+8])
				h := fnvOffset
				for _, c := range gk {
					h ^= uint64(c)
					h *= fnvPrime
				}
				hashes[k] = h
			}
		}
	}
	return func(buf []byte, stride int, rows []int32, n int, keys []byte, hashes []uint64) {
		for k := 0; k < n; k++ {
			i := k
			if rows != nil {
				i = int(rows[k])
			}
			row := buf[i*stride:]
			gk := keys[k*groupW : (k+1)*groupW]
			o := 0
			for _, s := range spans {
				copy(gk[o:o+s.w], row[s.off:s.off+s.w])
				o += s.w
			}
			hashes[k] = hashBytes(gk)
		}
	}
}
