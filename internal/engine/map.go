package engine

import "repro/internal/mem"

// Map computes derived columns: for each child row it produces a row of
// Out filled by Fn (e.g. extendedprice*(1-discount) for TPC-H Q1/Q6).
type Map struct {
	Child Op
	Out   Schema
	// Fn fills out (len = Out.RowWidth()) from the child row.
	Fn func(in, out []byte)
	// Cost is the synthetic instruction cost per row (default 10).
	Cost int

	buf  []byte
	code mem.CodeSeg
}

// Schema implements Op.
func (m *Map) Schema() Schema { return m.Out }

// Open implements Op.
func (m *Map) Open(ctx *Ctx) error {
	m.buf = make([]byte, m.Out.RowWidth())
	m.code = ctx.DB.Codes.Register("op:map", 1024)
	if m.Cost == 0 {
		m.Cost = 30
	}
	return m.Child.Open(ctx)
}

// Close implements Op.
func (m *Map) Close(ctx *Ctx) { m.Child.Close(ctx) }

// Next implements Op.
func (m *Map) Next(ctx *Ctx) ([]byte, bool, error) {
	row, ok, err := m.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Rec.Exec(m.code, m.Cost)
	m.Fn(row, m.buf)
	return m.buf, true, nil
}
