package engine

import "os"

// aliasDebug arms the zero-copy alias-safety assertions: a borrowed
// block panics when its backing page is released while other consumers
// still hold references, or when Rows() exposes shared borrowed memory
// for mutation. Off by default (the checks cost atomic loads on hot
// paths); set ENGINE_ALIAS_DEBUG=1 to arm. Tests in this package flip
// the variable directly.
var aliasDebug = os.Getenv("ENGINE_ALIAS_DEBUG") != ""
