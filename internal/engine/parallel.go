// Morsel-driven parallel execution: heap scans split into fixed-size page
// ranges ("morsels") handed to a pool of workers through a work-stealing
// scheduler, in the style of HyPer's morsel-driven parallelism. Each
// worker runs with its own Ctx — its own trace recorder and workspace
// arena — so a parallel query occupies several simulated cores, which is
// exactly the restructuring the paper argues database engines need to
// exploit chip multiprocessors.

package engine

import (
	"fmt"
	"sync"
)

// WorkPool is a work-stealing scheduler of items across a fixed set of
// workers. Each worker owns a queue: it pushes and pops at the bottom
// (LIFO, keeping its working set hot), and when its queue drains it
// steals the oldest item from the most loaded victim (FIFO, taking the
// coldest work). A single mutex guards all queues — items are coarse
// (morsels, packets), so scheduling cost is amortized over thousands of
// rows and the simple locking is trivially race-free.
type WorkPool[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]T
	closed bool
}

// NewWorkPool creates a pool with one queue per worker.
func NewWorkPool[T any](workers int) *WorkPool[T] {
	if workers <= 0 {
		panic(fmt.Sprintf("engine: work pool with %d workers", workers))
	}
	p := &WorkPool[T]{queues: make([][]T, workers)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Workers returns the number of worker queues.
func (p *WorkPool[T]) Workers() int { return len(p.queues) }

// Push enqueues item at the bottom of worker w's queue and wakes one
// waiter. Any goroutine may push to any queue (producers deal work out;
// workers push follow-up work to themselves).
func (p *WorkPool[T]) Push(w int, item T) {
	p.mu.Lock()
	p.queues[w] = append(p.queues[w], item)
	p.mu.Unlock()
	p.cond.Signal()
}

// tryTake pops worker w's newest own item, or steals the oldest item from
// the victim with the most queued work. mu must be held.
func (p *WorkPool[T]) tryTake(w int) (T, bool) {
	if q := p.queues[w]; len(q) > 0 {
		item := q[len(q)-1]
		p.queues[w] = q[:len(q)-1]
		return item, true
	}
	victim := -1
	for i := range p.queues {
		if i != w && len(p.queues[i]) > 0 && (victim < 0 || len(p.queues[i]) > len(p.queues[victim])) {
			victim = i
		}
	}
	if victim >= 0 {
		item := p.queues[victim][0]
		p.queues[victim] = p.queues[victim][1:]
		return item, true
	}
	var zero T
	return zero, false
}

// Take returns the next item for worker w — own queue first, then by
// stealing — blocking while the pool is open but empty. It reports false
// once the pool is closed and fully drained.
func (p *WorkPool[T]) Take(w int) (T, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if item, ok := p.tryTake(w); ok {
			return item, true
		}
		if p.closed {
			var zero T
			return zero, false
		}
		p.cond.Wait()
	}
}

// TryTake is Take's non-blocking form: it reports false when no work is
// currently available, whether or not the pool is closed.
func (p *WorkPool[T]) TryTake(w int) (T, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tryTake(w)
}

// Close marks the pool complete: queued items still drain, then Take
// reports false to every worker.
func (p *WorkPool[T]) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Morsel is one unit of scan work: the heap pages [Lo, Hi) of a table.
type Morsel struct {
	Lo, Hi int
}

// DefaultMorselPages sizes morsels at 16 pages (128 KB of heap): coarse
// enough to amortize scheduling, fine enough that stealing rebalances
// skewed predicates.
const DefaultMorselPages = 16

// MorselPool deals a table's pages to workers as morsels. All morsels are
// known up front, so the pool is created closed: workers drain their own
// share and then steal the remainder of slower peers'.
type MorselPool struct {
	pool *WorkPool[Morsel]
}

// NewMorselPool splits pages heap pages into morsels of morselPages
// (DefaultMorselPages when <= 0), dealt round-robin across workers.
func NewMorselPool(workers, pages, morselPages int) *MorselPool {
	if morselPages <= 0 {
		morselPages = DefaultMorselPages
	}
	p := &MorselPool{pool: NewWorkPool[Morsel](workers)}
	w := 0
	for lo := 0; lo < pages; lo += morselPages {
		hi := lo + morselPages
		if hi > pages {
			hi = pages
		}
		p.pool.Push(w, Morsel{Lo: lo, Hi: hi})
		w = (w + 1) % workers
	}
	p.pool.Close()
	return p
}

// Next hands worker w its next morsel, stealing when its own queue is
// empty; ok is false when the table is fully claimed.
func (p *MorselPool) Next(w int) (Morsel, bool) {
	return p.pool.Take(w)
}

// MorselScan is the morsel-driven scan's legacy row-at-a-time face: a
// thin RowAdapter over MorselScanVec (vec.go), kept so existing Volcano
// consumers and tests keep working. The decode itself is the vectorized
// core — there is exactly one scan implementation.
type MorselScan struct {
	Table  *Table
	Preds  []Pred
	Cols   []int
	Pool   *MorselPool
	Worker int

	ad RowAdapter
}

// vec lazily builds the adapted vectorized scan.
func (s *MorselScan) vec() *RowAdapter {
	if s.ad.Vec == nil {
		s.ad.Vec = &MorselScanVec{Table: s.Table, Preds: s.Preds, Cols: s.Cols, Pool: s.Pool, Worker: s.Worker}
	}
	return &s.ad
}

// Schema implements Op.
func (s *MorselScan) Schema() Schema { return s.vec().Schema() }

// Open implements Op.
func (s *MorselScan) Open(ctx *Ctx) error { return s.vec().Open(ctx) }

// Close implements Op.
func (s *MorselScan) Close(ctx *Ctx) { s.vec().Close(ctx) }

// Next implements Op: it drains the current morsel, then claims the next.
func (s *MorselScan) Next(ctx *Ctx) ([]byte, bool, error) { return s.vec().Next(ctx) }

// ParallelScan scans t with one worker goroutine per ctx, covering the
// heap exactly once via a shared morsel pool; each worker drives a
// vectorized morsel scan and hands fn its blocks row by row. fn is
// invoked concurrently from the workers (w identifies the caller); it
// must be safe for that. morselPages <= 0 uses DefaultMorselPages.
func ParallelScan(ctxs []*Ctx, t *Table, preds []Pred, cols []int, morselPages int, fn func(w int, row []byte) error) error {
	if len(ctxs) == 0 {
		return fmt.Errorf("engine: parallel scan with no worker contexts")
	}
	pool := NewMorselPool(len(ctxs), t.Heap.NumPages(), morselPages)
	errs := make([]error, len(ctxs))
	var wg sync.WaitGroup
	for w := range ctxs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ms := &MorselScanVec{Table: t, Preds: preds, Cols: cols, Pool: pool, Worker: w}
			errs[w] = RunVec(ctxs[w], ms, func(blk *Block) error {
				for i := 0; i < blk.N(); i++ {
					if err := fn(w, blk.RowAt(i)); err != nil {
						return err
					}
				}
				return nil
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
