package engine

import (
	"bytes"
	"fmt"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
	// Between matches Lo <= x <= Hi.
	Between
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case Between:
		return "between"
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(o))
}

// Pred is one column-vs-constant comparison. A slice of Preds is a
// conjunction. Structured predicates (rather than opaque closures) let
// scans read only the referenced columns under PAX and let the planner
// report selectivities.
type Pred struct {
	Col int // column index in the input schema
	Op  CmpOp

	// Exactly one constant family is used, per the column type.
	I, IHi int64
	F, FHi float64
	S      string
}

// PredInt builds an integer predicate.
func PredInt(col int, op CmpOp, v int64) Pred { return Pred{Col: col, Op: op, I: v} }

// PredIntBetween builds lo <= col <= hi.
func PredIntBetween(col int, lo, hi int64) Pred {
	return Pred{Col: col, Op: Between, I: lo, IHi: hi}
}

// PredFloat builds a float predicate.
func PredFloat(col int, op CmpOp, v float64) Pred { return Pred{Col: col, Op: op, F: v} }

// PredFloatBetween builds lo <= col <= hi.
func PredFloatBetween(col int, lo, hi float64) Pred {
	return Pred{Col: col, Op: Between, F: lo, FHi: hi}
}

// PredStr builds a string predicate (padded comparison).
func PredStr(col int, op CmpOp, v string) Pred { return Pred{Col: col, Op: op, S: v} }

// evalCost is the synthetic instruction cost of evaluating one predicate.
const evalCost = 22

// Eval evaluates the predicate against an encoded row.
func (p Pred) Eval(s Schema, offs []int, row []byte) bool {
	c := s[p.Col]
	off := offs[p.Col]
	switch c.Type {
	case TInt:
		v := RowInt(row, off)
		switch p.Op {
		case Between:
			return v >= p.I && v <= p.IHi
		default:
			return cmpInt(v, p.I, p.Op)
		}
	case TFloat:
		v := RowFloat(row, off)
		switch p.Op {
		case Between:
			return v >= p.F && v <= p.FHi
		default:
			return cmpFloat(v, p.F, p.Op)
		}
	default:
		v := RowBytes(row, off, c.Width)
		pad := padded(p.S, c.Width)
		switch p.Op {
		case EQ:
			return bytes.Equal(v, pad)
		case NE:
			return !bytes.Equal(v, pad)
		case LT:
			return bytes.Compare(v, pad) < 0
		case LE:
			return bytes.Compare(v, pad) <= 0
		case GT:
			return bytes.Compare(v, pad) > 0
		case GE:
			return bytes.Compare(v, pad) >= 0
		}
		return false
	}
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

func padded(s string, w int) []byte {
	b := make([]byte, w)
	copy(b, s)
	for i := len(s); i < w; i++ {
		b[i] = ' '
	}
	return b
}

// Cols returns the set of column indexes referenced by preds.
func Cols(preds []Pred) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}
