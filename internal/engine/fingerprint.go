// Plan fingerprinting: a stable hash over a plan tree's shape and
// parameters, used as the key of the cross-query result-reuse cache
// (together with the versions of the tables the plan reads). Two plans
// with equal fingerprints compute the same logical result against the
// same table versions.

package engine

import (
	"encoding/binary"
	"math"
	"reflect"
)

// PlanFingerprint hashes op's tree: operator types, predicate constants,
// column lists, and every other exported scalar field, recursing through
// child operators. Table references hash as the table name. Function
// fields (Map transforms) and batch sources are skipped — in this engine
// a transform's behaviour is determined by the operator's hashed scalar
// configuration, so the skip loses nothing; plans built outside that
// convention should not share a result cache.
//
// Scan origins (SeqScan.StartPage) are deliberately excluded: a circular
// scan's start point permutes float addition order but not the logical
// result, and including it would defeat cross-client reuse of aggregate
// results.
func PlanFingerprint(op Op) uint64 {
	h := fnvOffset
	fingerprintValue(reflect.ValueOf(op), &h)
	return h
}

const (
	fnvOffset = uint64(1469598103934665603)
	fnvPrime  = uint64(1099511628211)
)

func mixBytes(h *uint64, b []byte) {
	for _, c := range b {
		*h ^= uint64(c)
		*h *= fnvPrime
	}
}

func mixString(h *uint64, s string) {
	mixBytes(h, []byte(s))
	mixBytes(h, []byte{0xff})
}

func mixUint64(h *uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	mixBytes(h, b[:])
}

var (
	opType    = reflect.TypeOf((*Op)(nil)).Elem()
	tableType = reflect.TypeOf((*Table)(nil))
)

func fingerprintValue(v reflect.Value, h *uint64) {
	if !v.IsValid() {
		mixString(h, "<zero>")
		return
	}
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			mixString(h, "<nil>")
			return
		}
		if v.Type() == tableType {
			// A table's identity, not its contents: data currency is the
			// version counter's job, carried separately in the cache key.
			mixString(h, "table:"+v.Interface().(*Table).Name)
			return
		}
		if v.Kind() == reflect.Interface && !v.Type().Implements(opType) {
			// Non-operator interfaces (e.g. a shared scan's BatchSource)
			// carry runtime wiring, not plan shape.
			mixString(h, "<iface>")
			return
		}
		fingerprintValue(v.Elem(), h)
	case reflect.Struct:
		mixString(h, v.Type().String())
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" { // unexported: runtime state, not plan shape
				continue
			}
			if f.Name == "StartPage" { // scan origin: result-neutral, see doc
				continue
			}
			mixString(h, f.Name)
			fingerprintValue(v.Field(i), h)
		}
	case reflect.Slice, reflect.Array:
		mixString(h, "[]")
		mixUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			fingerprintValue(v.Index(i), h)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		mixUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		mixUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		mixUint64(h, math.Float64bits(v.Float()))
	case reflect.Bool:
		if v.Bool() {
			mixUint64(h, 1)
		} else {
			mixUint64(h, 0)
		}
	case reflect.String:
		mixString(h, v.String())
	default:
		// Funcs, chans, maps: behaviour is captured by the hashed scalar
		// configuration of the operator that owns them.
		mixString(h, "<"+v.Kind().String()+">")
	}
}
