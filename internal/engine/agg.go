package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/trace"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggSpec is one aggregate over an input column (Col ignored for Count).
type AggSpec struct {
	Func AggFunc
	Col  int
	Name string
}

// HashAgg groups child rows by GroupCols and computes Aggs per group.
// Groups accumulate in a workspace hash table; output rows are
// group columns followed by aggregate results.
type HashAgg struct {
	Child     Op
	GroupCols []int
	Aggs      []AggSpec
	// Expected sizes the hash table (default 1024 groups).
	Expected int

	out     Schema
	ht      *HashTable
	groupW  int
	slotW   int // accumulator bytes per agg (8, or 16 for Avg)
	buf     []byte
	offs    []int
	results [][]byte
	resIdx  int
	code    mem.CodeSeg
	drained bool
}

// Schema implements Op.
func (a *HashAgg) Schema() Schema {
	if a.out != nil {
		return a.out
	}
	cs := a.Child.Schema()
	a.out = cs.Project(a.GroupCols)
	for _, g := range a.Aggs {
		switch {
		case g.Func == Count:
			a.out = append(a.out, Int(g.Name))
		case cs[g.Col].Type == TInt && (g.Func == Sum || g.Func == Min || g.Func == Max):
			a.out = append(a.out, Int(g.Name))
		default:
			a.out = append(a.out, Float(g.Name))
		}
	}
	return a.out
}

// accWidth returns the accumulator width for one agg.
func accWidth(f AggFunc) int {
	if f == Avg {
		return 16 // sum + count
	}
	return 8
}

// prepare computes the output schema and accumulator geometry and
// allocates an empty group table in ctx's workspace. It is shared by the
// serial Open and by ParallelAgg's gather path, which fills the table by
// merging worker partials instead of draining a child.
func (a *HashAgg) prepare(ctx *Ctx) Schema {
	a.Schema()
	cs := a.Child.Schema()
	a.offs = cs.Offsets()
	a.code = ctx.DB.Codes.Register("op:hashagg", 4096)
	a.groupW = 0
	for _, c := range a.GroupCols {
		a.groupW += cs[c].Width
	}
	a.slotW = 0
	for _, g := range a.Aggs {
		a.slotW += accWidth(g.Func)
	}
	expected := a.Expected
	if expected == 0 {
		expected = 1024
	}
	a.ht = NewHashTable(ctx, expected, a.groupW+a.slotW)
	a.buf = make([]byte, a.out.RowWidth())
	a.results = nil
	a.resIdx = 0
	a.drained = false
	return cs
}

// findOrInsertGroup returns gkey's entry, creating and initializing it —
// with the insert's trace stores — on first sight. Serial absorption and
// ParallelAgg's gather merge share it, so both charge the same traffic.
func (a *HashAgg) findOrInsertGroup(rec *trace.Recorder, gkey []byte) ([]byte, mem.Addr) {
	return a.findOrInsertGroupH(rec, hashBytes(gkey), gkey)
}

// findOrInsertGroupH is findOrInsertGroup with the group hash
// precomputed: the vectorized aggregate hashes a whole block of group
// keys into a scratch array before walking the table, keeping the hash
// arithmetic out of the probe loop. The traced probe/insert work is
// identical either way.
func (a *HashAgg) findOrInsertGroupH(rec *trace.Recorder, h uint64, gkey []byte) ([]byte, mem.Addr) {
	payload, at := a.findGroup(rec, h, gkey)
	if payload == nil {
		payload, at = a.insertGroup(rec, h, gkey)
	}
	return payload, at
}

// insertGroup creates gkey's entry (first sight of the group): zeroed
// accumulators except Min/Max sentinels, the insert's stores traced.
func (a *HashAgg) insertGroup(rec *trace.Recorder, h uint64, gkey []byte) ([]byte, mem.Addr) {
	payload, at := a.ht.Insert(rec, h, nil)
	copy(payload[:a.groupW], gkey)
	a.initAccums(payload[a.groupW:])
	rec.StoreRange(at, a.groupW+a.slotW)
	return payload, at
}

// absorb folds one child row into the group table, inserting the group on
// first sight. gkey is caller-provided scratch of groupW bytes.
func (a *HashAgg) absorb(ctx *Ctx, cs Schema, gkey, row []byte) {
	ctx.Rec.Exec(a.code, 65)
	a.absorbRow(ctx, cs, gkey, row)
}

// absorbRow is absorb without the per-row iterator cost: the vectorized
// aggregate charges its (cheaper) per-row instructions at block
// granularity and shares the exact accumulator logic through this path.
func (a *HashAgg) absorbRow(ctx *Ctx, cs Schema, gkey, row []byte) {
	a.groupBytes(cs, row, gkey)
	payload, at := a.findOrInsertGroup(ctx.Rec, gkey)
	a.update(ctx.Rec, cs, row, payload[a.groupW:], at+mem.Addr(a.groupW))
}

// absorbHashed is absorbRow for the batch path: the group key and its
// hash were extracted in a prior pass over the whole block, so the probe
// loop goes straight to the table.
func (a *HashAgg) absorbHashed(ctx *Ctx, cs Schema, gkey []byte, h uint64, row []byte) {
	payload, at := a.findOrInsertGroupH(ctx.Rec, h, gkey)
	a.update(ctx.Rec, cs, row, payload[a.groupW:], at+mem.Addr(a.groupW))
}

// Open implements Op: it drains the child, accumulating groups.
func (a *HashAgg) Open(ctx *Ctx) error {
	cs := a.prepare(ctx)
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	defer a.Child.Close(ctx)
	gkey := make([]byte, a.groupW)
	for {
		row, ok, err := a.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		a.absorb(ctx, cs, gkey, row)
	}
	return nil
}

// mergeAccums folds the partial accumulators src into dst: counts and
// sums add, Avg adds both its sum and count halves, Min/Max keep the
// extremum. Both slices follow the layout update() maintains, so merging
// worker partials is exact for every function (no lossy re-averaging).
func mergeAccums(cs Schema, aggs []AggSpec, dst, src []byte) {
	off := 0
	for _, g := range aggs {
		switch g.Func {
		case Count:
			n := binary.LittleEndian.Uint64(dst[off:])
			binary.LittleEndian.PutUint64(dst[off:], n+binary.LittleEndian.Uint64(src[off:]))
		case Sum:
			if cs[g.Col].Type == TInt {
				v := binary.LittleEndian.Uint64(dst[off:])
				binary.LittleEndian.PutUint64(dst[off:], v+binary.LittleEndian.Uint64(src[off:]))
			} else {
				v := math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
				v += math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
				binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
			}
		case Avg:
			v := math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
			v += math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
			n := binary.LittleEndian.Uint64(dst[off+8:])
			binary.LittleEndian.PutUint64(dst[off+8:], n+binary.LittleEndian.Uint64(src[off+8:]))
		case Min:
			v := math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
			if x := math.Float64frombits(binary.LittleEndian.Uint64(src[off:])); x < v {
				binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(x))
			}
		case Max:
			v := math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
			if x := math.Float64frombits(binary.LittleEndian.Uint64(src[off:])); x > v {
				binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(x))
			}
		}
		off += accWidth(g.Func)
	}
}

// findGroupNative is findGroup as an inline chain walk — no tracing, no
// per-entry callback — for the native batch-absorb loop. It returns the
// whole payload (group bytes + accumulators), nil when the group is
// absent; the walk visits entries in the same chain order as findGroup.
func (a *HashAgg) findGroupNative(h uint64, gkey []byte) []byte {
	ht := a.ht
	buf, base := ht.arena.Raw()
	cur := binary.LittleEndian.Uint64(buf[ht.bucketAddr(h)-base:])
	for cur != 0 {
		eo := mem.Addr(cur) - base
		eb := buf[eo : eo+mem.Addr(ht.entryW)]
		if binary.LittleEndian.Uint64(eb[8:16]) == h &&
			string(eb[htEntryHeader:htEntryHeader+a.groupW]) == string(gkey) {
			return eb[htEntryHeader:]
		}
		cur = binary.LittleEndian.Uint64(eb[0:8])
	}
	return nil
}

// findGroup locates the entry whose stored group bytes equal gkey.
func (a *HashAgg) findGroup(rec *trace.Recorder, h uint64, gkey []byte) ([]byte, mem.Addr) {
	var out []byte
	var at mem.Addr
	a.ht.Iter(rec, h, func(p []byte, addr mem.Addr) bool {
		if string(p[:a.groupW]) == string(gkey) {
			out, at = p, addr
			return false
		}
		return true
	})
	return out, at
}

func (a *HashAgg) groupBytes(cs Schema, row, dst []byte) {
	off := 0
	for _, c := range a.GroupCols {
		w := cs[c].Width
		copy(dst[off:off+w], row[a.offs[c]:a.offs[c]+w])
		off += w
	}
}

func (a *HashAgg) initAccums(acc []byte) {
	off := 0
	for _, g := range a.Aggs {
		switch g.Func {
		case Min:
			binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(math.Inf(1)))
		case Max:
			binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(math.Inf(-1)))
		}
		off += accWidth(g.Func)
	}
}

// update folds one row into the group's accumulators, tracing the
// read-modify-write of the touched accumulator bytes.
func (a *HashAgg) update(rec *trace.Recorder, cs Schema, row, acc []byte, at mem.Addr) {
	off := 0
	for _, g := range a.Aggs {
		w := accWidth(g.Func)
		rec.Load(at+mem.Addr(off), true)
		switch g.Func {
		case Count:
			n := binary.LittleEndian.Uint64(acc[off:])
			binary.LittleEndian.PutUint64(acc[off:], n+1)
		case Sum:
			if cs[g.Col].Type == TInt {
				v := binary.LittleEndian.Uint64(acc[off:])
				binary.LittleEndian.PutUint64(acc[off:], v+uint64(RowInt(row, a.offs[g.Col])))
			} else {
				v := math.Float64frombits(binary.LittleEndian.Uint64(acc[off:]))
				v += RowFloat(row, a.offs[g.Col])
				binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(v))
			}
		case Avg:
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc[off:]))
			v += a.asFloat(cs, row, g.Col)
			binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(v))
			n := binary.LittleEndian.Uint64(acc[off+8:])
			binary.LittleEndian.PutUint64(acc[off+8:], n+1)
		case Min:
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc[off:]))
			x := a.asFloat(cs, row, g.Col)
			if x < v {
				binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(x))
			}
		case Max:
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc[off:]))
			x := a.asFloat(cs, row, g.Col)
			if x > v {
				binary.LittleEndian.PutUint64(acc[off:], math.Float64bits(x))
			}
		}
		rec.Store(at + mem.Addr(off))
		off += w
	}
}

func (a *HashAgg) asFloat(cs Schema, row []byte, col int) float64 {
	if cs[col].Type == TInt {
		return float64(RowInt(row, a.offs[col]))
	}
	return RowFloat(row, a.offs[col])
}

// Close implements Op.
func (a *HashAgg) Close(ctx *Ctx) { a.ht = nil; a.results = nil }

// Next implements Op: emits one row per group.
func (a *HashAgg) Next(ctx *Ctx) ([]byte, bool, error) {
	if !a.drained {
		a.drained = true
		cs := a.Child.Schema()
		w := a.out.RowWidth()
		// Result rows come from chunked slabs, not one allocation per
		// group — a large aggregate would otherwise hand the GC tens of
		// thousands of tiny objects per query.
		var slab []byte
		a.ht.Scan(ctx.Rec, func(_ uint64, p []byte) bool {
			if len(slab) < w {
				slab = make([]byte, 256*w)
			}
			out := slab[:w:w]
			slab = slab[w:]
			copy(out[:a.groupW], p[:a.groupW])
			a.finish(cs, p[a.groupW:], out[a.groupW:])
			a.results = append(a.results, out)
			return true
		})
	}
	if a.resIdx >= len(a.results) {
		return nil, false, nil
	}
	row := a.results[a.resIdx]
	a.resIdx++
	return row, true, nil
}

// finish converts accumulators into output column values.
func (a *HashAgg) finish(cs Schema, acc, out []byte) {
	accOff, outOff := 0, 0
	for _, g := range a.Aggs {
		switch {
		case g.Func == Count:
			copy(out[outOff:], acc[accOff:accOff+8])
		case g.Func == Avg:
			sum := math.Float64frombits(binary.LittleEndian.Uint64(acc[accOff:]))
			n := binary.LittleEndian.Uint64(acc[accOff+8:])
			v := 0.0
			if n > 0 {
				v = sum / float64(n)
			}
			binary.LittleEndian.PutUint64(out[outOff:], math.Float64bits(v))
		case (g.Func == Min || g.Func == Max) && cs[g.Col].Type == TInt:
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc[accOff:]))
			binary.LittleEndian.PutUint64(out[outOff:], uint64(int64(v)))
		default:
			copy(out[outOff:], acc[accOff:accOff+8])
		}
		accOff += accWidth(g.Func)
		outOff += 8
	}
}

// hashBytes is FNV-1a over b.
func hashBytes(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
