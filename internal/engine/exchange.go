// Exchange operators: the gather side of morsel-driven parallel plans.
// Exchange merges the row streams of per-worker subtrees; ParallelAgg
// merges per-worker partial hash tables at a gather barrier; and
// ParallelHashJoin partitions its build side by key hash so workers build
// and probe disjoint hash tables.

package engine

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/trace"
)

// errExchangeClosed aborts worker subtrees when the consumer closes the
// exchange before draining it.
var errExchangeClosed = errors.New("engine: exchange closed")

// memoChild lazily builds and memoizes worker w's subtree in *children.
// Memoization is not goroutine-safe: every parallel operator must
// materialize all n children (call this for every w) before handing them
// to worker goroutines.
func memoChild(children *[]Op, n, w int, build func(int) Op) Op {
	if *children == nil {
		*children = make([]Op, n)
	}
	if (*children)[w] == nil {
		(*children)[w] = build(w)
	}
	return (*children)[w]
}

// memoChildVec is memoChild for vectorized subtrees.
func memoChildVec(children *[]VecOp, n, w int, build func(int) VecOp) VecOp {
	if *children == nil {
		*children = make([]VecOp, n)
	}
	if (*children)[w] == nil {
		(*children)[w] = build(w)
	}
	return (*children)[w]
}

// Exchange runs one copy of a child subtree per Ctx concurrently and
// merges their output rows into a single stream, in arbitrary arrival
// order. Build must return a fresh subtree each call (subtrees typically
// share a MorselPool, which is what partitions the work). It is the
// bridge that lets a serial consumer — a sort, a join build, a sink —
// read the output of a parallel producer.
type Exchange struct {
	Build func(w int) Op
	Ctxs  []*Ctx

	children  []Op
	rows      chan []byte
	done      chan struct{}
	errc      chan error
	collected bool
	err       error
	closeOnce sync.Once
}

// child builds (once) and returns worker w's subtree.
func (e *Exchange) child(w int) Op {
	return memoChild(&e.children, len(e.Ctxs), w, e.Build)
}

// Schema implements Op.
func (e *Exchange) Schema() Schema { return e.child(0).Schema() }

// Open implements Op: it starts the worker goroutines. Rows become
// available to Next as workers produce them.
func (e *Exchange) Open(ctx *Ctx) error {
	if len(e.Ctxs) == 0 {
		return fmt.Errorf("engine: exchange with no worker contexts")
	}
	e.rows = make(chan []byte, 4*len(e.Ctxs))
	e.done = make(chan struct{})
	e.errc = make(chan error, len(e.Ctxs))
	e.collected = false
	e.err = nil
	e.closeOnce = sync.Once{}
	// Materialize every subtree before spawning: child() memoizes without
	// a lock, so it must not be first called from the workers.
	for w := range e.Ctxs {
		e.child(w)
	}
	var wg sync.WaitGroup
	for w := range e.Ctxs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := Run(e.Ctxs[w], e.child(w), func(row []byte) error {
				out := make([]byte, len(row))
				copy(out, row)
				select {
				case e.rows <- out:
					return nil
				case <-e.done:
					return errExchangeClosed
				}
			})
			if errors.Is(err, errExchangeClosed) {
				err = nil
			}
			e.errc <- err
		}(w)
	}
	go func() {
		wg.Wait()
		close(e.rows)
	}()
	return nil
}

// collect gathers worker errors once all workers have finished.
func (e *Exchange) collect() {
	if e.collected {
		return
	}
	e.collected = true
	for range e.Ctxs {
		if err := <-e.errc; err != nil && e.err == nil {
			e.err = err
		}
	}
}

// Next implements Op.
func (e *Exchange) Next(ctx *Ctx) ([]byte, bool, error) {
	row, ok := <-e.rows
	if !ok {
		e.collect()
		return nil, false, e.err
	}
	return row, true, nil
}

// Close implements Op: it aborts in-flight workers and drains the stream
// so they all exit.
func (e *Exchange) Close(ctx *Ctx) {
	if e.done == nil {
		return
	}
	e.closeOnce.Do(func() { close(e.done) })
	for range e.rows {
	}
	e.collect()
}

// ParallelAgg computes the same result as a HashAgg over a partitioned
// input, with one worker per Ctx. Each worker drains its own subtree
// (typically a Map over a MorselScan, all sharing one MorselPool) into a
// private hash table of partial accumulators; at the gather barrier the
// partials merge into the final table — counts and sums add, Avg merges
// its (sum, count) halves, Min/Max keep the extremum — so the merged
// result is exactly what the serial operator computes. Group keys and
// integer aggregates are bit-identical for every worker count; float
// aggregates vary only by addition order.
type ParallelAgg struct {
	// Build returns worker w's row subtree; BuildVec its vectorized
	// subtree. Set exactly one — BuildVec is the preferred path (workers
	// absorb block-at-a-time through the same machinery as HashAggVec).
	Build    func(w int) Op
	BuildVec func(w int) VecOp
	Ctxs     []*Ctx

	GroupCols []int
	Aggs      []AggSpec
	Expected  int

	master      *HashAgg
	children    []Op
	vecChildren []VecOp
}

// child builds (once) and returns worker w's row subtree.
func (a *ParallelAgg) child(w int) Op {
	return memoChild(&a.children, len(a.Ctxs), w, a.Build)
}

// childVec builds (once) and returns worker w's vectorized subtree.
func (a *ParallelAgg) childVec(w int) VecOp {
	return memoChildVec(&a.vecChildren, len(a.Ctxs), w, a.BuildVec)
}

// gather returns the master aggregate that the merged partials fill.
func (a *ParallelAgg) gather() *HashAgg {
	if a.master == nil {
		var c Op
		if a.Build != nil {
			c = a.child(0)
		} else {
			c = &RowAdapter{Vec: a.childVec(0)}
		}
		a.master = &HashAgg{
			Child:     c,
			GroupCols: a.GroupCols,
			Aggs:      a.Aggs,
			Expected:  a.Expected,
		}
	}
	return a.master
}

// Schema implements Op.
func (a *ParallelAgg) Schema() Schema { return a.gather().Schema() }

// Open implements Op: it runs the workers to completion, then merges
// their partial tables into the master under the gather context.
func (a *ParallelAgg) Open(ctx *Ctx) error {
	if len(a.Ctxs) == 0 {
		return fmt.Errorf("engine: parallel agg with no worker contexts")
	}
	if (a.Build == nil) == (a.BuildVec == nil) {
		return fmt.Errorf("engine: parallel agg needs exactly one of Build and BuildVec")
	}
	m := a.gather()
	cs := m.prepare(ctx)
	for w := range a.Ctxs {
		if a.Build != nil {
			a.child(w)
		} else {
			a.childVec(w)
		}
	}

	partials := make([]*HashAgg, len(a.Ctxs))
	errs := make([]error, len(a.Ctxs))
	var wg sync.WaitGroup
	for w := range a.Ctxs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if a.BuildVec != nil {
				va := &HashAggVec{
					Child:     a.childVec(w),
					GroupCols: a.GroupCols,
					Aggs:      a.Aggs,
					Expected:  a.Expected,
				}
				errs[w] = va.Open(a.Ctxs[w])
				partials[w] = va.agg()
				return
			}
			wa := &HashAgg{
				Child:     a.child(w),
				GroupCols: a.GroupCols,
				Aggs:      a.Aggs,
				Expected:  a.Expected,
			}
			errs[w] = wa.Open(a.Ctxs[w])
			partials[w] = wa
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Gather barrier: merge worker partials into the master table. The
	// scan of each partial is charged to the gather worker — it reads the
	// producers' workspaces, which is the cross-core traffic a shared L2
	// absorbs.
	for _, wa := range partials {
		wa.ht.Scan(ctx.Rec, func(_ uint64, p []byte) bool {
			payload, at := m.findOrInsertGroup(ctx.Rec, p[:m.groupW])
			mergeAccums(cs, a.Aggs, payload[m.groupW:], p[m.groupW:])
			ctx.Rec.StoreRange(at+mem.Addr(m.groupW), m.slotW)
			return true
		})
	}
	return nil
}

// Next implements Op.
func (a *ParallelAgg) Next(ctx *Ctx) ([]byte, bool, error) { return a.gather().Next(ctx) }

// Close implements Op.
func (a *ParallelAgg) Close(ctx *Ctx) {
	if a.master != nil {
		a.master.Close(ctx)
	}
}

// prow is a partitioned build row: its bytes and simulated address.
type prow struct {
	b  []byte
	at mem.Addr
}

// ParallelHashJoin joins Probe ⋈ Build on integer key equality with the
// build side hash-partitioned across workers: workers first scan build
// morsels, scattering each row into its key partition; after a barrier,
// worker p builds the hash table of partition p in its own workspace;
// probe workers then claim probe morsels and probe exactly one partition
// per row (the tables are read-only by then, so probing is lock-free).
// Output rows are Probe ++ Build columns, gathered through an Exchange in
// arrival order.
type ParallelHashJoin struct {
	// Row-subtree factories (legacy) or vectorized factories (preferred);
	// set exactly one of each pair. Vectorized build sides scatter whole
	// blocks into the key partitions; vectorized probe sides stream
	// through a RowAdapter into the shared probe state machine.
	BuildSrc    func(w int) Op
	ProbeSrc    func(w int) Op
	BuildSrcVec func(w int) VecOp
	ProbeSrcVec func(w int) VecOp
	BuildCol    int // key column in the build schema
	ProbeCol    int // key column in the probe schema
	Type        JoinType
	Ctxs        []*Ctx
	// Mode pins the per-partition build strategy: JoinPartitioned radix-
	// splits each worker's partition into cache-sized sub-tables; JoinAuto
	// decides from the per-worker partition size. JoinPrefetch falls back
	// to chained here — the probe is row-at-a-time per worker, and the
	// workers' own overlap already provides the memory-level parallelism
	// the serial prefetch modes recover.
	Mode JoinMode

	out              Schema
	buildChildren    []Op
	probeChildren    []Op
	buildVecChildren []VecOp
	parts            []*PartedTable
	ex               *Exchange
	code             mem.CodeSeg
}

// buildVecChild builds (once) worker w's vectorized build subtree.
func (j *ParallelHashJoin) buildVecChild(w int) VecOp {
	return memoChildVec(&j.buildVecChildren, len(j.Ctxs), w, j.BuildSrcVec)
}

// buildChild builds (once) worker w's build subtree (row view).
func (j *ParallelHashJoin) buildChild(w int) Op {
	return memoChild(&j.buildChildren, len(j.Ctxs), w, func(w int) Op {
		if j.BuildSrc != nil {
			return j.BuildSrc(w)
		}
		return &RowAdapter{Vec: j.buildVecChild(w)}
	})
}

// probeChild builds (once) worker w's probe subtree (row view).
func (j *ParallelHashJoin) probeChild(w int) Op {
	return memoChild(&j.probeChildren, len(j.Ctxs), w, func(w int) Op {
		if j.ProbeSrc != nil {
			return j.ProbeSrc(w)
		}
		return &RowAdapter{Vec: j.ProbeSrcVec(w)}
	})
}

// Schema implements Op.
func (j *ParallelHashJoin) Schema() Schema {
	if j.out == nil {
		j.out = j.probeChild(0).Schema().Concat(j.buildChild(0).Schema())
	}
	return j.out
}

// partition maps a join key to a partition. It uses the hash's high bits
// so partition choice stays independent of the bucket index (low bits)
// within each partition's table.
func (j *ParallelHashJoin) partition(key uint64) int {
	return int((mix(key) >> 32) % uint64(len(j.Ctxs)))
}

// Open implements Op: partition phase, barrier, build phase, then the
// probe workers start producing.
func (j *ParallelHashJoin) Open(ctx *Ctx) error {
	if len(j.Ctxs) == 0 {
		return fmt.Errorf("engine: parallel join with no worker contexts")
	}
	if (j.BuildSrc == nil) == (j.BuildSrcVec == nil) {
		return fmt.Errorf("engine: parallel join needs exactly one of BuildSrc and BuildSrcVec")
	}
	if (j.ProbeSrc == nil) == (j.ProbeSrcVec == nil) {
		return fmt.Errorf("engine: parallel join needs exactly one of ProbeSrc and ProbeSrcVec")
	}
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:pjoin", 5120)
	nw := len(j.Ctxs)
	vecBuild := j.BuildSrcVec != nil
	for w := 0; w < nw; w++ {
		if vecBuild {
			j.buildVecChild(w)
		} else {
			j.buildChild(w)
		}
		j.probeChild(w)
	}
	var bSchema Schema
	if vecBuild {
		bSchema = j.buildVecChild(0).Schema()
	} else {
		bSchema = j.buildChild(0).Schema()
	}
	bOff := bSchema.Offsets()[j.BuildCol]
	bWidth := bSchema.RowWidth()

	// Phase 1 — partition: worker w scatters its build rows into per-
	// worker, per-partition buffers in its own workspace (no locks). A
	// vectorized build side scatters block-at-a-time, charging the loop
	// once per block instead of once per row.
	scatter := make([][][]prow, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := j.Ctxs[w]
			scatter[w] = make([][]prow, nw)
			scatterRow := func(row []byte) {
				p := j.partition(uint64(RowInt(row, bOff)))
				at := wctx.Work.Alloc(len(row), 8)
				b := wctx.Work.Bytes(at, len(row))
				copy(b, row)
				wctx.Rec.StoreRange(at, len(row))
				scatter[w][p] = append(scatter[w][p], prow{b: b, at: at})
			}
			if vecBuild {
				errs[w] = RunVec(wctx, j.buildVecChild(w), func(blk *Block) error {
					wctx.Rec.Exec(j.code, vecBlockCost+blk.N()*vecBuildCost)
					blk.TraceRows(wctx.Rec)
					// Honor a selection vector (native borrowed scans
					// deliver Sel-annotated blocks): scatter live rows only.
					if blk.Sel != nil {
						for _, i := range blk.Sel {
							scatterRow(blk.RowAt(int(i)))
						}
						return nil
					}
					for i := 0; i < blk.N(); i++ {
						scatterRow(blk.RowAt(i))
					}
					return nil
				})
				return
			}
			errs[w] = Run(wctx, j.buildChild(w), func(row []byte) error {
				wctx.Rec.Exec(j.code, 60)
				scatterRow(row)
				return nil
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 2 — build: worker p assembles partition p's hash table from
	// every scatter buffer targeting it. In partitioned mode the worker
	// radix-splits its partition into cache-sized sub-tables (the rows are
	// already staged, so the split costs only routing, not another copy).
	j.parts = make([]*PartedTable, nw)
	for p := 0; p < nw; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			wctx := j.Ctxs[p]
			n := 0
			for w := 0; w < nw; w++ {
				n += len(scatter[w][p])
			}
			mode := resolveJoinMode(j.Mode, wctx, n+1, htEntryHeader+bWidth)
			sub := 1
			if mode == JoinPartitioned {
				sub = joinParts(n+1, htEntryHeader+bWidth)
			}
			mask := uint64(sub - 1)
			counts := make([]int, sub)
			if sub > 1 {
				for w := 0; w < nw; w++ {
					for _, r := range scatter[w][p] {
						counts[int(mix(uint64(RowInt(r.b, bOff)))>>radixShift&mask)]++
					}
				}
			} else {
				counts[0] = n
			}
			pt := &PartedTable{tables: make([]*HashTable, sub), mask: mask}
			for s := 0; s < sub; s++ {
				pt.tables[s] = NewHashTable(wctx, counts[s]+1, bWidth)
			}
			for w := 0; w < nw; w++ {
				for _, r := range scatter[w][p] {
					key := uint64(RowInt(r.b, bOff))
					wctx.Rec.Exec(j.code, 45)
					wctx.Rec.LoadRange(r.at, len(r.b))
					pt.Table(key).Insert(wctx.Rec, key, r.b)
				}
			}
			j.parts[p] = pt
		}(p)
	}
	wg.Wait()
	j.observeBuild(ctx)

	// Phase 3 — probe, gathered through an exchange.
	j.ex = &Exchange{
		Ctxs:  j.Ctxs,
		Build: func(w int) Op { return &probeOp{join: j, inner: j.probeChild(w)} },
	}
	return j.ex.Open(ctx)
}

// Next implements Op.
func (j *ParallelHashJoin) Next(ctx *Ctx) ([]byte, bool, error) { return j.ex.Next(ctx) }

// Close implements Op.
func (j *ParallelHashJoin) Close(ctx *Ctx) {
	if j.ex != nil {
		j.ex.Close(ctx)
	}
	j.parts = nil
}

// observeBuild feeds the finished partition tables into the gather
// context's join metrics (see HashJoinVec.observeBuild): one build event
// for the whole join, the total sub-table fan-out across worker
// partitions, and — when a histogram is attached — every chain length.
func (j *ParallelHashJoin) observeBuild(ctx *Ctx) {
	tables := 0
	for _, pt := range j.parts {
		tables += pt.Parts()
	}
	mode := JoinChained
	if tables > len(j.parts) {
		mode = JoinPartitioned
	}
	m := mode.String()
	ctx.Join.Builds.With(m).Inc()
	ctx.Join.Partitions.With(m).Add(uint64(tables))
	if h := ctx.Join.ChainLen; h != nil {
		for _, pt := range j.parts {
			pt.ChainLengths(func(n int) { h.Observe(float64(n)) })
		}
	}
}

// probeOp streams one worker's probe rows against the shared (read-only)
// partition tables through the probeCore state machine HashJoin also
// uses; only the lookup — partition table instead of a single hash
// table — differs.
type probeOp struct {
	join  *ParallelHashJoin
	inner Op

	keyOff int
	pc     probeCore
}

// Schema implements Op.
func (p *probeOp) Schema() Schema { return p.join.Schema() }

// Open implements Op.
func (p *probeOp) Open(ctx *Ctx) error {
	p.pc.init(p.join.Schema().RowWidth(), p.inner.Schema().RowWidth())
	p.keyOff = p.inner.Schema().Offsets()[p.join.ProbeCol]
	return p.inner.Open(ctx)
}

// Close implements Op.
func (p *probeOp) Close(ctx *Ctx) { p.inner.Close(ctx) }

// Next implements Op.
func (p *probeOp) Next(ctx *Ctx) ([]byte, bool, error) {
	j := p.join
	return p.pc.next(ctx, p.inner, p.keyOff, j.Type, j.code,
		func(rec *trace.Recorder, key uint64, collect func([]byte)) {
			j.parts[j.partition(key)].Iter(rec, key, func(payload []byte, _ mem.Addr) bool {
				collect(payload)
				return true
			})
		})
}
