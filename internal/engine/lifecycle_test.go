// Operator lifecycle audit: Open/Close must be safe to call in the
// orders error handling produces — Close before Open (a parent's Open
// failed partway), Close twice (a defer racing an explicit cleanup), and
// Close after a mid-stream error — for every row and vectorized
// operator. A panic in any of these paths turns a recoverable query
// error into a crashed worker.

package engine

import (
	"errors"
	"testing"

	"repro/internal/storage"
)

// errBoom is the mid-stream failure the fault-injection ops raise.
var errBoom = errors.New("boom")

// failOp yields After rows, then fails every subsequent Next. FailOpen
// makes Open itself fail.
type failOp struct {
	Schema_  Schema
	After    int
	FailOpen bool
	n        int
}

func (f *failOp) Schema() Schema { return f.Schema_ }
func (f *failOp) Open(ctx *Ctx) error {
	f.n = 0
	if f.FailOpen {
		return errBoom
	}
	return nil
}
func (f *failOp) Close(ctx *Ctx) {}
func (f *failOp) Next(ctx *Ctx) ([]byte, bool, error) {
	if f.n >= f.After {
		return nil, false, errBoom
	}
	f.n++
	row := make([]byte, f.Schema_.RowWidth())
	PutRowInt(row, 0, int64(f.n))
	return row, true, nil
}

// failVec is failOp's vectorized form: one block of After rows, then an
// error.
type failVec struct {
	Schema_  Schema
	After    int
	FailOpen bool
	sent     bool
	blk      *Block
}

func (f *failVec) Schema() Schema { return f.Schema_ }
func (f *failVec) Open(ctx *Ctx) error {
	f.sent = false
	if f.FailOpen {
		return errBoom
	}
	if f.blk == nil && f.After > 0 {
		f.blk = NewBlock(ctx.Work, f.After, f.Schema_.RowWidth())
	}
	return nil
}
func (f *failVec) Close(ctx *Ctx) {}
func (f *failVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if f.sent || f.After == 0 {
		return nil, false, errBoom
	}
	f.sent = true
	f.blk.Reset()
	row := make([]byte, f.Schema_.RowWidth())
	for i := 0; i < f.After; i++ {
		PutRowInt(row, 0, int64(i))
		f.blk.Push(row)
	}
	return f.blk, true, nil
}

// lifecycle drives op through the error path: Open, Next until the error
// surfaces, then Close twice. Everything must return the injected error
// and nothing may panic.
func lifecycle(t *testing.T, name string, ctx *Ctx, op Op) {
	t.Helper()
	// Close before Open must be a no-op.
	op.Close(ctx)
	if err := op.Open(ctx); err != nil {
		if !errors.Is(err, errBoom) {
			t.Fatalf("%s: unexpected open error %v", name, err)
		}
		// Open failed: Close (a parent's cleanup) must still be safe.
		op.Close(ctx)
		op.Close(ctx)
		return
	}
	var err error
	for i := 0; i < 1_000_000; i++ {
		var ok bool
		_, ok, err = op.Next(ctx)
		if err != nil || !ok {
			break
		}
	}
	if err != nil && !errors.Is(err, errBoom) {
		t.Fatalf("%s: unexpected error %v", name, err)
	}
	op.Close(ctx)
	op.Close(ctx) // double close
}

func lifecycleSchema() Schema { return Schema{Int("k"), Int("v")} }

// TestLifecycleRowOpsSurviveErrorsAndDoubleClose covers the row stack.
func TestLifecycleRowOpsSurviveErrorsAndDoubleClose(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 200)
	s := lifecycleSchema()

	cases := func(child func() Op) map[string]func() Op {
		return map[string]func() Op{
			"filter":  func() Op { return &Filter{Child: child(), Preds: []Pred{PredInt(0, GE, 0)}} },
			"project": func() Op { return &Project{Child: child(), Cols: []int{1, 0}} },
			"limit":   func() Op { return &Limit{Child: child(), N: 1000} },
			"map": func() Op {
				return &Map{Child: child(), Out: s, Fn: func(in, out []byte) { copy(out, in) }}
			},
			"sort": func() Op { return &Sort{Child: child(), Col: 0} },
			"hashagg": func() Op {
				return &HashAgg{Child: child(), GroupCols: []int{0}, Aggs: []AggSpec{{Func: Count, Name: "n"}}}
			},
			"hashjoin-probe": func() Op {
				return &HashJoin{Left: child(), Right: &SeqScan{Table: tb, Cols: []int{0, 1}}, LeftCol: 0, RightCol: 0}
			},
			"hashjoin-build": func() Op {
				return &HashJoin{Left: &SeqScan{Table: tb, Cols: []int{0, 1}}, Right: child(), LeftCol: 0, RightCol: 0}
			},
			"nljoin": func() Op {
				return &NLJoin{Left: child(), Right: &Limit{Child: &SeqScan{Table: tb, Cols: []int{0, 1}}, N: 3}}
			},
			"rowadapter-vecadapter": func() Op {
				return &RowAdapter{Vec: &VecAdapter{Child: child(), BlockRows: 16}}
			},
		}
	}

	for _, mode := range []struct {
		name  string
		child func() Op
	}{
		{"midstream", func() Op { return &failOp{Schema_: s, After: 50} }},
		{"openfail", func() Op { return &failOp{Schema_: s, FailOpen: true} }},
		{"clean", func() Op { return &failOp{Schema_: s, After: 0} }},
	} {
		for name, build := range cases(mode.child) {
			ctx := testCtx(t, db)
			lifecycle(t, mode.name+"/"+name, ctx, build())
		}
	}
}

// TestLifecycleVecOpsSurviveErrorsAndDoubleClose covers the vectorized
// stack through RowAdapter.
func TestLifecycleVecOpsSurviveErrorsAndDoubleClose(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 200)
	s := lifecycleSchema()

	cases := func(child func() VecOp) map[string]func() VecOp {
		return map[string]func() VecOp{
			"filtervec":  func() VecOp { return &FilterVec{Child: child(), Preds: []Pred{PredInt(0, GE, 0)}} },
			"projectvec": func() VecOp { return &ProjectVec{Child: child(), Cols: []int{1, 0}} },
			"mapvec": func() VecOp {
				return &MapVec{Child: child(), Out: s, Fn: func(in, out []byte) { copy(out, in) }}
			},
			"hashaggvec": func() VecOp {
				return &HashAggVec{Child: child(), GroupCols: []int{0}, Aggs: []AggSpec{{Func: Count, Name: "n"}}}
			},
			"hashjoinvec-probe": func() VecOp {
				return &HashJoinVec{Probe: child(), Build: &ScanVec{Table: tb, Cols: []int{0, 1}}, ProbeCol: 0, BuildCol: 0}
			},
			"hashjoinvec-build": func() VecOp {
				return &HashJoinVec{Probe: &ScanVec{Table: tb, Cols: []int{0, 1}}, Build: child(), ProbeCol: 0, BuildCol: 0}
			},
		}
	}

	for _, mode := range []struct {
		name  string
		child func() VecOp
	}{
		{"midstream", func() VecOp { return &failVec{Schema_: s, After: 50} }},
		{"openfail", func() VecOp { return &failVec{Schema_: s, FailOpen: true} }},
		{"clean", func() VecOp { return &failVec{Schema_: s, After: 0} }},
	} {
		for name, build := range cases(mode.child) {
			ctx := testCtx(t, db)
			lifecycle(t, mode.name+"/"+name, ctx, &RowAdapter{Vec: build()})
		}
	}
}

// TestLifecycleSourceOpsReopen: scans must be reopenable after Close
// (morsel drivers reopen per claimed range) and idempotent under double
// close mid-stream.
func TestLifecycleSourceOpsReopen(t *testing.T) {
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		db := testDB(t)
		tb := mkTable(t, db, layout, 500)
		ctx := testCtx(t, db)
		for name, op := range map[string]Op{
			"seqscan": &SeqScan{Table: tb},
			"scanvec": &RowAdapter{Vec: &ScanVec{Table: tb}},
		} {
			for pass := 0; pass < 2; pass++ {
				if err := op.Open(ctx); err != nil {
					t.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := op.Next(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					n++
					if n == 10 {
						break // abandon mid-stream
					}
				}
				op.Close(ctx)
				op.Close(ctx)
				if n == 0 {
					t.Fatalf("%s/%v pass %d: no rows", name, layout, pass)
				}
			}
		}
	}
}

// TestLifecycleExchangeErrorAndClose: a worker subtree failing mid-stream
// must surface its error through Next, and closing the exchange twice —
// with workers still draining — must not panic or deadlock.
func TestLifecycleExchangeErrorAndClose(t *testing.T) {
	db := testDB(t)
	s := lifecycleSchema()
	ctxs := []*Ctx{db.NewCtx(nil, 1, 4<<20), db.NewCtx(nil, 2, 4<<20)}

	// Error path: every worker fails after a few rows.
	ex := &Exchange{
		Ctxs:  ctxs,
		Build: func(w int) Op { return &failOp{Schema_: s, After: 5} },
	}
	ctx := testCtx(t, db)
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var err error
	for {
		var ok bool
		_, ok, err = ex.Next(ctx)
		if err != nil || !ok {
			break
		}
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("exchange swallowed the worker error: %v", err)
	}
	ex.Close(ctx)
	ex.Close(ctx)

	// Abandon path: close with rows still queued.
	ex2 := &Exchange{
		Ctxs:  ctxs,
		Build: func(w int) Op { return &failOp{Schema_: s, After: 100000} },
	}
	if err := ex2.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ex2.Next(ctx); err != nil || !ok {
		t.Fatalf("no first row: %v", err)
	}
	ex2.Close(ctx)
	ex2.Close(ctx)

	// Close before Open.
	ex3 := &Exchange{Ctxs: ctxs, Build: func(w int) Op { return &failOp{Schema_: s} }}
	ex3.Close(ctx)
}

// TestLifecycleParallelOpsCloseSafety: the parallel operators tolerate
// Close before Open, worker errors, and double Close.
func TestLifecycleParallelOpsCloseSafety(t *testing.T) {
	db := testDB(t)
	s := lifecycleSchema()
	ctxs := []*Ctx{db.NewCtx(nil, 1, 4<<20), db.NewCtx(nil, 2, 4<<20)}
	ctx := testCtx(t, db)

	agg := &ParallelAgg{
		Ctxs:      ctxs,
		BuildVec:  func(w int) VecOp { return &failVec{Schema_: s, After: 8} },
		GroupCols: []int{0},
		Aggs:      []AggSpec{{Func: Count, Name: "n"}},
	}
	agg.Close(ctx) // close before open
	if err := agg.Open(ctx); !errors.Is(err, errBoom) {
		t.Fatalf("parallel agg swallowed worker error: %v", err)
	}
	agg.Close(ctx)
	agg.Close(ctx)

	aggBoth := &ParallelAgg{
		Ctxs:     ctxs,
		Build:    func(w int) Op { return &failOp{Schema_: s} },
		BuildVec: func(w int) VecOp { return &failVec{Schema_: s} },
	}
	if err := aggBoth.Open(ctx); err == nil {
		t.Fatal("parallel agg accepted both Build and BuildVec")
	}

	join := &ParallelHashJoin{
		Ctxs:        ctxs,
		BuildSrcVec: func(w int) VecOp { return &failVec{Schema_: s, After: 4} },
		ProbeSrcVec: func(w int) VecOp { return &failVec{Schema_: s, After: 4, FailOpen: false} },
		BuildCol:    0, ProbeCol: 0,
	}
	join.Close(ctx) // close before open
	if err := join.Open(ctx); !errors.Is(err, errBoom) {
		t.Fatalf("parallel join swallowed build error: %v", err)
	}
	join.Close(ctx)
	join.Close(ctx)
}

// TestLifecycleMorselScanCloseMidMorsel: abandoning a morsel scan
// mid-range releases cleanly and double Close is safe.
func TestLifecycleMorselScanCloseMidMorsel(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 2000)
	pool := NewMorselPool(1, tb.Heap.NumPages(), 2)
	ms := &MorselScan{Table: tb, Pool: pool, Worker: 0}
	ctx := testCtx(t, db)
	if err := ms.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := ms.Next(ctx); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	ms.Close(ctx)
	ms.Close(ctx)
}
