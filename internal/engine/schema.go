// Package engine implements the relational query engine standing in for
// the paper's commercial DBMS: catalog, fixed-width row encoding, Volcano
// iterators (scan, filter, project, hash join, nested-loop join, hash
// aggregate, sort, limit), and arena-backed hash tables.
//
// Operators perform real computation over real data and, when a trace
// recorder is present, emit the memory references of every page, tuple,
// hash-bucket and intermediate-result access, so the simulated cache
// behaviour is the behaviour of this engine, not a synthetic pattern.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type is a column type. All types are fixed-width, which keeps PAX pages
// and in-place updates simple (commercial engines reserve fixed widths for
// CHAR columns the same way).
type Type uint8

// Column types.
const (
	TInt   Type = iota // int64, 8 bytes
	TFloat             // float64, 8 bytes
	TChar              // fixed-width string, space-padded
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TChar:
		return "char"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Column describes one attribute.
type Column struct {
	Name  string
	Type  Type
	Width int // bytes; 8 for TInt/TFloat, declared width for TChar
}

// Int returns an int64 column definition.
func Int(name string) Column { return Column{Name: name, Type: TInt, Width: 8} }

// Float returns a float64 column definition.
func Float(name string) Column { return Column{Name: name, Type: TFloat, Width: 8} }

// Char returns a fixed-width string column definition.
func Char(name string, width int) Column {
	if width <= 0 {
		panic(fmt.Sprintf("engine: char column %q width %d", name, width))
	}
	return Column{Name: name, Type: TChar, Width: width}
}

// Schema is an ordered list of columns.
type Schema []Column

// Widths returns per-column byte widths.
func (s Schema) Widths() []int {
	w := make([]int, len(s))
	for i, c := range s {
		w[i] = c.Width
	}
	return w
}

// RowWidth returns the total encoded row width.
func (s Schema) RowWidth() int {
	n := 0
	for _, c := range s {
		n += c.Width
	}
	return n
}

// Offsets returns the NSM byte offset of each column.
func (s Schema) Offsets() []int {
	offs := make([]int, len(s))
	off := 0
	for i, c := range s {
		offs[i] = off
		off += c.Width
	}
	return offs
}

// Col returns the index of the named column; it panics on unknown names
// (schemas are static, so this is programmer error).
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("engine: no column %q in schema %v", name, s.Names()))
}

// Names returns the column names.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i, c := range s {
		ns[i] = c.Name
	}
	return ns
}

// Project returns the sub-schema of the given column indexes.
func (s Schema) Project(cols []int) Schema {
	out := make(Schema, len(cols))
	for i, c := range cols {
		out[i] = s[c]
	}
	return out
}

// Concat returns the schema of s followed by o (join outputs), renaming
// collisions with a "r_" prefix.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	seen := map[string]bool{}
	for _, c := range s {
		seen[c.Name] = true
	}
	for _, c := range o {
		if seen[c.Name] {
			c.Name = "r_" + c.Name
		}
		out = append(out, c)
	}
	return out
}

// Value is one runtime value for inserts and query results.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// IV makes an int value.
func IV(i int64) Value { return Value{Kind: TInt, I: i} }

// FV makes a float value.
func FV(f float64) Value { return Value{Kind: TFloat, F: f} }

// SV makes a string value.
func SV(s string) Value { return Value{Kind: TChar, S: s} }

func (v Value) String() string {
	switch v.Kind {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%.4f", v.F)
	default:
		return strings.TrimRight(v.S, " ")
	}
}

// EncodeRow encodes vals per schema into buf (len >= RowWidth).
func (s Schema) EncodeRow(buf []byte, vals []Value) error {
	if len(vals) != len(s) {
		return fmt.Errorf("engine: %d values for %d columns", len(vals), len(s))
	}
	off := 0
	for i, c := range s {
		v := vals[i]
		if v.Kind != c.Type {
			return fmt.Errorf("engine: column %q is %v, got %v", c.Name, c.Type, v.Kind)
		}
		switch c.Type {
		case TInt:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.I))
		case TFloat:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.F))
		case TChar:
			if len(v.S) > c.Width {
				return fmt.Errorf("engine: %q overflows char(%d) column %q", v.S, c.Width, c.Name)
			}
			n := copy(buf[off:off+c.Width], v.S)
			for j := off + n; j < off+c.Width; j++ {
				buf[j] = ' '
			}
		}
		off += c.Width
	}
	return nil
}

// DecodeRow decodes an encoded row into values.
func (s Schema) DecodeRow(buf []byte) []Value {
	out := make([]Value, len(s))
	off := 0
	for i, c := range s {
		switch c.Type {
		case TInt:
			out[i] = IV(int64(binary.LittleEndian.Uint64(buf[off:])))
		case TFloat:
			out[i] = FV(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		case TChar:
			out[i] = SV(string(buf[off : off+c.Width]))
		}
		off += c.Width
	}
	return out
}

// RowInt reads column col (by precomputed offset) as int64 from an encoded
// row. These accessors are the hot path; they do not allocate.
func RowInt(buf []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(buf[off:]))
}

// RowFloat reads a float64 column at offset off.
func RowFloat(buf []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}

// RowBytes reads a char column of width w at offset off.
func RowBytes(buf []byte, off, w int) []byte { return buf[off : off+w] }

// PutRowInt writes an int64 column in place.
func PutRowInt(buf []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(buf[off:], uint64(v))
}

// PutRowFloat writes a float64 column in place.
func PutRowFloat(buf []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
}
