package engine

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/trace"
)

func TestSeqScanStartPageCoversAllRowsOnce(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 3000)
	ctx := testCtx(t, db)
	for _, start := range []int{0, 1, tb.Heap.NumPages() / 2, tb.Heap.NumPages() - 1} {
		seen := map[int64]bool{}
		err := Run(ctx, &SeqScan{Table: tb, StartPage: start}, func(row []byte) error {
			id := RowInt(row, 0)
			if seen[id] {
				t.Fatalf("start=%d: id %d seen twice", start, id)
			}
			seen[id] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 3000 {
			t.Fatalf("start=%d: saw %d rows", start, len(seen))
		}
	}
}

func TestSeqScanCircularOriginRotates(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 2000)
	ctx := testCtx(t, db)
	first := func(start int) int64 {
		var id int64 = -1
		Run(ctx, &Limit{Child: &SeqScan{Table: tb, StartPage: start}, N: 1}, func(row []byte) error {
			id = RowInt(row, 0)
			return nil
		})
		return id
	}
	if first(0) == first(3) {
		t.Fatal("rotated scan starts at the same row")
	}
}

func TestIndexScanWithResidualPredicate(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 1000)
	idx, _ := db.CreateIndex(tb, "t2_id", func(row []byte) int64 { return RowInt(row, 0) })
	rebuildIndex(t, db, tb, idx)
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &IndexScan{
		Table: tb, Idx: idx, Lo: 0, Hi: 499,
		Preds: []Pred{PredInt(1, EQ, 3)}, // grp == 3
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 500; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
}

func TestMapDerivedColumns(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 100)
	ctx := testCtx(t, db)
	out := Schema{Int("id"), Float("double_val")}
	rows, err := Collect(ctx, &Map{
		Child: &SeqScan{Table: tb},
		Out:   out,
		Fn: func(in, o []byte) {
			PutRowInt(o, 0, RowInt(in, 0))
			PutRowFloat(o, 8, 2*RowFloat(in, 16))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[1].F != float64(r[0].I) {
			t.Fatalf("derived column wrong: %v", r)
		}
	}
}

func TestSortStableOnEqualKeys(t *testing.T) {
	db := testDB(t)
	s := Schema{Int("k"), Int("seq")}
	tb, _ := db.CreateTable("stable", s, storage.NSM)
	for i := 0; i < 500; i++ {
		tb.Insert(nil, []Value{IV(int64(i % 3)), IV(int64(i))})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &Sort{Child: &SeqScan{Table: tb}, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	prevKey, prevSeq := int64(-1), int64(-1)
	for _, r := range rows {
		if r[0].I == prevKey && r[1].I < prevSeq {
			t.Fatalf("stability violated within key %d", r[0].I)
		}
		if r[0].I != prevKey {
			prevKey, prevSeq = r[0].I, -1
		}
		prevSeq = r[1].I
	}
}

func TestSortCharColumn(t *testing.T) {
	db := testDB(t)
	s := Schema{Char("name", 8)}
	tb, _ := db.CreateTable("chars", s, storage.NSM)
	for _, n := range []string{"delta", "alpha", "charlie", "bravo"} {
		tb.Insert(nil, []Value{SV(n)})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &Sort{Child: &SeqScan{Table: tb}, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "bravo", "charlie", "delta"}
	for i, r := range rows {
		if r[0].String() != want[i] {
			t.Fatalf("order[%d] = %q, want %q", i, r[0].String(), want[i])
		}
	}
}

func TestHashJoinEmptyBuild(t *testing.T) {
	db := testDB(t)
	left, _ := db.CreateTable("el", Schema{Int("k")}, storage.NSM)
	right, _ := db.CreateTable("er", Schema{Int("k2")}, storage.NSM)
	for i := 0; i < 10; i++ {
		left.Insert(nil, []Value{IV(int64(i))})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashJoin{
		Left: &SeqScan{Table: left}, Right: &SeqScan{Table: right},
		LeftCol: 0, RightCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("inner join with empty build produced %d rows", len(rows))
	}
	// Left outer keeps all probe rows.
	rows, err = Collect(ctx, &HashJoin{
		Left: &SeqScan{Table: left}, Right: &SeqScan{Table: right},
		LeftCol: 0, RightCol: 0, Type: LeftOuter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("left outer with empty build produced %d rows", len(rows))
	}
}

func TestHashJoinDuplicateKeysBothSides(t *testing.T) {
	db := testDB(t)
	left, _ := db.CreateTable("dl", Schema{Int("k"), Int("lid")}, storage.NSM)
	right, _ := db.CreateTable("dr", Schema{Int("k2"), Int("rid")}, storage.NSM)
	for i := 0; i < 3; i++ {
		left.Insert(nil, []Value{IV(7), IV(int64(i))})
		right.Insert(nil, []Value{IV(7), IV(int64(100 + i))})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashJoin{
		Left: &SeqScan{Table: left}, Right: &SeqScan{Table: right},
		LeftCol: 0, RightCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("3x3 duplicate join produced %d rows, want 9", len(rows))
	}
}

func TestHashAggEmptyInput(t *testing.T) {
	db := testDB(t)
	tb, _ := db.CreateTable("empty", Schema{Int("k"), Int("v")}, storage.NSM)
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashAgg{
		Child: &SeqScan{Table: tb}, GroupCols: []int{0},
		Aggs: []AggSpec{{Func: Count, Name: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty input produced %d groups", len(rows))
	}
}

func TestHashAggGroupCollisionSafety(t *testing.T) {
	// Many groups whose hashed keys will collide in a small table: group
	// bytes must still separate them exactly.
	db := testDB(t)
	s := Schema{Char("g", 4), Int("v")}
	tb, _ := db.CreateTable("coll", s, storage.NSM)
	rng := rand.New(rand.NewSource(17))
	truth := map[string]int64{}
	for i := 0; i < 5000; i++ {
		g := string([]byte{byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)), 'x', 'x'})
		truth[g]++
		tb.Insert(nil, []Value{SV(g), IV(1)})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashAgg{
		Child: &SeqScan{Table: tb}, GroupCols: []int{0},
		Aggs:     []AggSpec{{Func: Count, Name: "n"}},
		Expected: 16, // deliberately undersized
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(truth) {
		t.Fatalf("%d groups, want %d", len(rows), len(truth))
	}
	for _, r := range rows {
		if truth[r[0].S] != r[1].I {
			t.Fatalf("group %q = %d, want %d", r[0].S, r[1].I, truth[r[0].S])
		}
	}
}

func TestPAXScanReadsOnlyPredicateColumnsForMisses(t *testing.T) {
	// Under PAX, a very selective predicate means most tuples load only
	// the predicate minipage: total distinct heap lines touched must be
	// well below the NSM equivalent.
	count := func(layout storage.Layout) int {
		db := testDB(t)
		tb := mkTable(t, db, layout, 4000)
		rec, s := trace.Pipe()
		lines := map[mem.Addr]bool{}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				r, ok := s.Next()
				if !ok {
					return
				}
				if r.Kind() == trace.Load && r.Addr() >= mem.HeapBase {
					lines[r.Addr().Line()] = true
				}
			}
		}()
		ctx := db.NewCtx(rec, 0, 8<<20)
		err := Run(ctx, &SeqScan{
			Table: tb,
			Preds: []Pred{PredInt(0, EQ, 123)}, // one row qualifies
			Cols:  []int{0, 2},
		}, nil)
		rec.Close()
		<-done
		if err != nil {
			t.Fatal(err)
		}
		return len(lines)
	}
	nsm, pax := count(storage.NSM), count(storage.PAXLayout)
	if pax*2 > nsm {
		t.Fatalf("PAX selective scan touched %d lines vs NSM %d; want <=half", pax, nsm)
	}
}

func TestValueStrings(t *testing.T) {
	if IV(5).String() != "5" {
		t.Error("int value string")
	}
	if FV(1.5).String() != "1.5000" {
		t.Errorf("float value string: %q", FV(1.5).String())
	}
	if SV("abc").String() != "abc" {
		t.Error("char value string")
	}
	for _, ty := range []Type{TInt, TFloat, TChar} {
		if ty.String() == "" {
			t.Error("empty type name")
		}
	}
}

func TestCmpOpAndAggStrings(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE, Between} {
		if op.String() == "" {
			t.Errorf("empty op string for %d", op)
		}
	}
	for _, f := range []AggFunc{Count, Sum, Avg, Min, Max} {
		if f.String() == "" {
			t.Errorf("empty agg string for %d", f)
		}
	}
}

func TestColsHelper(t *testing.T) {
	preds := []Pred{PredInt(2, EQ, 1), PredInt(0, LT, 5), PredInt(2, GT, 0)}
	cols := Cols(preds)
	if len(cols) != 2 {
		t.Fatalf("Cols = %v", cols)
	}
}

func TestCharColumnPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Char("bad", 0)
}
