// Predicate pre-compilation: CompilePreds lowers a conjunction of Pred
// constants into type-specialized closures chosen once at Open time, so
// the per-row work of a scan or filter is a direct call instead of
// Pred.Eval's per-row type switch, op switch, and (for string constants)
// per-call pad allocation. The compiled forms are exact drop-ins: they
// evaluate the same comparisons in the same order with the same
// short-circuiting as the interpreted path, so results — and the
// synthetic instruction counts charged per evaluation — are identical.
// Operators keep an Interpret escape hatch; the golden equivalence suite
// runs both paths and compares digests byte for byte.

package engine

import (
	"bytes"
	"math"
)

// RowPred is a compiled single predicate over an encoded row.
type RowPred func(row []byte) bool

// ColPred is a compiled predicate over one column's raw field bytes (a
// PAX minipage entry, or any width-sized slice of the column's values).
type ColPred func(field []byte) bool

// selKernel is the block-at-a-time form of one compiled predicate: dense
// seeds a selection vector from all rows [0, n) of a row-major buffer,
// refine narrows an existing selection in place. One indirect call per
// BLOCK per predicate, with a monomorphic comparison loop inside —
// against one call per ROW on the closure path.
type selKernel struct {
	dense  func(buf []byte, stride, n int, out []int32) []int32
	refine func(buf []byte, stride int, sel []int32) []int32
}

// CompiledPreds is a pre-compiled predicate conjunction. The zero entry
// count is a valid "always true" conjunction.
type CompiledPreds struct {
	fns     []RowPred
	kernels []selKernel
}

// CompilePreds compiles the conjunction against schema/offs (the input
// row encoding). The result is immutable and safe to share across
// goroutines: every closure captures only constants.
func CompilePreds(preds []Pred, s Schema, offs []int) *CompiledPreds {
	c := &CompiledPreds{
		fns:     make([]RowPred, len(preds)),
		kernels: make([]selKernel, len(preds)),
	}
	for i, p := range preds {
		c.fns[i] = compileRowPred(p, s[p.Col], offs[p.Col])
		c.kernels[i] = compileSelKernel(p, s[p.Col], offs[p.Col], c.fns[i])
	}
	return c
}

// SelectDense evaluates the whole conjunction block-at-a-time: the first
// predicate's kernel seeds sel from rows [0, n) of the stride-spaced
// buffer, each later kernel refines the survivors in place. Equivalent
// to calling Pass on every row, minus the per-row dispatch.
func (c *CompiledPreds) SelectDense(buf []byte, stride, n int, sel []int32) []int32 {
	if len(c.kernels) == 0 {
		for i := 0; i < n; i++ {
			sel = append(sel, int32(i))
		}
		return sel
	}
	sel = c.kernels[0].dense(buf, stride, n, sel)
	for _, k := range c.kernels[1:] {
		if len(sel) == 0 {
			return sel
		}
		sel = k.refine(buf, stride, sel)
	}
	return sel
}

// SelectRefine narrows sel (physical row indexes into the buffer) to the
// rows passing the whole conjunction, in place.
func (c *CompiledPreds) SelectRefine(buf []byte, stride int, sel []int32) []int32 {
	for _, k := range c.kernels {
		if len(sel) == 0 {
			return sel
		}
		sel = k.refine(buf, stride, sel)
	}
	return sel
}

// Len returns the number of predicates in the conjunction.
func (c *CompiledPreds) Len() int { return len(c.fns) }

// Pass evaluates the conjunction with short-circuiting.
func (c *CompiledPreds) Pass(row []byte) bool {
	for _, f := range c.fns {
		if !f(row) {
			return false
		}
	}
	return true
}

// EvalCount evaluates the conjunction and reports how many individual
// predicates were evaluated before the short-circuit (the count the
// interpreted scan loop charges per tuple), with the small fused cases
// unrolled so the hot path is branch-light.
func (c *CompiledPreds) EvalCount(row []byte) (pass bool, evals int) {
	switch len(c.fns) {
	case 0:
		return true, 0
	case 1:
		return c.fns[0](row), 1
	case 2:
		if !c.fns[0](row) {
			return false, 1
		}
		return c.fns[1](row), 2
	case 3:
		if !c.fns[0](row) {
			return false, 1
		}
		if !c.fns[1](row) {
			return false, 2
		}
		return c.fns[2](row), 3
	default:
		for i, f := range c.fns {
			if !f(row) {
				return false, i + 1
			}
		}
		return true, len(c.fns)
	}
}

// compileRowPred lowers one predicate into a closure specialized on the
// column's type and the comparison operator, with the field offset and
// constants captured — no per-row schema lookups or dispatch.
func compileRowPred(p Pred, col Column, off int) RowPred {
	switch col.Type {
	case TInt:
		return compileIntPred(p, off)
	case TFloat:
		return compileFloatPred(p, off)
	default:
		return compileBytesPred(p, col, off)
	}
}

func compileIntPred(p Pred, off int) RowPred {
	k, hi := p.I, p.IHi
	switch p.Op {
	case EQ:
		return func(row []byte) bool { return RowInt(row, off) == k }
	case NE:
		return func(row []byte) bool { return RowInt(row, off) != k }
	case LT:
		return func(row []byte) bool { return RowInt(row, off) < k }
	case LE:
		return func(row []byte) bool { return RowInt(row, off) <= k }
	case GT:
		return func(row []byte) bool { return RowInt(row, off) > k }
	case GE:
		return func(row []byte) bool { return RowInt(row, off) >= k }
	default: // Between
		return func(row []byte) bool { v := RowInt(row, off); return v >= k && v <= hi }
	}
}

func compileFloatPred(p Pred, off int) RowPred {
	k, hi := p.F, p.FHi
	switch p.Op {
	case EQ:
		return func(row []byte) bool { return RowFloat(row, off) == k }
	case NE:
		return func(row []byte) bool { return RowFloat(row, off) != k }
	case LT:
		return func(row []byte) bool { return RowFloat(row, off) < k }
	case LE:
		return func(row []byte) bool { return RowFloat(row, off) <= k }
	case GT:
		return func(row []byte) bool { return RowFloat(row, off) > k }
	case GE:
		return func(row []byte) bool { return RowFloat(row, off) >= k }
	default: // Between
		return func(row []byte) bool { v := RowFloat(row, off); return v >= k && v <= hi }
	}
}

func compileBytesPred(p Pred, col Column, off int) RowPred {
	// The constant is padded once at compile time; the interpreted path
	// re-pads (and allocates) on every evaluation.
	pad := padded(p.S, col.Width)
	w := col.Width
	switch p.Op {
	case EQ:
		return func(row []byte) bool { return bytes.Equal(row[off:off+w], pad) }
	case NE:
		return func(row []byte) bool { return !bytes.Equal(row[off:off+w], pad) }
	case LT:
		return func(row []byte) bool { return bytes.Compare(row[off:off+w], pad) < 0 }
	case LE:
		return func(row []byte) bool { return bytes.Compare(row[off:off+w], pad) <= 0 }
	case GT:
		return func(row []byte) bool { return bytes.Compare(row[off:off+w], pad) > 0 }
	case GE:
		return func(row []byte) bool { return bytes.Compare(row[off:off+w], pad) >= 0 }
	default:
		return func(row []byte) bool { return false }
	}
}

// CompileColPred compiles one predicate against a bare column field (the
// PAX minipage form: the value starts at byte 0 of a width-sized slice).
func CompileColPred(p Pred, col Column) ColPred {
	q := p
	q.Col = 0
	f := compileRowPred(q, col, 0)
	return ColPred(f)
}

// compileSelKernel lowers one predicate into its block kernel. Integer
// comparisons all reduce to one inclusive range check (EQ k is [k,k],
// LE k is [min,k], and so on), so a single loop shape covers six of the
// seven operators; floats keep LT/GT/NE loops of their own (the ±1 range
// trick has no float analogue). String predicates fall back to the
// per-row closure inside the block loop — still one padded constant,
// just not a monomorphic compare.
func compileSelKernel(p Pred, col Column, off int, fn RowPred) selKernel {
	switch col.Type {
	case TInt:
		return intSelKernel(p, off, fn)
	case TFloat:
		return floatSelKernel(p, off)
	default:
		return rowPredKernel(fn)
	}
}

// rowPredKernel wraps an arbitrary compiled row predicate in the block
// loop shape.
func rowPredKernel(fn RowPred) selKernel {
	return selKernel{
		dense: func(buf []byte, stride, n int, out []int32) []int32 {
			for i := 0; i < n; i++ {
				if fn(buf[i*stride:]) {
					out = append(out, int32(i))
				}
			}
			return out
		},
		refine: func(buf []byte, stride int, sel []int32) []int32 {
			kept := sel[:0]
			for _, i := range sel {
				if fn(buf[int(i)*stride:]) {
					kept = append(kept, i)
				}
			}
			return kept
		},
	}
}

// neverKernel rejects every row (an unsatisfiable range like x < MinInt).
var neverKernel = selKernel{
	dense:  func(_ []byte, _, _ int, out []int32) []int32 { return out },
	refine: func(_ []byte, _ int, sel []int32) []int32 { return sel[:0] },
}

func intSelKernel(p Pred, off int, fn RowPred) selKernel {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	switch p.Op {
	case EQ:
		lo, hi = p.I, p.I
	case NE:
		k := p.I
		return selKernel{
			dense: func(buf []byte, stride, n int, out []int32) []int32 {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					if RowInt(buf, p) != k {
						out = append(out, int32(i))
					}
				}
				return out
			},
			refine: func(buf []byte, stride int, sel []int32) []int32 {
				kept := sel[:0]
				for _, i := range sel {
					if RowInt(buf, int(i)*stride+off) != k {
						kept = append(kept, i)
					}
				}
				return kept
			},
		}
	case LT:
		if p.I == math.MinInt64 {
			return neverKernel
		}
		hi = p.I - 1
	case LE:
		hi = p.I
	case GT:
		if p.I == math.MaxInt64 {
			return neverKernel
		}
		lo = p.I + 1
	case GE:
		lo = p.I
	case Between:
		lo, hi = p.I, p.IHi
	default:
		return rowPredKernel(fn)
	}
	return selKernel{
		dense: func(buf []byte, stride, n int, out []int32) []int32 {
			for i, p := 0, off; i < n; i, p = i+1, p+stride {
				if v := RowInt(buf, p); v >= lo && v <= hi {
					out = append(out, int32(i))
				}
			}
			return out
		},
		refine: func(buf []byte, stride int, sel []int32) []int32 {
			kept := sel[:0]
			for _, i := range sel {
				if v := RowInt(buf, int(i)*stride+off); v >= lo && v <= hi {
					kept = append(kept, i)
				}
			}
			return kept
		},
	}
}

func floatSelKernel(p Pred, off int) selKernel {
	k, khi := p.F, p.FHi
	// EQ/LE/GE/Between are one inclusive range check; NaN fails every
	// range, matching the interpreted comparisons.
	lo, hi := math.Inf(-1), math.Inf(1)
	switch p.Op {
	case EQ:
		lo, hi = k, k
	case LE:
		hi = k
	case GE:
		lo = k
	case Between:
		lo, hi = k, khi
	case LT:
		return selKernel{
			dense: func(buf []byte, stride, n int, out []int32) []int32 {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					if RowFloat(buf, p) < k {
						out = append(out, int32(i))
					}
				}
				return out
			},
			refine: func(buf []byte, stride int, sel []int32) []int32 {
				kept := sel[:0]
				for _, i := range sel {
					if RowFloat(buf, int(i)*stride+off) < k {
						kept = append(kept, i)
					}
				}
				return kept
			},
		}
	case GT:
		return selKernel{
			dense: func(buf []byte, stride, n int, out []int32) []int32 {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					if RowFloat(buf, p) > k {
						out = append(out, int32(i))
					}
				}
				return out
			},
			refine: func(buf []byte, stride int, sel []int32) []int32 {
				kept := sel[:0]
				for _, i := range sel {
					if RowFloat(buf, int(i)*stride+off) > k {
						kept = append(kept, i)
					}
				}
				return kept
			},
		}
	case NE:
		return selKernel{
			dense: func(buf []byte, stride, n int, out []int32) []int32 {
				for i, p := 0, off; i < n; i, p = i+1, p+stride {
					if RowFloat(buf, p) != k {
						out = append(out, int32(i))
					}
				}
				return out
			},
			refine: func(buf []byte, stride int, sel []int32) []int32 {
				kept := sel[:0]
				for _, i := range sel {
					if RowFloat(buf, int(i)*stride+off) != k {
						kept = append(kept, i)
					}
				}
				return kept
			},
		}
	}
	return selKernel{
		dense: func(buf []byte, stride, n int, out []int32) []int32 {
			for i, p := 0, off; i < n; i, p = i+1, p+stride {
				if v := RowFloat(buf, p); v >= lo && v <= hi {
					out = append(out, int32(i))
				}
			}
			return out
		},
		refine: func(buf []byte, stride int, sel []int32) []int32 {
			kept := sel[:0]
			for _, i := range sel {
				if v := RowFloat(buf, int(i)*stride+off); v >= lo && v <= hi {
					kept = append(kept, i)
				}
			}
			return kept
		},
	}
}
