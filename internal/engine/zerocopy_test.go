// Tests for the zero-copy block protocol: a borrowed page is released
// exactly once (on Reset or on the final ring Release), borrowed scans
// are row-identical to the copy path on both layouts and drop their pins
// even when abandoned mid-stream, the alias-debug assertions catch
// release-under-readers and shared-mutation hazards, and concurrent ring
// consumers releasing a borrowed block stay race-free.

package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// TestBlockBorrowReleaseExactlyOnce: Reset ends a borrow and fires the
// release callback once, repeated Resets stay no-ops, and the block's
// own arena storage comes back intact for copy-mode reuse.
func TestBlockBorrowReleaseExactlyOnce(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	blk := NewBlock(ctx.Work, 16, 8)
	ownCap, ownAddr := blk.Cap(), blk.Addr()

	released := 0
	buf := make([]byte, 4*8)
	blk.Borrow(buf, 0x9000, 4, func() { released++ })
	if !blk.Borrowed() || blk.N() != 4 || blk.Cap() != 4 {
		t.Fatalf("borrowed block: borrowed=%v n=%d cap=%d", blk.Borrowed(), blk.N(), blk.Cap())
	}
	blk.Reset()
	if released != 1 {
		t.Fatalf("released %d times after Reset, want 1", released)
	}
	blk.Reset()
	if released != 1 {
		t.Fatalf("second Reset released the page again (%d)", released)
	}
	if blk.Borrowed() || blk.Cap() != ownCap || blk.Addr() != ownAddr {
		t.Fatalf("arena storage not restored: borrowed=%v cap=%d addr=%#x", blk.Borrowed(), blk.Cap(), blk.Addr())
	}
}

// TestBlockBorrowRingRelease: with the block on a recycle ring and two
// consumers, only the final Release ends the borrow — and the block
// re-enters the ring unborrowed with its selection vector detached.
func TestBlockBorrowRingRelease(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	blk := NewBlock(ctx.Work, 16, 8)
	home := make(chan *Block, 1)
	blk.SetHome(home)

	released := 0
	buf := make([]byte, 4*8)
	blk.Borrow(buf, 0x9000, 4, func() { released++ })
	blk.Sel = []int32{3, 2, 1, 0}
	blk.RevDense = true
	blk.ResetRefs(2)
	blk.Release()
	if released != 0 {
		t.Fatal("page released while a consumer still held a ref")
	}
	blk.Release()
	if released != 1 {
		t.Fatalf("released %d times after final Release, want 1", released)
	}
	select {
	case got := <-home:
		if got != blk || got.Borrowed() || got.Sel != nil || got.RevDense {
			t.Fatalf("recycled block dirty: borrowed=%v sel=%v revdense=%v",
				got.Borrowed(), got.Sel, got.RevDense)
		}
	default:
		t.Fatal("block not recycled to its home ring")
	}
}

// TestScanVecBorrowedEquivalence: on every shape the alias fast path
// supports — full-row NSM (with and without predicates) and single-column
// PAX — the borrowed scan returns exactly the copy path's rows, and no
// page lease survives the scan.
func TestScanVecBorrowedEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		layout storage.Layout
		preds  []Pred
		cols   []int
	}{
		{"nsm-full", storage.NSM, nil, nil},
		{"nsm-filtered", storage.NSM, []Pred{PredInt(1, EQ, 3)}, nil},
		{"pax-column", storage.PAXLayout, nil, []int{2}},
	}
	for _, tc := range cases {
		db := testDB(t)
		tb := mkTable(t, db, tc.layout, 3000)
		ctx := testCtx(t, db)
		want, err := CollectVec(ctx, &ScanVec{Table: tb, Preds: tc.preds, Cols: tc.cols})
		if err != nil {
			t.Fatalf("%s copy: %v", tc.name, err)
		}
		got, err := CollectVec(ctx, &ScanVec{Table: tb, Preds: tc.preds, Cols: tc.cols, Borrow: true})
		if err != nil {
			t.Fatalf("%s borrow: %v", tc.name, err)
		}
		if len(got) != len(want) || len(want) == 0 {
			t.Fatalf("%s: %d borrowed rows vs %d copied", tc.name, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				if got[i][c] != want[i][c] {
					t.Fatalf("%s row %d col %d: %v != %v", tc.name, i, c, got[i][c], want[i][c])
				}
			}
		}
		if n := db.Pool.Leases(); n != 0 {
			t.Fatalf("%s: %d leases outstanding after scan", tc.name, n)
		}
	}
}

// TestScanVecBorrowCloseMidStream: abandoning a borrowed scan with a
// block still aliasing a page must drop the pin on Close, and double
// Close stays safe.
func TestScanVecBorrowCloseMidStream(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 3000)
	ctx := testCtx(t, db)
	sv := &ScanVec{Table: tb, Borrow: true}
	if err := sv.Open(ctx); err != nil {
		t.Fatal(err)
	}
	blk, ok, err := sv.NextBlock(ctx)
	if err != nil || !ok {
		t.Fatalf("no first block: ok=%v err=%v", ok, err)
	}
	if !blk.Borrowed() {
		t.Fatal("first full page did not alias (expected the borrow fast path)")
	}
	if n := db.Pool.Leases(); n != 1 {
		t.Fatalf("%d leases with a borrowed block live, want 1", n)
	}
	sv.Close(ctx)
	sv.Close(ctx)
	if n := db.Pool.Leases(); n != 0 {
		t.Fatalf("%d leases after Close, want 0", n)
	}
}

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestAliasDebugChecks: with the alias-safety assertions armed, exposing
// a shared borrowed block for mutation and releasing a page while
// consumers hold refs both panic; the same operations on an unshared
// block stay legal.
func TestAliasDebugChecks(t *testing.T) {
	old := aliasDebug
	aliasDebug = true
	defer func() { aliasDebug = old }()

	db := testDB(t)
	ctx := testCtx(t, db)
	blk := NewBlock(ctx.Work, 8, 8)
	buf := make([]byte, 8*8)

	blk.Borrow(buf, 0x9000, 8, nil)
	blk.ResetRefs(2)
	mustPanic(t, "Rows() on a shared borrowed block", func() { blk.Rows() })
	mustPanic(t, "Reset with consumer refs outstanding", func() { blk.Reset() })

	blk.ResetRefs(1)
	_ = blk.Rows() // one consumer: reading is fine
	blk.ResetRefs(0)
	blk.Reset()
	if blk.Borrowed() {
		t.Fatal("Reset with zero refs did not end the borrow")
	}
}

// TestBorrowedRingReleaseRaceHammer drives concurrent consumers
// releasing a shared borrowed block so `go test -race` can watch the
// refcount/lease handoff; the page must release exactly once per cycle.
func TestBorrowedRingReleaseRaceHammer(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	blk := NewBlock(ctx.Work, 16, 8)
	home := make(chan *Block, 1)
	blk.SetHome(home)
	buf := make([]byte, 16*8)

	var released atomic.Int32
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for iter := 0; iter < iters; iter++ {
		blk.Borrow(buf, 0x9000, 16, func() { released.Add(1) })
		blk.ResetRefs(4)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = blk.Live()
				blk.Release()
			}()
		}
		wg.Wait()
		<-home
		if got := released.Load(); got != int32(iter+1) {
			t.Fatalf("iter %d: page released %d times", iter, got)
		}
	}
}

// selVec emits one pre-built block (used to hand FilterVec a block with
// a hand-crafted selection vector).
type selVec struct {
	blk  *Block
	s    Schema
	sent bool
}

func (v *selVec) Schema() Schema      { return v.s }
func (v *selVec) Open(ctx *Ctx) error { v.sent = false; return nil }
func (v *selVec) Close(ctx *Ctx)      {}
func (v *selVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if v.sent {
		return nil, false, nil
	}
	v.sent = true
	return v.blk, true, nil
}

// TestFilterVecRevDenseMatchesExplicitSel: a RevDense-marked reversing
// selection (the borrowed-NSM shape) must filter to exactly the same
// live rows, in the same order, as the identical block carrying the same
// selection without the mark — the dense-then-reverse kernel is an
// optimization, not a semantic.
func TestFilterVecRevDenseMatchesExplicitSel(t *testing.T) {
	db := testDB(t)
	s := Schema{Int("k")}
	const n = 100

	mkBlk := func(ctx *Ctx, revDense bool) *Block {
		blk := NewBlock(ctx.Work, n, s.RowWidth())
		row := make([]byte, s.RowWidth())
		for i := 0; i < n; i++ {
			PutRowInt(row, 0, int64(i))
			blk.Push(row)
		}
		sel := make([]int32, n)
		for i := range sel {
			sel[i] = int32(n - 1 - i)
		}
		blk.Sel = sel
		blk.RevDense = revDense
		return blk
	}

	var results [2][][]Value
	for i, revDense := range []bool{true, false} {
		ctx := testCtx(t, db)
		rows, err := CollectVec(ctx, &FilterVec{
			Child: &selVec{blk: mkBlk(ctx, revDense), s: s},
			Preds: []Pred{PredInt(0, GE, 30), PredInt(0, LT, 70)},
		})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = rows
	}
	if len(results[0]) != 40 || len(results[0]) != len(results[1]) {
		t.Fatalf("survivor counts %d vs %d, want 40", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if results[0][i][0] != results[1][i][0] {
			t.Fatalf("row %d: RevDense path %v != explicit-Sel path %v",
				i, results[0][i][0], results[1][i][0])
		}
	}
}
