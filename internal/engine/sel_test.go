// Selection-vector lifecycle audit: FilterVec's native fast path
// annotates the CHILD's block with a Sel it does not own, so every exit
// from that state — the consumer asking for the next block, Close
// mid-stream, the block recycling through a ring — must detach the
// selection before the block is reused. A stale Sel aliasing the
// filter's scratch array silently drops or duplicates rows in the
// block's next life; these tests pin each detach point.

package engine

import (
	"testing"

	"repro/internal/storage"
)

// chunkVec yields the given rows in fixed-size private blocks (home ==
// nil), each chunk a distinct *Block, so tests can watch annotations on
// one block while the stream moves to another.
type chunkVec struct {
	Schema_ Schema
	RowsSet [][]int64 // one inner slice per block; values land in col 0
	blks    []*Block
	i       int
}

func (c *chunkVec) Schema() Schema { return c.Schema_ }
func (c *chunkVec) Open(ctx *Ctx) error {
	c.i = 0
	if c.blks == nil {
		row := make([]byte, c.Schema_.RowWidth())
		for _, chunk := range c.RowsSet {
			blk := NewBlock(ctx.Work, len(chunk)+1, c.Schema_.RowWidth())
			for _, v := range chunk {
				PutRowInt(row, 0, v)
				PutRowInt(row, 8, v*10)
				blk.Push(row)
			}
			c.blks = append(c.blks, blk)
		}
	}
	return nil
}
func (c *chunkVec) Close(ctx *Ctx) {}
func (c *chunkVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if c.i >= len(c.blks) {
		return nil, false, nil
	}
	b := c.blks[c.i]
	c.i++
	return b, true, nil
}

func selSchema() Schema { return Schema{Int("k"), Int("v")} }

// collectInts drains op via RowAdapter, returning col-0 values.
func collectInts(t *testing.T, ctx *Ctx, op VecOp) []int64 {
	t.Helper()
	rows, err := Collect(ctx, &RowAdapter{Vec: op})
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for _, r := range rows {
		out = append(out, r[0].I)
	}
	return out
}

// TestFilterVecNativeAnnotatesInsteadOfCompacting: on a nil-Recorder ctx
// with a private input block, FilterVec returns the child's block itself
// with survivors marked in Sel — no copy — and the row stream matches
// the compacting reference exactly.
func TestFilterVecNativeAnnotatesInsteadOfCompacting(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	rows := [][]int64{{1, 2, 3, 4}, {5, 6, 7}, {8, 9, 10, 11, 12}}
	preds := []Pred{PredInt(0, GE, 3), PredInt(0, LE, 9)}

	src := &chunkVec{Schema_: selSchema(), RowsSet: rows}
	f := &FilterVec{Child: src, Preds: preds}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		blk, ok, err := f.NextBlock(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if blk.Sel == nil {
			t.Fatalf("native filter output carries no selection vector (compacted instead)")
		}
		if blk.Live() > blk.N() {
			t.Fatalf("selection wider than the block: live %d of %d", blk.Live(), blk.N())
		}
		for k := 0; k < blk.Live(); k++ {
			got = append(got, RowInt(blk.RowAt(blk.LiveAt(k)), 0))
		}
	}
	f.Close(ctx)

	want := []int64{3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}

	// The compacting reference over the same stream agrees byte for byte.
	ref := collectInts(t, ctx, &FilterVec{
		Child: &chunkVec{Schema_: selSchema(), RowsSet: rows}, Preds: preds, Compact: true,
	})
	if len(ref) != len(want) {
		t.Fatalf("compacting reference %v, want %v", ref, want)
	}
	for i := range want {
		if ref[i] != want[i] {
			t.Fatalf("compacting reference %v, want %v", ref, want)
		}
	}
}

// TestFilterVecStackedSelectionRefines: a native filter over a native
// filter refines the existing Sel in place rather than re-scanning dead
// rows back to life.
func TestFilterVecStackedSelectionRefines(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	rows := [][]int64{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	inner := &FilterVec{
		Child: &chunkVec{Schema_: selSchema(), RowsSet: rows},
		Preds: []Pred{PredInt(0, GE, 3)},
	}
	outer := &FilterVec{Child: inner, Preds: []Pred{PredInt(0, LE, 7)}}
	got := collectInts(t, ctx, outer)
	want := []int64{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("stacked selection %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stacked selection %v, want %v", got, want)
		}
	}
}

// TestFilterVecNextBlockDetachesPreviousSel: the selection attached to
// output block N must be detached when the consumer asks for block N+1 —
// the child may hand that block to another consumer or refill it.
func TestFilterVecNextBlockDetachesPreviousSel(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	f := &FilterVec{
		Child: &chunkVec{Schema_: selSchema(), RowsSet: [][]int64{{1, 2, 3}, {4, 5, 6}}},
		Preds: []Pred{PredInt(0, GE, 2)},
	}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	first, ok, err := f.NextBlock(ctx)
	if err != nil || !ok {
		t.Fatalf("no first block: %v", err)
	}
	if first.Sel == nil {
		t.Fatal("first block not annotated")
	}
	second, ok, err := f.NextBlock(ctx)
	if err != nil || !ok {
		t.Fatalf("no second block: %v", err)
	}
	if first.Sel != nil {
		t.Fatal("previous block still carries a selection vector after NextBlock")
	}
	if second.Sel == nil {
		t.Fatal("second block not annotated")
	}
	f.Close(ctx)
	if second.Sel != nil {
		t.Fatal("Close left the live selection attached")
	}
}

// TestFilterVecCloseMidStreamDetachesSel: Close with a live annotated
// block in flight (a parent abandoning the stream) detaches the Sel
// before the child or its ring reuses the block. Double Close stays
// safe.
func TestFilterVecCloseMidStreamDetachesSel(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 500)
	ctx := testCtx(t, db)
	f := &FilterVec{
		Child: &ScanVec{Table: tb},
		Preds: []Pred{PredInt(1, GE, 2)}, // grp >= 2: most rows survive
	}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	blk, ok, err := f.NextBlock(ctx)
	if err != nil || !ok {
		t.Fatalf("no block: %v", err)
	}
	if blk.Sel == nil {
		t.Fatal("scan-fed native filter did not annotate")
	}
	f.Close(ctx)
	if blk.Sel != nil {
		t.Fatal("Close mid-stream left a stale selection on the child's block")
	}
	f.Close(ctx) // double close after mid-stream abandon
}

// TestFilterVecRingBlocksNeverAnnotated: a ring-homed block (multi-
// consumer, refcount-recycled) must go through the compacting path even
// natively — annotating shared storage would race with other consumers.
func TestFilterVecRingBlocksNeverAnnotated(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	ring := make(chan *Block, 1)
	src := &chunkVec{Schema_: selSchema(), RowsSet: [][]int64{{1, 2, 3, 4}}}
	f := &FilterVec{Child: src, Preds: []Pred{PredInt(0, GE, 2)}}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	src.blks[0].SetHome(ring) // simulate a shared-scan packet
	blk, ok, err := f.NextBlock(ctx)
	if err != nil || !ok {
		t.Fatalf("no block: %v", err)
	}
	if blk == src.blks[0] {
		t.Fatal("ring-homed block returned directly from the native path")
	}
	if blk.Sel != nil || src.blks[0].Sel != nil {
		t.Fatal("ring-homed block was annotated with a selection vector")
	}
	if blk.N() != 3 {
		t.Fatalf("compacted %d rows, want 3", blk.N())
	}
	f.Close(ctx)
}

// TestBlockRecycleClearsSel: both recycle edges — Reset by a producer
// refilling the block, and the final Release returning it to its home
// ring — must drop any attached selection vector.
func TestBlockRecycleClearsSel(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)

	b := NewBlock(ctx.Work, 8, 16)
	row := make([]byte, 16)
	for i := 0; i < 4; i++ {
		PutRowInt(row, 0, int64(i))
		b.Push(row)
	}
	b.Sel = []int32{1, 3}
	b.Reset()
	if b.Sel != nil || b.N() != 0 {
		t.Fatalf("Reset kept state: sel=%v n=%d", b.Sel, b.N())
	}

	ring := make(chan *Block, 1)
	b.SetHome(ring)
	b.ResetRefs(2) // two consumers hold the packet
	b.Sel = []int32{0}
	b.Release()
	select {
	case <-ring:
		t.Fatal("block recycled with a reference still held")
	default:
	}
	b.Release() // last consumer
	select {
	case got := <-ring:
		if got.Sel != nil {
			t.Fatal("block re-entered its ring carrying a stale selection vector")
		}
	default:
		t.Fatal("final release did not recycle the block")
	}
}

// TestCompiledPredsMatchInterpreted: the compiled closures agree with
// Pred.Eval on every operator and column type, and EvalCount reports the
// interpreter's short-circuit evaluation count exactly.
func TestCompiledPredsMatchInterpreted(t *testing.T) {
	s := Schema{Int("i"), Float("f"), Char("c", 8)}
	offs := s.Offsets()
	preds := []Pred{
		PredInt(0, GE, 3), PredInt(0, LT, 90), PredIntBetween(0, 0, 1000),
		PredFloat(1, GT, 0.25), PredFloat(1, LE, 40.0), PredFloatBetween(1, 0.0, 100.0),
		PredStr(2, EQ, "tag"), PredStr(2, NE, "zzz"), PredStr(2, GE, "a"),
		PredInt(0, NE, 55), PredFloat(1, EQ, 7.5), PredInt(0, EQ, 12),
	}
	// Every suffix of the conjunction exercises a different fused-chain
	// arity (the unrolled 1/2/3 cases and the general loop).
	for lo := 0; lo < len(preds); lo++ {
		sub := preds[lo:]
		cp := CompilePreds(sub, s, offs)
		if cp.Len() != len(sub) {
			t.Fatalf("compiled %d of %d preds", cp.Len(), len(sub))
		}
		row := make([]byte, s.RowWidth())
		for i := 0; i < 200; i++ {
			if err := s.EncodeRow(row, []Value{
				IV(int64(i % 101)), FV(float64(i%80) / 2), SV([]string{"tag", "zzz", "mid"}[i%3]),
			}); err != nil {
				t.Fatal(err)
			}
			want := true
			evals := 0
			for _, p := range sub {
				evals++
				if !p.Eval(s, offs, row) {
					want = false
					break
				}
			}
			if got := cp.Pass(row); got != want {
				t.Fatalf("suffix %d row %d: compiled pass=%v interpreted=%v", lo, i, got, want)
			}
			gotPass, gotEvals := cp.EvalCount(row)
			if gotPass != want || gotEvals != evals {
				t.Fatalf("suffix %d row %d: EvalCount=(%v,%d), interpreter=(%v,%d)",
					lo, i, gotPass, gotEvals, want, evals)
			}
		}
	}
}
