package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/storage"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	return NewDB(Config{ArenaBytes: 32 << 20})
}

func testCtx(t *testing.T, db *DB) *Ctx {
	t.Helper()
	return db.NewCtx(nil, 0, 16<<20)
}

func TestSchemaEncodeDecodeRoundTrip(t *testing.T) {
	s := Schema{Int("a"), Float("b"), Char("c", 12)}
	buf := make([]byte, s.RowWidth())
	in := []Value{IV(-42), FV(3.25), SV("hello")}
	if err := s.EncodeRow(buf, in); err != nil {
		t.Fatal(err)
	}
	out := s.DecodeRow(buf)
	if out[0].I != -42 || out[1].F != 3.25 || out[2].String() != "hello" {
		t.Fatalf("round trip = %v", out)
	}
}

func TestSchemaEncodeErrors(t *testing.T) {
	s := Schema{Int("a"), Char("c", 4)}
	buf := make([]byte, s.RowWidth())
	if err := s.EncodeRow(buf, []Value{IV(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.EncodeRow(buf, []Value{FV(1), SV("x")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := s.EncodeRow(buf, []Value{IV(1), SV("toolong")}); err == nil {
		t.Error("char overflow accepted")
	}
}

func TestSchemaEncodeProperty(t *testing.T) {
	s := Schema{Int("i"), Float("f")}
	buf := make([]byte, s.RowWidth())
	f := func(i int64, fl float64) bool {
		if math.IsNaN(fl) {
			return true
		}
		if err := s.EncodeRow(buf, []Value{IV(i), FV(fl)}); err != nil {
			return false
		}
		out := s.DecodeRow(buf)
		return out[0].I == i && out[1].F == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{Int("a"), Char("b", 10), Float("c")}
	if s.RowWidth() != 26 {
		t.Errorf("RowWidth = %d", s.RowWidth())
	}
	if got := s.Offsets(); got[0] != 0 || got[1] != 8 || got[2] != 18 {
		t.Errorf("Offsets = %v", got)
	}
	if s.Col("c") != 2 {
		t.Error("Col(c) wrong")
	}
	p := s.Project([]int{2, 0})
	if p[0].Name != "c" || p[1].Name != "a" {
		t.Errorf("Project = %v", p.Names())
	}
	j := s.Concat(Schema{Int("a"), Int("z")})
	if j[3].Name != "r_a" || j[4].Name != "z" {
		t.Errorf("Concat rename = %v", j.Names())
	}
}

func mkTable(t *testing.T, db *DB, layout storage.Layout, rows int) *Table {
	t.Helper()
	s := Schema{Int("id"), Int("grp"), Float("val"), Char("tag", 8)}
	tb, err := db.CreateTable("t_"+layout.String(), s, layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		_, err := tb.Insert(nil, []Value{
			IV(int64(i)), IV(int64(i % 7)), FV(float64(i) / 2), SV("tag"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSeqScanBothLayouts(t *testing.T) {
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		db := testDB(t)
		tb := mkTable(t, db, layout, 5000)
		ctx := testCtx(t, db)
		rows, err := Collect(ctx, &SeqScan{Table: tb})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if len(rows) != 5000 {
			t.Fatalf("%v: scanned %d rows", layout, len(rows))
		}
		// Spot-check contents.
		sum := int64(0)
		for _, r := range rows {
			sum += r[0].I
		}
		if want := int64(5000) * 4999 / 2; sum != want {
			t.Fatalf("%v: id sum %d, want %d", layout, sum, want)
		}
	}
}

func TestSeqScanPredicateAndProjection(t *testing.T) {
	for _, layout := range []storage.Layout{storage.NSM, storage.PAXLayout} {
		db := testDB(t)
		tb := mkTable(t, db, layout, 2000)
		ctx := testCtx(t, db)
		scan := &SeqScan{
			Table: tb,
			Preds: []Pred{PredInt(tb.Schema.Col("grp"), EQ, 3)},
			Cols:  []int{tb.Schema.Col("id"), tb.Schema.Col("val")},
		}
		rows, err := Collect(ctx, scan)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < 2000; i++ {
			if i%7 == 3 {
				want++
			}
		}
		if len(rows) != want {
			t.Fatalf("%v: got %d rows, want %d", layout, len(rows), want)
		}
		for _, r := range rows {
			if len(r) != 2 || r[0].I%7 != 3 {
				t.Fatalf("%v: bad row %v", layout, r)
			}
			if r[1].F != float64(r[0].I)/2 {
				t.Fatalf("%v: projection misaligned: %v", layout, r)
			}
		}
	}
}

func TestIndexScan(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 3000)
	idcol := tb.Schema.Offsets()[0]
	idx, err := db.CreateIndex(tb, "t_id", func(row []byte) int64 { return RowInt(row, idcol) })
	if err != nil {
		t.Fatal(err)
	}
	// Index created after load: backfill.
	ctx := testCtx(t, db)
	if err := Run(ctx, &SeqScan{Table: tb}, nil); err != nil {
		t.Fatal(err)
	}
	// Rebuild index by scanning pages directly.
	rebuildIndex(t, db, tb, idx)
	rows, err := Collect(ctx, &IndexScan{Table: tb, Idx: idx, Lo: 100, Hi: 109})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("index range returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(100+i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

// rebuildIndex inserts every existing row into idx (test helper for
// indexes created after data load).
func rebuildIndex(t *testing.T, db *DB, tb *Table, idx *Index) {
	t.Helper()
	for p := 0; p < tb.Heap.NumPages(); p++ {
		ref, err := db.Pool.Get(nil, tb.Heap.PageAt(p))
		if err != nil {
			t.Fatal(err)
		}
		sp := storage.AsSlotted(ref.Data, ref.Addr)
		for s := 0; s < sp.NumSlots(); s++ {
			row := sp.Tuple(nil, s)
			if row == nil {
				continue
			}
			rid := storage.RID{Page: ref.ID, Slot: uint32(s)}
			if err := idx.Tree.Insert(nil, idx.KeyOf(row), rid.Pack()); err != nil {
				t.Fatal(err)
			}
		}
		ref.Release()
	}
}

func TestInsertMaintainsIndex(t *testing.T) {
	db := testDB(t)
	s := Schema{Int("k"), Int("v")}
	tb, _ := db.CreateTable("x", s, storage.NSM)
	idx, _ := db.CreateIndex(tb, "x_k", func(row []byte) int64 { return RowInt(row, 0) })
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(nil, []Value{IV(int64(i)), IV(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := idx.Tree.Get(nil, 123)
	if err != nil || !ok {
		t.Fatalf("index lookup: %v %v", ok, err)
	}
	row, err := tb.Fetch(nil, storage.UnpackRID(v))
	if err != nil {
		t.Fatal(err)
	}
	if RowInt(row, 8) != 1230 {
		t.Fatalf("fetched v = %d", RowInt(row, 8))
	}
}

func TestFilterAndLimit(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 1000)
	ctx := testCtx(t, db)
	op := &Limit{
		Child: &Filter{
			Child: &SeqScan{Table: tb},
			Preds: []Pred{PredInt(1, EQ, 2), PredFloat(2, GT, 10)},
		},
		N: 5,
	}
	rows, err := Collect(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 2 || r[2].F <= 10 {
			t.Fatalf("filter leaked %v", r)
		}
	}
}

func TestProject(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 50)
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &Project{Child: &SeqScan{Table: tb}, Cols: []int{3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].String() != "tag" || rows[0][1].Kind != TInt {
		t.Fatalf("projected row = %v", rows[0])
	}
}

func TestPredEval(t *testing.T) {
	s := Schema{Int("i"), Float("f"), Char("c", 4)}
	offs := s.Offsets()
	buf := make([]byte, s.RowWidth())
	s.EncodeRow(buf, []Value{IV(10), FV(2.5), SV("bb")})
	cases := []struct {
		p    Pred
		want bool
	}{
		{PredInt(0, EQ, 10), true},
		{PredInt(0, NE, 10), false},
		{PredInt(0, LT, 11), true},
		{PredInt(0, GE, 11), false},
		{PredIntBetween(0, 5, 15), true},
		{PredIntBetween(0, 11, 15), false},
		{PredFloat(1, GT, 2.4), true},
		{PredFloat(1, LE, 2.4), false},
		{PredFloatBetween(1, 2.5, 3), true},
		{PredStr(2, EQ, "bb"), true},
		{PredStr(2, LT, "bc"), true},
		{PredStr(2, GT, "bb"), false},
	}
	for i, c := range cases {
		if got := c.p.Eval(s, offs, buf); got != c.want {
			t.Errorf("case %d (%v %v): got %v", i, c.p.Col, c.p.Op, got)
		}
	}
}

func TestHashTableBasics(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	ht := NewHashTable(ctx, 100, 8)
	for i := 0; i < 1000; i++ {
		p := make([]byte, 8)
		storage.PutUint64(p, uint64(i*i))
		ht.Insert(nil, uint64(i), p)
	}
	if ht.Len() != 1000 {
		t.Fatalf("Len = %d", ht.Len())
	}
	for i := 0; i < 1000; i += 17 {
		p, _ := ht.Lookup(nil, uint64(i))
		if p == nil || storage.GetUint64(p) != uint64(i*i) {
			t.Fatalf("Lookup(%d) = %v", i, p)
		}
	}
	if p, _ := ht.Lookup(nil, 5000); p != nil {
		t.Fatal("found missing key")
	}
}

func TestHashTableDuplicatesAndScan(t *testing.T) {
	db := testDB(t)
	ctx := testCtx(t, db)
	ht := NewHashTable(ctx, 16, 8)
	for i := 0; i < 5; i++ {
		p := make([]byte, 8)
		storage.PutUint64(p, uint64(i))
		ht.Insert(nil, 42, p)
	}
	var got []uint64
	ht.Iter(nil, 42, func(p []byte, _ mem.Addr) bool {
		got = append(got, storage.GetUint64(p))
		return true
	})
	if len(got) != 5 {
		t.Fatalf("Iter found %d", len(got))
	}
	total := 0
	ht.Scan(nil, func(k uint64, p []byte) bool {
		if k != 42 {
			t.Errorf("unexpected key %d", k)
		}
		total++
		return true
	})
	if total != 5 {
		t.Fatalf("Scan found %d", total)
	}
}

func TestHashTableZeroedEntriesAfterArenaReset(t *testing.T) {
	// Regression: recycled workspace bytes must not leak into "zeroed"
	// entries created by LookupOrInsert (stale aggregate accumulators).
	db := testDB(t)
	ctx := testCtx(t, db)
	run := func() int64 {
		ht := NewHashTable(ctx, 16, 8)
		for i := 0; i < 100; i++ {
			p, _, _ := ht.LookupOrInsert(nil, uint64(i%4))
			PutRowInt(p, 0, RowInt(p, 0)+1)
		}
		var total int64
		ht.Scan(nil, func(_ uint64, p []byte) bool {
			total += RowInt(p, 0)
			return true
		})
		return total
	}
	if got := run(); got != 100 {
		t.Fatalf("first run total = %d", got)
	}
	ctx.Work.Reset()
	if got := run(); got != 100 {
		t.Fatalf("after reset total = %d (stale accumulators)", got)
	}
}

func TestHashJoinInner(t *testing.T) {
	db := testDB(t)
	left, _ := db.CreateTable("l", Schema{Int("lk"), Int("lv")}, storage.NSM)
	right, _ := db.CreateTable("r", Schema{Int("rk"), Char("rv", 6)}, storage.NSM)
	for i := 0; i < 300; i++ {
		left.Insert(nil, []Value{IV(int64(i % 50)), IV(int64(i))})
	}
	for i := 0; i < 50; i += 2 { // only even keys on the right
		right.Insert(nil, []Value{IV(int64(i)), SV("r")})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashJoin{
		Left:    &SeqScan{Table: left},
		Right:   &SeqScan{Table: right},
		LeftCol: 0, RightCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 300 left rows, keys 0..49 (6 each), half match.
	if len(rows) != 150 {
		t.Fatalf("join output %d rows, want 150", len(rows))
	}
	for _, r := range rows {
		if r[0].I%2 != 0 || r[0].I != r[2].I {
			t.Fatalf("bad join row %v", r)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	db := testDB(t)
	left, _ := db.CreateTable("lo", Schema{Int("lk")}, storage.NSM)
	right, _ := db.CreateTable("ro", Schema{Int("rk"), Int("rv")}, storage.NSM)
	for i := 0; i < 10; i++ {
		left.Insert(nil, []Value{IV(int64(i))})
	}
	right.Insert(nil, []Value{IV(3), IV(33)})
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashJoin{
		Left: &SeqScan{Table: left}, Right: &SeqScan{Table: right},
		LeftCol: 0, RightCol: 0, Type: LeftOuter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("left outer output %d rows, want 10", len(rows))
	}
	matched := 0
	for _, r := range rows {
		if r[0].I == 3 {
			if r[2].I != 33 {
				t.Fatalf("match row wrong: %v", r)
			}
			matched++
		} else if r[1].I != 0 || r[2].I != 0 {
			t.Fatalf("outer row not zero-filled: %v", r)
		}
	}
	if matched != 1 {
		t.Fatalf("matched %d rows", matched)
	}
}

func TestNLJoin(t *testing.T) {
	db := testDB(t)
	a, _ := db.CreateTable("na", Schema{Int("x")}, storage.NSM)
	b, _ := db.CreateTable("nb", Schema{Int("y")}, storage.NSM)
	for i := 0; i < 6; i++ {
		a.Insert(nil, []Value{IV(int64(i))})
		b.Insert(nil, []Value{IV(int64(i))})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &NLJoin{
		Left: &SeqScan{Table: a}, Right: &SeqScan{Table: b},
		On: func(l, r []byte) bool { return RowInt(l, 0) < RowInt(r, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // pairs with x < y among 6x6
		t.Fatalf("NL join output %d, want 15", len(rows))
	}
}

func TestHashAgg(t *testing.T) {
	db := testDB(t)
	tb := mkTable(t, db, storage.NSM, 700) // grp = i%7
	ctx := testCtx(t, db)
	agg := &HashAgg{
		Child:     &SeqScan{Table: tb},
		GroupCols: []int{1},
		Aggs: []AggSpec{
			{Func: Count, Name: "n"},
			{Func: Sum, Col: 0, Name: "sum_id"},
			{Func: Avg, Col: 2, Name: "avg_val"},
			{Func: Min, Col: 2, Name: "min_val"},
			{Func: Max, Col: 2, Name: "max_val"},
		},
	}
	rows, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d groups, want 7", len(rows))
	}
	for _, r := range rows {
		g := r[0].I
		if r[1].I != 100 {
			t.Fatalf("group %d count = %d", g, r[1].I)
		}
		// ids in group g: g, g+7, ..., g+693 -> sum = 100g + 7*(0+..+99)
		wantSum := 100*g + 7*4950
		if r[2].I != wantSum {
			t.Fatalf("group %d sum = %d, want %d", g, r[2].I, wantSum)
		}
		if r[4].F != float64(g)/2 {
			t.Fatalf("group %d min = %v", g, r[4].F)
		}
		if r[5].F != float64(g+693)/2 {
			t.Fatalf("group %d max = %v", g, r[5].F)
		}
		wantAvg := float64(wantSum) / 100 / 2
		if math.Abs(r[3].F-wantAvg) > 1e-9 {
			t.Fatalf("group %d avg = %v, want %v", g, r[3].F, wantAvg)
		}
	}
}

func TestHashAggManyGroups(t *testing.T) {
	db := testDB(t)
	s := Schema{Int("k"), Int("v")}
	tb, _ := db.CreateTable("mg", s, storage.NSM)
	rng := rand.New(rand.NewSource(3))
	truth := map[int64]int64{}
	for i := 0; i < 20000; i++ {
		k := int64(rng.Intn(2000))
		truth[k]++
		tb.Insert(nil, []Value{IV(k), IV(1)})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &HashAgg{
		Child: &SeqScan{Table: tb}, GroupCols: []int{0},
		Aggs:     []AggSpec{{Func: Count, Name: "n"}},
		Expected: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(truth) {
		t.Fatalf("%d groups, want %d", len(rows), len(truth))
	}
	for _, r := range rows {
		if truth[r[0].I] != r[1].I {
			t.Fatalf("group %d count %d, want %d", r[0].I, r[1].I, truth[r[0].I])
		}
	}
}

func TestSortAscDesc(t *testing.T) {
	db := testDB(t)
	s := Schema{Int("k"), Float("f")}
	tb, _ := db.CreateTable("st", s, storage.NSM)
	rng := rand.New(rand.NewSource(9))
	var keys []int64
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(100000))
		keys = append(keys, k)
		tb.Insert(nil, []Value{IV(k), FV(float64(k) * 1.5)})
	}
	ctx := testCtx(t, db)
	rows, err := Collect(ctx, &Sort{Child: &SeqScan{Table: tb}, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, r := range rows {
		if r[0].I != keys[i] {
			t.Fatalf("asc order broken at %d: %d vs %d", i, r[0].I, keys[i])
		}
	}
	ctx2 := db.NewCtx(nil, 1, 16<<20)
	rows, err = Collect(ctx2, &Sort{Child: &SeqScan{Table: tb}, Col: 0, Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0].I != keys[len(keys)-1-i] {
			t.Fatalf("desc order broken at %d", i)
		}
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.CreateTable("a", Schema{Int("x")}, storage.NSM); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", Schema{Int("x")}, storage.NSM); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("missing table lookup succeeded")
	}
}
