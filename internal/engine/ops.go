package engine

import (
	"repro/internal/mem"
	"repro/internal/storage"
)

// Op is a Volcano-style iterator. Next returns an encoded row valid until
// the following Next call.
type Op interface {
	Schema() Schema
	Open(ctx *Ctx) error
	Next(ctx *Ctx) ([]byte, bool, error)
	Close(ctx *Ctx)
}

// Run drains op, invoking fn on each row; it is the engine's top-level
// execution helper.
func Run(ctx *Ctx, op Op, fn func(row []byte) error) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close(ctx)
	for {
		row, ok, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if fn != nil {
			if err := fn(row); err != nil {
				return err
			}
		}
	}
}

// Collect drains op and decodes every row (testing and small results).
func Collect(ctx *Ctx, op Op) ([][]Value, error) {
	var out [][]Value
	s := op.Schema()
	err := Run(ctx, op, func(row []byte) error {
		out = append(out, s.DecodeRow(row))
		return nil
	})
	return out, err
}

// PageRange restricts a scan to the heap pages [Lo, Hi) in scan order.
// Morsel-driven workers set one range per morsel so a table is covered
// exactly once across workers.
type PageRange struct {
	Lo, Hi int
}

// SeqScan scans a table, applying pushed-down predicates and projecting
// cols (nil = all columns). Under PAX it reads predicate columns first and
// the remaining projected columns only for qualifying tuples — the
// cache-conscious behaviour the paper's Section 6.2 discusses.
type SeqScan struct {
	Table *Table
	Preds []Pred
	Cols  []int // projected columns; nil for all
	// StartPage rotates the scan origin (circular shared scans): the scan
	// still covers every page once, beginning at StartPage and wrapping.
	// Concurrent scans at staggered origins share the leader's L2 wake.
	// Ignored when Range is set.
	StartPage int
	// Range restricts the scan to a page range (morsel execution); nil
	// scans the whole heap.
	Range *PageRange

	out     Schema
	outOffs []int
	page    int
	slot    int
	ref     *storage.PageRef
	buf     []byte
	code    mem.CodeSeg
	nslots  int
}

// Schema implements Op.
func (s *SeqScan) Schema() Schema {
	if s.out == nil {
		if s.Cols == nil {
			s.out = s.Table.Schema
		} else {
			s.out = s.Table.Schema.Project(s.Cols)
		}
		s.outOffs = s.out.Offsets()
	}
	return s.out
}

// Open implements Op.
func (s *SeqScan) Open(ctx *Ctx) error {
	s.Schema()
	s.page, s.slot = 0, 0
	s.ref = nil
	s.buf = make([]byte, s.out.RowWidth())
	s.code = ctx.DB.Codes.Register("op:seqscan", 3072)
	return nil
}

// Close implements Op.
func (s *SeqScan) Close(ctx *Ctx) {
	if s.ref != nil {
		s.ref.Release()
		s.ref = nil
	}
}

func (s *SeqScan) nextPage(ctx *Ctx) (bool, error) {
	if s.ref != nil {
		s.ref.Release()
		s.ref = nil
	}
	n := s.Table.Heap.NumPages()
	lo, hi := 0, n
	if s.Range != nil {
		if s.Range.Lo > lo {
			lo = s.Range.Lo
		}
		if s.Range.Hi < hi {
			hi = s.Range.Hi
		}
	}
	if s.page >= hi-lo {
		return false, nil
	}
	idx := lo + s.page
	if s.Range == nil {
		idx = (s.page + s.StartPage) % n
	}
	ref, err := ctx.DB.Pool.Get(ctx.Rec, s.Table.Heap.PageAt(idx))
	if err != nil {
		return false, err
	}
	s.ref = ref
	s.page++
	s.slot = 0
	s.Table.Heap.RLatch()
	if s.Table.Heap.Layout() == storage.NSM {
		s.nslots = storage.AsSlotted(ref.Data, ref.Addr).NumSlots()
	} else {
		s.nslots = storage.AsPAX(ref.Data, ref.Addr, s.Table.Schema.Widths()).N()
	}
	s.Table.Heap.RUnlatch()
	return true, nil
}

// Next implements Op.
func (s *SeqScan) Next(ctx *Ctx) ([]byte, bool, error) {
	for {
		if s.ref == nil || s.slot >= s.nslots {
			ok, err := s.nextPage(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			continue
		}
		slot := s.slot
		s.slot++
		ctx.Rec.Exec(s.code, 70+evalCost*len(s.Preds))
		// Tuple decode happens under the table's content latch; the row
		// handed downstream is a copy in s.buf, valid past the latch.
		// Per-tuple latching costs one uncontended RWMutex op per slot —
		// well under the per-tuple tracing cost — and keeps the latch
		// hold time too short to stall writers on hot OLTP tables.
		s.Table.Heap.RLatch()
		if s.Table.Heap.Layout() == storage.NSM {
			row := storage.AsSlotted(s.ref.Data, s.ref.Addr).Tuple(ctx.Rec, slot)
			pass := row != nil && s.evalNSM(row)
			if pass {
				s.projectNSM(row)
			}
			s.Table.Heap.RUnlatch()
			if !pass {
				continue
			}
			return s.buf, true, nil
		}
		row, ok := s.evalAndLoadPAX(ctx, slot)
		s.Table.Heap.RUnlatch()
		if !ok {
			continue
		}
		return row, true, nil
	}
}

func (s *SeqScan) evalNSM(row []byte) bool {
	for _, p := range s.Preds {
		if !p.Eval(s.Table.Schema, s.Table.Offs, row) {
			return false
		}
	}
	return true
}

// projectNSM snapshots the projected columns of row into s.buf (callers
// hold the content latch; the copy is what outlives it).
func (s *SeqScan) projectNSM(row []byte) {
	if s.Cols == nil {
		copy(s.buf, row)
		return
	}
	off := 0
	for _, c := range s.Cols {
		w := s.Table.Schema[c].Width
		copy(s.buf[off:off+w], row[s.Table.Offs[c]:s.Table.Offs[c]+w])
		off += w
	}
}

// evalAndLoadPAX evaluates predicates reading only their minipages, then
// materializes the projected columns of qualifying tuples.
func (s *SeqScan) evalAndLoadPAX(ctx *Ctx, slot int) ([]byte, bool) {
	px := storage.AsPAX(s.ref.Data, s.ref.Addr, s.Table.Schema.Widths())
	// A scratch row assembled column-by-column; predicate columns first.
	full := s.Table.Schema
	loaded := make(map[int][]byte, 4)
	for _, p := range s.Preds {
		f := px.Field(ctx.Rec, slot, p.Col)
		loaded[p.Col] = f
		if !s.evalPAXPred(p, f, full[p.Col]) {
			return nil, false
		}
	}
	cols := s.Cols
	if cols == nil {
		cols = make([]int, len(full))
		for i := range full {
			cols[i] = i
		}
	}
	off := 0
	for _, c := range cols {
		f, ok := loaded[c]
		if !ok {
			f = px.Field(ctx.Rec, slot, c)
		}
		copy(s.buf[off:off+len(f)], f)
		off += len(f)
	}
	return s.buf, true
}

func (s *SeqScan) evalPAXPred(p Pred, field []byte, col Column) bool {
	// Reuse Eval by treating the field as a single-column row.
	tmp := Schema{col}
	q := p
	q.Col = 0
	return q.Eval(tmp, []int{0}, field)
}

// IndexScan returns rows whose index key lies in [Lo, Hi], fetching each
// from the heap (NSM tables).
type IndexScan struct {
	Table  *Table
	Idx    *Index
	Lo, Hi int64
	Preds  []Pred

	cur  *storage.Cursor
	buf  []byte
	code mem.CodeSeg
}

// Schema implements Op.
func (s *IndexScan) Schema() Schema { return s.Table.Schema }

// Open implements Op.
func (s *IndexScan) Open(ctx *Ctx) error {
	cur, err := s.Idx.Tree.Seek(ctx.Rec, s.Lo)
	if err != nil {
		return err
	}
	s.cur = cur
	s.code = ctx.DB.Codes.Register("op:indexscan", 2048)
	s.buf = make([]byte, s.Table.Schema.RowWidth())
	return nil
}

// Close implements Op.
func (s *IndexScan) Close(ctx *Ctx) { s.cur = nil }

// Next implements Op.
func (s *IndexScan) Next(ctx *Ctx) ([]byte, bool, error) {
	for {
		k, v, ok, err := s.cur.Next(ctx.Rec)
		if err != nil {
			return nil, false, err
		}
		if !ok || k > s.Hi {
			return nil, false, nil
		}
		ctx.Rec.Exec(s.code, 80+evalCost*len(s.Preds))
		row, err := s.Table.Fetch(ctx.Rec, storage.UnpackRID(v))
		if err != nil {
			return nil, false, err
		}
		pass := true
		for _, p := range s.Preds {
			if !p.Eval(s.Table.Schema, s.Table.Offs, row) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		copy(s.buf, row)
		return s.buf, true, nil
	}
}

// Filter drops child rows failing the conjunction.
type Filter struct {
	Child Op
	Preds []Pred

	offs []int
	code mem.CodeSeg
}

// Schema implements Op.
func (f *Filter) Schema() Schema { return f.Child.Schema() }

// Open implements Op.
func (f *Filter) Open(ctx *Ctx) error {
	f.offs = f.Child.Schema().Offsets()
	f.code = ctx.DB.Codes.Register("op:filter", 1024)
	return f.Child.Open(ctx)
}

// Close implements Op.
func (f *Filter) Close(ctx *Ctx) { f.Child.Close(ctx) }

// Next implements Op.
func (f *Filter) Next(ctx *Ctx) ([]byte, bool, error) {
	for {
		row, ok, err := f.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Rec.Exec(f.code, 20+evalCost*len(f.Preds))
		pass := true
		for _, p := range f.Preds {
			if !p.Eval(f.Child.Schema(), f.offs, row) {
				pass = false
				break
			}
		}
		if pass {
			return row, true, nil
		}
	}
}

// Project narrows child rows to the given columns.
type Project struct {
	Child Op
	Cols  []int

	out  Schema
	offs []int
	buf  []byte
	code mem.CodeSeg
}

// Schema implements Op.
func (p *Project) Schema() Schema {
	if p.out == nil {
		p.out = p.Child.Schema().Project(p.Cols)
	}
	return p.out
}

// Open implements Op.
func (p *Project) Open(ctx *Ctx) error {
	p.Schema()
	p.offs = p.Child.Schema().Offsets()
	p.buf = make([]byte, p.out.RowWidth())
	p.code = ctx.DB.Codes.Register("op:project", 768)
	return p.Child.Open(ctx)
}

// Close implements Op.
func (p *Project) Close(ctx *Ctx) { p.Child.Close(ctx) }

// Next implements Op.
func (p *Project) Next(ctx *Ctx) ([]byte, bool, error) {
	row, ok, err := p.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Rec.Exec(p.code, 10+6*len(p.Cols))
	cs := p.Child.Schema()
	off := 0
	for _, c := range p.Cols {
		w := cs[c].Width
		copy(p.buf[off:off+w], row[p.offs[c]:p.offs[c]+w])
		off += w
	}
	return p.buf, true, nil
}

// Limit passes through the first N rows.
type Limit struct {
	Child Op
	N     int
	seen  int
}

// Schema implements Op.
func (l *Limit) Schema() Schema { return l.Child.Schema() }

// Open implements Op.
func (l *Limit) Open(ctx *Ctx) error {
	l.seen = 0
	return l.Child.Open(ctx)
}

// Close implements Op.
func (l *Limit) Close(ctx *Ctx) { l.Child.Close(ctx) }

// Next implements Op.
func (l *Limit) Next(ctx *Ctx) ([]byte, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}
