// Vectorized batch execution core: one Block row-batch type and one VecOp
// operator interface shared by every execution mode the engine offers —
// serial plans, morsel-driven parallel plans, staged packet pipelines, and
// circular shared scans. Operators amortize iterator overhead over a
// block of rows (MonetDB/X100-style block-at-a-time processing): per-row
// virtual calls, per-tuple trace records, and per-tuple latching collapse
// into one tight loop plus a handful of ranged trace events per block,
// which is the L1/L2-resident, stall-free execution the paper argues CMP
// database servers need.
//
// The legacy Volcano Op API stays alive through RowAdapter (VecOp → Op)
// and VecAdapter (Op → VecOp), so row-at-a-time operators remain usable
// as both a compatibility surface and the reference implementation the
// vectorized paths are tested against.

package engine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Per-row instruction costs of the vectorized loops. They mirror the
// shared-scan consumer constants: a batch loop touches contiguous memory
// with branch-light per-row work, far cheaper than the ~70-instruction
// per-tuple decode of the row-at-a-time operators.
const (
	vecRowCost   = 4  // per row: load/advance/branch of the batch loop
	vecPredCost  = 4  // per row per predicate: vectorized compare
	vecProjCost  = 8  // per qualifying row: projection copy
	vecAggCost   = 24 // per row: group hash+probe, amortized over the batch
	vecBuildCost = 24 // per join build row: partition/insert bookkeeping
	vecProbeCost = 30 // per join probe row: key hash + chain setup
	vecBlockCost = 18 // per block: loop setup and bookkeeping
)

// Block is an arena-backed batch of fixed-width rows — THE batch currency
// of the engine. Vectorized operators hand blocks down the plan, staged
// pipelines use them as packets, and circular shared scans deliver them
// to every attached consumer, so no layer boundary re-materializes rows.
// Blocks live at stable simulated addresses and optionally recycle
// through a ring (SetHome) with a reference count for multi-consumer
// delivery.
type Block struct {
	// Pages is the heap-page provenance [Lo, Hi) of a scan-filled block
	// (zero for blocks produced by non-scan operators). Shared-scan
	// coordinators key rotation bookkeeping on it.
	Pages PageRange

	// Sel is an optional selection vector: when non-nil, only the rows at
	// these (ascending) indexes are live and every other row of [0, N) is
	// dead. Filters on the native fast path mark survivors here instead of
	// copy-compacting them; consumers honor the selection in their row
	// loops and compact only when they genuinely need dense rows (their
	// own output blocks are always dense). Sel aliases the producing
	// operator's buffer and is valid exactly as long as the block's
	// contents; Reset and ring recycling clear it.
	Sel []int32

	// RevDense marks a Sel that is exactly the pure reversal [N-1 ... 0]
	// of a borrowed NSM page span (every physical row live, reverse
	// order). Filters exploit it: predicates can run over the span with
	// the dense ascending kernels and the survivors reversed afterward —
	// same emission order, monomorphic-loop speed. Anything that attaches
	// a different selection (or detaches it) clears the mark.
	RevDense bool

	buf  []byte
	addr mem.Addr
	rowW int
	cap  int
	n    int
	refs atomic.Int32
	home chan *Block

	// Borrowed-mode state (the zero-copy fast path): a borrowed block
	// aliases buffer-pool page memory instead of arena rows. own* save
	// the arena storage for restoration when the borrow ends; onRelease
	// (the page lease's release) fires exactly once — on Reset, or on
	// the final ring Release.
	borrowed  bool
	onRelease func()
	ownBuf    []byte
	ownAddr   mem.Addr
	ownCap    int
}

// NewBlock allocates a block of capRows rows of rowW bytes from work.
func NewBlock(work *mem.Arena, capRows, rowW int) *Block {
	if capRows <= 0 || rowW <= 0 {
		panic(fmt.Sprintf("engine: bad block geometry %d x %d", capRows, rowW))
	}
	a := work.Alloc(capRows*rowW, mem.LineSize)
	return &Block{buf: work.Bytes(a, capRows*rowW), addr: a, rowW: rowW, cap: capRows}
}

// Reset empties the block for reuse; a reused block keeps its simulated
// address, which is what makes recycled batches cache-resident. Any
// attached selection vector is detached — a refilled block must never
// carry a stale selection into its next life — and a borrowed page is
// released back to the buffer pool.
func (b *Block) Reset() {
	b.endBorrow()
	b.n = 0
	b.Pages = PageRange{}
	b.Sel = nil
	b.RevDense = false
}

// Borrow points the block at externally owned row memory — a pinned
// buffer-pool page span (NSM) or minipage (PAX) — making it a zero-copy
// view of n rows of the block's row width. onRelease (typically
// PageLease.Release) runs exactly once when the borrow ends: at the
// next Reset, or at the final ring Release. The block's arena storage
// is saved and restored then, so a borrowed block drops back into copy
// mode without reallocation.
func (b *Block) Borrow(buf []byte, addr mem.Addr, n int, onRelease func()) {
	b.endBorrow()
	b.ownBuf, b.ownAddr, b.ownCap = b.buf, b.addr, b.cap
	b.buf, b.addr = buf, addr
	b.cap, b.n = n, n
	b.borrowed = true
	b.onRelease = onRelease
}

// Borrowed reports whether the block currently aliases borrowed page
// memory.
func (b *Block) Borrowed() bool { return b.borrowed }

// endBorrow restores the block's arena storage and releases the
// borrowed page; idempotent, and a no-op for unborrowed blocks.
func (b *Block) endBorrow() {
	if !b.borrowed {
		return
	}
	if aliasDebug && b.refs.Load() > 0 {
		panic("engine: borrowed block's page released while consumers hold refs")
	}
	b.borrowed = false
	b.buf, b.addr, b.cap = b.ownBuf, b.ownAddr, b.ownCap
	b.ownBuf = nil
	rel := b.onRelease
	b.onRelease = nil
	if rel != nil {
		rel()
	}
}

// N returns the row count, counting rows a selection vector marks dead.
func (b *Block) N() int { return b.n }

// Live returns the number of live rows: len(Sel) under a selection
// vector, N() otherwise.
func (b *Block) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// LiveAt maps a live-row ordinal k in [0, Live()) to its physical row
// index. Hot loops branch on Sel == nil instead; this is the convenience
// form for row-at-a-time adapters.
func (b *Block) LiveAt(k int) int {
	if b.Sel != nil {
		return int(b.Sel[k])
	}
	return k
}

// Cap returns the row capacity.
func (b *Block) Cap() int { return b.cap }

// RowWidth returns the width of each row in bytes.
func (b *Block) RowWidth() int { return b.rowW }

// Addr returns the simulated address of row 0.
func (b *Block) Addr() mem.Addr { return b.addr }

// Rows returns the host view of the occupied row bytes. Writing through
// it on a borrowed block shared across consumers would corrupt the
// pinned page for every reader; the alias-debug build panics on that
// access pattern.
func (b *Block) Rows() []byte {
	if aliasDebug && b.borrowed && b.refs.Load() > 1 {
		panic("engine: Rows() on a borrowed block shared across consumers")
	}
	return b.buf[:b.n*b.rowW]
}

// RowAt returns row i without tracing; vectorized loops charge their
// reads at block granularity instead.
func (b *Block) RowAt(i int) []byte {
	off := i * b.rowW
	return b.buf[off : off+b.rowW]
}

// Append copies row in, tracing the store (the staged-packet API). It
// reports false when the block is full.
func (b *Block) Append(rec *trace.Recorder, row []byte) bool {
	if b.n == b.cap {
		return false
	}
	off := b.n * b.rowW
	copy(b.buf[off:off+b.rowW], row)
	rec.StoreRange(b.addr+mem.Addr(off), b.rowW)
	b.n++
	return true
}

// Row returns row i, tracing the load (the staged-packet API).
func (b *Block) Row(rec *trace.Recorder, i int) []byte {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("engine: block row %d of %d", i, b.n))
	}
	off := i * b.rowW
	rec.LoadRange(b.addr+mem.Addr(off), b.rowW)
	return b.buf[off : off+b.rowW]
}

// Push copies row in without tracing; vectorized producers trace the
// appended region once per batch with TraceAppended. It reports false
// when the block is full.
func (b *Block) Push(row []byte) bool {
	if b.n == b.cap {
		return false
	}
	copy(b.slot(), row)
	return true
}

// slot reserves and returns the next row's bytes (callers fill it in
// place; vec operators project columns directly into the slot).
func (b *Block) slot() []byte {
	off := b.n * b.rowW
	b.n++
	return b.buf[off : off+b.rowW]
}

// TraceAppended traces the stores of rows [from, N) as ranged writes —
// one batch event for the whole append run.
func (b *Block) TraceAppended(rec *trace.Recorder, from int) {
	if b.n > from {
		rec.StoreRange(b.addr+mem.Addr(from*b.rowW), (b.n-from)*b.rowW)
	}
}

// TraceRows traces the read of every occupied row as one ranged load
// (a consumer touching another operator's — or core's — batch).
func (b *Block) TraceRows(rec *trace.Recorder) {
	if b.n > 0 {
		rec.LoadRange(b.addr, b.n*b.rowW)
	}
}

// CopyFrom bulk-copies rows [from, ...) of src into b until b is full or
// src is exhausted, tracing one ranged store. It returns the number of
// rows copied; staged pipelines use it to fan a source block out into
// ring packets with one memcpy instead of per-row appends.
func (b *Block) CopyFrom(rec *trace.Recorder, src *Block, from int) int {
	if b.rowW != src.rowW {
		panic(fmt.Sprintf("engine: block copy across row widths %d -> %d", src.rowW, b.rowW))
	}
	if src.Sel != nil {
		return b.copySelected(rec, src, from)
	}
	k := src.n - from
	if room := b.cap - b.n; k > room {
		k = room
	}
	if k <= 0 {
		return 0
	}
	dst := b.buf[b.n*b.rowW:]
	copy(dst[:k*b.rowW], src.buf[from*src.rowW:(from+k)*src.rowW])
	rec.StoreRange(b.addr+mem.Addr(b.n*b.rowW), k*b.rowW)
	b.n += k
	return k
}

// copySelected is CopyFrom for a selection-vector source: it compacts
// live rows [from, Live()) into b (a packet ring genuinely needs dense
// rows). from indexes live ordinals, matching CopyFrom's contract that
// consecutive calls with advancing from cover the source exactly once.
func (b *Block) copySelected(rec *trace.Recorder, src *Block, from int) int {
	k := len(src.Sel) - from
	if room := b.cap - b.n; k > room {
		k = room
	}
	if k <= 0 {
		return 0
	}
	start := b.n
	for _, i := range src.Sel[from : from+k] {
		copy(b.slot(), src.RowAt(int(i)))
	}
	rec.StoreRange(b.addr+mem.Addr(start*b.rowW), k*b.rowW)
	return k
}

// SetHome attaches the recycle ring the block returns to when its
// reference count drops to zero.
func (b *Block) SetHome(home chan *Block) { b.home = home }

// ResetRefs sets the reference count (a producer claiming a free block).
func (b *Block) ResetRefs(n int32) { b.refs.Store(n) }

// Retain adds one reference (a consumer the block will be delivered to).
func (b *Block) Retain() { b.refs.Add(1) }

// Release drops one reference; the last release recycles the block to
// its home ring, if any. The selection vector (which aliases a consumer
// operator's buffer) is detached before the block re-enters the ring, so
// a producer that claims the recycled block can never observe — or
// deliver to another consumer — a stale selection, even if it refills
// without calling Reset. A borrowed page is released here too: the last
// consumer's Release is the end of the block's zero-copy lifetime.
func (b *Block) Release() {
	if b.refs.Add(-1) == 0 {
		b.Sel = nil
		b.RevDense = false
		b.endBorrow()
		if b.home != nil {
			b.home <- b
		}
	}
}

// defaultBlockRows sizes operator blocks: hint wins when positive,
// otherwise enough rows to fill half a 64 KB L1D, and never less than one
// full heap page of rows (page-at-a-time scan fills must always fit).
func defaultBlockRows(rowW, hint int) int {
	b := hint
	if b <= 0 {
		b = (32 << 10) / rowW
		if b < 8 {
			b = 8
		}
	}
	if pr := storage.PageSize / rowW; b < pr {
		b = pr
	}
	return b
}

// VecOp is the vectorized operator interface: the one operator stack
// behind serial, morsel-parallel, staged, and shared execution.
type VecOp interface {
	Schema() Schema
	Open(ctx *Ctx) error
	// NextBlock returns the operator's next batch, which always holds at
	// least one row. The block is owned by the operator and its contents
	// are valid until the following NextBlock or Close call.
	NextBlock(ctx *Ctx) (*Block, bool, error)
	Close(ctx *Ctx)
}

// RunVec drains v, invoking fn on each block.
func RunVec(ctx *Ctx, v VecOp, fn func(blk *Block) error) error {
	if err := v.Open(ctx); err != nil {
		return err
	}
	defer v.Close(ctx)
	for {
		blk, ok, err := v.NextBlock(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if fn != nil {
			if err := fn(blk); err != nil {
				return err
			}
		}
	}
}

// CollectVec drains v through a RowAdapter and decodes every row.
func CollectVec(ctx *Ctx, v VecOp) ([][]Value, error) {
	return Collect(ctx, &RowAdapter{Vec: v})
}

// RowAdapter presents a VecOp through the legacy Volcano Op API: rows of
// the current block are handed out one at a time. It keeps every
// row-at-a-time consumer — tests, sorts, sinks — working unchanged on
// top of the vectorized core.
type RowAdapter struct {
	Vec VecOp

	blk  *Block
	idx  int
	code mem.CodeSeg
}

// Schema implements Op.
func (a *RowAdapter) Schema() Schema { return a.Vec.Schema() }

// Open implements Op.
func (a *RowAdapter) Open(ctx *Ctx) error {
	a.blk, a.idx = nil, 0
	a.code = ctx.DB.Codes.Register("op:rowadapter", 512)
	return a.Vec.Open(ctx)
}

// Close implements Op.
func (a *RowAdapter) Close(ctx *Ctx) {
	a.Vec.Close(ctx)
	a.blk = nil
}

// Next implements Op. The returned row aliases the current block and is
// valid until the block is exhausted (the producer reuses it only after
// the adapter asks for the next one). Blocks carrying a selection vector
// hand out live rows only.
func (a *RowAdapter) Next(ctx *Ctx) ([]byte, bool, error) {
	for a.blk == nil || a.idx >= a.blk.Live() {
		blk, ok, err := a.Vec.NextBlock(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		a.blk, a.idx = blk, 0
		ctx.Rec.Exec(a.code, 8+2*blk.Live())
	}
	row := a.blk.RowAt(a.blk.LiveAt(a.idx))
	a.idx++
	return row, true, nil
}

// VecAdapter presents a legacy Op as a VecOp by batching its rows into a
// block; it lets row-only sources (index scans, sorts) feed vectorized
// consumers.
type VecAdapter struct {
	Child Op
	// BlockRows caps rows per block (0 = the L1-sized default).
	BlockRows int

	blk  *Block
	code mem.CodeSeg
}

// Schema implements VecOp.
func (a *VecAdapter) Schema() Schema { return a.Child.Schema() }

// Open implements VecOp.
func (a *VecAdapter) Open(ctx *Ctx) error {
	rowW := a.Child.Schema().RowWidth()
	if a.blk == nil {
		a.blk = NewBlock(ctx.Work, defaultBlockRows(rowW, a.BlockRows), rowW)
	}
	a.code = ctx.DB.Codes.Register("op:vecadapter", 512)
	return a.Child.Open(ctx)
}

// Close implements VecOp.
func (a *VecAdapter) Close(ctx *Ctx) { a.Child.Close(ctx) }

// NextBlock implements VecOp.
func (a *VecAdapter) NextBlock(ctx *Ctx) (*Block, bool, error) {
	a.blk.Reset()
	for a.blk.N() < a.blk.Cap() {
		row, ok, err := a.Child.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.blk.Push(row)
	}
	if a.blk.N() == 0 {
		return nil, false, nil
	}
	ctx.Rec.Exec(a.code, vecBlockCost+2*a.blk.N())
	a.blk.TraceAppended(ctx.Rec, 0)
	return a.blk, true, nil
}

// ScanVec is the vectorized table scan: pages are decoded a block at a
// time with batched trace events, predicates run in a tight loop over
// host memory, and under PAX each predicate is evaluated column-at-a-time
// over the minipage (a true column loop) with only qualifying tuples
// gathered. It supports the same Range/StartPage contract as SeqScan, so
// morsel drivers and circular shared scans reuse it unchanged.
type ScanVec struct {
	Table *Table
	Preds []Pred
	Cols  []int // projected columns; nil for all
	// StartPage rotates the scan origin (circular shared scans); ignored
	// when Range is set.
	StartPage int
	// Range restricts the scan to a page range (morsel execution).
	Range *PageRange
	// BlockRows caps rows per emitted block (0 = the L1-sized default,
	// never below one page of rows).
	BlockRows int
	// Interpret forces the per-row interpreted Pred.Eval path instead of
	// the compiled predicate closures (the golden equivalence suite's
	// reference; results and charged instruction counts are identical).
	Interpret bool
	// Borrow enables zero-copy page aliasing on the native fast path:
	// clean pages are emitted as borrowed blocks that pin the buffer-pool
	// frame for the block's lifetime (released on the block's Reset or
	// final ring Release — see README "Zero-copy lifetime rules"); torn,
	// fragmented, or concurrently written pages fall back to the copy
	// path, chosen per page at fill time. Traced and Interpret runs
	// ignore it.
	Borrow bool

	out       Schema
	blk       *Block
	page      int // pages consumed within the range
	pageCap   int // max tuples one heap page can hold
	code      mem.CodeSeg
	predCols  []Schema // single-column schema per pred (PAX column eval)
	preds0    []Pred   // preds rebased to column 0 (PAX column eval)
	cp        *CompiledPreds
	colFns    []ColPred // compiled per-column predicates (PAX column eval)
	selbuf    []int
	canBorrow bool    // scan shape supports the alias fast path
	ver       uint64  // heap write-version snapshot at Open
	revsel    []int32 // reversing selection scratch (NSM spans)
}

// Schema implements VecOp.
func (s *ScanVec) Schema() Schema {
	if s.out == nil {
		if s.Cols == nil {
			s.out = s.Table.Schema
		} else {
			s.out = s.Table.Schema.Project(s.Cols)
		}
	}
	return s.out
}

// Open implements VecOp. Reopening after Close rewinds the scan; the
// block is allocated once and reused across reopen cycles (morsel
// drivers reopen per claimed range).
func (s *ScanVec) Open(ctx *Ctx) error {
	s.Schema()
	s.page = 0
	if s.Table.Heap.Layout() == storage.NSM {
		// Safe upper bound (each tuple also consumes a 4-byte slot, so a
		// page can never hold PageSize/rowW tuples).
		s.pageCap = storage.PageSize / s.Table.Schema.RowWidth()
	} else {
		s.pageCap = storage.PAXCapacity(s.Table.Schema.Widths())
	}
	if s.predCols == nil {
		s.predCols = make([]Schema, len(s.Preds))
		s.preds0 = make([]Pred, len(s.Preds))
		for i, p := range s.Preds {
			s.predCols[i] = Schema{s.Table.Schema[p.Col]}
			q := p
			q.Col = 0
			s.preds0[i] = q
		}
	}
	if !s.Interpret && s.cp == nil {
		s.cp = CompilePreds(s.Preds, s.Table.Schema, s.Table.Offs)
		s.colFns = make([]ColPred, len(s.Preds))
		for i, p := range s.Preds {
			s.colFns[i] = CompileColPred(p, s.Table.Schema[p.Col])
		}
	}
	// Aliasing needs the emitted rows to be the page's physical bytes:
	// full-row NSM projection (predicates refine a selection vector), or
	// one bare PAX minipage. Anything else copies.
	s.ver = s.Table.Heap.Version()
	if s.Table.Heap.Layout() == storage.NSM {
		s.canBorrow = s.Cols == nil
	} else {
		s.canBorrow = len(s.Preds) == 0 && len(s.Cols) == 1
	}
	s.code = ctx.DB.Codes.Register("op:scanvec", 2048)
	return nil
}

// Close implements VecOp (idempotent; a reopen rewinds the scan). A
// borrowed block still attached — Close mid-stream — drops its page pin
// here.
func (s *ScanVec) Close(ctx *Ctx) {
	if s.blk != nil && s.blk.Borrowed() {
		s.blk.Reset()
	}
}

// pageBounds returns the scan's page window [lo, hi) and the heap size.
func (s *ScanVec) pageBounds() (lo, hi, n int) {
	n = s.Table.Heap.NumPages()
	lo, hi = 0, n
	if s.Range != nil {
		if s.Range.Lo > lo {
			lo = s.Range.Lo
		}
		if s.Range.Hi < hi {
			hi = s.Range.Hi
		}
	}
	return lo, hi, n
}

// remaining reports whether unscanned pages remain.
func (s *ScanVec) remaining() bool {
	lo, hi, _ := s.pageBounds()
	return s.page < hi-lo
}

// nextPageIdx returns the heap index of the next page to scan, honouring
// Range (morsels) or StartPage (circular origins).
func (s *ScanVec) nextPageIdx() (int, bool) {
	lo, hi, n := s.pageBounds()
	if s.page >= hi-lo {
		return 0, false
	}
	idx := lo + s.page
	if s.Range == nil && n > 0 {
		idx = (s.page + s.StartPage) % n
	}
	s.page++
	return idx, true
}

// FillBlock appends scanned rows to blk, page at a time, until blk lacks
// room for another full page of tuples or the scan's range is exhausted.
// It reports false once the range is exhausted. For Range-restricted
// scans (morsels — always contiguous) blk.Pages tracks the page span
// decoded in this call; a circular StartPage scan can wrap mid-block, so
// its blocks carry no provenance.
func (s *ScanVec) FillBlock(ctx *Ctx, blk *Block) (bool, error) {
	for blk.Cap()-blk.N() >= s.pageCap {
		idx, ok := s.nextPageIdx()
		if !ok {
			return false, nil
		}
		if err := s.scanPage(ctx, idx, blk); err != nil {
			return false, err
		}
		s.notePages(blk, idx)
	}
	return s.remaining(), nil
}

// notePages extends blk's page provenance with idx for Range-restricted
// scans (morsels — always contiguous); a circular StartPage scan can
// wrap mid-block, so its blocks carry no provenance.
func (s *ScanVec) notePages(blk *Block, idx int) {
	if s.Range == nil {
		return
	}
	if blk.Pages.Lo == blk.Pages.Hi {
		blk.Pages = PageRange{Lo: idx, Hi: idx + 1}
	} else if idx >= blk.Pages.Hi {
		blk.Pages.Hi = idx + 1
	}
}

// scanPage decodes one heap page into blk with batched tracing: the page
// bytes load as ranged events, predicates evaluate in a tight loop, and
// the block stores trace once per page.
func (s *ScanVec) scanPage(ctx *Ctx, idx int, blk *Block) error {
	ref, err := ctx.DB.Pool.Get(ctx.Rec, s.Table.Heap.PageAt(idx))
	if err != nil {
		return err
	}
	defer ref.Release()
	h := s.Table.Heap
	h.RLatch()
	defer h.RUnlatch()

	before := blk.N()
	nrows, evals := 0, 0
	if h.Layout() == storage.NSM {
		sp := storage.AsSlotted(ref.Data, ref.Addr)
		if ctx.Rec == nil && len(s.Preds) == 0 && s.Cols == nil {
			// Native full-row scan: bulk-copy the page's tuples straight
			// into the block, skipping the per-tuple visit dispatch. Row
			// order (slot order) is identical to the visiting path.
			k, cerr := sp.CopyTuples(blk.buf[blk.n*blk.rowW:], blk.rowW)
			if cerr != nil {
				return cerr
			}
			blk.n += k
			nrows = k
		} else if s.cp != nil {
			// Fast path: one fused compiled-conjunction call per tuple.
			sp.ScanTuples(ctx.Rec, func(_ int, tuple []byte) {
				nrows++
				pass, k := s.cp.EvalCount(tuple)
				evals += k
				if pass {
					projectInto(blk, tuple, s.Table.Schema, s.Table.Offs, s.Cols)
				}
			})
		} else {
			sp.ScanTuples(ctx.Rec, func(_ int, tuple []byte) {
				nrows++
				for _, p := range s.Preds {
					evals++
					if !p.Eval(s.Table.Schema, s.Table.Offs, tuple) {
						return
					}
				}
				projectInto(blk, tuple, s.Table.Schema, s.Table.Offs, s.Cols)
			})
		}
	} else {
		nrows, evals = s.scanPAXPage(ctx, ref, blk)
	}
	nq := blk.N() - before
	ctx.Rec.Exec(s.code, vecBlockCost+nrows*vecRowCost+evals*vecPredCost+nq*vecProjCost)
	blk.TraceAppended(ctx.Rec, before)
	return nil
}

// scanPAXPage evaluates predicates column-at-a-time over the minipages
// (the first predicate streams its whole column; later predicates touch
// only surviving candidates) and gathers projected columns of qualifying
// tuples. It returns the page's tuple count and predicate evaluations.
func (s *ScanVec) scanPAXPage(ctx *Ctx, ref *storage.PageRef, blk *Block) (nrows, evals int) {
	px := storage.AsPAX(ref.Data, ref.Addr, s.Table.Schema.Widths())
	n := px.N()
	if n == 0 {
		return 0, 0
	}
	sel := s.selbuf[:0]
	for pi := range s.Preds {
		col := s.Preds[pi].Col
		w := s.Table.Schema[col].Width
		mini := px.ColumnBytes(col)
		// The column loop runs the compiled per-column closure when
		// available, the interpreted rebased Pred otherwise; both see the
		// identical field bytes in the identical order.
		var pass func(field []byte) bool
		if s.colFns != nil {
			pass = s.colFns[pi]
		} else {
			pi := pi
			pass = func(field []byte) bool {
				return s.preds0[pi].Eval(s.predCols[pi], colOffs0, field)
			}
		}
		if pi == 0 {
			// First predicate: stream the whole minipage.
			px.LoadColumn(ctx.Rec, col, 0, n)
			for i := 0; i < n; i++ {
				evals++
				if pass(mini[i*w : (i+1)*w]) {
					sel = append(sel, i)
				}
			}
			continue
		}
		if len(sel) == 0 {
			break
		}
		// Later predicates: only the survivors' span of the minipage.
		px.LoadColumn(ctx.Rec, col, sel[0], sel[len(sel)-1]+1)
		kept := sel[:0]
		for _, i := range sel {
			evals++
			if pass(mini[i*w : (i+1)*w]) {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	if len(s.Preds) == 0 {
		for i := 0; i < n; i++ {
			sel = append(sel, i)
		}
	}
	defer func() { s.selbuf = sel[:0] }()
	if len(sel) == 0 {
		return n, evals
	}

	cols := s.Cols
	if cols == nil {
		cols = allCols(len(s.Table.Schema))
	}
	// Gather: reserve the qualifying rows' slots, then fill them column
	// by column — one ranged load per projected minipage over the
	// qualifying span and one tight gather loop per column.
	base := blk.N()
	for range sel {
		blk.slot()
	}
	lo, hi := sel[0], sel[len(sel)-1]+1
	dst := blk.buf[base*blk.rowW:]
	off := 0
	for _, c := range cols {
		px.LoadColumn(ctx.Rec, c, lo, hi)
		px.GatherColumn(dst, blk.rowW, off, c, sel)
		off += s.Table.Schema[c].Width
	}
	return n, evals
}

// colOffs0 is the offset table of a single-column schema.
var colOffs0 = []int{0}

// projectInto copies the projected columns of row (encoded per schema
// with offsets offs) into blk's next slot; nil cols copies the full row.
// Every scan-side operator — private, morsel, shared — projects through
// this one loop, so their output layouts cannot diverge.
func projectInto(blk *Block, row []byte, schema Schema, offs, cols []int) {
	dst := blk.slot()
	if cols == nil {
		copy(dst, row)
		return
	}
	off := 0
	for _, c := range cols {
		w := schema[c].Width
		copy(dst[off:off+w], row[offs[c]:offs[c]+w])
		off += w
	}
}

// predsPass evaluates the conjunction over row.
func predsPass(preds []Pred, schema Schema, offs []int, row []byte) bool {
	for _, p := range preds {
		if !p.Eval(schema, offs, row) {
			return false
		}
	}
	return true
}

// allCols returns [0, n).
func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// NextBlock implements VecOp. The output block is allocated lazily on
// the first call — callers that only drive FillBlock into their own
// blocks (the shared-scan producer fills its recycle ring directly)
// never allocate one, so a fresh ScanVec per morsel costs no arena.
func (s *ScanVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if s.blk == nil {
		capRows := defaultBlockRows(s.out.RowWidth(), s.BlockRows)
		if capRows < s.pageCap {
			capRows = s.pageCap
		}
		s.blk = NewBlock(ctx.Work, capRows, s.out.RowWidth())
	}
	if s.borrowing(ctx) {
		return s.nextBorrowed(ctx)
	}
	for {
		s.blk.Reset()
		more, err := s.FillBlock(ctx, s.blk)
		if err != nil {
			return nil, false, err
		}
		if s.blk.N() > 0 {
			return s.blk, true, nil
		}
		if !more {
			return nil, false, nil
		}
	}
}

// borrowing reports whether this scan emits borrowed zero-copy blocks
// under ctx: native execution (nil Recorder), Borrow requested, the
// compiled path, and a shape the alias fast path supports.
func (s *ScanVec) borrowing(ctx *Ctx) bool {
	return s.Borrow && !s.Interpret && ctx.Rec == nil && s.canBorrow
}

// nextBorrowed emits page-at-a-time borrowed blocks: each clean page is
// aliased in place, the block pinning the page via a buffer-pool lease
// released on the block's Reset or final ring Release; pages the alias
// check rejects are decoded through the copy path, one page per block.
// NSM spans hold tuples in reverse slot order, so borrowed NSM blocks
// carry a reversing selection vector — live order equals slot order,
// keeping results byte-identical with the copy path.
func (s *ScanVec) nextBorrowed(ctx *Ctx) (*Block, bool, error) {
	blk := s.blk
	for {
		blk.Reset() // releases the previous page's lease, if any
		idx, ok := s.nextPageIdx()
		if !ok {
			return nil, false, nil
		}
		aliased, err := s.aliasPage(ctx, idx, blk)
		if err != nil {
			return nil, false, err
		}
		if !aliased {
			if err := s.scanPage(ctx, idx, blk); err != nil {
				return nil, false, err
			}
		}
		if blk.Live() == 0 {
			continue // page empty or fully filtered; next Reset drops its pin
		}
		s.notePages(blk, idx)
		return blk, true, nil
	}
}

// aliasPage tries to alias page idx into blk zero-copy, reporting false
// (no error) when the page must take the copy path instead: the heap
// has been written since Open, the NSM page is fragmented or not purely
// fixed-width, or the page is empty. On success blk borrows the page
// span and holds its lease.
func (s *ScanVec) aliasPage(ctx *Ctx, idx int, blk *Block) (bool, error) {
	h := s.Table.Heap
	if h.Version() != s.ver {
		return false, nil
	}
	lease, err := ctx.DB.Pool.Lease(ctx.Rec, h.PageAt(idx))
	if err != nil {
		return false, err
	}
	ref := lease.Page()
	h.RLatch()
	if h.Layout() == storage.NSM {
		sp := storage.AsSlotted(ref.Data, ref.Addr)
		off, n, ok := sp.TupleSpan(blk.rowW)
		h.RUnlatch()
		if !ok {
			lease.Release()
			return false, nil
		}
		blk.Borrow(ref.Data[off:off+n*blk.rowW], ref.Addr+mem.Addr(off), n, lease.Release)
		if s.cp != nil && s.cp.Len() > 0 {
			// Evaluate the scan predicates densely over the span (the
			// ascending monomorphic kernels) and reverse the survivors:
			// reversed ascending physical order is exactly slot order.
			sel := s.cp.SelectDense(blk.buf, blk.rowW, n, s.revsel[:0])
			reverseSelInPlace(sel)
			s.revsel = sel[:0:cap(sel)]
			blk.Sel = sel
		} else {
			blk.Sel = s.reverseSel(n)
			blk.RevDense = true
		}
		return true, nil
	}
	px := storage.AsPAX(ref.Data, ref.Addr, s.Table.Schema.Widths())
	n := px.N()
	c := s.Cols[0]
	col := px.ColumnBytes(c)
	addr := px.FieldAddr(0, c)
	h.RUnlatch()
	if n == 0 {
		lease.Release()
		return false, nil
	}
	blk.Borrow(col, addr, n, lease.Release)
	return true, nil
}

// reverseSel returns [n-1 ... 0] backed by the scan's scratch: NSM pages
// store slot s at PageSize-(s+1)*rowW, so an aliased span's physical
// order is the reverse of slot order.
func (s *ScanVec) reverseSel(n int) []int32 {
	if cap(s.revsel) < n {
		s.revsel = make([]int32, n)
	}
	sel := s.revsel[:n]
	for i := range sel {
		sel[i] = int32(n - 1 - i)
	}
	return sel
}

// reverseSelInPlace flips a selection vector end-for-end. Dense predicate
// kernels over a borrowed NSM span produce survivors in ascending
// physical order; reversing them restores slot order, which is the order
// the copy path emits.
func reverseSelInPlace(sel []int32) {
	for l, r := 0, len(sel)-1; l < r; l, r = l+1, r-1 {
		sel[l], sel[r] = sel[r], sel[l]
	}
}

// FilterVec drops block rows failing the conjunction. In traced
// execution it compacts survivors into its own block (copy costs are part
// of the simulated story). On the native fast path — nil Recorder,
// Compact unset, and a private (non-ring) input block — it instead marks
// survivors in a selection vector attached to the child's block,
// deferring the compaction copy to whichever downstream operator
// genuinely needs dense rows. Ring-delivered blocks are never annotated:
// they are shared with other consumers and recycled by refcount, so
// mutating them would race.
type FilterVec struct {
	Child VecOp
	Preds []Pred
	// Compact forces survivor compaction even on the native fast path
	// (the golden equivalence suite's selection-vector-off reference).
	Compact bool
	// Interpret forces the interpreted Pred.Eval path instead of the
	// compiled predicate closures (the golden reference).
	Interpret bool

	offs      []int
	blk       *Block
	cp        *CompiledPreds
	sel       []int32
	annotated *Block // input block currently carrying f.sel as its Sel
	code      mem.CodeSeg
}

// Schema implements VecOp.
func (f *FilterVec) Schema() Schema { return f.Child.Schema() }

// Open implements VecOp.
func (f *FilterVec) Open(ctx *Ctx) error {
	f.offs = f.Child.Schema().Offsets()
	if !f.Interpret && f.cp == nil {
		f.cp = CompilePreds(f.Preds, f.Child.Schema(), f.offs)
	}
	f.annotated = nil
	f.code = ctx.DB.Codes.Register("op:filtervec", 1024)
	return f.Child.Open(ctx)
}

// Close implements VecOp. A selection vector this filter attached to the
// child's current block is detached first: the child (or its ring) may
// reuse that block after Close, and f.sel's backing array is about to be
// reused for the next open cycle. Without the detach, a Close mid-stream
// would leave a stale Sel aliasing our scratch on a block we no longer
// own — exactly the lifecycle the ring-recycle audit covers.
func (f *FilterVec) Close(ctx *Ctx) {
	if f.annotated != nil {
		f.annotated.Sel = nil
		f.annotated = nil
	}
	f.Child.Close(ctx)
}

// pass evaluates the conjunction over row via the compiled closures when
// available, the interpreted path otherwise.
func (f *FilterVec) pass(cs Schema, row []byte) bool {
	if f.cp != nil {
		return f.cp.Pass(row)
	}
	return predsPass(f.Preds, cs, f.offs, row)
}

// NextBlock implements VecOp.
func (f *FilterVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	cs := f.Child.Schema()
	if f.annotated != nil {
		// The previous output's selection is dead the moment the consumer
		// asks for the next block; detach before the child refills it.
		f.annotated.Sel = nil
		f.annotated = nil
	}
	for {
		in, ok, err := f.Child.NextBlock(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if ctx.Rec == nil && !f.Compact && in.home == nil {
			if out, any := f.selectInto(cs, in); any {
				return out, true, nil
			}
			continue
		}
		if f.blk == nil || f.blk.Cap() < in.Cap() {
			f.blk = NewBlock(ctx.Work, in.Cap(), in.RowWidth())
		}
		f.blk.Reset()
		n := in.N()
		in.TraceRows(ctx.Rec)
		if in.Sel != nil {
			for _, i := range in.Sel {
				row := in.RowAt(int(i))
				if f.pass(cs, row) {
					f.blk.Push(row)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				row := in.RowAt(i)
				if f.pass(cs, row) {
					f.blk.Push(row)
				}
			}
		}
		ctx.Rec.Exec(f.code, vecBlockCost+n*(vecRowCost+vecPredCost*len(f.Preds))+f.blk.N()*vecProjCost)
		f.blk.TraceAppended(ctx.Rec, 0)
		if f.blk.N() > 0 {
			return f.blk, true, nil
		}
	}
}

// selectInto marks in's surviving rows in a selection vector (reusing
// f.sel's backing array) and attaches it to in. It reports whether any
// row survived; a block with no survivors is left untouched. With
// compiled predicates the conjunction runs block-at-a-time through the
// selection kernels; the interpreted escape hatch keeps the per-row
// loop.
func (f *FilterVec) selectInto(cs Schema, in *Block) (*Block, bool) {
	sel := f.sel[:0]
	switch {
	case f.cp != nil && in.RevDense:
		// Borrowed NSM span whose selection is the pure reversal: run the
		// conjunction densely over the whole span (ascending monomorphic
		// kernels, no indexed refine) and reverse the survivors — slot
		// order again, byte-identical emission to the copy path.
		sel = f.cp.SelectDense(in.buf, in.rowW, in.N(), sel)
		reverseSelInPlace(sel)
	case f.cp != nil && in.Sel != nil:
		// A stacked native filter: copy the upstream selection (its
		// backing array belongs to the upstream filter) and refine ours
		// in place.
		sel = append(sel, in.Sel...)
		sel = f.cp.SelectRefine(in.buf, in.rowW, sel)
	case f.cp != nil:
		sel = f.cp.SelectDense(in.buf, in.rowW, in.N(), sel)
	case in.Sel != nil:
		for _, i := range in.Sel {
			if f.pass(cs, in.RowAt(int(i))) {
				sel = append(sel, i)
			}
		}
	default:
		n := in.N()
		for i := 0; i < n; i++ {
			if f.pass(cs, in.RowAt(i)) {
				sel = append(sel, int32(i))
			}
		}
	}
	f.sel = sel
	in.RevDense = false // in.Sel no longer the pure reversal (if it ever was)
	if len(sel) == 0 {
		in.Sel = nil
		return nil, false
	}
	in.Sel = sel
	f.annotated = in
	return in, true
}

// ProjectVec narrows block rows to the given columns.
type ProjectVec struct {
	Child VecOp
	Cols  []int

	out  Schema
	offs []int
	blk  *Block
	code mem.CodeSeg
}

// Schema implements VecOp.
func (p *ProjectVec) Schema() Schema {
	if p.out == nil {
		p.out = p.Child.Schema().Project(p.Cols)
	}
	return p.out
}

// Open implements VecOp.
func (p *ProjectVec) Open(ctx *Ctx) error {
	p.Schema()
	p.offs = p.Child.Schema().Offsets()
	p.code = ctx.DB.Codes.Register("op:projectvec", 768)
	return p.Child.Open(ctx)
}

// Close implements VecOp.
func (p *ProjectVec) Close(ctx *Ctx) { p.Child.Close(ctx) }

// NextBlock implements VecOp.
func (p *ProjectVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	in, ok, err := p.Child.NextBlock(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	if p.blk == nil || p.blk.Cap() < in.Cap() {
		p.blk = NewBlock(ctx.Work, in.Cap(), p.out.RowWidth())
	}
	p.blk.Reset()
	cs := p.Child.Schema()
	n := in.N()
	in.TraceRows(ctx.Rec)
	if in.Sel != nil {
		// Selection-vector input (native fast path): project live rows
		// only. The output block is dense.
		for _, i := range in.Sel {
			projectInto(p.blk, in.RowAt(int(i)), cs, p.offs, p.Cols)
		}
	} else {
		for i := 0; i < n; i++ {
			projectInto(p.blk, in.RowAt(i), cs, p.offs, p.Cols)
		}
	}
	ctx.Rec.Exec(p.code, vecBlockCost+n*vecProjCost)
	p.blk.TraceAppended(ctx.Rec, 0)
	return p.blk, true, nil
}

// MapVec computes derived columns block-at-a-time with the same Fn
// contract as the row operator Map.
type MapVec struct {
	Child VecOp
	Out   Schema
	Fn    func(in, out []byte)
	// Cost is the synthetic instruction cost per row (default 10; the
	// arithmetic is real work, only the iterator overhead amortizes).
	Cost int

	blk  *Block
	code mem.CodeSeg
}

// Schema implements VecOp.
func (m *MapVec) Schema() Schema { return m.Out }

// Open implements VecOp.
func (m *MapVec) Open(ctx *Ctx) error {
	m.code = ctx.DB.Codes.Register("op:mapvec", 1024)
	if m.Cost == 0 {
		m.Cost = 10
	}
	return m.Child.Open(ctx)
}

// Close implements VecOp.
func (m *MapVec) Close(ctx *Ctx) { m.Child.Close(ctx) }

// NextBlock implements VecOp.
func (m *MapVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	in, ok, err := m.Child.NextBlock(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	if m.blk == nil || m.blk.Cap() < in.Cap() {
		m.blk = NewBlock(ctx.Work, in.Cap(), m.Out.RowWidth())
	}
	m.blk.Reset()
	n := in.N()
	in.TraceRows(ctx.Rec)
	if in.Sel != nil {
		// Selection-vector input (native fast path): map live rows only.
		for _, i := range in.Sel {
			m.Fn(in.RowAt(int(i)), m.blk.slot())
		}
	} else {
		for i := 0; i < n; i++ {
			m.Fn(in.RowAt(i), m.blk.slot())
		}
	}
	ctx.Rec.Exec(m.code, vecBlockCost+n*m.Cost)
	m.blk.TraceAppended(ctx.Rec, 0)
	return m.blk, true, nil
}

// HashAggVec groups block rows and computes aggregates, reusing HashAgg's
// accumulator machinery — group table layout, merge rules, and output
// encoding are identical to the row operator, so results match it byte
// for byte — while the absorb loop runs tight over each block.
type HashAggVec struct {
	Child     VecOp
	GroupCols []int
	Aggs      []AggSpec
	// Expected is the cardinality hint the group table is pre-sized from
	// (default 1024 groups); plans pass it so the table never rehashes—
	// it is allocated once at roughly twice the expected group count.
	Expected int
	// Interpret disables the compiled group-key kernel, keeping the
	// per-row groupBytes+hashBytes loops (the golden reference; the
	// kernel computes bit-identical keys and hashes).
	Interpret bool

	inner   *HashAgg
	blk     *Block
	gk      GroupKernel
	ak      []AggKernel // compiled per-agg update closures (native path)
	keys    []byte      // batch scratch: live rows' group keys, groupW each
	hashes  []uint64    // batch scratch: live rows' group-key hashes
	results [][]byte
	resIdx  int
	code    mem.CodeSeg
}

// agg returns the inner row aggregate whose machinery this operator
// reuses (ParallelAgg merges worker partials through it).
func (a *HashAggVec) agg() *HashAgg {
	if a.inner == nil {
		a.inner = &HashAgg{
			Child:     &RowAdapter{Vec: a.Child},
			GroupCols: a.GroupCols,
			Aggs:      a.Aggs,
			Expected:  a.Expected,
		}
	}
	return a.inner
}

// Schema implements VecOp.
func (a *HashAggVec) Schema() Schema { return a.agg().Schema() }

// Open implements VecOp: it drains the child block-at-a-time into the
// group table.
func (a *HashAggVec) Open(ctx *Ctx) error {
	in := a.agg()
	cs := in.prepare(ctx)
	a.gk, a.ak = nil, nil
	if !a.Interpret {
		a.gk = CompileGroupKernel(cs, in.offs, a.GroupCols)
		a.ak = CompileAggKernels(cs, in.offs, a.Aggs)
	}
	a.code = ctx.DB.Codes.Register("op:hashaggvec", 2048)
	a.results, a.resIdx = nil, 0
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	defer a.Child.Close(ctx)
	for {
		blk, ok, err := a.Child.NextBlock(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.Rec.Exec(a.code, vecBlockCost+blk.N()*vecAggCost)
		blk.TraceRows(ctx.Rec)
		a.absorbBlock(ctx, in, cs, blk)
	}
}

// absorbBlock folds one block into the group table batch-at-a-time: a
// first pass extracts every live row's group key and hashes it into
// scratch arrays (pure host arithmetic — the table is untouched, so
// nothing is traced), then a second pass probes/inserts in row order.
// The traced probe/update sequence is identical to absorbing row by row,
// so simulated results match the row path byte for byte; natively, the
// key/hash work runs as a tight loop with the table walk out of it.
func (a *HashAggVec) absorbBlock(ctx *Ctx, in *HashAgg, cs Schema, blk *Block) {
	live := blk.Live()
	gw := in.groupW
	need := live * gw
	if gw == 0 {
		need = 1 // keep zero-width slicing trivially valid
	}
	if cap(a.keys) < need {
		a.keys = make([]byte, need)
	}
	a.keys = a.keys[:need]
	if cap(a.hashes) < live {
		a.hashes = make([]uint64, live)
	}
	a.hashes = a.hashes[:live]
	if a.gk != nil {
		// Compiled path: one fused key-copy+hash pass over the block
		// (Sel-aware), bit-identical to the per-row loops below.
		a.gk(blk.buf, blk.rowW, blk.Sel, live, a.keys, a.hashes)
		if ctx.Rec == nil && a.ak != nil {
			// Native: inline group lookup (no per-entry callback) and the
			// compiled per-agg update closures. Group insertion order and
			// accumulator bits match the traced loop exactly.
			for k := 0; k < live; k++ {
				i := k
				if blk.Sel != nil {
					i = int(blk.Sel[k])
				}
				row := blk.RowAt(i)
				gk := a.keys[k*gw : (k+1)*gw]
				acc := in.findGroupNative(a.hashes[k], gk)
				if acc == nil {
					acc, _ = in.insertGroup(nil, a.hashes[k], gk)
				}
				acc = acc[in.groupW:]
				for _, kern := range a.ak {
					kern(row, acc)
				}
			}
			return
		}
		if blk.Sel != nil {
			for k, i := range blk.Sel {
				in.absorbHashed(ctx, cs, a.keys[k*gw:(k+1)*gw], a.hashes[k], blk.RowAt(int(i)))
			}
			return
		}
		for k := 0; k < live; k++ {
			in.absorbHashed(ctx, cs, a.keys[k*gw:(k+1)*gw], a.hashes[k], blk.RowAt(k))
		}
		return
	}
	if blk.Sel != nil {
		for k, i := range blk.Sel {
			gk := a.keys[k*gw : (k+1)*gw]
			in.groupBytes(cs, blk.RowAt(int(i)), gk)
			a.hashes[k] = hashBytes(gk)
		}
		for k, i := range blk.Sel {
			in.absorbHashed(ctx, cs, a.keys[k*gw:(k+1)*gw], a.hashes[k], blk.RowAt(int(i)))
		}
		return
	}
	for k := 0; k < live; k++ {
		gk := a.keys[k*gw : (k+1)*gw]
		in.groupBytes(cs, blk.RowAt(k), gk)
		a.hashes[k] = hashBytes(gk)
	}
	for k := 0; k < live; k++ {
		in.absorbHashed(ctx, cs, a.keys[k*gw:(k+1)*gw], a.hashes[k], blk.RowAt(k))
	}
}

// Close implements VecOp.
func (a *HashAggVec) Close(ctx *Ctx) {
	if a.inner != nil {
		a.inner.Close(ctx)
	}
	a.results, a.blk = nil, nil
}

// NextBlock implements VecOp: it emits the group rows in table-scan
// order, packed into blocks.
func (a *HashAggVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if a.results == nil {
		in := a.agg()
		for {
			row, ok, err := in.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			a.results = append(a.results, row)
		}
		if a.results == nil {
			a.results = [][]byte{}
		}
	}
	if a.resIdx >= len(a.results) {
		return nil, false, nil
	}
	rowW := a.Schema().RowWidth()
	if a.blk == nil {
		a.blk = NewBlock(ctx.Work, defaultBlockRows(rowW, 0), rowW)
	}
	a.blk.Reset()
	for a.resIdx < len(a.results) && a.blk.Push(a.results[a.resIdx]) {
		a.resIdx++
	}
	a.blk.TraceAppended(ctx.Rec, 0)
	return a.blk, true, nil
}

// HashJoinVec joins Probe ⋈ Build on integer key equality block-at-a-
// time: the build side drains into a workspace hash table with batched
// tracing, then each probe block is matched in a tight loop. Output rows
// are Probe ++ Build columns in probe order — identical to HashJoin.
type HashJoinVec struct {
	Probe, Build       VecOp
	ProbeCol, BuildCol int
	Type               JoinType
	// Expected is the build-side cardinality hint the hash table is
	// pre-sized from (default 4096); plans pass it so a large build never
	// degenerates into long chains.
	Expected int
	// BuildRows is the expected build-side entry count — rows inserted,
	// not distinct keys — used to size the partitioned mode's radix
	// fan-out and the auto-mode footprint estimate; 0 defaults to
	// Expected. Dup-heavy builds (many rows per distinct key) set both:
	// Expected covers the bucket count a chained table needs, BuildRows
	// the entry volume the partitions must spread under JoinPartBudget.
	BuildRows int
	// Interpret disables the compiled key kernels and the whole-block
	// build insert, keeping the per-row PR 8 loops (the golden
	// reference; the kernels produce identical key bits and chain
	// order).
	Interpret bool
	// Mode pins the join strategy; JoinAuto (the zero value) defers to
	// the context's mode and then to the build-size estimate (see
	// resolveJoinMode). Every mode emits byte-identical results — only
	// the cache behaviour of the build and probe changes.
	Mode JoinMode

	out      Schema
	mode     JoinMode     // resolved at Open
	ht       *HashTable   // chained/prefetch build
	pt       *PartedTable // partitioned build
	blk      *Block
	probeBlk *Block
	probeIdx int      // next live ordinal within the probe scratch arrays
	curRow   []byte   // probe row whose matches are being emitted
	pending  [][]byte // matches of curRow (stable ht payloads)
	pendPos  int      // next pending match to emit — an index, so the
	// drain never re-slices pending's head away and its capacity
	// survives from key to key (re-slicing eroded cap one row per emit,
	// reallocating the scratch tens of thousands of times per query)
	// Batch-probe scratch, filled once per probe block: the live rows'
	// physical indexes, their join keys, and the keys' bucket addresses
	// (hashed up front, pure host arithmetic; the traced chain walks then
	// run in row order via IterAt, identical to per-row Iter).
	probeRows    []int32
	probeKeys    []uint64
	probeBuckets []mem.Addr
	probeTabs    []*HashTable // partitioned mode: each key's partition table
	keyOff       int
	probeW       int
	buildKernel  KeyKernel
	probeKernel  KeyKernel
	buildKeys    []uint64 // batch scratch: one build block's keys
	// Prefetch-mode batch scratch: matches in (key index, chain order),
	// produced by the multi-lane walk and drained by the per-key emission
	// loop. Traced runs stage a whole block; native runs walk one
	// probeLanes group on demand (nextProbeGroup), so the arrays stay a
	// few lanes deep.
	lanes     laneMatches
	batchOrd  []int32
	batchRow  [][]byte
	batchPos  int
	batchNext int // native prefetch: first ordinal the group walk has not covered
	batchBase int // ordinal offset of the staged group (0 for whole-block traced walks)
	stage     func(k int, row []byte)
	code      mem.CodeSeg
}

// Schema implements VecOp.
func (j *HashJoinVec) Schema() Schema {
	if j.out == nil {
		j.out = j.Probe.Schema().Concat(j.Build.Schema())
	}
	return j.out
}

// Open implements VecOp: it drains the build side into the hash table.
func (j *HashJoinVec) Open(ctx *Ctx) error {
	j.Schema()
	j.code = ctx.DB.Codes.Register("op:hashjoinvec", 4096)
	j.keyOff = j.Probe.Schema().Offsets()[j.ProbeCol]
	j.probeW = j.Probe.Schema().RowWidth()
	j.probeBlk, j.probeIdx, j.curRow, j.pending, j.pendPos = nil, 0, nil, nil, 0
	j.probeRows = j.probeRows[:0]

	bOff := j.Build.Schema().Offsets()[j.BuildCol]
	bWidth := j.Build.Schema().RowWidth()
	j.buildKernel, j.probeKernel = nil, nil
	if !j.Interpret {
		j.buildKernel = CompileKeyKernel(j.Build.Schema()[j.BuildCol].Type, bOff)
		j.probeKernel = CompileKeyKernel(j.Probe.Schema()[j.ProbeCol].Type, j.keyOff)
	}
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	defer j.Build.Close(ctx)
	expected := j.Expected
	if expected == 0 {
		expected = 4096
	}
	buildRows := j.BuildRows
	if buildRows == 0 {
		buildRows = expected
	}
	j.mode = resolveJoinMode(j.Mode, ctx, buildRows, htEntryHeader+bWidth)
	j.ht, j.pt = nil, nil
	var rp *RadixPart
	if j.mode == JoinPartitioned {
		rp = NewRadixPart(ctx, joinParts(buildRows, htEntryHeader+bWidth), bWidth, expected, buildRows)
	} else {
		j.ht = NewHashTable(ctx, expected, bWidth)
	}
	if j.stage == nil {
		j.stage = func(k int, row []byte) {
			j.batchOrd = append(j.batchOrd, int32(j.batchBase+k))
			j.batchRow = append(j.batchRow, row)
		}
	}
	for {
		blk, ok, err := j.Build.NextBlock(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.Rec.Exec(j.code, vecBlockCost+blk.N()*vecBuildCost)
		blk.TraceRows(ctx.Rec)
		if ctx.Rec == nil && j.buildKernel != nil {
			// Native whole-block build: compiled key extraction feeding
			// the table's (or radix pass's) batch insert. Chain order
			// matches the per-row path exactly.
			j.insertBatch(rp, blk)
			continue
		}
		insert := func(row []byte) {
			key := uint64(RowInt(row, bOff))
			if rp != nil {
				rp.Add(key, row)
			} else {
				j.ht.Insert(ctx.Rec, key, row)
			}
		}
		if blk.Sel != nil {
			for _, i := range blk.Sel {
				insert(blk.RowAt(int(i)))
			}
		} else {
			n := blk.N()
			for i := 0; i < n; i++ {
				insert(blk.RowAt(i))
			}
		}
	}
	if rp != nil {
		j.pt = rp.Build()
	}
	j.observeBuild(ctx)
	return j.Probe.Open(ctx)
}

// observeBuild feeds the finished build into the context's join metrics:
// build/partition counters by mode, and — only when a chain-length
// histogram is attached, since the walk is pure observability — the
// bucket-chain length distribution.
func (j *HashJoinVec) observeBuild(ctx *Ctx) {
	m := j.mode.String()
	ctx.Join.Builds.With(m).Inc()
	parts := uint64(1)
	if j.pt != nil {
		parts = uint64(j.pt.Parts())
	}
	ctx.Join.Partitions.With(m).Add(parts)
	if h := ctx.Join.ChainLen; h != nil {
		observe := func(n int) { h.Observe(float64(n)) }
		if j.pt != nil {
			j.pt.ChainLengths(observe)
		} else {
			j.ht.ChainLengths(observe)
		}
	}
}

// Close implements VecOp.
func (j *HashJoinVec) Close(ctx *Ctx) {
	j.Probe.Close(ctx)
	j.ht, j.pt = nil, nil
	j.probeBlk, j.curRow, j.pending, j.pendPos = nil, nil, nil, 0
}

// emit appends curRow ++ build to the output block.
func (j *HashJoinVec) emit(build []byte) {
	dst := j.blk.slot()
	copy(dst, j.curRow)
	if build == nil {
		for i := j.probeW; i < len(dst); i++ {
			dst[i] = 0
		}
		return
	}
	copy(dst[j.probeW:], build)
}

// NextBlock implements VecOp.
func (j *HashJoinVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	if j.blk == nil {
		rowW := j.out.RowWidth()
		j.blk = NewBlock(ctx.Work, defaultBlockRows(rowW, 0), rowW)
	}
	j.blk.Reset()
	for j.blk.N() < j.blk.Cap() {
		if j.pendPos < len(j.pending) {
			j.emit(j.pending[j.pendPos])
			j.pendPos++
			continue
		}
		if j.probeBlk == nil || j.probeIdx >= len(j.probeRows) {
			blk, ok, err := j.Probe.NextBlock(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.blk.TraceAppended(ctx.Rec, 0)
				return j.blk, j.blk.N() > 0, nil
			}
			j.probeBlk, j.probeIdx = blk, 0
			ctx.Rec.Exec(j.code, vecBlockCost+blk.N()*vecProbeCost)
			blk.TraceRows(ctx.Rec)
			j.hashProbeBlock(blk)
			if j.batched(ctx) {
				j.batchOrd, j.batchRow = j.batchOrd[:0], j.batchRow[:0]
				j.batchPos, j.batchNext = 0, 0
				if ctx.Rec != nil {
					// The traced walk covers the whole block up front,
					// prefetch-pipelining the chain loads (AMAC). Native
					// runs instead walk one lane group on demand as the
					// drain loop reaches it (nextProbeGroup), keeping the
					// staging arrays lane-sized and cache-hot through the
					// drain.
					j.batchBase = 0
					j.ht.ProbeBatchTraced(ctx.Rec, j.probeBuckets, j.probeKeys, &j.lanes, j.stage)
				}
			}
			continue
		}
		k := j.probeIdx
		j.probeIdx++
		j.curRow = j.probeBlk.RowAt(int(j.probeRows[k]))
		j.pending, j.pendPos = j.pending[:0], 0
		switch {
		case j.batched(ctx):
			if ctx.Rec == nil && k >= j.batchNext {
				j.nextProbeGroup()
			}
			// Matches were staged by the batched walk, already in (key,
			// chain) order; take this key's consecutive run.
			for j.batchPos < len(j.batchOrd) && int(j.batchOrd[j.batchPos]) == k {
				j.pending = append(j.pending, j.batchRow[j.batchPos])
				j.batchPos++
			}
		case ctx.Rec == nil && j.probeKernel != nil:
			// Native: walk the chain inline — no per-entry callback, no
			// trace bookkeeping. Chain order (and so emission order) is
			// exactly IterAt's.
			j.pending = j.table(k).matchesNative(j.probeBuckets[k], j.probeKeys[k], j.pending)
		default:
			j.table(k).IterAt(ctx.Rec, j.probeBuckets[k], j.probeKeys[k], func(payload []byte, _ mem.Addr) bool {
				j.pending = append(j.pending, payload)
				return true
			})
		}
		if len(j.pending) == 0 && j.Type == LeftOuter {
			j.emit(nil)
		}
	}
	j.blk.TraceAppended(ctx.Rec, 0)
	return j.blk, true, nil
}

// hashProbeBlock is the batch key pass over one probe block: every live
// row's join key is extracted, hashed, and resolved to its bucket
// address in one tight loop before any chain is walked. The hashing is
// pure host arithmetic (no table memory is touched), so the traced
// accesses — the chain walks IterAt performs in row order — are
// identical to hashing inside the per-row loop.
func (j *HashJoinVec) hashProbeBlock(blk *Block) {
	j.probeRows = j.probeRows[:0]
	if blk.Sel != nil {
		j.probeRows = append(j.probeRows, blk.Sel...)
	} else {
		for i := 0; i < blk.N(); i++ {
			j.probeRows = append(j.probeRows, int32(i))
		}
	}
	if j.probeKernel != nil {
		n := len(j.probeRows)
		if cap(j.probeKeys) < n {
			j.probeKeys = make([]uint64, n)
		}
		j.probeKeys = j.probeKeys[:n]
		j.probeKernel(blk.buf, blk.rowW, j.probeRows, n, j.probeKeys)
		if j.pt != nil {
			j.routePartitions()
			return
		}
		j.probeBuckets = j.ht.BucketsOf(j.probeKeys, j.probeBuckets[:0])
		return
	}
	j.probeKeys = j.probeKeys[:0]
	j.probeBuckets = j.probeBuckets[:0]
	if j.pt != nil {
		for _, i := range j.probeRows {
			key := uint64(RowInt(blk.RowAt(int(i)), j.keyOff))
			j.probeKeys = append(j.probeKeys, key)
		}
		j.routePartitions()
		return
	}
	for _, i := range j.probeRows {
		key := uint64(RowInt(blk.RowAt(int(i)), j.keyOff))
		j.probeKeys = append(j.probeKeys, key)
		j.probeBuckets = append(j.probeBuckets, j.ht.BucketOf(key))
	}
}

// routePartitions resolves every probe key of the block to its partition
// (index and table) and that table's bucket head — host arithmetic plus
// table metadata, no simulated memory traffic, same as hashing ahead of
// IterAt.
func (j *HashJoinVec) routePartitions() {
	n := len(j.probeKeys)
	if cap(j.probeTabs) < n {
		j.probeTabs = make([]*HashTable, n)
	}
	j.probeTabs = j.probeTabs[:n]
	if cap(j.probeBuckets) < n {
		j.probeBuckets = make([]mem.Addr, n)
	}
	j.probeBuckets = j.probeBuckets[:n]
	for k, key := range j.probeKeys {
		// One hash yields both the partition (top bits) and the bucket
		// (low bits) — identical to partOf + bucketAddr on the same key.
		h := mix(key)
		p := int(h >> radixShift & j.pt.mask)
		tab := j.pt.tables[p]
		j.probeTabs[k] = tab
		j.probeBuckets[k] = tab.buckets + mem.Addr(h&(tab.nbuckets-1))*8
	}
}

// nextProbeGroup walks the next probeLanes keys' chains through the
// multi-lane batch walk, staging their matches. The native batched drain
// calls it as it reaches each group, so staging stays lane-sized (and
// cache-hot into the emission loop) instead of materializing a whole
// block's matches. The walk reads only the precomputed bucket heads and
// the shared arena, so one table serves it in every mode — partitioned
// probes cross partition tables lane by lane without extra dispatch.
func (j *HashJoinVec) nextProbeGroup() {
	g := j.batchNext
	n := len(j.probeKeys) - g
	if n > probeLanes {
		n = probeLanes
	}
	j.batchOrd, j.batchRow = j.batchOrd[:0], j.batchRow[:0]
	j.batchPos = 0
	j.batchBase = g
	j.walkTable().ProbeBatchNative(j.probeBuckets[g:g+n], j.probeKeys[g:g+n], &j.lanes, j.stage)
	j.batchNext = g + n
}

// walkTable returns a table whose batch walk serves this join's probes:
// the chained table, or (partitioned) any partition table — the walk
// uses only the shared arena and the entry width, identical across
// partitions.
func (j *HashJoinVec) walkTable() *HashTable {
	if j.pt != nil {
		return j.pt.tables[0]
	}
	return j.ht
}

// table returns the hash table serving probe ordinal k: the single
// chained table, or the key's radix partition.
func (j *HashJoinVec) table(k int) *HashTable {
	if j.pt != nil {
		return j.probeTabs[k]
	}
	return j.ht
}

// batched reports whether this execution probes through the multi-lane
// batch walk. Prefetch mode: always when traced (the prefetch pipeline
// is the point), natively with a compiled key kernel (the interpreted
// reference keeps its per-row walks). Partitioned mode: natively with a
// compiled kernel — the same group-on-demand walk, over the partition
// tables' precomputed bucket heads; traced partitioned runs keep their
// per-key dependent walks, whose cache behaviour on cache-sized tables
// is what the partitioned trace is for.
func (j *HashJoinVec) batched(ctx *Ctx) bool {
	if j.mode == JoinPrefetch {
		return ctx.Rec != nil || j.probeKernel != nil
	}
	return j.mode == JoinPartitioned && ctx.Rec == nil && j.probeKernel != nil
}

// insertBatch drains one native build block into the hash table (or, in
// partitioned mode, the radix pass): the compiled key kernel extracts
// every live key, then the batch insert pushes the entries in row order.
func (j *HashJoinVec) insertBatch(rp *RadixPart, blk *Block) {
	n := blk.Live()
	if n == 0 {
		return
	}
	if cap(j.buildKeys) < n {
		j.buildKeys = make([]uint64, n)
	}
	keys := j.buildKeys[:n]
	j.buildKernel(blk.buf, blk.rowW, blk.Sel, n, keys)
	if rp != nil {
		rp.AddBlockNative(keys, blk.buf, blk.rowW, blk.Sel, n)
		return
	}
	j.ht.InsertBatch(keys, blk.buf, blk.rowW, blk.Sel, n)
}

// MorselScanVec is ScanVec's morsel-driven form: workers sharing one
// MorselPool collectively cover the table exactly once, each decoding the
// page ranges it claims block-at-a-time. It is what ParallelScan,
// ParallelAgg, and ParallelHashJoin drive — morsel scheduling on top of
// the same vectorized core as every other execution mode.
type MorselScanVec struct {
	Table  *Table
	Preds  []Pred
	Cols   []int
	Pool   *MorselPool
	Worker int
	// Interpret forces the interpreted predicate path on the inner scan
	// (the golden equivalence suite's reference).
	Interpret bool
	// Borrow enables zero-copy page aliasing on the inner scan (native
	// fast path only; see ScanVec.Borrow).
	Borrow bool

	inner  *ScanVec
	active bool
}

// scan returns the reusable inner ScanVec.
func (s *MorselScanVec) scan() *ScanVec {
	if s.inner == nil {
		s.inner = &ScanVec{Table: s.Table, Preds: s.Preds, Cols: s.Cols, Interpret: s.Interpret, Borrow: s.Borrow}
	}
	return s.inner
}

// Schema implements VecOp.
func (s *MorselScanVec) Schema() Schema { return s.scan().Schema() }

// Open implements VecOp.
func (s *MorselScanVec) Open(ctx *Ctx) error {
	s.scan()
	s.active = false
	return nil
}

// Close implements VecOp.
func (s *MorselScanVec) Close(ctx *Ctx) {
	if s.active {
		s.inner.Close(ctx)
		s.active = false
	}
}

// NextBlock implements VecOp: it drains the current morsel, then claims
// the next.
func (s *MorselScanVec) NextBlock(ctx *Ctx) (*Block, bool, error) {
	for {
		if !s.active {
			m, ok := s.Pool.Next(s.Worker)
			if !ok {
				return nil, false, nil
			}
			s.inner.Range = &PageRange{Lo: m.Lo, Hi: m.Hi}
			if err := s.inner.Open(ctx); err != nil {
				return nil, false, err
			}
			s.active = true
		}
		blk, ok, err := s.inner.NextBlock(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return blk, true, nil
		}
		s.inner.Close(ctx)
		s.active = false
	}
}
