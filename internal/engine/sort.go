package engine

import (
	"bytes"
	"sort"

	"repro/internal/mem"
)

// Sort materializes child rows into the workspace and emits them ordered
// by the key column. Comparisons charge synthetic instructions; row
// materialization and re-reads are traced at their workspace addresses.
type Sort struct {
	Child Op
	Col   int
	Desc  bool

	rows  [][]byte
	addrs []mem.Addr
	idx   int
	code  mem.CodeSeg
}

// Schema implements Op.
func (s *Sort) Schema() Schema { return s.Child.Schema() }

// Open implements Op: it drains and sorts the input.
func (s *Sort) Open(ctx *Ctx) error {
	s.code = ctx.DB.Codes.Register("op:sort", 3072)
	s.rows = s.rows[:0]
	s.addrs = s.addrs[:0]
	s.idx = 0
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	defer s.Child.Close(ctx)
	for {
		row, ok, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		a := ctx.Work.Alloc(len(row), 8)
		b := ctx.Work.Bytes(a, len(row))
		copy(b, row)
		ctx.Rec.StoreRange(a, len(row))
		s.rows = append(s.rows, b)
		s.addrs = append(s.addrs, a)
	}

	cs := s.Child.Schema()
	off := cs.Offsets()[s.Col]
	col := cs[s.Col]
	less := func(a, b []byte) bool {
		switch col.Type {
		case TInt:
			return RowInt(a, off) < RowInt(b, off)
		case TFloat:
			return RowFloat(a, off) < RowFloat(b, off)
		default:
			return bytes.Compare(a[off:off+col.Width], b[off:off+col.Width]) < 0
		}
	}
	// Trace the sort's compare traffic: each comparison reads two keys.
	sort.SliceStable(s.rows, func(i, j int) bool {
		ctx.Rec.Exec(s.code, 12)
		ctx.Rec.Load(s.addrs[i]+mem.Addr(off), false)
		ctx.Rec.Load(s.addrs[j]+mem.Addr(off), false)
		if s.Desc {
			return less(s.rows[j], s.rows[i])
		}
		return less(s.rows[i], s.rows[j])
	})
	// Note: addrs no longer parallels rows after sorting; re-emission
	// below reads rows' true addresses via the slices themselves, so only
	// the compare loads above used addrs.
	return nil
}

// Close implements Op.
func (s *Sort) Close(ctx *Ctx) { s.rows = nil; s.addrs = nil }

// Next implements Op.
func (s *Sort) Next(ctx *Ctx) ([]byte, bool, error) {
	if s.idx >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.idx]
	s.idx++
	ctx.Rec.Exec(s.code, 8)
	return row, true, nil
}
