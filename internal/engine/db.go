package engine

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DB is one database instance: arena, buffer pool, catalog.
type DB struct {
	Arena *mem.Arena
	Pool  *storage.BufferPool
	Codes *mem.CodeMap

	mu     sync.RWMutex
	tables map[string]*Table
}

// Config sizes a database instance.
type Config struct {
	ArenaBytes int // simulated heap for pages + metadata (default 256 MB)
	Frames     int // buffer-pool frames (default: arena minus slack / page)
	MaxPages   int // page-table capacity (default: 2x frames)
}

func (c Config) withDefaults() Config {
	if c.ArenaBytes == 0 {
		c.ArenaBytes = 256 << 20
	}
	if c.Frames == 0 {
		// Leave 1/8 of the arena for metadata (page table, lock table,
		// log ring) and slack.
		c.Frames = c.ArenaBytes / storage.PageSize * 7 / 8
	}
	if c.MaxPages == 0 {
		c.MaxPages = 2 * c.Frames
	}
	return c
}

// NewDB creates an empty database.
func NewDB(cfg Config) *DB {
	cfg = cfg.withDefaults()
	arena := mem.NewArena(mem.HeapBase, cfg.ArenaBytes)
	codes := mem.NewCodeMap()
	// The "SQL layer": parser/planner/catalog code executed per statement.
	// Its large footprint is a defining property of OLTP instruction
	// streams (the paper's I-stall discussion).
	codes.Register("sql:frontend", 24<<10)
	pool := storage.NewBufferPool(arena, cfg.Frames, cfg.MaxPages, codes)
	return &DB{Arena: arena, Pool: pool, Codes: codes, tables: make(map[string]*Table)}
}

// Table is a named heap file with schema and secondary indexes.
type Table struct {
	Name    string
	Schema  Schema
	Offs    []int
	Heap    *storage.HeapFile
	indexes map[string]*Index
	mu      sync.RWMutex
}

// Index is a B+tree over an integer key derived from each row.
type Index struct {
	Name  string
	Tree  *storage.BTree
	KeyOf func(row []byte) int64
}

// CreateTable registers a new table with the given physical layout.
func (db *DB) CreateTable(name string, schema Schema, layout storage.Layout) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("engine: table %q exists", name)
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		Offs:    schema.Offsets(),
		Heap:    storage.NewHeapFile(db.Pool, layout, schema.Widths(), db.Codes, name),
		indexes: make(map[string]*Index),
	}
	db.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return t, nil
}

// MustTable is Table for static names known to exist.
func (db *DB) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames lists tables (for the shell).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// CreateIndex adds a secondary index computing its int64 key with keyOf.
func (db *DB) CreateIndex(t *Table, name string, keyOf func(row []byte) int64) (*Index, error) {
	tree, err := storage.NewBTree(db.Pool, db.Codes, name)
	if err != nil {
		return nil, err
	}
	idx := &Index{Name: name, Tree: tree, KeyOf: keyOf}
	t.mu.Lock()
	t.indexes[name] = idx
	t.mu.Unlock()
	return idx, nil
}

// Index returns the named index.
func (t *Table) Index(name string) (*Index, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[name]
	if !ok {
		return nil, fmt.Errorf("engine: table %q has no index %q", t.Name, name)
	}
	return idx, nil
}

// MustIndex is Index for static names.
func (t *Table) MustIndex(name string) *Index {
	idx, err := t.Index(name)
	if err != nil {
		panic(err)
	}
	return idx
}

// Insert encodes vals, appends the row, and maintains all indexes. It
// returns the new row's RID.
func (t *Table) Insert(rec *trace.Recorder, vals []Value) (storage.RID, error) {
	row := make([]byte, t.Schema.RowWidth())
	if err := t.Schema.EncodeRow(row, vals); err != nil {
		return storage.RID{}, err
	}
	return t.InsertRow(rec, row)
}

// InsertRow appends a pre-encoded row and maintains indexes.
func (t *Table) InsertRow(rec *trace.Recorder, row []byte) (storage.RID, error) {
	var rid storage.RID
	var err error
	if t.Heap.Layout() == storage.NSM {
		rid, err = t.Heap.Insert(rec, row)
	} else {
		fields := make([][]byte, len(t.Schema))
		off := 0
		for i, c := range t.Schema {
			fields[i] = row[off : off+c.Width]
			off += c.Width
		}
		rid, err = t.Heap.InsertFields(rec, fields)
	}
	if err != nil {
		return rid, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, idx := range t.indexes {
		if err := idx.Tree.Insert(rec, idx.KeyOf(row), rid.Pack()); err != nil {
			return rid, err
		}
	}
	return rid, nil
}

// Version returns the table's write-version counter (see
// storage.HeapFile.Version): the result-reuse cache keys entries by it so
// a write — including one inside a transaction that later commits — can
// never be masked by a stale cached aggregate.
func (t *Table) Version() uint64 { return t.Heap.Version() }

// Fetch reads the encoded row at rid (NSM tables).
func (t *Table) Fetch(rec *trace.Recorder, rid storage.RID) ([]byte, error) {
	return t.Heap.FetchNSM(rec, rid)
}

// Update overwrites the row at rid and is only valid when no indexed key
// changed (the OLTP workloads update balances and quantities, not keys).
func (t *Table) Update(rec *trace.Recorder, rid storage.RID, row []byte) error {
	return t.Heap.UpdateNSM(rec, rid, row)
}

// Ctx carries per-worker execution state through operators.
type Ctx struct {
	Rec  *trace.Recorder
	DB   *DB
	Work *mem.Arena // per-worker workspace for hash tables and results

	// JoinMode is the hash-join strategy operators fall back to when
	// their plan does not pin one (see JoinMode); the zero value is
	// JoinAuto.
	JoinMode JoinMode
	// Join receives join-build observations (chain lengths, partition
	// fanout); the zero value discards them.
	Join obs.JoinMetrics
}

// NewCtx builds an execution context with a private workspace of workBytes
// at the worker's slot in the workspace region.
func (db *DB) NewCtx(rec *trace.Recorder, worker, workBytes int) *Ctx {
	base := mem.WorkBase + mem.Addr(worker)*mem.Addr(workBytes+(64<<10))
	return &Ctx{Rec: rec, DB: db, Work: mem.NewArena(base, workBytes)}
}
