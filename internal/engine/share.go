// SharedScan: the consumer side of cross-query work sharing. A circular
// shared scan (the share package's registry) runs one producer pass over a
// table and fans identical row blocks out to every attached query; each
// query's SharedScan applies its own predicates and projection to the
// shared blocks. The batch currency is engine.Block — the same type every
// other execution mode uses — so shared batches flow into vectorized
// plans with no re-materialization at the layer boundary. Consumers pay a
// tight vectorized filter loop per block instead of a full page-decode
// pipeline per tuple — the QPipe work-sharing opportunity the paper's
// Section 6 argues CMP database servers must exploit.

package engine

import (
	"fmt"

	"repro/internal/mem"
)

// BatchSource supplies the row blocks of one rotation of a circular
// shared scan. It is implemented by the share package's Reader; the
// interface lives here so the engine does not depend on the registry.
//
// A source is one-shot: NextBlock walks exactly one full rotation of the
// table (from wherever the consumer attached, wrapping around) and then
// reports ok=false. The returned block holds rows in the table's NSM row
// encoding with heap-page provenance in Pages; it is valid until the
// following NextBlock or Close call.
type BatchSource interface {
	NextBlock() (*Block, bool)
	// Err reports a producer-side scan failure; valid once NextBlock has
	// returned ok=false.
	Err() error
	// Close detaches from the shared scan, releasing any undelivered
	// blocks. It is idempotent, and safe whether or not the rotation
	// completed.
	Close()
}

// Per-block-row instruction costs of the vectorized consumer loop: a
// shared-scan consumer touches rows the producer already decoded, so its
// per-row work is a branch-light filter over contiguous memory, far
// cheaper than a private scan's per-tuple page decode — that asymmetry is
// where cross-query sharing wins.
const (
	sharedRowCost     = 4 // per row: load/advance/branch of the filter loop
	sharedPredCost    = 4 // per row per predicate: vectorized compare
	sharedProjectCost = 8 // per qualifying row: projection copy
)

// SharedScan reads a table through an in-flight circular shared scan
// instead of a private scan: Source delivers every row of the table
// exactly once (one full rotation from the attach point), and the
// operator filters with Preds and projects Cols per query, emitting its
// own blocks. Row order is the circular page order from the rotation's
// start page — identical to a scan with StartPage set to that page — so
// results match unshared execution bit for bit when compared at the same
// origin. It implements VecOp; wrap it in a RowAdapter for row-at-a-time
// consumers.
type SharedScan struct {
	Table  *Table
	Preds  []Pred
	Cols   []int // projected columns; nil for all
	Source BatchSource

	out  Schema
	blk  *Block
	cp   *CompiledPreds
	code mem.CodeSeg
}

// NextBlock implements VecOp: it filters and projects the next shared
// block of the rotation into the operator's own output block.
func (s *SharedScan) NextBlock(ctx *Ctx) (*Block, bool, error) {
	for {
		in, ok := s.Source.NextBlock()
		if !ok {
			return nil, false, s.Source.Err()
		}
		n := in.N()
		// The whole batch is read sequentially by the vectorized filter;
		// charge its loads and per-row filter instructions at the block
		// boundary (the consumer's reads of another core's freshly written
		// block are the shared-L2 traffic that replaces a private scan of
		// the base table).
		ctx.Rec.Exec(s.code, 24+n*(sharedRowCost+sharedPredCost*len(s.Preds)))
		in.TraceRows(ctx.Rec)
		if s.blk == nil || s.blk.Cap() < in.Cap() {
			s.blk = NewBlock(ctx.Work, in.Cap(), s.out.RowWidth())
		}
		s.blk.Reset()
		s.blk.Pages = in.Pages
		for i := 0; i < n; i++ {
			row := in.RowAt(i)
			if s.cp.Pass(row) {
				projectInto(s.blk, row, s.Table.Schema, s.Table.Offs, s.Cols)
			}
		}
		if s.blk.N() == 0 {
			continue
		}
		ctx.Rec.Exec(s.code, s.blk.N()*sharedProjectCost)
		s.blk.TraceAppended(ctx.Rec, 0)
		return s.blk, true, nil
	}
}

// Schema implements VecOp.
func (s *SharedScan) Schema() Schema {
	if s.out == nil {
		if s.Cols == nil {
			s.out = s.Table.Schema
		} else {
			s.out = s.Table.Schema.Project(s.Cols)
		}
	}
	return s.out
}

// Open implements VecOp. A SharedScan is one-shot: its source's rotation
// cannot be replayed, so Open must be called at most once.
func (s *SharedScan) Open(ctx *Ctx) error {
	if s.Source == nil {
		return fmt.Errorf("engine: shared scan of %q without a source", s.Table.Name)
	}
	s.Schema()
	if s.cp == nil {
		// Shared scans always run the compiled conjunction: it evaluates
		// the same comparisons in the same order as the interpreted path,
		// and the flat per-row filter charge above is unchanged.
		s.cp = CompilePreds(s.Preds, s.Table.Schema, s.Table.Offs)
	}
	s.code = ctx.DB.Codes.Register("op:sharedscan", 1536)
	return nil
}

// Close implements VecOp: it detaches from the shared scan (idempotent).
func (s *SharedScan) Close(ctx *Ctx) {
	if s.Source != nil {
		s.Source.Close()
		s.Source = nil
	}
}
