// SharedScan: the consumer side of cross-query work sharing. A circular
// shared scan (the share package's registry) runs one producer pass over a
// table and fans identical row batches out to every attached query; each
// query's SharedScan applies its own predicates and projection to the
// shared batches. Consumers therefore pay a tight vectorized filter loop
// per batch instead of a full page-decode pipeline per tuple — the QPipe
// work-sharing opportunity the paper's Section 6 argues CMP database
// servers must exploit.

package engine

import (
	"fmt"

	"repro/internal/mem"
)

// BatchSource supplies the row batches of one rotation of a circular
// shared scan. It is implemented by the share package's Reader; the
// interface lives here so the engine does not depend on the registry.
//
// A source is one-shot: NextBatch walks exactly one full rotation of the
// table (from wherever the consumer attached, wrapping around) and then
// reports ok=false. The returned buffer holds nrows contiguous rows in
// the table's NSM row encoding, living at simulated address addr; it is
// valid until the following NextBatch or Close call.
type BatchSource interface {
	NextBatch() (rows []byte, addr mem.Addr, nrows int, ok bool)
	// Err reports a producer-side scan failure; valid once NextBatch has
	// returned ok=false.
	Err() error
	// Close detaches from the shared scan, releasing any undelivered
	// batches. It must be called exactly once, and is safe whether or not
	// the rotation completed.
	Close()
}

// Per-batch-row instruction costs of the vectorized consumer loop: a
// shared-scan consumer touches rows the producer already decoded, so its
// per-row work is a branch-light filter over contiguous memory, far
// cheaper than SeqScan's per-tuple page decode (70 instructions plus
// latching) — that asymmetry is where cross-query sharing wins.
const (
	sharedRowCost     = 4 // per row: load/advance/branch of the filter loop
	sharedPredCost    = 4 // per row per predicate: vectorized compare
	sharedProjectCost = 8 // per qualifying row: projection copy
)

// SharedScan reads a table through an in-flight circular shared scan
// instead of a private SeqScan: Source delivers every row of the table
// exactly once (one full rotation from the attach point), and the
// operator filters with Preds and projects Cols per query. Row order is
// the circular page order from the rotation's start page — identical to a
// SeqScan with StartPage set to that page — so results match unshared
// execution bit for bit when compared at the same origin.
type SharedScan struct {
	Table  *Table
	Preds  []Pred
	Cols   []int // projected columns; nil for all
	Source BatchSource

	out     Schema
	buf     []byte
	rowW    int
	cur     []byte
	curAddr mem.Addr
	curN    int
	curIdx  int
	code    mem.CodeSeg
}

// Schema implements Op.
func (s *SharedScan) Schema() Schema {
	if s.out == nil {
		if s.Cols == nil {
			s.out = s.Table.Schema
		} else {
			s.out = s.Table.Schema.Project(s.Cols)
		}
	}
	return s.out
}

// Open implements Op. A SharedScan is one-shot: its source's rotation
// cannot be replayed, so Open must be called at most once.
func (s *SharedScan) Open(ctx *Ctx) error {
	if s.Source == nil {
		return fmt.Errorf("engine: shared scan of %q without a source", s.Table.Name)
	}
	s.Schema()
	s.rowW = s.Table.Schema.RowWidth()
	s.buf = make([]byte, s.out.RowWidth())
	s.code = ctx.DB.Codes.Register("op:sharedscan", 1536)
	s.cur, s.curN, s.curIdx = nil, 0, 0
	return nil
}

// Close implements Op: it detaches from the shared scan.
func (s *SharedScan) Close(ctx *Ctx) {
	if s.Source != nil {
		s.Source.Close()
		s.Source = nil
	}
}

// Next implements Op: it filters and projects the current batch, pulling
// the next batch from the rotation when the current one drains.
func (s *SharedScan) Next(ctx *Ctx) ([]byte, bool, error) {
	for {
		if s.curIdx >= s.curN {
			rows, addr, n, ok := s.Source.NextBatch()
			if !ok {
				return nil, false, s.Source.Err()
			}
			s.cur, s.curAddr, s.curN, s.curIdx = rows, addr, n, 0
			// The whole batch is read sequentially by the vectorized
			// filter; charge its loads and per-row filter instructions at
			// the batch boundary (the consumer's reads of another core's
			// freshly written batch are the shared-L2 traffic that
			// replaces a private scan of the base table).
			ctx.Rec.Exec(s.code, 24+n*(sharedRowCost+sharedPredCost*len(s.Preds)))
			ctx.Rec.LoadRange(addr, n*s.rowW)
			continue
		}
		row := s.cur[s.curIdx*s.rowW : (s.curIdx+1)*s.rowW]
		s.curIdx++
		pass := true
		for _, p := range s.Preds {
			if !p.Eval(s.Table.Schema, s.Table.Offs, row) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		ctx.Rec.Exec(s.code, sharedProjectCost)
		if s.Cols == nil {
			copy(s.buf, row)
		} else {
			off := 0
			for _, c := range s.Cols {
				w := s.Table.Schema[c].Width
				copy(s.buf[off:off+w], row[s.Table.Offs[c]:s.Table.Offs[c]+w])
				off += w
			}
		}
		return s.buf, true, nil
	}
}
