package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/trace"
)

// BTree is a B+tree over buffer-pool pages mapping int64 keys to uint64
// payloads (packed RIDs). Duplicate keys are allowed; entries with equal
// keys are adjacent in leaf order.
//
// Descents emit dependent loads — each node's search depends on the
// parent's child pointer — which is exactly the pointer-chasing pattern
// that denies fat-camp cores their memory-level parallelism on OLTP.
type BTree struct {
	mu     sync.RWMutex
	pool   *BufferPool
	root   PageID
	height int

	codeSearch mem.CodeSeg
	codeInsert mem.CodeSeg
}

// Node page layout (fixed caps chosen to fit 8 KB pages):
//
//	[0]    leaf flag
//	[2:4]  entry count n
//	[4:8]  leaf: next-leaf page id; inner: unused
//	keys:  8 bytes each at keyOff
//	leaf:  values, 8 bytes each at leafValOff
//	inner: children, 4 bytes each at childOff (n+1 children)
const (
	btKeyOff     = 8
	btLeafCap    = 500
	btInnerCap   = 500
	btLeafValOff = btKeyOff + btLeafCap*8
	btChildOff   = btKeyOff + btInnerCap*8
)

// NewBTree creates an empty tree.
func NewBTree(pool *BufferPool, codes *mem.CodeMap, name string) (*BTree, error) {
	t := &BTree{
		pool:       pool,
		codeSearch: codes.Register("btree:search:"+name, 3072),
		codeInsert: codes.Register("btree:insert:"+name, 4096),
	}
	ref, err := pool.NewPage(nil)
	if err != nil {
		return nil, err
	}
	defer ref.Release()
	initLeaf(ref.Data)
	t.root = ref.ID
	t.height = 1
	return t, nil
}

func initLeaf(d []byte) {
	d[0] = 1
	binary.LittleEndian.PutUint16(d[2:4], 0)
	binary.LittleEndian.PutUint32(d[4:8], 0)
}

func initInner(d []byte) {
	d[0] = 0
	binary.LittleEndian.PutUint16(d[2:4], 0)
}

func nodeIsLeaf(d []byte) bool { return d[0] == 1 }
func nodeN(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setNodeN(d []byte, n int) { binary.LittleEndian.PutUint16(d[2:4], uint16(n)) }

func nodeKey(d []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(d[btKeyOff+i*8:]))
}
func setNodeKey(d []byte, i int, k int64) {
	binary.LittleEndian.PutUint64(d[btKeyOff+i*8:], uint64(k))
}
func leafVal(d []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(d[btLeafValOff+i*8:])
}
func setLeafVal(d []byte, i int, v uint64) {
	binary.LittleEndian.PutUint64(d[btLeafValOff+i*8:], v)
}
func leafNext(d []byte) PageID { return PageID(binary.LittleEndian.Uint32(d[4:8])) }
func setLeafNext(d []byte, p PageID) {
	binary.LittleEndian.PutUint32(d[4:8], uint32(p))
}
func innerChild(d []byte, i int) PageID {
	return PageID(binary.LittleEndian.Uint32(d[btChildOff+i*4:]))
}
func setInnerChild(d []byte, i int, p PageID) {
	binary.LittleEndian.PutUint32(d[btChildOff+i*4:], uint32(p))
}

// Height returns the tree height in levels.
func (t *BTree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// searchNode finds the first index i with key(i) >= k, emitting the binary
// search's probe loads (dependent: each probe's location depends on the
// previous comparison).
func searchNode(rec *trace.Recorder, d []byte, addr mem.Addr, k int64) int {
	lo, hi := 0, nodeN(d)
	for lo < hi {
		mid := (lo + hi) / 2
		rec.Load(addr+mem.Addr(btKeyOff+mid*8), true)
		if nodeKey(d, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descend walks from the root to the leaf that would hold k, returning the
// pinned leaf. Caller releases.
func (t *BTree) descend(rec *trace.Recorder, k int64) (*PageRef, error) {
	pid := t.root
	for {
		ref, err := t.pool.Get(rec, pid)
		if err != nil {
			return nil, err
		}
		rec.Exec(t.codeSearch, 90)
		if nodeIsLeaf(ref.Data) {
			return ref, nil
		}
		i := searchNode(rec, ref.Data, ref.Addr, k)
		// On equal keys the child right of the separator holds them.
		if i < nodeN(ref.Data) && nodeKey(ref.Data, i) == k {
			i++
		}
		rec.Load(ref.Addr+mem.Addr(btChildOff+i*4), true)
		pid = innerChild(ref.Data, i)
		ref.Release()
	}
}

// Get returns the first payload stored under k.
func (t *BTree) Get(rec *trace.Recorder, k int64) (uint64, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, err := t.descend(rec, k)
	if err != nil {
		return 0, false, err
	}
	defer leaf.Release()
	i := searchNode(rec, leaf.Data, leaf.Addr, k)
	if i < nodeN(leaf.Data) && nodeKey(leaf.Data, i) == k {
		rec.Load(leaf.Addr+mem.Addr(btLeafValOff+i*8), true)
		return leafVal(leaf.Data, i), true, nil
	}
	return 0, false, nil
}

// Insert adds (k, v). Duplicates are permitted.
func (t *BTree) Insert(rec *trace.Recorder, k int64, v uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec.Exec(t.codeInsert, 120)
	sep, right, grew, err := t.insertAt(rec, t.root, k, v)
	if err != nil {
		return err
	}
	if !grew {
		return nil
	}
	// Root split: new root with two children.
	ref, err := t.pool.NewPage(rec)
	if err != nil {
		return err
	}
	defer ref.Release()
	initInner(ref.Data)
	setNodeN(ref.Data, 1)
	setNodeKey(ref.Data, 0, sep)
	setInnerChild(ref.Data, 0, t.root)
	setInnerChild(ref.Data, 1, right)
	rec.StoreRange(ref.Addr, 32)
	t.root = ref.ID
	t.height++
	return nil
}

// insertAt inserts into the subtree rooted at pid. When the child splits
// it returns the separator key and new right sibling.
func (t *BTree) insertAt(rec *trace.Recorder, pid PageID, k int64, v uint64) (sep int64, right PageID, grew bool, err error) {
	ref, err := t.pool.Get(rec, pid)
	if err != nil {
		return 0, 0, false, err
	}
	defer ref.Release()
	d, addr := ref.Data, ref.Addr

	if nodeIsLeaf(d) {
		i := searchNode(rec, d, addr, k)
		n := nodeN(d)
		if n < btLeafCap {
			leafInsertAt(rec, d, addr, i, k, v)
			return 0, 0, false, nil
		}
		// Split leaf.
		newRef, err := t.pool.NewPage(rec)
		if err != nil {
			return 0, 0, false, err
		}
		defer newRef.Release()
		nd := newRef.Data
		initLeaf(nd)
		half := n / 2
		for j := half; j < n; j++ {
			setNodeKey(nd, j-half, nodeKey(d, j))
			setLeafVal(nd, j-half, leafVal(d, j))
		}
		setNodeN(nd, n-half)
		setNodeN(d, half)
		setLeafNext(nd, leafNext(d))
		setLeafNext(d, newRef.ID)
		rec.StoreRange(newRef.Addr, (n-half)*8)
		if k >= nodeKey(nd, 0) {
			i = searchNode(rec, nd, newRef.Addr, k)
			leafInsertAt(rec, nd, newRef.Addr, i, k, v)
		} else {
			i = searchNode(rec, d, addr, k)
			leafInsertAt(rec, d, addr, i, k, v)
		}
		return nodeKey(nd, 0), newRef.ID, true, nil
	}

	i := searchNode(rec, d, addr, k)
	if i < nodeN(d) && nodeKey(d, i) == k {
		i++
	}
	rec.Load(addr+mem.Addr(btChildOff+i*4), true)
	child := innerChild(d, i)
	csep, cright, cgrew, err := t.insertAt(rec, child, k, v)
	if err != nil || !cgrew {
		return 0, 0, false, err
	}
	n := nodeN(d)
	if n < btInnerCap {
		innerInsertAt(rec, d, addr, i, csep, cright)
		return 0, 0, false, nil
	}
	// Split inner node.
	newRef, err := t.pool.NewPage(rec)
	if err != nil {
		return 0, 0, false, err
	}
	defer newRef.Release()
	nd := newRef.Data
	initInner(nd)
	half := n / 2
	promote := nodeKey(d, half)
	for j := half + 1; j < n; j++ {
		setNodeKey(nd, j-half-1, nodeKey(d, j))
	}
	for j := half + 1; j <= n; j++ {
		setInnerChild(nd, j-half-1, innerChild(d, j))
	}
	setNodeN(nd, n-half-1)
	setNodeN(d, half)
	rec.StoreRange(newRef.Addr, (n-half)*12)
	if csep >= promote {
		j := searchNode(rec, nd, newRef.Addr, csep)
		innerInsertAt(rec, nd, newRef.Addr, j, csep, cright)
	} else {
		j := searchNode(rec, d, addr, csep)
		innerInsertAt(rec, d, addr, j, csep, cright)
	}
	return promote, newRef.ID, true, nil
}

func leafInsertAt(rec *trace.Recorder, d []byte, addr mem.Addr, i int, k int64, v uint64) {
	n := nodeN(d)
	copy(d[btKeyOff+(i+1)*8:btKeyOff+(n+1)*8], d[btKeyOff+i*8:btKeyOff+n*8])
	copy(d[btLeafValOff+(i+1)*8:btLeafValOff+(n+1)*8], d[btLeafValOff+i*8:btLeafValOff+n*8])
	setNodeKey(d, i, k)
	setLeafVal(d, i, v)
	setNodeN(d, n+1)
	rec.Store(addr + mem.Addr(btKeyOff+i*8))
	rec.Store(addr + mem.Addr(btLeafValOff+i*8))
}

func innerInsertAt(rec *trace.Recorder, d []byte, addr mem.Addr, i int, k int64, right PageID) {
	n := nodeN(d)
	copy(d[btKeyOff+(i+1)*8:btKeyOff+(n+1)*8], d[btKeyOff+i*8:btKeyOff+n*8])
	copy(d[btChildOff+(i+2)*4:btChildOff+(n+2)*4], d[btChildOff+(i+1)*4:btChildOff+(n+1)*4])
	setNodeKey(d, i, k)
	setInnerChild(d, i+1, right)
	setNodeN(d, n+1)
	rec.Store(addr + mem.Addr(btKeyOff+i*8))
	rec.Store(addr + mem.Addr(btChildOff+(i+1)*4))
}

// Delete removes one entry matching (k, v); it reports whether one was
// found. Leaves may underflow; they are not rebalanced (deletes are rare
// in the workloads — TPC-C's Delivery — and underflow does not affect
// correctness).
func (t *BTree) Delete(rec *trace.Recorder, k int64, v uint64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, err := t.descend(rec, k)
	if err != nil {
		return false, err
	}
	defer leaf.Release()
	d, addr := leaf.Data, leaf.Addr
	// Walk duplicates within the leaf (duplicates never straddle leaves
	// except transiently after splits; acceptable for the workloads).
	for i := searchNode(rec, d, addr, k); i < nodeN(d) && nodeKey(d, i) == k; i++ {
		rec.Load(addr+mem.Addr(btLeafValOff+i*8), true)
		if leafVal(d, i) != v {
			continue
		}
		n := nodeN(d)
		copy(d[btKeyOff+i*8:btKeyOff+(n-1)*8], d[btKeyOff+(i+1)*8:btKeyOff+n*8])
		copy(d[btLeafValOff+i*8:btLeafValOff+(n-1)*8], d[btLeafValOff+(i+1)*8:btLeafValOff+n*8])
		setNodeN(d, n-1)
		rec.Store(addr + mem.Addr(btKeyOff+i*8))
		return true, nil
	}
	return false, nil
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	tree *BTree
	pid  PageID
	idx  int
}

// Seek positions a cursor at the first entry with key >= k.
func (t *BTree) Seek(rec *trace.Recorder, k int64) (*Cursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, err := t.descend(rec, k)
	if err != nil {
		return nil, err
	}
	defer leaf.Release()
	i := searchNode(rec, leaf.Data, leaf.Addr, k)
	return &Cursor{tree: t, pid: leaf.ID, idx: i}, nil
}

// Next returns the cursor's current entry and advances, or ok=false at
// the end of the tree. Each step holds the tree's read lock, so steps
// never observe a leaf mid-split; between steps a concurrent insert may
// shift entries within a leaf, which scans of the simulated workloads
// tolerate (they read a consistent prefix, not a serializable snapshot).
func (c *Cursor) Next(rec *trace.Recorder) (k int64, v uint64, ok bool, err error) {
	c.tree.mu.RLock()
	defer c.tree.mu.RUnlock()
	for {
		if c.pid == InvalidPage {
			return 0, 0, false, nil
		}
		ref, err := c.tree.pool.Get(rec, c.pid)
		if err != nil {
			return 0, 0, false, err
		}
		if c.idx < nodeN(ref.Data) {
			k = nodeKey(ref.Data, c.idx)
			v = leafVal(ref.Data, c.idx)
			rec.Load(ref.Addr+mem.Addr(btKeyOff+c.idx*8), true)
			rec.Load(ref.Addr+mem.Addr(btLeafValOff+c.idx*8), false)
			c.idx++
			ref.Release()
			return k, v, true, nil
		}
		c.pid = leafNext(ref.Data)
		c.idx = 0
		ref.Release()
	}
}

// Validate checks structural invariants (sorted keys, consistent heights)
// and returns the entry count. Used by tests.
func (t *BTree) Validate() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.validate(t.root, t.height)
}

func (t *BTree) validate(pid PageID, depth int) (int, error) {
	ref, err := t.pool.Get(nil, pid)
	if err != nil {
		return 0, err
	}
	defer ref.Release()
	d := ref.Data
	n := nodeN(d)
	for i := 1; i < n; i++ {
		if nodeKey(d, i-1) > nodeKey(d, i) {
			return 0, fmt.Errorf("btree: page %d keys out of order at %d", pid, i)
		}
	}
	if nodeIsLeaf(d) {
		if depth != 1 {
			return 0, fmt.Errorf("btree: leaf at depth %d", depth)
		}
		return n, nil
	}
	if depth <= 1 {
		return 0, fmt.Errorf("btree: inner node at leaf depth")
	}
	total := 0
	for i := 0; i <= n; i++ {
		c, err := t.validate(innerChild(d, i), depth-1)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
