// Package storage implements the database engine's physical layer over the
// simulated address space: slotted (NSM) and PAX page layouts, a buffer
// pool with LRU eviction, heap files, and a B+tree index.
//
// Every read or write of page bytes both performs the real operation on
// host-backed memory and, when a trace recorder is supplied, emits the
// corresponding simulated memory references. The trace therefore carries
// the genuine locality of the layout in use — the paper's discussion of
// cache-conscious layouts (PAX [3]) is reproducible, not asserted.
package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// PageSize is the size of every database page.
const PageSize = 8192

// Slotted is a view of an NSM (slotted) page: a slot directory grows from
// the front, tuple bodies grow from the back.
//
// Layout:
//
//	[0:2]  slot count
//	[2:4]  free-space offset (start of tuple area)
//	[4:..] slot directory, 4 bytes per slot: tuple offset u16, length u16
//	[...:] tuple bodies
type Slotted struct {
	data []byte
	addr mem.Addr
}

const slottedHeader = 4

// AsSlotted interprets a page buffer at simulated address addr.
func AsSlotted(data []byte, addr mem.Addr) Slotted {
	if len(data) != PageSize {
		panic(fmt.Sprintf("storage: page buffer %d bytes, want %d", len(data), PageSize))
	}
	return Slotted{data: data, addr: addr}
}

// Init formats the page empty.
func (p Slotted) Init() {
	binary.LittleEndian.PutUint16(p.data[0:2], 0)
	binary.LittleEndian.PutUint16(p.data[2:4], PageSize)
}

// NumSlots returns the slot count, including deleted slots.
func (p Slotted) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.data[0:2]))
}

func (p Slotted) freeOff() int {
	return int(binary.LittleEndian.Uint16(p.data[2:4]))
}

func (p Slotted) slotOff(slot int) int { return slottedHeader + slot*4 }

// FreeSpace returns the bytes available for one more tuple (including its
// slot entry).
func (p Slotted) FreeSpace() int {
	free := p.freeOff() - p.slotOff(p.NumSlots()) - 4
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores tuple and returns its slot number, or ok=false when the
// page is full. It records the header read and tuple write.
func (p Slotted) Insert(rec *trace.Recorder, tuple []byte) (slot int, ok bool) {
	rec.Load(p.addr, false) // header
	if len(tuple) > p.FreeSpace() {
		return 0, false
	}
	n := p.NumSlots()
	off := p.freeOff() - len(tuple)
	copy(p.data[off:], tuple)
	so := p.slotOff(n)
	binary.LittleEndian.PutUint16(p.data[so:], uint16(off))
	binary.LittleEndian.PutUint16(p.data[so+2:], uint16(len(tuple)))
	binary.LittleEndian.PutUint16(p.data[0:2], uint16(n+1))
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(off))
	rec.Store(p.addr + mem.Addr(so))
	rec.StoreRange(p.addr+mem.Addr(off), len(tuple))
	return n, true
}

// Tuple returns the bytes of slot, or nil if the slot is deleted. It
// records the slot-directory read and the tuple-body read.
func (p Slotted) Tuple(rec *trace.Recorder, slot int) []byte {
	if slot < 0 || slot >= p.NumSlots() {
		panic(fmt.Sprintf("storage: slot %d out of range (%d slots)", slot, p.NumSlots()))
	}
	so := p.slotOff(slot)
	off := int(binary.LittleEndian.Uint16(p.data[so:]))
	ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
	rec.Load(p.addr+mem.Addr(so), false)
	if ln == 0 {
		return nil
	}
	// The tuple body address comes from the slot entry just read: a true
	// dependence that bounds how far out-of-order cores can run ahead.
	rec.LoadRangeDep(p.addr+mem.Addr(off), ln)
	return p.data[off : off+ln]
}

// ScanTuples visits every live tuple of the page in slot order with
// batched tracing: one header load, one ranged load of the slot
// directory, and one dependent ranged load of the occupied tuple area,
// instead of two trace records per tuple. It is the row-extraction
// primitive of the vectorized scan — the per-tuple work left is the
// caller's tight loop over host memory.
func (p Slotted) ScanTuples(rec *trace.Recorder, visit func(slot int, tuple []byte)) {
	rec.Load(p.addr, false)
	n := p.NumSlots()
	if n == 0 {
		return
	}
	rec.LoadRange(p.addr+mem.Addr(slottedHeader), n*4)
	// The tuple area [freeOff, PageSize) address comes from the header
	// just read: one true dependence per page instead of one per tuple.
	if body := PageSize - p.freeOff(); body > 0 {
		rec.LoadRangeDep(p.addr+mem.Addr(p.freeOff()), body)
	}
	for s := 0; s < n; s++ {
		so := p.slotOff(s)
		off := int(binary.LittleEndian.Uint16(p.data[so:]))
		ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
		if ln == 0 {
			continue
		}
		visit(s, p.data[off:off+ln])
	}
}

// CopyTuples copies every live tuple's bytes into dst at stride-spaced
// row slots, in slot order, returning the rows copied. It is the
// untraced bulk companion to ScanTuples for the native fast path: the
// caller traces (or skips tracing) the page read itself, and the
// per-tuple work collapses to one slot-directory decode and one copy —
// no callback dispatch. The destination must hold every live tuple and
// every tuple must fit its stride slot; violations return a counted
// error instead of silently truncating the tail.
func (p Slotted) CopyTuples(dst []byte, stride int) (int, error) {
	n := p.NumSlots()
	live := 0
	for s := 0; s < n; s++ {
		so := p.slotOff(s)
		ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
		if ln == 0 {
			continue
		}
		if ln > stride {
			return 0, fmt.Errorf("storage: CopyTuples slot %d is %d bytes, exceeds stride %d", s, ln, stride)
		}
		live++
	}
	if need := live * stride; need > len(dst) {
		return 0, fmt.Errorf("storage: CopyTuples needs %d bytes for %d live tuples (stride %d), dst holds %d",
			need, live, stride, len(dst))
	}
	k := 0
	for s := 0; s < n; s++ {
		so := p.slotOff(s)
		off := int(binary.LittleEndian.Uint16(p.data[so:]))
		ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
		if ln == 0 {
			continue
		}
		copy(dst[k*stride:k*stride+ln], p.data[off:off+ln])
		k++
	}
	return k, nil
}

// TupleSpan reports whether the page's live tuples form one dense,
// stride-aligned span that a zero-copy block can alias directly: every
// slot live, every tuple exactly stride bytes, slot s stored at
// PageSize-(s+1)*stride (the layout pure fixed-width appends always
// produce). On success it returns the span's start offset and tuple
// count; tuples sit in *reverse* slot order within the span (appends grow
// from the back), so the borrower must attach a reversing selection
// vector to preserve slot order. Pages with deleted slots, variable
// lengths, or relocated tuples report ok=false and take the copy path.
func (p Slotted) TupleSpan(stride int) (off, n int, ok bool) {
	n = p.NumSlots()
	if n == 0 || stride <= 0 || stride > PageSize {
		return 0, 0, false
	}
	// A slot entry is offset u16 | length u16, so the pure-append layout
	// makes slot s's whole entry the constant PageSize-(s+1)*stride |
	// stride<<16 — one descending u32 compare per slot instead of two
	// u16 decodes and two comparisons.
	want := uint32(PageSize-stride) | uint32(stride)<<16
	dir := p.data[slottedHeader : slottedHeader+n*4]
	for s := 0; s < n; s++ {
		if binary.LittleEndian.Uint32(dir[s*4:]) != want {
			return 0, 0, false
		}
		want -= uint32(stride)
	}
	return PageSize - n*stride, n, true
}

// TupleAddr returns the simulated address of slot's body (for callers that
// trace field-level access themselves).
func (p Slotted) TupleAddr(slot int) (mem.Addr, int) {
	so := p.slotOff(slot)
	off := int(binary.LittleEndian.Uint16(p.data[so:]))
	ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
	return p.addr + mem.Addr(off), ln
}

// Update overwrites slot in place; the new tuple must not be longer than
// the old one (fixed-width schemas always satisfy this).
func (p Slotted) Update(rec *trace.Recorder, slot int, tuple []byte) {
	so := p.slotOff(slot)
	off := int(binary.LittleEndian.Uint16(p.data[so:]))
	ln := int(binary.LittleEndian.Uint16(p.data[so+2:]))
	if len(tuple) > ln {
		panic(fmt.Sprintf("storage: in-place update grows tuple %d -> %d", ln, len(tuple)))
	}
	rec.Load(p.addr+mem.Addr(so), false)
	copy(p.data[off:off+len(tuple)], tuple)
	binary.LittleEndian.PutUint16(p.data[so+2:], uint16(len(tuple)))
	rec.StoreRange(p.addr+mem.Addr(off), len(tuple))
}

// Delete marks slot deleted (length 0); space is not reclaimed.
func (p Slotted) Delete(rec *trace.Recorder, slot int) {
	so := p.slotOff(slot)
	binary.LittleEndian.PutUint16(p.data[so+2:], 0)
	rec.Store(p.addr + mem.Addr(so))
}

// PAX is a view of a PAX page (Ailamaki et al. [3]): fixed-width columns
// stored in per-column minipages so a scan of few columns touches few
// cache lines.
//
// Layout:
//
//	[0:2] tuple count
//	[2:4] capacity
//	then one minipage per column, each capacity*width bytes.
type PAX struct {
	data   []byte
	addr   mem.Addr
	widths []int
	offs   []int // minipage offsets
	cap    int
}

const paxHeader = 4

// PAXCapacity returns how many tuples of the given column widths fit.
func PAXCapacity(widths []int) int {
	row := 0
	for _, w := range widths {
		row += w
	}
	if row == 0 {
		panic("storage: empty PAX schema")
	}
	return (PageSize - paxHeader) / row
}

// AsPAX interprets a page buffer with the given column widths.
func AsPAX(data []byte, addr mem.Addr, widths []int) PAX {
	if len(data) != PageSize {
		panic(fmt.Sprintf("storage: page buffer %d bytes, want %d", len(data), PageSize))
	}
	cp := PAXCapacity(widths)
	offs := make([]int, len(widths))
	off := paxHeader
	for i, w := range widths {
		offs[i] = off
		off += cp * w
	}
	return PAX{data: data, addr: addr, widths: widths, offs: offs, cap: cp}
}

// Init formats the page empty.
func (p PAX) Init() {
	binary.LittleEndian.PutUint16(p.data[0:2], 0)
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(p.cap))
}

// N returns the tuple count.
func (p PAX) N() int { return int(binary.LittleEndian.Uint16(p.data[0:2])) }

// Cap returns the page capacity in tuples.
func (p PAX) Cap() int { return p.cap }

// Append adds a tuple given as per-column encoded fields; ok=false when
// the page is full.
func (p PAX) Append(rec *trace.Recorder, fields [][]byte) (slot int, ok bool) {
	rec.Load(p.addr, false)
	n := p.N()
	if n >= p.cap {
		return 0, false
	}
	if len(fields) != len(p.widths) {
		panic(fmt.Sprintf("storage: %d fields for %d columns", len(fields), len(p.widths)))
	}
	for c, f := range fields {
		w := p.widths[c]
		if len(f) != w {
			panic(fmt.Sprintf("storage: column %d field %d bytes, want %d", c, len(f), w))
		}
		off := p.offs[c] + n*w
		copy(p.data[off:off+w], f)
		rec.StoreRange(p.addr+mem.Addr(off), w)
	}
	binary.LittleEndian.PutUint16(p.data[0:2], uint16(n+1))
	return n, true
}

// Field returns column c of tuple slot, recording only that minipage read
// — the PAX locality advantage.
func (p PAX) Field(rec *trace.Recorder, slot, c int) []byte {
	if slot < 0 || slot >= p.N() {
		panic(fmt.Sprintf("storage: PAX slot %d out of range (%d)", slot, p.N()))
	}
	w := p.widths[c]
	off := p.offs[c] + slot*w
	rec.LoadRange(p.addr+mem.Addr(off), w)
	return p.data[off : off+w]
}

// FieldAddr returns the simulated address of column c of tuple slot.
func (p PAX) FieldAddr(slot, c int) mem.Addr {
	return p.addr + mem.Addr(p.offs[c]+slot*p.widths[c])
}

// ColumnBytes returns the untraced host view of column c's minipage for
// the page's live tuples. Vectorized scans trace the read once with
// LoadColumn and then run a tight column loop over the values — the
// block-at-a-time evaluation PAX was designed for.
func (p PAX) ColumnBytes(c int) []byte {
	w := p.widths[c]
	off := p.offs[c]
	return p.data[off : off+p.N()*w]
}

// GatherColumn copies column c's values at the selected slots into a
// row-major destination: the value of selected slot sel[k] lands at
// dst[k*stride+off]. It is the untraced scatter-gather companion to
// ColumnBytes — vectorized scans trace the minipage read once with
// LoadColumn and then gather qualifying tuples through this one loop.
func (p PAX) GatherColumn(dst []byte, stride, off, c int, sel []int) {
	w := p.widths[c]
	mini := p.data[p.offs[c]:]
	for k, i := range sel {
		d := k*stride + off
		copy(dst[d:d+w], mini[i*w:(i+1)*w])
	}
}

// LoadColumn traces the read of column c's fields for slots [lo, hi) as
// one ranged load over the minipage.
func (p PAX) LoadColumn(rec *trace.Recorder, c, lo, hi int) {
	if hi <= lo {
		return
	}
	w := p.widths[c]
	rec.LoadRange(p.addr+mem.Addr(p.offs[c]+lo*w), (hi-lo)*w)
}

// WriteField overwrites column c of tuple slot.
func (p PAX) WriteField(rec *trace.Recorder, slot, c int, f []byte) {
	w := p.widths[c]
	if len(f) != w {
		panic(fmt.Sprintf("storage: column %d field %d bytes, want %d", c, len(f), w))
	}
	off := p.offs[c] + slot*w
	copy(p.data[off:off+w], f)
	rec.StoreRange(p.addr+mem.Addr(off), w)
}
