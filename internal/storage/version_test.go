package storage

import (
	"sync"
	"testing"

	"repro/internal/mem"
)

func testHeap(t *testing.T, layout Layout) *HeapFile {
	t.Helper()
	arena := mem.NewArena(mem.HeapBase, 8<<20)
	codes := mem.NewCodeMap()
	pool := NewBufferPool(arena, 512, 1024, codes)
	return NewHeapFile(pool, layout, []int{8, 8}, codes, "vtest")
}

// TestHeapVersionBumpsOnWrites pins the invariant the result-reuse cache
// depends on: every insert and in-place update advances Version, so a
// cache key minted before a write can never match after it.
func TestHeapVersionBumpsOnWrites(t *testing.T) {
	h := testHeap(t, NSM)
	if v := h.Version(); v != 0 {
		t.Fatalf("fresh heap version = %d, want 0", v)
	}
	row := make([]byte, 16)
	rid, err := h.Insert(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	if v := h.Version(); v != 1 {
		t.Fatalf("version after insert = %d, want 1", v)
	}
	if err := h.UpdateNSM(nil, rid, row); err != nil {
		t.Fatal(err)
	}
	if v := h.Version(); v != 2 {
		t.Fatalf("version after update = %d, want 2", v)
	}

	px := testHeap(t, PAXLayout)
	if _, err := px.InsertFields(nil, [][]byte{make([]byte, 8), make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if v := px.Version(); v != 1 {
		t.Fatalf("PAX version after insert = %d, want 1", v)
	}
}

// TestHeapVersionAtomicUnderConcurrency checks the counter is exact under
// concurrent writers (the txn workloads update heaps from many clients).
func TestHeapVersionAtomicUnderConcurrency(t *testing.T) {
	h := testHeap(t, NSM)
	row := make([]byte, 16)
	rid, err := h.Insert(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	const writers, updates = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < updates; i++ {
				if err := h.UpdateNSM(nil, rid, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := h.Version(); v != 1+writers*updates {
		t.Fatalf("version = %d, want %d", v, 1+writers*updates)
	}
}
