// Tests for the zero-copy storage primitives: TupleSpan's dense-span
// detection (the gate every borrowed NSM page must pass), CopyTuples'
// counted-error hardening, and the PageLease lifecycle — release exactly
// once, refusal to evict a leased frame, and a panic on double release.

package storage

import (
	"bytes"
	"strings"
	"testing"
)

// spanPage fills a fresh slotted page with as many stride-byte tuples as
// fit (the pure-append layout TupleSpan recognizes) and returns the page
// and tuple count. Tuple s's bytes are all byte(s+1).
func spanPage(t *testing.T, stride int) (Slotted, []byte, int) {
	t.Helper()
	buf := make([]byte, PageSize)
	p := AsSlotted(buf, 0)
	p.Init()
	n := 0
	for {
		tup := bytes.Repeat([]byte{byte(n + 1)}, stride)
		if _, ok := p.Insert(nil, tup); !ok {
			break
		}
		n++
	}
	if n < 3 {
		t.Fatalf("page held only %d tuples of %d bytes", n, stride)
	}
	return p, buf, n
}

// TestTupleSpanPureAppendPage: a purely appended fixed-width page is one
// dense span starting at PageSize-n*stride, with tuples in reverse slot
// order (appends grow from the back).
func TestTupleSpanPureAppendPage(t *testing.T) {
	const stride = 64
	p, buf, n := spanPage(t, stride)
	off, cnt, ok := p.TupleSpan(stride)
	if !ok {
		t.Fatal("pure-append page rejected")
	}
	if cnt != n || off != PageSize-n*stride {
		t.Fatalf("span off=%d n=%d, want off=%d n=%d", off, cnt, PageSize-n*stride, n)
	}
	span := buf[off:]
	for s := 0; s < n; s++ {
		row := span[(n-1-s)*stride : (n-s)*stride]
		if row[0] != byte(s+1) || row[stride-1] != byte(s+1) {
			t.Fatalf("slot %d not at span position %d", s, n-1-s)
		}
	}
}

// TestTupleSpanRejections: every shape the alias fast path cannot
// represent — empty pages, mismatched strides, deleted slots, and
// variable-length tuples — must fall back to the copy path (ok=false),
// never return a wrong span.
func TestTupleSpanRejections(t *testing.T) {
	empty := AsSlotted(make([]byte, PageSize), 0)
	empty.Init()
	if _, _, ok := empty.TupleSpan(64); ok {
		t.Fatal("empty page reported a span")
	}

	const stride = 64
	p, _, _ := spanPage(t, stride)
	for _, bad := range []int{0, -8, stride - 8, stride + 8, PageSize + 1} {
		if _, _, ok := p.TupleSpan(bad); ok {
			t.Fatalf("stride %d accepted on a %d-byte-tuple page", bad, stride)
		}
	}

	deleted, _, _ := spanPage(t, stride)
	deleted.Delete(nil, 3)
	if _, _, ok := deleted.TupleSpan(stride); ok {
		t.Fatal("page with a deleted slot reported a span")
	}

	varlen := AsSlotted(make([]byte, PageSize), 0)
	varlen.Init()
	varlen.Insert(nil, make([]byte, stride))
	varlen.Insert(nil, make([]byte, stride/2))
	varlen.Insert(nil, make([]byte, stride))
	if _, _, ok := varlen.TupleSpan(stride); ok {
		t.Fatal("variable-length page reported a span")
	}
}

// TestCopyTuplesHardened: the native bulk copy skips deleted slots,
// preserves slot order, and returns counted errors — instead of silent
// truncation — when the destination is short or a tuple overflows its
// stride slot.
func TestCopyTuplesHardened(t *testing.T) {
	const stride = 64
	p, _, n := spanPage(t, stride)
	p.Delete(nil, 2)
	live := n - 1

	dst := make([]byte, live*stride)
	k, err := p.CopyTuples(dst, stride)
	if err != nil || k != live {
		t.Fatalf("CopyTuples = %d, %v; want %d live rows", k, err, live)
	}
	want := byte(1)
	for r := 0; r < live; r++ {
		if r == 2 {
			want++ // slot 2 was deleted; slot order skips it
		}
		if dst[r*stride] != want {
			t.Fatalf("row %d starts with %d, want %d", r, dst[r*stride], want)
		}
		want++
	}

	if _, err := p.CopyTuples(dst[:live*stride-1], stride); err == nil ||
		!strings.Contains(err.Error(), "needs") {
		t.Fatalf("short destination: err = %v, want counted size error", err)
	}
	if _, err := p.CopyTuples(dst, stride/2); err == nil ||
		!strings.Contains(err.Error(), "exceeds stride") {
		t.Fatalf("over-stride tuple: err = %v, want counted stride error", err)
	}
}

// TestPageLeaseLifecycle: a lease counts as one outstanding lease no
// matter how many holders retain it, the final release drops the pin and
// the count, and releasing a dead lease panics — the exact double-free
// the lease layer exists to catch.
func TestPageLeaseLifecycle(t *testing.T) {
	bp := testPool(t, 4)
	ref, err := bp.NewPage(nil)
	if err != nil {
		t.Fatal(err)
	}
	id := ref.ID
	ref.Release()

	l, err := bp.Lease(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Leases() != 1 {
		t.Fatalf("Leases = %d after Lease, want 1", bp.Leases())
	}
	l.Retain()
	l.Release()
	if bp.Leases() != 1 {
		t.Fatalf("Leases = %d with a holder remaining, want 1", bp.Leases())
	}
	l.Release()
	if bp.Leases() != 0 {
		t.Fatalf("Leases = %d after final release, want 0", bp.Leases())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double release of a dead lease did not panic")
		}
	}()
	l.Release()
}

// TestLeasedPageRefusesEviction: a leased frame is pinned — with every
// frame leased, page allocation must fail rather than evict aliased
// memory out from under a borrowed block; releasing one lease frees its
// frame for reuse.
func TestLeasedPageRefusesEviction(t *testing.T) {
	bp := testPool(t, 2)
	var ids []PageID
	for i := 0; i < 2; i++ {
		ref, err := bp.NewPage(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ref.ID)
		ref.Release()
	}
	la, err := bp.Lease(nil, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	lb, err := bp.Lease(nil, ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.NewPage(nil); err == nil {
		t.Fatal("NewPage evicted a leased frame")
	}
	la.Release()
	ref, err := bp.NewPage(nil)
	if err != nil {
		t.Fatalf("NewPage after releasing a lease: %v", err)
	}
	ref.Release()
	lb.Release()
	if bp.Leases() != 0 {
		t.Fatalf("Leases = %d at end, want 0", bp.Leases())
	}
}
