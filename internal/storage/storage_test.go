package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

func testPool(t *testing.T, frames int) *BufferPool {
	t.Helper()
	maxPages := frames*64 + 1024
	arena := mem.NewArena(mem.HeapBase, (frames+4)*PageSize+maxPages*16+1<<20)
	return NewBufferPool(arena, frames, maxPages, mem.NewCodeMap())
}

func TestSlottedRoundTrip(t *testing.T) {
	buf := make([]byte, PageSize)
	p := AsSlotted(buf, 0x10000)
	p.Init()
	var rids []int
	for i := 0; i < 10; i++ {
		tup := bytes.Repeat([]byte{byte(i + 1)}, 100)
		slot, ok := p.Insert(nil, tup)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		rids = append(rids, slot)
	}
	for i, slot := range rids {
		got := p.Tuple(nil, slot)
		if len(got) != 100 || got[0] != byte(i+1) {
			t.Fatalf("tuple %d corrupt: len=%d first=%d", i, len(got), got[0])
		}
	}
}

func TestSlottedFillsAndRejects(t *testing.T) {
	buf := make([]byte, PageSize)
	p := AsSlotted(buf, 0)
	p.Init()
	tup := make([]byte, 200)
	n := 0
	for {
		if _, ok := p.Insert(nil, tup); !ok {
			break
		}
		n++
	}
	// 200B + 4B slot each, ~8188 usable.
	if want := (PageSize - slottedHeader) / 204; n < want-1 || n > want {
		t.Fatalf("page held %d 200B tuples, want ~%d", n, want)
	}
}

func TestSlottedUpdateDelete(t *testing.T) {
	buf := make([]byte, PageSize)
	p := AsSlotted(buf, 0)
	p.Init()
	slot, _ := p.Insert(nil, []byte("hello world....."))
	p.Update(nil, slot, []byte("HELLO WORLD....."))
	if got := p.Tuple(nil, slot); string(got) != "HELLO WORLD....." {
		t.Fatalf("after update: %q", got)
	}
	p.Delete(nil, slot)
	if got := p.Tuple(nil, slot); got != nil {
		t.Fatalf("deleted slot returned %q", got)
	}
}

func TestSlottedUpdateGrowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("growing update should panic")
		}
	}()
	buf := make([]byte, PageSize)
	p := AsSlotted(buf, 0)
	p.Init()
	slot, _ := p.Insert(nil, []byte("abc"))
	p.Update(nil, slot, []byte("abcd"))
}

func TestPAXRoundTrip(t *testing.T) {
	widths := []int{8, 8, 16}
	buf := make([]byte, PageSize)
	p := AsPAX(buf, 0x20000, widths)
	p.Init()
	mk := func(i int) [][]byte {
		a := make([]byte, 8)
		binary.LittleEndian.PutUint64(a, uint64(i))
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i*i))
		c := bytes.Repeat([]byte{byte(i)}, 16)
		return [][]byte{a, b, c}
	}
	for i := 0; i < 50; i++ {
		if _, ok := p.Append(nil, mk(i)); !ok {
			t.Fatalf("append %d failed", i)
		}
	}
	for i := 0; i < 50; i++ {
		if got := binary.LittleEndian.Uint64(p.Field(nil, i, 0)); got != uint64(i) {
			t.Fatalf("col0[%d] = %d", i, got)
		}
		if got := binary.LittleEndian.Uint64(p.Field(nil, i, 1)); got != uint64(i*i) {
			t.Fatalf("col1[%d] = %d", i, got)
		}
		if got := p.Field(nil, i, 2); got[0] != byte(i) || len(got) != 16 {
			t.Fatalf("col2[%d] corrupt", i)
		}
	}
}

func TestPAXColumnLocality(t *testing.T) {
	// Scanning one 8-byte column of k tuples must touch ~k*8/64 lines
	// under PAX but ~k*rowWidth/64 lines under NSM.
	widths := []int{8, 8, 8, 8, 8, 8, 8, 8} // 64-byte rows
	count := func(scan func(rec *trace.Recorder)) int {
		rec, s := trace.Pipe()
		lines := map[mem.Addr]bool{}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				r, ok := s.Next()
				if !ok {
					return
				}
				if r.Kind() == trace.Load {
					lines[r.Addr().Line()] = true
				}
			}
		}()
		scan(rec)
		rec.Close()
		<-done
		return len(lines)
	}

	paxBuf := make([]byte, PageSize)
	pax := AsPAX(paxBuf, 0x100000, widths)
	pax.Init()
	row := make([][]byte, 8)
	for c := range row {
		row[c] = make([]byte, 8)
	}
	n := pax.Cap()
	for i := 0; i < n; i++ {
		pax.Append(nil, row)
	}
	paxLines := count(func(rec *trace.Recorder) {
		for i := 0; i < n; i++ {
			pax.Field(rec, i, 3)
		}
	})

	nsmBuf := make([]byte, PageSize)
	nsm := AsSlotted(nsmBuf, 0x200000)
	nsm.Init()
	tup := make([]byte, 64)
	m := 0
	for {
		if _, ok := nsm.Insert(nil, tup); !ok {
			break
		}
		m++
	}
	nsmLines := count(func(rec *trace.Recorder) {
		for i := 0; i < m; i++ {
			nsm.Tuple(rec, i)
		}
	})
	if paxLines*4 > nsmLines {
		t.Fatalf("PAX column scan touched %d lines vs NSM %d; want >=4x reduction", paxLines, nsmLines)
	}
}

func TestBufferPoolPinAndGet(t *testing.T) {
	bp := testPool(t, 8)
	ref, err := bp.NewPage(nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(ref.Data, []byte("persistent bytes"))
	id := ref.ID
	ref.Release()
	got, err := bp.Get(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if string(got.Data[:16]) != "persistent bytes" {
		t.Fatalf("page content lost: %q", got.Data[:16])
	}
	if bp.Hits != 1 {
		t.Fatalf("hits = %d, want 1", bp.Hits)
	}
}

func TestBufferPoolEvictionRestores(t *testing.T) {
	bp := testPool(t, 4)
	var ids []PageID
	for i := 0; i < 12; i++ {
		ref, err := bp.NewPage(nil)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(ref.Data, uint64(i)*7777)
		ids = append(ids, ref.ID)
		ref.Release()
	}
	if bp.Evictions == 0 {
		t.Fatal("no evictions with 12 pages in 4 frames")
	}
	for i, id := range ids {
		ref, err := bp.Get(nil, id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if got := binary.LittleEndian.Uint64(ref.Data); got != uint64(i)*7777 {
			t.Fatalf("page %d content = %d, want %d", id, got, uint64(i)*7777)
		}
		ref.Release()
	}
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	bp := testPool(t, 2)
	a, _ := bp.NewPage(nil)
	b, _ := bp.NewPage(nil)
	defer a.Release()
	defer b.Release()
	if _, err := bp.NewPage(nil); err == nil {
		t.Fatal("expected failure with all frames pinned")
	}
}

func TestBufferPoolGetUnknown(t *testing.T) {
	bp := testPool(t, 2)
	if _, err := bp.Get(nil, 99); err == nil {
		t.Fatal("Get of unallocated page succeeded")
	}
}

func TestHeapInsertScan(t *testing.T) {
	bp := testPool(t, 64)
	h := NewHeapFile(bp, NSM, []int{8, 8}, mem.NewCodeMap(), "t")
	const rows = 3000
	for i := 0; i < rows; i++ {
		tup := make([]byte, 16)
		binary.LittleEndian.PutUint64(tup, uint64(i))
		binary.LittleEndian.PutUint64(tup[8:], uint64(i*2))
		if _, err := h.Insert(nil, tup); err != nil {
			t.Fatal(err)
		}
	}
	if h.Rows() != rows {
		t.Fatalf("Rows = %d, want %d", h.Rows(), rows)
	}
	// Full scan via pages.
	seen := 0
	for p := 0; p < h.NumPages(); p++ {
		ref, err := bp.Get(nil, h.PageAt(p))
		if err != nil {
			t.Fatal(err)
		}
		sp := AsSlotted(ref.Data, ref.Addr)
		for s := 0; s < sp.NumSlots(); s++ {
			tup := sp.Tuple(nil, s)
			if got := binary.LittleEndian.Uint64(tup[8:]); got != 2*binary.LittleEndian.Uint64(tup) {
				t.Fatalf("row corrupt: %d %d", binary.LittleEndian.Uint64(tup), got)
			}
			seen++
		}
		ref.Release()
	}
	if seen != rows {
		t.Fatalf("scan saw %d rows, want %d", seen, rows)
	}
}

func TestHeapFetchUpdate(t *testing.T) {
	bp := testPool(t, 16)
	h := NewHeapFile(bp, NSM, []int{8}, mem.NewCodeMap(), "u")
	tup := make([]byte, 8)
	binary.LittleEndian.PutUint64(tup, 42)
	rid, err := h.Insert(nil, tup)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(tup, 43)
	if err := h.UpdateNSM(nil, rid, tup); err != nil {
		t.Fatal(err)
	}
	got, err := h.FetchNSM(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 43 {
		t.Fatalf("after update: %d", binary.LittleEndian.Uint64(got))
	}
}

func TestHeapLayoutMismatch(t *testing.T) {
	bp := testPool(t, 16)
	h := NewHeapFile(bp, PAXLayout, []int{8}, mem.NewCodeMap(), "p")
	if _, err := h.Insert(nil, make([]byte, 8)); err == nil {
		t.Fatal("NSM insert into PAX heap accepted")
	}
	n := NewHeapFile(bp, NSM, []int{8}, mem.NewCodeMap(), "n")
	if _, err := n.InsertFields(nil, [][]byte{make([]byte, 8)}); err == nil {
		t.Fatal("PAX insert into NSM heap accepted")
	}
}

func TestRIDPack(t *testing.T) {
	f := func(p uint32, s uint32) bool {
		r := RID{Page: PageID(p), Slot: s}
		return UnpackRID(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTreeInsertGet(t *testing.T) {
	bp := testPool(t, 256)
	bt, err := NewBTree(bp, mem.NewCodeMap(), "i")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(n)
	for _, k := range keys {
		if err := bt.Insert(nil, int64(k), uint64(k)*3); err != nil {
			t.Fatal(err)
		}
	}
	if cnt, err := bt.Validate(); err != nil || cnt != n {
		t.Fatalf("Validate = %d, %v; want %d", cnt, err, n)
	}
	if bt.Height() < 2 {
		t.Fatalf("height = %d; %d keys should split", bt.Height(), n)
	}
	for i := 0; i < n; i += 37 {
		v, ok, err := bt.Get(nil, int64(i))
		if err != nil || !ok || v != uint64(i)*3 {
			t.Fatalf("Get(%d) = %d,%v,%v", i, v, ok, err)
		}
	}
	if _, ok, _ := bt.Get(nil, int64(n+5)); ok {
		t.Fatal("found nonexistent key")
	}
}

func TestBTreeRangeScan(t *testing.T) {
	bp := testPool(t, 256)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "r")
	for i := 0; i < 5000; i++ {
		bt.Insert(nil, int64(i*2), uint64(i))
	}
	c, err := bt.Seek(nil, 1001)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for len(got) < 5 {
		k, _, ok, err := c.Next(nil)
		if err != nil || !ok {
			t.Fatal(err, ok)
		}
		got = append(got, k)
	}
	for i, k := range got {
		if want := int64(1002 + i*2); k != want {
			t.Fatalf("range[%d] = %d, want %d", i, k, want)
		}
	}
}

func TestBTreeDuplicates(t *testing.T) {
	bp := testPool(t, 256)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "d")
	for i := 0; i < 10; i++ {
		bt.Insert(nil, 77, uint64(i))
	}
	bt.Insert(nil, 76, 1000)
	bt.Insert(nil, 78, 2000)
	c, _ := bt.Seek(nil, 77)
	seen := map[uint64]bool{}
	for {
		k, v, ok, _ := c.Next(nil)
		if !ok || k != 77 {
			break
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("found %d duplicates, want 10", len(seen))
	}
}

func TestBTreeDelete(t *testing.T) {
	bp := testPool(t, 256)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "del")
	for i := 0; i < 1000; i++ {
		bt.Insert(nil, int64(i), uint64(i))
	}
	ok, err := bt.Delete(nil, 500, 500)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found, _ := bt.Get(nil, 500); found {
		t.Fatal("deleted key still present")
	}
	if ok, _ := bt.Delete(nil, 500, 500); ok {
		t.Fatal("double delete succeeded")
	}
	if cnt, err := bt.Validate(); err != nil || cnt != 999 {
		t.Fatalf("after delete: %d, %v", cnt, err)
	}
}

func TestBTreeSortedIterationProperty(t *testing.T) {
	bp := testPool(t, 512)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "prop")
	rng := rand.New(rand.NewSource(42))
	want := make([]int64, 0, 8000)
	for i := 0; i < 8000; i++ {
		k := int64(rng.Intn(1 << 20))
		want = append(want, k)
		if err := bt.Insert(nil, k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	c, _ := bt.Seek(nil, -1<<40)
	var got []int64
	for {
		k, _, ok, err := c.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestBTreeConcurrentReaders(t *testing.T) {
	bp := testPool(t, 256)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "conc")
	for i := 0; i < 5000; i++ {
		bt.Insert(nil, int64(i), uint64(i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := int64(rng.Intn(5000))
				v, ok, err := bt.Get(nil, k)
				if err != nil || !ok || v != uint64(k) {
					errs <- fmt.Errorf("Get(%d) = %d,%v,%v", k, v, ok, err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBTreeDescentEmitsDependentLoads(t *testing.T) {
	bp := testPool(t, 512)
	bt, _ := NewBTree(bp, mem.NewCodeMap(), "trace")
	for i := 0; i < 20000; i++ {
		bt.Insert(nil, int64(i), uint64(i))
	}
	rec, s := trace.Pipe()
	var dep, indep int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			r, ok := s.Next()
			if !ok {
				return
			}
			if r.Kind() == trace.Load {
				if r.Dep() {
					dep++
				} else {
					indep++
				}
			}
		}
	}()
	bt.Get(rec, 12345)
	rec.Close()
	<-done
	if dep < 5 {
		t.Fatalf("descent emitted %d dependent loads, want several", dep)
	}
	if dep < indep {
		t.Fatalf("descent should be dependence-dominated: dep=%d indep=%d", dep, indep)
	}
}
