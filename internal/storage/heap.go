package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Layout selects the physical page layout of a heap file.
type Layout uint8

// Page layouts.
const (
	// NSM is the conventional slotted layout (rows contiguous).
	NSM Layout = iota
	// PAXLayout groups columns in per-page minipages (Ailamaki et al.).
	PAXLayout
)

func (l Layout) String() string {
	if l == NSM {
		return "NSM"
	}
	return "PAX"
}

// RID names a tuple: page and slot.
type RID struct {
	Page PageID
	Slot uint32
}

// Pack encodes the RID into a uint64 for index payloads.
func (r RID) Pack() uint64 { return uint64(r.Page)<<32 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID { return RID{Page: PageID(v >> 32), Slot: uint32(v)} }

// HeapFile is an unordered collection of fixed-schema tuples across pages.
type HeapFile struct {
	mu     sync.RWMutex
	pool   *BufferPool
	layout Layout
	widths []int
	rowW   int
	pages  []PageID
	rows   int
	code   mem.CodeSeg

	// version counts writes to the file (inserts and in-place updates).
	// Readers that memoize derived results — the cross-query result-reuse
	// cache — key them by this counter, so any write, including one inside
	// a transaction that later commits, invalidates them. Bumping at write
	// time rather than commit time is conservative: an aborted write costs
	// a recomputation, never a stale result.
	version atomic.Uint64
}

// NewHeapFile creates an empty heap file for tuples with the given column
// widths (all columns fixed-width).
func NewHeapFile(pool *BufferPool, layout Layout, widths []int, codes *mem.CodeMap, name string) *HeapFile {
	rowW := 0
	for _, w := range widths {
		rowW += w
	}
	if rowW == 0 || rowW > PageSize/2 {
		panic(fmt.Sprintf("storage: bad row width %d for %s", rowW, name))
	}
	return &HeapFile{
		pool:   pool,
		layout: layout,
		widths: append([]int(nil), widths...),
		rowW:   rowW,
		code:   codes.Register("heap:"+name, 1536),
	}
}

// Layout returns the file's page layout.
func (h *HeapFile) Layout() Layout { return h.layout }

// Widths returns the column widths.
func (h *HeapFile) Widths() []int { return h.widths }

// RowWidth returns the total tuple width.
func (h *HeapFile) RowWidth() int { return h.rowW }

// Rows returns the number of live inserts performed.
func (h *HeapFile) Rows() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// Version returns the file's write-version counter: it increases on every
// insert and in-place update. Equal versions guarantee identical contents;
// cached derived results must be keyed by it.
func (h *HeapFile) Version() uint64 { return h.version.Load() }

// NumPages returns the page count.
func (h *HeapFile) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// PageAt returns the i-th page id (scan order).
func (h *HeapFile) PageAt(i int) PageID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.pages[i]
}

// RLatch guards direct page-content reads (scans decoding tuples from a
// pinned page) against concurrent in-place writers: appends and updates
// hold the write side of the same table-granular latch. Callers must not
// retain references into page bytes past RUnlatch.
func (h *HeapFile) RLatch() { h.mu.RLock() }

// RUnlatch releases RLatch.
func (h *HeapFile) RUnlatch() { h.mu.RUnlock() }

// Insert appends one NSM tuple (the concatenated fixed-width row) and
// returns its RID.
func (h *HeapFile) Insert(rec *trace.Recorder, tuple []byte) (RID, error) {
	if h.layout != NSM {
		return RID{}, fmt.Errorf("storage: Insert on %v heap; use InsertFields", h.layout)
	}
	if len(tuple) != h.rowW {
		return RID{}, fmt.Errorf("storage: tuple %d bytes, schema row is %d", len(tuple), h.rowW)
	}
	rec.Exec(h.code, 50)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.pages) > 0 {
		ref, err := h.pool.Get(rec, h.pages[len(h.pages)-1])
		if err != nil {
			return RID{}, err
		}
		if slot, ok := AsSlotted(ref.Data, ref.Addr).Insert(rec, tuple); ok {
			ref.Release()
			h.rows++
			h.version.Add(1)
			return RID{Page: ref.ID, Slot: uint32(slot)}, nil
		}
		ref.Release()
	}
	ref, err := h.pool.NewPage(rec)
	if err != nil {
		return RID{}, err
	}
	defer ref.Release()
	p := AsSlotted(ref.Data, ref.Addr)
	p.Init()
	h.pages = append(h.pages, ref.ID)
	slot, ok := p.Insert(rec, tuple)
	if !ok {
		return RID{}, fmt.Errorf("storage: tuple does not fit an empty page")
	}
	h.rows++
	h.version.Add(1)
	return RID{Page: ref.ID, Slot: uint32(slot)}, nil
}

// InsertFields appends one PAX tuple given per-column encodings.
func (h *HeapFile) InsertFields(rec *trace.Recorder, fields [][]byte) (RID, error) {
	if h.layout != PAXLayout {
		return RID{}, fmt.Errorf("storage: InsertFields on %v heap; use Insert", h.layout)
	}
	rec.Exec(h.code, 50)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.pages) > 0 {
		ref, err := h.pool.Get(rec, h.pages[len(h.pages)-1])
		if err != nil {
			return RID{}, err
		}
		if slot, ok := AsPAX(ref.Data, ref.Addr, h.widths).Append(rec, fields); ok {
			ref.Release()
			h.rows++
			h.version.Add(1)
			return RID{Page: ref.ID, Slot: uint32(slot)}, nil
		}
		ref.Release()
	}
	ref, err := h.pool.NewPage(rec)
	if err != nil {
		return RID{}, err
	}
	defer ref.Release()
	p := AsPAX(ref.Data, ref.Addr, h.widths)
	p.Init()
	h.pages = append(h.pages, ref.ID)
	slot, ok := p.Append(rec, fields)
	if !ok {
		return RID{}, fmt.Errorf("storage: tuple does not fit an empty PAX page")
	}
	h.rows++
	h.version.Add(1)
	return RID{Page: ref.ID, Slot: uint32(slot)}, nil
}

// FetchNSM reads the tuple at rid into a fresh slice (NSM heaps).
func (h *HeapFile) FetchNSM(rec *trace.Recorder, rid RID) ([]byte, error) {
	ref, err := h.pool.Get(rec, rid.Page)
	if err != nil {
		return nil, err
	}
	defer ref.Release()
	h.mu.RLock()
	t := AsSlotted(ref.Data, ref.Addr).Tuple(rec, int(rid.Slot))
	if t == nil {
		h.mu.RUnlock()
		return nil, fmt.Errorf("storage: rid %v deleted", rid)
	}
	out := make([]byte, len(t))
	copy(out, t)
	h.mu.RUnlock()
	return out, nil
}

// UpdateNSM overwrites the tuple at rid (NSM heaps, same width).
func (h *HeapFile) UpdateNSM(rec *trace.Recorder, rid RID, tuple []byte) error {
	ref, err := h.pool.Get(rec, rid.Page)
	if err != nil {
		return err
	}
	defer ref.Release()
	h.mu.Lock()
	AsSlotted(ref.Data, ref.Addr).Update(rec, int(rid.Slot), tuple)
	h.mu.Unlock()
	h.version.Add(1)
	return nil
}

// PutUint64 is a helper encoding v little-endian into 8 bytes.
func PutUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// GetUint64 decodes 8 little-endian bytes.
func GetUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
