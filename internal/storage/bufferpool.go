package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/trace"
)

// PageID identifies a database page.
type PageID uint32

// InvalidPage is the zero PageID; page numbering starts at 1.
const InvalidPage PageID = 0

// BufferPool manages page frames inside the simulated heap arena. Frames
// hold the working database; pages evicted under memory pressure spill to
// a simulated disk (a host-side map — the paper's workloads are tuned to
// be memory-resident, so eviction is a correctness path, not a hot one).
//
// The pool is safe for concurrent use by the engine's worker threads.
type BufferPool struct {
	mu sync.Mutex

	arena     *mem.Arena
	frames    int
	frameAddr []mem.Addr
	frameBuf  [][]byte
	framePage []PageID
	pins      []int
	clockRef  []bool
	hand      int

	table map[PageID]int // resident pages -> frame
	disk  map[PageID][]byte

	nextPage PageID

	// tableAddr is the simulated base of the page-table metadata; each
	// lookup loads one entry, giving buffer-pool metadata its footprint.
	tableAddr mem.Addr
	tableCap  int

	code mem.CodeSeg

	// leases counts outstanding PageLease objects (not lease refcounts):
	// the zero-copy leak check asserts this returns to zero after every
	// equivalence suite.
	leases atomic.Int64

	// Counters (protected by mu).
	Hits, Misses, Evictions uint64
}

// bufCodeSize is the synthetic instruction footprint of the buffer-pool
// code path (hash lookup, pin bookkeeping).
const bufCodeSize = 2048

// pageTableEntry is the metadata bytes charged per page-table lookup.
const pageTableEntry = 16

// NewBufferPool creates a pool of frames pages inside arena, registering
// its code segment with codes. maxPages bounds the page-table metadata
// region (allocate generously; entries are 16 simulated bytes each).
func NewBufferPool(arena *mem.Arena, frames, maxPages int, codes *mem.CodeMap) *BufferPool {
	if frames <= 0 || maxPages < frames {
		panic(fmt.Sprintf("storage: bad pool geometry frames=%d maxPages=%d", frames, maxPages))
	}
	bp := &BufferPool{
		arena:     arena,
		frames:    frames,
		framePage: make([]PageID, frames),
		pins:      make([]int, frames),
		clockRef:  make([]bool, frames),
		table:     make(map[PageID]int, frames),
		disk:      make(map[PageID][]byte),
		tableCap:  maxPages,
		code:      codes.Register("bufferpool", bufCodeSize),
	}
	bp.tableAddr = arena.Alloc(maxPages*pageTableEntry, mem.LineSize)
	for i := 0; i < frames; i++ {
		a := arena.Alloc(PageSize, mem.LineSize)
		bp.frameAddr = append(bp.frameAddr, a)
		bp.frameBuf = append(bp.frameBuf, arena.Bytes(a, PageSize))
	}
	return bp
}

// PageRef is a pinned page: its host buffer and simulated address. Callers
// must Release it when done.
type PageRef struct {
	ID   PageID
	Addr mem.Addr
	Data []byte
	pool *BufferPool
	fr   int
}

// Release unpins the page.
func (r *PageRef) Release() {
	r.pool.mu.Lock()
	if r.pool.pins[r.fr] > 0 {
		r.pool.pins[r.fr]--
	}
	r.pool.mu.Unlock()
}

// PageLease is a refcounted pin on a page, held by zero-copy blocks that
// alias the frame's bytes. The lease keeps the frame unevictable (via the
// underlying pin) until every holder has released it; Retain/Release
// compose with the Block ring protocol so a borrowed block shared across
// consumers releases the page exactly once, when the last ref drops.
type PageLease struct {
	ref  *PageRef
	refs atomic.Int32
}

// Lease pins page pid and wraps the pin in a refcounted lease (count 1).
func (bp *BufferPool) Lease(rec *trace.Recorder, pid PageID) (*PageLease, error) {
	ref, err := bp.Get(rec, pid)
	if err != nil {
		return nil, err
	}
	bp.leases.Add(1)
	l := &PageLease{ref: ref}
	l.refs.Store(1)
	return l, nil
}

// Page returns the leased page.
func (l *PageLease) Page() *PageRef { return l.ref }

// Retain adds a holder.
func (l *PageLease) Retain() { l.refs.Add(1) }

// Release drops one holder; the final release unpins the page. Releasing
// an already-dead lease panics — it means some block released its page
// twice, exactly the lifetime bug the lease layer exists to catch.
func (l *PageLease) Release() {
	n := l.refs.Add(-1)
	if n < 0 {
		panic("storage: PageLease released more times than retained")
	}
	if n == 0 {
		l.ref.pool.leases.Add(-1)
		l.ref.Release()
	}
}

// Leases returns the number of outstanding page leases — zero when every
// borrowed block has been reset or recycled.
func (bp *BufferPool) Leases() int {
	return int(bp.leases.Load())
}

func (bp *BufferPool) tableEntryAddr(pid PageID) mem.Addr {
	return bp.tableAddr + mem.Addr(int(pid)%bp.tableCap*pageTableEntry)
}

// growTable doubles the page-table metadata region when page allocation
// outgrows it. Long-running OLTP workloads allocate pages monotonically
// (evicted pages spill to disk but keep their IDs), so the table must be
// able to grow with the database rather than fail at a fixed capacity.
// The old region is abandoned inside the arena (bump allocation cannot
// free); the resident entries are re-written at their new addresses,
// which traces the rehash traffic a real engine would incur. mu held.
func (bp *BufferPool) growTable(rec *trace.Recorder) error {
	newCap := bp.tableCap * 2
	need := newCap * pageTableEntry
	if free := bp.arena.Size() - bp.arena.Used(); free < need+mem.LineSize {
		return fmt.Errorf("storage: page table full (%d pages) and arena exhausted (%d bytes free)",
			bp.tableCap, free)
	}
	bp.tableAddr = bp.arena.Alloc(need, mem.LineSize)
	bp.tableCap = newCap
	// Replay the resident entries in frame order (not map order, which
	// would make the trace nondeterministic across identical runs).
	for fr := 0; fr < bp.frames; fr++ {
		if pid := bp.framePage[fr]; pid != InvalidPage {
			rec.Store(bp.tableEntryAddr(pid))
		}
	}
	return nil
}

// NewPage allocates a fresh page, pinned.
func (bp *BufferPool) NewPage(rec *trace.Recorder) (*PageRef, error) {
	rec.Exec(bp.code, 70)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.nextPage++
	pid := bp.nextPage
	if int(pid) >= bp.tableCap {
		if err := bp.growTable(rec); err != nil {
			bp.nextPage--
			return nil, err
		}
	}
	fr, err := bp.grabFrame(rec)
	if err != nil {
		return nil, err
	}
	for i := range bp.frameBuf[fr] {
		bp.frameBuf[fr][i] = 0
	}
	bp.install(rec, pid, fr)
	return &PageRef{ID: pid, Addr: bp.frameAddr[fr], Data: bp.frameBuf[fr], pool: bp, fr: fr}, nil
}

// Get pins page pid, reading it back from simulated disk if evicted.
func (bp *BufferPool) Get(rec *trace.Recorder, pid PageID) (*PageRef, error) {
	rec.Exec(bp.code, 55)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	// Page-table lookup, pointer-dependent. Under mu: growTable moves
	// tableAddr/tableCap, so the entry address must not be computed from
	// an unsynchronized read of them.
	rec.Load(bp.tableEntryAddr(pid), true)
	if pid == InvalidPage || pid > bp.nextPage {
		return nil, fmt.Errorf("storage: no such page %d", pid)
	}
	if fr, ok := bp.table[pid]; ok {
		bp.Hits++
		bp.pins[fr]++
		bp.clockRef[fr] = true
		return &PageRef{ID: pid, Addr: bp.frameAddr[fr], Data: bp.frameBuf[fr], pool: bp, fr: fr}, nil
	}
	bp.Misses++
	fr, err := bp.grabFrame(rec)
	if err != nil {
		return nil, err
	}
	if img, ok := bp.disk[pid]; ok {
		copy(bp.frameBuf[fr], img)
	} else {
		for i := range bp.frameBuf[fr] {
			bp.frameBuf[fr][i] = 0
		}
	}
	bp.install(rec, pid, fr)
	return &PageRef{ID: pid, Addr: bp.frameAddr[fr], Data: bp.frameBuf[fr], pool: bp, fr: fr}, nil
}

// install binds pid to frame fr (mu held).
func (bp *BufferPool) install(rec *trace.Recorder, pid PageID, fr int) {
	bp.table[pid] = fr
	bp.framePage[fr] = pid
	bp.pins[fr] = 1
	bp.clockRef[fr] = true
	rec.Store(bp.tableEntryAddr(pid))
}

// grabFrame finds a free frame or evicts an unpinned one (clock sweep);
// mu must be held.
func (bp *BufferPool) grabFrame(rec *trace.Recorder) (int, error) {
	for i := 0; i < bp.frames; i++ {
		if bp.framePage[i] == InvalidPage {
			return i, nil
		}
	}
	for sweep := 0; sweep < 2*bp.frames; sweep++ {
		fr := bp.hand
		bp.hand = (bp.hand + 1) % bp.frames
		if bp.pins[fr] > 0 {
			continue
		}
		if bp.clockRef[fr] {
			bp.clockRef[fr] = false
			continue
		}
		old := bp.framePage[fr]
		img := make([]byte, PageSize)
		copy(img, bp.frameBuf[fr])
		bp.disk[old] = img
		delete(bp.table, old)
		bp.Evictions++
		rec.Store(bp.tableEntryAddr(old))
		return fr, nil
	}
	return 0, fmt.Errorf("storage: all %d frames pinned", bp.frames)
}

// Resident returns the number of in-memory pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.table)
}

// PageCount returns the number of allocated pages.
func (bp *BufferPool) PageCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return int(bp.nextPage)
}
