package sched_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fakeItem is a scripted continuation: each step consumes one entry of
// the script and appends its name to the shared log.
type fakeItem struct {
	name  string
	kinds []int // kind per remaining step
	fence bool
	id    uint64
	log   *[]string

	// park, when set, parks the first attempt at kind parkKind with the
	// given blockers; the next attempt at that kind succeeds.
	parkKind int
	blockers []uint64
	parked   bool

	restarts int
}

func (f *fakeItem) Kind() int {
	if len(f.kinds) == 0 {
		return 0
	}
	return f.kinds[0]
}
func (f *fakeItem) Fence() bool { return f.fence }
func (f *fakeItem) ID() uint64  { return f.id }
func (f *fakeItem) Restart(*trace.Recorder) {
	f.restarts++
	f.parked = false
}

func (f *fakeItem) Step(*engine.Ctx) (sched.Outcome, error) {
	k := f.Kind()
	if f.blockers != nil && k == f.parkKind && !f.parked {
		f.parked = true
		return sched.Outcome{Parked: true, Blockers: f.blockers}, nil
	}
	*f.log = append(*f.log, f.name)
	f.kinds = f.kinds[1:]
	return sched.Outcome{Done: len(f.kinds) == 0}, nil
}

func ctx() *engine.Ctx { return &engine.Ctx{} }

// TestCohortBatchesByKind: with every item at the same kind sequence, one
// quantum executes the whole cohort of a kind before switching — the
// L1I-residency property the substrate exists for.
func TestCohortBatchesByKind(t *testing.T) {
	var log []string
	items := []sched.Item{
		&fakeItem{name: "a", kinds: []int{0, 1}, log: &log},
		&fakeItem{name: "b", kinds: []int{0, 1}, log: &log},
		&fakeItem{name: "c", kinds: []int{0, 1}, log: &log},
	}
	st, err := sched.New(sched.Config{Window: 3, Kinds: 2, Barrier: sched.NoBarrier}).Run(ctx(), items)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(log, "")
	if got != "abcabc" {
		t.Fatalf("schedule %q, want abcabc (kind cohorts in admission order)", got)
	}
	if st.Done != 3 || st.Quanta != 1 || st.Switches != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWindowLimitsInFlight: a window of 1 serializes items start to
// finish.
func TestWindowLimitsInFlight(t *testing.T) {
	var log []string
	items := []sched.Item{
		&fakeItem{name: "a", kinds: []int{0, 1}, log: &log},
		&fakeItem{name: "b", kinds: []int{0, 1}, log: &log},
	}
	if _, err := sched.New(sched.Config{Window: 1, Kinds: 2, Barrier: sched.NoBarrier}).Run(ctx(), items); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(log, ""); got != "aabb" {
		t.Fatalf("schedule %q, want aabb (window 1 runs one item to completion)", got)
	}
}

// TestBarrierDrainsInAdmissionOrder: kind 1 is the barrier; b reaches it
// first but must wait for a.
func TestBarrierDrainsInAdmissionOrder(t *testing.T) {
	var log []string
	items := []sched.Item{
		&fakeItem{name: "a", kinds: []int{0, 0, 1}, log: &log}, // slower to the barrier
		&fakeItem{name: "b", kinds: []int{0, 1}, log: &log},
	}
	if _, err := sched.New(sched.Config{Window: 2, Kinds: 2, Barrier: 1}).Run(ctx(), items); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(log, "")
	if !strings.HasSuffix(got, "ab") {
		t.Fatalf("schedule %q: barrier steps must run in admission order (…ab)", got)
	}
}

// TestFenceWaitsForOldest: a fenced item admitted second cannot step
// until the first completes.
func TestFenceWaitsForOldest(t *testing.T) {
	var log []string
	items := []sched.Item{
		&fakeItem{name: "a", kinds: []int{0, 1}, log: &log},
		&fakeItem{name: "f", kinds: []int{0, 1}, fence: true, log: &log},
	}
	if _, err := sched.New(sched.Config{Window: 2, Kinds: 2, Barrier: sched.NoBarrier}).Run(ctx(), items); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(log, ""); got != "aaff" {
		t.Fatalf("schedule %q, want aaff (fenced item runs as oldest only)", got)
	}
}

// TestWoundRestartsYoungerBlocker: an older item parked on a younger
// holder wounds it (the younger restarts from its first step) and
// retries at once.
func TestWoundRestartsYoungerBlocker(t *testing.T) {
	var log []string
	older := &fakeItem{name: "o", kinds: []int{1, 2}, parkKind: 1, blockers: []uint64{99}, log: &log}
	younger := &fakeItem{name: "y", kinds: []int{0, 1, 2}, id: 99, log: &log}
	st, err := sched.New(sched.Config{Window: 2, Kinds: 3, Barrier: sched.NoBarrier}).Run(
		ctx(), []sched.Item{older, younger})
	if err != nil {
		t.Fatal(err)
	}
	if st.Wounds != 1 || st.Parks != 1 {
		t.Fatalf("stats %+v, want 1 wound from 1 park", st)
	}
	if younger.restarts != 1 {
		t.Fatalf("younger restarted %d times, want 1", younger.restarts)
	}
}

// TestParkOnOlderStaysParked: a younger item parked on an OLDER holder
// must not wound it; it stays parked until the blocker releases (modelled
// by the generation bump) and then completes.
func TestParkOnOlderStaysParked(t *testing.T) {
	var log []string
	older := &fakeItem{name: "o", kinds: []int{0, 1}, id: 7, log: &log}
	younger := &fakeItem{name: "y", kinds: []int{1, 2}, parkKind: 1, blockers: []uint64{7}, log: &log}
	gen := uint64(0)
	st, err := sched.New(sched.Config{
		Window: 2, Kinds: 3, Barrier: sched.NoBarrier,
		Generation: func() uint64 { gen++; return gen }, // always "released": retry every quantum
	}).Run(ctx(), []sched.Item{older, younger})
	if err != nil {
		t.Fatal(err)
	}
	if older.restarts != 0 {
		t.Fatal("older blocker was wounded by a younger waiter")
	}
	if st.Done != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeadlockRestartsSelfWhenBlockersOlder: a deadlock whose blockers
// are all older restarts the requester itself.
func TestDeadlockRestartsSelfWhenBlockersOlder(t *testing.T) {
	var log []string
	older := &fakeItem{name: "o", kinds: []int{0, 1}, id: 7, log: &log}
	y := &deadlockOnce{fakeItem{name: "y", kinds: []int{1, 2}, blockers: []uint64{7}, log: &log}}
	st, err := sched.New(sched.Config{Window: 2, Kinds: 3, Barrier: sched.NoBarrier}).Run(
		ctx(), []sched.Item{older, y})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocks != 1 || y.restarts != 1 {
		t.Fatalf("stats %+v, restarts %d: want the requester restarted once", st, y.restarts)
	}
}

// deadlockOnce reports a deadlock on its first step, then runs normally.
type deadlockOnce struct{ fakeItem }

func (d *deadlockOnce) Step(c *engine.Ctx) (sched.Outcome, error) {
	if d.blockers != nil {
		b := d.blockers
		d.blockers = nil
		return sched.Outcome{Deadlock: true, Blockers: b}, nil
	}
	return d.fakeItem.Step(c)
}

// TestExternalGateWaits: an item held back by Ready makes the scheduler
// call Wait instead of declaring itself wedged; when the gate opens the
// item completes.
func TestExternalGateWaits(t *testing.T) {
	var log []string
	open := false
	waits := 0
	item := &fakeItem{name: "g", kinds: []int{0}, log: &log}
	st, err := sched.New(sched.Config{
		Window: 1, Kinds: 1, Barrier: sched.NoBarrier,
		Ready: func(sched.Item) bool { return open },
		Wait:  func() bool { waits++; open = true; return true },
	}).Run(ctx(), []sched.Item{item})
	if err != nil {
		t.Fatal(err)
	}
	if waits != 1 || st.Done != 1 {
		t.Fatalf("waits=%d stats %+v", waits, st)
	}
}

// TestExternalGateAborts: Wait returning false fails the run instead of
// spinning.
func TestExternalGateAborts(t *testing.T) {
	var log []string
	item := &fakeItem{name: "g", kinds: []int{0}, log: &log}
	_, err := sched.New(sched.Config{
		Window: 1, Kinds: 1, Barrier: sched.NoBarrier,
		Ready: func(sched.Item) bool { return false },
		Wait:  func() bool { return false },
	}).Run(ctx(), []sched.Item{item})
	if err == nil || !strings.Contains(err.Error(), "external gate") {
		t.Fatalf("err = %v, want external-gate abort", err)
	}
}

// TestWedgeDetected: a run where nothing can progress and no external
// gate exists errors out instead of spinning.
func TestWedgeDetected(t *testing.T) {
	var log []string
	// Parked forever on an unknown (absent) blocker that is never
	// released: generation never changes, no Ready/Wait.
	item := &fakeItem{name: "w", kinds: []int{0, 1}, parkKind: 0, blockers: []uint64{42}, log: &log}
	stuck := &alwaysParked{item}
	_, err := sched.New(sched.Config{Window: 1, Kinds: 2, Barrier: sched.NoBarrier}).Run(
		ctx(), []sched.Item{stuck})
	if err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("err = %v, want wedged", err)
	}
}

// alwaysParked parks on every step.
type alwaysParked struct{ *fakeItem }

func (a *alwaysParked) Step(*engine.Ctx) (sched.Outcome, error) {
	return sched.Outcome{Parked: true, Blockers: []uint64{42}}, nil
}

// TestFeedAdmitsLazily: RunFeed pulls from the feeder only while the
// window has room, and a nil feed ends the run cleanly.
func TestFeedAdmitsLazily(t *testing.T) {
	var log []string
	produced := 0
	core := sched.New(sched.Config{Window: 1, Kinds: 1, Barrier: sched.NoBarrier})
	st, err := core.RunFeed(ctx(), func() (sched.Item, error) {
		if produced == 3 {
			return nil, nil
		}
		produced++
		return &fakeItem{name: "i", kinds: []int{0}, log: &log}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 3 || produced != 3 {
		t.Fatalf("done %d, produced %d", st.Done, produced)
	}
}
