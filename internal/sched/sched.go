// Package sched is the shared cohort/quantum scheduling substrate under
// both execution paths that batch work to keep instruction footprints
// L1I-resident: the QPipe/StagedDB-style DSS packet pipelines
// (internal/staged) and the STEPS-style staged OLTP executor
// (internal/oltp). Its unit of work is a runnable continuation — an Item —
// whose every step is charged against one of a small set of code-segment
// classes (kinds). The scheduler keeps a window of items in flight and,
// each quantum, visits the kinds in a fixed order, executing the current
// cohort of every non-empty kind in admission order; a kind's code segment
// is therefore loaded into the L1I once per cohort instead of once per
// item, which is the entire point of staging (Harizopoulos & Ailamaki,
// CIDR 2003).
//
// The core is deterministic by construction: admission order is the
// serialization order of all conflicts. Policy hooks let clients shape it
// without duplicating the quantum loop —
//
//   - Barrier: one kind (OLTP's commit stage, a pipeline's sink) drains in
//     admission order, so a younger item's effects can never become
//     visible to an older item's reads.
//   - Fence: an item may declare that its next step runs only as the
//     oldest in flight (data-dependent reads over other items' key
//     spaces).
//   - Wound-wait: an item that parks on busy locks wounds younger lock
//     holders (they restart from their first step) and retries at once, so
//     a freed lock always goes to the oldest waiter.
//   - Ready/Wait: an external gate (e.g. the cross-partition commit clock
//     of a partitioned OLTP run) may hold individual items back; when a
//     whole quantum is blocked only on the gate, the scheduler waits for
//     external progress instead of declaring itself wedged.
package sched

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// NoBarrier disables the admission-order barrier kind.
const NoBarrier = -1

// Outcome reports what one continuation step did.
type Outcome struct {
	// Done is set when the item completed.
	Done bool
	// Parked is set when the step blocked on a busy lock; the item stays
	// at the same kind and is retried next quantum.
	Parked bool
	// Deadlock is set when waiting would close a wait-for cycle; the
	// scheduler wounds younger blockers or restarts the item.
	Deadlock bool
	// Blockers holds the conflicting lock-holder ids of a parked or
	// deadlocked step, for the wound policy.
	Blockers []uint64
}

// Item is one runnable continuation: a deterministic state machine the
// scheduler advances one step at a time, each step charged against the
// code-segment class Kind reports.
type Item interface {
	// Kind returns the code-segment class of the next step.
	Kind() int
	// Fence reports whether the next step may only run once the item is
	// the oldest in flight.
	Fence() bool
	// Step executes the next step against ctx's recorder.
	Step(ctx *engine.Ctx) (Outcome, error)
	// Restart aborts the current attempt — undoing partial effects and
	// releasing locks — and rewinds the continuation to its first step.
	Restart(rec *trace.Recorder)
	// ID returns the item's lock-holder identity (0 = holds nothing),
	// matched against Outcome.Blockers by the wound policy.
	ID() uint64
}

// Config shapes one cohort scheduler.
type Config struct {
	// Window is the number of items kept in flight (default 16). Larger
	// windows amortize each kind's instruction-footprint load over more
	// items, at the cost of more conflicts.
	Window int
	// Kinds is the number of code-segment classes (required); each
	// quantum visits them in index order.
	Kinds int
	// Barrier is the kind whose steps drain in admission order
	// (NoBarrier = none).
	Barrier int
	// Generation, when set (e.g. txn.LockManager.Generation), lets the
	// scheduler keep a parked item dormant until some lock has actually
	// been released — skipping pointless retry probes.
	Generation func() uint64
	// Ready, when set, is an external gate consulted before every step:
	// an item whose Ready is false is skipped this quantum. Used by
	// partitioned runs to hold steps for the cross-partition clock.
	Ready func(Item) bool
	// Wait, when set, is called when a quantum makes no progress but at
	// least one item was held back by Ready: it must block until the
	// external gate may have changed, returning false to abort the run.
	Wait func() bool
	// Overhead, when set, charges the scheduler's own dispatch cost for
	// one non-empty cohort of n members.
	Overhead func(rec *trace.Recorder, n int)
	// MaxQuanta overrides the runaway-schedule guard (0 = derived from
	// the number of admitted items).
	MaxQuanta int

	// Obs, when enabled, opens dual-clock spans (internal/obs) for the
	// scheduler's work: one async span per admitted item (ended on
	// completion), one span per scheduling quantum, and one span per
	// executed continuation step, parented under its item. The zero
	// Scope disables tracing at no cost.
	Obs obs.Scope
	// ItemName and KindName label the item and step spans; nil falls
	// back to "item-<seq>" / "kind-<k>".
	ItemName func(it Item, seq int) string
	KindName func(kind int) string
	// QuantumSteps observes continuation steps executed per quantum;
	// ParkQuanta observes quanta an item stayed parked before resuming.
	// Nil histograms are not fed.
	QuantumSteps *obs.Histogram
	ParkQuanta   *obs.Histogram
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	return c
}

// Stats counts scheduler events over one run.
type Stats struct {
	Done      int // items completed
	Steps     int // continuation steps executed
	Quanta    int // scheduling rounds over the kinds
	Switches  int // code-segment switches (non-empty kind cohorts)
	Parks     int // steps that parked on a busy lock
	Wounds    int // younger lock holders aborted by an older waiter
	Deadlocks int // wait-for cycles resolved by restarting the waiter
}

// slot is one in-flight item.
type slot struct {
	seq  int // admission order; the serialization order of conflicts
	item Item

	parked    bool   // waiting on older lock holders
	parkedGen uint64 // release generation at park time
	parkedAt  int    // quantum index of the park, for the park histogram
	span      *obs.Span
}

// Cohort drives items to completion with cohort scheduling. It runs on
// one worker (one trace stream): blocked items park their continuations,
// so the worker never stalls on a lock.
type Cohort struct {
	cfg Config
}

// New builds a cohort scheduler. Config.Kinds must be positive.
func New(cfg Config) *Cohort {
	if cfg.Kinds <= 0 {
		panic(fmt.Sprintf("sched: %d kinds", cfg.Kinds))
	}
	return &Cohort{cfg: cfg.withDefaults()}
}

// Run executes items to completion, admitting them in index order.
func (c *Cohort) Run(ctx *engine.Ctx, items []Item) (Stats, error) {
	i := 0
	return c.RunFeed(ctx, func() (Item, error) {
		if i >= len(items) {
			return nil, nil
		}
		it := items[i]
		i++
		return it, nil
	})
}

// RunFeed executes items drawn from next to completion, keeping up to
// Window in flight. next is called only when the window has room and may
// block until an item is available; it returns nil at end of input. Each
// quantum visits the kinds in a fixed order and executes the current
// cohort of every non-empty kind, walking members in admission order — so
// lock grants, wounds, and completions are all deterministic functions of
// the inputs.
func (c *Cohort) RunFeed(ctx *engine.Ctx, next func() (Item, error)) (Stats, error) {
	var st Stats
	cfg := c.cfg
	rec := ctx.Rec
	admitted := 0
	fed := false // next returned nil: no more items, ever
	active := make([]*slot, 0, cfg.Window)

	itemName := cfg.ItemName
	if itemName == nil {
		itemName = func(_ Item, seq int) string { return fmt.Sprintf("item-%d", seq) }
	}
	kindName := cfg.KindName
	if kindName == nil {
		kindName = func(k int) string { return fmt.Sprintf("kind-%d", k) }
	}
	// unpark closes a park episode, feeding its quantum distance.
	unpark := func(m *slot) {
		if m.parked {
			cfg.ParkQuanta.Observe(float64(st.Quanta - m.parkedAt))
			m.parked = false
		}
	}

	for {
		for !fed && len(active) < cfg.Window {
			it, err := next()
			if err != nil {
				return st, err
			}
			if it == nil {
				fed = true
				break
			}
			m := &slot{seq: admitted, item: it}
			if cfg.Obs.Enabled() {
				// Async: in-flight items overlap on this worker's thread.
				m.span = cfg.Obs.Begin(rec, itemName(it, admitted), "txn").SetAsync()
			}
			active = append(active, m)
			admitted++
		}
		if len(active) == 0 {
			return st, nil
		}

		// Runaway guard: a correct schedule advances every in-flight item
		// within a handful of quanta, so a quantum budget far above any
		// legitimate schedule turns a livelock bug into a diagnosable
		// error instead of a spinning worker.
		maxQuanta := cfg.MaxQuanta
		if maxQuanta == 0 {
			maxQuanta = 200*admitted + 10000
		}
		if st.Quanta > maxQuanta {
			desc := ""
			for _, m := range active {
				desc += fmt.Sprintf(" seq%d@kind%d(id %d)", m.seq, m.item.Kind(), m.item.ID())
			}
			return st, fmt.Errorf("sched: runaway schedule after %d quanta (%d done):%s", st.Quanta, st.Done, desc)
		}
		st.Quanta++
		qsp := cfg.Obs.Begin(rec, fmt.Sprintf("quantum-%d", st.Quanta), "quantum")
		stepsBefore := st.Steps
		progress := false
		gated := 0

		for kind := 0; kind < cfg.Kinds; kind++ {
			// Snapshot this kind's cohort in admission order, keeping only
			// members the external gate admits: a cohort held entirely by
			// the gate (a partition blocked on the cross-partition clock)
			// must not charge dispatch overhead, or a blocked partition
			// would accrue simulated cycles once per host-timing-dependent
			// wakeup. A member can still leave the kind mid-cohort
			// (wounded by an older peer earlier in the same list), so its
			// kind is re-checked below.
			members := members(active, kind)
			if cfg.Ready != nil {
				ready := members[:0]
				for _, m := range members {
					if cfg.Ready(m.item) {
						ready = append(ready, m)
					} else {
						gated++
					}
				}
				members = ready
			}
			if len(members) == 0 {
				continue
			}
			st.Switches++
			if cfg.Overhead != nil {
				cfg.Overhead(rec, len(members))
			}

			for _, m := range members {
				if m.item.Kind() != kind {
					continue
				}
				if m.item.Fence() && m.seq != active[0].seq {
					continue // waits to be the oldest in flight
				}
				if kind == cfg.Barrier && m.seq != active[0].seq {
					continue // admission-order barrier
				}
				if m.parked && cfg.Generation != nil && cfg.Generation() == m.parkedGen {
					continue // nothing released since the park; still blocked
				}
			steps:
				for {
					ssp := cfg.Obs.Under(m.span).Begin(rec, kindName(kind), "step")
					out, err := m.item.Step(ctx)
					ssp.End(rec)
					st.Steps++
					switch {
					case err != nil:
						return st, fmt.Errorf("sched: item seq %d (id %d): %w", m.seq, m.item.ID(), err)
					case out.Deadlock:
						// A wait-for cycle. To keep conflicts serialized in
						// admission order, break it by wounding the younger
						// participants and retrying; only when every
						// blocker is older (a cycle the wound policy cannot
						// break from here) does the requester itself
						// restart.
						st.Deadlocks++
						if wound(active, m, out.Blockers, rec, &st) == 0 {
							m.item.Restart(rec)
							m.parked = false
							progress = true
							break steps
						}
						progress = true // wounded: retry immediately
					case out.Done:
						unpark(m)
						m.span.End(rec)
						active = remove(active, m)
						st.Done++
						progress = true
						break steps
					case out.Parked:
						st.Parks++
						// Wound-wait in admission order: abort blockers
						// admitted after the parked item, then RETRY AT
						// ONCE — the freed lock must go to this older
						// waiter, not to a younger cohort member whose lock
						// step runs later in the quantum. With only older
						// blockers left, stay parked.
						if wound(active, m, out.Blockers, rec, &st) == 0 {
							if !m.parked {
								m.parkedAt = st.Quanta
							}
							m.parked = true
							if cfg.Generation != nil {
								m.parkedGen = cfg.Generation()
							}
							break steps
						}
						progress = true
					default:
						unpark(m)
						progress = true
						break steps
					}
				}
			}
		}
		qsp.End(rec)
		cfg.QuantumSteps.Observe(float64(st.Steps - stepsBefore))
		if !progress {
			if gated > 0 && cfg.Wait != nil {
				// Every runnable item is held back by the external gate:
				// block until the gate may have changed (a commit on
				// another partition) instead of spinning or wedging.
				if !cfg.Wait() {
					return st, fmt.Errorf("sched: external gate aborted with %d in flight", len(active))
				}
				continue
			}
			return st, fmt.Errorf("sched: wedged with %d in flight (window %d)", len(active), cfg.Window)
		}
	}
}

// wound aborts every blocker admitted after m — the wound half of
// wound-wait, keyed on admission order — and returns how many fell.
func wound(active []*slot, m *slot, blockers []uint64, rec *trace.Recorder, st *Stats) int {
	n := 0
	for _, id := range blockers {
		if w := byID(active, id); w != nil && w.seq > m.seq {
			st.Wounds++
			w.item.Restart(rec)
			w.parked = false
			n++
		}
	}
	return n
}

// members collects the active slots currently at kind, in admission order.
func members(active []*slot, kind int) []*slot {
	var out []*slot
	for _, s := range active {
		if s.item.Kind() == kind {
			out = append(out, s)
		}
	}
	return out
}

// remove drops m from active, preserving admission order.
func remove(active []*slot, m *slot) []*slot {
	for i, s := range active {
		if s == m {
			return append(active[:i], active[i+1:]...)
		}
	}
	return active
}

// byID finds the in-flight slot whose current attempt holds identity id.
func byID(active []*slot, id uint64) *slot {
	if id == 0 {
		return nil
	}
	for _, s := range active {
		if s.item.ID() == id {
			return s
		}
	}
	return nil
}
