// Result-reuse cache: the second half of cross-query work sharing.
// Aggregate subplans produce small results from large scans, so when many
// clients fire the same parameterized query the server should compute it
// once per table version and serve the memoized rows afterwards. Staleness
// is impossible by construction: the key embeds each read table's write
// version, which storage bumps on every insert and in-place update (and
// therefore on every write a transaction later commits).

package share

import (
	"container/list"
	"sync"

	"repro/internal/engine"
)

// maxKeyTables bounds how many table versions a key carries losslessly
// (the widest memoized plan, Q13, reads two tables).
const maxKeyTables = 4

// ResultKey identifies one memoizable aggregate result.
type ResultKey struct {
	// Tables names the tables the plan reads, in plan order.
	Tables string
	// Versions holds each table's write version at key time, in the same
	// order, zero-padded. Kept lossless — not hashed — so a write to any
	// read table structurally cannot collide back onto a stale entry.
	Versions [maxKeyTables]uint64
	// Plan is the plan fingerprint (engine.PlanFingerprint).
	Plan uint64
}

// Versions packs table versions into a key component; it panics beyond
// maxKeyTables (widen the array rather than hash).
func Versions(vs ...uint64) [maxKeyTables]uint64 {
	var out [maxKeyTables]uint64
	if len(vs) > maxKeyTables {
		panic("share: too many table versions for a result key")
	}
	copy(out[:], vs)
	return out
}

// CacheStats counts result-cache activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// ResultCache memoizes completed aggregate results under ResultKey with
// LRU eviction. A stale hit cannot occur: any write to a read table
// changes its version and therefore the key. Superseded entries age out
// through the LRU.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[ResultKey]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  ResultKey
	rows [][]engine.Value
}

// NewResultCache creates a cache holding up to capacity results
// (default 128).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &ResultCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[ResultKey]*list.Element),
	}
}

// Get returns the memoized rows for k, if present. The returned slice is
// shared and must not be mutated (result rows are treated as immutable
// throughout the engine).
func (c *ResultCache) Get(k ResultKey) ([][]engine.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

// Put memoizes rows under k, evicting the least recently used entry when
// full.
func (c *ResultCache) Put(k ResultKey, rows [][]engine.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).rows = rows
		c.ll.MoveToFront(el)
		return
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, rows: rows})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
