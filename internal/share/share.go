// Package share implements cross-query work sharing, the inter-query half
// of the paper's Section 6 opportunities (QPipe-style): when many
// concurrent clients scan the same table, the server should make one pass
// over the data and let every query ride it, instead of N private scans
// thrashing the cache hierarchy independently.
//
// Two services:
//
//   - ScanShare registry: concurrent queries over one table attach to a
//     single in-flight *circular shared scan*. A group of producer workers
//     claims morsels (page ranges) of the table, decodes them into row
//     batches in a shared arena, and a coordinator delivers the batches to
//     every attached consumer in circular page order. Late arrivals join
//     mid-scan at the next morsel boundary, wrap around the end of the
//     table, and detach after exactly one full rotation — so each query
//     sees every page once, in the order of a SeqScan starting at its
//     attach page. The scan's position persists across idle periods, and
//     the producer runs only while consumers are attached.
//
//   - Result-reuse cache: completed aggregate results memoized under
//     (tables read, table write-versions, plan fingerprint). Any write to
//     a table — including inside a transaction that later commits — bumps
//     its version counter in storage, so a stale aggregate can never be
//     served.
//
// Fairness and flow control: batches recycle through a fixed ring, and
// delivery blocks on the slowest attached consumer, so a circular scan is
// paced by its convoy — the steady state of saturated DSS systems the
// paper describes — while detached or failed consumers release their
// batches promptly and never wedge the producer.
package share

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/storage"
)

// Config tunes a Registry. The zero value is usable.
type Config struct {
	// MorselPages is the batch granularity in heap pages (default
	// engine.DefaultMorselPages). Consumers attach and detach only at
	// morsel boundaries, which keeps per-consumer row order identical to a
	// SeqScan from the attach page.
	MorselPages int
	// ProducerWorkers is the number of parallel scan workers feeding each
	// table's shared scan (default 2): the PR-1 morsel machinery on the
	// producer side, so one logical scan can saturate several cores while
	// consumers only filter.
	ProducerWorkers int
	// RingBatches is the number of recycled batch buffers per table group
	// (default ProducerWorkers+6). It bounds both memory and how far the
	// scan can run ahead of the slowest consumer.
	RingBatches int
	// ReaderLag is each consumer's buffered-batch allowance (default 2).
	ReaderLag int
	// NewProducerCtx supplies execution contexts for a table's producer
	// workers (worker = 0..ProducerWorkers-1). Simulated runs bind these
	// to chip threads; the default is an untraced context in a private
	// workspace slot.
	NewProducerCtx func(table string, worker int) *engine.Ctx
}

func (c Config) withDefaults() Config {
	if c.MorselPages <= 0 {
		c.MorselPages = engine.DefaultMorselPages
	}
	if c.ProducerWorkers <= 0 {
		c.ProducerWorkers = 2
	}
	if c.RingBatches <= 0 {
		c.RingBatches = c.ProducerWorkers + 6
	}
	if c.ReaderLag <= 0 {
		c.ReaderLag = 2
	}
	return c
}

// Batch buffers live in a dedicated slice of the workspace region, far
// above any per-worker context slot, so shared batches have stable
// simulated addresses without colliding with query workspaces.
const batchRegionBase = mem.WorkBase + 0x40_0000_0000

// defaultProducerSlot spaces default producer workspaces far above the
// worker slots experiment drivers hand out to clients.
const defaultProducerSlot = 4096

// Stats counts registry activity (all fields monotonically increasing).
type Stats struct {
	Attaches     uint64 // consumers attached
	Rotations    uint64 // full rotations completed by consumers
	ProducerRuns uint64 // producer incarnations (idle -> scanning)
	Batches      uint64 // batches delivered (counted once, not per consumer)
	PagesScanned uint64 // heap pages decoded by producers
}

// Registry tracks the in-flight circular shared scan of each table.
type Registry struct {
	db  *engine.DB
	cfg Config

	mu      sync.Mutex
	idle    *sync.Cond
	groups  map[string]*group
	running int // producer incarnations in flight

	attaches     atomic.Uint64
	rotations    atomic.Uint64
	producerRuns atomic.Uint64
	batches      atomic.Uint64
	pagesScanned atomic.Uint64
	prodSlots    atomic.Uint64 // default producer-context slot allocator
}

// NewRegistry creates a scan-share registry over db.
func NewRegistry(db *engine.DB, cfg Config) *Registry {
	r := &Registry{db: db, cfg: cfg.withDefaults(), groups: make(map[string]*group)}
	r.idle = sync.NewCond(&r.mu)
	return r
}

// Stats returns a snapshot of the registry's counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Attaches:     r.attaches.Load(),
		Rotations:    r.rotations.Load(),
		ProducerRuns: r.producerRuns.Load(),
		Batches:      r.batches.Load(),
		PagesScanned: r.pagesScanned.Load(),
	}
}

// Attach joins the circular shared scan over t, starting its producer if
// none is in flight. The returned Reader delivers one full rotation of
// the table from the next morsel boundary and implements
// engine.BatchSource, so it plugs directly into an engine.SharedScan.
func (r *Registry) Attach(t *engine.Table) *Reader {
	r.attaches.Add(1)
	if t.Heap.NumPages() == 0 {
		// Empty table: a complete, empty rotation.
		rd := &Reader{ch: make(chan *engine.Block), done: make(chan struct{})}
		close(rd.ch)
		return rd
	}
	r.mu.Lock()
	g := r.groups[t.Name]
	if g == nil {
		g = newGroup(r, t, len(r.groups))
		r.groups[t.Name] = g
	}
	r.mu.Unlock()
	return g.attach()
}

// WaitIdle blocks until no producer incarnation is running. Simulated
// drivers call it after their clients finish and before closing the
// producers' trace recorders.
func (r *Registry) WaitIdle() {
	r.mu.Lock()
	for r.running > 0 {
		r.idle.Wait()
	}
	r.mu.Unlock()
}

func (r *Registry) producerStarted() {
	r.mu.Lock()
	r.running++
	r.mu.Unlock()
	r.producerRuns.Add(1)
}

func (r *Registry) producerDone() {
	r.mu.Lock()
	r.running--
	r.idle.Broadcast()
	r.mu.Unlock()
}

// defaultProducerCtx builds an untraced context in a private high slot.
func (r *Registry) defaultProducerCtx() *engine.Ctx {
	slot := defaultProducerSlot + int(r.prodSlots.Add(1)) - 1
	return r.db.NewCtx(nil, slot, 4<<20)
}

// Batches are engine.Blocks recycled through the group's free ring: the
// reference count tracks outstanding holders (the coordinator while
// delivering, plus every consumer a block was delivered to), and the last
// release recycles the buffer. Block.Pages carries the morsel's heap-page
// span, which the coordinator keys rotation bookkeeping on. Using the
// engine's batch type directly means a shared rotation delivers the same
// currency every other execution mode consumes — no re-materialization at
// the share/engine boundary.

// job is one morsel assignment in a lap's circular schedule.
type job struct {
	seq    int
	lo, hi int
}

// scanDone is a worker's completion report.
type scanDone struct {
	seq int
	b   *engine.Block
	err error
}

// group is one table's shared-scan state.
type group struct {
	reg   *Registry
	table *engine.Table
	free  chan *engine.Block

	mu      sync.Mutex
	pending []*Reader
	active  []*Reader
	running bool
	pos     int // next page the scan will deliver (a morsel boundary)
	workers []*engine.Ctx
}

func newGroup(reg *Registry, t *engine.Table, idx int) *group {
	cfg := reg.cfg
	rowW := t.Schema.RowWidth()
	capRows := cfg.MorselPages * (storage.PageSize / rowW)
	if capRows == 0 {
		capRows = 1
	}
	batchBytes := capRows * rowW
	arenaBytes := cfg.RingBatches*((batchBytes+mem.LineSize-1)&^(mem.LineSize-1)) + mem.LineSize
	arena := mem.NewArena(batchRegionBase+mem.Addr(idx)*(64<<20), arenaBytes)
	g := &group{
		reg:   reg,
		table: t,
		free:  make(chan *engine.Block, cfg.RingBatches),
	}
	for i := 0; i < cfg.RingBatches; i++ {
		b := engine.NewBlock(arena, capRows, rowW)
		b.SetHome(g.free)
		g.free <- b
	}
	return g
}

// attach registers a reader and ensures a producer incarnation is
// running. The reader is integrated into the rotation at the next batch
// boundary the coordinator reaches.
func (g *group) attach() *Reader {
	rd := &Reader{
		g:    g,
		ch:   make(chan *engine.Block, g.reg.cfg.ReaderLag),
		done: make(chan struct{}),
	}
	rd.start.Store(-1)
	g.mu.Lock()
	g.pending = append(g.pending, rd)
	if !g.running {
		g.running = true
		g.reg.producerStarted()
		go g.produce()
	}
	g.mu.Unlock()
	return rd
}

// workerCtxs lazily builds the producer workers' execution contexts; they
// persist across incarnations (in simulated runs each is a chip thread).
func (g *group) workerCtxs() []*engine.Ctx {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.workers == nil {
		cfg := g.reg.cfg
		g.workers = make([]*engine.Ctx, cfg.ProducerWorkers)
		for w := range g.workers {
			if cfg.NewProducerCtx != nil {
				g.workers[w] = cfg.NewProducerCtx(g.table.Name, w)
			}
			if g.workers[w] == nil {
				g.workers[w] = g.reg.defaultProducerCtx()
			}
		}
	}
	return g.workers
}

// produce is one producer incarnation: it runs laps while consumers are
// attached and exits — releasing the incarnation — when none remain.
func (g *group) produce() {
	defer g.reg.producerDone()
	for {
		g.runLap()
		g.mu.Lock()
		if len(g.pending) == 0 && len(g.active) == 0 {
			g.running = false
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
	}
}

// runLap drives the circular scan from g.pos until no consumers remain
// (or a scan error): workers claim morsels in circular order and fill
// batches concurrently; the coordinator reorders completions by sequence
// number and delivers them in page order, integrating newly attached
// readers and closing readers whose rotation has wrapped.
func (g *group) runLap() {
	cfg := g.reg.cfg
	ws := g.workerCtxs()
	ring := cap(g.free)
	jobs := make(chan job, len(ws))
	donec := make(chan scanDone, ring+len(ws))
	var wwg sync.WaitGroup
	for _, ctx := range ws {
		wwg.Add(1)
		go g.scanWorker(ctx, jobs, donec, &wwg)
	}

	issued, completed, delivered := 0, 0, 0
	inflight := make(map[int]*engine.Block)
	jobPage := make(map[int]int)
	nextPage := g.pos
	var scanErr error

	for scanErr == nil {
		// Keep up to ring morsels in flight ahead of delivery. Page count
		// is re-read per job so pages appended between laps are covered;
		// wrap happens at the count current when the head reaches the end.
		for issued-delivered < ring {
			n := g.table.Heap.NumPages()
			if n == 0 {
				break
			}
			lo := nextPage
			if lo >= n {
				lo = 0
			}
			hi := lo + cfg.MorselPages
			if hi > n {
				hi = n
			}
			pushed := false
			select {
			case jobs <- job{seq: issued, lo: lo, hi: hi}:
				pushed = true
			default:
			}
			if !pushed {
				break
			}
			jobPage[issued] = lo
			issued++
			if hi >= n {
				nextPage = 0
			} else {
				nextPage = hi
			}
		}
		if issued == delivered {
			// Nothing schedulable — the table has no pages (Attach screens
			// this; defensive): complete every reader with an empty rotation.
			g.failReaders(nil)
			break
		}
		// Collect completions until the next in-order batch arrives.
		for inflight[delivered] == nil {
			d := <-donec
			completed++
			if d.err != nil {
				scanErr = d.err
				d.b.ResetRefs(1)
				d.b.Release()
				break
			}
			inflight[d.seq] = d.b
		}
		if scanErr != nil {
			break
		}
		b := inflight[delivered]
		delete(inflight, delivered)
		delete(jobPage, delivered)
		delivered++
		g.reg.batches.Add(1)
		g.reg.pagesScanned.Add(uint64(b.Pages.Hi - b.Pages.Lo))
		if !g.deliver(b) {
			break
		}
	}

	// On error, fail the attached readers before draining: their closed
	// channels make consumers release held batches, which the still-running
	// workers may need to finish their claimed morsels. (Readers attaching
	// after this sweep land in pending and are served by the next lap.)
	if scanErr != nil {
		g.failReaders(scanErr)
	}
	// Drain: let workers finish claimed morsels, discard their output, and
	// rewind the persistent position to the first undelivered page.
	close(jobs)
	for completed < issued {
		d := <-donec
		completed++
		if d.b != nil {
			d.b.ResetRefs(1)
			d.b.Release()
		}
	}
	wwg.Wait()
	for _, b := range inflight {
		b.ResetRefs(1)
		b.Release()
	}
	if p, ok := jobPage[delivered]; ok {
		g.pos = p
	} else {
		n := g.table.Heap.NumPages()
		if n > 0 {
			g.pos = nextPage % n
		}
	}
}

// scanWorker claims morsels and decodes them into free blocks. The
// worker's vectorized scan traces the page reads and the block stores
// that make the rows visible to consumers on other cores.
func (g *group) scanWorker(ctx *engine.Ctx, jobs <-chan job, donec chan<- scanDone, wwg *sync.WaitGroup) {
	defer wwg.Done()
	for j := range jobs {
		b := <-g.free
		err := g.fill(ctx, b, j)
		donec <- scanDone{seq: j.seq, b: b, err: err}
	}
}

// fill decodes the morsel's pages straight into the ring block with the
// engine's vectorized scan — the same FillBlock primitive serial and
// morsel-parallel plans use.
func (g *group) fill(ctx *engine.Ctx, b *engine.Block, j job) error {
	b.Reset()
	s := &engine.ScanVec{Table: g.table, Range: &engine.PageRange{Lo: j.lo, Hi: j.hi}}
	if err := s.Open(ctx); err != nil {
		return err
	}
	defer s.Close(ctx)
	prev := -1
	for {
		more, err := s.FillBlock(ctx, b)
		if err != nil {
			return err
		}
		if !more {
			b.Pages = engine.PageRange{Lo: j.lo, Hi: j.hi}
			return nil
		}
		if b.N() == prev {
			return fmt.Errorf("share: batch overflow on %q pages [%d,%d)", g.table.Name, j.lo, j.hi)
		}
		prev = b.N()
	}
}

// deliver hands b to every attached reader, integrating pending readers
// first (their rotation starts at this block) and closing readers whose
// rotation has come back around to its start page. It reports whether any
// consumer remains attached or pending.
func (g *group) deliver(b *engine.Block) bool {
	g.mu.Lock()
	for _, rd := range g.pending {
		g.active = append(g.active, rd)
	}
	g.pending = nil
	active := append([]*Reader(nil), g.active...)
	g.mu.Unlock()

	// One producer hold plus one per delivery attempt keeps the block
	// alive until the slowest consumer releases it.
	b.ResetRefs(1)
	keep := active[:0]
	for _, rd := range active {
		if rd.start.Load() < 0 {
			rd.start.Store(int64(b.Pages.Lo))
		} else if int(rd.start.Load()) == b.Pages.Lo && rd.got > 0 {
			// Full rotation: the head is back at the reader's start page.
			close(rd.ch)
			g.reg.rotations.Add(1)
			continue
		}
		b.Retain()
		select {
		case rd.ch <- b:
			rd.got++
			keep = append(keep, rd)
		case <-rd.done:
			// Consumer abandoned mid-rotation: detach it.
			b.Release()
			close(rd.ch)
		}
	}

	g.mu.Lock()
	g.active = append(g.active[:0], keep...)
	remain := len(g.active) > 0 || len(g.pending) > 0
	g.mu.Unlock()
	b.Release()
	return remain
}

// failReaders aborts every attached and pending reader with err.
func (g *group) failReaders(err error) {
	g.mu.Lock()
	readers := append(append([]*Reader(nil), g.active...), g.pending...)
	g.active, g.pending = nil, nil
	g.mu.Unlock()
	for _, rd := range readers {
		rd.err = err
		close(rd.ch)
	}
}

// Reader is one consumer's view of a circular shared scan: the blocks of
// exactly one rotation, in circular page order from its attach point. It
// implements engine.BatchSource.
type Reader struct {
	g    *group
	ch   chan *engine.Block
	done chan struct{}
	cur  *engine.Block
	err  error

	// start is the rotation's first page (-1 until the coordinator
	// integrates the reader); got counts delivered blocks and is touched
	// only by the coordinator.
	start atomic.Int64
	got   int

	closeOnce sync.Once
}

// NextBlock implements engine.BatchSource. It releases the previously
// returned block.
func (r *Reader) NextBlock() (*engine.Block, bool) {
	if r.cur != nil {
		r.cur.Release()
		r.cur = nil
	}
	b, ok := <-r.ch
	if !ok {
		return nil, false
	}
	r.cur = b
	return b, true
}

// Err implements engine.BatchSource: it reports a producer-side failure,
// valid once NextBlock has returned ok=false.
func (r *Reader) Err() error { return r.err }

// StartPage returns the heap page at which this reader's rotation began
// (its row order equals a scan with that StartPage). It is valid once
// the first block has been received — in particular after the rotation
// completes. A reader over an empty table reports 0.
func (r *Reader) StartPage() int {
	if v := r.start.Load(); v > 0 {
		return int(v)
	}
	return 0
}

// Close implements engine.BatchSource: it detaches from the scan,
// releasing the current and any still-queued blocks. Safe to call
// whether or not the rotation completed.
func (r *Reader) Close() {
	r.closeOnce.Do(func() {
		if r.cur != nil {
			r.cur.Release()
			r.cur = nil
		}
		close(r.done)
		// Drain asynchronously: queued blocks recycle immediately, and
		// the goroutine exits when the coordinator closes the channel
		// (it always does — on detach, rotation end, or failure).
		go func() {
			for b := range r.ch {
				b.Release()
			}
		}()
	})
}
