package share

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

// shareDB builds a small table of rows (id, val) spanning several pages.
func shareDB(t *testing.T, rows int) (*engine.DB, *engine.Table) {
	t.Helper()
	db := engine.NewDB(engine.Config{ArenaBytes: 32 << 20})
	tab, err := db.CreateTable("t", engine.Schema{engine.Int("id"), engine.Int("val")}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tab.Insert(nil, []engine.Value{engine.IV(int64(i)), engine.IV(int64(i % 97))}); err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

// drainShared runs a SharedScan over one rotation and returns the ids in
// delivery order.
func drainShared(t *testing.T, db *engine.DB, tab *engine.Table, reg *Registry, worker int) ([]int64, int) {
	t.Helper()
	rd := reg.Attach(tab)
	ctx := db.NewCtx(nil, worker, 4<<20)
	op := &engine.RowAdapter{Vec: &engine.SharedScan{Table: tab, Source: rd}}
	var ids []int64
	err := engine.Run(ctx, op, func(row []byte) error {
		ids = append(ids, engine.RowInt(row, 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, rd.StartPage()
}

// seqIDs scans serially from startPage, returning ids in scan order.
func seqIDs(t *testing.T, db *engine.DB, tab *engine.Table, startPage int) []int64 {
	t.Helper()
	ctx := db.NewCtx(nil, 63, 4<<20)
	var ids []int64
	err := engine.Run(ctx, &engine.SeqScan{Table: tab, StartPage: startPage}, func(row []byte) error {
		ids = append(ids, engine.RowInt(row, 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestSharedScanOneRotation: a single consumer sees every row exactly
// once, in the order of a SeqScan from its start page.
func TestSharedScanOneRotation(t *testing.T) {
	const rows = 5000
	db, tab := shareDB(t, rows)
	reg := NewRegistry(db, Config{MorselPages: 4})
	ids, start := drainShared(t, db, tab, reg, 1)
	if len(ids) != rows {
		t.Fatalf("shared rotation delivered %d rows, want %d", len(ids), rows)
	}
	want := seqIDs(t, db, tab, start)
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("row %d: shared id %d, serial id %d (start page %d)", i, ids[i], want[i], start)
		}
	}
	reg.WaitIdle()
	st := reg.Stats()
	if st.Rotations != 1 || st.Attaches != 1 {
		t.Fatalf("stats = %+v, want 1 rotation / 1 attach", st)
	}
}

// TestSharedScanLateAttach: a consumer that attaches mid-rotation joins
// at the current position, wraps around, and still sees every row once in
// SeqScan-from-start order.
func TestSharedScanLateAttach(t *testing.T) {
	const rows = 8000
	db, tab := shareDB(t, rows)
	reg := NewRegistry(db, Config{MorselPages: 2, ReaderLag: 1})

	firstAttached := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]int64, 2)
	starts := make([]int, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		rd := reg.Attach(tab)
		close(firstAttached)
		ctx := db.NewCtx(nil, 1, 4<<20)
		var ids []int64
		if err := engine.Run(ctx, &engine.RowAdapter{Vec: &engine.SharedScan{Table: tab, Source: rd}}, func(row []byte) error {
			ids = append(ids, engine.RowInt(row, 0))
			return nil
		}); err != nil {
			t.Error(err)
		}
		results[0], starts[0] = ids, rd.StartPage()
	}()
	go func() {
		defer wg.Done()
		<-firstAttached
		// Let the rotation move before joining.
		ids, start := drainShared(t, db, tab, reg, 2)
		results[1], starts[1] = ids, start
	}()
	wg.Wait()
	reg.WaitIdle()

	for c := 0; c < 2; c++ {
		if len(results[c]) != rows {
			t.Fatalf("consumer %d saw %d rows, want %d", c, len(results[c]), rows)
		}
		want := seqIDs(t, db, tab, starts[c])
		for i := range want {
			if results[c][i] != want[i] {
				t.Fatalf("consumer %d row %d: got id %d, want %d (start %d)", c, i, results[c][i], want[i], starts[c])
			}
		}
	}
}

// TestSharedScanProducerQuiesces: the producer incarnation ends once all
// consumers detach and restarts — continuing from its saved position —
// when a new one attaches.
func TestSharedScanProducerQuiesces(t *testing.T) {
	db, tab := shareDB(t, 3000)
	reg := NewRegistry(db, Config{MorselPages: 2})
	if n, _ := drainShared(t, db, tab, reg, 1); len(n) != 3000 {
		t.Fatalf("rotation 1 delivered %d rows", len(n))
	}
	reg.WaitIdle()
	runs := reg.Stats().ProducerRuns
	if runs == 0 {
		t.Fatal("no producer incarnation recorded")
	}
	ids, _ := drainShared(t, db, tab, reg, 2)
	if len(ids) != 3000 {
		t.Fatalf("rotation 2 delivered %d rows", len(ids))
	}
	reg.WaitIdle()
	if got := reg.Stats().ProducerRuns; got != runs+1 {
		t.Fatalf("producer runs = %d, want %d (one fresh incarnation per idle restart)", got, runs+1)
	}
}

// TestSharedScanEmptyTable: attaching to an empty table completes with an
// empty rotation instead of hanging.
func TestSharedScanEmptyTable(t *testing.T) {
	db := engine.NewDB(engine.Config{ArenaBytes: 16 << 20})
	tab, err := db.CreateTable("empty", engine.Schema{engine.Int("id")}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db, Config{})
	rd := reg.Attach(tab)
	if _, ok := rd.NextBlock(); ok {
		t.Fatal("empty table delivered a batch")
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	rd.Close()
}

// TestScanShareHammer is the -race stress: many goroutines attach and
// detach continuously, a fraction abandoning mid-rotation, while the
// producer keeps rotating. Full rotations must always deliver the exact
// row count.
func TestScanShareHammer(t *testing.T) {
	const rows = 4000
	db, tab := shareDB(t, rows)
	reg := NewRegistry(db, Config{MorselPages: 2, ProducerWorkers: 3, RingBatches: 6, ReaderLag: 1})

	workers := 8
	iters := 6
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ctx := db.NewCtx(nil, w, 4<<20)
			for it := 0; it < iters; it++ {
				rd := reg.Attach(tab)
				if rng.Intn(3) == 0 {
					// Abandon mid-rotation after a few batches.
					quit := 1 + rng.Intn(3)
					for i := 0; i < quit; i++ {
						if _, ok := rd.NextBlock(); !ok {
							break
						}
					}
					rd.Close()
					continue
				}
				n := 0
				op := &engine.RowAdapter{Vec: &engine.SharedScan{Table: tab, Source: rd}}
				if err := engine.Run(ctx, op, func([]byte) error { n++; return nil }); err != nil {
					t.Error(err)
					return
				}
				if n != rows {
					t.Errorf("worker %d iter %d: %d rows, want %d", w, it, n, rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	reg.WaitIdle()
	if st := reg.Stats(); st.Rotations == 0 {
		t.Fatalf("no full rotations completed: %+v", st)
	}
}

// TestSharedScanManyRotationsNoArenaLeak: the producer fills ring blocks
// with a fresh ScanVec per morsel; its per-fill arena footprint must be
// zero (the scan's own output block is lazy and never allocated on the
// FillBlock path), or the long-lived producer workspace would exhaust
// after a few hundred rotations and crash the registry.
func TestSharedScanManyRotationsNoArenaLeak(t *testing.T) {
	db, tab := shareDB(t, 1500)
	reg := NewRegistry(db, Config{MorselPages: 2, ProducerWorkers: 1})
	rotations := 120
	if testing.Short() {
		rotations = 30
	}
	for i := 0; i < rotations; i++ {
		if ids, _ := drainShared(t, db, tab, reg, 1+i%4); len(ids) != 1500 {
			t.Fatalf("rotation %d delivered %d rows", i, len(ids))
		}
	}
	reg.WaitIdle()
	if st := reg.Stats(); st.Rotations != uint64(rotations) {
		t.Fatalf("stats: %+v, want %d rotations", st, rotations)
	}
}

// TestResultCacheVersionInvalidation: a write to the table changes its
// version, so the key minted before the write can never hit afterwards —
// the cache cannot serve stale aggregates.
func TestResultCacheVersionInvalidation(t *testing.T) {
	db, tab := shareDB(t, 100)
	_ = db
	c := NewResultCache(8)
	key := func() ResultKey {
		return ResultKey{Tables: "t", Versions: Versions(tab.Version()), Plan: 42}
	}
	k0 := key()
	c.Put(k0, [][]engine.Value{{engine.IV(7)}})
	if rows, ok := c.Get(key()); !ok || rows[0][0].I != 7 {
		t.Fatal("expected a hit before any write")
	}
	if _, err := tab.Insert(nil, []engine.Value{engine.IV(100), engine.IV(0)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key()); ok {
		t.Fatal("stale hit: key with post-write version matched pre-write entry")
	}
	if _, ok := c.Get(k0); !ok {
		t.Fatal("pre-write key should still resolve (superseded entries age out via LRU)")
	}
}

// TestResultCacheLRU: eviction removes the least recently used entry.
func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	k := func(i uint64) ResultKey { return ResultKey{Tables: "t", Plan: i} }
	c.Put(k(1), nil)
	c.Put(k(2), nil)
	if _, ok := c.Get(k(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(k(3), nil)
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("entry 1 should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
