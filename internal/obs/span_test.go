package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// drainMarks consumes every record of s, delivering Mark records to tr at
// the synthetic cycles in order — a stand-in for the simulator's retire
// path.
func drainMarks(tr *Tracer, s *trace.Stream, cycles []uint64) {
	i := 0
	for {
		r, ok := s.Next()
		if !ok {
			return
		}
		if r.Kind() != trace.Mark {
			continue
		}
		tr.OnMark(0, r.MarkID(), r.MarkBegin(), cycles[i])
		i++
	}
}

func TestTracerStampsSpansFromMarks(t *testing.T) {
	tr := NewTracer()
	rec, s := trace.Pipe()
	root := tr.BeginAt(0, 0, "run", "run")
	tr.StampStart(root, 0)
	sp := tr.Begin(rec, 0, root.ID(), "txn-0", "txn")
	child := tr.Begin(rec, 0, sp.ID(), "probe", "step")
	child.End(rec)
	sp.End(rec)
	rec.Close()
	drainMarks(tr, s, []uint64{10, 20, 80, 100})
	root.EndAt(150)
	tr.Finish(150)

	run := tr.Snapshot("run", 150)
	if len(run.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(run.Spans))
	}
	rd, td, cd := run.Spans[0], run.Spans[1], run.Spans[2]
	if rd.CycStart != 0 || rd.CycEnd != 150 || rd.Cat != "run" || rd.Parent != 0 {
		t.Errorf("root span misrendered: %+v", rd)
	}
	if td.CycStart != 10 || td.CycEnd != 100 || td.Parent != rd.ID {
		t.Errorf("txn span misrendered: %+v", td)
	}
	if cd.CycStart != 20 || cd.CycEnd != 80 || cd.Parent != td.ID {
		t.Errorf("step span misrendered: %+v", cd)
	}
	if cd.Cycles() != 60 {
		t.Errorf("step Cycles() = %d, want 60", cd.Cycles())
	}
	for _, d := range run.Spans {
		if d.WallEndUS < d.WallStartUS {
			t.Errorf("span %q wall clock runs backwards: %+v", d.Name, d)
		}
	}
}

func TestTracerFinishClosesLostSpans(t *testing.T) {
	tr := NewTracer()
	rec, s := trace.Pipe()
	sp := tr.Begin(rec, 0, 0, "drained", "step")
	rec.Close()
	drainMarks(tr, s, []uint64{40})
	// End marker never reaches the consumer (teardown drain); Finish must
	// close the span at the final cycle.
	sp.End(nil)
	tr.Finish(90)
	run := tr.Snapshot("x", 90)
	if run.Spans[0].CycStart != 40 || run.Spans[0].CycEnd != 90 {
		t.Errorf("lost span closed at [%d,%d], want [40,90]", run.Spans[0].CycStart, run.Spans[0].CycEnd)
	}
}

func TestNilTracerAndZeroScope(t *testing.T) {
	var tr *Tracer
	sp := tr.BeginAt(0, 0, "x", "y")
	tr.StampStart(sp, 1)
	tr.OnMark(0, 1, true, 1)
	tr.Finish(1)
	if run := tr.Snapshot("empty", 5); len(run.Spans) != 0 || run.Cycles != 5 {
		t.Errorf("nil tracer snapshot: %+v", run)
	}
	var sc Scope
	if sc.Enabled() {
		t.Error("zero Scope reports enabled")
	}
	s2 := sc.Begin(nil, "a", "b")
	if s2 != nil {
		t.Error("disabled scope returned a span")
	}
	s2.End(nil)
	s2.EndAt(3)
	if s2.ID() != 0 {
		t.Error("nil span has a nonzero id")
	}
	if sc.Under(s2) != sc {
		t.Error("Under(nil) changed the scope")
	}
}

func TestScopeUnderAndOnThread(t *testing.T) {
	tr := NewTracer()
	sc := Scope{T: tr, Thread: 1}
	sp := tr.BeginAt(1, 0, "p", "c")
	child := sc.Under(sp)
	if child.Parent != sp.ID() || child.Thread != 1 {
		t.Errorf("Under: %+v", child)
	}
	if got := child.OnThread(3).Thread; got != 3 {
		t.Errorf("OnThread = %d, want 3", got)
	}
}

func TestWriteChrome(t *testing.T) {
	runs := []Run{{
		Label:  "demo",
		Cycles: 100,
		Spans: []SpanData{
			{ID: 1, Name: "run", Cat: "run", CycStart: 0, CycEnd: 100, WallEndUS: 5},
			{ID: 2, Parent: 1, Name: "txn-0", Cat: "txn", CycStart: 10, CycEnd: 90, Async: true},
			{ID: 3, Parent: 2, Name: "probe", Cat: "step", CycStart: 20, CycEnd: 30},
		},
	}}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byPh := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
	}
	// One process_name + one thread_name metadata record, two complete
	// spans, one async begin/end pair.
	if byPh["M"] != 2 || byPh["X"] != 2 || byPh["b"] != 1 || byPh["e"] != 1 {
		t.Fatalf("event phases %v, want M:2 X:2 b:1 e:1", byPh)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Name != "probe" {
			continue
		}
		if e.Ts != 20 || e.Dur == nil || *e.Dur != 10 {
			t.Errorf("probe rendered at ts=%g dur=%v, want ts=20 dur=10", e.Ts, e.Dur)
		}
		if e.Args["parent"] != float64(2) || e.Args["cycles"] != float64(10) {
			t.Errorf("probe args %v", e.Args)
		}
		if _, ok := e.Args["wall_us"]; !ok {
			t.Error("probe args missing wall_us — the second clock must survive export")
		}
	}
}
