package obs

import (
	"math"
	"strings"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestLogBucketsPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for factor <= 1")
		}
	}()
	LogBuckets(1, 1, 3)
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-560.5) > 1e-9 {
		t.Errorf("sum = %g, want 560.5", h.Sum())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	// Buckets render cumulative, and the explicit +Inf equals _count.
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="10"} 3`,
		`h_bucket{le="100"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 560.5`,
		`h_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestNilMetricsDiscard(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(1)
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics recorded something")
	}
}

func TestRegistryRenderOrderAndReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("zz_first", "registered first")
	r.Gauge("aa_second", "registered second")
	a2 := r.Counter("zz_first", "registered first")
	if a != a2 {
		t.Fatal("re-registering a name returned a different counter")
	}
	a.Add(2)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	// Registration order, not name order.
	if strings.Index(out, "zz_first") > strings.Index(out, "aa_second") {
		t.Errorf("families rendered out of registration order:\n%s", out)
	}
	if !strings.Contains(out, "# HELP zz_first registered first\n# TYPE zz_first counter\nzz_first 2\n") {
		t.Errorf("counter family misrendered:\n%s", out)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "counter")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering m as a gauge")
		}
	}()
	r.Gauge("m", "gauge")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "requests", "mode")
	cv.With("vec-dss").Add(3)
	cv.With("staged-oltp").Inc()
	if cv.With("vec-dss").Value() != 3 {
		t.Error("With did not return the same child for the same labels")
	}
	hv := r.HistogramVec("lat", "latency", []float64{1, 2}, "mode")
	hv.With(`we"ird`).Observe(1.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, line := range []string{
		`req_total{mode="vec-dss"} 3`,
		`req_total{mode="staged-oltp"} 1`,
		`lat_bucket{mode="we\"ird",le="2"} 1`,
		`lat_count{mode="we\"ird"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}
