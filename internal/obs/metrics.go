// Package obs is the unified observability layer: a metrics registry
// (named counters, gauges, and log-bucketed histograms, with optional
// labels) rendered in the Prometheus text exposition format, and a
// dual-clock span tracer whose spans carry both host wall time and
// simulated cycles, exportable as Chrome trace-event JSON (span.go,
// chrome.go).
//
// Everything is nil-safe on the observe path: a nil Counter, Gauge,
// Histogram, Tracer, or zero Scope discards its observations, so
// instrumented code runs unconditionally and pays nothing when the
// subsystem is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into cumulative-on-output buckets with
// fixed upper bounds, plus a running sum — the Prometheus histogram
// model. Observe is lock-free and safe for concurrent use.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LogBuckets returns count upper bounds starting at start, each factor
// times the previous — the geometric ladder latency distributions need.
func LogBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count <= 0 {
		panic(fmt.Sprintf("obs: bad log buckets (start %g, factor %g, count %d)", start, factor, count))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered family, renderable in the text exposition.
type metric interface {
	metricName() string
	write(w io.Writer)
}

// family carries the name/help shared by every registered kind.
type family struct {
	name, help string
}

func (f family) metricName() string { return f.name }

func (f family) header(w io.Writer, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
}

type counterFamily struct {
	family
	c *Counter
}

func (f counterFamily) write(w io.Writer) {
	f.header(w, "counter")
	fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
}

type gaugeFamily struct {
	family
	g *Gauge
}

func (f gaugeFamily) write(w io.Writer) {
	f.header(w, "gauge")
	fmt.Fprintf(w, "%s %d\n", f.name, f.g.Value())
}

type histogramFamily struct {
	family
	h *Histogram
}

func (f histogramFamily) write(w io.Writer) {
	f.header(w, "histogram")
	writeHistogram(w, f.name, "", f.h)
}

// writeHistogram renders one histogram child: cumulative buckets, an
// explicit +Inf bucket equal to _count, then _sum and _count. labels is
// either empty or a rendered, comma-joined label list without braces.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	join := func(extra string) string {
		switch {
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, join(`le="`+formatLe(b)+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, join(`le="+Inf"`), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, plain, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, h.Count())
}

func formatLe(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CounterVec is a counter family with labels; With materializes (or
// returns) the child for one label-value tuple.
type CounterVec struct {
	family
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
	order    []string
}

// With returns the child counter for the given label values (one per
// declared label name, in declaration order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

func (v *CounterVec) write(w io.Writer) {
	v.header(w, "counter")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, key := range sorted(v.order) {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, key, v.children[key].Value())
	}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	family
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

func (v *HistogramVec) write(w io.Writer) {
	v.header(w, "histogram")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, key := range sorted(v.order) {
		writeHistogram(w, v.name, key, v.children[key])
	}
}

// labelKey renders one label-value tuple in exposition syntax.
func labelKey(labels, values []string) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("obs: %d values for labels %v", len(values), labels))
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l + `="` + escapeLabel(values[i]) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func sorted(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}

// Registry holds named metric families and renders them in registration
// order. Registering an existing name returns the existing instance (and
// panics if the kind differs), so independent components can share one
// family by name.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
	order  []metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := make()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric {
		return counterFamily{family{name, help}, &Counter{}}
	})
	f, ok := m.(counterFamily)
	if !ok {
		panic(fmt.Sprintf("obs: %s is not a counter", name))
	}
	return f.c
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric {
		return gaugeFamily{family{name, help}, &Gauge{}}
	})
	f, ok := m.(gaugeFamily)
	if !ok {
		panic(fmt.Sprintf("obs: %s is not a gauge", name))
	}
	return f.g
}

// Histogram registers (or returns) the named histogram with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric {
		return histogramFamily{family{name, help}, newHistogram(bounds)}
	})
	f, ok := m.(histogramFamily)
	if !ok {
		panic(fmt.Sprintf("obs: %s is not a histogram", name))
	}
	return f.h
}

// CounterVec registers (or returns) the named labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{family: family{name, help}, labels: labels, children: make(map[string]*Counter)}
	})
	f, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %s is not a counter vec", name))
	}
	return f
}

// HistogramVec registers (or returns) the named labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	m := r.register(name, func() metric {
		return &HistogramVec{family: family{name, help}, labels: labels, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
	})
	f, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: %s is not a histogram vec", name))
	}
	return f
}

// WritePrometheus renders every family in registration order in the text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]metric(nil), r.order...)
	r.mu.Unlock()
	for _, m := range fams {
		m.write(w)
	}
}

// JoinMetrics bundles the hash-join internals a driver can hand down
// into join builds (nil fields are simply not fed): the bucket-chain
// length distribution at build completion and per-mode build/partition
// counters, which together show how radix partitioning shortens the
// dependent-load chains behind the paper's DSS data stalls.
type JoinMetrics struct {
	// ChainLen observes every non-empty bucket chain's length when a
	// join build finishes.
	ChainLen *Histogram
	// Builds counts completed join builds by join mode; Partitions
	// counts the partition tables those builds fanned out into (a
	// chained build counts one), so Partitions/Builds is the fanout.
	Builds     *CounterVec
	Partitions *CounterVec
}

// NewJoinMetrics registers the engine join families on r.
func NewJoinMetrics(r *Registry) JoinMetrics {
	return JoinMetrics{
		ChainLen: r.Histogram("engine_hash_chain_len",
			"Hash-join bucket chain lengths at build completion.",
			LogBuckets(1, 2, 8)),
		Builds: r.CounterVec("engine_join_builds_total",
			"Completed hash-join builds by join mode.", "mode"),
		Partitions: r.CounterVec("engine_join_partitions_total",
			"Partition hash tables created by join builds, by join mode.", "mode"),
	}
}

// SchedMetrics bundles the scheduler-internals histograms a driver can
// hand down into cohort-scheduled runs (nil fields are simply not fed).
type SchedMetrics struct {
	// QuantumSteps observes continuation steps executed per scheduling
	// quantum; ParkQuanta observes how many quanta an item stayed parked
	// on a busy lock before resuming.
	QuantumSteps *Histogram
	ParkQuanta   *Histogram
}
