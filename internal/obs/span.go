// Dual-clock span tracing. A Span measures one unit of work — a
// request, a transaction, a scheduler quantum, one continuation step —
// on two clocks at once: host wall time, stamped producer-side when the
// span opens and closes, and simulated cycles, stamped consumer-side
// when the simulator retires the begin/end markers the span emitted
// into its trace stream (trace.Mark records, which cost zero simulated
// cycles). Spans nest through parent ids, so an exported trace shows
// run → txn → stage/quantum → step attribution on the simulated
// timeline with the host timeline riding along in the span arguments.

package obs

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Span is one in-flight or completed unit of work. Fields are written
// under the owning Tracer's lock; read them through Snapshot.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	cat    string
	thread int
	async  bool

	wallStart time.Duration // since tracer epoch
	wallEnd   time.Duration // 0 = still open
	cycStart  uint64
	cycEnd    uint64
	cycStartSet,
	cycEndSet bool
}

// ID returns the span id (0 for a nil span), usable as a Scope parent.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAsync marks the span for async rendering in the Chrome export —
// required for spans that overlap others on the same thread (in-flight
// transactions of one cohort-scheduled worker).
func (s *Span) SetAsync() *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	s.async = true
	s.t.mu.Unlock()
	return s
}

// End closes the span: wall clock now, and an end marker into rec for
// the simulated clock (nil rec records wall time only).
func (s *Span) End(rec *trace.Recorder) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.wallEnd == 0 {
		s.wallEnd = time.Since(s.t.epoch)
	}
	s.t.mu.Unlock()
	rec.Mark(s.id, false)
}

// EndAt closes the span at an explicit simulated cycle, for virtual
// spans (no trace stream) such as a whole run.
func (s *Span) EndAt(cycle uint64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.wallEnd == 0 {
		s.wallEnd = time.Since(s.t.epoch)
	}
	s.cycEnd, s.cycEndSet = cycle, true
	s.t.mu.Unlock()
}

// SpanData is one completed span, immutable.
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	Thread int    `json:"thread"`
	Async  bool   `json:"async,omitempty"`
	// CycStart/CycEnd are simulated cycles (the primary timeline).
	CycStart uint64 `json:"cyc_start"`
	CycEnd   uint64 `json:"cyc_end"`
	// WallStartUS/WallEndUS are host microseconds since the tracer epoch.
	WallStartUS float64 `json:"wall_start_us"`
	WallEndUS   float64 `json:"wall_end_us"`
}

// Cycles returns the span's simulated-cycle duration.
func (s SpanData) Cycles() uint64 { return s.CycEnd - s.CycStart }

// WallUS returns the span's host duration in microseconds.
func (s SpanData) WallUS() float64 { return s.WallEndUS - s.WallStartUS }

// Run is one traced execution: a label, its reported cycle count, and
// every span collected during it. The root span (parent 0, cat "run")
// covers [0, Cycles] — span totals reconcile against Cycles exactly.
type Run struct {
	Label  string     `json:"label"`
	Cycles uint64     `json:"cycles"`
	Spans  []SpanData `json:"spans"`
}

// Tracer collects spans for one run. A nil Tracer discards everything,
// so instrumented code calls it unconditionally. Safe for concurrent
// use: producer goroutines open and close spans while the simulator
// goroutine stamps cycle times through OnMark.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	nextID uint64
	spans  []*Span
	byID   map[uint64]*Span
}

// NewTracer builds a tracer whose wall clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), byID: make(map[uint64]*Span)}
}

// Begin opens a span on thread under parent (0 = root), stamping wall
// time now and emitting a begin marker into rec so the simulator stamps
// the simulated start cycle when it reaches this point of the stream.
func (t *Tracer) Begin(rec *trace.Recorder, thread int, parent uint64, name, cat string) *Span {
	sp := t.BeginAt(thread, parent, name, cat)
	if sp != nil {
		rec.Mark(sp.id, true)
	}
	return sp
}

// BeginAt opens a span without emitting a marker — for virtual spans
// whose cycle bounds are set explicitly (StampStart/EndAt), or spans
// that only carry wall time.
func (t *Tracer) BeginAt(thread int, parent uint64, name, cat string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	sp := &Span{
		t: t, id: t.nextID, parent: parent, name: name, cat: cat,
		thread: thread, wallStart: time.Since(t.epoch),
	}
	t.spans = append(t.spans, sp)
	t.byID[sp.id] = sp
	return sp
}

// StampStart sets a span's simulated start cycle directly (virtual
// spans; marker-carrying spans are stamped through OnMark).
func (t *Tracer) StampStart(sp *Span, cycle uint64) {
	if t == nil || sp == nil {
		return
	}
	t.mu.Lock()
	sp.cycStart, sp.cycStartSet = cycle, true
	t.mu.Unlock()
}

// OnMark is the simulator's callback (sim.Chip.SetMarkHandler): the
// core model retired a begin or end marker for span id on thread at the
// given simulated cycle. Unknown ids are ignored (markers from a
// previous tracer cannot occur — ids are per-tracer — but a stream
// drained after Finish may still deliver them).
func (t *Tracer) OnMark(threadID int, id uint64, begin bool, cycle uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.byID[id]
	if sp == nil {
		return
	}
	if begin {
		sp.cycStart, sp.cycStartSet = cycle, true
		sp.thread = threadID
	} else {
		sp.cycEnd, sp.cycEndSet = cycle, true
	}
}

// Finish closes every open span at finalCycle: spans whose end marker
// never reached the simulator (the teardown drain bypasses the core
// models) end at the run's final cycle; spans whose begin marker never
// arrived collapse to zero width there. Call after the simulation ends,
// before Snapshot.
func (t *Tracer) Finish(finalCycle uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.wallEnd == 0 {
			sp.wallEnd = time.Since(t.epoch)
		}
		if !sp.cycStartSet {
			sp.cycStart, sp.cycStartSet = finalCycle, true
		}
		if !sp.cycEndSet || sp.cycEnd < sp.cycStart {
			sp.cycEnd, sp.cycEndSet = finalCycle, true
		}
	}
}

// Snapshot returns the collected spans as a Run, in creation order.
func (t *Tracer) Snapshot(label string, cycles uint64) Run {
	if t == nil {
		return Run{Label: label, Cycles: cycles}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Run{Label: label, Cycles: cycles, Spans: make([]SpanData, 0, len(t.spans))}
	for _, sp := range t.spans {
		out.Spans = append(out.Spans, SpanData{
			ID: sp.id, Parent: sp.parent, Name: sp.name, Cat: sp.cat,
			Thread: sp.thread, Async: sp.async,
			CycStart: sp.cycStart, CycEnd: sp.cycEnd,
			WallStartUS: float64(sp.wallStart) / float64(time.Microsecond),
			WallEndUS:   float64(sp.wallEnd) / float64(time.Microsecond),
		})
	}
	return out
}

// Scope is a tracer position — which tracer, which software thread,
// which parent span — threaded through instrumented layers so each can
// open child spans without knowing the whole ancestry. The zero Scope
// is disabled.
type Scope struct {
	T      *Tracer
	Thread int
	Parent uint64
}

// Enabled reports whether spans opened through this scope are recorded.
func (sc Scope) Enabled() bool { return sc.T != nil }

// Begin opens a span at this scope's position (nil when disabled).
func (sc Scope) Begin(rec *trace.Recorder, name, cat string) *Span {
	if sc.T == nil {
		return nil
	}
	return sc.T.Begin(rec, sc.Thread, sc.Parent, name, cat)
}

// Under returns the scope for children of sp (unchanged if sp is nil).
func (sc Scope) Under(sp *Span) Scope {
	if sp == nil {
		return sc
	}
	return Scope{T: sc.T, Thread: sc.Thread, Parent: sp.ID()}
}

// OnThread returns the scope relocated to software thread n.
func (sc Scope) OnThread(n int) Scope {
	sc.Thread = n
	return sc
}
