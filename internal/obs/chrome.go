// Chrome trace-event export: the "JSON Object Format" that Perfetto and
// chrome://tracing load. Each Run becomes one process (pid = run index,
// process_name = run label); each simulated software thread becomes one
// thread row. The timeline unit is the simulated cycle, rendered as one
// microsecond per cycle; host wall time travels in each event's args so
// both clocks survive the export. Nested spans are complete ("X")
// events; spans marked async (overlapping in-flight transactions on one
// scheduler thread) are async begin/end ("b"/"e") pairs.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders runs as Chrome trace-event JSON.
func WriteChrome(w io.Writer, runs []Run) error {
	var t chromeTrace
	t.DisplayTimeUnit = "ms"
	for pi, run := range runs {
		pid := pi + 1
		t.TraceEvents = append(t.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("%s (%d cycles)", run.Label, run.Cycles)},
		})
		threads := map[int]bool{}
		for _, sp := range run.Spans {
			if !threads[sp.Thread] {
				threads[sp.Thread] = true
				t.TraceEvents = append(t.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: sp.Thread,
					Args: map[string]any{"name": fmt.Sprintf("sim-thread-%d", sp.Thread)},
				})
			}
			args := map[string]any{
				"id": sp.ID, "cycles": sp.Cycles(), "wall_us": sp.WallUS(),
			}
			if sp.Parent != 0 {
				args["parent"] = sp.Parent
			}
			if sp.Async {
				// Async pair: overlapping spans on one thread row.
				t.TraceEvents = append(t.TraceEvents,
					chromeEvent{
						Name: sp.Name, Cat: sp.Cat, Ph: "b", Ts: float64(sp.CycStart),
						Pid: pid, Tid: sp.Thread, ID: fmt.Sprintf("0x%x", sp.ID), Args: args,
					},
					chromeEvent{
						Name: sp.Name, Cat: sp.Cat, Ph: "e", Ts: float64(sp.CycEnd),
						Pid: pid, Tid: sp.Thread, ID: fmt.Sprintf("0x%x", sp.ID),
					})
				continue
			}
			dur := float64(sp.Cycles())
			t.TraceEvents = append(t.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X", Ts: float64(sp.CycStart), Dur: &dur,
				Pid: pid, Tid: sp.Thread, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}
