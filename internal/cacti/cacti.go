// Package cacti implements an analytical cache access-time, area, and
// energy model in the spirit of Cacti 4.2 (Wilton & Jouppi), which the
// paper uses to derive realistic L2 hit latencies for each cache size.
//
// The model decomposes an access into decoder, wordline/bitline, sense,
// output-driver, and global-wire (H-tree to the selected bank) components.
// The structural story matches Cacti's: array delay grows logarithmically
// with capacity while global wire delay grows with the square root of the
// die area the cache occupies, so large caches are dominated by wires.
// Constants are calibrated to the latency points the paper cites
// (~4 cycles for sub-MB caches of the Pentium III era, 14+ cycles for
// multi-megabyte caches like Power5's, and still higher for the tens of
// megabytes of Xeon/Itanium-class L3s).
package cacti

import (
	"fmt"
	"math"
)

// Config describes the cache being modelled.
type Config struct {
	SizeBytes int     // total capacity
	Assoc     int     // set associativity
	LineBytes int     // line size (default 64)
	ClockGHz  float64 // core clock used to convert ns to cycles (default 4)
}

// Result reports the modelled characteristics.
type Result struct {
	LatencyNS     float64 // access time, nanoseconds
	LatencyCycles int     // access time in core cycles (ceiling)
	CycleTimeNS   float64 // random cycle time (bank busy time)
	AreaMM2       float64 // silicon area
	DynEnergyNJ   float64 // dynamic energy per access
	LeakageMW     float64 // static leakage power
	Banks         int     // number of banks chosen
	SubarrayRows  int     // rows per subarray
}

// Technology constants for a ~90 nm process with aggressively repeated
// global wires, tuned so the size→latency curve tracks the paper's points.
const (
	senseAndLatchNS = 0.55  // decode+sense+output fixed cost
	arrayStepNS     = 0.12  // per doubling of capacity beyond 64 KB
	wireNSPerMM     = 0.28  // repeated global wire delay
	mm2PerMB        = 4.5   // SRAM density incl. overhead
	baseDynNJ       = 0.08  // fixed dynamic energy per access
	dynNJPerMM      = 0.035 // wire dynamic energy
	leakMWPerMB     = 18.0  // subthreshold leakage
)

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 4.0
	}
	if c.Assoc == 0 {
		c.Assoc = 8
	}
	return c
}

func (c Config) validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cacti: non-positive size %d", c.SizeBytes)
	}
	if c.SizeBytes < c.LineBytes*c.Assoc {
		return fmt.Errorf("cacti: size %d smaller than one set (%d-way × %dB lines)",
			c.SizeBytes, c.Assoc, c.LineBytes)
	}
	if c.Assoc&(c.Assoc-1) != 0 {
		return fmt.Errorf("cacti: associativity %d not a power of two", c.Assoc)
	}
	return nil
}

// Model computes the access characteristics for cfg. It panics only on
// programmer error (zero value handled via defaults); invalid geometry
// returns an error.
func Model(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	sizeMB := float64(cfg.SizeBytes) / (1 << 20)
	area := sizeMB * mm2PerMB

	// Banking: one bank per ~2 MB keeps subarrays fast; at least one.
	banks := 1
	for float64(cfg.SizeBytes)/float64(banks) > 2<<20 {
		banks *= 2
	}
	bankBytes := cfg.SizeBytes / banks
	rows := int(math.Sqrt(float64(bankBytes) / float64(cfg.LineBytes)))
	if rows < 1 {
		rows = 1
	}

	// Array delay: grows with each doubling of capacity past 64 KB
	// (deeper decoders, longer word/bitlines within the bank mesh).
	doublings := math.Max(0, math.Log2(float64(cfg.SizeBytes)/(64<<10)))
	arrayNS := senseAndLatchNS + arrayStepNS*doublings

	// Global wire: half the H-tree span, proportional to sqrt(area).
	wireMM := math.Sqrt(area)
	wireNS := wireNSPerMM * wireMM

	latencyNS := arrayNS + wireNS
	cycles := int(math.Ceil(latencyNS * cfg.ClockGHz))

	return Result{
		LatencyNS:     latencyNS,
		LatencyCycles: cycles,
		CycleTimeNS:   arrayNS, // banks pipeline wire segments
		AreaMM2:       area,
		DynEnergyNJ:   baseDynNJ + dynNJPerMM*wireMM + 0.01*doublings,
		LeakageMW:     leakMWPerMB * sizeMB,
		Banks:         banks,
		SubarrayRows:  rows,
	}, nil
}

// Latency returns the modelled hit latency in cycles for a cache of the
// given size with default geometry, panicking on invalid sizes. It is the
// convenience used by simulator configuration code.
func Latency(sizeBytes int) int {
	r, err := Model(Config{SizeBytes: sizeBytes})
	if err != nil {
		panic(err)
	}
	return r.LatencyCycles
}

// Sweep models each size in sizes and returns the results in order.
func Sweep(sizes []int) ([]Result, error) {
	out := make([]Result, 0, len(sizes))
	for _, s := range sizes {
		r, err := Model(Config{SizeBytes: s})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
