package cacti

import (
	"testing"
	"testing/quick"
)

func TestLatencyMonotonicInSize(t *testing.T) {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20, 16 << 20, 26 << 20}
	prev := 0.0
	for _, s := range sizes {
		r, err := Model(Config{SizeBytes: s})
		if err != nil {
			t.Fatalf("Model(%d): %v", s, err)
		}
		if r.LatencyNS <= prev {
			t.Errorf("latency not increasing at %d bytes: %.3f <= %.3f", s, r.LatencyNS, prev)
		}
		prev = r.LatencyNS
	}
}

func TestCalibrationPoints(t *testing.T) {
	// The paper's narrative anchors: small caches ~4 cycles or less at L1
	// scale, ~Power5-class caches in the low teens, 26 MB well past that.
	cases := []struct {
		size     int
		min, max int
	}{
		{64 << 10, 1, 4},   // L1-class
		{1 << 20, 5, 9},    // small L2
		{4 << 20, 8, 12},   // paper's SMP node L2
		{16 << 20, 13, 18}, // paper's CMP shared L2
		{26 << 20, 16, 22}, // paper's largest configuration
	}
	for _, c := range cases {
		got := Latency(c.size)
		if got < c.min || got > c.max {
			t.Errorf("Latency(%d MB) = %d cycles, want in [%d, %d]",
				c.size>>20, got, c.min, c.max)
		}
	}
}

func TestLatencyGapMatchesPaperNarrative(t *testing.T) {
	// Paper: on-chip L2 latency more than tripled over a decade; our model
	// must show ≥3x between a 90s-class 256KB cache and a 26MB cache.
	small := Latency(256 << 10)
	big := Latency(26 << 20)
	if big < 3*small {
		t.Errorf("26MB (%d cyc) should be ≥3x 256KB (%d cyc)", big, small)
	}
}

func TestModelErrors(t *testing.T) {
	if _, err := Model(Config{SizeBytes: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Model(Config{SizeBytes: 128, Assoc: 8, LineBytes: 64}); err == nil {
		t.Error("size smaller than one set accepted")
	}
	if _, err := Model(Config{SizeBytes: 1 << 20, Assoc: 3}); err == nil {
		t.Error("non-power-of-two associativity accepted")
	}
}

func TestAreaAndLeakageScaleLinearly(t *testing.T) {
	a, _ := Model(Config{SizeBytes: 1 << 20})
	b, _ := Model(Config{SizeBytes: 4 << 20})
	if r := b.AreaMM2 / a.AreaMM2; r < 3.9 || r > 4.1 {
		t.Errorf("area ratio 4MB/1MB = %.2f, want ~4", r)
	}
	if r := b.LeakageMW / a.LeakageMW; r < 3.9 || r > 4.1 {
		t.Errorf("leakage ratio = %.2f, want ~4", r)
	}
}

func TestBankingGrowsWithSize(t *testing.T) {
	small, _ := Model(Config{SizeBytes: 1 << 20})
	big, _ := Model(Config{SizeBytes: 16 << 20})
	if small.Banks < 1 || big.Banks <= small.Banks {
		t.Errorf("banks: small=%d big=%d, want growth", small.Banks, big.Banks)
	}
}

func TestSweepOrder(t *testing.T) {
	sizes := []int{1 << 20, 2 << 20, 4 << 20}
	rs, err := Sweep(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].LatencyNS <= rs[i-1].LatencyNS {
			t.Errorf("sweep not monotonic at %d", i)
		}
	}
}

func TestSweepPropagatesError(t *testing.T) {
	if _, err := Sweep([]int{1 << 20, -5}); err == nil {
		t.Error("Sweep accepted invalid size")
	}
}

func TestModelProperties(t *testing.T) {
	f := func(mb uint8) bool {
		size := (int(mb)%32 + 1) << 20
		r, err := Model(Config{SizeBytes: size})
		if err != nil {
			return false
		}
		return r.LatencyCycles >= 1 && r.AreaMM2 > 0 && r.DynEnergyNJ > 0 &&
			r.Banks >= 1 && r.CycleTimeNS <= r.LatencyNS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFasterClockMoreCycles(t *testing.T) {
	slow, _ := Model(Config{SizeBytes: 8 << 20, ClockGHz: 2})
	fast, _ := Model(Config{SizeBytes: 8 << 20, ClockGHz: 5})
	if fast.LatencyCycles <= slow.LatencyCycles {
		t.Errorf("cycles at 5GHz (%d) should exceed 2GHz (%d)",
			fast.LatencyCycles, slow.LatencyCycles)
	}
	if fast.LatencyNS != slow.LatencyNS {
		t.Error("clock should not change wall-clock latency")
	}
}
