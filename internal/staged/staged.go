// Package staged implements the staged database system design of the
// paper's Section 6.3 (Harizopoulos & Ailamaki's StagedDB / QPipe line):
// query work is decomposed into stages that exchange packets — batches of
// tuples in the simulated address space — instead of executing one
// monolithic operator tree per request.
//
// Two executors realize the two scheduling policies the paper discusses:
//
//   - RunAffinity: producer and consumer stages share one hardware context
//     (STEPS-style cohort scheduling). A stage processes a whole packet
//     before yielding, so its instruction footprint stays L1I-resident,
//     and packets are sized to fit the L1D, so the consumer reads what the
//     producer just wrote at L1 cost.
//
//   - RunParallel: packets are driven through the engine's work-stealing
//     worker pool. One worker produces packets from the source; the rest
//     each run the whole stage chain on the packets they claim, every
//     worker with its own hardware context (its own trace stream) and so
//     its own core. Packets travel between cores through the shared L2,
//     trading data locality for true intra-query parallelism.
//
// Comparing monolithic Volcano execution against these two modes
// regenerates the paper's "opportunities" discussion quantitatively.
package staged

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Packet is a batch of fixed-width rows in a workspace arena.
type Packet struct {
	buf  []byte
	addr mem.Addr
	rowW int
	cap  int
	n    int
}

// NewPacket allocates a packet of capacity rows from work.
func NewPacket(work *mem.Arena, capRows, rowW int) *Packet {
	if capRows <= 0 || rowW <= 0 {
		panic(fmt.Sprintf("staged: bad packet geometry %d x %d", capRows, rowW))
	}
	a := work.Alloc(capRows*rowW, mem.LineSize)
	return &Packet{buf: work.Bytes(a, capRows*rowW), addr: a, rowW: rowW, cap: capRows}
}

// Reset empties the packet for reuse; reused packets keep their addresses,
// which is what makes affinity scheduling L1-friendly.
func (p *Packet) Reset() { p.n = 0 }

// N returns the row count.
func (p *Packet) N() int { return p.n }

// Cap returns the row capacity.
func (p *Packet) Cap() int { return p.cap }

// Append copies row in, tracing the store. It reports false when full.
func (p *Packet) Append(rec *trace.Recorder, row []byte) bool {
	if p.n == p.cap {
		return false
	}
	off := p.n * p.rowW
	copy(p.buf[off:off+p.rowW], row)
	rec.StoreRange(p.addr+mem.Addr(off), p.rowW)
	p.n++
	return true
}

// Row returns row i, tracing the load.
func (p *Packet) Row(rec *trace.Recorder, i int) []byte {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("staged: row %d of %d", i, p.n))
	}
	off := i * p.rowW
	rec.LoadRange(p.addr+mem.Addr(off), p.rowW)
	return p.buf[off : off+p.rowW]
}

// Transform is one stage's per-row work: it may emit zero or more output
// rows. Implementations trace their own instruction and data costs.
type Transform func(ctx *engine.Ctx, row []byte, emit func([]byte))

// Stage is a middle pipeline stage. Fn is a factory: each worker
// instantiates its own Transform, so transforms may carry private scratch
// buffers without any cross-worker sharing.
type Stage struct {
	Name string
	Out  engine.Schema // output row schema
	Fn   func() Transform
}

// FilterStage builds a stage dropping rows that fail the conjunction.
func FilterStage(db *engine.DB, in engine.Schema, preds []engine.Pred) Stage {
	code := db.Codes.Register("stage:filter", 1536)
	offs := in.Offsets()
	return Stage{
		Name: "filter",
		Out:  in,
		Fn: func() Transform {
			return func(ctx *engine.Ctx, row []byte, emit func([]byte)) {
				ctx.Rec.Exec(code, 10+12*len(preds))
				for _, p := range preds {
					if !p.Eval(in, offs, row) {
						return
					}
				}
				emit(row)
			}
		},
	}
}

// ProjectStage builds a stage narrowing rows to cols.
func ProjectStage(db *engine.DB, in engine.Schema, cols []int) Stage {
	code := db.Codes.Register("stage:project", 1024)
	offs := in.Offsets()
	out := in.Project(cols)
	return Stage{
		Name: "project",
		Out:  out,
		Fn: func() Transform {
			buf := make([]byte, out.RowWidth())
			return func(ctx *engine.Ctx, row []byte, emit func([]byte)) {
				ctx.Rec.Exec(code, 4*len(cols))
				off := 0
				for _, c := range cols {
					w := in[c].Width
					copy(buf[off:off+w], row[offs[c]:offs[c]+w])
					off += w
				}
				emit(buf)
			}
		},
	}
}

// Sink absorbs the pipeline's final rows.
type Sink interface {
	Absorb(ctx *engine.Ctx, row []byte)
	// Rows returns how many rows were absorbed.
	Rows() int
}

// CountSink counts rows (and models a small per-row cost).
type CountSink struct {
	db   *engine.DB
	code mem.CodeSeg
	n    int
}

// NewCountSink builds a counting sink.
func NewCountSink(db *engine.DB) *CountSink {
	return &CountSink{db: db, code: db.Codes.Register("stage:count", 512)}
}

// Absorb implements Sink.
func (s *CountSink) Absorb(ctx *engine.Ctx, _ []byte) {
	ctx.Rec.Exec(s.code, 6)
	s.n++
}

// Rows implements Sink.
func (s *CountSink) Rows() int { return s.n }

// AggSink folds rows into a grouped sum via a workspace hash table.
type AggSink struct {
	db       *engine.DB
	code     mem.CodeSeg
	groupOff int
	sumOff   int
	ht       *engine.HashTable
	n        int
	isFloat  bool
}

// NewAggSink groups by integer column groupCol summing column sumCol.
func NewAggSink(ctx *engine.Ctx, db *engine.DB, in engine.Schema, groupCol, sumCol int) *AggSink {
	offs := in.Offsets()
	return &AggSink{
		db:       db,
		code:     db.Codes.Register("stage:agg", 2048),
		groupOff: offs[groupCol],
		sumOff:   offs[sumCol],
		ht:       engine.NewHashTable(ctx, 1024, 8),
		isFloat:  in[sumCol].Type == engine.TFloat,
	}
}

// Absorb implements Sink.
func (s *AggSink) Absorb(ctx *engine.Ctx, row []byte) {
	ctx.Rec.Exec(s.code, 24)
	key := uint64(engine.RowInt(row, s.groupOff))
	p, at, _ := s.ht.LookupOrInsert(ctx.Rec, key)
	if s.isFloat {
		engine.PutRowFloat(p, 0, engine.RowFloat(p, 0)+engine.RowFloat(row, s.sumOff))
	} else {
		engine.PutRowInt(p, 0, engine.RowInt(p, 0)+engine.RowInt(row, s.sumOff))
	}
	ctx.Rec.Store(at)
	s.n++
}

// Rows implements Sink.
func (s *AggSink) Rows() int { return s.n }

// Groups returns the per-group sums (float-valued view).
func (s *AggSink) Groups() map[uint64]float64 {
	out := make(map[uint64]float64)
	s.ht.Scan(nil, func(k uint64, p []byte) bool {
		if s.isFloat {
			out[k] = engine.RowFloat(p, 0)
		} else {
			out[k] = float64(engine.RowInt(p, 0))
		}
		return true
	})
	return out
}

// Pipeline is a linear staged plan: source → stages → sink.
type Pipeline struct {
	DB     *engine.DB
	Source engine.Op
	Stages []Stage
	Sink   Sink

	// BatchRows sizes packets; the default fits half a 64 KB L1D.
	BatchRows int
}

func (pl *Pipeline) batch(rowW int) int {
	if pl.BatchRows > 0 {
		return pl.BatchRows
	}
	b := (32 << 10) / rowW
	if b < 8 {
		b = 8
	}
	return b
}

// RunAffinity executes the pipeline on one worker: fill a packet from the
// source, push it through every stage packet-at-a-time, absorb into the
// sink, repeat. Producer and consumer data stay within one context's L1.
func (pl *Pipeline) RunAffinity(ctx *engine.Ctx) (int, error) {
	srcSchema := pl.Source.Schema()
	if err := pl.Source.Open(ctx); err != nil {
		return 0, err
	}
	defer pl.Source.Close(ctx)

	// One reusable packet per pipeline edge, one transform per stage.
	pkts := make([]*Packet, len(pl.Stages)+1)
	pkts[0] = NewPacket(ctx.Work, pl.batch(srcSchema.RowWidth()), srcSchema.RowWidth())
	fns := make([]Transform, len(pl.Stages))
	for i, st := range pl.Stages {
		pkts[i+1] = NewPacket(ctx.Work, pl.batch(st.Out.RowWidth()), st.Out.RowWidth())
		fns[i] = st.Fn()
	}

	for {
		// Fill the head packet from the source.
		head := pkts[0]
		head.Reset()
		for head.N() < head.Cap() {
			row, ok, err := pl.Source.Next(ctx)
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
			head.Append(ctx.Rec, row)
		}
		if head.N() == 0 {
			return pl.Sink.Rows(), nil
		}
		cur := head
		for i := range pl.Stages {
			out := pkts[i+1]
			out.Reset()
			for r := 0; r < cur.N(); r++ {
				row := cur.Row(ctx.Rec, r)
				fns[i](ctx, row, func(o []byte) { out.Append(ctx.Rec, o) })
			}
			cur = out
		}
		for r := 0; r < cur.N(); r++ {
			pl.Sink.Absorb(ctx, cur.Row(ctx.Rec, r))
		}
	}
}

// RunParallel executes the pipeline on the engine's work-stealing worker
// pool with one execution context (and so one trace stream, one hardware
// context) per worker. ctxs must have len(Stages)+2 entries, the same
// placement contract as before: ctxs[0] produces packets from the source
// and deals them to the consumer workers ctxs[1:], each of which claims
// packets from the pool — stealing from overloaded peers — and drives
// every stage and the sink on the rows it claimed. Packets recycle
// through a free list, so their addresses stay stable; consumers read
// what the source wrote on another core, which is the shared-L2 traffic
// the paper's staging discussion trades for parallelism.
func (pl *Pipeline) RunParallel(ctxs []*engine.Ctx) (int, error) {
	want := len(pl.Stages) + 2
	if len(ctxs) != want {
		return 0, fmt.Errorf("staged: %d contexts for %d workers", len(ctxs), want)
	}
	consumers := want - 1
	srcSchema := pl.Source.Schema()
	rowW := srcSchema.RowWidth()

	// Packets live in the source worker's workspace and recycle through
	// the free list (bounding both memory and trace footprint). Two per
	// consumer keeps every consumer busy while the source refills.
	ring := 2 * consumers
	free := make(chan *Packet, ring)
	for k := 0; k < ring; k++ {
		free <- NewPacket(ctxs[0].Work, pl.batch(rowW), rowW)
	}
	pool := engine.NewWorkPool[*Packet](consumers)

	// The sink is shared state: absorption serializes under one lock,
	// traced by whichever consumer absorbed the packet.
	var sinkMu sync.Mutex

	// Only the source can fail: stage transforms and sinks have no error
	// path, so consumers never report errors.
	var srcErr error
	var wg sync.WaitGroup

	// Source worker: fill packets, deal them round-robin (stealing
	// rebalances whenever consumers run at different speeds).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pool.Close()
		ctx := ctxs[0]
		if err := pl.Source.Open(ctx); err != nil {
			srcErr = err
			return
		}
		defer pl.Source.Close(ctx)
		next := 0
		for {
			pkt := <-free
			pkt.Reset()
			for pkt.N() < pkt.Cap() {
				row, ok, err := pl.Source.Next(ctx)
				if err != nil {
					srcErr = err
					free <- pkt
					return
				}
				if !ok {
					break
				}
				pkt.Append(ctx.Rec, row)
			}
			if pkt.N() == 0 {
				free <- pkt
				return
			}
			pool.Push(next, pkt)
			next = (next + 1) % consumers
		}
	}()

	// Consumer workers: claim packets, run the full stage chain per row,
	// absorb into the sink. Each worker instantiates its own transforms.
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := ctxs[c+1]
			fns := make([]Transform, len(pl.Stages))
			for i, st := range pl.Stages {
				fns[i] = st.Fn()
			}
			var feed func(i int, row []byte)
			feed = func(i int, row []byte) {
				if i == len(fns) {
					sinkMu.Lock()
					pl.Sink.Absorb(ctx, row)
					sinkMu.Unlock()
					return
				}
				fns[i](ctx, row, func(o []byte) { feed(i+1, o) })
			}
			for {
				pkt, ok := pool.Take(c)
				if !ok {
					return
				}
				for r := 0; r < pkt.N(); r++ {
					feed(0, pkt.Row(ctx.Rec, r))
				}
				pkt.Reset()
				free <- pkt
			}
		}(c)
	}

	wg.Wait()
	if srcErr != nil {
		return 0, srcErr
	}
	return pl.Sink.Rows(), nil
}
