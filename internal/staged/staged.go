// Package staged implements the staged database system design of the
// paper's Section 6.3 (Harizopoulos & Ailamaki's StagedDB / QPipe line):
// query work is decomposed into stages that exchange packets — batches of
// tuples in the simulated address space — instead of executing one
// monolithic operator tree per request.
//
// Two executors realize the two scheduling policies the paper discusses.
// Both are thin policies over the shared cohort/quantum core in
// internal/sched — the same substrate that drives the STEPS-style staged
// OLTP executor — where each in-flight packet is a continuation whose
// steps are charged against per-stage code segments:
//
//   - RunAffinity: producer and consumer stages share one hardware context
//     (STEPS-style cohort scheduling). A stage processes a whole packet
//     before yielding, so its instruction footprint stays L1I-resident,
//     and packets are sized to fit the L1D, so the consumer reads what the
//     producer just wrote at L1 cost.
//
//   - RunParallel: packets are driven through the engine's work-stealing
//     worker pool. One worker produces packets from the source; the rest
//     each drive the stage chain over the packets they claim, every
//     worker with its own hardware context (its own trace stream) and so
//     its own core. Packets travel between cores through the shared L2,
//     trading data locality for true intra-query parallelism.
//
// Comparing monolithic Volcano execution against these two modes
// regenerates the paper's "opportunities" discussion quantitatively.
package staged

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Packet IS the engine's vectorized batch type: staged pipelines exchange
// the same arena-backed row blocks that serial, morsel-parallel, and
// shared-scan execution use, so a stage boundary never re-materializes
// rows into a different layout. Page decode happens exactly once, in the
// vectorized source (ScanVec or a shared-scan rotation) that fills the
// block; every stage downstream sees decoded rows and touches only the
// block's bytes.
type Packet = engine.Block

// NewPacket allocates a packet of capacity rows from work.
func NewPacket(work *mem.Arena, capRows, rowW int) *Packet {
	return engine.NewBlock(work, capRows, rowW)
}

// Transform is one stage's per-row work: it may emit zero or more output
// rows. Implementations trace their own instruction and data costs.
type Transform func(ctx *engine.Ctx, row []byte, emit func([]byte))

// Stage is a middle pipeline stage. Fn is a factory: each worker
// instantiates its own Transform, so transforms may carry private scratch
// buffers without any cross-worker sharing.
type Stage struct {
	Name string
	Out  engine.Schema // output row schema
	Fn   func() Transform
}

// FilterStage builds a stage dropping rows that fail the conjunction.
func FilterStage(db *engine.DB, in engine.Schema, preds []engine.Pred) Stage {
	code := db.Codes.Register("stage:filter", 1536)
	offs := in.Offsets()
	return Stage{
		Name: "filter",
		Out:  in,
		Fn: func() Transform {
			return func(ctx *engine.Ctx, row []byte, emit func([]byte)) {
				ctx.Rec.Exec(code, 10+12*len(preds))
				for _, p := range preds {
					if !p.Eval(in, offs, row) {
						return
					}
				}
				emit(row)
			}
		},
	}
}

// ProjectStage builds a stage narrowing rows to cols.
func ProjectStage(db *engine.DB, in engine.Schema, cols []int) Stage {
	code := db.Codes.Register("stage:project", 1024)
	offs := in.Offsets()
	out := in.Project(cols)
	return Stage{
		Name: "project",
		Out:  out,
		Fn: func() Transform {
			buf := make([]byte, out.RowWidth())
			return func(ctx *engine.Ctx, row []byte, emit func([]byte)) {
				ctx.Rec.Exec(code, 4*len(cols))
				off := 0
				for _, c := range cols {
					w := in[c].Width
					copy(buf[off:off+w], row[offs[c]:offs[c]+w])
					off += w
				}
				emit(buf)
			}
		},
	}
}

// Sink absorbs the pipeline's final rows.
type Sink interface {
	Absorb(ctx *engine.Ctx, row []byte)
	// Rows returns how many rows were absorbed.
	Rows() int
}

// CountSink counts rows (and models a small per-row cost).
type CountSink struct {
	db   *engine.DB
	code mem.CodeSeg
	n    int
}

// NewCountSink builds a counting sink.
func NewCountSink(db *engine.DB) *CountSink {
	return &CountSink{db: db, code: db.Codes.Register("stage:count", 512)}
}

// Absorb implements Sink.
func (s *CountSink) Absorb(ctx *engine.Ctx, _ []byte) {
	ctx.Rec.Exec(s.code, 6)
	s.n++
}

// Rows implements Sink.
func (s *CountSink) Rows() int { return s.n }

// AggSink folds rows into a grouped sum via a workspace hash table.
type AggSink struct {
	db       *engine.DB
	code     mem.CodeSeg
	groupOff int
	sumOff   int
	ht       *engine.HashTable
	n        int
	isFloat  bool
}

// NewAggSink groups by integer column groupCol summing column sumCol.
func NewAggSink(ctx *engine.Ctx, db *engine.DB, in engine.Schema, groupCol, sumCol int) *AggSink {
	offs := in.Offsets()
	return &AggSink{
		db:       db,
		code:     db.Codes.Register("stage:agg", 2048),
		groupOff: offs[groupCol],
		sumOff:   offs[sumCol],
		ht:       engine.NewHashTable(ctx, 1024, 8),
		isFloat:  in[sumCol].Type == engine.TFloat,
	}
}

// Absorb implements Sink.
func (s *AggSink) Absorb(ctx *engine.Ctx, row []byte) {
	ctx.Rec.Exec(s.code, 24)
	key := uint64(engine.RowInt(row, s.groupOff))
	p, at, _ := s.ht.LookupOrInsert(ctx.Rec, key)
	if s.isFloat {
		engine.PutRowFloat(p, 0, engine.RowFloat(p, 0)+engine.RowFloat(row, s.sumOff))
	} else {
		engine.PutRowInt(p, 0, engine.RowInt(p, 0)+engine.RowInt(row, s.sumOff))
	}
	ctx.Rec.Store(at)
	s.n++
}

// Rows implements Sink.
func (s *AggSink) Rows() int { return s.n }

// Groups returns the per-group sums (float-valued view).
func (s *AggSink) Groups() map[uint64]float64 {
	out := make(map[uint64]float64)
	s.ht.Scan(nil, func(k uint64, p []byte) bool {
		if s.isFloat {
			out[k] = engine.RowFloat(p, 0)
		} else {
			out[k] = float64(engine.RowInt(p, 0))
		}
		return true
	})
	return out
}

// Pipeline is a linear staged plan: source → stages → sink. The source is
// either a legacy row operator (Source) or a vectorized operator
// (VecSource, preferred): vectorized sources hand whole blocks to the
// pipeline — in affinity mode the source's block feeds the stage chain
// directly, and in pool mode it bulk-copies into ring packets — instead
// of being drained row by row. VecSource wins when both are set.
type Pipeline struct {
	DB        *engine.DB
	Source    engine.Op
	VecSource engine.VecOp
	Stages    []Stage
	Sink      Sink

	// BatchRows sizes packets; the default fits half a 64 KB L1D.
	BatchRows int
}

// srcSchema returns the source's output schema.
func (pl *Pipeline) srcSchema() engine.Schema {
	if pl.VecSource != nil {
		return pl.VecSource.Schema()
	}
	return pl.Source.Schema()
}

func (pl *Pipeline) batch(rowW int) int {
	if pl.BatchRows > 0 {
		return pl.BatchRows
	}
	b := (32 << 10) / rowW
	if b < 8 {
		b = 8
	}
	return b
}

// pipeRun is one worker's execution state for a sched-driven pipeline
// run: a private Transform instance per stage, one reusable edge packet
// per stage, and the sink absorb path (serialized under a lock when the
// sink is shared between pool workers).
type pipeRun struct {
	pl     *Pipeline
	fns    []Transform
	pkts   []*Packet
	absorb func(ctx *engine.Ctx, row []byte)
}

func (pl *Pipeline) newRun(sinkMu *sync.Mutex) *pipeRun {
	fns := make([]Transform, len(pl.Stages))
	for i, st := range pl.Stages {
		fns[i] = st.Fn()
	}
	r := &pipeRun{pl: pl, fns: fns, pkts: make([]*Packet, len(pl.Stages))}
	if sinkMu == nil {
		r.absorb = pl.Sink.Absorb
	} else {
		r.absorb = func(ctx *engine.Ctx, row []byte) {
			sinkMu.Lock()
			pl.Sink.Absorb(ctx, row)
			sinkMu.Unlock()
		}
	}
	return r
}

// apply runs stage i over cur into the stage's reusable edge packet,
// grown (doubled, contents preserved) whenever a transform emits more
// rows than fit — Transform's contract allows zero or more output rows
// per input, so an expanding stage must never drop rows.
func (r *pipeRun) apply(ctx *engine.Ctx, i int, cur *Packet) *Packet {
	outW := r.pl.Stages[i].Out.RowWidth()
	need := r.pl.batch(outW)
	if cur.N() > need {
		need = cur.N()
	}
	if r.pkts[i] == nil || r.pkts[i].Cap() < need {
		r.pkts[i] = NewPacket(ctx.Work, need, outW)
	}
	out := r.pkts[i]
	out.Reset()
	for n := 0; n < cur.N(); n++ {
		row := cur.Row(ctx.Rec, n)
		r.fns[i](ctx, row, func(o []byte) {
			if !out.Append(ctx.Rec, o) {
				grown := NewPacket(ctx.Work, 2*out.Cap(), outW)
				grown.CopyFrom(ctx.Rec, out, 0)
				out = grown
				r.pkts[i] = grown
				out.Append(ctx.Rec, o)
			}
		})
	}
	return out
}

// pipeItem is one packet's continuation through the stage chain: kind i
// is stage i, kind len(Stages) is the sink. Pipeline items never park or
// deadlock — the yield machinery of the shared core is exercised only by
// the OLTP policy.
type pipeItem struct {
	run   *pipeRun
	cur   *Packet
	orig  *Packet
	stage int
	free  func(*Packet) // recycles orig after the sink (pool mode)
}

func (it *pipeItem) Kind() int               { return it.stage }
func (it *pipeItem) Fence() bool             { return false }
func (it *pipeItem) ID() uint64              { return 0 }
func (it *pipeItem) Restart(*trace.Recorder) {}

func (it *pipeItem) Step(ctx *engine.Ctx) (sched.Outcome, error) {
	r := it.run
	if it.stage < len(r.fns) {
		it.cur = r.apply(ctx, it.stage, it.cur)
		it.stage++
		return sched.Outcome{}, nil
	}
	for n := 0; n < it.cur.N(); n++ {
		r.absorb(ctx, it.cur.Row(ctx.Rec, n))
	}
	if it.free != nil {
		it.orig.Reset()
		it.free(it.orig)
	}
	return sched.Outcome{Done: true}, nil
}

// cohortConfig maps the pipeline onto the shared cohort core: one kind
// per stage plus the sink, the sink draining in admission order so
// absorb order stays the packet order. The window is one packet per
// worker — packets are already the batching unit (a stage runs over a
// whole packet per step), and the head block is owned by the source, so
// holding several in flight would force copies.
func (pl *Pipeline) cohortConfig() sched.Config {
	code := pl.DB.Codes.Register("sched:pipeline", 2048)
	return sched.Config{
		Window:  1,
		Kinds:   len(pl.Stages) + 1,
		Barrier: len(pl.Stages),
		Overhead: func(rec *trace.Recorder, n int) {
			rec.Exec(code, 30+6*n)
		},
	}
}

// openHead opens the pipeline's source and returns a head-packet feeder
// plus its close function. A vectorized source hands its own blocks to
// the feeder directly — the head packet fill disappears entirely; a row
// source is drained into a reusable head packet.
func (pl *Pipeline) openHead(ctx *engine.Ctx) (func() (*Packet, bool, error), func(), error) {
	srcSchema := pl.srcSchema()
	if pl.VecSource != nil {
		if err := pl.VecSource.Open(ctx); err != nil {
			return nil, nil, err
		}
		return func() (*Packet, bool, error) { return pl.VecSource.NextBlock(ctx) },
			func() { pl.VecSource.Close(ctx) }, nil
	}
	if err := pl.Source.Open(ctx); err != nil {
		return nil, nil, err
	}
	head := NewPacket(ctx.Work, pl.batch(srcSchema.RowWidth()), srcSchema.RowWidth())
	return func() (*Packet, bool, error) {
		head.Reset()
		for head.N() < head.Cap() {
			row, ok, err := pl.Source.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			head.Append(ctx.Rec, row)
		}
		return head, head.N() > 0, nil
	}, func() { pl.Source.Close(ctx) }, nil
}

// RunAffinity executes the pipeline on one worker: each head packet is a
// continuation the shared cohort core drives through every stage kind in
// order, absorbing into the sink, before the next packet is admitted.
// Producer and consumer data stay within one context's L1.
func (pl *Pipeline) RunAffinity(ctx *engine.Ctx) (int, error) {
	nextHead, closeSrc, err := pl.openHead(ctx)
	if err != nil {
		return 0, err
	}
	defer closeSrc()
	run := pl.newRun(nil)
	core := sched.New(pl.cohortConfig())
	if _, err := core.RunFeed(ctx, func() (sched.Item, error) {
		pkt, ok, err := nextHead()
		if err != nil || !ok {
			return nil, err
		}
		return &pipeItem{run: run, cur: pkt, stage: 0}, nil
	}); err != nil {
		return 0, err
	}
	return pl.Sink.Rows(), nil
}

// RunParallel executes the pipeline on the engine's work-stealing worker
// pool with one execution context (and so one trace stream, one hardware
// context) per worker. ctxs must have len(Stages)+2 entries, the same
// placement contract as before: ctxs[0] produces packets from the source
// and deals them to the consumer workers ctxs[1:], each of which claims
// packets from the pool — stealing from overloaded peers — and drives
// them through its own sched-driven stage cohort. Packets recycle
// through a free list, so their addresses stay stable; consumers read
// what the source wrote on another core, which is the shared-L2 traffic
// the paper's staging discussion trades for parallelism.
func (pl *Pipeline) RunParallel(ctxs []*engine.Ctx) (int, error) {
	want := len(pl.Stages) + 2
	if len(ctxs) != want {
		return 0, fmt.Errorf("staged: %d contexts for %d workers", len(ctxs), want)
	}
	consumers := want - 1
	srcSchema := pl.srcSchema()
	rowW := srcSchema.RowWidth()

	// Packets live in the source worker's workspace and recycle through
	// the free list (bounding both memory and trace footprint). Two per
	// consumer keeps every consumer busy while the source refills.
	ring := 2 * consumers
	free := make(chan *Packet, ring)
	for k := 0; k < ring; k++ {
		free <- NewPacket(ctxs[0].Work, pl.batch(rowW), rowW)
	}
	pool := engine.NewWorkPool[*Packet](consumers)

	// The sink is shared state: absorption serializes under one lock,
	// traced by whichever consumer absorbed the packet.
	var sinkMu sync.Mutex

	// Only the source can fail: stage transforms and sinks have no error
	// path, so consumers never report errors.
	var srcErr error
	var wg sync.WaitGroup

	// Source worker: fill packets, deal them round-robin (stealing
	// rebalances whenever consumers run at different speeds). A vectorized
	// source bulk-copies whole blocks into ring packets — one traced
	// memcpy per packet instead of a row-at-a-time refill loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pool.Close()
		ctx := ctxs[0]
		next := 0
		push := func(pkt *Packet) {
			pool.Push(next, pkt)
			next = (next + 1) % consumers
		}

		if pl.VecSource != nil {
			if err := pl.VecSource.Open(ctx); err != nil {
				srcErr = err
				return
			}
			defer pl.VecSource.Close(ctx)
			// Coalesce source blocks into ring packets: a selective
			// source emits small survivor blocks, and pushing each as
			// its own packet would pay per-packet scheduling for a
			// handful of rows. Fill the current packet to capacity
			// across blocks, pushing only full (or final) packets.
			var pkt *Packet
			for {
				blk, ok, err := pl.VecSource.NextBlock(ctx)
				if err != nil || !ok {
					srcErr = err
					if pkt != nil {
						if pkt.N() > 0 && err == nil {
							push(pkt)
						} else {
							free <- pkt
						}
					}
					return
				}
				from := 0
				for from < blk.N() {
					if pkt == nil {
						pkt = <-free
						pkt.Reset()
					}
					from += pkt.CopyFrom(ctx.Rec, blk, from)
					if pkt.N() == pkt.Cap() {
						push(pkt)
						pkt = nil
					}
				}
			}
		}

		if err := pl.Source.Open(ctx); err != nil {
			srcErr = err
			return
		}
		defer pl.Source.Close(ctx)
		for {
			pkt := <-free
			pkt.Reset()
			for pkt.N() < pkt.Cap() {
				row, ok, err := pl.Source.Next(ctx)
				if err != nil {
					srcErr = err
					free <- pkt
					return
				}
				if !ok {
					break
				}
				pkt.Append(ctx.Rec, row)
			}
			if pkt.N() == 0 {
				free <- pkt
				return
			}
			push(pkt)
		}
	}()

	// Consumer workers: each claims packets from the pool and drives them
	// through its own sched cohort (private transforms and edge packets),
	// absorbing into the shared sink under the lock. The feeder blocks in
	// pool.Take, so a consumer sleeps exactly when it has nothing claimed.
	consErr := make([]error, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := ctxs[c+1]
			run := pl.newRun(&sinkMu)
			core := sched.New(pl.cohortConfig())
			_, consErr[c] = core.RunFeed(ctx, func() (sched.Item, error) {
				pkt, ok := pool.Take(c)
				if !ok {
					return nil, nil
				}
				return &pipeItem{
					run: run, cur: pkt, orig: pkt, stage: 0,
					free: func(p *Packet) { free <- p },
				}, nil
			})
		}(c)
	}

	wg.Wait()
	if srcErr != nil {
		return 0, srcErr
	}
	if err := errors.Join(consErr...); err != nil {
		return 0, err
	}
	return pl.Sink.Rows(), nil
}
