package staged

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/share"
)

// TestSharedSourceMatchesSeqScan: a staged pipeline fed from the circular
// shared scan computes the same aggregate as one fed from a private
// SeqScan.
func TestSharedSourceMatchesSeqScan(t *testing.T) {
	db, tb := buildTable(t)
	reg := share.NewRegistry(db, share.Config{MorselPages: 4})
	ctx := db.NewCtx(nil, 0, 8<<20)
	pl := pipelineFor(db, tb, ctx)
	pl.Source, pl.VecSource = nil, SharedSource(reg, tb, nil, nil)
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("shared-source pipeline absorbed %d rows, want 8000", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())
	reg.WaitIdle()
	if reg.Stats().Rotations != 1 {
		t.Fatalf("stats: %+v, want one completed rotation", reg.Stats())
	}
}

// TestConcurrentSharedPipelines: several staged pipelines over the same
// table ride one shared scan concurrently and all agree.
func TestConcurrentSharedPipelines(t *testing.T) {
	db, tb := buildTable(t)
	reg := share.NewRegistry(db, share.Config{MorselPages: 2, ProducerWorkers: 2})
	const pipes = 4
	var wg sync.WaitGroup
	for i := 0; i < pipes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := db.NewCtx(nil, i, 8<<20)
			pl := pipelineFor(db, tb, ctx)
			pl.Source, pl.VecSource = nil, SharedSource(reg, tb, nil, nil)
			n, err := pl.RunAffinity(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if n != 8000 {
				t.Errorf("pipeline %d absorbed %d rows, want 8000", i, n)
				return
			}
			checkGroups(t, pl.Sink.(*AggSink).Groups())
		}(i)
	}
	wg.Wait()
	reg.WaitIdle()
	if st := reg.Stats(); st.Rotations != pipes {
		t.Fatalf("stats: %+v, want %d completed rotations", st, pipes)
	}
}

// TestSharedSourceWithPredicatePushdown: the source applies per-pipeline
// predicates to the shared batches, so differently filtered pipelines can
// share one scan.
func TestSharedSourceWithPredicatePushdown(t *testing.T) {
	db, tb := buildTable(t)
	reg := share.NewRegistry(db, share.Config{})
	ctx := db.NewCtx(nil, 0, 8<<20)
	preds := []engine.Pred{engine.PredInt(0, engine.LT, 8000)}
	pl := &Pipeline{
		DB:        db,
		VecSource: SharedSource(reg, tb, preds, nil),
		Sink:      NewAggSink(ctx, db, tb.Schema, 1, 2),
	}
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("pushed-down shared source passed %d rows, want 8000", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())
}
