// Routing staged scan stages through the cross-query work-sharing
// registry: instead of each pipeline opening a private SeqScan source,
// concurrent pipelines over the same table attach to its circular shared
// scan, so N staged queries cost one producer pass — composing the
// paper's two Section 6 opportunities (staged execution and aggressive
// cross-query sharing).

package staged

import (
	"repro/internal/engine"
	"repro/internal/share"
)

// SharedSource attaches to t's circular shared scan in reg and returns a
// pipeline source operator over one full rotation, filtered by preds and
// projected to cols (nil = all columns). Use it as Pipeline.Source in
// place of a SeqScan; the source is one-shot, like the pipeline runs.
func SharedSource(reg *share.Registry, t *engine.Table, preds []engine.Pred, cols []int) engine.Op {
	return &engine.SharedScan{Table: t, Preds: preds, Cols: cols, Source: reg.Attach(t)}
}
