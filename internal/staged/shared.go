// Routing staged scan stages through the cross-query work-sharing
// registry: instead of each pipeline opening a private scan source,
// concurrent pipelines over the same table attach to its circular shared
// scan, so N staged queries cost one producer pass — composing the
// paper's two Section 6 opportunities (staged execution and aggressive
// cross-query sharing). The registry delivers engine.Blocks and staged
// packets ARE engine.Blocks, so the shared rotation feeds the pipeline
// with no layout change at the boundary.

package staged

import (
	"repro/internal/engine"
	"repro/internal/share"
)

// SharedSource attaches to t's circular shared scan in reg and returns a
// vectorized pipeline source over one full rotation, filtered by preds
// and projected to cols (nil = all columns). Use it as Pipeline.VecSource
// in place of a scan; the source is one-shot, like the pipeline runs.
func SharedSource(reg *share.Registry, t *engine.Table, preds []engine.Pred, cols []int) engine.VecOp {
	return &engine.SharedScan{Table: t, Preds: preds, Cols: cols, Source: reg.Attach(t)}
}
