// Routing staged scan stages through the cross-query work-sharing
// registry: instead of each pipeline opening a private scan source,
// concurrent pipelines over the same table attach to its circular shared
// scan, so N staged queries cost one producer pass — composing the
// paper's two Section 6 opportunities (staged execution and aggressive
// cross-query sharing). The registry's producers decode pages into
// engine.Blocks exactly once per rotation, and staged packets ARE
// engine.Blocks (the PR 3 alias — there is no ring-packet copy at this
// boundary), so a shared rotation feeds the pipeline's stage chain the
// producer's blocks directly: consumers re-filter and project per query,
// but never re-decode and never re-materialize rows into another layout.

package staged

import (
	"repro/internal/engine"
	"repro/internal/share"
)

// SharedSource attaches to t's circular shared scan in reg and returns a
// vectorized pipeline source over one full rotation, filtered by preds
// and projected to cols (nil = all columns). Use it as Pipeline.VecSource
// in place of a scan; the source is one-shot, like the pipeline runs.
func SharedSource(reg *share.Registry, t *engine.Table, preds []engine.Pred, cols []int) engine.VecOp {
	return &engine.SharedScan{Table: t, Preds: preds, Cols: cols, Source: reg.Attach(t)}
}
