package staged

import (
	"testing"

	"repro/internal/engine"
)

func TestMultiStagePipelineBothExecutors(t *testing.T) {
	// scan -> filter -> project -> count through both executors must
	// agree with a direct Volcano evaluation.
	db, tb := buildTable(t)
	preds := []engine.Pred{engine.PredInt(0, engine.GE, 2500)}

	volcanoCount := 0
	vctx := db.NewCtx(nil, 9, 8<<20)
	err := engine.Run(vctx, &engine.Project{
		Child: &engine.Filter{Child: &engine.SeqScan{Table: tb}, Preds: preds},
		Cols:  []int{1, 2},
	}, func([]byte) error { volcanoCount++; return nil })
	if err != nil {
		t.Fatal(err)
	}

	mk := func() *Pipeline {
		return &Pipeline{
			DB:     db,
			Source: &engine.SeqScan{Table: tb},
			Stages: []Stage{
				FilterStage(db, tb.Schema, preds),
				ProjectStage(db, tb.Schema, []int{1, 2}),
			},
			Sink: NewCountSink(db),
		}
	}

	actx := db.NewCtx(nil, 10, 8<<20)
	pl := mk()
	n, err := pl.RunAffinity(actx)
	if err != nil {
		t.Fatal(err)
	}
	if n != volcanoCount {
		t.Fatalf("affinity counted %d, volcano %d", n, volcanoCount)
	}

	pl2 := mk()
	ctxs := []*engine.Ctx{
		db.NewCtx(nil, 11, 8<<20), db.NewCtx(nil, 12, 8<<20),
		db.NewCtx(nil, 13, 8<<20), db.NewCtx(nil, 14, 8<<20),
	}
	n2, err := pl2.RunParallel(ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != volcanoCount {
		t.Fatalf("parallel counted %d, volcano %d", n2, volcanoCount)
	}
}

func TestTinyBatchesStillCorrect(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 15, 8<<20)
	pl := pipelineFor(db, tb, ctx)
	pl.BatchRows = 1 // degenerate packets
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("batch=1 absorbed %d rows", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())
}

func TestEmptySourcePipeline(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 16, 8<<20)
	pl := &Pipeline{
		DB:     db,
		Source: &engine.Limit{Child: &engine.SeqScan{Table: tb}, N: 0},
		Stages: []Stage{FilterStage(db, tb.Schema, nil)},
		Sink:   NewCountSink(db),
	}
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty source produced %d rows", n)
	}
}

func TestParallelEmptySource(t *testing.T) {
	db, tb := buildTable(t)
	pl := &Pipeline{
		DB:     db,
		Source: &engine.Limit{Child: &engine.SeqScan{Table: tb}, N: 0},
		Stages: []Stage{FilterStage(db, tb.Schema, nil)},
		Sink:   NewCountSink(db),
	}
	ctxs := []*engine.Ctx{
		db.NewCtx(nil, 17, 8<<20), db.NewCtx(nil, 18, 8<<20), db.NewCtx(nil, 19, 8<<20),
	}
	n, err := pl.RunParallel(ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("parallel empty source produced %d rows", n)
	}
}

// TestVecSourceBothExecutors: a pipeline fed by the vectorized scan
// (blocks straight into the stage chain in affinity mode, bulk-copied
// into ring packets in pool mode) agrees with the row-sourced run.
func TestVecSourceBothExecutors(t *testing.T) {
	db, tb := buildTable(t)
	preds := []engine.Pred{engine.PredInt(0, engine.LT, 8000)}
	mk := func(ctx *engine.Ctx) *Pipeline {
		return &Pipeline{
			DB:        db,
			VecSource: &engine.ScanVec{Table: tb},
			Stages:    []Stage{FilterStage(db, tb.Schema, preds)},
			Sink:      NewAggSink(ctx, db, tb.Schema, 1, 2),
		}
	}

	actx := db.NewCtx(nil, 21, 8<<20)
	pl := mk(actx)
	n, err := pl.RunAffinity(actx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("vec affinity absorbed %d rows, want 8000", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())

	sinkCtx := db.NewCtx(nil, 24, 8<<20)
	pl2 := mk(sinkCtx)
	ctxs := []*engine.Ctx{
		db.NewCtx(nil, 22, 8<<20), db.NewCtx(nil, 23, 8<<20), sinkCtx,
	}
	n2, err := pl2.RunParallel(ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 8000 {
		t.Fatalf("vec parallel absorbed %d rows, want 8000", n2)
	}
	checkGroups(t, pl2.Sink.(*AggSink).Groups())
}

// TestExpandingTransformGrowsPacket: a stage emitting more rows than its
// packet holds must grow the packet, not silently drop rows (Transform's
// contract is zero or more emissions per input).
func TestExpandingTransformGrowsPacket(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 25, 8<<20)
	duplicate := Stage{
		Name: "duplicate",
		Out:  tb.Schema,
		Fn: func() Transform {
			return func(_ *engine.Ctx, row []byte, emit func([]byte)) {
				emit(row)
				emit(row)
			}
		},
	}
	pl := &Pipeline{
		DB:        db,
		VecSource: &engine.ScanVec{Table: tb},
		Stages:    []Stage{duplicate},
		Sink:      NewCountSink(db),
	}
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("duplicating stage absorbed %d rows, want 20000", n)
	}
}

func TestPacketRowPanicsOutOfRange(t *testing.T) {
	db, _ := buildTable(t)
	ctx := db.NewCtx(nil, 20, 1<<20)
	p := NewPacket(ctx.Work, 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Row(nil, 0) // empty packet
}
