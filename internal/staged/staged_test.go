package staged

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/trace"
)

func buildTable(t *testing.T) (*engine.DB, *engine.Table) {
	t.Helper()
	db := engine.NewDB(engine.Config{ArenaBytes: 32 << 20})
	tb, err := db.CreateTable("fact", engine.Schema{
		engine.Int("id"), engine.Int("grp"), engine.Float("amount"),
	}, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		_, err := tb.Insert(nil, []engine.Value{
			engine.IV(int64(i)), engine.IV(int64(i % 5)), engine.FV(float64(i%100) / 10),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

// referenceGroups computes the expected grp->sum(amount) for id < 8000.
func referenceGroups() map[uint64]float64 {
	out := map[uint64]float64{}
	for i := 0; i < 10000; i++ {
		if int64(i) < 8000 {
			out[uint64(i%5)] += float64(i%100) / 10
		}
	}
	return out
}

func pipelineFor(db *engine.DB, tb *engine.Table, ctx *engine.Ctx) *Pipeline {
	preds := []engine.Pred{engine.PredInt(0, engine.LT, 8000)}
	return &Pipeline{
		DB:     db,
		Source: &engine.SeqScan{Table: tb},
		Stages: []Stage{FilterStage(db, tb.Schema, preds)},
		Sink:   NewAggSink(ctx, db, tb.Schema, 1, 2),
	}
}

func checkGroups(t *testing.T, got map[uint64]float64) {
	t.Helper()
	want := referenceGroups()
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-6 {
			t.Fatalf("group %d = %v, want %v", k, got[k], w)
		}
	}
}

func TestAffinityMatchesVolcano(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 0, 8<<20)
	pl := pipelineFor(db, tb, ctx)
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("affinity absorbed %d rows, want 8000", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())
}

func TestParallelMatchesAffinity(t *testing.T) {
	db, tb := buildTable(t)
	sinkCtx := db.NewCtx(nil, 2, 8<<20)
	pl := pipelineFor(db, tb, sinkCtx)
	ctxs := []*engine.Ctx{
		db.NewCtx(nil, 0, 8<<20),
		db.NewCtx(nil, 1, 8<<20),
		sinkCtx,
	}
	n, err := pl.RunParallel(ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("parallel absorbed %d rows, want 8000", n)
	}
	checkGroups(t, pl.Sink.(*AggSink).Groups())
}

func TestParallelContextCountValidated(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 0, 8<<20)
	pl := pipelineFor(db, tb, ctx)
	if _, err := pl.RunParallel([]*engine.Ctx{ctx}); err == nil {
		t.Fatal("wrong context count accepted")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	work := mem.NewArena(mem.WorkBase, 1<<20)
	p := NewPacket(work, 16, 24)
	row := make([]byte, 24)
	for i := 0; i < 16; i++ {
		row[0] = byte(i)
		if !p.Append(nil, row) {
			t.Fatalf("append %d failed", i)
		}
	}
	if p.Append(nil, row) {
		t.Fatal("append past capacity succeeded")
	}
	for i := 0; i < 16; i++ {
		if got := p.Row(nil, i); got[0] != byte(i) {
			t.Fatalf("row %d = %d", i, got[0])
		}
	}
	p.Reset()
	if p.N() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestPacketAddressesRecycle(t *testing.T) {
	// Affinity mode's locality comes from packets reusing the same
	// simulated addresses; verify the trace footprint stays bounded.
	db, tb := buildTable(t)
	rec, s := trace.Pipe()
	lines := map[mem.Addr]bool{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			r, ok := s.Next()
			if !ok {
				return
			}
			// Workspace region only.
			if r.Kind() != trace.Exec && r.Addr() >= mem.WorkBase {
				lines[r.Addr().Line()] = true
			}
		}
	}()
	ctx := db.NewCtx(rec, 0, 8<<20)
	pl := pipelineFor(db, tb, ctx)
	pl.BatchRows = 64
	if _, err := pl.RunAffinity(ctx); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	<-done
	// Two packets of 64 rows x 24B plus agg table: well under 64KB; with
	// 10000 rows flowing through, unbounded allocation would be ~240KB+.
	if len(lines)*64 > 48<<10 {
		t.Fatalf("affinity workspace footprint %d bytes; packets not recycled?", len(lines)*64)
	}
}

func TestProjectStage(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 0, 8<<20)
	pl := &Pipeline{
		DB:     db,
		Source: &engine.SeqScan{Table: tb},
		Stages: []Stage{ProjectStage(db, tb.Schema, []int{1, 2})},
		Sink:   NewAggSink(ctx, db, tb.Schema.Project([]int{1, 2}), 0, 1),
	}
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("projected %d rows", n)
	}
	groups := pl.Sink.(*AggSink).Groups()
	if len(groups) != 5 {
		t.Fatalf("%d groups after project", len(groups))
	}
}

func TestCountSink(t *testing.T) {
	db, tb := buildTable(t)
	ctx := db.NewCtx(nil, 0, 8<<20)
	pl := &Pipeline{
		DB:     db,
		Source: &engine.SeqScan{Table: tb},
		Sink:   NewCountSink(db),
	}
	n, err := pl.RunAffinity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("counted %d", n)
	}
}

func TestBatchSizingDefaultsToL1Fraction(t *testing.T) {
	pl := &Pipeline{}
	if b := pl.batch(64); b != (32<<10)/64 {
		t.Fatalf("batch(64) = %d", b)
	}
	if b := pl.batch(64 << 10); b != 8 {
		t.Fatalf("batch floor = %d", b)
	}
	pl.BatchRows = 99
	if pl.batch(64) != 99 {
		t.Fatal("explicit batch ignored")
	}
}
