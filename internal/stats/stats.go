// Package stats provides the statistical-sampling support of the paper's
// SimFlex methodology: sample means, confidence intervals, and paired
// measurements for reporting changes in performance with 95% confidence.
package stats

import (
	"fmt"
	"math"
)

// tTable95 holds two-sided 95% critical values of Student's t for small
// degrees of freedom; beyond the table the normal approximation is used.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// t95 returns the 95% critical value for df degrees of freedom.
func t95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	return 1.96
}

// Sample accumulates scalar measurements.
type Sample struct {
	vals []float64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (s *Sample) CI95() float64 {
	n := len(s.vals)
	if n < 2 {
		return math.Inf(1)
	}
	return t95(n-1) * s.Stddev() / math.Sqrt(float64(n))
}

// RelErr95 returns the 95% confidence half-width relative to the mean —
// the "±5% error" target of the paper's sampling methodology.
func (s *Sample) RelErr95() float64 {
	m := s.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return math.Abs(s.CI95() / m)
}

// Converged reports whether the sample reached the target relative error
// with at least minN measurements.
func (s *Sample) Converged(target float64, minN int) bool {
	return s.N() >= minN && s.RelErr95() <= target
}

func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ±%.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Paired compares two matched measurement vectors (the paper's paired
// measurement sampling: the same sample locations measured under two
// configurations) and reports the mean difference b-a with its 95%
// confidence half-width.
func Paired(a, b []float64) (mean, ci float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: paired lengths differ: %d vs %d", len(a), len(b))
	}
	var d Sample
	for i := range a {
		d.Add(b[i] - a[i])
	}
	return d.Mean(), d.CI95(), nil
}

// SpeedupCI returns the ratio mean(b)/mean(a) of two paired measurement
// vectors along with a conservative 95% interval computed from the paired
// differences of ratios.
func SpeedupCI(a, b []float64) (ratio, ci float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: paired lengths differ: %d vs %d", len(a), len(b))
	}
	var r Sample
	for i := range a {
		if a[i] == 0 {
			return 0, 0, fmt.Errorf("stats: zero baseline at %d", i)
		}
		r.Add(b[i] / a[i])
	}
	return r.Mean(), r.CI95(), nil
}
