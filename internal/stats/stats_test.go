package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if m := s.Mean(); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := s.Stddev(); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ~2.138", sd)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty sample should have zero mean/var")
	}
	if !math.IsInf(s.CI95(), 1) {
		t.Error("empty CI should be infinite")
	}
	s.Add(3)
	if !math.IsInf(s.CI95(), 1) {
		t.Error("singleton CI should be infinite")
	}
	if s.Mean() != 3 {
		t.Error("singleton mean wrong")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	mk := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(float64(i%7) - 3)
		}
		return s.CI95()
	}
	if !(mk(200) < mk(50) && mk(50) < mk(10)) {
		t.Errorf("CI not shrinking: %v %v %v", mk(10), mk(50), mk(200))
	}
}

func TestConverged(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(100 + float64(i%3)) // tiny variance around 101
	}
	if !s.Converged(0.05, 30) {
		t.Errorf("tight sample not converged: relerr=%v", s.RelErr95())
	}
	if s.Converged(0.05, 200) {
		t.Error("converged despite minN unmet")
	}
}

func TestT95Table(t *testing.T) {
	if got := t95(1); got != 12.706 {
		t.Errorf("t95(1) = %v", got)
	}
	if got := t95(1000); got != 1.96 {
		t.Errorf("t95(1000) = %v", got)
	}
	if !math.IsNaN(t95(0)) {
		t.Error("t95(0) should be NaN")
	}
}

func TestPaired(t *testing.T) {
	a := []float64{10, 12, 11, 13}
	b := []float64{12, 14, 13, 15}
	mean, ci, err := Paired(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 2 {
		t.Errorf("paired mean = %v, want 2", mean)
	}
	if ci != 0 {
		t.Errorf("constant difference should have 0 CI, got %v", ci)
	}
	if _, _, err := Paired(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSpeedupCI(t *testing.T) {
	a := []float64{10, 20, 30}
	b := []float64{20, 40, 60}
	r, _, err := SpeedupCI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Errorf("speedup = %v, want 2", r)
	}
	if _, _, err := SpeedupCI([]float64{0}, []float64{1}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestMeanWithinRangeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes sane to avoid float overflow in the sum.
			if math.Abs(v) > 1e12 {
				return true
			}
			s.Add(v)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
			s.Add(v)
		}
		return s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
