// Package cli is the one flag surface shared by the drivers. cmd/cmpsim
// and cmd/dbshell historically declared ~33 overlapping flags each with
// its own copy of the parsing and defaulting logic; Options declares
// every knob once, keeps both binaries' flag names as aliases, and
// builds the core.Request / core.Cell the unified execution API runs.
// Adding the next knob means adding it here, once.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Options holds every driver knob. Register* methods bind the subset a
// binary exposes onto its FlagSet under the historical flag names.
type Options struct {
	Camp     string // fc | lc
	Workload string // oltp | dss
	Scale    string // full | test

	Unsaturated bool
	Clients     int
	Cores       int
	L2MB        int
	L2Lat       int
	SMP         bool

	Query   int
	Workers int
	Share   bool
	Vec     bool
	Row     bool

	Steps  bool
	Cohort int
	Txns   int
	Parts  int
	Remote int

	Window uint64
	Warm   int

	// TraceOut writes the executor-mode runs' dual-clock spans as Chrome
	// trace-event JSON to this path.
	TraceOut string

	// CPUProfile writes a pprof CPU profile of the whole run to this
	// path, so a perf regression caught by the bench gates is diagnosable
	// straight from the artifact.
	CPUProfile string

	// NativeWorkers is the comma-separated worker-count sweep for the
	// native fast path (e.g. "1,2,4").
	NativeWorkers string

	// ZeroCopy additionally measures each native worker count with
	// borrowed page-aliasing scan blocks (copy vs borrow side by side).
	ZeroCopy bool

	// JoinMode pins the hash-join strategy of joining plans (Q13):
	// chained, partitioned, prefetch, or auto (the build-size policy).
	JoinMode string

	Lineitems int

	fs *flag.FlagSet
}

// RegisterSim binds the simulation driver's (cmd/cmpsim) flag surface.
func (o *Options) RegisterSim(fs *flag.FlagSet) {
	o.fs = fs
	fs.StringVar(&o.Camp, "camp", "fc", "core camp: fc (out-of-order) or lc (multithreaded in-order)")
	fs.StringVar(&o.Workload, "workload", "oltp", "workload: oltp or dss")
	fs.BoolVar(&o.Unsaturated, "unsaturated", false, "single client, response-time mode")
	fs.IntVar(&o.Clients, "clients", 0, "saturated client count (0 = paper default)")
	fs.IntVar(&o.Cores, "cores", 4, "cores on chip")
	fs.IntVar(&o.L2MB, "l2mb", 26, "L2 size in MB")
	fs.IntVar(&o.L2Lat, "l2lat", 0, "L2 hit latency in cycles (0 = Cacti model)")
	fs.BoolVar(&o.SMP, "smp", false, "private L2 per core (SMP) instead of shared (CMP)")
	fs.IntVar(&o.Query, "query", 6, "DSS query analog for unsaturated runs (1, 6, 13, 16)")
	fs.IntVar(&o.Workers, "workers", 0, "run one DSS query on the morsel-driven parallel executor with N workers (1 and 6; 13 runs the parallel-join core)")
	fs.BoolVar(&o.Share, "share", false, "compare -clients concurrent DSS clients with and without cross-query work sharing (shared circular scans + result reuse); -query picks 1, 6, 13, or 0 for the mix")
	fs.BoolVar(&o.Vec, "vec", false, "compare one serial DSS query on the vectorized executor against the row-at-a-time reference path (identical chip geometry); -query picks 1, 6, or 13")
	fs.BoolVar(&o.Steps, "steps", false, "compare monolithic OLTP execution against the STEPS-style cohort-scheduled staged executor (identical chip geometry, identical transaction inputs, byte-identical effects); -clients sets logical client streams, -cohort the in-flight window")
	fs.IntVar(&o.Cohort, "cohort", 16, "in-flight transactions for -steps cohort scheduling")
	fs.IntVar(&o.Txns, "txns", 8, "transactions per logical client for -steps")
	fs.IntVar(&o.Parts, "parts", 1, "with -steps: partition the cohort scheduler by home warehouse across N workers (one per simulated core) and report scaling vs 1 partition")
	fs.IntVar(&o.Remote, "remote", 0, "with -steps: percent chance a NewOrder line / Payment customer is drawn from a remote warehouse (cross-partition transactions are fenced)")
	fs.Uint64Var(&o.Window, "window", 400000, "measured window in cycles (saturated)")
	fs.IntVar(&o.Warm, "warm", 400000, "functional-warming refs per thread")
	fs.StringVar(&o.Scale, "scale", "full", "workload scale: full or test")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write executor-mode span traces (dual clock: simulated cycles + wall time) as Chrome trace-event JSON to this file (load in Perfetto)")
	fs.StringVar(&o.JoinMode, "join-mode", "", "hash-join strategy for joining plans (Q13): chained, partitioned, prefetch, or auto (build-size policy)")
}

// RegisterNative binds the native driver's (cmd/dbshell) flag surface —
// the same knobs under the same names, with native-run defaults.
func (o *Options) RegisterNative(fs *flag.FlagSet) {
	o.fs = fs
	fs.IntVar(&o.Txns, "txns", 2000, "TPC-C-like transactions to run")
	fs.IntVar(&o.Lineitems, "lineitems", 100000, "TPC-H-like lineitem rows")
	fs.IntVar(&o.Workers, "workers", 1, "morsel-parallel workers for the DSS analogs (Q1/Q6)")
	fs.BoolVar(&o.Share, "share", false, "run DSS analogs through the work-sharing subsystem (shared circular scans + result reuse)")
	fs.IntVar(&o.Clients, "clients", 8, "concurrent clients for the -share throughput comparison")
	fs.BoolVar(&o.Row, "row", false, "run serial DSS analogs on the row-at-a-time reference operators instead of the vectorized executor")
	fs.BoolVar(&o.Steps, "steps", false, "compare monolithic vs STEPS-style cohort-scheduled OLTP natively (no simulation): same inputs, byte-identical state, scheduler statistics")
	fs.IntVar(&o.Cohort, "cohort", 16, "in-flight transactions for -steps cohort scheduling")
	fs.IntVar(&o.Parts, "parts", 1, "with -steps: partition the cohort scheduler by home warehouse across N native workers")
	fs.IntVar(&o.Remote, "remote", 0, "with -steps: percent chance of remote-warehouse NewOrder lines / Payment customers (cross-partition transactions are fenced)")
	fs.StringVar(&o.NativeWorkers, "native-workers", "", "comma-separated worker counts (e.g. 1,2,4): sweep the native fast path on Q1/Q6/Q13 — compiled predicates + selection vectors vs the interpreted reference, morsel-parallel at each count")
	fs.BoolVar(&o.ZeroCopy, "zero-copy", false, "with -native-workers: also measure each count with borrowed page-aliasing scan blocks (zero-copy), recording the copy-vs-borrow pair side by side")
	fs.StringVar(&o.JoinMode, "join-mode", "", "hash-join strategy for joining plans (Q13): chained, partitioned, prefetch, or auto (build-size policy); with -native-workers on Q13, an empty value measures all three side by side")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
}

// NativeWorkerCounts parses the -native-workers sweep; nil means the
// flag was not given.
func (o *Options) NativeWorkerCounts() ([]int, error) {
	if o.NativeWorkers == "" {
		return nil, nil
	}
	var counts []int
	for _, s := range strings.Split(o.NativeWorkers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -native-workers entry %q (want positive integers, e.g. 1,2,4)", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// WasSet reports whether the named flag was given on the command line.
func (o *Options) WasSet(name string) bool {
	set := false
	if o.fs != nil {
		o.fs.Visit(func(f *flag.Flag) {
			if f.Name == name {
				set = true
			}
		})
	}
	return set
}

// CampKind parses the -camp flag.
func (o *Options) CampKind() (sim.Camp, error) {
	switch o.Camp {
	case "fc":
		return sim.FatCamp, nil
	case "lc":
		return sim.LeanCamp, nil
	}
	return 0, fmt.Errorf("unknown camp %q", o.Camp)
}

// WorkloadKind parses the -workload flag.
func (o *Options) WorkloadKind() (core.WorkloadKind, error) {
	switch o.Workload {
	case "oltp":
		return core.OLTP, nil
	case "dss":
		return core.DSS, nil
	}
	return 0, fmt.Errorf("unknown workload %q", o.Workload)
}

// ScaleCfg parses the -scale flag.
func (o *Options) ScaleCfg() (core.Scale, error) {
	switch o.Scale {
	case "full", "":
		return core.FullScale(), nil
	case "test":
		return core.TestScale(), nil
	}
	return core.Scale{}, fmt.Errorf("unknown scale %q", o.Scale)
}

// Mode reports which unified-API mode the mode flags select; ok is false
// for a plain characterization cell run.
func (o *Options) Mode() (mode core.Mode, ok bool) {
	switch {
	case o.Steps:
		return core.ModeStagedOLTP, true
	case o.Vec:
		return core.ModeVecDSS, true
	case o.Share:
		return core.ModeSharedDSS, true
	case o.Workers > 0:
		return core.ModeParallelDSS, true
	}
	return "", false
}

// Cell materializes the chip geometry the flags describe, including the
// historical warm-budget defaulting: an explicit -warm always wins;
// otherwise each mode gets its light default (heavy warming would
// consume a whole measured run of the short-trace modes), and
// unsaturated DSS cell runs get the scale-dependent completion default.
func (o *Options) Cell() (core.Cell, error) {
	camp, err := o.CampKind()
	if err != nil {
		return core.Cell{}, err
	}
	wk, err := o.WorkloadKind()
	if err != nil {
		return core.Cell{}, err
	}
	cell := core.DefaultCell(camp, wk, !o.Unsaturated)
	cell.Cores = o.Cores
	cell.L2Size = o.L2MB << 20
	cell.L2Lat = o.L2Lat
	cell.SharedL2 = !o.SMP
	cell.UnsatQuery = o.Query
	cell.WindowCycles = o.Window
	cell.WarmRefs = o.Warm
	if o.Clients > 0 {
		cell.Clients = o.Clients
	}
	if !o.WasSet("warm") {
		if mode, ok := o.Mode(); ok {
			cell.WarmRefs = core.DefaultModeCell(mode, camp).WarmRefs
		} else if o.Unsaturated && wk == core.DSS {
			// Unsaturated DSS runs measure one query to completion; the
			// saturated warming default would consume a whole vectorized
			// test-scale query before measurement starts.
			cell.WarmRefs = 50000
			if o.Scale == "test" {
				cell.WarmRefs = 20000
			}
		}
	}
	return cell, nil
}

// Request builds the unified-API request the mode flags describe.
// Validation of the combination (query numbers, partition counts, remote
// percentage) is core.Request.Validate's job; this only wires flags to
// fields.
func (o *Options) Request() (core.Request, error) {
	mode, ok := o.Mode()
	if !ok {
		return core.Request{}, fmt.Errorf("no executor mode selected (-vec, -share, -workers, or -steps)")
	}
	wk, err := o.WorkloadKind()
	if err != nil {
		return core.Request{}, err
	}
	switch mode {
	case core.ModeStagedOLTP:
		if wk != core.OLTP {
			return core.Request{}, fmt.Errorf("-steps requires -workload oltp (staged transaction execution)")
		}
	default:
		if wk != core.DSS {
			return core.Request{}, fmt.Errorf("-%s requires -workload dss", map[core.Mode]string{
				core.ModeVecDSS: "vec", core.ModeSharedDSS: "share", core.ModeParallelDSS: "workers",
			}[mode])
		}
	}
	cell, err := o.Cell()
	if err != nil {
		return core.Request{}, err
	}
	req := core.Request{Mode: mode, Query: o.Query, Seed: 7, Cell: &cell, Trace: o.TraceOut != "", JoinMode: o.JoinMode}
	switch mode {
	case core.ModeStagedOLTP:
		req.Clients = o.Clients
		req.Txns = o.Txns
		req.Cohort = o.Cohort
		req.Parts = o.Parts
		req.RemotePct = o.Remote
		if o.Parts > 1 {
			req.PartCounts = []int{1, o.Parts}
		}
	case core.ModeSharedDSS:
		req.Clients = o.Clients
		if req.Clients <= 0 {
			req.Clients = 8
		}
	case core.ModeParallelDSS:
		req.Workers = o.Workers
	}
	return req, nil
}
