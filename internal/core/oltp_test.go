package core

import (
	"testing"

	"repro/internal/sim"
)

// TestStagedOLTPPaired runs the paired monolithic-vs-cohort experiment at
// test scale and checks the PR's acceptance gate end to end: identical
// final state, fewer simulated L1I misses, and committed work on both
// sides.
func TestStagedOLTPPaired(t *testing.T) {
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, OLTP, false)
	cell.WarmRefs = 10000
	cell.StreamBuf = false
	opts := StagedOLTPOpts{Clients: 8, PerClient: 4, Cohort: 16, Seed: 7}
	mono, coh, missRed, speedup, err := r.StagedOLTPSpeedup(cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Txns != opts.Clients*opts.PerClient || coh.Txns != mono.Txns {
		t.Fatalf("committed %d monolithic / %d cohort, want %d", mono.Txns, coh.Txns, opts.Clients*opts.PerClient)
	}
	t.Logf("monolithic: %d cycles, %d L1I misses, %.1f%% istall, %.2f txn/Mcycle",
		mono.Cycles, mono.Result.Cache.L1IMisses, mono.IStallFrac()*100, mono.TxnsPerMcycle())
	t.Logf("cohort:     %d cycles, %d L1I misses, %.1f%% istall, %.2f txn/Mcycle (stats %+v)",
		coh.Cycles, coh.Result.Cache.L1IMisses, coh.IStallFrac()*100, coh.TxnsPerMcycle(), coh.Sched)
	t.Logf("L1I miss reduction %.2fx, speedup %.2fx", missRed, speedup)
	if missRed <= 1 {
		t.Errorf("cohort scheduling did not cut L1I misses (reduction %.2fx)", missRed)
	}
}
