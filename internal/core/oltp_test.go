package core

import (
	"testing"

	"repro/internal/sim"
)

// TestStagedOLTPPaired runs the paired monolithic-vs-cohort experiment at
// test scale and checks the PR's acceptance gate end to end: identical
// final state, fewer simulated L1I misses, and committed work on both
// sides.
func TestStagedOLTPPaired(t *testing.T) {
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, OLTP, false)
	cell.WarmRefs = 10000
	cell.StreamBuf = false
	opts := StagedOLTPOpts{Clients: 8, PerClient: 4, Cohort: 16, Seed: 7}
	mono, coh, missRed, speedup, err := r.StagedOLTPSpeedup(cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Txns != opts.Clients*opts.PerClient || coh.Txns != mono.Txns {
		t.Fatalf("committed %d monolithic / %d cohort, want %d", mono.Txns, coh.Txns, opts.Clients*opts.PerClient)
	}
	t.Logf("monolithic: %d cycles, %d L1I misses, %.1f%% istall, %.2f txn/Mcycle",
		mono.Cycles, mono.Result.Cache.L1IMisses, mono.IStallFrac()*100, mono.TxnsPerMcycle())
	t.Logf("cohort:     %d cycles, %d L1I misses, %.1f%% istall, %.2f txn/Mcycle (stats %+v)",
		coh.Cycles, coh.Result.Cache.L1IMisses, coh.IStallFrac()*100, coh.TxnsPerMcycle(), coh.Sched)
	t.Logf("L1I miss reduction %.2fx, speedup %.2fx", missRed, speedup)
	if missRed <= 1 {
		t.Errorf("cohort scheduling did not cut L1I misses (reduction %.2fx)", missRed)
	}
}

// TestStagedOLTPPartitionedScaling runs the canonical partition sweep —
// the same cell the CI gate and the BENCH artifact measure — and checks
// the multi-worker acceptance gate end to end: every digest
// byte-identical to the monolithic reference (enforced inside
// StagedOLTPScaling), all work committed, per-partition stats reported,
// and simulated cycles improving with partition count.
func TestStagedOLTPPartitionedScaling(t *testing.T) {
	sweep := DefaultPartitionSweep()
	r := NewRunner(sweep.Scale)
	cell := sweep.Cell
	cell.StreamBuf = false
	opts := sweep.Opts
	parts := sweep.Parts
	mono, runs, scaling, err := r.StagedOLTPScaling(cell, opts, parts)
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Clients * opts.PerClient
	if mono.Txns != want {
		t.Fatalf("monolithic committed %d, want %d", mono.Txns, want)
	}
	for i, run := range runs {
		if run.Txns != want {
			t.Errorf("parts=%d committed %d, want %d", parts[i], run.Txns, want)
		}
		if run.Parts > 1 && len(run.PerPart) != run.Parts {
			t.Errorf("parts=%d reported %d per-partition stats", parts[i], len(run.PerPart))
		}
		t.Logf("parts=%d: %d cycles, %.2fx vs 1-part, %.2f txn/Mcycle (sched %+v)",
			parts[i], run.Cycles, scaling[i], run.TxnsPerMcycle(), run.Sched)
	}
	if scaling[len(scaling)-1] <= 1.2 {
		t.Errorf("parts=4 only %.2fx over parts=1; partitioning is not scaling", scaling[len(scaling)-1])
	}
}

// TestStagedOLTPRemoteMixTraced drives the remote-heavy mix through the
// traced partitioned path: fenced transactions must be counted and the
// digest must still match the monolithic reference (checked inside
// StagedOLTPScaling).
func TestStagedOLTPRemoteMixTraced(t *testing.T) {
	sweep := DefaultPartitionSweep()
	r := NewRunner(sweep.Scale)
	cell := sweep.Cell
	cell.StreamBuf = false
	opts := StagedOLTPOpts{Clients: 8, PerClient: 3, Cohort: 16, Seed: 7, RemotePct: 50}
	_, runs, _, err := r.StagedOLTPScaling(cell, opts, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Fenced == 0 {
		t.Error("remote-heavy mix fenced no transactions; the handoff went untested")
	}
	t.Logf("parts=2 remote-heavy: %d fenced of %d txns, %d cycles", runs[0].Fenced, runs[0].Txns, runs[0].Cycles)
}
