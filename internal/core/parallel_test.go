package core

import (
	"testing"

	"repro/internal/sim"
)

// parCell is the fixed chip geometry the parallel tests share (4-core FC
// CMP), so worker-count comparisons measure executor scaling only. The
// saturated default of 400k warming refs would consume a test-scale
// query before measurement starts — and the vectorized executor emits
// several times fewer refs per query than the old row-at-a-time scans —
// so 5k warms the caches while leaving every worker's share observable.
func parCell() Cell {
	c := DefaultCell(sim.FatCamp, DSS, true)
	c.WarmRefs = 5000
	return c
}

func TestRunParallelDSSCompletes(t *testing.T) {
	res, err := sharedRunner.RunParallelDSS(parCell(), 6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles measured")
	}
	if res.Rows == 0 {
		t.Fatal("query produced no result rows")
	}
	if res.Workers != 2 || res.Query != 6 {
		t.Fatalf("result mislabeled: %+v", res)
	}
}

func TestParallelSpeedupScalesWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated speedup sweep in -short mode")
	}
	// The morsel executor must convert cores into query speedup: 4 workers
	// beat 1 worker by at least 1.8x on the scan-dominated analog (the
	// observed ratio is ~2.6; the slack absorbs steal-order variation).
	_, speedup, err := sharedRunner.ParallelSpeedup(parCell(), 6, []int{1, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 1.8 {
		t.Fatalf("scan speedup %.2f on 4 workers, want >= 1.8", speedup)
	}
}

func TestParallelJoinMode(t *testing.T) {
	one, err := sharedRunner.RunParallelDSS(parCell(), ParallelJoinQuery, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	four, err := sharedRunner.RunParallelDSS(parCell(), ParallelJoinQuery, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if one.Rows != four.Rows {
		t.Fatalf("join row count differs across worker counts: %d vs %d", one.Rows, four.Rows)
	}
	if four.Cycles >= one.Cycles {
		t.Fatalf("4-worker join (%d cycles) not faster than 1-worker (%d)", four.Cycles, one.Cycles)
	}
}

func TestRunParallelDSSRejectsBadArgs(t *testing.T) {
	if _, err := sharedRunner.RunParallelDSS(parCell(), 6, 0, 7); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := sharedRunner.RunParallelDSS(parCell(), 16, 2, 7); err == nil {
		t.Fatal("query without a parallel variant accepted")
	}
}
