package core

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale sizes the workload databases. Experiments share one loaded
// database per kind (the paper measures from warmed checkpoints of one
// database instance).
type Scale struct {
	TPCC workload.TPCCConfig
	TPCH workload.TPCHConfig
}

// FullScale is the default experiment scale: OLTP ~25 MB hot structure
// (primary working set captured between 8 and 16 MB, per the paper) and a
// DSS lineitem well beyond the largest 26 MB cache.
func FullScale() Scale {
	return Scale{
		TPCC: workload.TPCCConfig{Warehouses: 4, Items: 20000, CustPerDis: 500, ArenaBytes: 256 << 20},
		TPCH: workload.TPCHConfig{Lineitems: 400000, ArenaBytes: 256 << 20},
	}
}

// TestScale is a small fast scale for unit tests.
func TestScale() Scale {
	return Scale{
		TPCC: workload.TPCCConfig{Warehouses: 2, Items: 2000, CustPerDis: 100, ArenaBytes: 96 << 20},
		TPCH: workload.TPCHConfig{Lineitems: 40000, ArenaBytes: 96 << 20},
	}
}

// Runner executes experiment cells, lazily building and then reusing the
// workload databases.
type Runner struct {
	ScaleCfg Scale

	// Sched, when its histogram fields are set (obs.Registry-backed in
	// the server), receives scheduler-internals observations — quantum
	// lengths, park durations — from every staged-OLTP run. The zero
	// value discards them.
	Sched obs.SchedMetrics

	// Join, when set, receives hash-join build observations — chain-length
	// distribution, partition fan-out — from the traced DSS runs. The zero
	// value discards them. Native (wall-clock) sweeps never observe: the
	// chain walk would tax the timed loop.
	Join obs.JoinMetrics

	mu   sync.Mutex
	tpcc *workload.TPCC
	tpch *workload.TPCH
}

// NewRunner creates a runner at the given scale.
func NewRunner(s Scale) *Runner { return &Runner{ScaleCfg: s} }

// clientSeed is deterministic per (workload, client) so paired cells —
// e.g. the FC and LC sides of Figure 4 — replay the same request
// sequences, the paper's paired-measurement methodology.
func clientSeed(wk WorkloadKind, client int) int64 {
	return 7919 + int64(wk)*1009 + int64(client)*31
}

// TPCC returns the shared OLTP database, building it on first use.
func (r *Runner) TPCC() (*workload.TPCC, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tpcc == nil {
		w, err := workload.BuildTPCC(r.ScaleCfg.TPCC)
		if err != nil {
			return nil, err
		}
		r.tpcc = w
	}
	return r.tpcc, nil
}

// TPCH returns the shared DSS database, building it on first use.
func (r *Runner) TPCH() (*workload.TPCH, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tpch == nil {
		h, err := workload.BuildTPCH(r.ScaleCfg.TPCH)
		if err != nil {
			return nil, err
		}
		r.tpch = h
	}
	return r.tpch, nil
}

// oltpWork tracks per-client transaction counts for work accounting.
type clientDone struct {
	work int
	err  error
}

// RunCell executes one characterization cell: it spawns one traced
// client per Cell.Clients, binds their streams to a fresh simulated
// chip, functionally warms the caches, measures, and tears the clients
// down. The executor-comparison modes live behind Run (the unified
// request API); RunCell is the figure/table machinery underneath the
// paper's characterization experiments.
func (r *Runner) RunCell(c Cell) (CellResult, error) {
	cfg := c.SimConfig()
	chip := sim.NewChip(cfg)

	var wg sync.WaitGroup
	dones := make([]clientDone, c.Clients)
	streams := make([]*trace.Stream, 0, c.Clients)

	switch c.Workload {
	case OLTP:
		w, err := r.TPCC()
		if err != nil {
			return CellResult{}, err
		}
		for i := 0; i < c.Clients; i++ {
			rec, s := trace.Pipe()
			streams = append(streams, s)
			chip.AddThread(s)
			limit := 0
			if !c.Saturated {
				limit = c.UnsatTxns
			}
			wg.Add(1)
			go func(i int, rec *trace.Recorder) {
				defer wg.Done()
				counts, err := w.Client(rec, i, clientSeed(OLTP, i), limit)
				dones[i] = clientDone{work: counts.Total(), err: err}
			}(i, rec)
		}
	case DSS:
		h, err := r.TPCH()
		if err != nil {
			return CellResult{}, err
		}
		for i := 0; i < c.Clients; i++ {
			rec, s := trace.Pipe()
			streams = append(streams, s)
			chip.AddThread(s)
			wg.Add(1)
			if c.Saturated {
				client := h.Client
				if c.RowPlans {
					client = h.ClientRow
				}
				go func(i int, rec *trace.Recorder) {
					defer wg.Done()
					n, err := client(rec, i, clientSeed(DSS, i), 0)
					dones[i] = clientDone{work: n, err: err}
				}(i, rec)
			} else {
				go func(i int, rec *trace.Recorder) {
					defer wg.Done()
					err := h.RunOnce(rec, i, c.UnsatQuery, clientSeed(DSS, i), c.RowPlans)
					dones[i] = clientDone{work: 1, err: err}
				}(i, rec)
			}
		}
	default:
		return CellResult{}, fmt.Errorf("core: unknown workload %v", c.Workload)
	}

	chip.Warm(c.WarmRefs)
	limit := c.WindowCycles
	if !c.Saturated {
		// Unsaturated runs go to completion (bounded by a generous cap).
		limit = 1 << 34
	}
	res := chip.Run(limit)

	// Tear down: stop producers and drain so goroutines exit.
	for _, s := range streams {
		s.Stop()
	}
	for _, s := range streams {
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
	wg.Wait()

	out := CellResult{Cell: c, Result: res, Throughput: res.IPC()}
	for i := range dones {
		if err := dones[i].err; err != nil {
			return out, fmt.Errorf("core: client %d: %w", i, err)
		}
		out.Work += dones[i].work
	}
	if !c.Saturated {
		switch c.Workload {
		case OLTP:
			// Paired cells replay the identical transaction sequence
			// (same seed), so per-transaction response time is
			// proportional to CPI on that fixed instruction stream;
			// warming consumes an unknown prefix of transactions, which
			// cancels out of the ratio the experiments report.
			out.ResponseCycles = res.CPI() * nominalTxnInstructions
		case DSS:
			rt := res.ThreadDone[0]
			if rt == 0 {
				rt = res.Cycles
			}
			units := out.Work
			if units == 0 {
				units = 1
			}
			out.ResponseCycles = float64(rt) / float64(units)
		}
	}
	return out, nil
}

// nominalTxnInstructions scales unsaturated OLTP CPI into cycles per
// transaction for reporting; only ratios between cells are meaningful.
const nominalTxnInstructions = 25000
