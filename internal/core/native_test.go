// Tests for the native host-execution sweep: point structure and digest
// contracts always, and — under BENCH_NATIVE=1 — the CI speedup gates
// (compiled+selection ≥ 1.5× interpreted at one worker; ≥ 2.5× scaling
// at four workers when the host actually has four cores to give).

package core

import (
	"os"
	"runtime"
	"testing"
)

// TestRunNativeDSSSweepShape: the sweep leads with the interpreted
// 1-worker reference, carries one compiled point per requested count,
// and every serial digest is byte-identical (interpreted, compiled, and
// 1-worker parallel all execute the same row order).
func TestRunNativeDSSSweepShape(t *testing.T) {
	for _, q := range []int{1, 6, 13} {
		runs, err := sharedRunner.RunNativeDSS(q, []int{1, 2}, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 3 {
			t.Fatalf("q%d: %d points, want 3 (interpreted + 2 counts)", q, len(runs))
		}
		ref := runs[0]
		if !ref.Interpreted || ref.Workers != 1 {
			t.Fatalf("q%d: first point %+v is not the interpreted reference", q, ref)
		}
		for i, r := range runs {
			if r.Query != q || r.Rows <= 0 || r.Nanos <= 0 || r.RowsPerSec <= 0 || r.ResultRows <= 0 {
				t.Fatalf("q%d point %d: incomplete measurement %+v", q, i, r)
			}
			if i > 0 && r.Interpreted {
				t.Fatalf("q%d point %d: unexpected interpreted point", q, i)
			}
		}
		if runs[1].Workers != 1 || runs[2].Workers != 2 {
			t.Fatalf("q%d: worker counts %d,%d, want 1,2", q, runs[1].Workers, runs[2].Workers)
		}
		if runs[1].Digest != ref.Digest {
			t.Fatalf("q%d: compiled serial digest %#x != interpreted %#x (fast path changed the result)",
				q, runs[1].Digest, ref.Digest)
		}
		if runs[2].Digest != countDigest(runs[2].ResultRows) {
			t.Fatalf("q%d: parallel digest is not the row-count digest", q)
		}
		if runs[2].ResultRows != ref.ResultRows {
			t.Fatalf("q%d: parallel result rows %d != serial %d", q, runs[2].ResultRows, ref.ResultRows)
		}
	}
}

// TestRequestNativeWorkersValidation: native sweeps are DSS-only, need a
// concrete query, and reject non-positive counts.
func TestRequestNativeWorkersValidation(t *testing.T) {
	bad := []Request{
		{Mode: ModeStagedOLTP, NativeWorkers: []int{1}},
		{Mode: ModeVecDSS, NativeWorkers: []int{0}},
		{Mode: ModeSharedDSS, Query: 0, NativeWorkers: []int{1}}, // mix has no single native plan
		{Mode: ModeParallelDSS, NativeWorkers: []int{2, -1}},
	}
	for i, req := range bad {
		req = req.WithDefaults()
		if req.Mode == ModeSharedDSS {
			req.Query = 0
		}
		err := req.Validate()
		if err == nil {
			t.Fatalf("case %d: invalid native request validated: %+v", i, req)
		}
		if verr, ok := err.(*ValidationError); !ok || verr.Field != "native_workers" {
			t.Fatalf("case %d: error %v does not name native_workers", i, err)
		}
	}
	good := Request{Mode: ModeVecDSS, Query: 6, NativeWorkers: []int{1, 4}}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid native request rejected: %v", err)
	}
}

// TestNativeSpeedupGate is the CI gate (run with BENCH_NATIVE=1): the
// compiled+selection-vector fast path must beat the interpreted
// reference by ≥ 1.5× on Q6 at one worker, and four workers must scale
// ≥ 2.5× over one — the latter asserted only when the host has at least
// four CPUs (a single-core container cannot express parallel speedup).
func TestNativeSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_NATIVE") == "" {
		t.Skip("set BENCH_NATIVE=1 to run the native speedup gate")
	}
	runs, err := sharedRunner.RunNativeDSS(6, []int{1, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]bool]NativeRun{}
	var w1, w4 NativeRun
	for _, r := range runs {
		switch {
		case r.Interpreted:
			byKey[[2]bool{true, false}] = r
		case r.Workers == 1:
			w1 = r
		case r.Workers == 4:
			w4 = r
		}
	}
	interp := byKey[[2]bool{true, false}]
	if interp.Nanos == 0 || w1.Nanos == 0 || w4.Nanos == 0 {
		t.Fatalf("sweep incomplete: %+v", runs)
	}
	compiledX := float64(interp.Nanos) / float64(w1.Nanos)
	t.Logf("q6 compiled+sel vs interpreted @1 worker: %.2fx (%.0f vs %.0f rows/sec)",
		compiledX, w1.RowsPerSec, interp.RowsPerSec)
	if compiledX < 1.5 {
		t.Fatalf("compiled fast path %.2fx < 1.5x gate", compiledX)
	}
	scalingX := float64(w1.Nanos) / float64(w4.Nanos)
	t.Logf("q6 scaling @4 workers: %.2fx on %d host CPUs", scalingX, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; skipping the 4-worker scaling gate", runtime.NumCPU())
	}
	if scalingX < 2.5 {
		t.Fatalf("4-worker scaling %.2fx < 2.5x gate", scalingX)
	}
}
