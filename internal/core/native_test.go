// Tests for the native host-execution sweep: point structure and digest
// contracts always, and — under BENCH_NATIVE=1 — the CI speedup gates
// (compiled+selection ≥ 1.5× and zero-copy ≥ 1.9× over interpreted on
// Q6 at one worker, zero-copy ≥ 1.25× over the copying fast path; Q13's
// compiled join kernels over borrowed scans ≥ 1.3× over interpreted;
// ≥ 2.5× scaling at four workers when the host has four cores to give).

package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// writeBenchstatArtifact appends the sweep's points to the file named by
// BENCH_NATIVE_OUT in Go benchmark format — one line per point with
// ns/op, rows/s, and GB/s — so CI can archive a benchstat-consumable
// copy-vs-borrow comparison from the gate run.
func writeBenchstatArtifact(t *testing.T, runs []NativeRun) {
	path := os.Getenv("BENCH_NATIVE_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("BENCH_NATIVE_OUT: %v", err)
	}
	defer f.Close()
	for _, r := range runs {
		flavor := "copy"
		switch {
		case r.Interpreted:
			flavor = "interpreted"
		case r.Borrowed:
			flavor = "borrow"
		}
		if r.JoinMode != "" && r.JoinMode != "auto" {
			flavor += "/join=" + r.JoinMode
		}
		fmt.Fprintf(f, "BenchmarkNativeQ%d/%s/workers=%d 1 %d ns/op %.0f rows/s %.3f GB/s\n",
			r.Query, flavor, r.Workers, r.Nanos, r.RowsPerSec, r.GBPerSec)
	}
}

// TestRunNativeDSSSweepShape: the sweep leads with the interpreted
// 1-worker reference, carries one compiled point per requested count,
// and every serial digest is byte-identical (interpreted, compiled, and
// 1-worker parallel all execute the same row order).
func TestRunNativeDSSSweepShape(t *testing.T) {
	for _, q := range []int{1, 6, 13} {
		runs, err := sharedRunner.RunNativeDSS(q, []int{1, 2}, 7, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 3 {
			t.Fatalf("q%d: %d points, want 3 (interpreted + 2 counts)", q, len(runs))
		}
		ref := runs[0]
		if !ref.Interpreted || ref.Workers != 1 {
			t.Fatalf("q%d: first point %+v is not the interpreted reference", q, ref)
		}
		for i, r := range runs {
			if r.Query != q || r.Rows <= 0 || r.Nanos <= 0 || r.RowsPerSec <= 0 || r.ResultRows <= 0 {
				t.Fatalf("q%d point %d: incomplete measurement %+v", q, i, r)
			}
			if r.BytesScanned <= 0 || r.GBPerSec <= 0 {
				t.Fatalf("q%d point %d: missing bandwidth accounting %+v", q, i, r)
			}
			if r.MedianNanos < r.Nanos || r.IQRNanos < 0 {
				t.Fatalf("q%d point %d: median %d < best %d or IQR %d < 0",
					q, i, r.MedianNanos, r.Nanos, r.IQRNanos)
			}
			if i > 0 && r.Interpreted {
				t.Fatalf("q%d point %d: unexpected interpreted point", q, i)
			}
			if r.Borrowed {
				t.Fatalf("q%d point %d: borrowed point in a copy-only sweep", q, i)
			}
		}
		if runs[1].Workers != 1 || runs[2].Workers != 2 {
			t.Fatalf("q%d: worker counts %d,%d, want 1,2", q, runs[1].Workers, runs[2].Workers)
		}
		if runs[1].Digest != ref.Digest {
			t.Fatalf("q%d: compiled serial digest %#x != interpreted %#x (fast path changed the result)",
				q, runs[1].Digest, ref.Digest)
		}
		if runs[2].Digest != countDigest(runs[2].ResultRows) {
			t.Fatalf("q%d: parallel digest is not the row-count digest", q)
		}
		if runs[2].ResultRows != ref.ResultRows {
			t.Fatalf("q%d: parallel result rows %d != serial %d", q, runs[2].ResultRows, ref.ResultRows)
		}
	}
}

// TestRunNativeDSSZeroCopySweep: with zeroCopy set every worker count is
// measured twice — copying then borrowed — the borrowed serial digest is
// byte-identical to the interpreted reference, and the sweep ends with
// zero outstanding page leases (borrowed blocks release their pins).
func TestRunNativeDSSZeroCopySweep(t *testing.T) {
	h, err := sharedRunner.TPCH()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 6, 13} {
		runs, err := sharedRunner.RunNativeDSS(q, []int{1, 2}, 7, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 5 {
			t.Fatalf("q%d: %d points, want 5 (interpreted + copy/borrow at 2 counts)", q, len(runs))
		}
		ref := runs[0]
		want := []struct {
			workers  int
			borrowed bool
		}{{1, false}, {1, true}, {2, false}, {2, true}}
		for i, w := range want {
			r := runs[i+1]
			if r.Workers != w.workers || r.Borrowed != w.borrowed || r.Interpreted {
				t.Fatalf("q%d point %d: got workers=%d borrowed=%v, want workers=%d borrowed=%v",
					q, i+1, r.Workers, r.Borrowed, w.workers, w.borrowed)
			}
		}
		for _, r := range runs[1:3] {
			if r.Digest != ref.Digest {
				t.Fatalf("q%d: serial digest %#x (borrowed=%v) != interpreted %#x",
					q, r.Digest, r.Borrowed, ref.Digest)
			}
		}
		if n := h.DB.Pool.Leases(); n != 0 {
			t.Fatalf("q%d: %d page leases outstanding after the sweep", q, n)
		}
	}
}

// TestRequestNativeWorkersValidation: native sweeps are DSS-only, need a
// concrete query, and reject non-positive counts; zero-copy needs a
// native sweep to ride on.
func TestRequestNativeWorkersValidation(t *testing.T) {
	bad := []Request{
		{Mode: ModeStagedOLTP, NativeWorkers: []int{1}},
		{Mode: ModeVecDSS, NativeWorkers: []int{0}},
		{Mode: ModeSharedDSS, Query: 0, NativeWorkers: []int{1}}, // mix has no single native plan
		{Mode: ModeParallelDSS, NativeWorkers: []int{2, -1}},
	}
	for i, req := range bad {
		req = req.WithDefaults()
		if req.Mode == ModeSharedDSS {
			req.Query = 0
		}
		err := req.Validate()
		if err == nil {
			t.Fatalf("case %d: invalid native request validated: %+v", i, req)
		}
		if verr, ok := err.(*ValidationError); !ok || verr.Field != "native_workers" {
			t.Fatalf("case %d: error %v does not name native_workers", i, err)
		}
	}
	zc := Request{Mode: ModeVecDSS, Query: 6, NativeZeroCopy: true}.WithDefaults()
	err := zc.Validate()
	if verr, ok := err.(*ValidationError); !ok || verr.Field != "native_zero_copy" {
		t.Fatalf("zero-copy without native_workers: error %v does not name native_zero_copy", err)
	}
	good := Request{Mode: ModeVecDSS, Query: 6, NativeWorkers: []int{1, 4}, NativeZeroCopy: true}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid native request rejected: %v", err)
	}
}

// TestNativeSpeedupGate is the CI gate (run with BENCH_NATIVE=1): at one
// worker the copying fast path must beat interpreted Q6 by ≥ 1.5×, the
// zero-copy path by ≥ 1.9× over interpreted and ≥ 1.25× over copying;
// Q13's full fast path (compiled join kernels over borrowed scans) must
// beat interpreted by ≥ 1.3×; the partitioned and prefetch join modes
// must each beat the chained native path by ≥ 1.15× (best-of-3) with
// byte-identical digests, and simulated Q13 must show a strictly lower
// partitioned D-stall fraction; and four
// borrowed workers must scale ≥ 2.5× over one — the latter asserted only
// when the host has at least four CPUs (a single-core container cannot
// express parallel speedup). BENCH_NATIVE_OUT names a file to append a
// benchstat-style copy-vs-borrow summary to (the CI artifact).
func TestNativeSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_NATIVE") == "" {
		t.Skip("set BENCH_NATIVE=1 to run the native speedup gate")
	}
	// The gate measures at full scale: per-run times of 5-25ms are far
	// less noise-compressed than the test-scale 1-2ms floors, where timer
	// jitter and frequency drift can eat a 1.5x ratio whole. Each ratio is
	// the best over up to three sweep attempts — the flavors of one sweep
	// run seconds apart, so a frequency excursion in between produces a
	// spuriously low ratio that a fresh paired attempt rejects.
	big := NewRunner(FullScale())
	var interp, copy1, borrow1, copy4, borrow4 NativeRun
	var compiledX, borrowVsInterpX, borrowX float64
	for try := 0; try < 3; try++ {
		runs, err := big.RunNativeDSS(6, []int{1, 4}, 7, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runs {
			switch {
			case r.Interpreted:
				interp = r
			case r.Workers == 1 && !r.Borrowed:
				copy1 = r
			case r.Workers == 1 && r.Borrowed:
				borrow1 = r
			case r.Workers == 4 && !r.Borrowed:
				copy4 = r
			case r.Workers == 4 && r.Borrowed:
				borrow4 = r
			}
		}
		if interp.Nanos == 0 || copy1.Nanos == 0 || borrow1.Nanos == 0 || copy4.Nanos == 0 || borrow4.Nanos == 0 {
			t.Fatalf("sweep incomplete: %+v", runs)
		}
		if borrow1.Digest != interp.Digest || copy1.Digest != interp.Digest {
			t.Fatalf("serial digests diverge: interpreted %#x copy %#x borrowed %#x",
				interp.Digest, copy1.Digest, borrow1.Digest)
		}
		if try == 0 {
			writeBenchstatArtifact(t, []NativeRun{interp, copy1, borrow1, copy4, borrow4})
		}
		compiledX = maxf(compiledX, float64(interp.Nanos)/float64(copy1.Nanos))
		borrowVsInterpX = maxf(borrowVsInterpX, float64(interp.Nanos)/float64(borrow1.Nanos))
		borrowX = maxf(borrowX, float64(copy1.Nanos)/float64(borrow1.Nanos))
		if compiledX >= 1.5 && borrowVsInterpX >= 1.9 && borrowX >= 1.25 {
			break
		}
	}
	t.Logf("q6 compiled+sel vs interpreted @1 worker: %.2fx (%.0f vs %.0f rows/sec)",
		compiledX, copy1.RowsPerSec, interp.RowsPerSec)
	if compiledX < 1.5 {
		t.Fatalf("compiled fast path %.2fx < 1.5x gate", compiledX)
	}
	t.Logf("q6 zero-copy vs interpreted @1 worker: %.2fx (%.1f GB/s)", borrowVsInterpX, borrow1.GBPerSec)
	if borrowVsInterpX < 1.9 {
		t.Fatalf("zero-copy %.2fx < 1.9x-over-interpreted gate", borrowVsInterpX)
	}
	t.Logf("q6 zero-copy vs copy @1 worker: %.2fx", borrowX)
	if borrowX < 1.25 {
		t.Fatalf("zero-copy %.2fx < 1.25x-over-copy gate", borrowX)
	}

	// Q13's gate point is the full fast path — compiled join kernels over
	// borrowed scans — against interpreted. Both flavors still land in the
	// artifact so the copy-vs-borrow comparison covers the join too.
	var joinX float64
	for try := 0; try < 3; try++ {
		q13, err := big.RunNativeDSS(13, []int{1}, 7, true)
		if err != nil {
			t.Fatal(err)
		}
		if q13[2].Digest != q13[0].Digest {
			t.Fatalf("q13 serial digests diverge: interpreted %#x borrowed %#x", q13[0].Digest, q13[2].Digest)
		}
		if try == 0 {
			writeBenchstatArtifact(t, q13)
		}
		joinX = maxf(joinX, float64(q13[0].Nanos)/float64(q13[2].Nanos))
		if joinX >= 1.3 {
			break
		}
	}
	t.Logf("q13 compiled join kernels (zero-copy) vs interpreted @1 worker: %.2fx", joinX)
	if joinX < 1.3 {
		t.Fatalf("compiled join fast path %.2fx < 1.3x gate", joinX)
	}

	// Q13 join-mode gate: at full scale the cache-conscious modes must
	// each beat the chained native path by ≥ 1.15× on the borrowed fast
	// path — best over up to three sweep attempts, since the three modes
	// of one sweep run seconds apart — with all serial digests
	// byte-identical across modes.
	var partX, prefX float64
	for try := 0; try < 3; try++ {
		jm, err := big.RunNativeDSS(13, []int{1}, 7, true,
			engine.JoinChained, engine.JoinPartitioned, engine.JoinPrefetch)
		if err != nil {
			t.Fatal(err)
		}
		// interpreted ref, then copy × 3 modes, then borrow × 3 modes.
		byMode := map[string]NativeRun{}
		for _, r := range jm[1:] {
			if r.Borrowed {
				byMode[r.JoinMode] = r
			}
		}
		ch, pa, pf := byMode["chained"], byMode["partitioned"], byMode["prefetch"]
		if ch.Nanos == 0 || pa.Nanos == 0 || pf.Nanos == 0 {
			t.Fatalf("join-mode sweep incomplete: %+v", jm)
		}
		for _, r := range jm[1:] {
			if r.Digest != jm[0].Digest {
				t.Fatalf("q13 %s (borrowed=%v) digest %#x != interpreted %#x",
					r.JoinMode, r.Borrowed, r.Digest, jm[0].Digest)
			}
		}
		if try == 0 {
			writeBenchstatArtifact(t, jm[1:])
		}
		partX = maxf(partX, float64(ch.Nanos)/float64(pa.Nanos))
		prefX = maxf(prefX, float64(ch.Nanos)/float64(pf.Nanos))
		if partX >= 1.15 && prefX >= 1.15 {
			break
		}
	}
	t.Logf("q13 partitioned vs chained @1 worker: %.2fx; prefetch vs chained: %.2fx", partX, prefX)
	if partX < 1.15 {
		t.Fatalf("partitioned join %.2fx < 1.15x-over-chained gate", partX)
	}
	if prefX < 1.15 {
		t.Fatalf("prefetch join %.2fx < 1.15x-over-chained gate", prefX)
	}

	// The simulated clock must agree with the paper's mechanism, not just
	// the wall clock: Q13's partitioned build/probe shows a strictly
	// lower D-stall (L2+mem) fraction of busy cycles than the chained
	// table, at identical result digests. The sim is deterministic, so
	// one run decides.
	cell := DefaultModeCell(ModeVecDSS, sim.FatCamp)
	simCh, err := big.RunVecDSS(cell, 13, true, 7, engine.JoinChained)
	if err != nil {
		t.Fatal(err)
	}
	simPa, err := big.RunVecDSS(cell, 13, true, 7, engine.JoinPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	if simPa.Digest != simCh.Digest {
		t.Fatalf("simulated q13 digests diverge: partitioned %#x chained %#x", simPa.Digest, simCh.Digest)
	}
	dfrac := func(r VecDSSResult) float64 {
		s := StallsOf(r.Result)
		return float64(s.DStallL2+s.DStallMem) / float64(s.Busy)
	}
	chF, paF := dfrac(simCh), dfrac(simPa)
	t.Logf("q13 simulated D-stall fraction: chained %.4f, partitioned %.4f", chF, paF)
	if paF >= chF {
		t.Fatalf("partitioned D-stall fraction %.4f not strictly below chained %.4f", paF, chF)
	}

	scalingX := float64(borrow1.Nanos) / float64(borrow4.Nanos)
	t.Logf("q6 zero-copy scaling @4 workers: %.2fx on %d host CPUs", scalingX, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; skipping the 4-worker scaling gate", runtime.NumCPU())
	}
	if scalingX < 2.5 {
		t.Fatalf("4-worker scaling %.2fx < 2.5x gate", scalingX)
	}
}
