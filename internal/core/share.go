// Cross-query work-sharing experiments: K concurrent DSS clients on one
// simulated chip, with and without the share registry. Unshared, every
// client runs a private scan of the hot table — K passes over the data
// contending for the cache hierarchy. Shared, the clients attach to one
// circular shared scan whose producer workers occupy their own hardware
// contexts, and each client only filters the common batches. The cycle
// ratio between the two modes is the paper's "aggressive data sharing
// across queries" opportunity, measured.

package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/share"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sharedProducerWorkers is the number of traced scan workers feeding each
// shared table's producer in simulated runs.
const sharedProducerWorkers = 2

// SharedDSSResult is one multi-client measurement.
type SharedDSSResult struct {
	Camp    sim.Camp
	Query   int // 0 = the Q1/Q6/Q13 mix
	Clients int
	Shared  bool
	// Cycles is the completion cycle of the slowest client: all K queries
	// are done by then, so Clients/Cycles is aggregate throughput.
	Cycles uint64
	Result sim.Result
	Rows   int // result rows summed over clients
	// Digest combines each client's RowsDigest in client order. It is
	// reproducible for unshared runs (fixed phases, fixed seeds) but NOT
	// comparable across the shared/unshared pair: a consumer attaches to
	// the circular scan wherever the producer happens to be, so float
	// aggregates accumulate in a rotated order and differ in low bits.
	Digest uint64
	Scans  share.Stats
	Cache  share.CacheStats
	// Trace is the dual-clock span run (run → query → rotation) when
	// tracing was requested.
	Trace *obs.Run
}

// Throughput returns queries completed per million simulated cycles.
func (r SharedDSSResult) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Clients) / float64(r.Cycles) * 1e6
}

// sharedTables returns the tables whose scans query q routes through the
// registry (the tables that need producer threads on the chip).
func sharedTables(q int) []string {
	switch q {
	case 0:
		return []string{"lineitem", "orders"}
	case 13:
		return []string{"orders"}
	default:
		return []string{"lineitem"}
	}
}

// RunSharedDSS runs clients concurrent DSS clients to completion on a
// fresh chip described by cell, each firing one query — q of 1, 6, 13, or
// 0 for the Q1/Q6/Q13 mix — with private predicate parameters. With
// shared set, scans ride circular shared scans (producer workers on their
// own chip threads) and aggregates the result-reuse cache; unshared,
// every client runs the private serial plan at the staggered phases
// multi-client DSS clients use today. The chip geometry is identical in
// both modes, so the cycle ratio isolates the work-sharing effect.
func (r *Runner) RunSharedDSS(cell Cell, q, clients int, shared bool, seed int64) (SharedDSSResult, error) {
	return r.RunSharedDSSTraced(cell, q, clients, shared, seed, false)
}

// RunSharedDSSTraced is RunSharedDSS with optional dual-clock span
// collection: a root run span, one query span per client (on the
// client's simulated thread), and — on the shared side — a "rotation"
// span nested inside each query covering the client's attach-to-detach
// window on the circular scan (one full rotation).
func (r *Runner) RunSharedDSSTraced(cell Cell, q, clients int, shared bool, seed int64, traced bool) (SharedDSSResult, error) {
	if clients <= 0 {
		return SharedDSSResult{}, fmt.Errorf("core: shared DSS with %d clients", clients)
	}
	if q != 0 && q != 1 && q != 6 && q != 13 {
		return SharedDSSResult{}, fmt.Errorf("core: shared DSS query %d (have 1, 6, 13, or 0 for the mix)", q)
	}
	h, err := r.TPCH()
	if err != nil {
		return SharedDSSResult{}, err
	}
	chip := sim.NewChip(cell.SimConfig())

	label := "unshared"
	if shared {
		label = "shared"
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if traced {
		tracer = obs.NewTracer()
		chip.SetMarkHandler(tracer.OnMark)
		root = tracer.BeginAt(0, 0, label, "run")
		tracer.StampStart(root, 0)
	}

	// Client threads first (thread ids 0..clients-1), producers after, so
	// ThreadDone[0:clients] are the query completion times.
	ctxs := make([]*engine.Ctx, clients)
	recs := make([]*trace.Recorder, clients)
	streams := make([]*trace.Stream, 0, clients+2*sharedProducerWorkers)
	for i := 0; i < clients; i++ {
		rec, s := trace.Pipe()
		recs[i], streams = rec, append(streams, s)
		chip.AddThread(s)
		ctxs[i] = h.DB.NewCtx(rec, 64+i, 64<<20)
	}

	var env *workload.ShareEnv
	var prodRecs []*trace.Recorder
	if shared {
		prodCtxs := make(map[string][]*engine.Ctx)
		slot := 64 + clients
		for _, tbl := range sharedTables(q) {
			ws := make([]*engine.Ctx, sharedProducerWorkers)
			for w := range ws {
				rec, s := trace.Pipe()
				prodRecs, streams = append(prodRecs, rec), append(streams, s)
				chip.AddThread(s)
				ws[w] = h.DB.NewCtx(rec, slot, 64<<20)
				slot++
			}
			prodCtxs[tbl] = ws
		}
		env = h.NewShareEnvWith(share.Config{
			ProducerWorkers: sharedProducerWorkers,
			NewProducerCtx: func(table string, worker int) *engine.Ctx {
				if ws := prodCtxs[table]; worker < len(ws) {
					return ws[worker]
				}
				return nil // registry falls back to an untraced context
			},
		}, share.NewResultCache(128))
	}

	queryOf := func(i int) int {
		if q == 0 {
			return workload.SharedQueries[i%len(workload.SharedQueries)]
		}
		return q
	}

	rows := make([]int, clients)
	digests := make([]uint64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cwg sync.WaitGroup
		for i := 0; i < clients; i++ {
			cwg.Add(1)
			go func(i int) {
				defer cwg.Done()
				defer recs[i].Close()
				sc := obs.Scope{T: tracer, Thread: i, Parent: root.ID()}
				qsp := sc.Begin(recs[i], fmt.Sprintf("client-%d-q%d", i, queryOf(i)), "query")
				p := workload.RandomParams(rand.New(rand.NewSource(seed + int64(i))))
				var res [][]engine.Value
				var err error
				if shared {
					// One attach-to-detach on the circular scan is exactly
					// one full rotation: the consumer joins wherever the
					// producer is and leaves when it comes back around.
					rsp := sc.Under(qsp).Begin(recs[i], "rotation", "rotation")
					res, err = h.RunQueryShared(ctxs[i], queryOf(i), p, env)
					rsp.End(recs[i])
				} else {
					p.Phase = float64(i%16) / 80
					res, err = h.RunQuery(ctxs[i], queryOf(i), p)
				}
				qsp.End(recs[i])
				rows[i], digests[i], errs[i] = len(res), RowsDigest(res), err
			}(i)
		}
		cwg.Wait()
		if env != nil {
			env.Reg.WaitIdle()
		}
		for _, rec := range prodRecs {
			rec.Close()
		}
	}()

	warm := cell.WarmRefs
	if warm <= 0 {
		warm = 50000
	}
	chip.Warm(warm)
	simRes := chip.Run(1 << 34)
	for _, s := range streams {
		s.Stop()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
	wg.Wait()

	out := SharedDSSResult{Camp: cell.Camp, Query: q, Clients: clients, Shared: shared, Result: simRes}
	dh := fnv.New64a()
	var dbuf [8]byte
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			return out, fmt.Errorf("core: shared DSS client %d: %w", i, errs[i])
		}
		out.Rows += rows[i]
		binary.LittleEndian.PutUint64(dbuf[:], digests[i])
		dh.Write(dbuf[:])
		if d := simRes.ThreadDone[i]; d > out.Cycles {
			out.Cycles = d
		}
	}
	out.Digest = dh.Sum64()
	if out.Cycles == 0 {
		out.Cycles = simRes.Cycles
	}
	if env != nil {
		out.Scans = env.Reg.Stats()
		out.Cache = env.Cache.Stats()
	}
	if tracer != nil {
		root.EndAt(out.Cycles)
		tracer.Finish(out.Cycles)
		run := tracer.Snapshot(label, out.Cycles)
		out.Trace = &run
	}
	return out, nil
}

// SharedSpeedup measures q at clients concurrent clients in both modes on
// identical chip geometry and returns (unshared, shared, ratio): the
// aggregate-throughput gain of cross-query work sharing.
//
// Deprecated: build a Request with ModeSharedDSS and call Run.
func (r *Runner) SharedSpeedup(cell Cell, q, clients int, seed int64) (SharedDSSResult, SharedDSSResult, float64, error) {
	res, err := r.Run(context.Background(), Request{Mode: ModeSharedDSS, Query: q, Clients: clients, Seed: seed, Cell: &cell})
	if err != nil {
		return SharedDSSResult{}, SharedDSSResult{}, 0, err
	}
	unpack := func(s Side, shared bool) SharedDSSResult {
		return SharedDSSResult{
			Camp: cell.Camp, Query: q, Clients: clients, Shared: shared,
			Cycles: s.Cycles, Result: s.Result, Rows: s.Rows, Digest: s.Digest,
			Scans: s.Scans, Cache: s.Reuse,
		}
	}
	return unpack(res.Baseline, false), unpack(res.Main, true), res.SpeedupX, nil
}
