package core

import (
	"math"

	"repro/internal/sim"
)

// CPIBreakdown decomposes cycles-per-instruction, the unit of Figure 3.
type CPIBreakdown struct {
	Total       float64
	Computation float64
	IStalls     float64
	DStalls     float64
	Other       float64
}

// ValidationResult compares the timing simulator against an independent
// analytical CPI model built from the same run's event counts —
// substituting for the paper's FLEXUS-vs-OpenPower720 hardware-counter
// validation (Figure 3), whose role is to show two independent estimates
// of CPI agree closely.
type ValidationResult struct {
	Simulated CPIBreakdown
	Analytic  CPIBreakdown
	// ErrPct is |sim-analytic|/analytic of total CPI, in percent. The
	// paper reports <5% between FLEXUS and hardware.
	ErrPct float64
}

// Figure3 validates cycle accounting on the saturated DSS workload using
// a blocking-core configuration (one context per LC core), for which a
// closed-form CPI model exists: every instruction costs 1/width, every
// miss stalls for its full service latency, every mispredict costs the
// pipeline refill. The clients run the row-at-a-time reference plans —
// their per-tuple dependent accesses are exactly the fully-blocking
// stream the closed form assumes; the vectorized executor's ranged,
// independent loads overlap in the simulator and would need an MLP term
// the model deliberately does not have.
func (r *Runner) Figure3() (ValidationResult, error) {
	cell := DefaultCell(sim.LeanCamp, DSS, true)
	cell.CtxPerCore = 1
	cell.Clients = 4 // one per core: every core busy, no overlap to model
	cell.RowPlans = true
	res, err := r.RunCell(cell)
	if err != nil {
		return ValidationResult{}, err
	}

	cfg := cell.SimConfig().WithDefaults()
	simulated := CPIBreakdown{
		Total:       res.Result.CPI(),
		Computation: float64(res.Result.Breakdown.Computation()) / float64(res.Result.Instructions),
		IStalls:     float64(res.Result.Breakdown.IStalls()) / float64(res.Result.Instructions),
		DStalls:     float64(res.Result.Breakdown.DStalls()) / float64(res.Result.Instructions),
		Other:       float64(res.Result.Breakdown.Other()) / float64(res.Result.Instructions),
	}

	// Analytical model from event counts and configured latencies.
	instr := float64(res.Result.Instructions)
	st := res.Result.Cache
	hier := cfg.Hier.WithDefaults()
	// L2 hits include both instruction and data fills; both block a
	// single-context in-order core for the full latency. Stream-buffer
	// hits cost L1-class latency (no stall).
	stallL2 := float64(st.L2Hits) * float64(hier.L2Lat)
	stallMem := float64(st.MemAccesses) * float64(hier.MemLat)
	branch := instr / float64(cfg.BranchEvery) * float64(cfg.BranchPenalty)
	queue := float64(st.PortQueueCycles)
	analytic := CPIBreakdown{
		Computation: 1 / float64(cfg.LCIssue),
		DStalls:     (stallL2 + stallMem + queue) / instr,
		Other:       branch / instr,
	}
	// Split stalls by I/D in proportion to L1 miss sources.
	l1iMissShare := 0.0
	if tot := st.L1IMisses - st.StreamBufHits + st.L1DMisses; tot > 0 {
		l1iMissShare = float64(st.L1IMisses-st.StreamBufHits) / float64(tot)
	}
	analytic.IStalls = analytic.DStalls * l1iMissShare
	analytic.DStalls -= analytic.IStalls
	analytic.Total = analytic.Computation + analytic.IStalls + analytic.DStalls + analytic.Other

	out := ValidationResult{Simulated: simulated, Analytic: analytic}
	if analytic.Total > 0 {
		out.ErrPct = math.Abs(simulated.Total-analytic.Total) / analytic.Total * 100
	}
	return out, nil
}
