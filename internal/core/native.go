// Native (trace-free) host execution: the same DSS plans the simulator
// traces, run flat-out on the host with a nil trace recorder. This is
// the repo's second clock — wall time instead of simulated cycles — and
// the first measurement whose headline is host rows/sec: compiled
// predicates, selection vectors, batch hash tables, and morsel-driven
// parallelism across real cores. Each sweep point is the best of many
// short runs after a warmup, shaving scheduler noise; float sums across
// worker counts agree only up to
// addition order (the merge is exact for keys, counts, and integer
// sums), which is why parallel digests fingerprint the row count, not
// the float bits.

package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

// NativeRun is one native host-execution measurement point: query Query
// at Workers native workers (wall-clock timed, best of 3).
type NativeRun struct {
	Query   int
	Workers int
	// Interpreted marks the 1-worker reference point with compiled
	// predicates and selection vectors disabled, so the compiled-path
	// speedup is self-contained in the sweep.
	Interpreted bool
	// Rows is base-table rows scanned per run; Nanos the best wall time.
	Rows  int
	Nanos int64
	// RowsPerSec is Rows divided by the best wall time.
	RowsPerSec float64
	// ResultRows counts result rows; Digest fingerprints them (RowsDigest
	// for serial points, a row-count digest for multi-worker points whose
	// float addition order varies with morsel claiming).
	ResultRows int
	Digest     uint64
}

// nativeWorkBytes sizes each native worker's workspace arena.
const nativeWorkBytes = 64 << 20

// RunNativeDSS measures query q natively at each worker count, preceded
// by the interpreted single-worker reference. Worker counts beyond the
// host's cores still run (goroutines share cores); their scaling numbers
// just reflect the hardware they got.
func (r *Runner) RunNativeDSS(q int, workerCounts []int, seed int64) ([]NativeRun, error) {
	if q != 1 && q != 6 && q != 13 {
		return nil, fmt.Errorf("core: native DSS query %d (have 1, 6, 13)", q)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}
	h, err := r.TPCH()
	if err != nil {
		return nil, err
	}
	p := workload.RandomParams(rand.New(rand.NewSource(seed)))
	scanned := h.NativeRowsScanned(q)

	maxW := 1
	for _, w := range workerCounts {
		if w > maxW {
			maxW = w
		}
	}
	// One nil-recorder Ctx per native worker, reused (arena reset) across
	// every point of the sweep. Worker slots 90+ keep the simulated
	// workspace addresses clear of the traced experiments' slots.
	ctxs := make([]*engine.Ctx, maxW)
	for w := range ctxs {
		ctxs[w] = h.DB.NewCtx(nil, 90+w, nativeWorkBytes)
	}
	// Collect before timing: earlier sweeps' worker arenas (64 MB each)
	// otherwise linger on the heap and GC assists tax the timed runs.
	runtime.GC()

	// Each point is one untimed warmup (page in the scan range, size the
	// hash tables) then best-of-11 — test-scale queries run in under a
	// millisecond, where any single timing is one descheduling away from
	// garbage; the minimum of many short runs is the stable statistic.
	measure := func(run func() ([][]engine.Value, error)) (rows [][]engine.Value, best int64, err error) {
		for i := 0; i < 12; i++ {
			for _, c := range ctxs {
				c.Work.Reset()
			}
			start := time.Now()
			rows, err = run()
			d := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, 0, err
			}
			if i > 0 && (best == 0 || d < best) {
				best = d
			}
		}
		return rows, best, nil
	}
	point := func(workers int, interpreted bool, rows [][]engine.Value, nanos int64) NativeRun {
		n := NativeRun{
			Query: q, Workers: workers, Interpreted: interpreted,
			Rows: scanned, Nanos: nanos, ResultRows: len(rows),
		}
		if nanos > 0 {
			n.RowsPerSec = float64(scanned) / (float64(nanos) / 1e9)
		}
		if workers == 1 {
			n.Digest = RowsDigest(rows)
		} else {
			n.Digest = countDigest(len(rows))
		}
		return n
	}

	var out []NativeRun
	rows, nanos, err := measure(func() ([][]engine.Value, error) {
		return h.RunQueryNative(ctxs[0], q, p, workload.NativeOpts{Interpret: true, Compact: true})
	})
	if err != nil {
		return nil, fmt.Errorf("core: native q%d interpreted: %w", q, err)
	}
	out = append(out, point(1, true, rows, nanos))

	for _, w := range workerCounts {
		w := w
		var run func() ([][]engine.Value, error)
		if w == 1 {
			run = func() ([][]engine.Value, error) {
				return h.RunQueryNative(ctxs[0], q, p, workload.NativeOpts{})
			}
		} else {
			wctxs := ctxs[:w]
			run = func() ([][]engine.Value, error) {
				return h.RunQueryParallel(wctxs, q, p)
			}
		}
		rows, nanos, err := measure(run)
		if err != nil {
			return nil, fmt.Errorf("core: native q%d workers=%d: %w", q, w, err)
		}
		out = append(out, point(w, false, rows, nanos))
	}
	return out, nil
}
