// Native (trace-free) host execution: the same DSS plans the simulator
// traces, run flat-out on the host with a nil trace recorder. This is
// the repo's second clock — wall time instead of simulated cycles — and
// the first measurement whose headline is host rows/sec: compiled
// predicates, selection vectors, batch hash tables, and morsel-driven
// parallelism across real cores. Each sweep point is the best of many
// short runs after a warmup, shaving scheduler noise; float sums across
// worker counts agree only up to
// addition order (the merge is exact for keys, counts, and integer
// sums), which is why parallel digests fingerprint the row count, not
// the float bits.

package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

// NativeRun is one native host-execution measurement point: query Query
// at Workers native workers (wall-clock timed, best of 50).
type NativeRun struct {
	Query   int
	Workers int
	// Interpreted marks the 1-worker reference point with compiled
	// predicates, hash kernels, and selection vectors disabled, so the
	// compiled-path speedup is self-contained in the sweep.
	Interpreted bool
	// Borrowed marks a zero-copy point: scans alias buffer-pool pages
	// (borrowed blocks) instead of memmoving tuples into the arena.
	Borrowed bool
	// JoinMode is the hash-join strategy this point requested ("auto",
	// "chained", "partitioned", "prefetch"); only Q13 joins, so other
	// queries always record "auto".
	JoinMode string
	// Rows is base-table rows scanned per run; Nanos the best wall time.
	Rows  int
	Nanos int64
	// MedianNanos and IQRNanos summarize the 50 timed runs (median and
	// interquartile range), so the sweep records spread, not just the
	// floor the speedup gates compare.
	MedianNanos int64
	IQRNanos    int64
	// RowsPerSec is Rows divided by the best wall time.
	RowsPerSec float64
	// BytesScanned is base-table bytes read per run (rows × row width);
	// GBPerSec is the effective scan bandwidth at the best wall time —
	// the number the zero-copy path races against memory bandwidth.
	BytesScanned int
	GBPerSec     float64
	// ResultRows counts result rows; Digest fingerprints them (RowsDigest
	// for serial points, a row-count digest for multi-worker points whose
	// float addition order varies with morsel claiming).
	ResultRows int
	Digest     uint64
}

// nativeWorkBytes sizes each native worker's workspace arena.
const nativeWorkBytes = 64 << 20

// RunNativeDSS measures query q natively at each worker count, preceded
// by the interpreted single-worker reference. With zeroCopy set, each
// worker count is measured twice — once on the copying fast path, once
// with borrowed page-aliasing blocks — so the sweep records the
// copy-vs-borrow pair side by side. Optional join modes multiply the
// points of a joining query (Q13): each listed mode is measured at every
// (workers, flavor) combination, so chained, partitioned, and prefetch
// probing can be compared on identical inputs; non-joining queries
// collapse the list to one point. Worker counts beyond the host's
// cores still run (goroutines share cores); their scaling numbers just
// reflect the hardware they got.
func (r *Runner) RunNativeDSS(q int, workerCounts []int, seed int64, zeroCopy bool, modes ...engine.JoinMode) ([]NativeRun, error) {
	if q != 1 && q != 6 && q != 13 {
		return nil, fmt.Errorf("core: native DSS query %d (have 1, 6, 13)", q)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}
	h, err := r.TPCH()
	if err != nil {
		return nil, err
	}
	p := workload.RandomParams(rand.New(rand.NewSource(seed)))
	scanned := h.NativeRowsScanned(q)
	scannedBytes := h.NativeBytesScanned(q)

	maxW := 1
	for _, w := range workerCounts {
		if w > maxW {
			maxW = w
		}
	}
	// One nil-recorder Ctx per native worker, reused (arena reset) across
	// every point of the sweep. Worker slots 90+ keep the simulated
	// workspace addresses clear of the traced experiments' slots.
	ctxs := make([]*engine.Ctx, maxW)
	for w := range ctxs {
		ctxs[w] = h.DB.NewCtx(nil, 90+w, nativeWorkBytes)
	}
	// Collect before timing: earlier sweeps' worker arenas (64 MB each)
	// otherwise linger on the heap and GC assists tax the timed runs.
	runtime.GC()

	// Each point is three untimed warmups (page in the scan range, size
	// the hash tables, let the core ramp) then 50 timed runs — test-scale
	// queries run in a millisecond or two, where any single timing is one
	// descheduling or GC assist away from garbage, and the floor keeps
	// dropping for dozens of runs as caches and branch predictors settle.
	// The minimum is the stable statistic the gates compare; the median
	// and interquartile range record the spread.
	measure := func(run func() ([][]engine.Value, error)) (rows [][]engine.Value, best, median, iqr int64, err error) {
		var times []int64
		for i := 0; i < 53; i++ {
			for _, c := range ctxs {
				c.Work.Reset()
			}
			start := time.Now()
			rows, err = run()
			d := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, 0, 0, 0, err
			}
			if i >= 3 {
				times = append(times, d)
			}
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return rows, times[0], times[25], times[37] - times[12], nil
	}
	point := func(workers int, interpreted, borrowed bool, rows [][]engine.Value, best, median, iqr int64) NativeRun {
		n := NativeRun{
			Query: q, Workers: workers, Interpreted: interpreted, Borrowed: borrowed,
			JoinMode: engine.JoinAuto.String(),
			Rows:     scanned, Nanos: best, MedianNanos: median, IQRNanos: iqr,
			BytesScanned: scannedBytes, ResultRows: len(rows),
		}
		if best > 0 {
			n.RowsPerSec = float64(scanned) / (float64(best) / 1e9)
			n.GBPerSec = float64(scannedBytes) / float64(best)
		}
		if workers == 1 {
			n.Digest = RowsDigest(rows)
		} else {
			n.Digest = countDigest(len(rows))
		}
		return n
	}
	runPoint := func(w int, o workload.NativeOpts) func() ([][]engine.Value, error) {
		if w == 1 {
			return func() ([][]engine.Value, error) {
				return h.RunQueryNative(ctxs[0], q, p, o)
			}
		}
		wctxs := ctxs[:w]
		return func() ([][]engine.Value, error) {
			return h.RunQueryParallelNative(wctxs, q, p, o)
		}
	}

	if len(modes) == 0 || q != 13 {
		modes = []engine.JoinMode{engine.JoinAuto}
	}

	var out []NativeRun
	rows, best, median, iqr, err := measure(func() ([][]engine.Value, error) {
		return h.RunQueryNative(ctxs[0], q, p, workload.NativeOpts{Interpret: true, Compact: true})
	})
	if err != nil {
		return nil, fmt.Errorf("core: native q%d interpreted: %w", q, err)
	}
	out = append(out, point(1, true, false, rows, best, median, iqr))

	flavors := []bool{false}
	if zeroCopy {
		flavors = append(flavors, true)
	}
	for _, w := range workerCounts {
		for _, borrow := range flavors {
			for _, m := range modes {
				run := runPoint(w, workload.NativeOpts{ZeroCopy: borrow, JoinMode: m})
				rows, best, median, iqr, err := measure(run)
				if err != nil {
					return nil, fmt.Errorf("core: native q%d workers=%d zero_copy=%v join=%s: %w", q, w, borrow, m, err)
				}
				pt := point(w, false, borrow, rows, best, median, iqr)
				pt.JoinMode = m.String()
				out = append(out, pt)
			}
		}
	}
	// Borrowed blocks pin buffer-pool pages for their lifetime; a sweep
	// that ends with outstanding leases has leaked a pin somewhere in an
	// operator's close path.
	if n := h.DB.Pool.Leases(); n != 0 {
		return nil, fmt.Errorf("core: native q%d sweep leaked %d page leases", q, n)
	}
	return out, nil
}
