package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestQ13JoinModeTracedDigests: the traced (simulated) serial Q13 is
// digest-identical under all three join modes — partitioning and
// prefetch pipelining change the trace shape, never the rows — and the
// prefetch mode's trace actually reaches the cache model as software
// prefetches.
func TestQ13JoinModeTracedDigests(t *testing.T) {
	cell := DefaultModeCell(ModeVecDSS, sim.FatCamp)
	results := map[engine.JoinMode]VecDSSResult{}
	for _, m := range []engine.JoinMode{engine.JoinChained, engine.JoinPartitioned, engine.JoinPrefetch} {
		res, err := sharedRunner.RunVecDSS(cell, 13, true, 7, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows == 0 {
			t.Fatalf("%v: empty result", m)
		}
		results[m] = res
	}
	ch := results[engine.JoinChained]
	for _, m := range []engine.JoinMode{engine.JoinPartitioned, engine.JoinPrefetch} {
		if r := results[m]; r.Digest != ch.Digest || r.Rows != ch.Rows {
			t.Errorf("%v digest %#x (%d rows) != chained %#x (%d rows)",
				m, r.Digest, r.Rows, ch.Digest, ch.Rows)
		}
	}
	if p, c := results[engine.JoinPrefetch].Result.Cache.Prefetches, ch.Result.Cache.Prefetches; p <= c {
		t.Errorf("prefetch mode issued %d software prefetches, chained %d — mode not reaching the cache model", p, c)
	}
}

// TestPrefetchIsCycleFree: a trace.Prefetch record charges no issue
// slot, no instruction, and no stall on either camp — a compute trace
// with interleaved prefetches completes in exactly the cycles of the
// same trace without them, commits the same instruction count, and every
// prefetch reaches the hierarchy. (Result-digest neutrality of the
// prefetch join mode is TestQ13JoinModeTracedDigests above.)
func TestPrefetchIsCycleFree(t *testing.T) {
	const reps = 2000
	seg := mem.CodeSeg{Base: mem.CodeBase, Size: 256}
	run := func(camp sim.Camp, withPrefetch bool) sim.Result {
		chip := sim.NewChip(shortCell(camp, DSS, false).SimConfig())
		rec, s := trace.Pipe()
		chip.AddThread(s)
		go func() {
			for i := 0; i < reps; i++ {
				rec.Exec(seg, 64)
				if withPrefetch {
					rec.Prefetch(mem.HeapBase + mem.Addr(i)*4096)
				}
			}
			rec.Close()
		}()
		return chip.Run(1 << 24)
	}
	for _, camp := range []sim.Camp{sim.FatCamp, sim.LeanCamp} {
		plain := run(camp, false)
		pre := run(camp, true)
		if pre.ThreadDone[0] != plain.ThreadDone[0] {
			t.Errorf("%v: prefetched trace done at %d, plain at %d — prefetch is not cycle-free",
				camp, pre.ThreadDone[0], plain.ThreadDone[0])
		}
		if pre.Instructions != plain.Instructions {
			t.Errorf("%v: prefetched trace committed %d instructions, plain %d — prefetch counted as workload",
				camp, pre.Instructions, plain.Instructions)
		}
		if pre.Cache.Prefetches != reps {
			t.Errorf("%v: %d prefetches reached the hierarchy, want %d", camp, pre.Cache.Prefetches, reps)
		}
	}
}
