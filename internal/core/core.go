// Package core is the paper's characterization framework: the camp
// taxonomy (Table 1), the experiment cells that pair a chip configuration
// with a database workload, and one experiment definition per table and
// figure of the evaluation.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/sim"
)

// CampSpec describes one camp's core technology (Table 1).
type CampSpec struct {
	Camp          sim.Camp
	IssueWidth    string
	ExecOrder     string
	PipelineDepth string
	HWThreads     string
	CoreSize      string
}

// Camps is the paper's Table 1.
var Camps = []CampSpec{
	{sim.FatCamp, "Wide (4+)", "Out-of-order", "Deep (14+ stages)", "Few (1-2)", "Large (3 x LC size)"},
	{sim.LeanCamp, "Narrow (1 or 2)", "In-order", "Shallow (5-6 stages)", "Many (4+)", "Small (LC size)"},
}

// WorkloadKind selects OLTP (TPC-C-like) or DSS (TPC-H-like).
type WorkloadKind uint8

// Workload kinds.
const (
	OLTP WorkloadKind = iota
	DSS
)

func (k WorkloadKind) String() string {
	if k == OLTP {
		return "OLTP"
	}
	return "DSS"
}

// Cell is one experiment configuration: a chip and a workload binding.
type Cell struct {
	Camp      sim.Camp
	Workload  WorkloadKind
	Saturated bool

	Cores      int // default 4
	CtxPerCore int // LC hardware contexts per core (0 = default 4)
	Clients    int // default: paper's 64 OLTP / 16 DSS saturated, 1 unsaturated

	L2Size   int  // bytes (default 26 MB, the paper's baseline)
	L2Lat    int  // cycles; 0 = use the Cacti model
	SharedL2 bool // default true (CMP); false = SMP private L2s

	L2Ports   int  // 0 = default
	StreamBuf bool // instruction stream buffers (default on via DefaultCell)

	WarmRefs     int    // functional-warming refs per thread
	WindowCycles uint64 // measured window (saturated)
	UnsatQuery   int    // DSS unsaturated: which query analog to run
	UnsatTxns    int    // OLTP unsaturated: transactions to time

	// RowPlans pins DSS clients to the row-at-a-time reference operators
	// instead of the vectorized executor: validation cells whose analytic
	// models assume per-tuple blocking access, and the row side of
	// vectorized-speedup comparisons, set it.
	RowPlans bool
}

// DefaultCell fills a cell with the paper's baseline parameters.
func DefaultCell(camp sim.Camp, wk WorkloadKind, saturated bool) Cell {
	c := Cell{
		Camp: camp, Workload: wk, Saturated: saturated,
		Cores: 4, L2Size: 26 << 20, SharedL2: true, StreamBuf: true,
		WarmRefs: 400000, WindowCycles: 400000,
		UnsatQuery: 6, UnsatTxns: 64,
	}
	if saturated {
		if wk == OLTP {
			c.Clients = 64
		} else {
			c.Clients = 16
		}
	} else {
		c.Clients = 1
		c.WarmRefs = 150000
		c.UnsatTxns = 160
	}
	return c
}

// SimConfig materializes the chip configuration for the cell, deriving
// the L2 latency from the Cacti model unless pinned.
func (c Cell) SimConfig() sim.Config {
	lat := c.L2Lat
	if lat == 0 {
		lat = cacti.Latency(c.L2Size)
	}
	return sim.Config{
		Camp:       c.Camp,
		Cores:      c.Cores,
		CtxPerCore: c.CtxPerCore,
		Hier: cache.Config{
			L2Size:    c.L2Size,
			L2Lat:     lat,
			SharedL2:  c.SharedL2,
			L2Ports:   c.L2Ports,
			StreamBuf: c.StreamBuf,
		},
	}
}

func (c Cell) String() string {
	sat := "unsat"
	if c.Saturated {
		sat = "sat"
	}
	mode := "CMP"
	if !c.SharedL2 {
		mode = "SMP"
	}
	return fmt.Sprintf("%v/%v/%s %dcores %dMB %s", c.Camp, c.Workload, sat, c.Cores, c.L2Size>>20, mode)
}

// CellResult is a cell's measurement.
type CellResult struct {
	Cell   Cell
	Result sim.Result

	// Throughput is aggregate IPC (saturated cells).
	Throughput float64
	// ResponseCycles is cycles per unit of work: per query (DSS) or per
	// transaction (OLTP) for unsaturated cells.
	ResponseCycles float64
	// Work completed during the measurement (transactions or queries).
	Work int
}

// FracBreakdown returns the execution-time fractions in the paper's
// Figure 5 ordering: computation, I-stalls, D-stalls, other.
func (r CellResult) FracBreakdown() (comp, istall, dstall, other float64) {
	b := r.Result.Breakdown
	busy := float64(b.Busy())
	if busy == 0 {
		return 0, 0, 0, 0
	}
	return float64(b.Computation()) / busy,
		float64(b.IStalls()) / busy,
		float64(b.DStalls()) / busy,
		float64(b.Other()) / busy
}
