// Staged-OLTP experiment: paired traced runs of the same pre-drawn
// transaction inputs on identical chip geometry — once monolithically
// (each transaction runs start-to-finish, cycling through the five
// transaction types' large code bodies) and once cohort-scheduled
// (STEPS-style: N transactions in flight, one stage's cohort per quantum,
// small shared stage code segments). The cohort path must cut simulated
// L1I misses and instruction stalls while producing byte-identical
// database state.
//
// With Parts > 1 the cohort side runs multi-worker: transactions are
// partitioned by home warehouse across Parts cohort schedulers, one per
// simulated core (own Ctx, own trace stream), with commits drained in
// global admission order and cross-partition transactions fenced through
// txn.SeqClock — so the digest stays byte-identical to the monolithic
// reference at every partition count.

package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/oltp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// StagedOLTPOpts shapes one paired staged-OLTP measurement.
type StagedOLTPOpts struct {
	Clients   int   // logical client streams (default 8)
	PerClient int   // transactions per client (default 8)
	Cohort    int   // in-flight transactions on the cohort side (default 16)
	Seed      int64 // input stream seed (default 7)
	// Parts partitions the cohort side by home warehouse across this many
	// scheduler workers, one per simulated core (default 1). The in-flight
	// window is split evenly across partitions.
	Parts int
	// RemotePct is the percent chance that a NewOrder line or Payment
	// customer is drawn from a non-home warehouse (default 0): remote
	// transactions cross partitions and exercise the global fence.
	RemotePct int
	// Trace collects dual-clock spans (run → txn → quantum/step) into
	// Result.Trace. Span markers shift trace-chunk boundaries, so traced
	// cycles are not comparable to untraced cycles.
	Trace bool
}

// WithDefaults resolves every zero-valued field to its default — THE one
// place sane cohort/txns/parts values come from; callers must not
// re-derive them. Negative values are left for Validate to reject.
func (o StagedOLTPOpts) WithDefaults() StagedOLTPOpts {
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.PerClient == 0 {
		o.PerClient = 8
	}
	if o.Cohort == 0 {
		o.Cohort = 16
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Parts == 0 {
		o.Parts = 1
	}
	return o
}

// Validate rejects unrunnable options with a *ValidationError instead of
// letting a bad partition or remote draw panic deep in partitioning. It
// assumes WithDefaults has resolved zero values; RunStagedOLTP applies
// both.
func (o StagedOLTPOpts) Validate() error {
	if o.Clients < 1 {
		return &ValidationError{Field: "clients", Reason: fmt.Sprintf("%d client streams (need >= 1)", o.Clients)}
	}
	if o.PerClient < 1 {
		return &ValidationError{Field: "txns", Reason: fmt.Sprintf("%d transactions per client (need >= 1)", o.PerClient)}
	}
	if o.Cohort < 1 {
		return &ValidationError{Field: "cohort", Reason: fmt.Sprintf("cohort window %d (need >= 1)", o.Cohort)}
	}
	if o.Parts < 1 {
		return &ValidationError{Field: "parts", Reason: fmt.Sprintf("%d partitions (need >= 1)", o.Parts)}
	}
	if o.RemotePct < 0 || o.RemotePct > 100 {
		return &ValidationError{Field: "remote", Reason: fmt.Sprintf("remote%% %d outside [0,100]", o.RemotePct)}
	}
	return nil
}

// StagedOLTPResult is one side of the paired measurement.
type StagedOLTPResult struct {
	Cohorted bool   // true: cohort-scheduled; false: monolithic
	Parts    int    // scheduler workers (1 unless partitioned)
	Cycles   uint64 // completion cycle of the slowest worker thread
	Result   sim.Result
	Txns     int          // transactions committed
	Digest   uint64       // final database state digest
	Sched    oltp.Stats   // scheduler counters, summed over partitions
	PerPart  []oltp.Stats // per-partition scheduler counters (Parts > 1)
	Fenced   int          // cross-partition transactions run in isolation
	// Trace is the dual-clock span run when StagedOLTPOpts.Trace was set.
	// Its root span covers [0, Cycles] — span totals reconcile exactly.
	Trace *obs.Run
}

// TxnsPerMcycle is the throughput in transactions per million cycles.
func (r StagedOLTPResult) TxnsPerMcycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Txns) * 1e6 / float64(r.Cycles)
}

// IStallFrac is the fraction of busy cycles lost to instruction stalls.
func (r StagedOLTPResult) IStallFrac() float64 {
	busy := r.Result.Breakdown.Busy()
	if busy == 0 {
		return 0
	}
	return float64(r.Result.Breakdown.IStalls()) / float64(busy)
}

// RunStagedOLTP executes the deterministic transaction stream described
// by o on a fresh chip built from cell — cohort-scheduled when cohorted
// is set, monolithically otherwise. Each run loads a fresh database (all
// sides of a comparison must start from identical state), and the
// returned digest covers the final logical state. The monolithic
// reference and a single-partition cohort run use one traced worker
// thread; a partitioned cohort run (o.Parts > 1) uses one per partition.
func (r *Runner) RunStagedOLTP(cell Cell, cohorted bool, o StagedOLTPOpts) (StagedOLTPResult, error) {
	o = o.WithDefaults()
	if err := o.Validate(); err != nil {
		return StagedOLTPResult{}, err
	}
	w, err := workload.BuildTPCC(r.ScaleCfg.TPCC)
	if err != nil {
		return StagedOLTPResult{}, err
	}
	ins := w.StagedInputsMix(o.Clients, o.PerClient, o.Seed, o.RemotePct)
	progs := w.StagedPrograms(ins, cohorted)

	parts := 1
	if cohorted {
		parts = o.Parts
	}
	chip := sim.NewChip(cell.SimConfig())
	recs := make([]*trace.Recorder, parts)
	streams := make([]*trace.Stream, parts)
	ctxs := make([]*engine.Ctx, parts)
	for p := 0; p < parts; p++ {
		rec, s := trace.Pipe()
		recs[p], streams[p] = rec, s
		chip.AddThread(s)
		ctxs[p] = w.DB.NewCtx(rec, p, 8<<20)
	}

	label := "monolithic"
	if cohorted {
		label = fmt.Sprintf("cohort-%d", parts)
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if o.Trace {
		tracer = obs.NewTracer()
		chip.SetMarkHandler(tracer.OnMark)
		// The root run span is virtual: a fresh chip starts at cycle 0 and
		// the run ends at the reported cycle count, so child span totals
		// reconcile against [0, Cycles] exactly.
		root = tracer.BeginAt(0, 0, label, "run")
		tracer.StampStart(root, 0)
	}
	sc := obs.Scope{T: tracer, Parent: root.ID()}

	res := StagedOLTPResult{Cohorted: cohorted, Parts: parts}
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, rec := range recs {
				rec.Close()
			}
		}()
		switch {
		case !cohorted:
			res.Sched, runErr = oltp.RunMonolithicTraced(ctxs[0], progs, sc)
		case parts == 1:
			sched := oltp.NewScheduler(w.DB.Codes, oltp.Config{
				Cohort: o.Cohort, Generation: w.Mgr.LM.Generation,
				Obs: sc, Metrics: r.Sched,
			})
			res.Sched, runErr = sched.Run(ctxs[0], progs)
		default:
			plan := w.PartitionPlan(ins, parts)
			res.Fenced = len(plan.Fences())
			cfg := oltp.Config{
				Cohort: oltp.SplitWindow(o.Cohort, parts), Generation: w.Mgr.LM.Generation,
				Obs: sc, Metrics: r.Sched,
			}
			res.PerPart, runErr = oltp.RunPartitioned(ctxs, w.DB.Codes, progs, plan, cfg)
			for _, st := range res.PerPart {
				res.Sched.Add(st)
			}
		}
	}()

	warm := cell.WarmRefs
	if warm <= 0 {
		warm = 20000
	}
	// Warm is per thread: split the budget across partition workers so
	// every partition count warms the same total number of references and
	// the scaling comparison stays apples-to-apples.
	chip.Warm(warm / parts)
	sres := chip.Run(1 << 34)
	for _, s := range streams {
		s.Stop()
	}
	for _, s := range streams {
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
	wg.Wait()
	if runErr != nil {
		return StagedOLTPResult{}, fmt.Errorf("core: staged OLTP (cohorted=%v parts=%d): %w", cohorted, parts, runErr)
	}

	digest, err := w.StateDigest()
	if err != nil {
		return StagedOLTPResult{}, err
	}
	var cycles uint64
	for p := 0; p < parts; p++ {
		if d := sres.ThreadDone[p]; d > cycles {
			cycles = d
		}
	}
	if cycles == 0 {
		cycles = sres.Cycles
	}
	res.Result, res.Cycles = sres, cycles
	res.Txns, res.Digest = res.Sched.Committed, digest
	if tracer != nil {
		root.EndAt(cycles)
		// Spans whose end markers were lost in the teardown drain close at
		// the run's final cycle, so nothing extends past the root.
		tracer.Finish(cycles)
		run := tracer.Snapshot(label, cycles)
		res.Trace = &run
	}
	return res, nil
}

// StagedOLTPSpeedup runs the paired experiment — monolithic vs cohort on
// identical chip geometry and identical inputs — and returns both sides
// plus the L1I-miss reduction (monolithic misses over cohort misses) and
// the response-time speedup (monolithic cycles over cohort cycles). It
// fails if the two executions do not produce byte-identical state.
//
// Deprecated: build a Request with ModeStagedOLTP and call Run.
func (r *Runner) StagedOLTPSpeedup(cell Cell, o StagedOLTPOpts) (mono, coh StagedOLTPResult, missReduction, speedup float64, err error) {
	o = o.WithDefaults()
	res, err := r.Run(context.Background(), Request{
		Mode: ModeStagedOLTP, Clients: o.Clients, Txns: o.PerClient,
		Cohort: o.Cohort, Seed: o.Seed, Parts: o.Parts, RemotePct: o.RemotePct,
		Cell: &cell,
	})
	if err != nil {
		return mono, coh, 0, 0, err
	}
	return res.Baseline.stagedResult(), res.Main.stagedResult(),
		res.L1IMissReductionX, res.SpeedupX, nil
}

// PartitionSweep is the canonical partitioned staged-OLTP measurement:
// one definition shared by the CI gate (BenchmarkStagedOLTPParallel),
// the archived BENCH artifact (cmd/benchjson), and the unit tests, so
// all three always measure the same cell.
type PartitionSweep struct {
	Scale Scale
	Cell  Cell
	Opts  StagedOLTPOpts
	Parts []int
}

// DefaultPartitionSweep is the 4-warehouse mix at parts {1, 2, 4} on a
// 4-core FC chip that the PR 5 scaling gates run.
func DefaultPartitionSweep() PartitionSweep {
	scale := TestScale()
	scale.TPCC.Warehouses = 4
	cell := DefaultCell(sim.FatCamp, OLTP, false)
	cell.WarmRefs = 10000
	return PartitionSweep{
		Scale: scale,
		Cell:  cell,
		Opts:  StagedOLTPOpts{Clients: 8, PerClient: 6, Cohort: 16, Seed: 7},
		Parts: []int{1, 2, 4},
	}
}

// StagedOLTPScaling runs the monolithic reference once and the cohort
// executor at each partition count in parts, all on identical chip
// geometry and identical inputs, failing unless every run's digest is
// byte-identical to the reference. The returned scaling factors are each
// run's simulated-cycle speedup over the first entry of parts (pass
// []int{1, ...} to anchor against the single-worker cohort scheduler).
//
// Deprecated: build a Request with ModeStagedOLTP and PartCounts and
// call Run.
func (r *Runner) StagedOLTPScaling(cell Cell, o StagedOLTPOpts, parts []int) (mono StagedOLTPResult, runs []StagedOLTPResult, scaling []float64, err error) {
	o = o.WithDefaults()
	res, err := r.Run(context.Background(), Request{
		Mode: ModeStagedOLTP, Clients: o.Clients, Txns: o.PerClient,
		Cohort: o.Cohort, Seed: o.Seed, RemotePct: o.RemotePct,
		Parts: o.Parts, PartCounts: parts, Cell: &cell,
	})
	if err != nil {
		return mono, nil, nil, err
	}
	runs = make([]StagedOLTPResult, 0, len(res.Sweep))
	for _, s := range res.Sweep {
		runs = append(runs, s.stagedResult())
	}
	return res.Baseline.stagedResult(), runs, res.ScalingX, nil
}
