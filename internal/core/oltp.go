// Staged-OLTP experiment: paired traced runs of the same pre-drawn
// transaction inputs on identical chip geometry — once monolithically
// (each transaction runs start-to-finish, cycling through the five
// transaction types' large code bodies) and once cohort-scheduled
// (STEPS-style: N transactions in flight, one stage's cohort per quantum,
// small shared stage code segments). The cohort path must cut simulated
// L1I misses and instruction stalls while producing byte-identical
// database state.

package core

import (
	"fmt"
	"sync"

	"repro/internal/oltp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// StagedOLTPOpts shapes one paired staged-OLTP measurement.
type StagedOLTPOpts struct {
	Clients   int   // logical client streams (default 8)
	PerClient int   // transactions per client (default 8)
	Cohort    int   // in-flight transactions on the cohort side (default 16)
	Seed      int64 // input stream seed (default 7)
}

func (o StagedOLTPOpts) withDefaults() StagedOLTPOpts {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.PerClient <= 0 {
		o.PerClient = 8
	}
	if o.Cohort <= 0 {
		o.Cohort = 16
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// StagedOLTPResult is one side of the paired measurement.
type StagedOLTPResult struct {
	Cohorted bool   // true: cohort-scheduled; false: monolithic
	Cycles   uint64 // completion cycle of the worker thread
	Result   sim.Result
	Txns     int        // transactions committed
	Digest   uint64     // final database state digest
	Sched    oltp.Stats // scheduler counters (parks, wounds, quanta)
}

// TxnsPerMcycle is the throughput in transactions per million cycles.
func (r StagedOLTPResult) TxnsPerMcycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Txns) * 1e6 / float64(r.Cycles)
}

// IStallFrac is the fraction of busy cycles lost to instruction stalls.
func (r StagedOLTPResult) IStallFrac() float64 {
	busy := r.Result.Breakdown.Busy()
	if busy == 0 {
		return 0
	}
	return float64(r.Result.Breakdown.IStalls()) / float64(busy)
}

// RunStagedOLTP executes the deterministic transaction stream described
// by o on one traced worker thread of a fresh chip built from cell —
// cohort-scheduled when cohorted is set, monolithically otherwise. Each
// run loads a fresh database (both sides must start from identical
// state), and the returned digest covers the final logical state.
func (r *Runner) RunStagedOLTP(cell Cell, cohorted bool, o StagedOLTPOpts) (StagedOLTPResult, error) {
	o = o.withDefaults()
	w, err := workload.BuildTPCC(r.ScaleCfg.TPCC)
	if err != nil {
		return StagedOLTPResult{}, err
	}
	ins := w.StagedInputs(o.Clients, o.PerClient, o.Seed)
	progs := w.StagedPrograms(ins, cohorted)

	chip := sim.NewChip(cell.SimConfig())
	rec, s := trace.Pipe()
	chip.AddThread(s)
	ctx := w.DB.NewCtx(rec, 0, 8<<20)

	var st oltp.Stats
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer rec.Close()
		if cohorted {
			sched := oltp.NewScheduler(w.DB.Codes, oltp.Config{Cohort: o.Cohort, Generation: w.Mgr.LM.Generation})
			st, runErr = sched.Run(ctx, progs)
		} else {
			st, runErr = oltp.RunMonolithic(ctx, progs)
		}
	}()

	warm := cell.WarmRefs
	if warm <= 0 {
		warm = 20000
	}
	chip.Warm(warm)
	res := chip.Run(1 << 34)
	s.Stop()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	wg.Wait()
	if runErr != nil {
		return StagedOLTPResult{}, fmt.Errorf("core: staged OLTP (cohorted=%v): %w", cohorted, runErr)
	}

	digest, err := w.StateDigest()
	if err != nil {
		return StagedOLTPResult{}, err
	}
	cycles := res.ThreadDone[0]
	if cycles == 0 {
		cycles = res.Cycles
	}
	return StagedOLTPResult{
		Cohorted: cohorted, Cycles: cycles, Result: res,
		Txns: st.Committed, Digest: digest, Sched: st,
	}, nil
}

// StagedOLTPSpeedup runs the paired experiment — monolithic vs cohort on
// identical chip geometry and identical inputs — and returns both sides
// plus the L1I-miss reduction (monolithic misses over cohort misses) and
// the response-time speedup (monolithic cycles over cohort cycles). It
// fails if the two executions do not produce byte-identical state.
func (r *Runner) StagedOLTPSpeedup(cell Cell, o StagedOLTPOpts) (mono, coh StagedOLTPResult, missReduction, speedup float64, err error) {
	mono, err = r.RunStagedOLTP(cell, false, o)
	if err != nil {
		return mono, coh, 0, 0, err
	}
	coh, err = r.RunStagedOLTP(cell, true, o)
	if err != nil {
		return mono, coh, 0, 0, err
	}
	if mono.Digest != coh.Digest {
		return mono, coh, 0, 0, fmt.Errorf(
			"core: staged OLTP digest mismatch: monolithic %#x vs cohort %#x (determinism contract violated)",
			mono.Digest, coh.Digest)
	}
	missReduction = float64(mono.Result.Cache.L1IMisses) / float64(max(coh.Result.Cache.L1IMisses, 1))
	speedup = float64(mono.Cycles) / float64(max(coh.Cycles, 1))
	return mono, coh, missReduction, speedup, nil
}
